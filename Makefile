# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# steps; `make ci` reproduces them locally.

GO ?= go

.PHONY: all build test race cover fuzz bench serve-smoke worker-smoke load-smoke trace-smoke probe-smoke ci fmt vet lint

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage gate: the hot-loop packages must keep internal/core at or above
# its recorded line coverage (see ci.yml for the canonical threshold).
# Runs without -race (coverage under the race detector is ~10x slower);
# `make race` provides the race pass.
cover:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=./internal/core ./internal/core ./internal/experiments
	@pct=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/core line coverage: $$pct%"; \
	awk -v p="$$pct" 'BEGIN { if (p + 0 < 92.0) { print "coverage gate: " p "% < 92.0%"; exit 1 } }'

# Fixed-budget coverage-guided smoke of the co-simulation property, of
# the fast-forward differential (a skipping machine locked against a
# tick-every-cycle one), and of the trace record/replay bit-identity
# property. One invocation per target: go test accepts one -fuzz each.
fuzz:
	$(GO) test ./internal/core -run xxx -fuzz FuzzCoSimulate -fuzztime 20s
	$(GO) test ./internal/core -run xxx -fuzz FuzzFastForward -fuzztime 10s
	$(GO) test ./internal/trace -run xxx -fuzz FuzzTraceReplay -fuzztime 10s

# End-to-end smoke of the simulation service: build cmd/dcaserve, start
# it, POST a tiny job, assert a 200 with a well-formed content-addressed
# result (the same check CI runs).
serve-smoke:
	./ci/serve_smoke.sh

# End-to-end smoke of the distributed layer: one dcaserve, two dcaworkers,
# a small enqueued grid — every result must land with a verifying digest,
# duplicates must dedup, and SIGTERM must drain the workers.
worker-smoke:
	./ci/worker_smoke.sh

# End-to-end smoke of the hardening layer: dcaserve with tight rate limits,
# a short dcaload mixed-traffic run, then assertions that the report is
# well-formed, the limiter shed load (429s observed), and /metrics exposes
# moving counters in Prometheus text format.
load-smoke:
	./ci/load_smoke.sh

# End-to-end smoke of the oracle trace layer: record a 1k-instruction
# window with dcatrace, replay it through dcasim and a dcaserve -traced
# job, assert the result digests are bit-identical to the live run, and
# check that a truncated recording fails loudly.
trace-smoke:
	./ci/trace_smoke.sh

# End-to-end smoke of the introspection layer: run one cell plain and with
# the full probe stack (-attrib + -konata), assert bit-identical digests,
# a cycle attribution that sums to the measured cycles, a well-formed
# Konata trace, and a probed dcaserve submission whose attribution rides
# the response without touching the stored result.
probe-smoke:
	./ci/probe_smoke.sh

# Regenerate the reference benchmark records (BENCH_core.json,
# BENCH_clusters.json, BENCH_serve.json) with current environment metadata
# so the checked-in numbers cannot drift silently from the code.
bench:
	$(GO) run ./cmd/dcabenchref

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Repository-specific static analysis (internal/lint via cmd/dcalint):
# determinism of digest-affecting packages, allocation-free //dca:hotpath
# functions, non-blocking queue critical sections, explicit json tags on
# the wire/digest structs. ci/ci_test.go runs the same suite in-process.
lint:
	$(GO) run ./cmd/dcalint ./...

ci: fmt vet lint build race cover fuzz serve-smoke worker-smoke load-smoke trace-smoke probe-smoke
