#!/bin/sh
# trace_smoke.sh — end-to-end smoke of the oracle trace layer: record a
# 1k-instruction window with cmd/dcatrace, replay it through cmd/dcasim
# and through a dcaserve -traced job, and assert all three result digests
# are bit-identical to the live run. Also asserts the whole-file checksum
# makes a corrupted recording fail loudly instead of replaying garbage.
# Run from the repo root (`make trace-smoke` or the CI step).
set -eu

ADDR=127.0.0.1:8098
TMP="${TMPDIR:-/tmp}"
SIM="$TMP/dcasim-tracesmoke"
TRC="$TMP/dcatrace-tracesmoke"
SRV="$TMP/dcaserve-tracesmoke"
TRACE="$TMP/tracesmoke.trace"
OUT="$TMP/tracesmoke.json"

# One cell: compress/general, 200 warm-up + 1000 measured instructions.
# The recording covers 2*window + slack, the same margin job.Traced uses
# for the fetch front end's runahead past the commit window.
WARMUP=200
MEASURE=1000
WINDOW=1200
STEPS=6496

go build -o "$SIM" ./cmd/dcasim
go build -o "$TRC" ./cmd/dcatrace
go build -o "$SRV" ./cmd/dcaserve

# Record, then re-verify: info re-decodes the file, which checks the
# whole-file checksum and prints the content digest.
"$TRC" record -bench compress -n "$STEPS" -window "$WINDOW" -o "$TRACE" >/dev/null
"$TRC" info "$TRACE" | grep -Eq '"digest": "[0-9a-f]{64}"'
"$TRC" info "$TRACE" | grep -q '"format_version": 1'

digest_row() {
  sed -n 's/.*result digest[[:space:]]*\([0-9a-f]\{64\}\).*/\1/p'
}

LIVE=$("$SIM" -bench compress -scheme general -warmup "$WARMUP" -measure "$MEASURE" | digest_row)
REPLAY=$("$SIM" -bench compress -scheme general -warmup "$WARMUP" -measure "$MEASURE" -replay "$TRACE" | digest_row)
if [ -z "$LIVE" ] || [ "$LIVE" != "$REPLAY" ]; then
  echo "trace smoke: dcasim replay digest mismatch (live=$LIVE replay=$REPLAY)" >&2
  exit 1
fi

# A corrupted recording must be rejected at decode time, not replayed.
head -c "$(($(wc -c <"$TRACE") - 1))" "$TRACE" >"$TRACE.bad"
if "$SIM" -bench compress -scheme general -warmup "$WARMUP" -measure "$MEASURE" -replay "$TRACE.bad" >/dev/null 2>&1; then
  echo "trace smoke: truncated trace replayed without an error" >&2
  exit 1
fi

# The same cell through a dcaserve -traced job (record-once server side)
# must land on the same content-addressed result.
"$SRV" -addr "$ADDR" -traced &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "dcaserve did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

curl -fsS -X POST "http://$ADDR/v1/jobs" \
  -d "{\"scheme\":\"general\",\"benchmark\":\"compress\",\"warmup\":$WARMUP,\"measure\":$MEASURE}" >"$OUT"
SERVED=$(sed -n 's/.*"result_digest": "\([0-9a-f]\{64\}\)".*/\1/p' "$OUT" | head -1)
if [ "$SERVED" != "$LIVE" ]; then
  echo "trace smoke: dcaserve -traced digest mismatch (live=$LIVE served=$SERVED)" >&2
  exit 1
fi

echo "trace smoke OK (digest $LIVE)"
