#!/bin/sh
# load_smoke.sh — end-to-end smoke of the hardening layer: build dcaserve
# and dcaload, start the server with tight admission limits, drive a short
# mixed load at saturation, and assert (1) the report is well-formed JSON
# with throughput/latency percentiles, (2) the rate limiter actually shed
# load (non-zero 429s), and (3) /metrics exposes moving dcaserve counters
# in Prometheus text format. Run from the repo root (`make load-smoke` or
# the CI step). Ports: serve_smoke uses 8097, worker_smoke 8098 — this one
# takes 8099 so the three can share a machine.
set -eu

ADDR=127.0.0.1:8099
SRV="${TMPDIR:-/tmp}/dcaserve-load-smoke"
LOAD="${TMPDIR:-/tmp}/dcaload-load-smoke"
OUT="${TMPDIR:-/tmp}/dcaload-load-smoke.json"
METRICS="${TMPDIR:-/tmp}/dcaload-load-smoke.metrics"

go build -o "$SRV" ./cmd/dcaserve
go build -o "$LOAD" ./cmd/dcaload

# Tight limits so a tiny smoke run still saturates: 50 req/s per client
# with a small burst guarantees 429s from any concurrency above ~1.
"$SRV" -addr "$ADDR" -rate 50 -burst 20 -admit 8 &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT

# Wait for the listener (up to ~5s).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "dcaserve did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# Short mixed run: enough traffic to move every counter, quick enough for
# CI. dcaload exits non-zero only on transport errors, not on 429s.
"$LOAD" -server "http://$ADDR" -c 8 -d 3s -out "$OUT"

# The report must be well-formed with the advertised fields.
grep -q '"throughput_rps"' "$OUT"
grep -q '"p50_ms"' "$OUT"
grep -q '"p95_ms"' "$OUT"
grep -q '"p99_ms"' "$OUT"
grep -q '"throttled_rate"' "$OUT"
grep -q '"server_metrics"' "$OUT"

# The limiter must have shed load during the run.
if grep -q '"throttled": 0,' "$OUT"; then
  echo "rate limiter shed nothing under saturation" >&2
  exit 1
fi

# /metrics must expose the serving counters in text exposition format.
curl -fsS "http://$ADDR/metrics" >"$METRICS"
grep -q '^# TYPE dcaserve_store_hits_total counter' "$METRICS"
grep -q '^# TYPE dcaserve_throttled_total counter' "$METRICS"
grep -q '^# TYPE http_request_seconds histogram' "$METRICS"
# At least one store hit and one throttle landed, with non-zero values.
# ($NF, not $2: label values may contain spaces, e.g. endpoint="POST /v1/jobs".)
awk '$1 == "dcaserve_store_hits_total" && $NF + 0 > 0 { ok = 1 } END { exit !ok }' "$METRICS"
awk '/^dcaserve_throttled_total/ && $NF + 0 > 0 { ok = 1 } END { exit !ok }' "$METRICS"

echo "dcaload smoke OK ($(sed -n 's/.*"throughput_rps": \([0-9.]*\).*/\1/p' "$OUT" | head -1) req/s)"
