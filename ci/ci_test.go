// Package ci holds the repository's documentation, formatting and
// static-analysis lints, written as ordinary Go tests so `go test ./...`
// (and the CI workflow's doc-lint step) enforces them on every package:
// gofmt-clean sources, a package doc comment on every package (including
// commands and examples), and a clean dcalint run — the internal/lint
// analyzer suite that proves the determinism, hot-path-allocation,
// lock-discipline and wire-contract invariants at the source level.
package ci

import (
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// repoRoot is the module root relative to this package's directory.
const repoRoot = ".."

// goFiles returns every tracked .go file under the module root, skipping
// testdata and hidden directories.
func goFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(repoRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") && path != repoRoot {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no Go files found — wrong working directory?")
	}
	return files
}

// TestGofmt requires every source file to be gofmt-formatted (the
// equivalent of an empty `gofmt -l .`).
func TestGofmt(t *testing.T) {
	for _, path := range goFiles(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		formatted, err := format.Source(src)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if string(src) != string(formatted) {
			t.Errorf("%s: not gofmt-formatted (run `gofmt -w %s`)", path, path)
		}
	}
}

// TestDCALint runs the repository's static-analysis suite (the same
// checks as `go run ./cmd/dcalint ./...`) in-process, so plain
// `go test ./...` is the enforcement point: digest-affecting packages
// stay free of nondeterminism sources, //dca:hotpath functions stay free
// of allocating constructs, the queue's critical sections stay
// non-blocking, and the wire/digest structs keep explicit json tags.
// DESIGN.md's "Enforced invariants" section maps each analyzer to the
// invariant it proves.
func TestDCALint(t *testing.T) {
	pkgs, err := lint.Load(repoRoot, nil)
	if err != nil {
		t.Fatalf("loading module for lint: %v", err)
	}
	diags := lint.Lint(pkgs, lint.DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); fix the code or justify with //dca:allow(<analyzer>: <why>)", len(diags))
	}
}

// TestFastForwardSuiteWired gates the fast-forward and checkpoint
// locks: the differential test, the fuzz target and the checkpoint
// round-trip must exist in internal/core (renaming or deleting one would
// silently drop the bit-identity enforcement for the skip paths), and
// both `make fuzz` and the CI workflow must run the fast-forward fuzz
// smoke alongside the co-simulation one.
func TestFastForwardSuiteWired(t *testing.T) {
	want := map[string]bool{
		"TestFastForwardDifferential": false,
		"FuzzFastForward":             false,
		"TestCheckpointRoundTrip":     false,
	}
	fset := token.NewFileSet()
	dir := filepath.Join(repoRoot, "internal", "core")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
				if _, tracked := want[fd.Name.Name]; tracked {
					want[fd.Name.Name] = true
				}
			}
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("internal/core has no %s — the fast-forward/checkpoint bit-identity lock is gone", name)
		}
	}
	for _, path := range []string{"Makefile", filepath.Join(".github", "workflows", "ci.yml")} {
		src, err := os.ReadFile(filepath.Join(repoRoot, path))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), "-fuzz FuzzFastForward") {
			t.Errorf("%s does not run the FuzzFastForward smoke", path)
		}
	}
}

// TestTraceSuiteWired gates the oracle trace layer's bit-identity locks:
// the record/replay fidelity tests and the fuzz target must exist in
// internal/trace, the golden grid must run through job.Traced in
// internal/experiments (renaming or deleting one would silently drop the
// replay-equals-live enforcement), and both `make fuzz`/`make
// trace-smoke` and the CI workflow must run the trace fuzz smoke and the
// end-to-end trace smoke.
func TestTraceSuiteWired(t *testing.T) {
	suites := map[string]map[string]bool{
		filepath.Join("internal", "trace"): {
			"TestReplayMachineBitIdentity":  false,
			"TestDecodeRejectsEveryBitFlip": false,
			"FuzzTraceReplay":               false,
		},
		filepath.Join("internal", "experiments"): {
			"TestGoldenTracedRunner": false,
		},
	}
	fset := token.NewFileSet()
	for rel, want := range suites {
		dir := filepath.Join(repoRoot, rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
					if _, tracked := want[fd.Name.Name]; tracked {
						want[fd.Name.Name] = true
					}
				}
			}
		}
		for name, found := range want {
			if !found {
				t.Errorf("%s has no %s — the trace replay bit-identity lock is gone", rel, name)
			}
		}
	}
	for _, path := range []string{"Makefile", filepath.Join(".github", "workflows", "ci.yml")} {
		src, err := os.ReadFile(filepath.Join(repoRoot, path))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), "-fuzz FuzzTraceReplay") {
			t.Errorf("%s does not run the FuzzTraceReplay smoke", path)
		}
		if !strings.Contains(string(src), "trace_smoke.sh") {
			t.Errorf("%s does not run the end-to-end trace smoke", path)
		}
	}
}

// TestProbeSuiteWired gates the introspection layer's passivity locks:
// the probed differential, the fast-forward attribution identity and the
// conservation test must exist in internal/core, the golden grid must
// reconcile detached and probed runs in internal/experiments, the serve
// path must keep attribution out of the store (cmd/dcaserve), the
// probeguard analyzer must stay in the default lint suite, and both the
// Makefile and the CI workflow must run the end-to-end probe smoke.
// Renaming or deleting any of these would silently drop the proof that
// observation never changes a result.
func TestProbeSuiteWired(t *testing.T) {
	suites := map[string]map[string]bool{
		filepath.Join("internal", "core"): {
			"TestProbePassivityDifferential":   false,
			"TestProbeFastForwardIdentity":     false,
			"TestProbeAttributionSumsToCycles": false,
			"TestSteadyStateCycleAllocs":       false,
		},
		filepath.Join("internal", "experiments"): {
			"TestGoldenProbeInvariants": false,
		},
		filepath.Join("cmd", "dcaserve"): {
			"TestJobProbed": false,
		},
	}
	fset := token.NewFileSet()
	for rel, want := range suites {
		dir := filepath.Join(repoRoot, rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
					if _, tracked := want[fd.Name.Name]; tracked {
						want[fd.Name.Name] = true
					}
				}
			}
		}
		for name, found := range want {
			if !found {
				t.Errorf("%s has no %s — the probe passivity lock is gone", rel, name)
			}
		}
	}
	hasProbeGuard := false
	for _, a := range lint.DefaultAnalyzers() {
		if a.Name == "probeguard" {
			hasProbeGuard = true
		}
	}
	if !hasProbeGuard {
		t.Error("lint.DefaultAnalyzers no longer includes probeguard — unguarded probe calls in the cycle loop would go unflagged")
	}
	for _, path := range []string{"Makefile", filepath.Join(".github", "workflows", "ci.yml")} {
		src, err := os.ReadFile(filepath.Join(repoRoot, path))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), "probe_smoke.sh") {
			t.Errorf("%s does not run the end-to-end probe smoke", path)
		}
	}
}

// TestEveryPackageHasDoc requires a package doc comment in every package
// directory: at least one file whose package clause carries a doc comment.
// Package docs are how ARCHITECTURE.md's package map stays discoverable
// from `go doc`.
func TestEveryPackageHasDoc(t *testing.T) {
	type pkgState struct {
		name   string
		hasDoc bool
	}
	pkgs := map[string]*pkgState{} // directory -> state
	fset := token.NewFileSet()
	for _, path := range goFiles(t) {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		dir := filepath.Dir(path)
		st, ok := pkgs[dir]
		if !ok {
			st = &pkgState{name: f.Name.Name}
			pkgs[dir] = st
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.hasDoc = true
		}
	}
	for dir, st := range pkgs {
		if !st.hasDoc {
			t.Errorf("package %s (in %s) has no package doc comment", st.name, dir)
		}
	}
	// Test-only packages (like this one) are documented through their
	// _test.go files; check them separately so the lint applies to itself.
	testOnly := map[string]bool{}
	for _, path := range goFiles(t) {
		if !strings.HasSuffix(path, "_test.go") {
			continue
		}
		dir := filepath.Dir(path)
		if _, ok := pkgs[dir]; ok {
			continue
		}
		if testOnly[dir] {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			testOnly[dir] = true
		}
	}
	for _, path := range goFiles(t) {
		if !strings.HasSuffix(path, "_test.go") {
			continue
		}
		dir := filepath.Dir(path)
		if _, ok := pkgs[dir]; !ok && !testOnly[dir] {
			t.Errorf("test-only package in %s has no package doc comment", dir)
		}
	}
}
