#!/bin/sh
# worker_smoke.sh — end-to-end smoke of the distributed layer: build
# dcaserve and dcaworker, boot one server and TWO workers, enqueue a small
# grid, and assert every result lands in the store with a digest that
# verifies (the server recomputes it on upload; here we re-check the
# served copy). Also exercises enqueue dedup (a resubmitted grid must be
# all duplicate/cached) and graceful worker shutdown (SIGTERM drains).
# Run from the repo root (`make worker-smoke` or the CI step).
set -eu

ADDR=127.0.0.1:8098
TMP="${TMPDIR:-/tmp}"
SERVE="$TMP/dcaserve-wsmoke"
WORK="$TMP/dcaworker-wsmoke"
OUT="$TMP/dcaworker-wsmoke.json"

go build -o "$SERVE" ./cmd/dcaserve
go build -o "$WORK" ./cmd/dcaworker

"$SERVE" -addr "$ADDR" &
SERVE_PID=$!
W1_PID=""
W2_PID=""
cleanup() {
  kill "$SERVE_PID" $W1_PID $W2_PID 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the listener (up to ~5s).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "dcaserve did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# Enqueue a 2-scheme x 2-benchmark grid (plus the implicit base? no —
# queue grids run exactly the schemes listed): 4 cells, tiny windows.
GRID='{"grid":{"schemes":["modulo","general"],"benchmarks":["go","compress"],"warmup":100,"measure":1000}}'
curl -fsS -X POST "http://$ADDR/v1/queue" -d "$GRID" >"$OUT"
grep -q '"queued": 4' "$OUT" || { echo "expected 4 queued cells:" >&2; cat "$OUT" >&2; exit 1; }
KEYS=$(sed -n 's/.*"key": "\([0-9a-f]\{64\}\)".*/\1/p' "$OUT")
[ "$(echo "$KEYS" | wc -l)" -eq 4 ]

# Two workers drain it (1 loop each so both provably participate in CI's
# small containers; jittered backoff keeps them from polling in lockstep).
"$WORK" -server "http://$ADDR" -n 1 -wait 2s &
W1_PID=$!
"$WORK" -server "http://$ADDR" -n 1 -wait 2s &
W2_PID=$!

# Every key must become servable (up to ~60s).
for KEY in $KEYS; do
  i=0
  until curl -fsS "http://$ADDR/v1/results/$KEY" >"$OUT.res" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
      echo "result $KEY never landed; queue stats:" >&2
      curl -fsS "http://$ADDR/v1/queue/stats" >&2 || true
      exit 1
    fi
    sleep 0.2
  done
  # The digest must verify: a well-formed 64-hex result_digest and real
  # measurement fields on the served result.
  grep -Eq '"result_digest": "[0-9a-f]{64}"' "$OUT.res"
  grep -q '"Cycles"' "$OUT.res"
  grep -q '"Instructions"' "$OUT.res"
done

# The queue settled: nothing pending, in flight, or failed.
curl -fsS "http://$ADDR/v1/queue/stats" >"$OUT.stats"
grep -q '"depth": 0' "$OUT.stats"
grep -q '"inflight": 0' "$OUT.stats"
grep -q '"failed": 0' "$OUT.stats"

# Dedup: resubmitting the identical grid enqueues nothing — every cell is
# already stored.
curl -fsS -X POST "http://$ADDR/v1/queue" -d "$GRID" >"$OUT.dup"
grep -q '"queued": 0' "$OUT.dup" || { echo "duplicate grid re-queued cells:" >&2; cat "$OUT.dup" >&2; exit 1; }
grep -q '"cached": 4' "$OUT.dup"

# Workers drain cleanly on SIGTERM.
kill -TERM "$W1_PID" "$W2_PID"
wait "$W1_PID" "$W2_PID"
W1_PID=""
W2_PID=""

echo "dcaworker smoke OK (4 cells via 2 workers, dedup verified)"
