#!/bin/sh
# serve_smoke.sh — end-to-end smoke of cmd/dcaserve: build the server,
# start it, POST one tiny job (1k-instruction window), and assert a 200
# with a well-formed content-addressed result that is then retrievable by
# its key. Run from the repo root (`make serve-smoke` or the CI step).
set -eu

ADDR=127.0.0.1:8097
BIN="${TMPDIR:-/tmp}/dcaserve-smoke"
OUT="${TMPDIR:-/tmp}/dcaserve-smoke.json"

go build -o "$BIN" ./cmd/dcaserve

"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT

# Wait for the listener (up to ~5s).
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "dcaserve did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# One tiny job: -f fails the script on any non-200.
curl -fsS -X POST "http://$ADDR/v1/jobs" \
  -d '{"scheme":"general","benchmark":"go","warmup":100,"measure":1000}' >"$OUT"

# Well-formed: a 64-hex job key, a result digest, and real measurements.
grep -Eq '"key": "[0-9a-f]{64}"' "$OUT"
grep -Eq '"result_digest": "[0-9a-f]{64}"' "$OUT"
grep -q '"Cycles"' "$OUT"
grep -q '"Instructions"' "$OUT"

# The result must be retrievable by its content address.
KEY=$(sed -n 's/.*"key": "\([0-9a-f]\{64\}\)".*/\1/p' "$OUT" | head -1)
curl -fsS "http://$ADDR/v1/results/$KEY" | grep -q '"Cycles"'

# A resubmission must be served from the store.
curl -fsS -X POST "http://$ADDR/v1/jobs" \
  -d '{"scheme":"general","benchmark":"go","warmup":100,"measure":1000}' |
  grep -q '"cached": true'

echo "dcaserve smoke OK (job $KEY)"
