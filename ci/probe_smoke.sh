#!/bin/sh
# probe_smoke.sh — end-to-end smoke of the introspection layer: run one
# cell of the grid plain, then again with the full probe stack attached
# (-attrib + -konata), and assert the probes are passive (bit-identical
# result digest), the cycle attribution accounts for every measured cycle,
# and the Konata export is a well-formed pipeline trace. Then submit the
# same cell to dcaserve with "probe": true and assert the response carries
# an attribution alongside an unchanged digest while the stored result
# stays probe-free. Run from the repo root (`make probe-smoke` or the CI
# step).
set -eu

ADDR=127.0.0.1:8099
TMP="${TMPDIR:-/tmp}"
SIM="$TMP/dcasim-probesmoke"
SRV="$TMP/dcaserve-probesmoke"
KANATA="$TMP/probesmoke.kanata"
PLAIN="$TMP/probesmoke-plain.txt"
PROBED="$TMP/probesmoke-probed.txt"
OUT="$TMP/probesmoke.json"

# One cell: compress/general, 200 warm-up + 1000 measured instructions —
# the same window the other smokes use.
WARMUP=200
MEASURE=1000

go build -o "$SIM" ./cmd/dcasim
go build -o "$SRV" ./cmd/dcaserve

digest_row() {
  sed -n 's/.*result digest[[:space:]]*\([0-9a-f]\{64\}\).*/\1/p'
}

"$SIM" -bench compress -scheme general -warmup "$WARMUP" -measure "$MEASURE" >"$PLAIN"
"$SIM" -bench compress -scheme general -warmup "$WARMUP" -measure "$MEASURE" \
  -attrib -konata "$KANATA" >"$PROBED"

# Passivity: the probed run's result digest is bit-identical to the plain
# run's.
LIVE=$(digest_row <"$PLAIN")
WITHPROBE=$(digest_row <"$PROBED")
if [ -z "$LIVE" ] || [ "$LIVE" != "$WITHPROBE" ]; then
  echo "probe smoke: probed digest differs from plain run (plain=$LIVE probed=$WITHPROBE)" >&2
  exit 1
fi

# Conservation: the attribution header counts exactly the measured cycles,
# and the exclusive column sums back to that total.
CYCLES=$(sed -n 's/^cycles[[:space:]]*\([0-9]\{1,\}\).*/\1/p' "$PROBED" | head -1)
ATTRIB=$(sed -n 's/^cycle attribution (\([0-9]\{1,\}\) measured cycles.*/\1/p' "$PROBED")
if [ -z "$CYCLES" ] || [ "$ATTRIB" != "$CYCLES" ]; then
  echo "probe smoke: attribution covers $ATTRIB cycles, run measured $CYCLES" >&2
  exit 1
fi
SUM=$(awk '/^cycle attribution/ {in_table=1; next}
  in_table && NF == 0 {in_table=0}
  in_table {sum += $NF}
  END {print sum + 0}' "$PROBED")
if [ "$SUM" != "$CYCLES" ]; then
  echo "probe smoke: exclusive stall cycles sum to $SUM, not $CYCLES" >&2
  exit 1
fi
grep -q '^steering decisions' "$PROBED" || {
  echo "probe smoke: -attrib printed no steering forensics" >&2
  exit 1
}

# Konata shape: version header, then fetch (I), stage (S) and retire (R)
# records for a non-degenerate instruction count.
head -1 "$KANATA" | grep -q '^Kanata' || {
  echo "probe smoke: $KANATA has no Kanata header" >&2
  exit 1
}
for kind in I S R; do
  n=$(grep -c "^$kind	" "$KANATA" || true)
  if [ "$n" -lt 100 ]; then
    echo "probe smoke: Konata trace has only $n '$kind' records" >&2
    exit 1
  fi
done

# The same cell as a probed dcaserve submission: attribution rides the
# response, the digest is the live one, and the stored result stays free
# of probe output.
"$SRV" -addr "$ADDR" &
PID=$!
trap 'kill $PID 2>/dev/null || true' EXIT

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "dcaserve did not come up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

curl -fsS -X POST "http://$ADDR/v1/jobs" \
  -d "{\"scheme\":\"general\",\"benchmark\":\"compress\",\"warmup\":$WARMUP,\"measure\":$MEASURE,\"probe\":true}" >"$OUT"
SERVED=$(sed -n 's/.*"result_digest": "\([0-9a-f]\{64\}\)".*/\1/p' "$OUT" | head -1)
if [ "$SERVED" != "$LIVE" ]; then
  echo "probe smoke: probed dcaserve digest mismatch (live=$LIVE served=$SERVED)" >&2
  exit 1
fi
grep -q '"attribution"' "$OUT" || {
  echo "probe smoke: probed submission returned no attribution" >&2
  exit 1
}
KEY=$(sed -n 's/.*"key": "\([0-9a-f]\{64\}\)".*/\1/p' "$OUT" | head -1)
if [ -z "$KEY" ]; then
  echo "probe smoke: probed response carried no job key" >&2
  exit 1
fi
curl -fsS "http://$ADDR/v1/results/$KEY" >"$OUT.stored"
if grep -q '"attribution"' "$OUT.stored"; then
  echo "probe smoke: stored result carries probe output (attribution must ride the response only)" >&2
  exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '^dcaserve_probe_runs_total 1$' || {
  echo "probe smoke: /metrics does not count the probed run" >&2
  exit 1
}

echo "probe smoke OK (digest $LIVE, $CYCLES cycles attributed)"
