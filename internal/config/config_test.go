package config

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, c := range []*Config{Clustered(), Base(), UpperBound(), FIFOClustered(), Symmetric()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestClusteredMatchesTable2(t *testing.T) {
	c := Clustered()
	if c.FetchWidth != 8 || c.DecodeWidth != 8 || c.RetireWidth != 8 {
		t.Error("pipeline widths differ from Table 2")
	}
	if c.MaxInFlight != 64 {
		t.Error("in-flight limit differs from Table 2")
	}
	if c.NumClusters() != 2 {
		t.Fatal("clustered machine must have 2 clusters")
	}
	c1, c2 := c.Clusters[0], c.Clusters[1]
	if c1.SimpleIntALUs != 3 || c1.ComplexIntUnits != 1 || c1.FPALUs != 0 {
		t.Errorf("cluster 1 FUs wrong: %+v", c1)
	}
	if c2.SimpleIntALUs != 3 || c2.FPALUs != 3 || c2.FPMulDivUnits != 1 || c2.ComplexIntUnits != 0 {
		t.Errorf("cluster 2 FUs wrong: %+v", c2)
	}
	if c1.IssueWidth != 4 || c2.IssueWidth != 4 || c1.IQSize != 64 || c1.PhysRegs != 96 {
		t.Error("per-cluster resources differ from Table 2")
	}
	if c.InterClusterBuses != 3 || c.CopyLatency != 1 {
		t.Error("bus parameters differ from Table 2")
	}
	if c.DCachePorts != 3 {
		t.Error("D-cache ports differ from Table 2")
	}
	if c.Mem.L1D.SizeBytes != 64<<10 || c.Mem.L1D.Assoc != 2 || c.Mem.L1D.LineBytes != 32 {
		t.Error("L1D geometry differs from Table 2")
	}
	if c.Mem.L2.SizeBytes != 256<<10 || c.Mem.L2.Assoc != 4 || c.Mem.L2.LineBytes != 64 {
		t.Error("L2 geometry differs from Table 2")
	}
}

func TestBaseRemovesFPClusterIntCapability(t *testing.T) {
	c := Base()
	if c.FPClusterSimpleInt {
		t.Error("base must not execute simple int in FP cluster")
	}
	// One ALU remains as the FP pipeline's address-generation unit (see
	// the Base doc comment); steering never sends integer code there.
	if c.Clusters[1].SimpleIntALUs != 1 {
		t.Error("base FP cluster must keep exactly the AGU")
	}
}

func TestUpperBoundIsSingleCluster(t *testing.T) {
	c := UpperBound()
	if c.NumClusters() != 1 {
		t.Fatal("upper bound must be one cluster")
	}
	if c.Clusters[0].IssueWidth != 16 {
		t.Error("upper bound issue width must be 16")
	}
	if c.InterClusterBuses != 0 {
		t.Error("upper bound must have no buses")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Clusters = nil },
		func(c *Config) {
			for len(c.Clusters) <= MaxClusters {
				c.Clusters = append(c.Clusters, c.Clusters[0])
			}
		},
		func(c *Config) { c.CopyDist = [][]int{{0}} },
		func(c *Config) { c.CopyDist = CrossbarDistances(2, 0) },
		func(c *Config) {
			c.CopyDist = CrossbarDistances(2, 1)
			c.CopyDist[0][0] = 1
		},
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.MaxInFlight = 0 },
		func(c *Config) { c.Clusters[0].IssueWidth = 0 },
		func(c *Config) { c.Clusters[0].PhysRegs = 10 },
		func(c *Config) { c.CopyLatency = 0 },
		func(c *Config) { c.DCachePorts = 0 },
		func(c *Config) { c.Mem.L1D.LineBytes = 33 },
		func(c *Config) { c.Mode = IQFIFO; c.Clusters[0].FIFOs = 0 },
	}
	for i, mutate := range mutations {
		c := Clustered()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestSymmetricClustersAreIdentical(t *testing.T) {
	c := Symmetric()
	if c.NumClusters() != 2 {
		t.Fatal("symmetric machine must have 2 clusters")
	}
	if c.Clusters[0] != c.Clusters[1] {
		t.Errorf("clusters differ: %+v vs %+v", c.Clusters[0], c.Clusters[1])
	}
	if c.Clusters[0].ComplexIntUnits == 0 || c.Clusters[0].FPALUs == 0 {
		t.Error("symmetric clusters must be fully equipped")
	}
}

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	if l.SimpleInt != 1 || l.IntMul != 3 || l.IntDiv != 20 {
		t.Errorf("integer latencies wrong: %+v", l)
	}
	if l.FPALU != 2 || l.FPMul != 4 || l.FPDiv != 12 {
		t.Errorf("FP latencies wrong: %+v", l)
	}
}
