// Package config defines the machine parameters of the simulated processor.
// The defaults reproduce Table 2 of Canal, Parcerisa and González (HPCA
// 2000); presets build the paper's three machines — the conventional base,
// the two-cluster machine the steering schemes run on, and the 16-way
// upper-bound processor of Figure 14 — plus generalized N-cluster machines
// (ClusteredN) with configurable inter-cluster topologies (ring, crossbar)
// for scaling studies beyond the paper's evaluation.
package config

import (
	"fmt"

	"repro/internal/mem"
)

// MaxClusters bounds the cluster count a configuration may declare. The
// steering structures (map-table entries, per-source location masks) size
// their fixed arrays with it.
const MaxClusters = 8

// IQMode selects the issue-queue organization of a cluster.
type IQMode int

const (
	// IQOutOfOrder is a fully associative window: any ready instruction
	// may issue (the paper's main schemes).
	IQOutOfOrder IQMode = iota
	// IQFIFO models the Palacharla/Jouppi/Smith organization: a set of
	// FIFOs from whose heads instructions issue (Figure 16's comparison).
	IQFIFO
)

// Cluster describes one cluster's datapath.
type Cluster struct {
	// SimpleIntALUs count the single-cycle integer/logic units.
	SimpleIntALUs int `json:"SimpleIntALUs"`
	// ComplexIntUnits count integer multiply/divide units.
	ComplexIntUnits int `json:"ComplexIntUnits"`
	// FPALUs count pipelined FP add/compare units.
	FPALUs int `json:"FPALUs"`
	// FPMulDivUnits count FP multiply/divide units.
	FPMulDivUnits int `json:"FPMulDivUnits"`
	// IssueWidth is the per-cluster issue bandwidth (copies included).
	IssueWidth int `json:"IssueWidth"`
	// IQSize is the instruction queue capacity.
	IQSize int `json:"IQSize"`
	// PhysRegs is the physical register file size.
	PhysRegs int `json:"PhysRegs"`
	// FIFOs and FIFODepth configure the queue when Mode is IQFIFO.
	FIFOs     int `json:"FIFOs"`
	FIFODepth int `json:"FIFODepth"`
}

// Latencies gives execution latencies in cycles per operation group.
type Latencies struct {
	SimpleInt int `json:"SimpleInt"` // add/logic/shift/compare, EA computation
	IntMul    int `json:"IntMul"`
	IntDiv    int `json:"IntDiv"` // unpipelined
	FPALU     int `json:"FPALU"`  // add/sub/compare/convert/move
	FPMul     int `json:"FPMul"`
	FPDiv     int `json:"FPDiv"` // unpipelined
}

// DefaultLatencies returns SimpleScalar's default functional-unit timings,
// which the paper's framework inherits.
func DefaultLatencies() Latencies {
	return Latencies{SimpleInt: 1, IntMul: 3, IntDiv: 20, FPALU: 2, FPMul: 4, FPDiv: 12}
}

// Config is the full machine description.
type Config struct {
	// Name labels the configuration in reports.
	Name string `json:"Name"`

	// FetchWidth, DecodeWidth and RetireWidth are the front/back-end
	// bandwidths (Table 2: 8 each).
	FetchWidth  int `json:"FetchWidth"`
	DecodeWidth int `json:"DecodeWidth"`
	RetireWidth int `json:"RetireWidth"`
	// MaxInFlight bounds simultaneously in-flight instructions (ROB size).
	MaxInFlight int `json:"MaxInFlight"`
	// FrontEndDepth is the fetch-to-dispatch pipeline depth in cycles; it
	// sets the refill portion of the misprediction penalty.
	FrontEndDepth int `json:"FrontEndDepth"`

	// Clusters holds one entry per cluster (at most MaxClusters). On the
	// paper's machines index 0 is the integer cluster and index 1 (when
	// present) the FP cluster; N-cluster machines use symmetric clusters.
	Clusters []Cluster `json:"Clusters"`
	// Mode selects the issue-queue organization (all clusters).
	Mode IQMode `json:"Mode"`

	// InterClusterBuses is the number of communications per cycle per
	// direction (Table 2: 3). Zero disables inter-cluster copies (the
	// base machine).
	InterClusterBuses int `json:"InterClusterBuses"`
	// CopyLatency is the bus traversal time in cycles between any two
	// clusters (paper: 1). CopyDist, when set, overrides it per pair.
	CopyLatency int `json:"CopyLatency"`
	// CopyDist, when non-nil, is the full inter-cluster latency matrix:
	// CopyDist[from][to] is the copy latency in cycles from cluster
	// `from` to cluster `to`. It must be NumClusters×NumClusters with a
	// zero diagonal and positive off-diagonal entries. RingDistances and
	// CrossbarDistances build the two standard topologies. Nil means the
	// uniform CopyLatency (the paper's point-to-point 2-cluster fabric).
	CopyDist [][]int `json:"CopyDist"`
	// FPClusterSimpleInt reports whether the FP cluster can execute
	// simple integer operations (true for the clustered machine, false
	// for the conventional base).
	FPClusterSimpleInt bool `json:"FPClusterSimpleInt"`

	// DCachePorts is the number of L1D read/write ports (Table 2: 3).
	DCachePorts int `json:"DCachePorts"`

	// Lat holds the functional-unit latencies.
	Lat Latencies `json:"Lat"`

	// Mem configures the cache hierarchy.
	Mem mem.HierarchyConfig `json:"Mem"`

	// BTBSets, BTBAssoc and RASEntries configure indirect-target
	// prediction.
	BTBSets    int `json:"BTBSets"`
	BTBAssoc   int `json:"BTBAssoc"`
	RASEntries int `json:"RASEntries"`
}

// NumClusters returns the cluster count.
func (c *Config) NumClusters() int { return len(c.Clusters) }

// CopyLatencyBetween returns the inter-cluster copy latency from cluster
// `from` to cluster `to`: the CopyDist matrix entry when a topology is
// configured, the uniform CopyLatency otherwise.
func (c *Config) CopyLatencyBetween(from, to int) int {
	if c.CopyDist != nil {
		return c.CopyDist[from][to]
	}
	return c.CopyLatency
}

// Validate checks the configuration for consistency.
func (c *Config) Validate() error {
	if len(c.Clusters) < 1 || len(c.Clusters) > MaxClusters {
		return fmt.Errorf("config %s: %d clusters unsupported (want 1..%d)", c.Name, len(c.Clusters), MaxClusters)
	}
	if c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("config %s: non-positive pipeline widths", c.Name)
	}
	if c.MaxInFlight <= 0 {
		return fmt.Errorf("config %s: MaxInFlight must be positive", c.Name)
	}
	for i, cl := range c.Clusters {
		if cl.IssueWidth <= 0 || cl.IQSize <= 0 || cl.PhysRegs <= 0 {
			return fmt.Errorf("config %s: cluster %d has non-positive resources", c.Name, i)
		}
		if c.Mode == IQFIFO && (cl.FIFOs <= 0 || cl.FIFODepth <= 0) {
			return fmt.Errorf("config %s: cluster %d FIFO geometry missing", c.Name, i)
		}
		// Physical registers must cover the committed architectural state
		// plus at least one in-flight rename or dispatch can deadlock.
		if cl.PhysRegs < 64+1 {
			return fmt.Errorf("config %s: cluster %d needs at least 65 physical registers", c.Name, i)
		}
	}
	if len(c.Clusters) > 1 && c.InterClusterBuses > 0 && c.CopyDist == nil && c.CopyLatency <= 0 {
		return fmt.Errorf("config %s: CopyLatency must be positive with buses enabled", c.Name)
	}
	if c.CopyDist != nil {
		n := len(c.Clusters)
		if len(c.CopyDist) != n {
			return fmt.Errorf("config %s: CopyDist has %d rows, want %d", c.Name, len(c.CopyDist), n)
		}
		for i, row := range c.CopyDist {
			if len(row) != n {
				return fmt.Errorf("config %s: CopyDist row %d has %d entries, want %d", c.Name, i, len(row), n)
			}
			for j, d := range row {
				if i == j && d != 0 {
					return fmt.Errorf("config %s: CopyDist[%d][%d] = %d, diagonal must be zero", c.Name, i, j, d)
				}
				if i != j && d <= 0 {
					return fmt.Errorf("config %s: CopyDist[%d][%d] = %d, off-diagonal must be positive", c.Name, i, j, d)
				}
			}
		}
	}
	if c.DCachePorts <= 0 {
		return fmt.Errorf("config %s: DCachePorts must be positive", c.Name)
	}
	for _, f := range []mem.Config{c.Mem.L1I, c.Mem.L1D, c.Mem.L2} {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("config %s: %w", c.Name, err)
		}
	}
	return nil
}

// Clustered returns the paper's two-cluster machine (Table 2): 8-wide
// fetch/decode/retire, 64 in-flight, two clusters with 64-entry queues,
// 4-wide issue, 96 physical registers each; cluster 1 has 3 simple ALUs and
// the integer mul/div, cluster 2 has 3 simple ALUs, 3 FP ALUs and the FP
// mul/div; 3 buses per direction with 1-cycle copies.
func Clustered() *Config {
	return &Config{
		Name:          "clustered",
		FetchWidth:    8,
		DecodeWidth:   8,
		RetireWidth:   8,
		MaxInFlight:   64,
		FrontEndDepth: 2,
		Clusters: []Cluster{
			{SimpleIntALUs: 3, ComplexIntUnits: 1, IssueWidth: 4, IQSize: 64, PhysRegs: 96, FIFOs: 8, FIFODepth: 8},
			{SimpleIntALUs: 3, FPALUs: 3, FPMulDivUnits: 1, IssueWidth: 4, IQSize: 64, PhysRegs: 96, FIFOs: 8, FIFODepth: 8},
		},
		InterClusterBuses:  3,
		CopyLatency:        1,
		FPClusterSimpleInt: true,
		DCachePorts:        3,
		Lat:                DefaultLatencies(),
		Mem:                mem.DefaultHierarchyConfig(),
		BTBSets:            512,
		BTBAssoc:           4,
		RASEntries:         32,
	}
}

// Base returns the conventional microarchitecture the paper measures
// speed-ups against: the same resources as Clustered but with no simple
// integer units in the FP cluster and no inter-cluster bypasses. Integer
// programs therefore run entirely on cluster 1. The rare integer↔FP
// register transfers that remain (conversions, FP loads' address operands)
// travel through memory in a real machine; they are modeled with a 4-cycle
// transfer (see DESIGN.md).
func Base() *Config {
	c := Clustered()
	c.Name = "base"
	// One simple ALU remains as the FP pipeline's address-generation unit:
	// a conventional FP datapath computes FP-load/store addresses even
	// though it executes no general integer code (FPClusterSimpleInt=false
	// keeps the steering from sending any there).
	c.Clusters[1].SimpleIntALUs = 1
	c.FPClusterSimpleInt = false
	c.InterClusterBuses = 1
	c.CopyLatency = 4
	return c
}

// UpperBound returns Figure 14's reference machine: a single 16-way-issue
// processor (8-way integer + 8-way FP) with no partitioning and therefore
// no communication penalty. Its integer throughput matches the clustered
// machine's combined width.
func UpperBound() *Config {
	c := Clustered()
	c.Name = "upper-bound"
	c.Clusters = []Cluster{{
		SimpleIntALUs:   6,
		ComplexIntUnits: 1,
		FPALUs:          3,
		FPMulDivUnits:   1,
		IssueWidth:      16,
		IQSize:          128,
		PhysRegs:        192,
		FIFOs:           16,
		FIFODepth:       8,
	}}
	c.MaxInFlight = 64
	c.InterClusterBuses = 0
	c.FPClusterSimpleInt = true
	return c
}

// Symmetric returns a two-cluster machine with identical, fully equipped
// clusters — the "generic clustered architecture with symmetric clusters"
// the paper's conclusions claim the schemes extend to. Every instruction
// class can execute in either cluster, so steering is fully unconstrained
// (the FP-register file is still split per cluster in hardware terms; the
// simulator models the symmetric case by allowing FP mappings in both).
func Symmetric() *Config {
	c := Clustered()
	c.Name = "symmetric"
	for i := range c.Clusters {
		c.Clusters[i] = Cluster{
			SimpleIntALUs:   3,
			ComplexIntUnits: 1,
			FPALUs:          2,
			FPMulDivUnits:   1,
			IssueWidth:      4,
			IQSize:          64,
			PhysRegs:        96,
			FIFOs:           8,
			FIFODepth:       8,
		}
	}
	return c
}

// FIFOClustered returns the clustered machine with the issue queues
// organized as 8 FIFOs of depth 8 per cluster, for the Figure 16
// comparison with Palacharla/Jouppi/Smith's steering.
func FIFOClustered() *Config {
	c := Clustered()
	c.Name = "clustered-fifo"
	c.Mode = IQFIFO
	return c
}

// CrossbarDistances builds the copy-latency matrix of a full crossbar: every
// cluster reaches every other in hopLatency cycles. It reproduces the
// uniform CopyLatency behaviour in matrix form and is the default fabric of
// ClusteredN.
func CrossbarDistances(n, hopLatency int) [][]int {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = hopLatency
			}
		}
	}
	return m
}

// RingDistances builds the copy-latency matrix of a bidirectional ring:
// the latency between two clusters is their minimal hop count around the
// ring times hopLatency. Rings are the cheapest fabric to lay out and the
// one whose communication cost grows with cluster count, which is what
// makes the N-cluster steering trade-off interesting.
func RingDistances(n, hopLatency int) [][]int {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			hops := i - j
			if hops < 0 {
				hops = -hops
			}
			if around := n - hops; around < hops {
				hops = around
			}
			m[i][j] = hops * hopLatency
		}
	}
	return m
}

// ClusteredN returns an N-cluster machine for the scaling studies the
// paper's conclusions point at: n identical, fully equipped clusters (each
// the Symmetric cluster: every instruction class can execute anywhere, so
// steering is fully unconstrained), connected by a single-hop crossbar with
// 1-cycle copies. The front-end width and in-flight window scale with the
// cluster count so added clusters receive added supply (4-wide fetch and a
// 32-entry window share per cluster, matching the paper's 8/64 at n = 2).
// Swap CopyDist for RingDistances(n, CopyLatency) to study a ring fabric.
func ClusteredN(n int) *Config {
	c := Clustered()
	c.Name = fmt.Sprintf("clustered-%d", n)
	c.FetchWidth = 4 * n
	c.DecodeWidth = 4 * n
	c.RetireWidth = 4 * n
	c.MaxInFlight = 32 * n
	c.Clusters = make([]Cluster, n)
	for i := range c.Clusters {
		c.Clusters[i] = Cluster{
			SimpleIntALUs:   3,
			ComplexIntUnits: 1,
			FPALUs:          2,
			FPMulDivUnits:   1,
			IssueWidth:      4,
			IQSize:          64,
			PhysRegs:        96,
			FIFOs:           8,
			FIFODepth:       8,
		}
	}
	c.CopyDist = CrossbarDistances(n, c.CopyLatency)
	return c
}

// ClusteredNRing returns ClusteredN on a bidirectional ring instead of the
// crossbar: copies between opposite clusters pay up to ⌊n/2⌋ hops.
func ClusteredNRing(n int) *Config {
	c := ClusteredN(n)
	c.Name = fmt.Sprintf("clustered-%d-ring", n)
	c.CopyDist = RingDistances(n, c.CopyLatency)
	return c
}

// ClusteredNFIFO returns ClusteredN with the issue queues organized as
// FIFOs (the N-cluster analog of FIFOClustered), for FIFO-based steering
// on larger machines.
func ClusteredNFIFO(n int) *Config {
	c := ClusteredN(n)
	c.Name = fmt.Sprintf("clustered-%d-fifo", n)
	c.Mode = IQFIFO
	return c
}
