package rdg

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// TestRandomProgramHaltsAndIsDeterministic runs a spread of seeds through
// the functional emulator: every generated program must validate, halt
// within a bounded instruction budget, and be bit-identical when
// regenerated from the same seed (the differential harness and the fuzz
// corpus both key on that).
func TestRandomProgramHaltsAndIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := RandomProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := emu.New(p)
		if _, err := m.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !m.Halted {
			t.Fatalf("seed %d: did not halt", seed)
		}

		q := RandomProgram(seed)
		if len(q.Text) != len(p.Text) {
			t.Fatalf("seed %d: regeneration differs in length", seed)
		}
		for i := range p.Text {
			if p.Text[i] != q.Text[i] {
				t.Fatalf("seed %d: regeneration differs at PC %d", seed, i)
			}
		}
	}
}

// TestRandomProgramCoversBothSlices checks the generator's reason to exist:
// across a handful of seeds the emitted programs must contain memory
// operations, branches, FP operations and calls, so their register
// dependence graphs have non-trivial LdSt and Br slices.
func TestRandomProgramCoversBothSlices(t *testing.T) {
	var mem, br, fp int
	for seed := int64(0); seed < 10; seed++ {
		p := RandomProgram(seed)
		for _, in := range p.Text {
			switch {
			case in.Op.IsMem():
				mem++
			case in.Op.IsBranch():
				br++
			case in.Op.Class() == isa.ClassFP:
				fp++
			}
		}
		g := BuildStatic(p)
		if len(g.LdStSlice()) == 0 || len(g.BrSlice()) == 0 {
			t.Fatalf("seed %d: degenerate slices (ldst=%d br=%d)",
				seed, len(g.LdStSlice()), len(g.BrSlice()))
		}
	}
	if mem == 0 || br == 0 || fp == 0 {
		t.Fatalf("generator coverage hole: mem=%d br=%d fp=%d", mem, br, fp)
	}
}
