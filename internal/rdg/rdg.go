// Package rdg implements the register dependence graph formalism of
// Section 3.1 of the paper: a directed graph with a node per instruction
// and an edge for every true register dependence, with memory instructions
// split into two *disconnected* nodes — the effective-address calculation
// and the memory access. Backward slices over this graph define the LdSt
// slice (backward slices of address calculations) and the Br slice
// (backward slices of branches) that the steering schemes of Section 3
// approximate in hardware.
//
// The package builds RDGs two ways: statically over a program's text
// (flow-insensitive, the compiler's view) and dynamically over an
// execution window (exact, the hardware's view). It is used by the static
// partitioner's analysis mode, by tests that validate the steering
// hardware against the formal definition, and by cmd/dcardg for
// visualization.
package rdg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// NodeKind distinguishes the two halves of a split memory instruction from
// ordinary nodes.
type NodeKind uint8

const (
	// KindOp is an ordinary computation, branch, or other instruction.
	KindOp NodeKind = iota
	// KindEA is the effective-address half of a load/store.
	KindEA
	// KindAccess is the memory-access half of a load/store.
	KindAccess
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindEA:
		return "ea"
	case KindAccess:
		return "access"
	default:
		return "op"
	}
}

// NodeID identifies a node: the static instruction index and which half of
// a split memory instruction it is.
type NodeID struct {
	PC   int
	Kind NodeKind
}

// String renders "12" or "12/ea".
func (n NodeID) String() string {
	if n.Kind == KindOp {
		return fmt.Sprintf("%d", n.PC)
	}
	return fmt.Sprintf("%d/%s", n.PC, n.Kind)
}

// Graph is a register dependence graph. Edges point from producer to
// consumer (program order of the paper's arrows).
type Graph struct {
	prog *prog.Program
	// succ and pred are adjacency sets keyed by node.
	succ map[NodeID]map[NodeID]bool
	pred map[NodeID]map[NodeID]bool
	// nodes records every node ever touched so iteration is complete even
	// for isolated nodes.
	nodes map[NodeID]bool
}

func newGraph(p *prog.Program) *Graph {
	return &Graph{
		prog:  p,
		succ:  make(map[NodeID]map[NodeID]bool),
		pred:  make(map[NodeID]map[NodeID]bool),
		nodes: make(map[NodeID]bool),
	}
}

// nodesFor returns the node(s) an instruction contributes: split pairs for
// memory instructions, a single op node otherwise.
func nodesFor(in isa.Inst, pc int) []NodeID {
	if in.Op.IsMem() {
		return []NodeID{{PC: pc, Kind: KindEA}, {PC: pc, Kind: KindAccess}}
	}
	return []NodeID{{PC: pc, Kind: KindOp}}
}

// consumerNode returns which node of the instruction consumes register r:
// for memory instructions the EA node consumes the base address and the
// access node consumes store data; everything else is the op node.
func consumerNode(in isa.Inst, pc int, r isa.Reg) NodeID {
	if in.Op.IsMem() {
		if r == in.Rs1 {
			return NodeID{PC: pc, Kind: KindEA}
		}
		return NodeID{PC: pc, Kind: KindAccess}
	}
	return NodeID{PC: pc, Kind: KindOp}
}

// producerNode returns the node that produces the instruction's register
// result: the access node for loads, the op node otherwise.
func producerNode(in isa.Inst, pc int) NodeID {
	if in.Op.IsLoad() {
		return NodeID{PC: pc, Kind: KindAccess}
	}
	return NodeID{PC: pc, Kind: KindOp}
}

func (g *Graph) addNode(n NodeID) {
	g.nodes[n] = true
}

func (g *Graph) addEdge(from, to NodeID) {
	if from == to {
		return
	}
	g.addNode(from)
	g.addNode(to)
	if g.succ[from] == nil {
		g.succ[from] = make(map[NodeID]bool)
	}
	if g.pred[to] == nil {
		g.pred[to] = make(map[NodeID]bool)
	}
	g.succ[from][to] = true
	g.pred[to][from] = true
}

// Nodes returns all nodes, sorted for deterministic iteration.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Preds returns the producers feeding node n, sorted.
func (g *Graph) Preds(n NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.pred[n]))
	for p := range g.pred[n] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Succs returns the consumers fed by node n, sorted.
func (g *Graph) Succs(n NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.succ[n]))
	for s := range g.succ[n] {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// HasEdge reports whether producer → consumer is in the graph.
func (g *Graph) HasEdge(from, to NodeID) bool { return g.succ[from][to] }

// NumEdges counts edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.succ {
		n += len(s)
	}
	return n
}

// BackwardSlice returns the set of nodes from which v is reachable,
// including v (the paper's definition, after Sastry et al.).
func (g *Graph) BackwardSlice(v NodeID) map[NodeID]bool {
	slice := map[NodeID]bool{v: true}
	work := []NodeID{v}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range g.Preds(n) {
			if !slice[p] {
				slice[p] = true
				work = append(work, p)
			}
		}
	}
	return slice
}

// SliceOf unions the backward slices of every defining node of the given
// kind: EA nodes for the LdSt slice, branch nodes for the Br slice. The
// result is keyed by static PC — an instruction belongs to the slice if
// any of its nodes does, matching how the (unsplit) steering hardware
// treats membership.
func (g *Graph) SliceOf(defining func(in isa.Inst, n NodeID) bool) map[int]bool {
	out := make(map[int]bool)
	for _, n := range g.Nodes() {
		if n.PC >= len(g.prog.Text) {
			continue
		}
		if !defining(g.prog.Text[n.PC], n) {
			continue
		}
		for m := range g.BackwardSlice(n) {
			out[m.PC] = true
		}
	}
	return out
}

// LdStSlice returns the PCs in the union of backward slices of all
// effective-address calculations.
func (g *Graph) LdStSlice() map[int]bool {
	return g.SliceOf(func(in isa.Inst, n NodeID) bool {
		return n.Kind == KindEA
	})
}

// BrSlice returns the PCs in the union of backward slices of all branches.
func (g *Graph) BrSlice() map[int]bool {
	return g.SliceOf(func(in isa.Inst, n NodeID) bool {
		return n.Kind == KindOp && in.Op.IsBranch()
	})
}

// Dot renders the graph in Graphviz DOT form, shading the LdSt slice like
// the paper's Figure 2.
func (g *Graph) Dot(name string) string {
	ldst := g.LdStSlice()
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", name)
	for _, n := range g.Nodes() {
		label := n.String()
		if n.PC < len(g.prog.Text) {
			label = fmt.Sprintf("%s: %s", n, g.prog.Text[n.PC])
		}
		shade := ""
		if ldst[n.PC] {
			shade = ", style=filled, fillcolor=gray85"
		}
		fmt.Fprintf(&sb, "  %q [label=%q%s];\n", n.String(), label, shade)
	}
	for _, from := range g.Nodes() {
		for _, to := range g.Succs(from) {
			fmt.Fprintf(&sb, "  %q -> %q;\n", from.String(), to.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// BuildStatic constructs the flow-insensitive static RDG: every
// instruction that writes register r is connected to every instruction
// that reads r. This over-approximates the dynamic dependences — it is the
// view a compiler has without path information, and what the conservative
// static partitioner analyzes.
func BuildStatic(p *prog.Program) *Graph {
	g := newGraph(p)
	writers := make(map[isa.Reg][]NodeID)
	for pc, in := range p.Text {
		for _, n := range nodesFor(in, pc) {
			g.addNode(n)
		}
		if d, ok := in.Dst(); ok {
			writers[d] = append(writers[d], producerNode(in, pc))
		}
	}
	for pc, in := range p.Text {
		for _, r := range in.Srcs(nil) {
			to := consumerNode(in, pc, r)
			for _, from := range writers[r] {
				g.addEdge(from, to)
			}
		}
	}
	return g
}

// BuildDynamic constructs the exact RDG observed over the first window
// executed instructions (0 = run to halt, bounded by maxDefault). Each
// static instruction is still one node (two for memory); edges are the
// dependences that actually occurred.
func BuildDynamic(p *prog.Program, window uint64) (*Graph, error) {
	const maxDefault = 1_000_000
	if window == 0 {
		window = maxDefault
	}
	g := newGraph(p)
	last := make(map[isa.Reg]NodeID)
	m := emu.New(p)
	for i := uint64(0); i < window && !m.Halted; i++ {
		st, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("rdg: dynamic build: %w", err)
		}
		in := st.Inst
		for _, n := range nodesFor(in, st.PC) {
			g.addNode(n)
		}
		for _, r := range in.Srcs(nil) {
			if from, ok := last[r]; ok {
				g.addEdge(from, consumerNode(in, st.PC, r))
			}
		}
		if d, ok := in.Dst(); ok {
			last[d] = producerNode(in, st.PC)
		}
	}
	return g, nil
}
