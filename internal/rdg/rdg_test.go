package rdg

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/steer"
	"repro/internal/workload"
)

// feedSlice presents the committed instruction stream to the steering
// hardware in decode order, as the pipeline would.
func feedSlice(t *testing.T, p *prog.Program, s core.Steerer) {
	t.Helper()
	m := emu.New(p)
	for i := 0; i < 5_000 && !m.Halted; i++ {
		st, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		s.Steer(&core.SteerInfo{PC: st.PC, Inst: st.Inst, Forced: core.AnyCluster})
	}
}

// fig2 is the paper's running example; node numbers below refer to these
// instruction indices.
const fig2 = `
.data
A: .word 0, 0, 0, 0
B: .word 8, 12, 20, 36
C: .word 2, 1, 5, 6
.text
     addi r9, r0, 32    ; 0
     addi r1, r0, 0     ; 1
for: lui  r2, 1         ; 2
     ori  r2, r2, 32    ; 3
     add  r2, r2, r1    ; 4
     ld   r3, 0(r2)     ; 5
     lui  r4, 1         ; 6
     ori  r4, r4, 64    ; 7
     add  r4, r4, r1    ; 8
     ld   r5, 0(r4)     ; 9
     beq  r5, r0, l1    ; 10
     div  r7, r3, r5    ; 11
     j    l2            ; 12
l1:  addi r7, r0, 0     ; 13
l2:  lui  r8, 1         ; 14
     add  r8, r8, r1    ; 15
     st   r7, 0(r8)     ; 16
     addi r1, r1, 8     ; 17
     bne  r1, r9, for   ; 18
     halt               ; 19
`

func mustFig2(t *testing.T) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("fig2", fig2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMemoryNodesAreSplitAndDisconnected(t *testing.T) {
	g := BuildStatic(mustFig2(t))
	ea := NodeID{PC: 5, Kind: KindEA}
	acc := NodeID{PC: 5, Kind: KindAccess}
	if !g.nodes[ea] || !g.nodes[acc] {
		t.Fatal("load not split into EA and access nodes")
	}
	if g.HasEdge(ea, acc) || g.HasEdge(acc, ea) {
		t.Fatal("EA and access nodes must be disconnected (paper §3.1)")
	}
	// The address chain feeds the EA node, not the access node.
	add := NodeID{PC: 4, Kind: KindOp}
	if !g.HasEdge(add, ea) {
		t.Error("address producer not connected to EA node")
	}
	if g.HasEdge(add, acc) {
		t.Error("address producer wrongly connected to access node")
	}
}

func TestLoadValueFlowsFromAccessNode(t *testing.T) {
	g := BuildStatic(mustFig2(t))
	// ld r5 (node 9/access) feeds beq (10) and div (11).
	acc := NodeID{PC: 9, Kind: KindAccess}
	if !g.HasEdge(acc, NodeID{PC: 10, Kind: KindOp}) {
		t.Error("load value not feeding the branch")
	}
	if !g.HasEdge(acc, NodeID{PC: 11, Kind: KindOp}) {
		t.Error("load value not feeding the divide")
	}
}

func TestStoreDataFeedsAccessNode(t *testing.T) {
	g := BuildStatic(mustFig2(t))
	// div r7 (11) and the else-branch addi r7 (13) feed st's access node.
	acc := NodeID{PC: 16, Kind: KindAccess}
	if !g.HasEdge(NodeID{PC: 11, Kind: KindOp}, acc) {
		t.Error("store data (div) not feeding access node")
	}
	if !g.HasEdge(NodeID{PC: 13, Kind: KindOp}, acc) {
		t.Error("store data (else) not feeding access node")
	}
	// The address chain feeds st's EA node.
	if !g.HasEdge(NodeID{PC: 15, Kind: KindOp}, NodeID{PC: 16, Kind: KindEA}) {
		t.Error("store address not feeding EA node")
	}
}

func TestBackwardSliceOfLoopBranch(t *testing.T) {
	// The paper's example: the backward slice of node 18 (bne) contains
	// the loop-control chain {17, 1, 0} and itself — but NOT the divide.
	g, err := BuildDynamic(mustFig2(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	slice := g.BackwardSlice(NodeID{PC: 18, Kind: KindOp})
	for _, pc := range []int{18, 17, 1, 0} {
		found := false
		for n := range slice {
			if n.PC == pc {
				found = true
			}
		}
		if !found {
			t.Errorf("PC %d missing from the bne backward slice", pc)
		}
	}
	for n := range slice {
		if n.PC == 11 {
			t.Error("divide must not be in the loop branch's backward slice")
		}
	}
}

func TestLdStSliceMatchesFigure2(t *testing.T) {
	g, err := BuildDynamic(mustFig2(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	ldst := g.LdStSlice()
	// Address chains (bases, index adds, the r1 chain) are in; the divide
	// and the pure branch-control instruction r9 are not. Note PC 5/9/16
	// are in because their EA nodes define slices.
	for _, pc := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 14, 15, 16, 17} {
		if !ldst[pc] {
			t.Errorf("PC %d should be in the LdSt slice", pc)
		}
	}
	for _, pc := range []int{0, 11, 12, 10, 18} {
		if ldst[pc] {
			t.Errorf("PC %d should NOT be in the LdSt slice", pc)
		}
	}
}

func TestBrSliceMatchesFigure2(t *testing.T) {
	g, err := BuildDynamic(mustFig2(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	br := g.BrSlice()
	// Loop control {0,1,17,18}, the compare {10} and its input load {9}
	// are in; the load's address chain is not (disconnected EA).
	for _, pc := range []int{0, 1, 9, 10, 17, 18} {
		if !br[pc] {
			t.Errorf("PC %d should be in the Br slice", pc)
		}
	}
	for _, pc := range []int{2, 3, 4, 6, 7, 11, 14, 15, 16} {
		if br[pc] {
			t.Errorf("PC %d should NOT be in the Br slice", pc)
		}
	}
}

// The dynamic steering hardware (steer.Slice) must converge to the formal
// dynamic-RDG slice on steady-state code: the hardware learns one producer
// level per execution, so after enough iterations the loop body matches.
func TestHardwareSliceConvergesToFormalSlice(t *testing.T) {
	p := mustFig2(t)
	g, err := BuildDynamic(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	formal := g.LdStSlice()

	hw := steer.NewSlice(steer.LdStSlice)
	feedSlice(t, p, hw)

	// Compare on loop-body PCs (2..18); one-shot init code may never be
	// re-decoded, which is a real property of the hardware scheme.
	for pc := 2; pc <= 18; pc++ {
		if hw.InSlice(pc) != formal[pc] {
			t.Errorf("PC %d: hardware=%v formal=%v", pc, hw.InSlice(pc), formal[pc])
		}
	}
}

func TestStaticOverapproximatesDynamic(t *testing.T) {
	p := mustFig2(t)
	static := BuildStatic(p)
	dynamic, err := BuildDynamic(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every dynamic edge must appear in the static graph.
	for from, tos := range dynamic.succ {
		for to := range tos {
			if !static.HasEdge(from, to) {
				t.Errorf("dynamic edge %v->%v missing statically", from, to)
			}
		}
	}
	if static.NumEdges() < dynamic.NumEdges() {
		t.Error("static graph smaller than dynamic")
	}
}

func TestDotOutput(t *testing.T) {
	g := BuildStatic(mustFig2(t))
	dot := g.Dot("fig2")
	for _, want := range []string{"digraph", "->", "fillcolor"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestWorkloadGraphsBuild(t *testing.T) {
	for _, name := range workload.Names() {
		p, err := workload.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		g := BuildStatic(p)
		if len(g.Nodes()) == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty static RDG", name)
		}
		dg, err := BuildDynamic(p, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		ldst := dg.LdStSlice()
		if len(ldst) == 0 {
			t.Errorf("%s: empty LdSt slice", name)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if (NodeID{PC: 3}).String() != "3" {
		t.Error("op node string wrong")
	}
	if (NodeID{PC: 3, Kind: KindEA}).String() != "3/ea" {
		t.Error("ea node string wrong")
	}
	if KindAccess.String() != "access" || KindOp.String() != "op" {
		t.Error("kind strings wrong")
	}
}
