package rdg

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/prog"
)

// RandomProgram returns a deterministic pseudo-random, structurally valid,
// halting program for the given seed. The generator targets the dependence
// shapes this package formalizes: straight-line blocks of mixed simple and
// complex integer arithmetic, FP chains that force placement on an
// asymmetric machine, counted loops, call/return pairs (exercising the
// RAS), forward skips, and memory bursts over a small set of hot offsets in
// three access widths — so store-to-load forwarding, partial overlap and
// address-unknown blocking all occur in the LSQ, and the register
// dependence graph spans both the LdSt and Br slices.
//
// The same seed always yields the same program; the differential harness
// and the fuzz corpus in internal/core key their cases on it.
func RandomProgram(seed int64) *prog.Program {
	r := rand.New(rand.NewSource(seed))
	b := prog.NewBuilder(fmt.Sprintf("rdg-%d", seed))
	b.Space("mem", 4096)

	// Register conventions: r20 = memory base, r21..r23 loop counters,
	// r1..r12 integer data, f0..f7 FP data, r31 link register.
	b.La(isa.R(20), "mem")
	for i := 1; i <= 12; i++ {
		b.Li(isa.R(i), int32(r.Intn(2000)-1000))
	}
	for i := 0; i < 8; i++ {
		b.Fcvtif(isa.F(i), isa.R(1+r.Intn(12)))
	}
	intReg := func() isa.Reg { return isa.R(1 + r.Intn(12)) }
	fpReg := func() isa.Reg { return isa.F(r.Intn(8)) }
	// hotOffs is a small palette of 8-byte-aligned offsets reused by most
	// accesses, so loads and stores frequently alias.
	var hotOffs [8]int32
	for i := range hotOffs {
		hotOffs[i] = int32(r.Intn(500)) * 8
	}
	off := func() int32 { return hotOffs[r.Intn(len(hotOffs))] }

	nFuncs := r.Intn(3)
	funcLabel := func(i int) string { return fmt.Sprintf("fn%d", i) }

	skipN := 0
	emitOne := func(blk int) {
		switch r.Intn(16) {
		case 0, 1, 2:
			ops := []isa.Opcode{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT}
			b.Op3(ops[r.Intn(len(ops))], intReg(), intReg(), intReg())
		case 3:
			b.OpI(isa.ADDI, intReg(), intReg(), int32(r.Intn(64)-32))
		case 4:
			b.OpI(isa.SRAI, intReg(), intReg(), int32(r.Intn(8)))
		case 5:
			switch r.Intn(3) {
			case 0:
				b.Mul(intReg(), intReg(), intReg())
			case 1:
				b.Div(intReg(), intReg(), intReg())
			default:
				b.Rem(intReg(), intReg(), intReg())
			}
		case 6, 7, 8:
			// Memory burst over the hot offsets: widths 8/4/1 so accesses
			// partially overlap, and a store is often shortly followed by a
			// load of the same or an overlapping address.
			o := off()
			switch r.Intn(6) {
			case 0:
				b.Ld(intReg(), isa.R(20), o)
			case 1:
				b.St(intReg(), isa.R(20), o)
			case 2:
				b.Lw(intReg(), isa.R(20), o+int32(r.Intn(2))*4)
			case 3:
				b.Sw(intReg(), isa.R(20), o+int32(r.Intn(2))*4)
			case 4:
				b.Lb(intReg(), isa.R(20), o+int32(r.Intn(8)))
			default:
				b.Sb(intReg(), isa.R(20), o+int32(r.Intn(8)))
			}
		case 9:
			// Store-to-load forwarding pair at one address, with the load's
			// value immediately consumed so the forwarded result is on the
			// critical path.
			o := off()
			d := intReg()
			b.St(intReg(), isa.R(20), o)
			b.Ld(d, isa.R(20), o)
			b.Add(intReg(), d, intReg())
		case 10, 11:
			// FP chain: forces the FP cluster on asymmetric machines and
			// creates inter-cluster traffic when its integer inputs live in
			// the other cluster.
			switch r.Intn(4) {
			case 0:
				b.Fadd(fpReg(), fpReg(), fpReg())
			case 1:
				b.Fmul(fpReg(), fpReg(), fpReg())
			case 2:
				b.Fsub(fpReg(), fpReg(), fpReg())
			default:
				b.Fdiv(fpReg(), fpReg(), fpReg())
			}
		case 12:
			b.Fcvtfi(intReg(), fpReg())
		case 13:
			// Forward skip over one instruction (a conditional the predictor
			// sees both ways).
			skip := fmt.Sprintf("skip%d", skipN)
			skipN++
			b.Beq(intReg(), intReg(), skip)
			b.OpI(isa.ADDI, intReg(), intReg(), 1)
			b.Label(skip)
		case 14:
			if nFuncs > 0 {
				b.Jal(isa.R(31), funcLabel(r.Intn(nFuncs)))
			} else {
				b.Xor(intReg(), intReg(), intReg())
			}
		default:
			b.Xor(intReg(), intReg(), intReg())
		}
	}

	nBlocks := 2 + r.Intn(4)
	for blk := 0; blk < nBlocks; blk++ {
		loop := r.Intn(2) == 0
		label := ""
		if loop {
			label = fmt.Sprintf("loop%d", blk)
			b.Li(isa.R(21+blk%3), int32(2+r.Intn(20)))
			b.Label(label)
		}
		nInsts := 3 + r.Intn(15)
		for i := 0; i < nInsts; i++ {
			emitOne(blk)
		}
		if loop {
			ctr := isa.R(21 + blk%3)
			b.Addi(ctr, ctr, -1)
			b.Bne(ctr, isa.R(0), label)
		}
	}
	b.Halt()

	// Leaf helpers called via JAL/JR r31: straight-line bodies placed after
	// the HALT so fall-through never reaches them.
	for f := 0; f < nFuncs; f++ {
		b.Label(funcLabel(f))
		n := 2 + r.Intn(5)
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				b.Add(intReg(), intReg(), intReg())
			case 1:
				b.Ld(intReg(), isa.R(20), off())
			case 2:
				b.St(intReg(), isa.R(20), off())
			default:
				b.OpI(isa.ADDI, intReg(), intReg(), int32(r.Intn(16)))
			}
		}
		b.Jr(isa.R(31))
	}
	return b.MustBuild()
}
