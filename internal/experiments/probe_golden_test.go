package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/probe"
)

// TestGoldenProbeInvariants sweeps the golden grid — every scheme
// including the base and upper-bound machines, on both pinned benchmarks —
// and enforces the probe layer's three contracts on each cell:
//
//  1. Passivity: the probed result's digest equals the detached result's
//     (job.ResultDigest compares the full measurement record).
//  2. Totality: the attribution report's bucket sum equals its total
//     equals stats.Run.Cycles — the stall taxonomy misses nothing and
//     double-counts nothing.
//  3. Balance identity: the balance histogram the probe rebuilds from its
//     per-cycle samples equals stats.Run.Balance bit-for-bit, proving the
//     sample stream the probe sees is the one the statistics are made of.
func TestGoldenProbeInvariants(t *testing.T) {
	opts := goldenOpts()
	ctx := context.Background()
	for _, scheme := range goldenSchemes() {
		for _, bench := range opts.Benchmarks {
			t.Run(scheme+"/"+bench, func(t *testing.T) {
				params := opts.Params
				j, err := job.Spec{
					Scheme:    scheme,
					Benchmark: bench,
					Warmup:    opts.Warmup,
					Measure:   opts.Measure,
					Params:    &params,
				}.Plan()
				if err != nil {
					t.Fatal(err)
				}
				detached, err := job.Direct{}.Run(ctx, j)
				if err != nil {
					t.Fatal(err)
				}
				at := probe.NewAttribution()
				probed, err := job.RunProbed(ctx, j, at)
				if err != nil {
					t.Fatal(err)
				}
				if gd, pd := job.ResultDigest(detached), job.ResultDigest(probed); gd != pd {
					t.Errorf("probed result digest %s differs from detached %s (probe is not passive)", pd, gd)
				}
				rep := at.Report()
				if rep.Sum() != rep.TotalCycles {
					t.Errorf("taxonomy not exclusive: buckets sum to %d, total %d", rep.Sum(), rep.TotalCycles)
				}
				if rep.TotalCycles != probed.Cycles {
					t.Errorf("taxonomy not total: attributed %d cycles, run measured %d", rep.TotalCycles, probed.Cycles)
				}
				if *at.Balance() != probed.Balance {
					t.Errorf("probe-rebuilt balance histogram differs from stats.Run.Balance")
				}
			})
		}
	}
}

// TestGridAttribution runs a small grid with Opts.Attrib set and checks
// the plumbing end to end: every simulated cell has a retrievable report
// whose totals reconcile with the cell's measurements, the export carries
// the reports alongside unchanged digests, and the text renderer shows
// them.
func TestGridAttribution(t *testing.T) {
	opts := Options{Warmup: 2_000, Measure: 10_000,
		Benchmarks: []string{"go"}, Params: goldenOpts().Params}
	opts.Attrib = true
	res, err := Run([]string{"general"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{BaseScheme, "general"} {
		rep := res.Attribution(scheme, "go")
		if rep == nil {
			t.Fatalf("%s: no attribution recorded", scheme)
		}
		run := res.Get(scheme, "go")
		if rep.TotalCycles != run.Cycles || rep.Sum() != run.Cycles {
			t.Errorf("%s: attribution (%d total, %d summed) does not reconcile with %d measured cycles",
				scheme, rep.TotalCycles, rep.Sum(), run.Cycles)
		}
	}

	exp, err := res.Export()
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range exp.Cells {
		if cell.Attribution == nil {
			t.Errorf("%s/%s: export cell carries no attribution", cell.Job.Scheme, cell.Job.Benchmark)
		} else if cell.Attribution.TotalCycles != cell.Result.Cycles {
			t.Errorf("%s/%s: exported attribution disagrees with the exported result",
				cell.Job.Scheme, cell.Job.Benchmark)
		}
		if got := job.ResultDigest(cell.Result); got != cell.ResultDigest {
			t.Errorf("%s/%s: export digest drifted under attribution", cell.Job.Scheme, cell.Job.Benchmark)
		}
	}

	if txt := res.FormatAttribution(); !strings.Contains(txt, "general/go") {
		t.Errorf("attribution rendering misses the general/go cell:\n%s", txt)
	}

	// A grid without Attrib keeps the surfaces empty.
	opts.Attrib = false
	plain, err := Run([]string{"general"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Attribution("general", "go") != nil || plain.FormatAttribution() != "" {
		t.Error("unattributed grid still carries attribution")
	}
}
