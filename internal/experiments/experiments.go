// Package experiments runs the paper's evaluation grid — steering scheme ×
// SpecInt95-analog benchmark — and formats each table and figure of Canal,
// Parcerisa and González (HPCA 2000) from the measurements. cmd/dcabench
// and the repository's benchmark targets are thin wrappers around it.
package experiments

import (
	"context"

	"repro/internal/job"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/steer"
)

// BaseScheme and UBScheme are the pseudo-scheme names for the two
// reference machines: the conventional base (speed-up denominator) and the
// 16-way upper bound of Figure 14. They are re-exported from the job
// layer, which owns scheme resolution.
const (
	BaseScheme = job.BaseScheme
	UBScheme   = job.UBScheme
)

// Options controls a grid run.
type Options struct {
	// Warmup and Measure are per-run committed-instruction budgets. The
	// paper used 100M after skipping 100M; defaults are scaled down to
	// laptop time (shape, not absolute numbers, is the target).
	Warmup  uint64
	Measure uint64
	// Benchmarks selects the workloads. Nil or empty means all eight,
	// planned lazily by the job layer (workload.Names() is consulted when
	// the grid is planned, not when Options is built).
	Benchmarks []string
	// Clusters is the cluster count of the steered machine: 0 or 2 run
	// the paper's asymmetric two-cluster processor; any other value runs
	// config.ClusteredN (symmetric clusters, crossbar fabric). The base
	// and upper-bound pseudo-schemes always use their dedicated machines
	// so speed-ups stay normalized to the paper's baseline.
	Clusters int
	// Params are the balance-machinery constants; Params.Clusters is
	// overridden per cell to match the machine actually simulated.
	Params steer.Params
	// Parallelism bounds the number of grid cells simulated concurrently;
	// 0 or negative means runtime.GOMAXPROCS(0). Results are identical at
	// every setting — each cell owns its machine.
	Parallelism int
	// Progress, when non-nil, is invoked once per completed cell with
	// running totals and an ETA. The engine serializes the calls, but they
	// arrive from worker goroutines — keep the callback fast.
	Progress func(Progress)
	// Runner executes each cell; nil means job.Direct{} (simulate
	// in-process). Inject a store.Cached to reuse results across grids, or
	// a job.Checkpointed to simulate each cell's warm phase once and replay
	// measurement runs from the warm-state snapshot (worthwhile when the
	// same grid runs repeatedly — benchmark iterations, window sweeps).
	// Either way results are bit-identical to fresh direct simulations
	// (golden-locked).
	Runner job.Runner
	// Attrib attaches a cycle-attribution probe to every cell that
	// actually simulates; the per-cell stall breakdowns are retrievable via
	// Result.Attribution and ride along in Export. Attribution is
	// observability, never behaviour: the measurements and their digests
	// are bit-identical with it on or off (TestGoldenProbeInvariants).
	Attrib bool
}

// DefaultOptions returns the standard grid configuration. The default
// window is 100k warm-up + 1M measured instructions per cell — raised 4x
// after the allocation-free hot-loop rewrite made cycles cheap (see
// BENCH_core.json and the window-length sensitivity section of
// EXPERIMENTS.md). Benchmarks is left nil — the full set is planned
// lazily by the job layer — so building Options allocates nothing per
// call.
func DefaultOptions() Options {
	return Options{
		Warmup:  100_000,
		Measure: 1_000_000,
		Params:  steer.DefaultParams(),
	}
}

// Result holds the measurement grid.
type Result struct {
	// Runs maps scheme -> benchmark -> measurements.
	Runs map[string]map[string]*stats.Run
	// Opts echoes the options the grid ran with.
	Opts Options

	// attrib holds the per-cell stall breakdowns when Opts.Attrib was set
	// (the job.Attributed wrapper the grid ran through).
	attrib *job.Attributed
}

// RunOne simulates a single (scheme, benchmark) cell: it plans the cell's
// canonical job and executes it through Options.Runner (job.Direct when
// unset).
func RunOne(scheme, bench string, opts Options) (*stats.Run, error) {
	params := opts.Params
	j, err := job.Spec{
		Scheme:    scheme,
		Benchmark: bench,
		Clusters:  opts.Clusters,
		Warmup:    opts.Warmup,
		Measure:   opts.Measure,
		Params:    &params,
	}.Plan()
	if err != nil {
		return nil, err
	}
	runner := opts.Runner
	if runner == nil {
		runner = job.Direct{}
	}
	return runner.Run(context.Background(), j)
}

// Run simulates the grid for the given schemes (BaseScheme is always added
// — every figure normalizes to it). Cells run concurrently on a worker
// pool; see RunContext for cancellation and Options.Parallelism for the
// pool size.
func Run(schemes []string, opts Options) (*Result, error) {
	return RunContext(context.Background(), schemes, opts)
}

// Get returns the run for (scheme, benchmark), or nil when absent.
func (r *Result) Get(scheme, bench string) *stats.Run {
	if m, ok := r.Runs[scheme]; ok {
		return m[bench]
	}
	return nil
}

// cellKey re-plans the cell's canonical job and returns its content
// digest; planning is deterministic, so the key matches the job the grid
// actually ran.
func (r *Result) cellKey(scheme, bench string) (string, error) {
	params := r.Opts.Params
	j, err := job.Spec{
		Scheme:    scheme,
		Benchmark: bench,
		Clusters:  r.Opts.Clusters,
		Warmup:    r.Opts.Warmup,
		Measure:   r.Opts.Measure,
		Params:    &params,
	}.Plan()
	if err != nil {
		return "", err
	}
	return j.Key(), nil
}

// Attribution returns the stall breakdown recorded for (scheme, bench):
// nil when the grid ran without Opts.Attrib, or when the cell never
// simulated in this process (e.g. it was served from an injected cache,
// whose machines the attribution wrapper never saw).
func (r *Result) Attribution(scheme, bench string) *probe.Report {
	if r.attrib == nil {
		return nil
	}
	key, err := r.cellKey(scheme, bench)
	if err != nil {
		return nil
	}
	return r.attrib.Report(key)
}

// Speedup returns the percent IPC improvement of scheme over the base
// machine on bench.
func (r *Result) Speedup(scheme, bench string) float64 {
	run, base := r.Get(scheme, bench), r.Get(BaseScheme, bench)
	if run == nil || base == nil {
		return 0
	}
	return stats.Speedup(run, base)
}

// MeanSpeedup returns the geometric-mean speed-up of a scheme across the
// grid's benchmarks (the figures' "G-mean"/"H-mean" summary bar).
func (r *Result) MeanSpeedup(scheme string) float64 {
	if len(r.Opts.Benchmarks) == 0 {
		return 0
	}
	var runs, bases []*stats.Run
	for _, bench := range r.Opts.Benchmarks {
		run, base := r.Get(scheme, bench), r.Get(BaseScheme, bench)
		if run == nil || base == nil {
			continue
		}
		runs = append(runs, run)
		bases = append(bases, base)
	}
	return stats.GeoMeanSpeedup(runs, bases)
}

// MeanComm returns the average communications per instruction of a scheme
// across benchmarks, split into (total, critical).
func (r *Result) MeanComm(scheme string) (total, critical float64) {
	if len(r.Opts.Benchmarks) == 0 {
		return 0, 0
	}
	n := 0
	for _, bench := range r.Opts.Benchmarks {
		if run := r.Get(scheme, bench); run != nil {
			total += run.CommPerInstr()
			critical += run.CriticalCommPerInstr()
			n++
		}
	}
	if n > 0 {
		total /= float64(n)
		critical /= float64(n)
	}
	return total, critical
}

// MergedBalance returns the scheme's ready-difference distribution summed
// over all benchmarks (the paper's "SpecInt95 average" histograms).
func (r *Result) MergedBalance(scheme string) stats.BalanceHist {
	var h stats.BalanceHist
	for _, bench := range r.Opts.Benchmarks {
		if run := r.Get(scheme, bench); run != nil {
			h.Merge(&run.Balance)
		}
	}
	return h
}
