package experiments

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/job/store"
	"repro/internal/stats"
	"repro/internal/steer"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from the current simulator")

// goldenOpts is the fixed grid the golden file pins: every registered
// scheme plus the base and upper-bound machines, on the paper's two
// benchmarks with known-interesting behaviour, at a short window.
func goldenOpts() Options {
	return Options{Warmup: 5_000, Measure: 25_000,
		Benchmarks: []string{"go", "compress"}, Params: steer.DefaultParams()}
}

// goldenSchemes returns the full scheme set the golden grid must cover, in
// the file's deterministic order.
func goldenSchemes() []string {
	names := steer.Names()
	sort.Strings(names)
	return append([]string{BaseScheme, UBScheme}, names...)
}

// formatGoldenRun renders one measurement record in the fixed format of
// testdata/golden_n2.txt (captured from the pre-generalization two-cluster
// simulator and re-pinned across the allocation-free hot-loop rewrite and
// the job-layer refactor).
func formatGoldenRun(scheme, bench string, r *stats.Run) string {
	return fmt.Sprintf("%s/%s cycles=%d instrs=%d copies=%d critcopies=%d steered=%d,%d repl=%.6f mispred=%d branches=%d l1d=%.6f l1i=%.6f balsamples=%d balbuckets=%v",
		scheme, bench, r.Cycles, r.Instructions, r.Copies, r.CriticalCopies,
		r.SteeredAt(0), r.SteeredAt(1), r.ReplicatedRegsAvg, r.Mispredicts, r.Branches,
		r.L1DMissRate, r.L1IMissRate, r.Balance.Samples, r.Balance.Buckets)
}

// goldenLine simulates one cell and renders its golden record.
func goldenLine(scheme, bench string, opts Options, t *testing.T) string {
	t.Helper()
	r, err := RunOne(scheme, bench, opts)
	if err != nil {
		t.Fatalf("%s/%s: %v", scheme, bench, err)
	}
	return formatGoldenRun(scheme, bench, r)
}

// TestGoldenTwoClusterBitIdentity replays the full scheme × benchmark grid
// on the paper's two-cluster machines and requires every statistic — cycle
// counts, copies, per-cluster steering splits, the full balance histogram —
// to be bit-identical to the golden record. The file was captured before
// the N-cluster generalization and re-checked, unchanged, after the
// allocation-free hot-loop rewrite: any behavioural drift of the N = 2
// path, however small, fails this test. Regenerate deliberately with
// `go test ./internal/experiments -run TestGolden -update`.
func TestGoldenTwoClusterBitIdentity(t *testing.T) {
	opts := goldenOpts()

	if *updateGolden {
		f, err := os.Create("testdata/golden_n2.txt")
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range goldenSchemes() {
			for _, bench := range opts.Benchmarks {
				fmt.Fprintln(f, goldenLine(scheme, bench, opts, t))
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return
	}

	covered := verifyGoldenFile(t, opts)

	// Completeness gate: a steering scheme registered without golden
	// coverage would silently escape the bit-identity lock.
	for _, scheme := range goldenSchemes() {
		if !covered[scheme] {
			t.Errorf("scheme %q has no golden coverage (rerun with -update)", scheme)
		}
	}
}

// verifyGoldenFile replays every cell recorded in testdata/golden_n2.txt
// under opts and requires each rendered record to match byte for byte. It
// returns the set of schemes the file covered.
func verifyGoldenFile(t *testing.T, opts Options) map[string]bool {
	t.Helper()
	f, err := os.Open("testdata/golden_n2.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	covered := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		want := strings.TrimSpace(sc.Text())
		if want == "" {
			continue
		}
		cell := strings.SplitN(strings.Fields(want)[0], "/", 2)
		if len(cell) != 2 {
			t.Fatalf("malformed golden line: %q", want)
		}
		scheme, bench := cell[0], cell[1]
		covered[scheme] = true
		t.Run(scheme+"/"+bench, func(t *testing.T) {
			if got := goldenLine(scheme, bench, opts, t); got != want {
				t.Errorf("stats diverged from pre-refactor golden\n got: %s\nwant: %s", got, want)
			}
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return covered
}

// TestGoldenCheckpointedRunner replays the same golden grid through a
// shared job.Checkpointed runner: planning each cell, warming it behind a
// warm-state snapshot and measuring must leave every statistic — cycle
// counts, copies, steering splits, the full balance histogram —
// bit-identical to the per-cycle, direct-runner record. Combined with the
// runner-level round-trip tests in internal/job, this locks the whole
// warm-checkpoint path end to end.
func TestGoldenCheckpointedRunner(t *testing.T) {
	if *updateGolden {
		t.Skip("golden files are updated through the default runner")
	}
	opts := goldenOpts()
	opts.Runner = &job.Checkpointed{}
	verifyGoldenFile(t, opts)
}

// TestGoldenTracedRunner replays the full golden grid through the
// record-once / replay-many trace layer, twice: cold (this process
// records the oracle stream once per benchmark and replays it for every
// scheme) and store-warm (a second Traced runner serving recordings from
// the shared blob store, modelling a later process). Every statistic
// must stay bit-identical to the direct-runner record — replaying a
// recorded front end is an optimization, never a behaviour.
func TestGoldenTracedRunner(t *testing.T) {
	if *updateGolden {
		t.Skip("golden files are updated through the default runner")
	}
	opts := goldenOpts()
	blobs := store.NewMemory(0)

	cold := &job.Traced{Blobs: blobs}
	opts.Runner = cold
	verifyGoldenFile(t, opts)
	m := cold.Metrics()
	// One recording per benchmark of the grid — the amortization the
	// layer exists for — and no cell may outrun the slack margin (a
	// fallback would still be bit-identical, but the perf win gone).
	if want := uint64(len(opts.Benchmarks)); m.Recordings != want {
		t.Errorf("cold grid made %d recordings, want exactly %d (one per benchmark)", m.Recordings, want)
	}
	if m.LiveFallbacks != 0 {
		t.Errorf("cold grid fell back live %d times, want 0", m.LiveFallbacks)
	}

	warm := &job.Traced{Blobs: blobs}
	opts.Runner = warm
	verifyGoldenFile(t, opts)
	if m := warm.Metrics(); m.Recordings != 0 || m.BlobHits != uint64(len(opts.Benchmarks)) {
		t.Errorf("store-warm grid metrics %+v, want 0 recordings and %d blob hits", m, len(opts.Benchmarks))
	}

	// The composed stack — traces over warm snapshots — is the production
	// configuration (dcabench -traced -store); it must hold the same line.
	opts.Runner = &job.Traced{Next: &job.Checkpointed{}, Blobs: blobs}
	verifyGoldenFile(t, opts)
}
