package experiments

import (
	"repro/internal/job"
	"repro/internal/probe"
	"repro/internal/stats"
)

// Export is the serializable form of a Result: every cell's canonical job,
// its content digest, and its measurements, in deterministic order
// (BaseScheme first, remaining schemes sorted, benchmarks in grid order).
// cmd/dcabench -json emits it so grids can be diffed and archived, and
// cmd/dcaserve's grid endpoint streams it back to callers.
type Export struct {
	Clusters   int          `json:"clusters"`
	Warmup     uint64       `json:"warmup"`
	Measure    uint64       `json:"measure"`
	Benchmarks []string     `json:"benchmarks"`
	Cells      []ExportCell `json:"cells"`
}

// ExportCell is one grid cell: the job, its digest, and its result.
type ExportCell struct {
	Job job.Job `json:"job"`
	// Key is the job's content digest (job.Job.Key) — the handle
	// cmd/dcaserve serves the result under.
	Key    string     `json:"key"`
	Result *stats.Run `json:"result"`
	// ResultDigest is the SHA-256 of the result's JSON encoding; equal
	// digests mean bit-identical measurements.
	ResultDigest string `json:"result_digest"`
	// Attribution is the cell's stall breakdown when the grid ran with
	// Options.Attrib. It rides alongside the result, never inside it: the
	// digest above covers the measurements only, so attributed and plain
	// exports of the same grid carry identical digests.
	Attribution *probe.Report `json:"attribution,omitempty"`
}

// Export re-plans the grid's jobs from the result's options (planning is
// deterministic, so the digests match the jobs that actually ran) and
// pairs them with the measurements.
func (r *Result) Export() (*Export, error) {
	schemes := make([]string, 0, len(r.Runs))
	for _, s := range stats.SortedKeys(r.Runs) {
		if s != BaseScheme {
			schemes = append(schemes, s)
		}
	}
	if _, ok := r.Runs[BaseScheme]; ok {
		schemes = append([]string{BaseScheme}, schemes...)
	}
	out := &Export{
		Clusters:   r.Opts.Clusters,
		Warmup:     r.Opts.Warmup,
		Measure:    r.Opts.Measure,
		Benchmarks: r.Opts.Benchmarks,
	}
	params := r.Opts.Params
	for _, scheme := range schemes {
		for _, bench := range r.Opts.Benchmarks {
			run := r.Get(scheme, bench)
			if run == nil {
				continue
			}
			j, err := job.Spec{
				Scheme:    scheme,
				Benchmark: bench,
				Clusters:  r.Opts.Clusters,
				Warmup:    r.Opts.Warmup,
				Measure:   r.Opts.Measure,
				Params:    &params,
			}.Plan()
			if err != nil {
				return nil, err
			}
			cell := ExportCell{
				Job:          j,
				Key:          j.Key(),
				Result:       run,
				ResultDigest: job.ResultDigest(run),
			}
			if r.attrib != nil {
				cell.Attribution = r.attrib.Report(j.Key())
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}
