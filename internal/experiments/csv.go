package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV dumps the full grid as CSV — one row per (scheme, benchmark)
// cell with every derived metric — for external plotting of the figures.
// The two-cluster columns keep their historical names (steered_int,
// steered_fp); grids over larger machines append one steered_cN column per
// extra cluster.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	clusters := 2
	//dca:allow(determinism: computes a max over all cells, which is order-insensitive)
	for _, benchRuns := range r.Runs {
		//dca:allow(determinism: computes a max over all cells, which is order-insensitive)
		for _, run := range benchRuns {
			if run != nil && len(run.Steered) > clusters {
				clusters = len(run.Steered)
			}
		}
	}
	header := []string{
		"scheme", "benchmark", "cycles", "instructions", "ipc",
		"speedup_pct", "comm_per_instr", "critical_comm_per_instr",
		"steered_int", "steered_fp",
	}
	for c := 2; c < clusters; c++ {
		header = append(header, fmt.Sprintf("steered_c%d", c))
	}
	header = append(header,
		"replicated_regs", "mispredict_rate", "l1d_miss_rate", "l1i_miss_rate")
	if err := cw.Write(header); err != nil {
		return err
	}
	schemes := make([]string, 0, len(r.Runs))
	for s := range r.Runs {
		schemes = append(schemes, s)
	}
	sort.Strings(schemes)
	f := func(v float64) string { return fmt.Sprintf("%.6f", v) }
	for _, scheme := range schemes {
		for _, bench := range r.Opts.Benchmarks {
			run := r.Get(scheme, bench)
			if run == nil {
				continue
			}
			row := []string{
				scheme, bench,
				fmt.Sprintf("%d", run.Cycles),
				fmt.Sprintf("%d", run.Instructions),
				f(run.IPC()),
				f(r.Speedup(scheme, bench)),
				f(run.CommPerInstr()),
				f(run.CriticalCommPerInstr()),
			}
			for c := 0; c < clusters; c++ {
				row = append(row, fmt.Sprintf("%d", run.SteeredAt(c)))
			}
			row = append(row,
				f(run.ReplicatedRegsAvg),
				f(run.MispredictRate()),
				f(run.L1DMissRate),
				f(run.L1IMissRate),
			)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
