package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// FormatAttribution renders the grid's stall breakdowns as text, one
// table per attributed cell, BaseScheme first and the remaining schemes
// sorted. Cells without a report (grid run without Opts.Attrib, or served
// from a cache) are skipped; the empty string means nothing was
// attributed.
func (r *Result) FormatAttribution() string {
	if r.attrib == nil {
		return ""
	}
	schemes := make([]string, 0, len(r.Runs))
	for _, s := range stats.SortedKeys(r.Runs) {
		if s != BaseScheme {
			schemes = append(schemes, s)
		}
	}
	if _, ok := r.Runs[BaseScheme]; ok {
		schemes = append([]string{BaseScheme}, schemes...)
	}
	var sb strings.Builder
	for _, scheme := range schemes {
		for _, bench := range r.Opts.Benchmarks {
			rep := r.Attribution(scheme, bench)
			if rep == nil {
				continue
			}
			fmt.Fprintf(&sb, "%s/%s — where %d measured cycles went:\n%s\n",
				scheme, bench, rep.TotalCycles, rep.Table())
		}
	}
	return sb.String()
}
