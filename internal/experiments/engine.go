package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

// Cell identifies one (scheme, benchmark) cell of the evaluation grid.
// Cells are fully independent — each owns a fresh core.Machine — so the
// engine is free to simulate them in any order and on any worker.
type Cell struct {
	Scheme    string
	Benchmark string
}

// Progress reports one completed cell to Options.Progress. Completed counts
// finished cells (including the reporting one); Remaining estimates the
// wall-clock time left for the rest of the grid from the throughput so far.
type Progress struct {
	Cell Cell
	// Completed and Total count grid cells; Completed includes this one.
	Completed int
	Total     int
	// Elapsed is this cell's own simulation time.
	Elapsed time.Duration
	// Remaining is the ETA for the unfinished cells, extrapolated from the
	// grid's wall-clock throughput so far.
	Remaining time.Duration
	// Err is non-nil when the cell failed (the grid is being cancelled).
	Err error
}

// runCell is the engine's cell executor; tests swap it out to inject
// failures into the middle of a grid.
var runCell = RunOne

// validateInputs rejects unknown schemes, benchmarks and cluster counts
// before any simulation starts, so a typo fails in microseconds instead of
// minutes into the grid.
func validateInputs(schemes, benches []string, clusters int) error {
	if clusters < 0 || clusters > config.MaxClusters {
		return fmt.Errorf("experiments: %d clusters unsupported (want 0 for the paper's machine, or 1..%d)",
			clusters, config.MaxClusters)
	}
	for _, s := range schemes {
		if s == BaseScheme || s == UBScheme || steer.Known(s) {
			continue
		}
		return fmt.Errorf("experiments: unknown scheme %q (known: %s; plus the pseudo-schemes %q and %q)",
			s, strings.Join(steer.Names(), ", "), BaseScheme, UBScheme)
	}
	for _, b := range benches {
		if _, err := workload.Get(b); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return nil
}

// Cells expands (schemes, benchmarks) into the grid's cell list in
// deterministic order: BaseScheme first (every figure normalizes to it),
// then the requested schemes in input order with duplicates dropped, each
// crossed with the benchmarks in input order.
func Cells(schemes, benches []string) []Cell {
	withBase := append([]string{BaseScheme}, schemes...)
	seen := make(map[string]bool, len(withBase))
	cells := make([]Cell, 0, len(withBase)*len(benches))
	for _, scheme := range withBase {
		if seen[scheme] {
			continue
		}
		seen[scheme] = true
		for _, bench := range benches {
			cells = append(cells, Cell{Scheme: scheme, Benchmark: bench})
		}
	}
	return cells
}

// Workers returns the effective worker-pool size for a grid of n cells:
// Parallelism, defaulted to runtime.GOMAXPROCS(0) when unset, clamped to
// the cell count.
func (o Options) Workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// RunContext simulates the grid on a bounded worker pool (see
// Options.Workers); the first cell error cancels the remaining work and is
// returned. The assembled Result is identical to a serial run's — cells
// are independent, and the output map is built from a positionally indexed
// slice, so worker scheduling cannot leak into the numbers or their
// grouping.
func RunContext(ctx context.Context, schemes []string, opts Options) (*Result, error) {
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = workload.Names()
	}
	if err := validateInputs(schemes, opts.Benchmarks, opts.Clusters); err != nil {
		return nil, err
	}
	cells := Cells(schemes, opts.Benchmarks)
	workers := opts.Workers(len(cells))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		runs      = make([]*stats.Run, len(cells))
		next      = make(chan int)
		wg        sync.WaitGroup
		mu        sync.Mutex // guards firstErr, completed, Progress calls
		firstErr  error
		completed int
		started   = time.Now()
	)

	// Feed cell indices until the grid is exhausted or cancelled.
	go func() {
		defer close(next)
		for i := range cells {
			if ctx.Err() != nil {
				return
			}
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	report := func(c Cell, elapsed time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
			cancel()
		}
		completed++
		if opts.Progress == nil {
			return
		}
		var remaining time.Duration
		if left := len(cells) - completed; left > 0 {
			remaining = time.Duration(int64(time.Since(started)) / int64(completed) * int64(left))
		}
		opts.Progress(Progress{
			Cell:      c,
			Completed: completed,
			Total:     len(cells),
			Elapsed:   elapsed,
			Remaining: remaining,
			Err:       err,
		})
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain: the grid is being cancelled
				}
				cellStart := time.Now()
				r, err := runCell(cells[i].Scheme, cells[i].Benchmark, opts)
				if err == nil {
					runs[i] = r
				}
				report(cells[i], time.Since(cellStart), err)
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Assemble the map in cell order — deterministic regardless of which
	// worker finished when.
	res := &Result{Runs: make(map[string]map[string]*stats.Run), Opts: opts}
	for i, c := range cells {
		m, ok := res.Runs[c.Scheme]
		if !ok {
			m = make(map[string]*stats.Run, len(opts.Benchmarks))
			res.Runs[c.Scheme] = m
		}
		m[c.Benchmark] = runs[i]
	}
	return res, nil
}
