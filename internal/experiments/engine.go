package experiments

import (
	"context"
	"time"

	"repro/internal/job"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Cell identifies one (scheme, benchmark) cell of the evaluation grid.
// Cells are fully independent — each owns a fresh core.Machine — so the
// engine is free to simulate them in any order and on any worker.
type Cell struct {
	Scheme    string
	Benchmark string
}

// Progress reports one completed cell to Options.Progress. Completed counts
// finished cells (including the reporting one); Remaining estimates the
// wall-clock time left for the rest of the grid from the throughput so far
// (zero until a second cell lands — see job.Progress).
type Progress struct {
	Cell Cell
	// Completed and Total count grid cells; Completed includes this one.
	Completed int
	Total     int
	// Elapsed is this cell's own simulation time.
	Elapsed time.Duration
	// Remaining is the ETA for the unfinished cells.
	Remaining time.Duration
	// Err is non-nil when the cell failed (the grid is being cancelled).
	Err error
}

// Cells expands (schemes, benchmarks) into the grid's cell list in
// deterministic order: BaseScheme first (every figure normalizes to it),
// then the requested schemes in input order with duplicates dropped, each
// crossed with the benchmarks in input order.
func Cells(schemes, benches []string) []Cell {
	withBase := append([]string{BaseScheme}, schemes...)
	seen := make(map[string]bool, len(withBase))
	cells := make([]Cell, 0, len(withBase)*len(benches))
	for _, scheme := range withBase {
		if seen[scheme] {
			continue
		}
		seen[scheme] = true
		for _, bench := range benches {
			cells = append(cells, Cell{Scheme: scheme, Benchmark: bench})
		}
	}
	return cells
}

// Workers returns the effective worker-pool size for a grid of n cells:
// Parallelism, defaulted to runtime.GOMAXPROCS(0) when unset, clamped to
// the cell count.
func (o Options) Workers(n int) int {
	return job.Workers(o.Parallelism, n)
}

// gridSpec translates the grid request into the job layer's serializable
// form, with BaseScheme prepended (every figure normalizes to it).
func gridSpec(schemes []string, opts Options) job.GridSpec {
	params := opts.Params
	return job.GridSpec{
		Schemes:    append([]string{BaseScheme}, schemes...),
		Benchmarks: opts.Benchmarks,
		Clusters:   opts.Clusters,
		Warmup:     opts.Warmup,
		Measure:    opts.Measure,
		Params:     &params,
	}
}

// RunContext plans the grid as canonical jobs (see internal/job) and
// simulates them on the job layer's bounded worker pool (see
// Options.Workers); the first cell error cancels the remaining work and is
// returned. The assembled Result is identical to a serial run's — cells
// are independent, and the output map is built from a positionally indexed
// slice, so worker scheduling cannot leak into the numbers or their
// grouping. Injecting Options.Runner (e.g. a store.Cached) reuses results
// across grids without touching the numbers: cache hits are bit-identical
// to fresh simulations.
func RunContext(ctx context.Context, schemes []string, opts Options) (*Result, error) {
	spec := gridSpec(schemes, opts)
	jobs, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	// Echo the lazily-planned benchmark set into the result's options so
	// reports iterate the benchmarks that actually ran.
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = workload.Names()
	}

	var progress func(job.Progress)
	if opts.Progress != nil {
		progress = func(p job.Progress) {
			opts.Progress(Progress{
				Cell:      Cell{Scheme: p.Job.Scheme, Benchmark: p.Job.Benchmark},
				Completed: p.Completed,
				Total:     p.Total,
				Elapsed:   p.Elapsed,
				Remaining: p.Remaining,
				Err:       p.Err,
			})
		}
	}
	// With Opts.Attrib set, every cell that simulates does so with a
	// cycle-attribution probe attached; the wrapper keeps the reports by
	// job key and rides on the Result for retrieval. Probes are passive,
	// so the measurements are unchanged.
	runner := opts.Runner
	var attrib *job.Attributed
	if opts.Attrib {
		attrib = &job.Attributed{Next: opts.Runner}
		runner = attrib
	}

	runs, err := job.RunAll(ctx, jobs, job.PoolOptions{
		Parallelism: opts.Parallelism,
		Runner:      runner,
		Progress:    progress,
	})
	if err != nil {
		return nil, err
	}

	// Assemble the map in job order — deterministic regardless of which
	// worker finished when.
	res := &Result{Runs: make(map[string]map[string]*stats.Run), Opts: opts, attrib: attrib}
	for i, j := range jobs {
		m, ok := res.Runs[j.Scheme]
		if !ok {
			m = make(map[string]*stats.Run, len(opts.Benchmarks))
			res.Runs[j.Scheme] = m
		}
		m[j.Benchmark] = runs[i]
	}
	return res, nil
}
