package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/steer"
)

// smallOpts keeps unit-test grids fast.
func smallOpts() Options {
	return Options{
		Warmup:     5_000,
		Measure:    30_000,
		Benchmarks: []string{"compress", "go"},
		Params:     steer.DefaultParams(),
	}
}

func TestRunGridBasics(t *testing.T) {
	res, err := Run([]string{"general", "modulo"}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{BaseScheme, "general", "modulo"} {
		for _, bench := range res.Opts.Benchmarks {
			run := res.Get(scheme, bench)
			if run == nil {
				t.Fatalf("missing run %s/%s", scheme, bench)
			}
			if run.IPC() <= 0 {
				t.Errorf("%s/%s: IPC = %f", scheme, bench, run.IPC())
			}
		}
	}
	if res.Get("nope", "compress") != nil {
		t.Error("Get returned a run for an unknown scheme")
	}
}

func TestSpeedupAndMeans(t *testing.T) {
	res, err := Run([]string{"general"}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Speedup(BaseScheme, "compress"); s != 0 {
		t.Errorf("base speedup vs itself = %f, want 0", s)
	}
	mean := res.MeanSpeedup("general")
	if mean < -50 || mean > 200 {
		t.Errorf("mean speedup %f implausible", mean)
	}
	total, crit := res.MeanComm("general")
	if crit > total {
		t.Errorf("critical comm %f exceeds total %f", crit, total)
	}
	h := res.MergedBalance("general")
	if h.Samples == 0 {
		t.Error("merged balance has no samples")
	}
}

func TestRunOneUnknownInputs(t *testing.T) {
	if _, err := RunOne("general", "nope", smallOpts()); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RunOne("nope", "compress", smallOpts()); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestExhibitRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Exhibits() {
		if e.ID == "" || e.Title == "" || e.Render == nil {
			t.Errorf("exhibit %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate exhibit id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// Every paper exhibit must be present.
	for _, want := range []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
		if !ids[want] {
			t.Errorf("missing exhibit %s", want)
		}
	}
	if _, ok := ExhibitByID("fig4"); !ok {
		t.Error("ExhibitByID failed for fig4")
	}
	if _, ok := ExhibitByID("fig99"); ok {
		t.Error("ExhibitByID invented an exhibit")
	}
}

func TestTableExhibitsRenderWithoutRuns(t *testing.T) {
	// Table 1 and Table 2 are static: they must render from an empty grid.
	empty := &Result{Runs: map[string]map[string]*stats.Run{}}
	for _, id := range []string{"table1", "table2"} {
		e, ok := ExhibitByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out := e.Render(empty)
		if len(out) < 40 {
			t.Errorf("%s rendered too little:\n%s", id, out)
		}
	}
}

func TestAllExhibitsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit grid in -short mode")
	}
	opts := smallOpts()
	res, err := Run(AllSchemes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Exhibits() {
		out := e.Render(res)
		if out == "" {
			t.Errorf("%s rendered empty", e.ID)
		}
		if strings.Contains(out, "NaN") {
			t.Errorf("%s contains NaN:\n%s", e.ID, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res, err := Run([]string{"general"}, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + (base + general) x 2 benchmarks
	if len(lines) != 1+2*2 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scheme,benchmark,cycles") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
	for _, want := range []string{"general,compress", "base,go"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing row %s", want)
		}
	}
}
