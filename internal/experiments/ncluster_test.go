package experiments

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/steer"
	"repro/internal/workload"
)

// TestNClusterSchemesUseEveryCluster runs the generalized schemes on a
// 4-cluster machine and asserts each one actually distributes work across
// all four clusters — the property the N-way generalization exists for.
// Modulo must additionally be near-perfectly balanced (its round-robin is
// exact up to datapath-forced placements).
func TestNClusterSchemesUseEveryCluster(t *testing.T) {
	opts := Options{
		Warmup:     2_000,
		Measure:    20_000,
		Benchmarks: []string{"go"},
		Clusters:   4,
		Params:     steer.DefaultParams(),
	}
	cases := []struct {
		scheme string
		// minShare is the minimum fraction of steered instructions every
		// cluster must receive (modulo is near-exact; the balance and
		// random schemes just need all clusters in play).
		minShare float64
	}{
		{"modulo", 0.20},
		{"random", 0.15},
		{"general", 0.05},
		{"br-nonslice", 0.02},
		{"ldst-slicebal", 0.01},
	}
	for _, tc := range cases {
		t.Run(tc.scheme, func(t *testing.T) {
			r, err := RunOne(tc.scheme, "go", opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Steered) != 4 {
				t.Fatalf("Steered has %d entries, want 4", len(r.Steered))
			}
			var total uint64
			for _, n := range r.Steered {
				total += n
			}
			if total == 0 {
				t.Fatal("no instructions steered")
			}
			for c, n := range r.Steered {
				if share := float64(n) / float64(total); share < tc.minShare {
					t.Errorf("cluster %d received %.1f%% of instructions (want ≥ %.0f%%); split %v",
						c, 100*share, 100*tc.minShare, r.Steered)
				}
			}
		})
	}
}

// TestOperandBaselineConcentrates pins down the opposite behaviour: pure
// operand-following with no balance machinery gravitates to wherever the
// values already live — on a symmetric 4-cluster machine that is cluster 0,
// where the architectural state starts. This is the decomposition insight
// the baseline exists for (communication avoidance alone does not
// distribute work), so the test asserts the concentration.
func TestOperandBaselineConcentrates(t *testing.T) {
	opts := Options{Warmup: 2_000, Measure: 20_000,
		Benchmarks: []string{"go"}, Clusters: 4, Params: steer.DefaultParams()}
	r, err := RunOne("operand", "go", opts)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range r.Steered {
		total += n
	}
	if total == 0 {
		t.Fatal("no instructions steered")
	}
	if share := float64(r.SteeredAt(0)) / float64(total); share < 0.95 {
		t.Errorf("operand baseline spread out (cluster 0 share %.1f%%, split %v); expected concentration",
			100*share, r.Steered)
	}
}

// TestNClusterRingSlowsCommunication sanity-checks the topology matrix
// path end to end: on a ring the same scheme and workload must pay at
// least as many cycles as on a single-hop crossbar, never fewer.
func TestNClusterRingSlowsCommunication(t *testing.T) {
	run := func(ring bool) uint64 {
		opts := Options{Warmup: 2_000, Measure: 20_000,
			Benchmarks: []string{"go"}, Clusters: 4, Params: steer.DefaultParams()}
		if !ring {
			r, err := RunOne("modulo", "go", opts)
			if err != nil {
				t.Fatal(err)
			}
			return r.Cycles
		}
		// The ring variant is built by hand: RunOne always uses the
		// crossbar preset, so drive the core directly.
		r, err := runOnRing(t, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	crossbar := run(false)
	ringCycles := run(true)
	if ringCycles < crossbar {
		t.Errorf("ring (%d cycles) outperformed crossbar (%d cycles)", ringCycles, crossbar)
	}
}

// runOnRing simulates modulo/go on the 4-cluster ring machine.
func runOnRing(t *testing.T, opts Options) (uint64, error) {
	t.Helper()
	p, err := workload.Load("go")
	if err != nil {
		return 0, err
	}
	cfg := config.ClusteredNRing(4)
	params := opts.Params
	params.Clusters = 4
	st, err := steer.NewWithParams("modulo", p, params)
	if err != nil {
		return 0, err
	}
	m, err := core.New(cfg, p, st)
	if err != nil {
		return 0, err
	}
	r, err := m.RunWithWarmup(opts.Warmup, opts.Measure)
	if err != nil {
		return 0, err
	}
	return r.Cycles, nil
}
