package experiments

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/job/store"
)

// readGoldenLines loads testdata/golden_n2.txt as cell -> formatted record.
func readGoldenLines(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open("testdata/golden_n2.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := map[string]string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		lines[strings.Fields(line)[0]] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestGoldenGridThroughStore is the cache-correctness lock: the full
// golden grid (every scheme × benchmark of testdata/golden_n2.txt), routed
// through the job layer and a tiered LRU+disk store, must match the golden
// file on the cold pass AND on the cache-hit pass — and both passes must
// produce bit-identical result digests. A store that perturbed a single
// bit of a single float would fail this test.
func TestGoldenGridThroughStore(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden grid in -short mode")
	}
	golden := readGoldenLines(t)
	opts := goldenOpts()

	disk, err := store.NewDisk(filepath.Join(t.TempDir(), "results"))
	if err != nil {
		t.Fatal(err)
	}
	cached := store.NewCached(store.Tiered{Fast: store.NewMemory(16), Slow: disk}, nil)
	opts.Runner = cached

	schemes := goldenSchemes()
	pass := func(name string) map[string]string {
		res, err := Run(schemes, opts)
		if err != nil {
			t.Fatalf("%s pass: %v", name, err)
		}
		digests := map[string]string{}
		for _, scheme := range schemes {
			for _, bench := range opts.Benchmarks {
				r := res.Get(scheme, bench)
				if r == nil {
					t.Fatalf("%s pass: missing %s/%s", name, scheme, bench)
				}
				cell := scheme + "/" + bench
				if got := formatGoldenRun(scheme, bench, r); got != golden[cell] {
					t.Errorf("%s pass: %s diverged from golden\n got: %s\nwant: %s", name, cell, got, golden[cell])
				}
				digests[cell] = job.ResultDigest(r)
			}
		}
		return digests
	}

	cold := pass("cold")
	m := cached.Metrics()
	wantCells := uint64(len(schemes) * len(opts.Benchmarks))
	if m.Misses != wantCells {
		t.Errorf("cold pass simulated %d cells, want %d", m.Misses, wantCells)
	}

	warm := pass("warm")
	m = cached.Metrics()
	if m.Misses != wantCells {
		t.Errorf("warm pass re-simulated %d cells — every cell must come from the store", m.Misses-wantCells)
	}
	if m.Hits < wantCells {
		t.Errorf("warm pass hit the store %d times, want >= %d", m.Hits, wantCells)
	}

	for cell, d := range cold {
		if warm[cell] != d {
			t.Errorf("%s: cache-hit digest %s != cold digest %s", cell, warm[cell], d)
		}
	}
}
