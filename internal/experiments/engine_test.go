package experiments

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/stats"
)

// runnerFunc adapts a function to job.Runner — the engine's injection seam
// for failure and counting tests.
type runnerFunc func(ctx context.Context, j job.Job) (*stats.Run, error)

func (f runnerFunc) Run(ctx context.Context, j job.Job) (*stats.Run, error) { return f(ctx, j) }

// TestSerialParallelDeterminism is the engine's core contract: a parallel
// grid must produce bit-identical stats.Run numbers to a serial one, since
// every cell owns its core.Machine.
func TestSerialParallelDeterminism(t *testing.T) {
	schemes := []string{"general", "modulo", "random"}

	serialOpts := smallOpts()
	serialOpts.Parallelism = 1
	serial, err := Run(schemes, serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	parOpts := smallOpts()
	parOpts.Parallelism = runtime.NumCPU()
	parallel, err := Run(schemes, parOpts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		for scheme, m := range serial.Runs {
			for bench, s := range m {
				p := parallel.Get(scheme, bench)
				if !reflect.DeepEqual(s, p) {
					t.Errorf("%s/%s diverged:\nserial   %+v\nparallel %+v", scheme, bench, s, p)
				}
			}
		}
		t.Fatal("serial and parallel grids differ")
	}
}

// TestRunValidatesSchemesUpFront checks that a typo'd scheme is rejected
// before any simulation runs, with the known names in the message.
func TestRunValidatesSchemesUpFront(t *testing.T) {
	calls := 0
	opts := smallOpts()
	opts.Runner = runnerFunc(func(ctx context.Context, j job.Job) (*stats.Run, error) {
		calls++
		return job.Direct{}.Run(ctx, j)
	})

	_, err := Run([]string{"general", "no-such-scheme"}, opts)
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") || !strings.Contains(err.Error(), "general") {
		t.Errorf("error does not name the offender and the known schemes: %v", err)
	}
	if calls != 0 {
		t.Errorf("%d cells simulated before validation failed", calls)
	}

	if _, err := Run([]string{"general"}, Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestSameValidationErrorAsJobLayer pins the dedup: the engine rejects bad
// inputs with exactly the job layer's error text, so dcasim, dcabench and
// library callers all see one message per mistake.
func TestSameValidationErrorAsJobLayer(t *testing.T) {
	_, gridErr := Run([]string{"no-such-scheme"}, smallOpts())
	jobErr := job.ValidateScheme("no-such-scheme")
	if gridErr == nil || jobErr == nil || gridErr.Error() != jobErr.Error() {
		t.Errorf("grid error %q != job-layer error %q", gridErr, jobErr)
	}

	opts := smallOpts()
	opts.Clusters = 99
	_, gridErr = Run([]string{"general"}, opts)
	jobErr = job.ValidateClusters(99)
	if gridErr == nil || jobErr == nil || gridErr.Error() != jobErr.Error() {
		t.Errorf("grid error %q != job-layer error %q", gridErr, jobErr)
	}
}

// TestEarlyCancellationOnError checks that the first failing cell stops the
// fleet: workers must not start (many) new cells after the failure.
func TestEarlyCancellationOnError(t *testing.T) {
	var (
		mu           sync.Mutex
		started      int
		afterFailure int
		failed       bool
	)
	boom := errors.New("boom")
	opts := smallOpts()
	opts.Parallelism = 2
	opts.Runner = runnerFunc(func(_ context.Context, j job.Job) (*stats.Run, error) {
		mu.Lock()
		started++
		fail := !failed && started == 3
		if failed {
			afterFailure++
		}
		if fail {
			failed = true
		}
		mu.Unlock()
		if fail {
			return nil, boom
		}
		time.Sleep(time.Millisecond)
		return &stats.Run{Scheme: j.Scheme, Benchmark: j.Benchmark, Cycles: 1, Instructions: 1}, nil
	})

	// 3 schemes x 2 benchmarks + base x 2 = 8 cells; the 3rd started cell
	// fails, so with 2 workers at most one more cell may already have been
	// handed out before the cancellation lands.
	_, err := Run([]string{"general", "modulo", "random"}, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if afterFailure > opts.Parallelism {
		t.Errorf("%d cells started after the failure (parallelism %d) — cancellation is not early",
			afterFailure, opts.Parallelism)
	}
	if started >= 8 {
		t.Errorf("all %d cells ran despite the failure", started)
	}
}

// TestRunContextCancelled checks a cancelled context aborts the grid.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, []string{"general"}, smallOpts()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestProgressCallback checks the per-cell hook: one call per cell,
// serialized, with sane running totals and no ETA before a second timing
// sample exists.
func TestProgressCallback(t *testing.T) {
	opts := smallOpts()
	opts.Parallelism = runtime.NumCPU()
	var (
		mu    sync.Mutex
		calls []Progress
	)
	opts.Progress = func(p Progress) {
		mu.Lock()
		calls = append(calls, p)
		mu.Unlock()
	}
	res, err := Run([]string{"general"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * len(opts.Benchmarks) // (base + general) x benchmarks
	if len(calls) != wantCells {
		t.Fatalf("progress called %d times, want %d", len(calls), wantCells)
	}
	for i, p := range calls {
		if p.Completed != i+1 {
			t.Errorf("call %d: Completed = %d, want %d", i, p.Completed, i+1)
		}
		if p.Total != wantCells {
			t.Errorf("call %d: Total = %d, want %d", i, p.Total, wantCells)
		}
		if p.Err != nil {
			t.Errorf("call %d: unexpected error %v", i, p.Err)
		}
		if res.Get(p.Cell.Scheme, p.Cell.Benchmark) == nil {
			t.Errorf("call %d: cell %v not in the result", i, p.Cell)
		}
	}
	// ETA guard: one completed cell is a sample taken while the pool was
	// still filling — no ETA may be extrapolated from it.
	if first := calls[0]; first.Remaining != 0 {
		t.Errorf("first Remaining = %v, want 0 (no timing data yet)", first.Remaining)
	}
	if last := calls[len(calls)-1]; last.Remaining != 0 {
		t.Errorf("final Remaining = %v, want 0", last.Remaining)
	}
}

// TestCellsOrder checks the deterministic cell expansion: base first,
// duplicates dropped, input order preserved.
func TestCellsOrder(t *testing.T) {
	cells := Cells([]string{"general", BaseScheme, "general", "modulo"}, []string{"go", "gcc"})
	want := []Cell{
		{BaseScheme, "go"}, {BaseScheme, "gcc"},
		{"general", "go"}, {"general", "gcc"},
		{"modulo", "go"}, {"modulo", "gcc"},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("Cells = %v, want %v", cells, want)
	}
}

// TestLazyDefaultBenchmarks checks the lazy default: DefaultOptions leaves
// Benchmarks nil, and the grid plans the full workload set at run time
// (the Result echoes what actually ran).
func TestLazyDefaultBenchmarks(t *testing.T) {
	if b := DefaultOptions().Benchmarks; b != nil {
		t.Errorf("DefaultOptions().Benchmarks = %v, want nil (planned lazily)", b)
	}
	opts := DefaultOptions()
	opts.Warmup, opts.Measure = 500, 2_000
	res, err := Run(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Opts.Benchmarks) != 8 {
		t.Errorf("lazily planned %d benchmarks, want 8", len(res.Opts.Benchmarks))
	}
	for _, bench := range res.Opts.Benchmarks {
		if res.Get(BaseScheme, bench) == nil {
			t.Errorf("missing base run for lazily planned benchmark %s", bench)
		}
	}
}

// TestMeansGuardEmptyBenchmarks checks the zero-benchmark guards: a Result
// whose Options carry no benchmarks must report zero means, not panic or
// divide by zero.
func TestMeansGuardEmptyBenchmarks(t *testing.T) {
	r := &Result{Runs: map[string]map[string]*stats.Run{}}
	if s := r.MeanSpeedup("general"); s != 0 {
		t.Errorf("MeanSpeedup on empty options = %f, want 0", s)
	}
	total, crit := r.MeanComm("general")
	if total != 0 || crit != 0 {
		t.Errorf("MeanComm on empty options = (%f, %f), want (0, 0)", total, crit)
	}
}
