package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Exhibit identifies one reproducible table or figure.
type Exhibit struct {
	// ID is the flag value ("fig3", "table1", ...).
	ID string
	// Title is the caption shown above the output.
	Title string
	// Schemes lists the steering schemes the exhibit needs (base is
	// implicit; "ub" requests the upper-bound machine).
	Schemes []string
	// Render formats the exhibit from a grid result.
	Render func(*Result) string
}

// Exhibits returns every exhibit in paper order.
func Exhibits() []Exhibit {
	return []Exhibit{
		{"table1", "Table 1: benchmarks and their (synthetic) inputs", nil, renderTable1},
		{"table2", "Table 2: machine parameters", nil, renderTable2},
		{"fig3", "Figure 3: static versus dynamic partitioning (% over base)",
			[]string{"static-ldst-cons", "static-ldst", "ldst-slice"}, renderFig3},
		{"fig4", "Figure 4: LdSt slice versus Br slice steering (% over base)",
			[]string{"ldst-slice", "br-slice"}, renderFig4},
		{"fig5", "Figure 5: communications per dynamic instruction (slice steering)",
			[]string{"ldst-slice", "br-slice"}, renderFig5},
		{"fig6", "Figure 6: ready-difference distribution, slice steering (SpecInt average)",
			[]string{"ldst-slice", "br-slice"}, renderFig6},
		{"fig7", "Figure 7: non-slice balance steering versus slice steering (% over base)",
			[]string{"ldst-slice", "br-slice", "ldst-nonslice", "br-nonslice"}, renderFig7},
		{"fig8", "Figure 8: communications per dynamic instruction (SpecInt average)",
			[]string{"ldst-slice", "br-slice", "ldst-nonslice", "br-nonslice"}, renderFig8},
		{"fig9", "Figure 9: ready-difference distribution, non-slice balance steering",
			[]string{"ldst-nonslice", "br-nonslice"}, renderFig9},
		{"fig11", "Figure 11: slice balance steering performance (% over base)",
			[]string{"ldst-slicebal", "br-slicebal"}, renderFig11},
		{"fig12", "Figure 12: ready-difference distribution, modulo vs slice balance",
			[]string{"modulo", "ldst-slicebal", "br-slicebal"}, renderFig12},
		{"fig13", "Figure 13: priority slice balance steering performance (% over base)",
			[]string{"ldst-priority", "br-priority"}, renderFig13},
		{"fig14", "Figure 14: general balance steering vs modulo vs 16-way upper bound",
			[]string{"modulo", "general", UBScheme}, renderFig14},
		{"fig15", "Figure 15: register replication under general balance steering",
			[]string{"general"}, renderFig15},
		{"fig16", "Figure 16: general balance steering versus FIFO-based steering",
			[]string{"fifo", "general"}, renderFig16},
	}
}

// ExhibitByID finds an exhibit.
func ExhibitByID(id string) (Exhibit, bool) {
	for _, e := range Exhibits() {
		if e.ID == id {
			return e, true
		}
	}
	return Exhibit{}, false
}

// AllSchemes returns the union of schemes every exhibit needs.
func AllSchemes() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range Exhibits() {
		for _, s := range e.Schemes {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

func renderTable1(*Result) string {
	t := stats.NewTable("", "benchmark", "input", "character")
	for _, name := range workload.Names() {
		info, err := workload.Get(name)
		if err != nil {
			continue
		}
		t.AddRow(info.Name, info.Input, info.Character)
	}
	return t.String()
}

func renderTable2(*Result) string {
	c := config.Clustered()
	t := stats.NewTable("", "parameter", "value")
	t.AddRow("fetch/decode/retire width", fmt.Sprintf("%d / %d / %d", c.FetchWidth, c.DecodeWidth, c.RetireWidth))
	t.AddRow("max in-flight instructions", fmt.Sprintf("%d", c.MaxInFlight))
	for i, cl := range c.Clusters {
		t.AddRow(fmt.Sprintf("cluster %d functional units", i+1),
			fmt.Sprintf("%d intALU + %d int mul/div + %d fpALU + %d fp mul/div",
				cl.SimpleIntALUs, cl.ComplexIntUnits, cl.FPALUs, cl.FPMulDivUnits))
		t.AddRow(fmt.Sprintf("cluster %d issue width / IQ / regs", i+1),
			fmt.Sprintf("%d / %d / %d", cl.IssueWidth, cl.IQSize, cl.PhysRegs))
	}
	t.AddRow("inter-cluster buses", fmt.Sprintf("%d per direction, %d-cycle copies", c.InterClusterBuses, c.CopyLatency))
	t.AddRow("L1 I-cache", cacheLine(c.Mem.L1I))
	t.AddRow("L1 D-cache", cacheLine(c.Mem.L1D)+fmt.Sprintf(", %d R/W ports", c.DCachePorts))
	t.AddRow("L2 cache", cacheLine(c.Mem.L2))
	t.AddRow("branch predictor", "combined: 1K selector, gshare 64K/16-bit, bimodal 2K")
	return t.String()
}

func cacheLine(c mem.Config) string {
	return fmt.Sprintf("%dKB, %d-way, %dB lines, %d-cycle hit",
		c.SizeBytes>>10, c.Assoc, c.LineBytes, c.HitLatency)
}

// speedupTable renders per-benchmark speed-ups for a set of schemes plus
// the mean row.
func speedupTable(r *Result, schemes []string) string {
	headers := append([]string{"benchmark"}, schemes...)
	t := stats.NewTable("", headers...)
	for _, bench := range r.Opts.Benchmarks {
		vals := make([]float64, len(schemes))
		for i, s := range schemes {
			vals[i] = r.Speedup(s, bench)
		}
		t.AddRowF(bench, 1, vals...)
	}
	means := make([]float64, len(schemes))
	for i, s := range schemes {
		means[i] = r.MeanSpeedup(s)
	}
	t.AddRowF("G-mean", 1, means...)
	return t.String()
}

func renderFig3(r *Result) string {
	return speedupTable(r, []string{"static-ldst-cons", "static-ldst", "ldst-slice"}) +
		"\n(static-ldst-cons = compile-time flow-insensitive slice, the paper's\n" +
		"static comparator; static-ldst = profile-derived upper bound on static)\n"
}

func renderFig4(r *Result) string {
	return speedupTable(r, []string{"ldst-slice", "br-slice"})
}

func commTable(r *Result, schemes []string) string {
	t := stats.NewTable("", "benchmark", "scheme", "comm/instr", "critical", "non-critical")
	for _, bench := range r.Opts.Benchmarks {
		for _, s := range schemes {
			run := r.Get(s, bench)
			if run == nil {
				continue
			}
			total, crit := run.CommPerInstr(), run.CriticalCommPerInstr()
			t.AddRow(bench, s, fmt.Sprintf("%.3f", total),
				fmt.Sprintf("%.3f", crit), fmt.Sprintf("%.3f", total-crit))
		}
	}
	return t.String()
}

func renderFig5(r *Result) string {
	return commTable(r, []string{"ldst-slice", "br-slice"})
}

func balanceTable(r *Result, schemes []string) string {
	headers := append([]string{"readyFP-readyINT"}, schemes...)
	t := stats.NewTable("", headers...)
	for d := -stats.BalanceRange; d <= stats.BalanceRange; d++ {
		cells := []string{fmt.Sprintf("%d", d)}
		for _, s := range schemes {
			h := r.MergedBalance(s)
			cells = append(cells, fmt.Sprintf("%.1f%%", h.Percent(d)))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func renderFig6(r *Result) string {
	return balanceTable(r, []string{"ldst-slice", "br-slice"})
}

func renderFig7(r *Result) string {
	return speedupTable(r, []string{"ldst-slice", "br-slice", "ldst-nonslice", "br-nonslice"})
}

func renderFig8(r *Result) string {
	schemes := []string{"ldst-slice", "br-slice", "ldst-nonslice", "br-nonslice"}
	t := stats.NewTable("", "scheme", "comm/instr", "critical", "non-critical")
	for _, s := range schemes {
		total, crit := r.MeanComm(s)
		t.AddRow(s, fmt.Sprintf("%.3f", total), fmt.Sprintf("%.3f", crit),
			fmt.Sprintf("%.3f", total-crit))
	}
	return t.String()
}

func renderFig9(r *Result) string {
	return balanceTable(r, []string{"ldst-nonslice", "br-nonslice"})
}

func renderFig11(r *Result) string {
	return speedupTable(r, []string{"ldst-slicebal", "br-slicebal"})
}

func renderFig12(r *Result) string {
	return balanceTable(r, []string{"modulo", "ldst-slicebal", "br-slicebal"})
}

func renderFig13(r *Result) string {
	return speedupTable(r, []string{"ldst-priority", "br-priority"})
}

func renderFig14(r *Result) string {
	return speedupTable(r, []string{"modulo", "general", UBScheme})
}

func renderFig15(r *Result) string {
	t := stats.NewTable("", "benchmark", "replicated regs/cycle")
	sum := 0.0
	n := 0
	for _, bench := range r.Opts.Benchmarks {
		run := r.Get("general", bench)
		if run == nil {
			continue
		}
		t.AddRowF(bench, 1, run.ReplicatedRegsAvg)
		sum += run.ReplicatedRegsAvg
		n++
	}
	if n > 0 {
		t.AddRowF("mean", 1, sum/float64(n))
	}
	return t.String()
}

func renderFig16(r *Result) string {
	out := speedupTable(r, []string{"fifo", "general"})
	fifoTotal, _ := r.MeanComm("fifo")
	genTotal, _ := r.MeanComm("general")
	return out + fmt.Sprintf("\ncomm/instr: fifo %.3f vs general %.3f\n", fifoTotal, genTotal)
}
