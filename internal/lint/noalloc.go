package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NewNoalloc builds the noalloc analyzer: functions annotated
// `//dca:hotpath` (the cycle loop and everything it calls per cycle) may
// not contain allocating constructs —
//
//   - slice, map and function (closure) literals;
//   - the make and new builtins;
//   - fmt and errors.New calls, except directly inside a return statement
//     (an error return ends the run, so it executes at most once);
//   - append to anything but a retained buffer: a struct field, a
//     parameter, or a local derived by reslicing one of those (the
//     `buf = buf[:0]` / `m.buf = append(m.buf, x)` amortized-steady-state
//     idiom the cycle loop is built on);
//   - implicit interface conversions of non-pointer-shaped values
//     (boxing) in assignments and call arguments.
//
// The dynamic counterpart is TestSteadyStateCycleAllocs' 0-alloc gate,
// which proves the steady state of the configurations it runs; this
// analyzer pins the constructs themselves, for every configuration and
// before any benchmark runs.
func NewNoalloc() *Analyzer {
	return &Analyzer{
		Name: "noalloc",
		Doc:  "forbid allocating constructs in //dca:hotpath functions",
		Run: func(p *Package) []Diagnostic {
			var out []Diagnostic
			report := func(pos token.Pos, format string, args ...any) {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(pos),
					Analyzer: "noalloc",
					Message:  fmt.Sprintf(format, args...),
				})
			}
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil || !isHotpath(fn) {
						continue
					}
					checkNoallocFunc(p, fn, report)
				}
			}
			return out
		},
	}
}

func checkNoallocFunc(p *Package, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	allowedBases := retainedBases(p, fn)
	inReturn := returnSpans(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates in hotpath function %s", fn.Name.Name)
			case *types.Map:
				report(n.Pos(), "map literal allocates in hotpath function %s", fn.Name.Name)
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure literal may allocate in hotpath function %s", fn.Name.Name)
			return false // the closure body is not hot-path code itself
		case *ast.CallExpr:
			checkNoallocCall(p, fn, n, allowedBases, inReturn, report)
		}
		return true
	})
}

func checkNoallocCall(p *Package, fn *ast.FuncDecl, call *ast.CallExpr, allowedBases map[types.Object]bool, inReturn []span, report func(token.Pos, string, ...any)) {
	if ident, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.Info.Uses[ident].(*types.Builtin); isBuiltin {
			switch ident.Name {
			case "make":
				report(call.Pos(), "make allocates in hotpath function %s", fn.Name.Name)
			case "new":
				report(call.Pos(), "new allocates in hotpath function %s", fn.Name.Name)
			case "append":
				if len(call.Args) > 0 && !isRetainedBuffer(p, call.Args[0], allowedBases) {
					report(call.Pos(), "append to a non-retained slice may allocate in hotpath function %s (append to a struct field, parameter, or a reslice of one)", fn.Name.Name)
				}
			}
			return
		}
	}
	if pkgPath, name := calleePkgFunc(p, call); pkgPath != "" {
		allocCall := pkgPath == "fmt" || (pkgPath == "errors" && name == "New")
		if allocCall && !posInSpans(call.Pos(), inReturn) {
			report(call.Pos(), "%s.%s allocates in hotpath function %s (error-return paths are exempt; move it into the return statement)", pkgPath, name, fn.Name.Name)
			return
		}
		if allocCall {
			return
		}
	}
	checkBoxing(p, fn, call, report)
}

// span is a [start, end) position range.
type span struct{ start, end token.Pos }

// returnSpans collects the source ranges of every return statement:
// fmt.Errorf directly inside one is the cold error-exit idiom.
func returnSpans(fn *ast.FuncDecl) []span {
	var out []span
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, span{r.Pos(), r.End()})
		}
		return true
	})
	return out
}

func posInSpans(pos token.Pos, spans []span) bool {
	for _, s := range spans {
		if pos >= s.start && pos < s.end {
			return true
		}
	}
	return false
}

// retainedBases collects the objects append may safely target: receiver
// and parameter objects, plus locals initialized by reslicing a field,
// parameter or array-backed local (capacity lives outside the loop, so
// steady-state appends stay in place).
func retainedBases(p *Package, fn *ast.FuncDecl) map[types.Object]bool {
	bases := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					bases[obj] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	if fn.Type.Params != nil {
		addFields(fn.Type.Params)
	}
	// Fixed point: `x := buf[:0]` makes x retained when buf is.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Defs[lhs]
			if obj == nil {
				obj = p.Info.Uses[lhs]
			}
			if obj == nil || bases[obj] {
				return true
			}
			if isRetainedBuffer(p, as.Rhs[0], bases) {
				bases[obj] = true
				changed = true
			}
			return true
		})
	}
	return bases
}

// isRetainedBuffer reports whether the expression denotes storage that
// outlives the call: a selector (struct field), an identifier in bases, a
// reslice of such, an array-backed slice expression, or an index into one.
func isRetainedBuffer(p *Package, e ast.Expr, bases map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return true // field access: the struct retains the buffer
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		return obj != nil && bases[obj]
	case *ast.SliceExpr:
		// buf[:0] over an array-typed operand is stack/struct storage.
		if t := p.Info.TypeOf(e.X); t != nil {
			if _, isArray := t.Underlying().(*types.Array); isArray {
				return true
			}
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				if _, isArray := ptr.Elem().Underlying().(*types.Array); isArray {
					return true
				}
			}
		}
		return isRetainedBuffer(p, e.X, bases)
	case *ast.IndexExpr:
		return isRetainedBuffer(p, e.X, bases)
	case *ast.ParenExpr:
		return isRetainedBuffer(p, e.X, bases)
	}
	return false
}

// checkBoxing flags call arguments whose implicit conversion to an
// interface parameter boxes a non-pointer-shaped value on the heap.
func checkBoxing(p *Package, fn *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	sigT := p.Info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if s, isSlice := last.(*types.Slice); isSlice {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || boxingFree(at) {
			continue
		}
		report(arg.Pos(), "passing %s as interface %s boxes it on the heap in hotpath function %s", at, pt, fn.Name.Name)
	}
}

// boxingFree reports whether converting a value of this type to an
// interface never allocates: pointers, channels, maps, functions,
// unsafe pointers, interfaces themselves, and untyped nil.
func boxingFree(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Slice:
		// Slice headers are multi-word: boxing copies the header to the
		// heap. Flag them.
		return false
	case *types.Basic:
		return u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer
	}
	return false
}
