// Package lint is the repository's static-analysis pass: a set of
// stdlib-only analyzers (go/ast + go/types, no external dependencies) that
// prove, at the source level, the invariants the dynamic harnesses enforce
// at run time — deterministic digests, the allocation-free cycle loop, the
// queue's lock discipline, and the JSON wire contract. cmd/dcalint runs
// them from the command line; ci/ci_test.go runs them in-process so plain
// `go test ./...` is the enforcement point. DESIGN.md's "Enforced
// invariants" section maps each analyzer to its dynamic counterpart.
//
// Two source annotations steer the pass:
//
//   - `//dca:hotpath` on a function declaration opts the function into the
//     noalloc analyzer: its body may not contain allocating constructs.
//   - `//dca:allow(<analyzer>: <justification>)` on a flagged line (or the
//     line directly above it) suppresses that analyzer's diagnostics for
//     the line. The justification text is mandatory — an allow without one
//     is itself a diagnostic — so every suppression documents why the
//     invariant provably holds anyway.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run reports the analyzer's findings for one package. Allow-comment
	// filtering is applied by Lint, not by the analyzer.
	Run func(p *Package) []Diagnostic
}

// allowRe matches the escape-hatch comment form `dca:allow(name: text)`.
// The justification text is captured so Lint can require it to be
// non-empty.
var allowRe = regexp.MustCompile(`//\s*dca:allow\(([a-z]+)\s*(?::\s*(.*?))?\s*\)`)

// allowSite is one parsed //dca:allow comment.
type allowSite struct {
	analyzer      string
	justification string
	pos           token.Position
}

// allowsIn parses every //dca:allow comment in the file, keyed by the line
// it suppresses (its own line, covering both trailing and standalone
// placement — a standalone allow on line N suppresses findings on N+1).
func allowsIn(fset *token.FileSet, f *ast.File) map[int][]allowSite {
	sites := make(map[int][]allowSite)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			sites[pos.Line] = append(sites[pos.Line], allowSite{
				analyzer:      m[1],
				justification: strings.TrimSpace(m[2]),
				pos:           pos,
			})
		}
	}
	return sites
}

// Lint runs the analyzers over the packages, applies //dca:allow
// filtering, and returns the surviving diagnostics sorted by position.
// Malformed allow comments (no justification text, or naming no known
// analyzer) are reported as diagnostics of the pseudo-analyzer "allow".
func Lint(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	// Allow comments are collected globally (file -> line -> sites) before
	// any analyzer runs: wirecontract follows type closures across package
	// boundaries, so a diagnostic can land in a file of a package other
	// than the one whose Run produced it.
	allows := make(map[string]map[int][]allowSite)
	for _, p := range pkgs {
		for _, f := range p.Files {
			pos := p.Fset.Position(f.Pos())
			fileAllows := allowsIn(p.Fset, f)
			allows[pos.Filename] = fileAllows
			for _, sites := range fileAllows {
				for _, s := range sites {
					if !known[s.analyzer] {
						out = append(out, Diagnostic{
							Pos:      s.pos,
							Analyzer: "allow",
							Message:  fmt.Sprintf("dca:allow names unknown analyzer %q", s.analyzer),
						})
					}
					if s.justification == "" {
						out = append(out, Diagnostic{
							Pos:      s.pos,
							Analyzer: "allow",
							Message:  fmt.Sprintf("dca:allow(%s) has no justification text (write dca:allow(%s: why the invariant holds here))", s.analyzer, s.analyzer),
						})
					}
				}
			}
		}
	}
	for _, p := range pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if allowed(allows[d.Pos.Filename], d.Pos.Line, a.Name) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowed reports whether an allow for the analyzer covers the line: a
// justified dca:allow on the line itself or the line directly above.
func allowed(fileAllows map[int][]allowSite, line int, analyzer string) bool {
	for _, l := range [2]int{line, line - 1} {
		for _, s := range fileAllows[l] {
			if s.analyzer == analyzer && s.justification != "" {
				return true
			}
		}
	}
	return false
}

// hotpathMarker is the annotation opting a function into noalloc checking.
const hotpathMarker = "//dca:hotpath"

// isHotpath reports whether the function declaration carries the
// //dca:hotpath annotation in its doc comment group.
func isHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}
