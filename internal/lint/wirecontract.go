package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// WireContractConfig scopes the wirecontract analyzer.
type WireContractConfig struct {
	// Module is the module path; only structs defined inside the module
	// are checked (stdlib types like time.Time marshal themselves).
	Module string
	// Roots lists the wire and digest root types as "pkg/path.Name":
	// everything serialized between dcaserve and its workers, and
	// everything whose JSON bytes feed a content digest. The analyzer
	// checks each root and every module struct reachable through its
	// fields.
	Roots []string
}

// NewWireContract builds the wirecontract analyzer: every exported field
// of every struct reachable from the configured wire/digest roots must
// carry an explicit `json:"..."` tag. encoding/json's fallback — "no tag,
// use the Go field name" — makes renames silent wire breaks and lets new
// fields join the format implicitly; an explicit tag turns both into a
// reviewed decision. Content digests (job.Key, job.ResultDigest) hash the
// JSON encoding directly, so for those structs the tag IS the digest
// format: a tag must only ever be added matching the existing field name,
// never changed (the golden digests pin this).
//
// Closure traversal follows struct fields through pointers, slices,
// arrays and maps, and stops at types defined outside the module.
func NewWireContract(cfg WireContractConfig) *Analyzer {
	rootsByPkg := make(map[string][]string)
	for _, r := range cfg.Roots {
		dot := strings.LastIndex(r, ".")
		if dot < 0 {
			continue
		}
		rootsByPkg[r[:dot]] = append(rootsByPkg[r[:dot]], r[dot+1:])
	}
	// seen spans packages: closure members shared between roots (stats.Run
	// via Lease and via the store) are checked once.
	seen := make(map[*types.TypeName]bool)
	return &Analyzer{
		Name: "wirecontract",
		Doc:  "require explicit json tags on every exported field reachable from the wire/digest root types",
		Run: func(p *Package) []Diagnostic {
			names := rootsByPkg[p.Path]
			if len(names) == 0 {
				return nil
			}
			var out []Diagnostic
			report := func(pos token.Pos, format string, args ...any) {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(pos),
					Analyzer: "wirecontract",
					Message:  fmt.Sprintf(format, args...),
				})
			}
			for _, name := range names {
				obj, ok := p.Types.Scope().Lookup(name).(*types.TypeName)
				if !ok {
					report(token.NoPos, "wire root %s.%s is not a defined type", p.Path, name)
					continue
				}
				checkWireClosure(cfg.Module, obj, seen, report)
			}
			return out
		},
	}
}

// checkWireClosure checks one named type and everything reachable from its
// fields.
func checkWireClosure(module string, tn *types.TypeName, seen map[*types.TypeName]bool, report func(token.Pos, string, ...any)) {
	if seen[tn] || !inModule(module, tn) {
		return
	}
	seen[tn] = true
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // encoding/json ignores unexported fields
		}
		if _, hasTag := reflect.StructTag(st.Tag(i)).Lookup("json"); !hasTag {
			report(f.Pos(), "exported field %s.%s has no json tag: the wire/digest name would default to the Go identifier, making renames silent format breaks", tn.Name(), f.Name())
		}
		visitWireType(module, f.Type(), seen, report)
	}
}

// visitWireType recurses into the named structs a field type can
// serialize, through pointers, slices, arrays and maps.
func visitWireType(module string, t types.Type, seen map[*types.TypeName]bool, report func(token.Pos, string, ...any)) {
	switch t := t.(type) {
	case *types.Named:
		checkWireClosure(module, t.Obj(), seen, report)
	case *types.Pointer:
		visitWireType(module, t.Elem(), seen, report)
	case *types.Slice:
		visitWireType(module, t.Elem(), seen, report)
	case *types.Array:
		visitWireType(module, t.Elem(), seen, report)
	case *types.Map:
		visitWireType(module, t.Key(), seen, report)
		visitWireType(module, t.Elem(), seen, report)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			visitWireType(module, t.Field(i).Type(), seen, report)
		}
	}
}

// inModule reports whether the type is defined inside the module.
func inModule(module string, tn *types.TypeName) bool {
	pkg := tn.Pkg()
	return pkg != nil && (pkg.Path() == module || strings.HasPrefix(pkg.Path(), module+"/"))
}
