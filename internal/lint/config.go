package lint

// DefaultAnalyzers returns the repository's analyzer set with its scopes —
// the single source of truth cmd/dcalint and ci's TestDCALint both run.
//
// Scope rationale:
//
//   - determinism covers every package a result digest or golden file can
//     observe: the simulated machine (core, steer, emu, isa, bpred, mem),
//     workload construction (prog, asm, workload), analysis outputs (rdg,
//     stats, experiments), the machine description (config), the oracle
//     trace codec (trace — its encodings are content-addressed, so any
//     nondeterminism would change digests), and the job planners
//     ("repro/internal/job" exactly — the queue, store and worker
//     subpackages legitimately read the wall clock for leases and ETAs),
//     and the introspection reports (probe — attribution, forensics and
//     disagreement tables ride grid exports and server responses, so
//     their content must be as reproducible as the digests they ride
//     alongside).
//   - lockdiscipline covers the queue and store, whose mutexes every
//     worker contends on.
//   - wirecontract roots are the two digest formats (Job, stats.Run), the
//     serve/worker wire types, the trace header (trace.Meta — what
//     dcatrace info prints and tools parse), and the attribution report
//     (probe.Report — it rides dcaserve job responses and dcabench -json
//     exports); the closure walk pulls in everything they embed
//     (config.Config, steer.Params, ...).
//   - noalloc needs no scope: the //dca:hotpath annotation opts in
//     function by function.
//   - probeguard names the timing core's observation interface: its
//     methods may be called from hotpath functions only behind the
//     `m.probe != nil` guard, which is what makes a detached machine pay
//     one predictable branch and no interface dispatch per hook.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(DeterminismConfig{
			Packages: []string{
				"repro/internal/core",
				"repro/internal/steer",
				"repro/internal/emu",
				"repro/internal/isa",
				"repro/internal/bpred",
				"repro/internal/mem",
				"repro/internal/prog",
				"repro/internal/asm",
				"repro/internal/workload",
				"repro/internal/rdg",
				"repro/internal/stats",
				"repro/internal/config",
				"repro/internal/experiments",
				"repro/internal/job",
				"repro/internal/trace",
				"repro/internal/probe",
			},
		}),
		NewNoalloc(),
		NewProbeGuard(ProbeGuardConfig{
			Interfaces: []string{"repro/internal/core.Probe"},
		}),
		NewLockDiscipline(LockDisciplineConfig{
			Packages: []string{
				"repro/internal/job/queue",
				"repro/internal/job/store",
			},
			IOInterfaces: []string{
				"repro/internal/job/store.Store",
			},
		}),
		NewWireContract(WireContractConfig{
			Module: "repro",
			Roots: []string{
				"repro/internal/job.Job",
				"repro/internal/job.Spec",
				"repro/internal/job.GridSpec",
				"repro/internal/stats.Run",
				"repro/internal/job/queue.Enqueued",
				"repro/internal/job/queue.Lease",
				"repro/internal/job/queue.LeaseRequest",
				"repro/internal/job/queue.LeaseResponse",
				"repro/internal/job/queue.CompleteRequest",
				"repro/internal/job/queue.Stats",
				"repro/cmd/dcaserve.gridEvent",
				"repro/cmd/dcaserve.watchEvent",
				"repro/internal/trace.Meta",
				"repro/internal/probe.Report",
			},
		}),
	}
}
