package lint

import (
	"fmt"
	"regexp"
	"testing"
)

// fixtureAnalyzers returns a fresh analyzer suite scoped to the fixture
// module under testdata/src. Fresh per call: wirecontract's closure
// dedup is per-instance state, so an instance must not be reused across
// Lint runs.
func fixtureAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(DeterminismConfig{Packages: []string{"fixture/det"}}),
		NewNoalloc(),
		NewProbeGuard(ProbeGuardConfig{Interfaces: []string{"fixture/probe.Probe"}}),
		NewLockDiscipline(LockDisciplineConfig{
			Packages:     []string{"fixture/lock"},
			IOInterfaces: []string{"fixture/lock.Store"},
		}),
		NewWireContract(WireContractConfig{Module: "fixture", Roots: []string{"fixture/wire.Root"}}),
	}
}

// fixturePkgs caches the type-checked fixture module: loading it pulls
// net/http through the source importer, which is the expensive part.
var fixturePkgs []*Package

func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	if fixturePkgs == nil {
		pkgs, err := Load("testdata/src", nil)
		if err != nil {
			t.Fatalf("loading fixture module: %v", err)
		}
		if len(pkgs) == 0 {
			t.Fatal("fixture module loaded no packages")
		}
		fixturePkgs = pkgs
	}
	return fixturePkgs
}

// expectation is one `// want "regexp"` comment in a fixture file: a
// diagnostic must land on its file and line with a matching message.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	text    string
	matched bool
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[1], err)
						}
						pos := p.Fset.Position(c.Pos())
						out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, text: m[1]})
					}
				}
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no // want comments found in fixtures")
	}
	return out
}

// checkWants matches diagnostics against expectations by file, line and
// message pattern. Both directions are violations: a diagnostic no want
// expects, and a want no diagnostic fulfills.
func checkWants(diags []Diagnostic, wants []*expectation) (unexpected, unmatched []string) {
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			unexpected = append(unexpected, d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			unmatched = append(unmatched, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.text))
		}
	}
	return unexpected, unmatched
}

// TestFixtureDiagnostics runs the full analyzer suite over the fixture
// module and requires an exact two-way match with the // want comments:
// every annotated line is flagged with the expected message, and nothing
// unannotated is flagged.
func TestFixtureDiagnostics(t *testing.T) {
	pkgs := loadFixtures(t)
	diags := Lint(pkgs, fixtureAnalyzers())
	unexpected, unmatched := checkWants(diags, collectWants(t, pkgs))
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
	for _, u := range unmatched {
		t.Errorf("missing diagnostic: %s", u)
	}
}

// TestFixtureFailsWithAnalyzerDisabled proves each fixture actually
// depends on its analyzer: removing any one analyzer from the suite must
// leave at least one want unfulfilled — i.e. TestFixtureDiagnostics
// would fail without it.
func TestFixtureFailsWithAnalyzerDisabled(t *testing.T) {
	pkgs := loadFixtures(t)
	names := fixtureAnalyzers()
	for i := range names {
		name := names[i].Name
		t.Run(name, func(t *testing.T) {
			suite := fixtureAnalyzers()
			suite = append(suite[:i:i], suite[i+1:]...)
			_, unmatched := checkWants(Lint(pkgs, suite), collectWants(t, pkgs))
			if len(unmatched) == 0 {
				t.Fatalf("disabling %s left every want fulfilled: the fixture does not exercise it", name)
			}
		})
	}
}

func TestPathInScope(t *testing.T) {
	scope := []string{"repro/internal/core", "repro/internal/job/..."}
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/core", true},
		{"repro/internal/core/sub", false},
		{"repro/internal/job", true},
		{"repro/internal/job/queue", true},
		{"repro/internal/jobqueue", false},
		{"repro/internal/steer", false},
	}
	for _, c := range cases {
		if got := pathInScope(c.path, scope); got != c.want {
			t.Errorf("pathInScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
