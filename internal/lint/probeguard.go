package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ProbeGuardConfig scopes the probeguard analyzer.
type ProbeGuardConfig struct {
	// Interfaces lists the fully qualified named interface types
	// ("repro/internal/core.Probe") whose methods are observation hooks.
	// Inside //dca:hotpath functions, every call through a value of one of
	// these types must sit behind an explicit nil check of that same value.
	Interfaces []string
}

// NewProbeGuard builds the probeguard analyzer: in //dca:hotpath functions
// (the cycle loop and everything it calls per cycle), a method call through
// a probe interface must be dominated by a nil check of the receiver
// expression —
//
//	if m.probe != nil { m.probe.Event(...) }      // guarded body
//	if m.probe == nil { return }; m.probe.Event()  // early return
//	if m.probe == nil { ... } else { m.probe.X() } // else branch
//
// The guard is what makes the seam free when detached: with no probe
// installed the hot path executes one predictable branch and no interface
// dispatch. The dynamic counterparts are TestSteadyStateCycleAllocs (the
// detached cycle loop allocates nothing) and the probed differential
// harness (attachment changes no digest); this analyzer pins the guard
// idiom itself at every callsite, for every probe hook present or future.
func NewProbeGuard(cfg ProbeGuardConfig) *Analyzer {
	ifaces := make(map[string]bool, len(cfg.Interfaces))
	for _, n := range cfg.Interfaces {
		ifaces[n] = true
	}
	return &Analyzer{
		Name: "probeguard",
		Doc:  "probe interface calls in //dca:hotpath functions must sit behind their nil guard",
		Run: func(p *Package) []Diagnostic {
			var out []Diagnostic
			report := func(pos token.Pos, format string, args ...any) {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(pos),
					Analyzer: "probeguard",
					Message:  fmt.Sprintf(format, args...),
				})
			}
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil || !isHotpath(fn) {
						continue
					}
					checkProbeGuardFunc(p, fn, ifaces, report)
				}
			}
			return out
		},
	}
}

// guardSpan records that the expression (by canonical source text) is known
// non-nil throughout the position range.
type guardSpan struct {
	expr string
	span span
}

func checkProbeGuardFunc(p *Package, fn *ast.FuncDecl, ifaces map[string]bool, report func(token.Pos, string, ...any)) {
	guards := collectNilGuards(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(sel.X)
		if t == nil || !ifaces[t.String()] {
			return true
		}
		recv := types.ExprString(sel.X)
		for _, g := range guards {
			if g.expr == recv && posInSpans(call.Pos(), []span{g.span}) {
				return true
			}
		}
		report(call.Pos(), "call to %s method %s in hotpath function %s is not behind its nil guard (wrap in `if %s != nil { ... }`)",
			t, sel.Sel.Name, fn.Name.Name, recv)
		return true
	})
}

// collectNilGuards finds every source range where an expression is
// dominated by a nil check:
//
//   - the body of `if E != nil { ... }` (and every `!= nil` conjunct of a
//     && condition);
//   - the rest of the enclosing block after `if E == nil { return }` (and
//     every `== nil` disjunct of a || condition, when the body terminates
//     and there is no else);
//   - the else branch of `if E == nil { ... } else { ... }`.
func collectNilGuards(fn *ast.FuncDecl) []guardSpan {
	var out []guardSpan
	add := func(exprs []ast.Expr, s span) {
		for _, e := range exprs {
			out = append(out, guardSpan{expr: types.ExprString(e), span: s})
		}
	}
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		add(nilNeqExprs(ifs.Cond), span{ifs.Body.Pos(), ifs.Body.End()})
		eq := nilEqExprs(ifs.Cond)
		if len(eq) == 0 {
			return true
		}
		if ifs.Else != nil {
			add(eq, span{ifs.Else.Pos(), ifs.Else.End()})
		} else if terminates(ifs.Body) {
			if blk := enclosingBlock(stack); blk != nil {
				add(eq, span{ifs.End(), blk.End()})
			}
		}
		return true
	})
	return out
}

// nilNeqExprs returns the expressions a true condition proves non-nil:
// every `E != nil` conjunct reachable through && and parentheses.
func nilNeqExprs(cond ast.Expr) []ast.Expr {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return nilNeqExprs(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return append(nilNeqExprs(e.X), nilNeqExprs(e.Y)...)
		case token.NEQ:
			if isNilIdent(e.Y) {
				return []ast.Expr{e.X}
			}
			if isNilIdent(e.X) {
				return []ast.Expr{e.Y}
			}
		}
	}
	return nil
}

// nilEqExprs returns the expressions a false condition proves non-nil:
// every `E == nil` disjunct reachable through || and parentheses
// (after `if E == nil { return }`, and in the else branch, !cond holds,
// which by De Morgan makes every disjunct's operand non-nil).
func nilEqExprs(cond ast.Expr) []ast.Expr {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return nilEqExprs(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return append(nilEqExprs(e.X), nilEqExprs(e.Y)...)
		case token.EQL:
			if isNilIdent(e.Y) {
				return []ast.Expr{e.X}
			}
			if isNilIdent(e.X) {
				return []ast.Expr{e.Y}
			}
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	ident, ok := e.(*ast.Ident)
	return ok && ident.Name == "nil"
}

// terminates reports whether the block always transfers control out of the
// enclosing statement sequence: its last statement is a return, a branch
// (break/continue/goto), or a panic call.
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		ident, ok := call.Fun.(*ast.Ident)
		return ok && ident.Name == "panic"
	}
	return false
}

// enclosingBlock returns the innermost *ast.BlockStmt on the ancestor
// stack, excluding the node itself (the top of the stack).
func enclosingBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		if blk, ok := stack[i].(*ast.BlockStmt); ok {
			return blk
		}
	}
	return nil
}
