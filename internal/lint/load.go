package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit every analyzer
// operates on.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files holds the parsed non-test sources.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	// Info records types, definitions and uses for every expression.
	Info *types.Info
}

// moduleImporter resolves imports during type checking: module-internal
// paths from the packages already checked (Load checks in dependency
// order), everything else — the standard library, the only external
// dependency this repository permits — through a source-level importer.
type moduleImporter struct {
	modulePath string
	checked    map[string]*types.Package
	std        types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/") {
		if p, ok := m.checked[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("lint: internal import %q not loaded (dependency cycle or load order bug)", path)
	}
	return m.std.ImportFrom(path, dir, mode)
}

// modulePathOf reads the module path from root/go.mod.
func modulePathOf(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// pkgDir is one directory of sources discovered by the walk.
type pkgDir struct {
	path  string // import path
	dir   string
	files []string // non-test .go files, sorted
}

// discover walks root for package directories, skipping testdata, hidden
// directories and the module's own fixture trees.
func discover(root, modulePath string) ([]*pkgDir, error) {
	byDir := make(map[string]*pkgDir)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		p, ok := byDir[dir]
		if !ok {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			imp := modulePath
			if rel != "." {
				imp = modulePath + "/" + filepath.ToSlash(rel)
			}
			p = &pkgDir{path: imp, dir: dir}
			byDir[dir] = p
		}
		p.files = append(p.files, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*pkgDir, 0, len(byDir))
	for _, p := range byDir {
		sort.Strings(p.files)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, nil
}

// Load parses and type-checks every non-test package under root (a module
// root containing go.mod), in dependency order, using only the standard
// library toolchain. patterns filters the result by import path: nil or
// ["./..."] keeps everything; any other entry keeps packages whose import
// path equals the pattern or, for patterns ending in "/...", starts with
// its prefix. All packages are always loaded (type checking needs the full
// dependency closure); patterns restrict only what is returned.
func Load(root string, patterns []string) ([]*Package, error) {
	modulePath, err := modulePathOf(root)
	if err != nil {
		return nil, err
	}
	dirs, err := discover(root, modulePath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	parsed := make(map[string]*pkgDir, len(dirs))
	asts := make(map[string][]*ast.File, len(dirs))
	imports := make(map[string][]string, len(dirs))
	for _, p := range dirs {
		var files []*ast.File
		seen := map[string]bool{}
		for _, fp := range p.files {
			f, err := parser.ParseFile(fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if !seen[ip] {
					seen[ip] = true
					imports[p.path] = append(imports[p.path], ip)
				}
			}
		}
		parsed[p.path] = p
		asts[p.path] = files
	}

	order, err := topoSort(parsed, imports, modulePath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		modulePath: modulePath,
		checked:    make(map[string]*types.Package),
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var pkgs []*Package
	for _, path := range order {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, asts[path], info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
		}
		imp.checked[path] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  path,
			Dir:   parsed[path].dir,
			Fset:  fset,
			Files: asts[path],
			Types: tpkg,
			Info:  info,
		})
	}
	return filterPatterns(pkgs, patterns), nil
}

// topoSort orders the module's packages so every package follows its
// module-internal dependencies.
func topoSort(parsed map[string]*pkgDir, imports map[string][]string, modulePath string) ([]string, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(parsed))
	var order []string
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = visiting
		for _, dep := range imports[path] {
			if dep != modulePath && !strings.HasPrefix(dep, modulePath+"/") {
				continue
			}
			if _, ok := parsed[dep]; !ok {
				return fmt.Errorf("lint: %s imports %s, which has no sources in the module", path, dep)
			}
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for path := range parsed {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// filterPatterns keeps the packages matching any pattern; nil or "./..."
// keeps everything.
func filterPatterns(pkgs []*Package, patterns []string) []*Package {
	if len(patterns) == 0 {
		return pkgs
	}
	match := func(p *Package) bool {
		for _, pat := range patterns {
			switch {
			case pat == "./..." || pat == "...":
				return true
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				prefix = strings.TrimPrefix(prefix, "./")
				if p.Path == prefix || strings.HasPrefix(p.Path, prefix+"/") ||
					strings.HasSuffix(p.Path, "/"+prefix) || strings.Contains(p.Path, "/"+prefix+"/") {
					return true
				}
			default:
				trimmed := strings.TrimPrefix(pat, "./")
				if p.Path == trimmed || strings.HasSuffix(p.Path, "/"+trimmed) {
					return true
				}
			}
		}
		return false
	}
	var out []*Package
	for _, p := range pkgs {
		if match(p) {
			out = append(out, p)
		}
	}
	return out
}
