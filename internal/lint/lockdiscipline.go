package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDisciplineConfig scopes the lockdiscipline analyzer.
type LockDisciplineConfig struct {
	// Packages lists the import paths (exact, or "/..." prefixes) whose
	// mutexes protect latency-sensitive shared state.
	Packages []string
	// IOInterfaces names interface types (full path, "pkg/path.Name")
	// whose method calls count as I/O — calling them with a mutex held
	// serializes every other caller behind a disk read or simulation.
	IOInterfaces []string
}

// NewLockDiscipline builds the lockdiscipline analyzer: inside the scoped
// packages, while a sync.Mutex or sync.RWMutex is held — between a
// Lock/RLock call and the matching Unlock (or to the end of the function
// after `defer Unlock`), and throughout functions named *Locked, the
// repository's held-lock naming convention — the function may not
//
//   - send on or receive from a channel, or select over channel
//     operations (close is fine: it never blocks);
//   - perform I/O through one of the configured store interfaces;
//   - issue HTTP calls or other net/http operations.
//
// The queue's contract depends on this: Lease long-polls *outside* the
// lock, and every critical section is O(queue) pointer work, so no worker
// can stall every other worker behind a blocking call. The race detector
// (the dynamic counterpart) finds misuse only when two goroutines
// actually collide under the test scheduler; this proves the sections are
// non-blocking by construction.
func NewLockDiscipline(cfg LockDisciplineConfig) *Analyzer {
	ioIfaces := make(map[string]bool, len(cfg.IOInterfaces))
	for _, n := range cfg.IOInterfaces {
		ioIfaces[n] = true
	}
	return &Analyzer{
		Name: "lockdiscipline",
		Doc:  "forbid channel ops, HTTP and store I/O while a mutex is held",
		Run: func(p *Package) []Diagnostic {
			if !pathInScope(p.Path, cfg.Packages) {
				return nil
			}
			var out []Diagnostic
			report := func(pos token.Pos, format string, args ...any) {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(pos),
					Analyzer: "lockdiscipline",
					Message:  fmt.Sprintf(format, args...),
				})
			}
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					held := strings.HasSuffix(fn.Name.Name, "Locked")
					walkLocked(p, fn, fn.Body.List, held, ioIfaces, report)
				}
			}
			return out
		},
	}
}

// walkLocked scans a statement list linearly, tracking whether a mutex is
// held, and checks every statement executed under the lock. Branch bodies
// are analyzed with the state at their entry; a Lock whose Unlock happens
// on another path is treated as held until the end of the enclosing list
// (conservative, and matches the straight-line critical sections this
// repository uses). Returns whether a lock is still held at the end.
func walkLocked(p *Package, fn *ast.FuncDecl, stmts []ast.Stmt, held bool, ioIfaces map[string]bool, report func(token.Pos, string, ...any)) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch lockCallKind(p, call) {
				case "lock":
					held = true
					continue
				case "unlock":
					held = false
					continue
				}
			}
		case *ast.DeferStmt:
			if lockCallKind(p, s.Call) == "unlock" {
				// Held for the rest of the function; the defer itself is
				// not a blocking operation.
				held = true
				continue
			}
		}
		if held {
			checkLockedStmt(p, fn, s, ioIfaces, report)
		}
		// Recurse into compound statements with the current state. State
		// changes inside branches stay local to the branch except for
		// blocks, which execute unconditionally.
		switch s := s.(type) {
		case *ast.BlockStmt:
			held = walkLocked(p, fn, s.List, held, ioIfaces, report)
		case *ast.IfStmt:
			walkLocked(p, fn, s.Body.List, held, ioIfaces, report)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				walkLocked(p, fn, e.List, held, ioIfaces, report)
			case *ast.IfStmt:
				walkLocked(p, fn, []ast.Stmt{e}, held, ioIfaces, report)
			}
		case *ast.ForStmt:
			walkLocked(p, fn, s.Body.List, held, ioIfaces, report)
		case *ast.RangeStmt:
			walkLocked(p, fn, s.Body.List, held, ioIfaces, report)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(p, fn, cc.Body, held, ioIfaces, report)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLocked(p, fn, cc.Body, held, ioIfaces, report)
				}
			}
		}
	}
	return held
}

// checkLockedStmt reports blocking operations in one statement executed
// with a mutex held. It inspects the statement shallowly plus its
// expressions; nested compound statements are handled by walkLocked's
// recursion.
func checkLockedStmt(p *Package, fn *ast.FuncDecl, s ast.Stmt, ioIfaces map[string]bool, report func(token.Pos, string, ...any)) {
	switch s := s.(type) {
	case *ast.SendStmt:
		report(s.Pos(), "channel send while a mutex is held in %s: a slow receiver stalls every other lock holder", fn.Name.Name)
		return
	case *ast.SelectStmt:
		report(s.Pos(), "select over channel operations while a mutex is held in %s", fn.Name.Name)
		return
	case *ast.RangeStmt:
		if t := p.Info.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				report(s.Pos(), "range over a channel while a mutex is held in %s", fn.Name.Name)
			}
		}
	case *ast.GoStmt, *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
		// go statements run concurrently; compound bodies are recursed
		// into by walkLocked. Check only their immediate expressions.
	}
	checkLockedExprs(p, fn, s, ioIfaces, report)
}

// checkLockedExprs inspects the statement's expression tree (but not
// nested statement bodies) for receives, I/O-interface calls and net/http
// calls.
func checkLockedExprs(p *Package, fn *ast.FuncDecl, s ast.Stmt, ioIfaces map[string]bool, report func(token.Pos, string, ...any)) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			return false // bodies handled by walkLocked recursion
		case *ast.FuncLit:
			return false // runs later, not under this lock necessarily
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive while a mutex is held in %s", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkLockedCall(p, fn, n, ioIfaces, report)
		}
		return true
	})
}

func checkLockedCall(p *Package, fn *ast.FuncDecl, call *ast.CallExpr, ioIfaces map[string]bool, report func(token.Pos, string, ...any)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-level net/http functions (http.Get, http.Post, ...).
	if pkgPath, name := calleePkgFunc(p, call); pkgPath == "net/http" {
		report(call.Pos(), "net/http.%s while a mutex is held in %s", name, fn.Name.Name)
		return
	}
	// Method calls: on configured I/O interfaces, or on net/http types
	// (e.g. (*http.Client).Do).
	recvT := p.Info.TypeOf(sel.X)
	if recvT == nil {
		return
	}
	if named := namedOf(recvT); named != nil {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + obj.Name()
			if ioIfaces[full] {
				report(call.Pos(), "store I/O (%s.%s) while a mutex is held in %s: every other caller queues behind it", obj.Name(), sel.Sel.Name, fn.Name.Name)
				return
			}
			if obj.Pkg().Path() == "net/http" {
				report(call.Pos(), "net/http call (%s.%s) while a mutex is held in %s", obj.Name(), sel.Sel.Name, fn.Name.Name)
			}
		}
	}
}

// namedOf unwraps pointers to the named type, if any.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// lockCallKind classifies a call as mutex lock ("lock"), unlock
// ("unlock"), or neither (""), by method name and receiver type
// (sync.Mutex, sync.RWMutex, or anything embedding them).
func lockCallKind(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var kind string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return ""
	}
	// The selection must resolve to a method of sync.Mutex/RWMutex
	// (directly or through embedding).
	if selInfo, ok := p.Info.Selections[sel]; ok {
		if f, isFunc := selInfo.Obj().(*types.Func); isFunc {
			if pkg := f.Pkg(); pkg != nil && pkg.Path() == "sync" {
				return kind
			}
		}
		return ""
	}
	// Package-qualified or unresolved: not a mutex method.
	return ""
}
