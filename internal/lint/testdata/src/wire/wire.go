// Package wire exercises the wirecontract analyzer: the closure rooted
// at Root must have an explicit json tag on every exported field, while
// unexported fields and structs unreachable from any root are ignored.
package wire

type Root struct {
	Name   string          `json:"Name"`
	Count  int             // want "Root.Count has no json tag"
	Inner  Inner           `json:"Inner"`
	Ptr    *Inner          `json:"Ptr"`
	List   []Leaf          `json:"List"`
	ByName map[string]Leaf `json:"ByName"`
	hidden int
}

type Inner struct {
	A int `json:"A"`
	B int // want "Inner.B has no json tag"
}

type Leaf struct {
	V int `json:"V"`
}

// Unreachable is not part of any root closure: its missing tags are not
// the wire contract's business.
type Unreachable struct {
	X int
}

func use() (int, int) {
	var r Root
	r.hidden = 1
	var u Unreachable
	return r.hidden, u.X
}
