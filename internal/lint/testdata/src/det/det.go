// Package det exercises the determinism analyzer: every construct the
// analyzer must flag carries a trailing `// want` comment, and every
// idiom it must accept appears without one.
package det

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// mapRangeFlagged lets map iteration order reach the returned slice.
func mapRangeFlagged(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order"
		out = append(out, k)
	}
	return out
}

// sortedKeys is the sorted-iteration idiom: the keys are sorted before
// use, so iteration order cannot escape.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// orderInsensitive accumulates integers with a commutative operator.
func orderInsensitive(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// setBuild only inserts into a map: order-insensitive.
func setBuild(src map[string]int) map[string]bool {
	set := make(map[string]bool, len(src))
	for k := range src {
		set[k] = true
	}
	return set
}

func wallClock() int64 {
	return time.Now().Unix() // want "time.Now"
}

func sinceFlagged(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

func envRead() string {
	return os.Getenv("HOME") // want "os.Getenv"
}

func globalRand() int {
	return rand.Intn(10) // want "global rand source"
}

// seededRand draws from an explicitly seeded source: reproducible.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// allowedMax carries a justified allow: the finding is suppressed.
func allowedMax(m map[string]int) int {
	best := 0
	//dca:allow(determinism: a max over all values is order-insensitive)
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// badAllow has an allow with no justification: the allow itself is
// reported, and the finding it covers is NOT suppressed.
func badAllow(m map[string]int) []string {
	var names []string
	//dca:allow(determinism) // want "has no justification"
	for k := range m { // want "map iteration order"
		names = append(names, k)
	}
	return names
}

//dca:allow(nosuchcheck: the analyzer name is not real) // want "unknown analyzer"
func unknownAllow() {}
