// Package probe exercises the probeguard analyzer: inside //dca:hotpath
// functions every call through the Probe interface must sit behind a nil
// check of the same receiver expression. The guarded idioms — enclosing
// `!= nil` body, `== nil` early return, `== nil` else branch, `!= nil`
// conjunct — appear without a want comment; bare and wrongly-guarded calls
// carry one. Unannotated functions are never checked.
package probe

// Probe is the fixture analog of the timing core's observation interface
// (the real scope entry is repro/internal/core.Probe).
type Probe interface {
	Event(cycle uint64)
	Cycle(cycle uint64)
}

type machine struct {
	probe Probe
	cycle uint64
	on    bool
}

// guardedBody is the canonical callsite shape.
//
//dca:hotpath
func (m *machine) guardedBody() {
	if m.probe != nil {
		m.probe.Event(m.cycle)
		m.probe.Cycle(m.cycle)
	}
}

// earlyReturn guards by terminating when the probe is absent.
//
//dca:hotpath
func (m *machine) earlyReturn() {
	if m.probe == nil {
		return
	}
	m.probe.Event(m.cycle)
}

// elseBranch guards in the else arm of an equality check.
//
//dca:hotpath
func (m *machine) elseBranch() {
	if m.probe == nil {
		m.cycle++
	} else {
		m.probe.Event(m.cycle)
	}
}

// conjunct guards with a compound condition: the != nil conjunct of a &&
// still dominates the body.
//
//dca:hotpath
func (m *machine) conjunct() {
	if m.on && m.probe != nil {
		m.probe.Event(m.cycle)
	}
}

// localCopy guards a local holding the interface value; the guard and the
// call name the same expression.
//
//dca:hotpath
func (m *machine) localCopy() {
	p := m.probe
	if p != nil {
		p.Event(m.cycle)
	}
}

//dca:hotpath
func (m *machine) bare() {
	m.probe.Event(m.cycle) // want "not behind its nil guard"
}

// wrongGuard checks a different expression than the one it calls through.
//
//dca:hotpath
func (m *machine) wrongGuard(other Probe) {
	if other != nil {
		m.probe.Event(m.cycle) // want "not behind its nil guard"
	}
}

// outsideGuard calls after the guarded body has closed.
//
//dca:hotpath
func (m *machine) outsideGuard() {
	if m.probe != nil {
		m.probe.Event(m.cycle)
	}
	m.probe.Cycle(m.cycle) // want "not behind its nil guard"
}

// eqNoReturn: an equality check whose body does not terminate proves
// nothing about the statements after it.
//
//dca:hotpath
func (m *machine) eqNoReturn() {
	if m.probe == nil {
		m.cycle++
	}
	m.probe.Event(m.cycle) // want "not behind its nil guard"
}

// cold is not annotated: the probe call is on a cold path and the guard is
// the caller's concern.
func (m *machine) cold() {
	m.probe.Event(m.cycle)
}
