// Package hot exercises the noalloc analyzer: only functions annotated
// //dca:hotpath are checked, and inside them every allocating construct
// carries a `// want` comment while the retained-buffer and cold-error
// idioms appear without one.
package hot

import (
	"errors"
	"fmt"
)

type ring struct {
	buf []int
}

// push appends to a retained field buffer: steady-state allocation-free.
//
//dca:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
}

// reslice derives a local from a field reslice; the fixed point makes it
// retained too.
//
//dca:hotpath
func (r *ring) reslice() {
	tmp := r.buf[:0]
	tmp = append(tmp, 1)
	r.buf = tmp
}

//dca:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates"
}

//dca:hotpath
func mapLit() map[string]int {
	return map[string]int{} // want "map literal allocates"
}

//dca:hotpath
func closure(xs []int) int {
	f := func(x int) int { return x * 2 } // want "closure literal"
	return f(xs[0])
}

//dca:hotpath
func makes(n int) {
	_ = make([]int, n) // want "make allocates"
}

//dca:hotpath
func news() *ring {
	return new(ring) // want "new allocates"
}

//dca:hotpath
func appendLocal(xs []int) []int {
	var out []int
	out = append(out, xs...) // want "non-retained slice"
	return out
}

// errorExit shows the cold error-return exemption: fmt.Errorf directly
// inside a return statement runs at most once per call.
//
//dca:hotpath
func errorExit(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}

//dca:hotpath
func errNew(bad bool) error {
	if bad {
		return errors.New("cold error exit")
	}
	return nil
}

//dca:hotpath
func fmtOutside() {
	fmt.Println("hot") // want "fmt.Println allocates"
}

type token struct{ a, b int }

func sink(v any) { _ = v }

//dca:hotpath
func boxes(t token) {
	sink(t) // want "boxes it on the heap"
}

// pointerShaped passes a pointer: interface conversion is free.
//
//dca:hotpath
func pointerShaped(t *token) {
	sink(t)
}

// pooled documents the allow hatch inside a hotpath function.
//
//dca:hotpath
func pooled(pool []*ring) *ring {
	if len(pool) == 0 {
		//dca:allow(noalloc: pool-dry fallback, runs only before steady state)
		return new(ring)
	}
	return pool[len(pool)-1]
}

// coldPath is not annotated: the analyzer must ignore it entirely.
func coldPath() []int {
	return []int{1, 2, 3}
}
