// Package lock exercises the lockdiscipline analyzer: channel
// operations, store I/O and net/http calls under a held mutex carry
// `// want` comments; the straight-line critical sections and the
// close-under-lock idiom appear without one.
package lock

import (
	"net/http"
	"sync"
)

// Store is the I/O interface the fixture configuration names.
type Store interface {
	Get(key string) (string, bool)
	Put(key, val string)
}

type Q struct {
	mu    sync.Mutex
	wake  chan struct{}
	store Store
	n     int
}

// goodCriticalSection does O(1) pointer work under the lock and performs
// I/O only after releasing it.
func (q *Q) goodCriticalSection() {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.store.Put("k", "v")
}

func (q *Q) sendUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wake <- struct{}{} // want "channel send while a mutex is held"
}

func (q *Q) recvUnderLock() {
	q.mu.Lock()
	<-q.wake // want "channel receive while a mutex is held"
	q.mu.Unlock()
}

func (q *Q) storeUnderLock() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.store.Get("k") // want "store I/O"
}

func (q *Q) httpUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	http.Get("http://example.invalid/") // want "net/http"
}

// closeUnderLock is fine: close never blocks.
func (q *Q) closeUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	close(q.wake)
}

// drainLocked follows the *Locked naming convention: the caller holds
// q.mu, so the whole body is a critical section.
func (q *Q) drainLocked() {
	q.wake <- struct{}{} // want "channel send while a mutex is held"
}

// unlockedOps blocks freely: no mutex is held.
func (q *Q) unlockedOps() {
	q.wake <- struct{}{}
	<-q.wake
	q.store.Put("a", "b")
}

// allowedStoreCheck documents the escape hatch for a deliberate store
// read inside a critical section.
func (q *Q) allowedStoreCheck() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	//dca:allow(lockdiscipline: deliberate dedup re-check, documented in the fixture)
	return q.store.Get("k")
}

// fakeLock is not a sync mutex: its Lock method must not start a
// critical section.
type fakeLock struct{}

func (fakeLock) Lock()   {}
func (fakeLock) Unlock() {}

func notAMutex(q *Q, f fakeLock) {
	f.Lock()
	q.wake <- struct{}{}
	f.Unlock()
}

type R struct {
	mu sync.RWMutex
	c  chan int
}

// readUnderRLock holds a read lock: still a critical section.
func (r *R) readUnderRLock() int {
	r.mu.RLock()
	v := <-r.c // want "channel receive while a mutex is held"
	r.mu.RUnlock()
	return v
}

func (r *R) selectUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want "select over channel operations"
	case <-r.c:
	default:
	}
}
