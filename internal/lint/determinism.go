package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismConfig scopes the determinism analyzer.
type DeterminismConfig struct {
	// Packages lists the import paths (exact, or prefixes ending in
	// "/...") whose sources must be reproducible: everything that can
	// reach a result digest or a golden file.
	Packages []string
}

// NewDeterminism builds the determinism analyzer: in digest-affecting
// packages it forbids the language and library constructs whose output
// varies between runs of the same input —
//
//   - `range` over a map, unless the loop body is provably
//     order-insensitive (it only inserts into maps, or accumulates
//     integers with commutative operators) or the collected keys are
//     sorted in the same function before use;
//   - time.Now, time.Since and time.Until (wall-clock reads);
//   - the unseeded global source of math/rand (rand.Intn, rand.Shuffle,
//     ... — seeded rand.New(rand.NewSource(k)) is fine);
//   - environment reads (os.Getenv, os.LookupEnv, os.Environ).
//
// The dynamic counterparts — the differential harness, the golden grids,
// FuzzCoSimulate — prove determinism for the inputs they happen to run;
// this analyzer proves the absence of the usual sources of
// nondeterminism for every input.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid map iteration, wall-clock, unseeded rand and env reads in digest-affecting packages",
		Run: func(p *Package) []Diagnostic {
			if !pathInScope(p.Path, cfg.Packages) {
				return nil
			}
			var out []Diagnostic
			report := func(pos token.Pos, format string, args ...any) {
				out = append(out, Diagnostic{
					Pos:      p.Fset.Position(pos),
					Analyzer: "determinism",
					Message:  fmt.Sprintf(format, args...),
				})
			}
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					checkDeterminismFunc(p, fn, report)
				}
			}
			return out
		},
	}
}

// pathInScope reports whether the import path matches the scope list
// (exact entry, or an entry ending in "/..." as a prefix).
func pathInScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s {
			return true
		}
		if prefix, ok := cutSuffix(s, "/..."); ok {
			if path == prefix || len(path) > len(prefix) && path[:len(prefix)] == prefix && path[len(prefix)] == '/' {
				return true
			}
		}
	}
	return false
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

func checkDeterminismFunc(p *Package, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := p.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if orderInsensitiveBody(p, n.Body) {
				return true
			}
			if sortedAfterLoop(p, fn, n) {
				return true
			}
			report(n.Pos(), "map iteration order can reach output or state; iterate sorted keys, make the body order-insensitive, or justify with dca:allow")
		case *ast.CallExpr:
			checkDeterminismCall(p, n, report)
		}
		return true
	})
}

// checkDeterminismCall flags wall-clock, environment and unseeded-rand
// calls.
func checkDeterminismCall(p *Package, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	pkgPath, name := calleePkgFunc(p, call)
	if pkgPath == "" {
		return
	}
	switch pkgPath {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			report(call.Pos(), "time.%s in a digest-affecting package: results must not depend on the wall clock", name)
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			report(call.Pos(), "os.%s in a digest-affecting package: results must not depend on the environment", name)
		}
	case "math/rand", "math/rand/v2":
		// Constructors of explicitly seeded sources are fine; the
		// package-level convenience functions draw from the shared,
		// unseeded (or time-seeded) global source.
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		default:
			report(call.Pos(), "%s.%s uses the global rand source: use rand.New(rand.NewSource(seed)) with a fixed seed", pkgPath, name)
		}
	}
}

// calleePkgFunc resolves a call to (package path, function name) when the
// callee is a package-level function of an imported package; otherwise
// returns "".
func calleePkgFunc(p *Package, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkgName, ok := p.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pkgName.Imported().Path(), sel.Sel.Name
}

// orderInsensitiveBody reports whether executing the loop body for the
// map's elements in any order produces the same final state: every
// statement either inserts into a map (set building), deletes from one,
// or accumulates integers with a commutative operator. Any other effect —
// appends, I/O, early exits, float math — disqualifies the body.
func orderInsensitiveBody(p *Package, body *ast.BlockStmt) bool {
	ok := true
	var check func(s ast.Stmt)
	check = func(s ast.Stmt) {
		if !ok {
			return
		}
		switch s := s.(type) {
		case *ast.AssignStmt:
			if !orderInsensitiveAssign(p, s) {
				ok = false
			}
		case *ast.IncDecStmt:
			if !isIntegerExpr(p, s.X) {
				ok = false
			}
		case *ast.IfStmt:
			if s.Init != nil {
				check(s.Init)
			}
			for _, inner := range s.Body.List {
				check(inner)
			}
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				for _, inner := range e.List {
					check(inner)
				}
			case *ast.IfStmt:
				check(e)
			case nil:
			default:
				ok = false
			}
		case *ast.ExprStmt:
			// delete(m, k) is the only order-insensitive call form.
			call, isCall := s.X.(*ast.CallExpr)
			if !isCall || !isBuiltin(p, call, "delete") {
				ok = false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				ok = false
			}
		case *ast.DeclStmt:
			// Local declarations are scoped to one iteration.
		default:
			ok = false
		}
	}
	for _, s := range body.List {
		check(s)
	}
	return ok
}

// orderInsensitiveAssign accepts `m[k] = v` (map insertion) and integer
// accumulation with commutative operators (+=, |=, &=, ^=).
func orderInsensitiveAssign(p *Package, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			t := p.Info.TypeOf(idx.X)
			if t == nil {
				return false
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
			// The inserted value must not depend on previous iterations
			// through the same map (e.g. m[k] = len(m) is order-sensitive);
			// requiring a loop-local or constant RHS is out of scope, so
			// accept plain insertions — the common set-building case.
		}
		return true
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range s.Lhs {
			if !isIntegerExpr(p, lhs) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// isIntegerExpr reports whether the expression has integer type (integer
// accumulation commutes; float accumulation does not).
func isIntegerExpr(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(p *Package, call *ast.CallExpr, name string) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	_, ok = p.Info.Uses[ident].(*types.Builtin)
	return ok
}

// sortedAfterLoop reports whether the range loop only appends map keys or
// values to slices that are passed to a sort call later in the same
// function — the sorted-key iteration idiom
// (keys := ...; for k := range m { keys = append(keys, k) }; sort.Strings(keys)).
func sortedAfterLoop(p *Package, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	// Collect the objects appended to inside the body; every statement
	// must be an append-to-local (or an if/continue wrapper around them).
	targets := map[types.Object]bool{}
	ok := true
	var check func(s ast.Stmt)
	check = func(s ast.Stmt) {
		if !ok {
			return
		}
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
				ok = false
				return
			}
			lhs, isIdent := s.Lhs[0].(*ast.Ident)
			call, isCall := s.Rhs[0].(*ast.CallExpr)
			if !isIdent || !isCall || !isBuiltin(p, call, "append") {
				ok = false
				return
			}
			obj := p.Info.Uses[lhs]
			if obj == nil {
				obj = p.Info.Defs[lhs]
			}
			if obj == nil {
				ok = false
				return
			}
			targets[obj] = true
		case *ast.IfStmt:
			for _, inner := range s.Body.List {
				check(inner)
			}
			if s.Else != nil {
				ok = false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				ok = false
			}
		default:
			ok = false
		}
	}
	for _, s := range rng.Body.List {
		check(s)
	}
	if !ok || len(targets) == 0 {
		return false
	}

	// Every appended-to slice must reach a sort call after the loop.
	sorted := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < rng.End() {
			return true
		}
		pkgPath, name := calleePkgFunc(p, call)
		isSort := pkgPath == "sort" || (pkgPath == "slices" && (name == "Sort" || name == "SortFunc" || name == "SortStableFunc"))
		if !isSort || len(call.Args) == 0 {
			return true
		}
		if ident, isIdent := call.Args[0].(*ast.Ident); isIdent {
			if obj := p.Info.Uses[ident]; obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})
	for obj := range targets {
		if !sorted[obj] {
			return false
		}
	}
	return true
}
