// Package bpred implements the branch predictors used by the simulated
// processor. The paper's Table 2 specifies a McFarling-style combined
// predictor: a gshare component with 64K 2-bit counters and 16 bits of
// global history, a bimodal component with 2K 2-bit counters, and a 1K-entry
// selector. A branch target buffer and a return-address stack cover
// indirect-target prediction for JR/JALR.
package bpred

import "fmt"

// counter2 is a saturating 2-bit counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirPredictor predicts conditional-branch directions.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc int) bool
	// Update trains the predictor with the actual outcome.
	Update(pc int, taken bool)
	// Name identifies the predictor in reports.
	Name() string
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  int
}

// NewBimodal builds a bimodal predictor with the given number of entries
// (must be a power of two). Counters initialize to weakly-not-taken,
// matching SimpleScalar's default.
func NewBimodal(entries int) (*Bimodal, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: bimodal entries %d not a power of two", entries)
	}
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1
	}
	return &Bimodal{table: t, mask: entries - 1}, nil
}

func (b *Bimodal) index(pc int) int    { return pc & b.mask }
func (b *Bimodal) Predict(pc int) bool { return b.table[b.index(pc)].taken() }
func (b *Bimodal) Update(pc int, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// Name implements DirPredictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", len(b.table)) }

// Gshare XORs a global history register with the PC to index its counter
// table.
type Gshare struct {
	table    []counter2
	mask     int
	history  uint32
	histBits uint
}

// NewGshare builds a gshare predictor with the given table size and history
// length.
func NewGshare(entries int, historyBits uint) (*Gshare, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("bpred: gshare entries %d not a power of two", entries)
	}
	t := make([]counter2, entries)
	for i := range t {
		t[i] = 1
	}
	return &Gshare{table: t, mask: entries - 1, histBits: historyBits}, nil
}

func (g *Gshare) index(pc int) int {
	return (pc ^ int(g.history)) & g.mask
}

func (g *Gshare) Predict(pc int) bool { return g.table[g.index(pc)].taken() }

// Update trains the counter addressed by the *current* history, then shifts
// the outcome into the history register.
func (g *Gshare) Update(pc int, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = (g.history << 1) & ((1 << g.histBits) - 1)
	if taken {
		g.history |= 1
	}
}

// Name implements DirPredictor.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%d/%d", len(g.table), g.histBits) }

// Combined is McFarling's tournament predictor: a selector of 2-bit
// counters chooses between two component predictors per branch.
type Combined struct {
	selector []counter2 // >=2 selects comp1 (gshare), <2 selects comp0 (bimodal)
	mask     int
	comp0    DirPredictor // bimodal
	comp1    DirPredictor // gshare
}

// NewCombined builds the paper's combined predictor: selectorEntries 2-bit
// chooser entries over the two components.
func NewCombined(selectorEntries int, comp0, comp1 DirPredictor) (*Combined, error) {
	if selectorEntries <= 0 || selectorEntries&(selectorEntries-1) != 0 {
		return nil, fmt.Errorf("bpred: selector entries %d not a power of two", selectorEntries)
	}
	sel := make([]counter2, selectorEntries)
	for i := range sel {
		sel[i] = 1
	}
	return &Combined{selector: sel, mask: selectorEntries - 1, comp0: comp0, comp1: comp1}, nil
}

// NewPaperPredictor builds Table 2's exact configuration: 1K selector,
// gshare with 64K counters and 16-bit history, bimodal with 2K counters.
func NewPaperPredictor() *Combined {
	bim, err := NewBimodal(2048)
	if err != nil {
		panic(err)
	}
	gs, err := NewGshare(64<<10, 16)
	if err != nil {
		panic(err)
	}
	c, err := NewCombined(1024, bim, gs)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Combined) Predict(pc int) bool {
	if c.selector[pc&c.mask].taken() {
		return c.comp1.Predict(pc)
	}
	return c.comp0.Predict(pc)
}

// Update trains both components and moves the selector toward whichever
// component was right when they disagree.
func (c *Combined) Update(pc int, taken bool) {
	p0 := c.comp0.Predict(pc)
	p1 := c.comp1.Predict(pc)
	if p0 != p1 {
		i := pc & c.mask
		c.selector[i] = c.selector[i].update(p1 == taken)
	}
	c.comp0.Update(pc, taken)
	c.comp1.Update(pc, taken)
}

// Name implements DirPredictor.
func (c *Combined) Name() string {
	return fmt.Sprintf("combined(%s,%s)", c.comp0.Name(), c.comp1.Name())
}

// Taken is a degenerate always-taken predictor for experiments.
type Taken struct{}

func (Taken) Predict(int) bool { return true }
func (Taken) Update(int, bool) {}
func (Taken) Name() string     { return "taken" }

// BTB is a set-associative branch target buffer used for indirect jumps
// (JR/JALR), whose targets are not encoded in the instruction.
type BTB struct {
	sets  [][]btbEntry
	mask  int
	clock uint64
	// Hits and Misses count lookups.
	Hits, Misses uint64
}

type btbEntry struct {
	pc      int
	target  int
	valid   bool
	lastUse uint64
}

// NewBTB builds a BTB with the given set count and associativity.
func NewBTB(nsets, assoc int) (*BTB, error) {
	if nsets <= 0 || nsets&(nsets-1) != 0 || assoc <= 0 {
		return nil, fmt.Errorf("bpred: bad BTB geometry %dx%d", nsets, assoc)
	}
	sets := make([][]btbEntry, nsets)
	backing := make([]btbEntry, nsets*assoc)
	for i := range sets {
		sets[i], backing = backing[:assoc], backing[assoc:]
	}
	return &BTB{sets: sets, mask: nsets - 1}, nil
}

// Lookup predicts the target of the branch at pc; ok is false when the BTB
// has no entry.
func (b *BTB) Lookup(pc int) (target int, ok bool) {
	b.clock++
	set := b.sets[pc&b.mask]
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			set[i].lastUse = b.clock
			b.Hits++
			return set[i].target, true
		}
	}
	b.Misses++
	return 0, false
}

// Update records the observed target for the branch at pc.
func (b *BTB) Update(pc, target int) {
	set := b.sets[pc&b.mask]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			set[i].target = target
			set[i].lastUse = b.clock
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = btbEntry{pc: pc, target: target, valid: true, lastUse: b.clock}
}

// RAS is a fixed-depth return-address stack. Pushes beyond capacity wrap
// (overwriting the oldest entry), matching hardware behaviour.
type RAS struct {
	stack []int
	top   int
	depth int
}

// NewRAS builds a return-address stack with the given number of entries.
func NewRAS(entries int) *RAS {
	if entries <= 0 {
		entries = 1
	}
	return &RAS{stack: make([]int, entries)}
}

// Push records a return address (at a call).
func (r *RAS) Push(addr int) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the return address (at a return); ok is false when empty.
func (r *RAS) Pop() (addr int, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Depth reports the current occupancy.
func (r *RAS) Depth() int { return r.depth }
