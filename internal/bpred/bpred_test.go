package bpred

import (
	"math/rand"
	"testing"
)

func TestCounter2Saturates(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 || !c.taken() {
		t.Fatalf("counter did not saturate high: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 || c.taken() {
		t.Fatalf("counter did not saturate low: %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(64)
	if err != nil {
		t.Fatal(err)
	}
	pc := 7
	for i := 0; i < 4; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("bimodal did not learn taken bias")
	}
	for i := 0; i < 4; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("bimodal did not learn not-taken bias")
	}
}

func TestBimodalRejectsBadSize(t *testing.T) {
	if _, err := NewBimodal(100); err == nil {
		t.Fatal("accepted non-power-of-two")
	}
	if _, err := NewBimodal(0); err == nil {
		t.Fatal("accepted zero")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g, err := NewGshare(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Alternating T/N/T/N pattern at one PC: bimodal cannot learn this
	// (counter oscillates) but gshare keys on history and converges.
	pc := 100
	outcome := func(i int) bool { return i%2 == 0 }
	for i := 0; i < 2000; i++ {
		g.Update(pc, outcome(i))
	}
	correct := 0
	for i := 2000; i < 2200; i++ {
		if g.Predict(pc) == outcome(i) {
			correct++
		}
		g.Update(pc, outcome(i))
	}
	if correct < 195 {
		t.Fatalf("gshare got %d/200 on alternating pattern", correct)
	}
}

func TestCombinedBeatsWorstComponent(t *testing.T) {
	c := NewPaperPredictor()
	// Mixed workload: some strongly biased branches (bimodal-friendly),
	// one alternating branch (gshare-friendly).
	type branch struct {
		pc   int
		next func(i int) bool
	}
	branches := []branch{
		{pc: 11, next: func(int) bool { return true }},
		{pc: 23, next: func(int) bool { return false }},
		{pc: 37, next: func(i int) bool { return i%2 == 0 }},
		{pc: 53, next: func(i int) bool { return i%4 != 0 }},
	}
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		// Visit every branch each round so the global history is periodic
		// and the patterned branches are learnable.
		for _, br := range branches {
			want := br.next(i)
			if i > 5000 {
				if c.Predict(br.pc) == want {
					correct++
				}
				total++
			}
			c.Update(br.pc, want)
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.90 {
		t.Fatalf("combined accuracy %.2f < 0.90", acc)
	}
}

func TestCombinedSelectorPrefersBetterComponent(t *testing.T) {
	bim, _ := NewBimodal(16)
	gs, _ := NewGshare(1024, 8)
	c, err := NewCombined(16, bim, gs)
	if err != nil {
		t.Fatal(err)
	}
	// Alternating branch: gshare learns it, bimodal can't. After training,
	// the combined prediction must match gshare's.
	pc := 3
	for i := 0; i < 4000; i++ {
		c.Update(pc, i%2 == 0)
	}
	if c.Predict(pc) != gs.Predict(pc) {
		t.Fatal("selector did not converge to the gshare component")
	}
}

func TestTakenPredictor(t *testing.T) {
	var p Taken
	if !p.Predict(1) {
		t.Fatal("Taken must predict taken")
	}
	p.Update(1, false) // no-op, must not panic
}

func TestBTBRoundTrip(t *testing.T) {
	b, err := NewBTB(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup(42); ok {
		t.Fatal("empty BTB returned a target")
	}
	b.Update(42, 1000)
	if tgt, ok := b.Lookup(42); !ok || tgt != 1000 {
		t.Fatalf("Lookup = %d,%v want 1000,true", tgt, ok)
	}
	b.Update(42, 2000) // retarget
	if tgt, _ := b.Lookup(42); tgt != 2000 {
		t.Fatalf("retarget failed: %d", tgt)
	}
}

func TestBTBEvictsLRU(t *testing.T) {
	b, err := NewBTB(1, 2) // single set, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	b.Update(1, 10)
	b.Update(2, 20)
	b.Lookup(1)     // make 2 the LRU entry
	b.Update(3, 30) // evicts 2
	if _, ok := b.Lookup(2); ok {
		t.Fatal("LRU entry not evicted")
	}
	if tgt, ok := b.Lookup(1); !ok || tgt != 10 {
		t.Fatal("MRU entry evicted")
	}
}

func TestBTBRejectsBadGeometry(t *testing.T) {
	if _, err := NewBTB(3, 2); err == nil {
		t.Fatal("accepted non-power-of-two sets")
	}
	if _, err := NewBTB(4, 0); err == nil {
		t.Fatal("accepted zero assoc")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := 3; want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d,true", got, ok, want)
		}
	}
	if r.Depth() != 0 {
		t.Fatalf("depth = %d", r.Depth())
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites oldest
	if got, _ := r.Pop(); got != 3 {
		t.Fatalf("pop = %d, want 3", got)
	}
	if got, _ := r.Pop(); got != 2 {
		t.Fatalf("pop = %d, want 2", got)
	}
	// Entry 1 was overwritten; at depth limit the stack held 2 entries.
	if r.Depth() != 0 {
		t.Fatalf("depth = %d, want 0", r.Depth())
	}
}

func TestPredictorNames(t *testing.T) {
	c := NewPaperPredictor()
	if c.Name() == "" || c.comp0.Name() == "" || c.comp1.Name() == "" {
		t.Fatal("empty predictor name")
	}
}

// Property-style determinism check: identical update streams produce
// identical prediction streams.
func TestDeterminism(t *testing.T) {
	mk := func() *Combined { return NewPaperPredictor() }
	a, b := mk(), mk()
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		pc := r.Intn(4096)
		taken := r.Intn(3) != 0
		if a.Predict(pc) != b.Predict(pc) {
			t.Fatalf("divergence at step %d", i)
		}
		a.Update(pc, taken)
		b.Update(pc, taken)
	}
}
