package bpred

// This file gives every predictor structure a deep Clone, so warm-state
// checkpointing (internal/core's Checkpoint) can snapshot trained
// predictor state at the warm-up boundary and replay it across
// measurement runs. Clones share nothing mutable with their source.

// ClonableDir is a direction predictor that can snapshot itself. The
// concrete predictors in this package all implement it; a DirPredictor
// from elsewhere that does not is simply not checkpointable.
type ClonableDir interface {
	DirPredictor
	// CloneDir returns a deep copy sharing no mutable state.
	CloneDir() DirPredictor
}

// CloneDir implements ClonableDir.
func (b *Bimodal) CloneDir() DirPredictor {
	nb := *b
	nb.table = append([]counter2(nil), b.table...)
	return &nb
}

// CloneDir implements ClonableDir.
func (g *Gshare) CloneDir() DirPredictor {
	ng := *g
	ng.table = append([]counter2(nil), g.table...)
	return &ng
}

// CloneDir implements ClonableDir. Both components must themselves be
// clonable; it returns nil otherwise (callers treat nil as "cannot
// checkpoint").
func (c *Combined) CloneDir() DirPredictor {
	c0, ok0 := c.comp0.(ClonableDir)
	c1, ok1 := c.comp1.(ClonableDir)
	if !ok0 || !ok1 {
		return nil
	}
	nc := *c
	nc.selector = append([]counter2(nil), c.selector...)
	nc.comp0 = c0.CloneDir()
	nc.comp1 = c1.CloneDir()
	if nc.comp0 == nil || nc.comp1 == nil {
		return nil
	}
	return &nc
}

// CloneDir implements ClonableDir (Taken is stateless).
func (t Taken) CloneDir() DirPredictor { return t }

// Clone returns a deep copy of the BTB. The set slices are re-sliced from
// one backing array exactly as NewBTB lays them out.
func (b *BTB) Clone() *BTB {
	nb := *b
	nsets := len(b.sets)
	assoc := 0
	if nsets > 0 {
		assoc = len(b.sets[0])
	}
	sets := make([][]btbEntry, nsets)
	backing := make([]btbEntry, nsets*assoc)
	for i := range sets {
		sets[i], backing = backing[:assoc], backing[assoc:]
		copy(sets[i], b.sets[i])
	}
	nb.sets = sets
	return &nb
}

// Clone returns a deep copy of the return-address stack.
func (r *RAS) Clone() *RAS {
	nr := *r
	nr.stack = append([]int(nil), r.stack...)
	return &nr
}
