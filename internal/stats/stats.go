// Package stats collects and formats the measurements the paper reports:
// IPC and speed-up, inter-cluster communications per instruction (split into
// critical and non-critical), the distribution of the ready-instruction
// difference between clusters (workload balance, Figures 6/9/12), and
// register replication (Figure 15).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// BalanceHist is the distribution of the per-cycle workload-balance
// scalar, clipped to ±Range as in the paper's figures. On the two-cluster
// machine the scalar is the paper's signed difference (#ready FP cluster −
// #ready INT cluster); on N > 2 clusters it is the max−min ready-count
// spread across clusters (always ≥ 0).
type BalanceHist struct {
	// Buckets[i] counts cycles with difference i−Range; index 2*Range is
	// +Range. Differences beyond ±Range clip into the end buckets.
	Buckets [2*BalanceRange + 1]uint64 `json:"Buckets"`
	// Samples is the total cycle count recorded.
	Samples uint64 `json:"Samples"`
}

// BalanceRange is the clip range of the histogram (the paper plots −10..10).
const BalanceRange = 10

// Record adds one cycle's difference sample.
func (h *BalanceHist) Record(diff int) {
	if diff > BalanceRange {
		diff = BalanceRange
	}
	if diff < -BalanceRange {
		diff = -BalanceRange
	}
	h.Buckets[diff+BalanceRange]++
	h.Samples++
}

// RecordN adds n cycles with the same difference sample, equivalent to n
// Record(diff) calls. The fast-forward path of the timing core batches the
// samples of a provably idle window through it (the difference cannot
// change while every queue is quiescent).
func (h *BalanceHist) RecordN(diff int, n uint64) {
	if diff > BalanceRange {
		diff = BalanceRange
	}
	if diff < -BalanceRange {
		diff = -BalanceRange
	}
	h.Buckets[diff+BalanceRange] += n
	h.Samples += n
}

// Percent returns the percentage of cycles in bucket diff.
func (h *BalanceHist) Percent(diff int) float64 {
	if h.Samples == 0 {
		return 0
	}
	return 100 * float64(h.Buckets[diff+BalanceRange]) / float64(h.Samples)
}

// Merge accumulates other into h (used to average across benchmarks).
func (h *BalanceHist) Merge(other *BalanceHist) {
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
	h.Samples += other.Samples
}

// ImbalancePercent returns the percentage of cycles with |diff| ≥ k.
func (h *BalanceHist) ImbalancePercent(k int) float64 {
	if h.Samples == 0 {
		return 0
	}
	var n uint64
	for d := -BalanceRange; d <= BalanceRange; d++ {
		if d >= k || d <= -k {
			n += h.Buckets[d+BalanceRange]
		}
	}
	return 100 * float64(n) / float64(h.Samples)
}

// Run is the full measurement record of one simulation.
type Run struct {
	// Scheme and Benchmark identify the experiment cell.
	Scheme    string `json:"Scheme"`
	Benchmark string `json:"Benchmark"`

	// Cycles and Instructions give IPC; Instructions counts committed
	// program instructions (copies excluded, matching the paper's
	// "dynamic instructions").
	Cycles       uint64 `json:"Cycles"`
	Instructions uint64 `json:"Instructions"`

	// Copies is the number of inter-cluster copy instructions inserted.
	Copies uint64 `json:"Copies"`
	// CriticalCopies counts copies whose arrival found a consumer already
	// waiting on them (the paper's "critical communication").
	CriticalCopies uint64 `json:"CriticalCopies"`

	// Balance is the per-cycle ready-difference histogram.
	Balance BalanceHist `json:"Balance"`

	// ReplicatedRegsAvg is the average number of logical registers mapped
	// in more than one cluster per cycle (Figure 15; on the two-cluster
	// machine: mapped in both).
	ReplicatedRegsAvg float64 `json:"ReplicatedRegsAvg"`

	// Steered counts instructions sent to each cluster (index = cluster;
	// one entry per cluster of the simulated machine).
	Steered []uint64 `json:"Steered"`

	// Mispredicts counts resolved conditional-branch and indirect-target
	// mispredictions; Branches the executed control transfers.
	Mispredicts uint64 `json:"Mispredicts"`
	Branches    uint64 `json:"Branches"`

	// L1DMissRate and L1IMissRate snapshot cache behaviour.
	L1DMissRate float64 `json:"L1DMissRate"`
	L1IMissRate float64 `json:"L1IMissRate"`
}

// SteeredAt returns the number of instructions steered to cluster c, zero
// when the machine had fewer clusters (reports index the largest machine
// in a grid).
func (r *Run) SteeredAt(c int) uint64 {
	if c < 0 || c >= len(r.Steered) {
		return 0
	}
	return r.Steered[c]
}

// IPC returns committed instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CommPerInstr returns total communications per dynamic instruction
// (Figures 5 and 8).
func (r *Run) CommPerInstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Copies) / float64(r.Instructions)
}

// CriticalCommPerInstr returns critical communications per instruction.
func (r *Run) CriticalCommPerInstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.CriticalCopies) / float64(r.Instructions)
}

// MispredictRate returns mispredictions per control transfer.
func (r *Run) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// Speedup returns the percent improvement of r over base, following the
// paper's "performance improvement (%)" axis: 100*(IPC/IPCbase − 1).
func Speedup(r, base *Run) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return 100 * (r.IPC()/b - 1)
}

// GeoMeanSpeedup returns the geometric mean of per-benchmark IPC ratios,
// expressed as a percentage improvement. The paper's summary bars use
// G-mean or H-mean of per-benchmark improvements; geometric mean of ratios
// is the conventional choice for normalized throughput.
func GeoMeanSpeedup(runs, bases []*Run) float64 {
	if len(runs) == 0 || len(runs) != len(bases) {
		return 0
	}
	logSum := 0.0
	n := 0
	for i := range runs {
		b := bases[i].IPC()
		v := runs[i].IPC()
		if b <= 0 || v <= 0 {
			continue
		}
		logSum += math.Log(v / b)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * (math.Exp(logSum/float64(n)) - 1)
}

// Table renders rows of (label, columns...) as an aligned text table. It is
// the shared formatter for every figure/table reproduction.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowF appends a row where numeric cells are formatted with %.*f.
func (t *Table) AddRowF(label string, prec int, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.*f", prec, v))
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}

// SortedKeys returns the sorted keys of a string-keyed map; reports iterate
// deterministically.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
