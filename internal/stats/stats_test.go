package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBalanceHistRecordAndClip(t *testing.T) {
	var h BalanceHist
	h.Record(0)
	h.Record(5)
	h.Record(-5)
	h.Record(100)  // clips to +10
	h.Record(-100) // clips to -10
	if h.Samples != 5 {
		t.Fatalf("samples = %d", h.Samples)
	}
	if h.Buckets[BalanceRange] != 1 {
		t.Error("bucket 0 wrong")
	}
	if h.Buckets[2*BalanceRange] != 1 || h.Buckets[0] != 1 {
		t.Error("clipping wrong")
	}
	if got := h.Percent(0); got != 20 {
		t.Errorf("Percent(0) = %g, want 20", got)
	}
}

func TestBalanceHistImbalancePercent(t *testing.T) {
	var h BalanceHist
	for i := 0; i < 6; i++ {
		h.Record(0)
	}
	h.Record(4)
	h.Record(-4)
	h.Record(8)
	h.Record(-8)
	if got := h.ImbalancePercent(4); got != 40 {
		t.Errorf("ImbalancePercent(4) = %g, want 40", got)
	}
	if got := h.ImbalancePercent(5); got != 20 {
		t.Errorf("ImbalancePercent(5) = %g, want 20", got)
	}
}

func TestBalanceHistMerge(t *testing.T) {
	var a, b BalanceHist
	a.Record(1)
	b.Record(1)
	b.Record(-2)
	a.Merge(&b)
	if a.Samples != 3 || a.Buckets[1+BalanceRange] != 2 || a.Buckets[-2+BalanceRange] != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

// Property: percentages over all buckets sum to ~100 whenever samples > 0.
func TestBalanceHistPercentSums(t *testing.T) {
	f := func(diffs []int8) bool {
		if len(diffs) == 0 {
			return true
		}
		var h BalanceHist
		for _, d := range diffs {
			h.Record(int(d))
		}
		sum := 0.0
		for d := -BalanceRange; d <= BalanceRange; d++ {
			sum += h.Percent(d)
		}
		return math.Abs(sum-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunDerivedMetrics(t *testing.T) {
	r := &Run{Cycles: 1000, Instructions: 2500, Copies: 100, CriticalCopies: 40,
		Mispredicts: 5, Branches: 50}
	if got := r.IPC(); got != 2.5 {
		t.Errorf("IPC = %g", got)
	}
	if got := r.CommPerInstr(); got != 0.04 {
		t.Errorf("CommPerInstr = %g", got)
	}
	if got := r.CriticalCommPerInstr(); got != 0.016 {
		t.Errorf("CriticalCommPerInstr = %g", got)
	}
	if got := r.MispredictRate(); got != 0.1 {
		t.Errorf("MispredictRate = %g", got)
	}
	var zero Run
	if zero.IPC() != 0 || zero.CommPerInstr() != 0 || zero.MispredictRate() != 0 {
		t.Error("zero run metrics must be 0")
	}
}

func TestSpeedup(t *testing.T) {
	base := &Run{Cycles: 1000, Instructions: 1000} // IPC 1
	fast := &Run{Cycles: 1000, Instructions: 1360} // IPC 1.36
	if got := Speedup(fast, base); math.Abs(got-36) > 1e-9 {
		t.Errorf("Speedup = %g, want 36", got)
	}
	if got := Speedup(base, &Run{}); got != 0 {
		t.Errorf("Speedup vs zero base = %g", got)
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	bases := []*Run{
		{Cycles: 100, Instructions: 100},
		{Cycles: 100, Instructions: 100},
	}
	runs := []*Run{
		{Cycles: 100, Instructions: 121}, // +21%
		{Cycles: 100, Instructions: 100}, // +0%
	}
	// G-mean of 1.21 and 1.00 = 1.1 -> +10%.
	if got := GeoMeanSpeedup(runs, bases); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMeanSpeedup = %g, want 10", got)
	}
	if got := GeoMeanSpeedup(nil, nil); got != 0 {
		t.Errorf("empty = %g", got)
	}
	if got := GeoMeanSpeedup(runs, bases[:1]); got != 0 {
		t.Errorf("mismatched lengths = %g", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "bench", "speedup")
	tb.AddRow("go", "12.5")
	tb.AddRowF("gcc", 1, 30.0)
	out := tb.String()
	for _, want := range []string{"Figure X", "bench", "speedup", "go", "12.5", "gcc", "30.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v", got)
		}
	}
}
