package workload

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
)

func TestNamesMatchRegistry(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("want the 8 SpecInt95 analogs, got %d", len(names))
	}
	for _, n := range names {
		if _, err := Get(n); err != nil {
			t.Errorf("Get(%q): %v", n, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		p, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(p.Text) < 20 {
			t.Errorf("%s: suspiciously small (%d instructions)", name, len(p.Text))
		}
	}
}

func TestBenchmarksAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, _ := Load(name)
		b, _ := Load(name)
		if len(a.Text) != len(b.Text) || len(a.Data) != len(b.Data) {
			t.Errorf("%s: sizes differ between builds", name)
			continue
		}
		for i := range a.Text {
			if a.Text[i] != b.Text[i] {
				t.Errorf("%s: instruction %d differs", name, i)
				break
			}
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Errorf("%s: data byte %d differs", name, i)
				break
			}
		}
	}
}

// instruction-mix sanity: every analog must look like its SpecInt original
// in the coarse sense — it branches, it loads, it stores, and it never
// touches FP (SpecInt95 integer codes).
func TestBenchmarkInstructionMix(t *testing.T) {
	const window = 100_000
	for _, name := range Names() {
		p, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		m := emu.New(p)
		var branches, loads, stores, fp, total uint64
		for total = 0; total < window && !m.Halted; total++ {
			st, err := m.Step()
			if err != nil {
				t.Fatalf("%s: step %d: %v", name, total, err)
			}
			switch st.Inst.Op.Class() {
			case isa.ClassBranch:
				branches++
			case isa.ClassLoad:
				loads++
			case isa.ClassStore:
				stores++
			case isa.ClassFP:
				fp++
			}
		}
		if total < window {
			t.Errorf("%s: halted after %d instructions (must loop forever)", name, total)
		}
		brFrac := float64(branches) / float64(total)
		ldFrac := float64(loads) / float64(total)
		stFrac := float64(stores) / float64(total)
		if brFrac < 0.05 || brFrac > 0.45 {
			t.Errorf("%s: branch fraction %.2f out of SpecInt-like range", name, brFrac)
		}
		if ldFrac < 0.03 {
			t.Errorf("%s: load fraction %.2f too low", name, ldFrac)
		}
		if stFrac == 0 {
			t.Errorf("%s: no stores at all", name)
		}
		if fp != 0 {
			t.Errorf("%s: %d FP instructions in an integer benchmark", name, fp)
		}
	}
}

// The go analog must be the branchiest, ijpeg among the least branchy —
// the property Figure 4's per-benchmark spread rests on.
func TestBranchinessOrdering(t *testing.T) {
	frac := func(name string) float64 {
		p, _ := Load(name)
		m := emu.New(p)
		var branches, total uint64
		for total = 0; total < 50_000; total++ {
			st, err := m.Step()
			if err != nil {
				t.Fatal(err)
			}
			if st.Inst.Op.IsBranch() {
				branches++
			}
		}
		return float64(branches) / float64(total)
	}
	goFrac, ijpegFrac := frac("go"), frac("ijpeg")
	if goFrac <= ijpegFrac {
		t.Errorf("go branch fraction (%.3f) not above ijpeg's (%.3f)", goFrac, ijpegFrac)
	}
}

// Every analog must run on the timing core without deadlock and with a
// plausible IPC.
func TestBenchmarksRunOnCore(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := Load(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := core.New(config.Clustered(), p, core.NaiveSteerer{})
			if err != nil {
				t.Fatal(err)
			}
			r, err := m.RunWithWarmup(5_000, 20_000)
			if err != nil {
				t.Fatal(err)
			}
			if r.IPC() <= 0.1 || r.IPC() > 8 {
				t.Errorf("%s: IPC %.2f implausible", name, r.IPC())
			}
			if r.Branches == 0 {
				t.Errorf("%s: no branches observed", name)
			}
		})
	}
}

// The perl analog's indirect dispatch must actually mispredict sometimes
// (its defining microarchitectural property).
func TestPerlIndirectJumpsMispredict(t *testing.T) {
	p, err := Load("perl")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(config.Clustered(), p, core.NaiveSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunWithWarmup(5_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.MispredictRate() < 0.01 {
		t.Errorf("perl mispredict rate %.3f — dispatch too predictable", r.MispredictRate())
	}
}

// The FP extension workloads must be genuinely FP-heavy while still
// carrying the integer work (indexing, loop control) that motivates the
// paper's shared-simple-int clusters.
func TestFPWorkloadsCharacter(t *testing.T) {
	for _, name := range FPNames() {
		p, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := emu.New(p)
		var fp, simple, total uint64
		for total = 0; total < 50_000 && !m.Halted; total++ {
			st, err := m.Step()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			switch st.Inst.Op.Class() {
			case isa.ClassFP:
				fp++
			case isa.ClassSimpleInt:
				simple++
			}
		}
		fpFrac := float64(fp) / float64(total)
		intFrac := float64(simple) / float64(total)
		if fpFrac < 0.15 {
			t.Errorf("%s: FP fraction %.2f too low for a SpecFP analog", name, fpFrac)
		}
		if intFrac < 0.15 {
			t.Errorf("%s: simple-int fraction %.2f too low (the paper's motivation needs it)", name, intFrac)
		}
	}
}

// On FP workloads the base machine already uses both clusters; general
// balance steering must still run correctly and not lose performance.
func TestFPWorkloadsRunOnCore(t *testing.T) {
	for _, name := range FPNames() {
		p, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.New(config.Clustered(), p, core.NaiveSteerer{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.RunWithWarmup(5_000, 20_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Steered[0] == 0 || r.Steered[1] == 0 {
			t.Errorf("%s: FP workload did not use both clusters (%v)", name, r.Steered)
		}
	}
}

func TestSynthHelpersDeterministic(t *testing.T) {
	a := synthBytes(1, 100, 26)
	b := synthBytes(1, 100, 26)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("synthBytes not deterministic")
		}
	}
	w1 := synthWords(2, 50, 100)
	w2 := synthWords(2, 50, 100)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("synthWords not deterministic")
		}
		if w1[i] < 0 || w1[i] >= 100 {
			t.Fatalf("synthWords value %d out of bound", w1[i])
		}
	}
}
