package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// buildCompress is the 129.compress analog: the LZW compression kernel —
// read a byte, combine it with the previous code into a hash, probe the
// code table, and either follow the match or insert a new entry. It
// reproduces compress's signature behaviour: a tight loop around a
// hash-table probe whose hit/miss branch is data-dependent (hard to
// predict) and whose table stores scatter across a 128KB structure.
//
// The kernel processes the hash recurrence alongside the output bit-packing
// and checksum work real compress interleaves with it, so consecutive
// iterations expose the across-chain parallelism an 8-wide window sees in
// the -O5 binary.
//
// Registers: r1 input base, r2 position, r3 position mask, r4 table base,
// r5 previous code, r6 current byte, r7-r12 scratch, r13 output count,
// r14 table index mask, r15 output base; checksum chain: r16 adler-a,
// r17 adler-b, r18 position, r19-r21 scratch; bit packer: r22 bit buffer,
// r23 bit count.
func buildCompress() *prog.Program {
	b := prog.NewBuilder("compress")
	const inputLen = 64 << 10
	b.Bytes("input", synthBytes(0xC0FFEE, inputLen, 26))
	b.Space("table", 8192*16) // 8192 entries of {key, code}
	b.Space("output", 4096*8)

	b.La(isa.R(1), "input")
	b.La(isa.R(4), "table")
	b.La(isa.R(15), "output")
	b.Li(isa.R(2), 0)
	b.Li(isa.R(3), inputLen-1)
	b.Li(isa.R(5), 0)
	b.Li(isa.R(13), 0)
	b.Li(isa.R(14), 8191)
	b.Li(isa.R(16), 1)
	b.Li(isa.R(17), 0)
	b.Li(isa.R(18), 32768) // checksum scans the other half of the input
	b.Li(isa.R(22), 0)
	b.Li(isa.R(23), 0)

	b.Label("top")
	// --- LZW hash recurrence ---
	// c = input[i]
	b.Add(isa.R(7), isa.R(1), isa.R(2))
	b.Lb(isa.R(6), isa.R(7), 0)
	// h = ((k << 4) ^ c) & 8191
	b.Slli(isa.R(8), isa.R(5), 4)
	b.Xor(isa.R(8), isa.R(8), isa.R(6))
	b.And(isa.R(8), isa.R(8), isa.R(14))
	// entry = &table[h*16]
	b.Slli(isa.R(9), isa.R(8), 4)
	b.Add(isa.R(9), isa.R(4), isa.R(9))
	// key = (k << 8) | c
	b.Slli(isa.R(10), isa.R(5), 8)
	b.Or(isa.R(10), isa.R(10), isa.R(6))
	// --- independent checksum chain (adler-style) ---
	b.Add(isa.R(19), isa.R(1), isa.R(18))
	b.Lb(isa.R(20), isa.R(19), 0)
	b.Add(isa.R(16), isa.R(16), isa.R(20))
	b.Andi(isa.R(16), isa.R(16), 0xFFF)
	b.Add(isa.R(17), isa.R(17), isa.R(16))
	b.Andi(isa.R(17), isa.R(17), 0xFFF)
	b.Addi(isa.R(18), isa.R(18), 1)
	b.And(isa.R(18), isa.R(18), isa.R(3))
	// --- probe ---
	b.Ld(isa.R(11), isa.R(9), 0)
	b.Bne(isa.R(11), isa.R(10), "miss")
	// hit: follow the chain code
	b.Ld(isa.R(5), isa.R(9), 8)
	b.Jmp("pack")
	b.Label("miss")
	// emit current code to the output ring and insert the new entry
	b.Andi(isa.R(12), isa.R(13), 4095)
	b.Slli(isa.R(12), isa.R(12), 3)
	b.Add(isa.R(12), isa.R(15), isa.R(12))
	b.St(isa.R(5), isa.R(12), 0)
	b.Addi(isa.R(13), isa.R(13), 1)
	b.St(isa.R(10), isa.R(9), 0)
	b.St(isa.R(6), isa.R(9), 8)
	b.Mov(isa.R(5), isa.R(6))
	b.Label("pack")
	// --- output bit packer (independent of the probe result path) ---
	b.Slli(isa.R(22), isa.R(22), 9)
	b.Or(isa.R(22), isa.R(22), isa.R(6))
	b.Addi(isa.R(23), isa.R(23), 9)
	b.Slti(isa.R(21), isa.R(23), 54)
	b.Bne(isa.R(21), isa.R(0), "next")
	b.Andi(isa.R(21), isa.R(13), 4095)
	b.Slli(isa.R(21), isa.R(21), 3)
	b.Add(isa.R(21), isa.R(15), isa.R(21))
	b.St(isa.R(22), isa.R(21), 0)
	b.Li(isa.R(22), 0)
	b.Li(isa.R(23), 0)
	b.Label("next")
	b.Addi(isa.R(2), isa.R(2), 1)
	b.And(isa.R(2), isa.R(2), isa.R(3))
	b.Jmp("top")
	return b.MustBuild()
}

// buildGo is the 099.go analog: positional evaluation over a 19x19 board —
// for every point, classify it (empty/own/opponent) and score local
// patterns from its four neighbours. It reproduces go's signature: the
// highest branch density in SpecInt95, short data-dependent branch chains,
// and a small, cache-resident working set.
//
// Registers: r1 board base, r2 point index, r3 board size, r4 score,
// r5-r12 scratch, r13 row stride, r14 captured count.
func buildGo() *prog.Program {
	b := prog.NewBuilder("go")
	const stride = 21 // 19 columns + sentinel border
	const size = stride * 21
	board := make([]byte, size)
	x := xorshift64(0x60B0A12D)
	for r := 1; r < 20; r++ {
		for c := 1; c < 20; c++ {
			v := x.next() % 10
			switch {
			case v < 4:
				board[r*stride+c] = 0 // empty
			case v < 7:
				board[r*stride+c] = 1 // black
			default:
				board[r*stride+c] = 2 // white
			}
		}
	}
	b.Bytes("board", board)
	b.Space("scores", size*8)

	b.La(isa.R(1), "board")
	b.La(isa.R(15), "scores")
	b.Li(isa.R(2), stride+1)
	b.Li(isa.R(3), size-stride-1)
	b.Li(isa.R(4), 0)
	b.Li(isa.R(13), stride)
	b.Li(isa.R(14), 0)

	b.Label("point")
	b.Add(isa.R(5), isa.R(1), isa.R(2))
	b.Lb(isa.R(6), isa.R(5), 0) // stone at p
	// Load the four neighbours.
	b.Lb(isa.R(7), isa.R(5), 1)
	b.Lb(isa.R(8), isa.R(5), -1)
	b.Lb(isa.R(9), isa.R(5), stride)
	b.Lb(isa.R(10), isa.R(5), -stride)
	b.Beq(isa.R(6), isa.R(0), "empty")
	// Occupied: count same-colour neighbours (group strength).
	b.Li(isa.R(11), 0)
	b.Bne(isa.R(7), isa.R(6), "s1")
	b.Addi(isa.R(11), isa.R(11), 1)
	b.Label("s1")
	b.Bne(isa.R(8), isa.R(6), "s2")
	b.Addi(isa.R(11), isa.R(11), 1)
	b.Label("s2")
	b.Bne(isa.R(9), isa.R(6), "s3")
	b.Addi(isa.R(11), isa.R(11), 1)
	b.Label("s3")
	b.Bne(isa.R(10), isa.R(6), "s4")
	b.Addi(isa.R(11), isa.R(11), 1)
	b.Label("s4")
	// A stone with no same-colour neighbour and no empty neighbour is
	// captured-ish: test liberties.
	b.Bne(isa.R(11), isa.R(0), "scored")
	b.Beq(isa.R(7), isa.R(0), "scored")
	b.Beq(isa.R(8), isa.R(0), "scored")
	b.Beq(isa.R(9), isa.R(0), "scored")
	b.Beq(isa.R(10), isa.R(0), "scored")
	b.Addi(isa.R(14), isa.R(14), 1)
	b.Jmp("scored")
	b.Label("empty")
	// Empty point: influence = black neighbours - white neighbours.
	b.Li(isa.R(11), 0)
	b.Slti(isa.R(12), isa.R(7), 2) // 1 if empty/black
	b.Add(isa.R(11), isa.R(11), isa.R(12))
	b.Slti(isa.R(12), isa.R(8), 2)
	b.Add(isa.R(11), isa.R(11), isa.R(12))
	b.Slti(isa.R(12), isa.R(9), 2)
	b.Add(isa.R(11), isa.R(11), isa.R(12))
	b.Slti(isa.R(12), isa.R(10), 2)
	b.Add(isa.R(11), isa.R(11), isa.R(12))
	b.Blt(isa.R(11), isa.R(13), "scored") // always true; keeps branch mix
	b.Label("scored")
	b.Add(isa.R(4), isa.R(4), isa.R(11))
	// scores[p] += strength
	b.Slli(isa.R(12), isa.R(2), 3)
	b.Add(isa.R(12), isa.R(15), isa.R(12))
	b.Ld(isa.R(5), isa.R(12), 0)
	b.Add(isa.R(5), isa.R(5), isa.R(11))
	b.St(isa.R(5), isa.R(12), 0)
	// next point, wrapping inside the playable area
	b.Addi(isa.R(2), isa.R(2), 1)
	b.Blt(isa.R(2), isa.R(3), "point")
	b.Li(isa.R(2), stride+1)
	b.Jmp("point")
	return b.MustBuild()
}

// buildGCC is the 126.gcc analog: a pass over a synthetic RTL instruction
// chain — load a node, dispatch on its opcode through a compare tree,
// transform its value, store the result, follow the next pointer. It
// reproduces gcc's signature: pointer chasing over a multi-hundred-KB IR,
// dispatch-heavy control flow, and stores back into the walked structure.
//
// Node layout (32 bytes): op, value, next, aux.
// Registers: r1 current node, r2 head, r3 op, r4 value, r5-r9 scratch,
// r10 transform count.
func buildGCC() *prog.Program {
	b := prog.NewBuilder("gcc")
	const nodes = 1024
	const nodeSize = 32
	// Build a locality-preserving permutation ring: nodes are shuffled
	// only within ±8 positions, so the walk is irregular at instruction
	// granularity but cache-friendly overall (gcc's IR lists are allocated
	// roughly in traversal order, giving it a moderate ~32KB hot set).
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	x := xorshift64(0x6CC)
	for i := 0; i < nodes-8; i++ {
		j := i + int(x.next()%8)
		perm[i], perm[j] = perm[j], perm[i]
	}
	raw := make([]int64, nodes*4)
	base := int64(prog.DefaultDataBase)
	for i := 0; i < nodes; i++ {
		nextIdx := perm[(indexOf(perm, i)+1)%nodes]
		raw[i*4+0] = int64(x.next() % 8)       // op
		raw[i*4+1] = int64(x.next() % 100_000) // value
		raw[i*4+2] = base + int64(nextIdx*nodeSize)
		raw[i*4+3] = 0
	}
	b.Word64("nodes", raw...)

	b.La(isa.R(2), "nodes")
	b.Mov(isa.R(1), isa.R(2))
	b.Li(isa.R(10), 0)

	b.Label("walk")
	b.Ld(isa.R(3), isa.R(1), 0) // op
	b.Ld(isa.R(4), isa.R(1), 8) // value
	// Dispatch tree (binary over 8 opcodes).
	b.Slti(isa.R(5), isa.R(3), 4)
	b.Beq(isa.R(5), isa.R(0), "hi")
	b.Slti(isa.R(5), isa.R(3), 2)
	b.Beq(isa.R(5), isa.R(0), "op23")
	b.Bne(isa.R(3), isa.R(0), "op1")
	// op0: negate-ish
	b.Sub(isa.R(4), isa.R(0), isa.R(4))
	b.Jmp("store")
	b.Label("op1") // strength-reduced multiply
	b.Slli(isa.R(6), isa.R(4), 2)
	b.Add(isa.R(4), isa.R(6), isa.R(4))
	b.Jmp("store")
	b.Label("op23")
	b.Slti(isa.R(5), isa.R(3), 3)
	b.Beq(isa.R(5), isa.R(0), "op3")
	b.Xori(isa.R(4), isa.R(4), 0x5A5)
	b.Jmp("store")
	b.Label("op3") // constant-fold add
	b.Addi(isa.R(4), isa.R(4), 42)
	b.Jmp("store")
	b.Label("hi")
	b.Slti(isa.R(5), isa.R(3), 6)
	b.Beq(isa.R(5), isa.R(0), "op67")
	b.Slti(isa.R(5), isa.R(3), 5)
	b.Beq(isa.R(5), isa.R(0), "op5")
	b.Srai(isa.R(4), isa.R(4), 1)
	b.Jmp("store")
	b.Label("op5") // CSE hit: reuse aux
	b.Ld(isa.R(6), isa.R(1), 24)
	b.Add(isa.R(4), isa.R(4), isa.R(6))
	b.Jmp("store")
	b.Label("op67")
	b.Andi(isa.R(4), isa.R(4), 0xFFF)
	b.Label("store")
	b.St(isa.R(4), isa.R(1), 24) // aux = transformed value
	b.Addi(isa.R(10), isa.R(10), 1)
	b.Ld(isa.R(1), isa.R(1), 16) // follow next
	b.Jmp("walk")
	return b.MustBuild()
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// buildLi is the 130.li analog: the xlisp evaluator's hot path — walk cons
// cells, test type tags, sum immediate integers, and rebuild list spines
// with bump allocation. It reproduces li's signature: car/cdr pointer
// chasing with a tag-test branch per cell and periodic allocation stores.
//
// Cell layout (16 bytes): car, cdr. Tagged values: odd = integer (value in
// high 63 bits), even = pointer.
// Registers: r1 current cell, r2 heap base, r3 sum, r4 bump pointer,
// r5-r9 scratch, r11 list head, r12 alloc mask.
func buildLi() *prog.Program {
	b := prog.NewBuilder("li")
	const cells = 2048 // 32KB heap: xlisp's hot set is cache-resident
	const cellSize = 16
	base := int64(prog.DefaultDataBase)
	raw := make([]int64, cells*2)
	x := xorshift64(0x11)
	for i := 0; i < cells; i++ {
		if x.next()%3 == 0 {
			// Pointer car: reference a random earlier cell (a shared
			// sublist, as lisp heaps have).
			raw[i*2] = base + int64(int(x.next()%uint64(cells))*cellSize)
		} else {
			raw[i*2] = int64(x.next()%1000)<<1 | 1 // tagged int
		}
		raw[i*2+1] = base + int64(((i+1)%cells)*cellSize) // cdr ring
	}
	b.Word64("heap", raw...)
	b.Space("newspace", cells*cellSize)

	b.La(isa.R(2), "heap")
	b.La(isa.R(4), "newspace")
	b.Mov(isa.R(1), isa.R(2))
	b.Li(isa.R(3), 0)
	b.Li(isa.R(12), cells*cellSize-1)
	b.Li(isa.R(13), 0) // alloc offset
	// Second evaluator walker (the interpreter's environment scan),
	// starting mid-heap: an independent chain the window overlaps with
	// the first.
	b.La(isa.R(20), "heap")
	b.Addi(isa.R(20), isa.R(20), cells/2*cellSize)
	b.Li(isa.R(21), 0)

	b.Label("eval")
	b.Ld(isa.R(5), isa.R(1), 0)   // car (walker 1)
	b.Ld(isa.R(22), isa.R(20), 0) // car (walker 2)
	b.Andi(isa.R(6), isa.R(5), 1)
	// Walker 2: tag test and accumulate (no allocation on this path).
	b.Andi(isa.R(23), isa.R(22), 1)
	b.Beq(isa.R(23), isa.R(0), "w2ptr")
	b.Srai(isa.R(24), isa.R(22), 1)
	b.Add(isa.R(21), isa.R(21), isa.R(24))
	b.Jmp("w2done")
	b.Label("w2ptr")
	b.Ld(isa.R(24), isa.R(22), 8) // peek the sublist's cdr
	b.Xor(isa.R(21), isa.R(21), isa.R(24))
	b.Label("w2done")
	b.Ld(isa.R(20), isa.R(20), 8)
	// Walker 1: full evaluator path with allocation.
	b.Beq(isa.R(6), isa.R(0), "pointer")
	b.Srai(isa.R(5), isa.R(5), 1)
	b.Add(isa.R(3), isa.R(3), isa.R(5))
	b.Jmp("cdr")
	b.Label("pointer")
	// Pointer: peek one level (bounded recursion of the evaluator).
	b.Ld(isa.R(7), isa.R(5), 0)
	b.Andi(isa.R(8), isa.R(7), 1)
	b.Beq(isa.R(8), isa.R(0), "cons")
	b.Srai(isa.R(7), isa.R(7), 1)
	b.Add(isa.R(3), isa.R(3), isa.R(7))
	b.Jmp("cdr")
	b.Label("cons")
	// Allocate a cell recording the visit (bump allocator).
	b.Add(isa.R(9), isa.R(4), isa.R(13))
	b.St(isa.R(5), isa.R(9), 0)
	b.St(isa.R(1), isa.R(9), 8)
	b.Addi(isa.R(13), isa.R(13), cellSize)
	b.And(isa.R(13), isa.R(13), isa.R(12))
	b.Label("cdr")
	b.Ld(isa.R(1), isa.R(1), 8)
	b.Jmp("eval")
	return b.MustBuild()
}
