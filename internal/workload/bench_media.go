package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// buildIJpeg is the 132.ijpeg analog: the forward-DCT and quantization
// inner loops — load a row of pixels, butterfly add/subtract, multiply by
// cosine-table constants, shift-normalize, quantize, store coefficients.
// It reproduces ijpeg's signature: the most ILP-rich and least branchy
// member of SpecInt95, multiply-heavy with strided, predictable memory
// access.
//
// Registers: r1 image base, r2 block offset, r3 coefficient base,
// r4 quant base, r5-r14 row scratch, r15 row counter, r16 block limit.
func buildIJpeg() *prog.Program {
	b := prog.NewBuilder("ijpeg")
	const dim = 64
	img := make([]byte, dim*dim)
	x := xorshift64(0x1396)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			img[r*dim+c] = byte((r*3+c*2)&0x7F) + byte(x.next()%16)
		}
	}
	b.Bytes("image", img)
	b.Space("coeffs", dim*dim*8)
	// Reciprocal quantizers (4096/q for the standard luminance table).
	b.Word64("quant", 256, 372, 409, 256, 170, 102, 80, 67)

	b.La(isa.R(1), "image")
	b.La(isa.R(3), "coeffs")
	b.La(isa.R(4), "quant")
	b.Li(isa.R(2), 0)            // linear row offset in the image
	b.Li(isa.R(16), dim*dim-dim) // wrap limit
	b.Li(isa.R(15), 0)

	b.Label("row")
	b.Add(isa.R(5), isa.R(1), isa.R(2))
	// Load 8 pixels of the row.
	b.Lb(isa.R(6), isa.R(5), 0)
	b.Lb(isa.R(7), isa.R(5), 1)
	b.Lb(isa.R(8), isa.R(5), 2)
	b.Lb(isa.R(9), isa.R(5), 3)
	b.Lb(isa.R(10), isa.R(5), 4)
	b.Lb(isa.R(11), isa.R(5), 5)
	b.Lb(isa.R(12), isa.R(5), 6)
	b.Lb(isa.R(13), isa.R(5), 7)
	// Butterfly stage: sums and differences (independent, high ILP).
	b.Add(isa.R(17), isa.R(6), isa.R(13))
	b.Sub(isa.R(18), isa.R(6), isa.R(13))
	b.Add(isa.R(19), isa.R(7), isa.R(12))
	b.Sub(isa.R(20), isa.R(7), isa.R(12))
	b.Add(isa.R(21), isa.R(8), isa.R(11))
	b.Sub(isa.R(22), isa.R(8), isa.R(11))
	b.Add(isa.R(23), isa.R(9), isa.R(10))
	b.Sub(isa.R(24), isa.R(9), isa.R(10))
	// Cosine "multiplies" as shift-adds, the way libjpeg's fast integer
	// DCT strength-reduces its constants: x*362>>9 ~ (x>>1)+(x>>3)+... —
	// two or three shift-add terms per coefficient keep the precision the
	// quantizer needs while leaving the (single, shared) multiplier for
	// the quantization step.
	b.Srai(isa.R(14), isa.R(17), 1)
	b.Srai(isa.R(25), isa.R(17), 3)
	b.Add(isa.R(17), isa.R(14), isa.R(25))
	b.Srai(isa.R(14), isa.R(18), 1)
	b.Srai(isa.R(25), isa.R(18), 2)
	b.Add(isa.R(18), isa.R(14), isa.R(25))
	b.Srai(isa.R(14), isa.R(19), 2)
	b.Srai(isa.R(25), isa.R(19), 4)
	b.Add(isa.R(19), isa.R(14), isa.R(25))
	b.Srai(isa.R(14), isa.R(20), 1)
	b.Srai(isa.R(25), isa.R(20), 2)
	b.Add(isa.R(20), isa.R(14), isa.R(25))
	// Second butterfly.
	b.Add(isa.R(21), isa.R(21), isa.R(17))
	b.Sub(isa.R(22), isa.R(22), isa.R(18))
	b.Add(isa.R(23), isa.R(23), isa.R(19))
	b.Sub(isa.R(24), isa.R(24), isa.R(20))
	// Quantize four coefficients by reciprocal multiplication (what real
	// JPEG encoders do instead of dividing: coeff * recip >> 16).
	b.Ld(isa.R(14), isa.R(4), 0)
	b.Mul(isa.R(21), isa.R(21), isa.R(14))
	b.Srai(isa.R(21), isa.R(21), 12)
	b.Ld(isa.R(14), isa.R(4), 8)
	b.Mul(isa.R(22), isa.R(22), isa.R(14))
	b.Srai(isa.R(22), isa.R(22), 12)
	// Clamp negative coefficients to zero (saturation step; these are the
	// data-dependent branches real quantization has).
	b.Bge(isa.R(21), isa.R(0), "c1")
	b.Li(isa.R(21), 0)
	b.Label("c1")
	b.Bge(isa.R(22), isa.R(0), "c2")
	b.Li(isa.R(22), 0)
	b.Label("c2")
	b.Bge(isa.R(23), isa.R(0), "c3")
	b.Li(isa.R(23), 0)
	b.Label("c3")
	b.Bge(isa.R(24), isa.R(0), "c4")
	b.Li(isa.R(24), 0)
	b.Label("c4")
	// Store the row's coefficients.
	b.Slli(isa.R(14), isa.R(2), 3)
	b.Add(isa.R(14), isa.R(3), isa.R(14))
	b.St(isa.R(21), isa.R(14), 0)
	b.St(isa.R(22), isa.R(14), 8)
	b.St(isa.R(23), isa.R(14), 16)
	b.St(isa.R(24), isa.R(14), 24)
	// Next row of the block; wrap over the image.
	b.Addi(isa.R(2), isa.R(2), dim)
	b.Blt(isa.R(2), isa.R(16), "row")
	b.Addi(isa.R(15), isa.R(15), 1)
	b.Andi(isa.R(2), isa.R(15), 7) // restart at a shifted column
	b.Jmp("row")
	return b.MustBuild()
}

// buildVortex is the 147.vortex analog: the object-store transaction loop —
// hash a key, walk a two-level index, then copy the found record's fields
// into a result buffer and bump its reference count. It reproduces
// vortex's signature: the largest working set in SpecInt95 (record pool +
// index), load-dominated with field-copy store bursts and moderately
// predictable branches.
//
// Record layout: 64 bytes (8 fields). Index: 2 levels of 64 entries.
// Registers: r1 records base, r2 l1 index, r3 l2 index, r4 key state,
// r5-r12 scratch, r13 result buffer, r14 transaction count.
func buildVortex() *prog.Program {
	b := prog.NewBuilder("vortex")
	const records = 1024
	const recSize = 64
	base := int64(prog.DefaultDataBase)
	rec := make([]int64, records*recSize/8)
	x := xorshift64(0x7077)
	for i := range rec {
		rec[i] = int64(x.next() % 1_000_000)
	}
	b.Word64("records", rec...)
	// Two-level index: l1[i] -> address of l2 block; l2 blocks hold record
	// addresses.
	l2base := base + int64(records*recSize) + 64*8
	l1 := make([]int64, 64)
	for i := range l1 {
		l1[i] = l2base + int64(i*16*8)
	}
	b.Word64("l1", l1...)
	l2 := make([]int64, 64*16)
	for i := range l2 {
		l2[i] = base + int64(int(x.next()%records)*recSize)
	}
	b.Word64("l2", l2...)
	b.Space("result", recSize)

	b.La(isa.R(1), "records")
	b.La(isa.R(2), "l1")
	b.La(isa.R(13), "result")
	b.Li(isa.R(4), 12345)
	b.Li(isa.R(14), 0)

	b.Label("txn")
	// key = key*1103515245-ish via shifts (LCG without overflow drama)
	b.Slli(isa.R(5), isa.R(4), 3)
	b.Add(isa.R(4), isa.R(4), isa.R(5))
	b.Addi(isa.R(4), isa.R(4), 12345)
	// l1 slot = (key >> 4) & 63
	b.Srai(isa.R(5), isa.R(4), 4)
	b.Andi(isa.R(5), isa.R(5), 63)
	b.Slli(isa.R(5), isa.R(5), 3)
	b.Add(isa.R(5), isa.R(2), isa.R(5))
	b.Ld(isa.R(6), isa.R(5), 0) // l2 block address
	// l2 slot = key & 15
	b.Andi(isa.R(7), isa.R(4), 15)
	b.Slli(isa.R(7), isa.R(7), 3)
	b.Add(isa.R(7), isa.R(6), isa.R(7))
	b.Ld(isa.R(8), isa.R(7), 0) // record address
	// Copy 4 fields to the result buffer.
	b.Ld(isa.R(9), isa.R(8), 0)
	b.St(isa.R(9), isa.R(13), 0)
	b.Ld(isa.R(10), isa.R(8), 8)
	b.St(isa.R(10), isa.R(13), 8)
	b.Ld(isa.R(11), isa.R(8), 16)
	b.St(isa.R(11), isa.R(13), 16)
	b.Ld(isa.R(12), isa.R(8), 24)
	b.St(isa.R(12), isa.R(13), 24)
	// Conditional update path: even keys bump the record's refcount.
	b.Andi(isa.R(5), isa.R(4), 1)
	b.Bne(isa.R(5), isa.R(0), "skip")
	b.Ld(isa.R(9), isa.R(8), 56)
	b.Addi(isa.R(9), isa.R(9), 1)
	b.St(isa.R(9), isa.R(8), 56)
	b.Label("skip")
	b.Addi(isa.R(14), isa.R(14), 1)
	b.Jmp("txn")
	return b.MustBuild()
}
