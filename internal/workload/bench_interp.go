package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// buildPerl is the 134.perl analog: the bytecode interpreter main loop —
// fetch an opcode, jump through a dispatch table (an indirect jump per
// operation, the defining feature of perl's control flow), and run short
// handlers doing string hashing, variable arithmetic and associative-array
// stores. It reproduces perl's signature: indirect-jump dispatch that
// stresses the BTB, plus byte-granularity string traffic.
//
// Registers: r1 bytecode base, r2 vpc, r3 bytecode mask, r4 dispatch
// table, r5 opcode, r6-r12 scratch, r13 string arena, r14 hash state,
// r15 variable A, r16 variable B, r17 assoc table.
func buildPerl() *prog.Program {
	b := prog.NewBuilder("perl")
	const ops = 256
	// Real perl bytecode is locally repetitive (loops re-execute the same
	// op sequence) with occasional data-dependent detours: build it from a
	// repeating 16-op motif perturbed at a few sites, so the dispatch
	// indirect jump is partially — not fully — predictable.
	motif := []int64{0, 2, 1, 6, 0, 3, 4, 6, 5, 2, 0, 7, 1, 6, 3, 4}
	code := make([]int64, ops)
	x := xorshift64(0x9E71)
	for i := range code {
		code[i] = motif[i%len(motif)]
		if x.next()%8 == 0 {
			code[i] = int64(x.next() % 8)
		}
	}
	b.Word64("bytecode", code...)
	b.Space("dispatch", 8*8)
	b.Bytes("arena", synthBytes(0x57217, 8192, 26))
	b.Space("assoc", 1024*8)

	b.La(isa.R(1), "bytecode")
	b.La(isa.R(4), "dispatch")
	b.La(isa.R(13), "arena")
	b.La(isa.R(17), "assoc")
	b.Li(isa.R(2), 0)
	b.Li(isa.R(3), ops-1)
	b.Li(isa.R(14), 5381)
	b.Li(isa.R(15), 7)
	b.Li(isa.R(16), 3)

	// Fill the dispatch table with handler instruction indices.
	handlers := []string{"op_hash", "op_concat", "op_add", "op_cmp",
		"op_store", "op_shift", "op_inc", "op_mix"}
	for i, h := range handlers {
		b.LiLabel(isa.R(6), h)
		b.St(isa.R(6), isa.R(4), int32(i*8))
	}

	b.Label("dispatch_loop")
	// op = bytecode[vpc]
	b.Slli(isa.R(6), isa.R(2), 3)
	b.Add(isa.R(6), isa.R(1), isa.R(6))
	b.Ld(isa.R(5), isa.R(6), 0)
	// target = dispatch[op]; jr target  (the indirect jump)
	b.Slli(isa.R(7), isa.R(5), 3)
	b.Add(isa.R(7), isa.R(4), isa.R(7))
	b.Ld(isa.R(8), isa.R(7), 0)
	b.Jr(isa.R(8))

	b.Label("op_hash") // djb2 over a 16-byte string (counted inner loop)
	b.Andi(isa.R(9), isa.R(14), 8176)
	b.Add(isa.R(9), isa.R(13), isa.R(9))
	b.Li(isa.R(12), 16)
	b.Label("hash_byte")
	b.Lb(isa.R(10), isa.R(9), 0)
	b.Slli(isa.R(6), isa.R(14), 5)
	b.Add(isa.R(14), isa.R(14), isa.R(6))
	b.Add(isa.R(14), isa.R(14), isa.R(10))
	b.Addi(isa.R(9), isa.R(9), 1)
	b.Addi(isa.R(12), isa.R(12), -1)
	b.Bne(isa.R(12), isa.R(0), "hash_byte")
	b.Jmp("next")
	b.Label("op_concat") // 16-byte string move within the arena
	b.Andi(isa.R(9), isa.R(14), 8176)
	b.Add(isa.R(9), isa.R(13), isa.R(9))
	b.Andi(isa.R(11), isa.R(15), 8176)
	b.Add(isa.R(11), isa.R(13), isa.R(11))
	b.Li(isa.R(12), 4)
	b.Label("concat_word")
	b.Lb(isa.R(10), isa.R(9), 0)
	b.Sb(isa.R(10), isa.R(11), 0)
	b.Lb(isa.R(10), isa.R(9), 1)
	b.Sb(isa.R(10), isa.R(11), 1)
	b.Lb(isa.R(10), isa.R(9), 2)
	b.Sb(isa.R(10), isa.R(11), 2)
	b.Lb(isa.R(10), isa.R(9), 3)
	b.Sb(isa.R(10), isa.R(11), 3)
	b.Addi(isa.R(9), isa.R(9), 4)
	b.Addi(isa.R(11), isa.R(11), 4)
	b.Addi(isa.R(12), isa.R(12), -1)
	b.Bne(isa.R(12), isa.R(0), "concat_word")
	b.Jmp("next")
	b.Label("op_add")
	b.Add(isa.R(15), isa.R(15), isa.R(16))
	b.Jmp("next")
	b.Label("op_cmp")
	b.Blt(isa.R(15), isa.R(16), "cmp_lt")
	b.Sub(isa.R(15), isa.R(15), isa.R(16))
	b.Jmp("next")
	b.Label("cmp_lt")
	b.Add(isa.R(16), isa.R(16), isa.R(15))
	b.Jmp("next")
	b.Label("op_store") // assoc[hash & mask] = A
	b.Andi(isa.R(9), isa.R(14), 1023)
	b.Slli(isa.R(9), isa.R(9), 3)
	b.Add(isa.R(9), isa.R(17), isa.R(9))
	b.St(isa.R(15), isa.R(9), 0)
	b.Jmp("next")
	b.Label("op_shift")
	b.Srai(isa.R(15), isa.R(15), 1)
	b.Slli(isa.R(16), isa.R(16), 1)
	b.Andi(isa.R(16), isa.R(16), 0xFFFF)
	b.Jmp("next")
	b.Label("op_inc")
	b.Addi(isa.R(15), isa.R(15), 1)
	b.Jmp("next")
	b.Label("op_mix")
	b.Xor(isa.R(15), isa.R(15), isa.R(14))
	b.Andi(isa.R(15), isa.R(15), 0xFFFF)
	b.Label("next")
	b.Addi(isa.R(2), isa.R(2), 1)
	b.And(isa.R(2), isa.R(2), isa.R(3))
	b.Jmp("dispatch_loop")
	return b.MustBuild()
}

// buildM88ksim is the 124.m88ksim analog: the Motorola 88100 simulator's
// fetch-decode-execute loop — load a target instruction word, extract its
// fields with shifts and masks, dispatch on the opcode, and execute
// against an architected register file kept in memory. It reproduces
// m88ksim's signature: a regular simulator loop with field-extraction ALU
// chains, a small hot working set, and well-predicted dispatch (one
// dominant path per static target instruction).
//
// Target encoding: op = bits 0..2, rd = 3..7, rs = 8..12, imm = 13..20.
// Registers: r1 target program base, r2 target pc, r3 pc mask,
// r4 register-file base, r5 insn, r6 op, r7 rd, r8 rs, r9 imm,
// r10-r12 scratch, r13 target memory, r14 cycle count.
func buildM88ksim() *prog.Program {
	b := prog.NewBuilder("m88ksim")
	const tprogLen = 64
	tprog := make([]int64, tprogLen)
	x := xorshift64(0x88100)
	for i := range tprog {
		op := int64(x.next() % 5)
		rd := int64(x.next() % 32)
		rs := int64(x.next() % 32)
		imm := int64(x.next() % 256)
		tprog[i] = op | rd<<3 | rs<<8 | imm<<13
	}
	b.Word64("tprog", tprog...)
	b.Space("tregs", 32*8)
	b.Space("tmem", 2048*8)
	b.Space("histo", 8*8)

	b.La(isa.R(1), "tprog")
	b.La(isa.R(4), "tregs")
	b.La(isa.R(13), "tmem")
	b.La(isa.R(19), "histo")
	b.Li(isa.R(2), 0)
	b.Li(isa.R(3), tprogLen-1)
	b.Li(isa.R(14), 0)
	b.Li(isa.R(18), 0) // trace checksum

	b.Label("cycle")
	// fetch
	b.Slli(isa.R(5), isa.R(2), 3)
	b.Add(isa.R(5), isa.R(1), isa.R(5))
	b.Ld(isa.R(5), isa.R(5), 0)
	// decode
	b.Andi(isa.R(6), isa.R(5), 7)
	b.Srai(isa.R(7), isa.R(5), 3)
	b.Andi(isa.R(7), isa.R(7), 31)
	b.Srai(isa.R(8), isa.R(5), 8)
	b.Andi(isa.R(8), isa.R(8), 31)
	b.Srai(isa.R(9), isa.R(5), 13)
	b.Andi(isa.R(9), isa.R(9), 255)
	// Simulator bookkeeping, independent of the execute path (the real
	// m88ksim updates per-opcode statistics and an execution trace every
	// simulated cycle): histogram[op]++ and a rolling trace checksum.
	b.Slli(isa.R(15), isa.R(6), 3)
	b.Add(isa.R(15), isa.R(19), isa.R(15))
	b.Ld(isa.R(16), isa.R(15), 0)
	b.Addi(isa.R(16), isa.R(16), 1)
	b.St(isa.R(16), isa.R(15), 0)
	b.Slli(isa.R(17), isa.R(18), 5)
	b.Add(isa.R(18), isa.R(18), isa.R(17))
	b.Xor(isa.R(18), isa.R(18), isa.R(5))
	b.Andi(isa.R(18), isa.R(18), 0xFFFF)
	// rs value
	b.Slli(isa.R(10), isa.R(8), 3)
	b.Add(isa.R(10), isa.R(4), isa.R(10))
	b.Ld(isa.R(10), isa.R(10), 0)
	// dispatch
	b.Beq(isa.R(6), isa.R(0), "t_add")
	b.Slti(isa.R(11), isa.R(6), 2)
	b.Bne(isa.R(11), isa.R(0), "t_add") // unreachable guard, keeps mix
	b.Slti(isa.R(11), isa.R(6), 3)
	b.Bne(isa.R(11), isa.R(0), "t_addi") // op 2... op1 handled above
	b.Slti(isa.R(11), isa.R(6), 4)
	b.Bne(isa.R(11), isa.R(0), "t_load")
	b.Jmp("t_store")

	b.Label("t_add") // tregs[rd] = rs_val + rd_val
	b.Slli(isa.R(11), isa.R(7), 3)
	b.Add(isa.R(11), isa.R(4), isa.R(11))
	b.Ld(isa.R(12), isa.R(11), 0)
	b.Add(isa.R(12), isa.R(12), isa.R(10))
	b.St(isa.R(12), isa.R(11), 0)
	b.Jmp("retire")
	b.Label("t_addi") // tregs[rd] = rs_val + imm
	b.Add(isa.R(12), isa.R(10), isa.R(9))
	b.Slli(isa.R(11), isa.R(7), 3)
	b.Add(isa.R(11), isa.R(4), isa.R(11))
	b.St(isa.R(12), isa.R(11), 0)
	b.Jmp("retire")
	b.Label("t_load") // tregs[rd] = tmem[(rs_val + imm) & mask]
	b.Add(isa.R(12), isa.R(10), isa.R(9))
	b.Andi(isa.R(12), isa.R(12), 2047)
	b.Slli(isa.R(12), isa.R(12), 3)
	b.Add(isa.R(12), isa.R(13), isa.R(12))
	b.Ld(isa.R(12), isa.R(12), 0)
	b.Slli(isa.R(11), isa.R(7), 3)
	b.Add(isa.R(11), isa.R(4), isa.R(11))
	b.St(isa.R(12), isa.R(11), 0)
	b.Jmp("retire")
	b.Label("t_store") // tmem[(rs_val + imm) & mask] = rd_val
	b.Slli(isa.R(11), isa.R(7), 3)
	b.Add(isa.R(11), isa.R(4), isa.R(11))
	b.Ld(isa.R(12), isa.R(11), 0)
	b.Add(isa.R(11), isa.R(10), isa.R(9))
	b.Andi(isa.R(11), isa.R(11), 2047)
	b.Slli(isa.R(11), isa.R(11), 3)
	b.Add(isa.R(11), isa.R(13), isa.R(11))
	b.St(isa.R(12), isa.R(11), 0)
	b.Label("retire")
	b.Addi(isa.R(14), isa.R(14), 1)
	b.Addi(isa.R(2), isa.R(2), 1)
	b.And(isa.R(2), isa.R(2), isa.R(3))
	b.Jmp("cycle")
	return b.MustBuild()
}
