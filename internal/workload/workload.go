// Package workload provides the benchmark programs the experiments run:
// eight analogs of the SpecInt95 suite (Table 1 of the paper), one per
// benchmark, each reproducing its original's dominant kernel — instruction
// mix, branch behaviour, memory-access pattern and dependence structure —
// in the repository's ISA.
//
// The originals are Alpha binaries compiled with -O5 that we cannot run;
// DESIGN.md's substitution table records the fidelity argument. Every
// analog is an endless loop (the simulator stops at its instruction
// budget, mirroring the paper's 100M-instruction windows), is fully
// deterministic, and carries a description of what it imitates.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/prog"
)

// Info describes one benchmark analog (the Table 1 row).
type Info struct {
	// Name is the SpecInt95 benchmark the analog imitates.
	Name string
	// Input describes the synthetic input standing in for the paper's
	// input file.
	Input string
	// Character summarizes the workload properties the analog reproduces.
	Character string
	// Build constructs the program.
	Build func() *prog.Program
}

var registry = map[string]Info{
	"compress": {
		Name:      "compress",
		Input:     "synthetic 64KB text-like stream (xorshift, skewed bytes)",
		Character: "LZW hash loop: hash/probe/insert, data-dependent branches, scattered table stores",
		Build:     buildCompress,
	},
	"go": {
		Name:      "go",
		Input:     "19x19 board, deterministic stone layout",
		Character: "board evaluation: dense short branches, pattern tests, small working set",
		Build:     buildGo,
	},
	"gcc": {
		Name:      "gcc",
		Input:     "synthetic RTL chain of 4096 insn nodes",
		Character: "IR walk: pointer chasing, opcode dispatch trees, branchy with moderate footprint",
		Build:     buildGCC,
	},
	"li": {
		Name:      "li",
		Input:     "cons-cell heap of 8192 cells, list scan/sum/rebuild",
		Character: "interpreter: tag tests, car/cdr chasing, bump allocation",
		Build:     buildLi,
	},
	"ijpeg": {
		Name:      "ijpeg",
		Input:     "64x64 8-bit image, deterministic gradient+noise",
		Character: "DCT/quantize blocks: multiply-rich, high ILP, strided access, predictable loops",
		Build:     buildIJpeg,
	},
	"vortex": {
		Name:      "vortex",
		Input:     "object store of 1024 records x 64B, indexed lookups",
		Character: "OO database: index traversal, record field copies, large-ish working set",
		Build:     buildVortex,
	},
	"perl": {
		Name:      "perl",
		Input:     "256-op bytecode program + 8KB string arena",
		Character: "interpreter dispatch via jump table (indirect jumps), string hashing",
		Build:     buildPerl,
	},
	"m88ksim": {
		Name:      "m88ksim",
		Input:     "64-instruction target program, architected state in memory",
		Character: "CPU simulator: fetch/decode/dispatch loop, shift/mask decode, register-file stores",
		Build:     buildM88ksim,
	},
	"tomcatv": {
		Name:      "tomcatv",
		Input:     "64x64 double-precision mesh, deterministic values",
		Character: "SpecFP analog (extension): 5-point stencil relaxation, FP arithmetic over integer indexing",
		Build:     buildTomcatv,
	},
	"swim": {
		Name:      "swim",
		Input:     "3x 4096-point double-precision fields (u, v, p)",
		Character: "SpecFP analog (extension): shallow-water finite differences, multiply-rich FP streams",
		Build:     buildSwim,
	},
}

// Names returns the benchmark names in SpecInt95 order (as the paper's
// figures list them).
func Names() []string {
	return []string{"go", "gcc", "compress", "li", "ijpeg", "vortex", "perl", "m88ksim"}
}

// FPNames returns the SpecFP-analog extension workloads: the paper
// evaluates SpecInt95 only, but its Section 1 argument (FP codes are rich
// in integer work) is exercised by these (see bench_fp.go and the
// extension benches).
func FPNames() []string {
	return []string{"tomcatv", "swim"}
}

// Get returns the named benchmark's info.
func Get(name string) (Info, error) {
	info, ok := registry[name]
	if !ok {
		all := make([]string, 0, len(registry))
		for n := range registry {
			all = append(all, n)
		}
		sort.Strings(all)
		return Info{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", name, all)
	}
	return info, nil
}

// Load builds the named benchmark program.
func Load(name string) (*prog.Program, error) {
	info, err := Get(name)
	if err != nil {
		return nil, err
	}
	return info.Build(), nil
}

// xorshift64 is the deterministic generator used to synthesize inputs.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// bytes fills a deterministic pseudo-random byte slice. The skew parameter
// biases values toward a small alphabet (text-like data) when > 0.
func synthBytes(seed uint64, n, skew int) []byte {
	x := xorshift64(seed | 1)
	out := make([]byte, n)
	for i := range out {
		v := x.next()
		if skew > 0 && v%4 != 0 {
			out[i] = byte('a' + v%uint64(skew))
		} else {
			out[i] = byte(v)
		}
	}
	return out
}

// synthWords fills a deterministic pseudo-random word slice bounded below
// limit (limit 0 means full range).
func synthWords(seed uint64, n int, limit uint64) []int64 {
	x := xorshift64(seed | 1)
	out := make([]int64, n)
	for i := range out {
		v := x.next()
		if limit > 0 {
			v %= limit
		}
		out[i] = int64(v)
	}
	return out
}
