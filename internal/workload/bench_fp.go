package workload

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// The FP analogs are an extension beyond the paper's SpecInt95 evaluation:
// Section 1 motivates the clustered design with the observation that FP
// applications are rich in *integer* instructions (address arithmetic,
// loop control), which is why giving the FP cluster simple integer units
// pays. These workloads let the extension benches measure steering when
// the FP cluster has first-class work of its own.

// buildTomcatv is a 101.tomcatv analog: a 2-D mesh relaxation sweep —
// load a 5-point stencil of doubles, combine with FP multiplies/adds,
// store the relaxed value, with the usual integer index arithmetic and
// loop control around it.
//
// Registers: r1 grid base, r2 out base, r3 row, r4 col, r5-r9 int scratch,
// f1-f9 stencil values.
func buildTomcatv() *prog.Program {
	b := prog.NewBuilder("tomcatv")
	const dim = 64
	vals := make([]float64, dim*dim)
	x := xorshift64(0x70CA7)
	for i := range vals {
		vals[i] = float64(int(x.next()%1000)) / 100.0
	}
	b.Float64s("grid", vals...)
	b.Space("out", dim*dim*8)
	b.Float64s("coef", 0.25, 0.125, 1.0e-3)

	b.La(isa.R(1), "grid")
	b.La(isa.R(2), "out")
	b.La(isa.R(10), "coef")
	b.Fld(isa.F(10), isa.R(10), 0) // 0.25
	b.Fld(isa.F(11), isa.R(10), 8) // 0.125
	b.Li(isa.R(3), 1)              // row

	b.Label("row")
	b.Li(isa.R(4), 1) // col
	b.Label("col")
	// idx = (row*dim + col) * 8
	b.Slli(isa.R(5), isa.R(3), 6)
	b.Add(isa.R(5), isa.R(5), isa.R(4))
	b.Slli(isa.R(5), isa.R(5), 3)
	b.Add(isa.R(6), isa.R(1), isa.R(5))
	// 5-point stencil loads.
	b.Fld(isa.F(1), isa.R(6), 0)
	b.Fld(isa.F(2), isa.R(6), 8)
	b.Fld(isa.F(3), isa.R(6), -8)
	b.Fld(isa.F(4), isa.R(6), dim*8)
	b.Fld(isa.F(5), isa.R(6), -dim*8)
	// relaxed = 0.25*(n+s+e+w) + 0.125*center... (tomcatv-ish blend)
	b.Fadd(isa.F(6), isa.F(2), isa.F(3))
	b.Fadd(isa.F(7), isa.F(4), isa.F(5))
	b.Fadd(isa.F(6), isa.F(6), isa.F(7))
	b.Fmul(isa.F(6), isa.F(6), isa.F(10))
	b.Fmul(isa.F(8), isa.F(1), isa.F(11))
	b.Fadd(isa.F(6), isa.F(6), isa.F(8))
	// store to the output grid
	b.Add(isa.R(7), isa.R(2), isa.R(5))
	b.Fst(isa.F(6), isa.R(7), 0)
	// residual accumulation (FP compare feeding int, tomcatv's RESID)
	b.Fsub(isa.F(9), isa.F(6), isa.F(1))
	b.Fabs(isa.F(9), isa.F(9))
	b.Fcvtfi(isa.R(8), isa.F(9))
	b.Add(isa.R(9), isa.R(9), isa.R(8))
	// next column/row with wraparound
	b.Addi(isa.R(4), isa.R(4), 1)
	b.Slti(isa.R(5), isa.R(4), dim-1)
	b.Bne(isa.R(5), isa.R(0), "col")
	b.Addi(isa.R(3), isa.R(3), 1)
	b.Slti(isa.R(5), isa.R(3), dim-1)
	b.Bne(isa.R(5), isa.R(0), "row")
	b.Li(isa.R(3), 1)
	b.Jmp("row")
	return b.MustBuild()
}

// buildSwim is a 102.swim analog: shallow-water finite differences over
// three field arrays (u, v, p) — per point, load from all three, compute
// the characteristic u/v/p updates with FP arithmetic, store back; heavier
// on FP multiplies and with three independent output streams.
//
// Registers: r1 u, r2 v, r3 p bases, r4 index, r5-r8 scratch, f1-f12 fields.
func buildSwim() *prog.Program {
	b := prog.NewBuilder("swim")
	const n = 4096
	mk := func(sym string, seed uint64) {
		vals := make([]float64, n)
		x := xorshift64(seed)
		for i := range vals {
			vals[i] = float64(int(x.next()%2000)-1000) / 500.0
		}
		b.Float64s(sym, vals...)
	}
	mk("u", 0x5417)
	mk("v", 0x5418)
	mk("p", 0x5419)
	b.Float64s("consts", 0.5, 0.1, 9.8)

	b.La(isa.R(1), "u")
	b.La(isa.R(2), "v")
	b.La(isa.R(3), "p")
	b.La(isa.R(7), "consts")
	b.Fld(isa.F(10), isa.R(7), 0)  // 0.5
	b.Fld(isa.F(11), isa.R(7), 8)  // dt
	b.Fld(isa.F(12), isa.R(7), 16) // g
	b.Li(isa.R(4), 0)

	b.Label("point")
	b.Slli(isa.R(5), isa.R(4), 3)
	b.Add(isa.R(6), isa.R(1), isa.R(5))
	b.Fld(isa.F(1), isa.R(6), 0) // u[i]
	b.Fld(isa.F(2), isa.R(6), 8) // u[i+1]
	b.Add(isa.R(6), isa.R(2), isa.R(5))
	b.Fld(isa.F(3), isa.R(6), 0) // v[i]
	b.Fld(isa.F(4), isa.R(6), 8)
	b.Add(isa.R(8), isa.R(3), isa.R(5))
	b.Fld(isa.F(5), isa.R(8), 0) // p[i]
	b.Fld(isa.F(6), isa.R(8), 8)
	// du = dt*(g*(p[i+1]-p[i]) + 0.5*(v[i]+v[i+1]))
	b.Fsub(isa.F(7), isa.F(6), isa.F(5))
	b.Fmul(isa.F(7), isa.F(7), isa.F(12))
	b.Fadd(isa.F(8), isa.F(3), isa.F(4))
	b.Fmul(isa.F(8), isa.F(8), isa.F(10))
	b.Fadd(isa.F(7), isa.F(7), isa.F(8))
	b.Fmul(isa.F(7), isa.F(7), isa.F(11))
	b.Fadd(isa.F(1), isa.F(1), isa.F(7))
	// dv = dt*0.5*(u[i]+u[i+1]); p += dt*(u'+v')
	b.Fadd(isa.F(9), isa.F(1), isa.F(2))
	b.Fmul(isa.F(9), isa.F(9), isa.F(10))
	b.Fmul(isa.F(9), isa.F(9), isa.F(11))
	b.Fadd(isa.F(3), isa.F(3), isa.F(9))
	b.Fadd(isa.F(8), isa.F(1), isa.F(3))
	b.Fmul(isa.F(8), isa.F(8), isa.F(11))
	b.Fadd(isa.F(5), isa.F(5), isa.F(8))
	// stores
	b.Add(isa.R(6), isa.R(1), isa.R(5))
	b.Fst(isa.F(1), isa.R(6), 0)
	b.Add(isa.R(6), isa.R(2), isa.R(5))
	b.Fst(isa.F(3), isa.R(6), 0)
	b.Fst(isa.F(5), isa.R(8), 0)
	// next point, wrapping (leave the last slot as boundary)
	b.Addi(isa.R(4), isa.R(4), 1)
	b.Andi(isa.R(4), isa.R(4), n-2)
	b.Jmp("point")
	return b.MustBuild()
}
