package core

// lsq is the centralized load/store disambiguation unit of Section 2:
// every cluster's memory operations are forwarded here after their
// effective-address computation. A load may access the data cache once
// every earlier store's address is known (Table 2's policy); a store whose
// address matches forwards its data instead. Stores write to memory at
// commit.
type lsq struct {
	entries []*lsqEntry
	cap     int
}

type lsqEntry struct {
	d *DynInst
	// addrKnown is set when the EA computation completes.
	addrKnown bool
	// accessed is set once a load has been sent to the cache (or had data
	// forwarded) so it is not issued twice.
	accessed bool
}

func newLSQ(capacity int) *lsq {
	return &lsq{cap: capacity}
}

// Free returns remaining capacity.
func (q *lsq) Free() int { return q.cap - len(q.entries) }

// Add appends a dispatched memory instruction in program order.
func (q *lsq) Add(d *DynInst) {
	d.lsqIdx = len(q.entries)
	q.entries = append(q.entries, &lsqEntry{d: d})
}

// MarkAddrKnown records that d's effective address is computed.
func (q *lsq) MarkAddrKnown(d *DynInst) {
	for _, e := range q.entries {
		if e.d == d {
			e.addrKnown = true
			return
		}
	}
}

// overlap reports whether two accesses touch a common byte.
func overlap(a1 uint64, w1 int, a2 uint64, w2 int) bool {
	return a1 < a2+uint64(w2) && a2 < a1+uint64(w1)
}

// loadDisposition describes what a ready load may do this cycle.
type loadDisposition int

const (
	loadBlocked loadDisposition = iota // an earlier store address is unknown or data pending
	loadForward                        // store-to-load forwarding available
	loadAccess                         // may access the data cache
)

// classify determines whether the load l can proceed: every earlier store
// must have a known address; if the youngest earlier overlapping store has
// its data ready it forwards, if the data is pending the load blocks.
func (q *lsq) classify(l *lsqEntry, rf []*regFile) loadDisposition {
	for i := len(q.entries) - 1; i >= 0; i-- {
		e := q.entries[i]
		if e.d.Seq >= l.d.Seq || !e.d.isStore {
			continue
		}
		if !e.addrKnown {
			return loadBlocked
		}
		if overlap(e.d.memAddr, e.d.memWidth, l.d.memAddr, l.d.memWidth) {
			// Youngest earlier matching store (we scan youngest-first).
			dataPhys := e.d.srcPhys[1]
			if e.d.numSrcs > 1 && !rf[e.d.Cluster].Ready(dataPhys) {
				return loadBlocked
			}
			return loadForward
		}
	}
	return loadAccess
}

// ReadyLoads appends loads eligible to attempt a cache access or forward
// this cycle, oldest first: EA computed, not yet accessed.
func (q *lsq) ReadyLoads(buf []*lsqEntry) []*lsqEntry {
	for _, e := range q.entries {
		if e.d.isLoad && e.addrKnown && !e.accessed && e.d.state == stateMemWait {
			buf = append(buf, e)
		}
	}
	return buf
}

// Remove deletes a committed memory instruction.
func (q *lsq) Remove(d *DynInst) {
	for i, e := range q.entries {
		if e.d == d {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return
		}
	}
}

// Len returns the occupancy.
func (q *lsq) Len() int { return len(q.entries) }
