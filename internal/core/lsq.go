package core

// lsq is the centralized load/store disambiguation unit of Section 2:
// every cluster's memory operations are forwarded here after their
// effective-address computation. A load may access the data cache once
// every earlier store's address is known (Table 2's policy); a store whose
// address matches forwards its data instead. Stores write to memory at
// commit.
//
// The queue is a fixed-capacity ring of in-flight memory instructions in
// program order; per-entry state (address known, access done) lives inline
// in the DynInst, so the steady-state cycle loop performs no allocation
// here (see ARCHITECTURE.md, "allocation-free hot loop").
type lsq struct {
	ring []*DynInst // power-of-two length so indexing is a mask
	cap  int
	head int
	n    int
}

func newLSQ(capacity int) *lsq {
	return &lsq{ring: make([]*DynInst, nextPow2(capacity)), cap: capacity}
}

// at returns the i-th oldest entry (0 = oldest).
//
//dca:hotpath
func (q *lsq) at(i int) *DynInst {
	return q.ring[(q.head+i)&(len(q.ring)-1)]
}

// Free returns remaining capacity.
//
//dca:hotpath
func (q *lsq) Free() int { return q.cap - q.n }

// Add appends a dispatched memory instruction in program order.
//
//dca:hotpath
func (q *lsq) Add(d *DynInst) {
	d.lsqAddrKnown = false
	d.lsqAccessed = false
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = d
	q.n++
}

// MarkAddrKnown records that d's effective address is computed.
//
//dca:hotpath
func (q *lsq) MarkAddrKnown(d *DynInst) {
	d.lsqAddrKnown = true
}

// overlap reports whether two accesses touch a common byte.
//
//dca:hotpath
func overlap(a1 uint64, w1 int, a2 uint64, w2 int) bool {
	return a1 < a2+uint64(w2) && a2 < a1+uint64(w1)
}

// loadDisposition describes what a ready load may do this cycle.
type loadDisposition int

const (
	loadBlocked loadDisposition = iota // an earlier store address is unknown or data pending
	loadForward                        // store-to-load forwarding available
	loadAccess                         // may access the data cache
)

// classify determines whether the load l can proceed: every earlier store
// must have a known address; if the youngest earlier overlapping store has
// its data ready it forwards, if the data is pending the load blocks.
//
//dca:hotpath
func (q *lsq) classify(l *DynInst, rf []regFile) loadDisposition {
	for i := q.n - 1; i >= 0; i-- {
		e := q.at(i)
		if e.Seq >= l.Seq || !e.isStore {
			continue
		}
		if !e.lsqAddrKnown {
			return loadBlocked
		}
		if overlap(e.memAddr, e.memWidth, l.memAddr, l.memWidth) {
			// Youngest earlier matching store (we scan youngest-first).
			dataPhys := e.srcPhys[1]
			if e.numSrcs > 1 && !rf[e.Cluster].Ready(dataPhys) {
				return loadBlocked
			}
			return loadForward
		}
	}
	return loadAccess
}

// ReadyLoads appends loads eligible to attempt a cache access or forward
// this cycle, oldest first: EA computed, not yet accessed.
//
//dca:hotpath
func (q *lsq) ReadyLoads(buf []*DynInst) []*DynInst {
	for i := 0; i < q.n; i++ {
		d := q.at(i)
		if d.isLoad && d.lsqAddrKnown && !d.lsqAccessed && d.state == stateMemWait {
			buf = append(buf, d)
		}
	}
	return buf
}

// allBlocked reports whether every load currently eligible to attempt an
// access or forward would classify as blocked behind an earlier store. It
// is pure; fast-forward's idleness predicate uses it — a blocked
// classification only changes through completion events (a store's address
// becoming known or its data register turning ready), so the answer is
// stable across an event-free window.
//
//dca:hotpath
func (q *lsq) allBlocked(rf []regFile) bool {
	for i := 0; i < q.n; i++ {
		d := q.at(i)
		if d.isLoad && d.lsqAddrKnown && !d.lsqAccessed && d.state == stateMemWait {
			if q.classify(d, rf) != loadBlocked {
				return false
			}
		}
	}
	return true
}

// Remove deletes a committed memory instruction. Commit is in order, so
// in production the removed instruction is always the oldest entry (the
// O(1) head path); the general shift path keeps the structure correct for
// any caller and is unit-tested directly (TestLSQRemoveMidQueue).
//
//dca:hotpath
func (q *lsq) Remove(d *DynInst) {
	if q.n == 0 {
		return
	}
	if q.ring[q.head] == d {
		q.ring[q.head] = nil
		q.head = (q.head + 1) & (len(q.ring) - 1)
		q.n--
		return
	}
	mask := len(q.ring) - 1
	for i := 1; i < q.n; i++ {
		if q.at(i) != d {
			continue
		}
		for j := i; j < q.n-1; j++ {
			q.ring[(q.head+j)&mask] = q.ring[(q.head+j+1)&mask]
		}
		q.ring[(q.head+q.n-1)&mask] = nil
		q.n--
		return
	}
}

// Len returns the occupancy.
//
//dca:hotpath
func (q *lsq) Len() int { return q.n }
