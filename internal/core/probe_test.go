// Probe-seam passivity and attribution suite. Three properties lock the
// introspection layer (ARCHITECTURE.md, "The introspection layer"):
//
//  1. Passivity: every digest of the differential harness is bit-identical
//     with the full built-in probe stack attached — probes observe, they
//     never steer.
//  2. Fast-forward identity: cycle attribution over a fast-forwarding run
//     equals attribution over the same run stepped cycle by cycle, class
//     by class and balance bucket by balance bucket. The batched window
//     sample in tryFastForward rests on this being provable; this test
//     makes it falsifiable.
//  3. Totality: the stall taxonomy is total and exclusive — per-run class
//     totals sum exactly to stats.Run.Cycles, and the balance histogram
//     rebuilt from cycle samples equals stats.Run.Balance bit-for-bit.
package core_test

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/rdg"
	"repro/internal/stats"
	"repro/internal/steer"
)

// fullProbeStack builds the complete built-in probe complement — cycle
// attribution, steering forensics, a timeline, and a Konata export into
// the void — so passivity is proven for all four at once, fanned out
// through Multi.
func fullProbeStack() (core.Probe, *probe.Attribution) {
	at := probe.NewAttribution()
	return probe.Multi(
		at,
		&probe.Forensics{},
		&probe.Timeline{},
		probe.NewKonata(io.Discard),
	), at
}

// TestProbePassivityDifferential re-runs the entire differential matrix —
// every scheme, every cluster count, every seed — with the full probe
// stack attached, and requires every digest to match the golden file that
// the unprobed harness is pinned to. Combined with TestDifferentialHarness
// (which runs detached), this is the bit-identity lock on the probe seam:
// attaching probes changes nothing, detaching them changes nothing.
func TestProbePassivityDifferential(t *testing.T) {
	want := readGoldenDigests(t)
	var got []string
	for _, n := range []int{2, 4, 8} {
		for _, scheme := range steer.Names() {
			for _, seed := range diffSeeds {
				stack, at := fullProbeStack()
				got = append(got, diffLineProbed(t, n, scheme, seed, stack))
				if at.Total() == 0 {
					t.Fatalf("n=%d %s seed=%d: attribution probe saw no measured cycles (seam detached?)", n, scheme, seed)
				}
			}
		}
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d digests, probed harness produced %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("probed digest diverged from golden (probe is not passive)\n got: %s\nwant: %s", got[i], want[i])
		}
	}
}

// probedRun simulates one differential cell with an attribution probe
// attached and fast-forward set as given, through the warm/measure
// boundary (the boundary is where sample batching and the Measuring flag
// interact).
func probedRun(t *testing.T, n int, scheme string, seed int64, ff bool) (*stats.Run, *probe.Attribution) {
	t.Helper()
	p := rdg.RandomProgram(seed)
	cfg := diffConfigFor(scheme, n)
	params := steer.DefaultParams()
	params.Clusters = cfg.NumClusters()
	st, err := steer.NewWithParams(scheme, p, params)
	if err != nil {
		t.Fatalf("scheme %s: %v", scheme, err)
	}
	m, err := core.New(cfg, p, st)
	if err != nil {
		t.Fatalf("n=%d %s seed=%d: %v", n, scheme, seed, err)
	}
	m.SetFastForward(ff)
	at := probe.NewAttribution()
	m.SetProbe(at)
	r, err := m.RunWithWarmup(200, 0)
	if err != nil {
		t.Fatalf("n=%d %s seed=%d ff=%v: %v", n, scheme, seed, ff, err)
	}
	return r, at
}

// TestProbeFastForwardIdentity requires attribution over a fast-forwarded
// run to be bit-identical to attribution over per-cycle stepping: same
// measurement record, same per-class cycle totals, same rebuilt balance
// histogram. Any classifyCycle clause reading state that can change inside
// an idle window would fail here.
func TestProbeFastForwardIdentity(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, scheme := range []string{"general", "fifo"} {
			for _, seed := range diffSeeds {
				slowR, slowA := probedRun(t, n, scheme, seed, false)
				fastR, fastA := probedRun(t, n, scheme, seed, true)
				if !reflect.DeepEqual(slowR, fastR) {
					t.Fatalf("n=%d %s seed=%d: measurement records diverged under fast-forward\n  ff:        %+v\n  per-cycle: %+v",
						n, scheme, seed, *fastR, *slowR)
				}
				for c := core.StallClass(0); c < core.NumStallClasses; c++ {
					if slowA.Cycles(c) != fastA.Cycles(c) {
						t.Errorf("n=%d %s seed=%d: class %v attributed %d cycles per-cycle but %d fast-forwarded",
							n, scheme, seed, c, slowA.Cycles(c), fastA.Cycles(c))
					}
				}
				if slowA.Total() != fastA.Total() {
					t.Errorf("n=%d %s seed=%d: attributed totals diverged: per-cycle %d, ff %d",
						n, scheme, seed, slowA.Total(), fastA.Total())
				}
				if *slowA.Balance() != *fastA.Balance() {
					t.Errorf("n=%d %s seed=%d: probe balance histograms diverged under fast-forward",
						n, scheme, seed)
				}
			}
		}
	}
}

// TestProbeAttributionSumsToCycles sweeps every registered scheme on the
// two-cluster machine and enforces taxonomy totality per run: the report's
// bucket sum equals its total equals stats.Run.Cycles, and the rebuilt
// balance histogram matches the run's bit-for-bit. (The golden-grid
// variant of this invariant lives in internal/experiments.)
func TestProbeAttributionSumsToCycles(t *testing.T) {
	for _, scheme := range steer.Names() {
		r, at := probedRun(t, 2, scheme, diffSeeds[1], true)
		rep := at.Report()
		if rep.Sum() != rep.TotalCycles {
			t.Errorf("%s: taxonomy not exclusive: buckets sum to %d, total %d", scheme, rep.Sum(), rep.TotalCycles)
		}
		if rep.TotalCycles != r.Cycles {
			t.Errorf("%s: taxonomy not total: attributed %d cycles, run measured %d", scheme, rep.TotalCycles, r.Cycles)
		}
		if *at.Balance() != r.Balance {
			t.Errorf("%s: probe-rebuilt balance histogram differs from stats.Run.Balance", scheme)
		}
	}
}

// TestProbeDetach verifies the seam can be attached and detached across a
// run boundary: a detached machine simulates exactly like one that never
// had a probe (digest equality via the harness covers the behaviour; this
// covers the nil transitions, including SetTracer's adapter path).
func TestProbeDetach(t *testing.T) {
	r1, _ := probedRun(t, 2, "general", diffSeeds[0], false)

	p := rdg.RandomProgram(diffSeeds[0])
	cfg := diffConfigFor("general", 2)
	params := steer.DefaultParams()
	params.Clusters = cfg.NumClusters()
	st, err := steer.NewWithParams("general", p, params)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(cfg, p, st)
	if err != nil {
		t.Fatal(err)
	}
	at := probe.NewAttribution()
	m.SetProbe(at)
	m.SetProbe(nil)  // detach before running: the probe must see nothing
	m.SetTracer(nil) // nil tracer detaches too (adapter path)
	r2, err := m.RunWithWarmup(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if at.Total() != 0 {
		t.Fatalf("detached probe still observed %d cycles", at.Total())
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("detached run diverged from probed run:\n  probed:   %+v\n  detached: %+v", *r1, *r2)
	}
}
