package core

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/prog"
)

func wheelMachine(t *testing.T) *Machine {
	t.Helper()
	b := prog.NewBuilder("wheel")
	b.Halt()
	m, err := New(config.Clustered(), b.MustBuild(), NaiveSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// completionOrder drains the wheel cycle by cycle and records the Seq of
// every EvComplete event in delivery order.
func completionOrder(m *Machine, through uint64) []uint64 {
	var got []uint64
	m.SetTracer(tracerFunc(func(cycle uint64, ev Event, d *DynInst) {
		if ev == EvComplete {
			got = append(got, d.Seq)
		}
	}))
	for m.cycle <= through {
		m.complete()
		m.cycle++
	}
	m.SetTracer(nil)
	return got
}

// TestTimingWheelGrowth schedules completions far past the initial wheel
// span, forcing growWheel, and checks that no event is lost, every event
// fires exactly at its completeAt, and same-cycle events keep schedule
// order across the re-slotting.
func TestTimingWheelGrowth(t *testing.T) {
	m := wheelMachine(t)
	if len(m.evtHead) != initialWheelSize {
		t.Fatalf("fresh wheel size %d, want %d", len(m.evtHead), initialWheelSize)
	}
	// Two events per target cycle so re-slotting must preserve intra-cycle
	// order; targets straddle the initial span and force two doublings.
	targets := []uint64{3, initialWheelSize - 1, initialWheelSize + 5, 2*initialWheelSize + 7, 3 * initialWheelSize}
	var want []uint64
	seq := uint64(0)
	for _, at := range targets {
		for k := 0; k < 2; k++ {
			d := &DynInst{Seq: seq, destPhys: noPhys, state: stateIssued, completeAt: at}
			m.schedule(d)
			seq++
		}
	}
	if len(m.evtHead) <= initialWheelSize {
		t.Fatalf("wheel did not grow: size %d", len(m.evtHead))
	}
	for i := uint64(0); i < seq; i++ {
		want = append(want, i)
	}
	got := completionOrder(m, 3*initialWheelSize+1)
	if len(got) != len(want) {
		t.Fatalf("delivered %d events, scheduled %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion order %v, want %v", got, want)
		}
	}
}

// TestTimingWheelGrowthMidFlight grows the wheel while events are already
// pending at nonzero cycles (head offsets), the re-slotting case growWheel
// actually faces in production.
func TestTimingWheelGrowthMidFlight(t *testing.T) {
	m := wheelMachine(t)
	m.cycle = 1000 // wheel indexing is absolute; start away from zero
	early := &DynInst{Seq: 1, destPhys: noPhys, state: stateIssued, completeAt: 1003}
	m.schedule(early)
	late := &DynInst{Seq: 2, destPhys: noPhys, state: stateIssued, completeAt: 1000 + 4*initialWheelSize}
	m.schedule(late)
	got := completionOrder(m, 1000+4*initialWheelSize)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("completion order %v, want [1 2]", got)
	}
	if early.state != stateDone || late.state != stateDone {
		t.Fatal("events not completed after drain")
	}
}

// checkWheelInvariant verifies the structural invariant fast-forward's
// wake scan (ffWake) and growWheel both rely on: no pending event is in
// the past, every chain links events of one completion cycle only, each
// chain hangs off the slot its cycle masks to, and evtTail points at the
// chain's last element.
func checkWheelInvariant(t *testing.T, m *Machine) {
	t.Helper()
	mask := uint64(len(m.evtHead) - 1)
	for slot := range m.evtHead {
		head := m.evtHead[slot]
		if head == nil {
			if m.evtTail[slot] != nil {
				t.Fatalf("cycle %d slot %d: tail set with nil head", m.cycle, slot)
			}
			continue
		}
		at := head.completeAt
		if at&mask != uint64(slot) {
			t.Fatalf("cycle %d: event for cycle %d hangs off slot %d (want %d)", m.cycle, at, slot, at&mask)
		}
		if at < m.cycle {
			t.Fatalf("cycle %d: pending event already due at %d", m.cycle, at)
		}
		last := head
		for d := head; d != nil; d = d.nextEvt {
			if d.completeAt != at {
				t.Fatalf("cycle %d slot %d: chain mixes completion cycles %d and %d", m.cycle, slot, at, d.completeAt)
			}
			last = d
		}
		if m.evtTail[slot] != last {
			t.Fatalf("cycle %d slot %d: tail does not point at last chain element", m.cycle, slot)
		}
	}
}

// TestTimingWheelAdversarialSchedules drives the wheel with randomized
// adversarial completion schedules — bursts clustered just ahead of the
// current cycle, exactly at the span boundary, and far enough out to force
// growth mid-stream — interleaved with partial drains, the pattern a
// fast-forwarding run produces when it jumps between sparse events. After
// every burst the structural invariant must hold, ffWake must report the
// earliest pending event, and the final drain must deliver every event at
// exactly its completion cycle in schedule order (growth must never
// reorder a chain).
func TestTimingWheelAdversarialSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	m := wheelMachine(t)
	m.cycle = 500 // absolute indexing: start away from zero

	scheduled := map[uint64][]uint64{} // completion cycle -> Seqs in schedule order
	delivered := map[uint64][]uint64{}
	m.SetTracer(tracerFunc(func(cycle uint64, ev Event, d *DynInst) {
		if ev == EvComplete {
			if cycle != d.completeAt {
				t.Fatalf("event %d delivered at cycle %d, scheduled for %d", d.Seq, cycle, d.completeAt)
			}
			delivered[cycle] = append(delivered[cycle], d.Seq)
		}
	}))

	pending := 0
	seq := uint64(0)
	for round := 0; round < 60; round++ {
		burst := 1 + r.Intn(8)
		for i := 0; i < burst; i++ {
			var off uint64
			switch r.Intn(4) {
			case 0: // just ahead: dense same-cycle chains
				off = 1 + uint64(r.Intn(3))
			case 1: // at the current span boundary
				off = uint64(len(m.evtHead) - 1)
			case 2: // past the span: forces growWheel with live chains
				// (bounded — every unbounded hit would double the wheel)
				if len(m.evtHead) < 8192 {
					off = uint64(len(m.evtHead)) + uint64(r.Intn(64))
				} else {
					off = 1 + uint64(r.Intn(1000))
				}
			default:
				off = 1 + uint64(r.Intn(1000))
			}
			at := m.cycle + off
			d := &DynInst{Seq: seq, destPhys: noPhys, state: stateIssued, completeAt: at}
			m.schedule(d)
			scheduled[at] = append(scheduled[at], seq)
			seq++
			pending++
		}
		checkWheelInvariant(t, m)

		// ffWake must find the earliest pending event (nothing else is
		// pending on this machine, and the watchdog clamp is far away).
		earliest := uint64(0)
		for at := uint64(m.cycle) + 1; earliest == 0 && at <= m.cycle+uint64(len(m.evtHead)); at++ {
			if len(scheduled[at]) > len(delivered[at]) {
				earliest = at
			}
		}
		if earliest != 0 {
			if wake := m.ffWake(); wake != earliest {
				t.Fatalf("cycle %d: ffWake = %d, earliest pending event at %d", m.cycle, wake, earliest)
			}
		}

		// Partial drain: complete a random number of cycles.
		for i, n := 0, r.Intn(12); i < n; i++ {
			before := len(delivered[m.cycle])
			m.complete()
			pending -= len(delivered[m.cycle]) - before
			m.cycle++
		}
		checkWheelInvariant(t, m)
	}
	// Final drain.
	for guard := 0; pending > 0; guard++ {
		if guard > 1<<20 {
			t.Fatalf("wheel never drained: %d events pending", pending)
		}
		before := len(delivered[m.cycle])
		m.complete()
		pending -= len(delivered[m.cycle]) - before
		m.cycle++
	}
	m.SetTracer(nil)

	for at, want := range scheduled {
		got := delivered[at]
		if len(got) != len(want) {
			t.Fatalf("cycle %d: delivered %d events, scheduled %d", at, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cycle %d: delivery order %v, want %v (growth reordered a chain?)", at, got, want)
			}
		}
	}
}

// TestROBRingGrowth pushes past the preallocated ROB capacity and checks
// robGrow preserves age order through the head reset.
func TestROBRingGrowth(t *testing.T) {
	m := wheelMachine(t)
	capBefore := len(m.rob)
	// Stagger the head so growth must unwrap a wrapped ring.
	for i := 0; i < 10; i++ {
		m.robPush(&DynInst{Seq: uint64(1000 + i)})
	}
	for i := 0; i < 5; i++ {
		m.robPop()
	}
	n := capBefore + 20
	for i := 0; i < n; i++ {
		m.robPush(&DynInst{Seq: uint64(i)})
	}
	if len(m.rob) <= capBefore {
		t.Fatalf("ROB ring did not grow: cap %d", len(m.rob))
	}
	if m.robLen != 5+n {
		t.Fatalf("robLen %d, want %d", m.robLen, 5+n)
	}
	for i := 0; i < 5; i++ {
		if m.robAt(i).Seq != uint64(1005+i) {
			t.Fatalf("pre-growth survivor %d has Seq %d", i, m.robAt(i).Seq)
		}
	}
	for i := 0; i < n; i++ {
		if m.robAt(5+i).Seq != uint64(i) {
			t.Fatalf("entry %d has Seq %d, want %d", 5+i, m.robAt(5+i).Seq, i)
		}
	}
}

// TestDecodeRingGrowth exercises dqPush's doubling path the same way.
func TestDecodeRingGrowth(t *testing.T) {
	m := wheelMachine(t)
	capBefore := len(m.decodeQ)
	for i := 0; i < 3; i++ {
		fi := m.dqPush()
		fi.step.Seq = uint64(100 + i)
	}
	m.dqPop() // offset the head
	n := capBefore + 10
	for i := 0; i < n; i++ {
		fi := m.dqPush()
		fi.step.Seq = uint64(i)
	}
	if len(m.decodeQ) <= capBefore {
		t.Fatalf("decode ring did not grow: cap %d", len(m.decodeQ))
	}
	if m.dqLen != 2+n {
		t.Fatalf("dqLen %d, want %d", m.dqLen, 2+n)
	}
	if m.dqFront().step.Seq != 101 {
		t.Fatalf("front Seq %d, want 101", m.dqFront().step.Seq)
	}
	m.dqPop()
	m.dqPop()
	for i := 0; i < n; i++ {
		if m.dqFront().step.Seq != uint64(i) {
			t.Fatalf("entry %d has Seq %d", i, m.dqFront().step.Seq)
		}
		m.dqPop()
	}
}
