// Differential test harness: lock-step co-simulation of the detailed
// timing machine against the functional oracle, across cluster counts and
// every registered steering scheme, pinned to a golden digest file.
//
// The harness is the behavioural lock on the allocation-free hot-loop
// rewrite (see ARCHITECTURE.md): the digests in testdata/diff_golden.txt
// were captured from the unoptimized cycle loop, so any drift in committed
// architectural state or steering statistics — cycles, copies, per-cluster
// steering splits, replication, the full balance histogram — fails the
// test. Regenerate deliberately with:
//
//	go test ./internal/core -run TestDifferential -update
package core_test

import (
	"bufio"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/probe"
	"repro/internal/rdg"
	"repro/internal/steer"
)

var update = flag.Bool("update", false, "rewrite testdata golden files from the current simulator")

// diffSeeds are the rdg program seeds the harness simulates. Three
// programs (one short, two with ~1k dynamic instructions) keep the matrix
// cheap while covering distinct dependence shapes; the fuzz harness sweeps
// many more seeds without golden pinning.
var diffSeeds = []int64{1, 7, 9}

// diffConfigFor mirrors experiments.configFor: the paper's asymmetric
// two-cluster machine at n = 2 (FIFO variant for the fifo scheme),
// config.ClusteredN above.
func diffConfigFor(scheme string, n int) *config.Config {
	if n == 2 {
		if scheme == "fifo" {
			return config.FIFOClustered()
		}
		return config.Clustered()
	}
	if scheme == "fifo" {
		return config.ClusteredNFIFO(n)
	}
	return config.ClusteredN(n)
}

// lockstep is a pipeline tracer that steps a reference emulator once per
// committed program instruction and checks the commit stream matches it
// exactly: same dynamic sequence number, same PC, in program order.
type lockstep struct {
	ref      *emu.Machine
	divergeA string
}

func (ls *lockstep) Trace(cycle uint64, ev core.Event, d *core.DynInst) {
	if ev != core.EvCommit || d.IsCopy || ls.divergeA != "" {
		return
	}
	st, err := ls.ref.Step()
	if err != nil {
		ls.divergeA = fmt.Sprintf("cycle %d: reference emulator: %v", cycle, err)
		return
	}
	if st.Seq != d.ProgSeq || st.PC != d.PC {
		ls.divergeA = fmt.Sprintf("cycle %d: committed seq=%d pc=%d, reference executed seq=%d pc=%d",
			cycle, d.ProgSeq, d.PC, st.Seq, st.PC)
	}
}

// regHash digests an architectural register file.
func regHash(regs [isa.NumRegs]int64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range regs {
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// diffLine runs one (clusters, scheme, seed) cell to completion under
// lock-step oracle checking and renders its digest line.
func diffLine(t *testing.T, n int, scheme string, seed int64) string {
	t.Helper()
	return diffLineProbed(t, n, scheme, seed, nil)
}

// diffLineProbed is diffLine with an extra probe attached alongside the
// lock-step tracer; TestProbePassivityDifferential uses it to prove the
// probe stack leaves every digest untouched. A nil extra exercises the
// legacy SetTracer path (the Tracer→Probe adapter).
func diffLineProbed(t *testing.T, n int, scheme string, seed int64, extra core.Probe) string {
	t.Helper()
	p := rdg.RandomProgram(seed)
	cfg := diffConfigFor(scheme, n)
	params := steer.DefaultParams()
	params.Clusters = cfg.NumClusters()
	st, err := steer.NewWithParams(scheme, p, params)
	if err != nil {
		t.Fatalf("scheme %s: %v", scheme, err)
	}
	m, err := core.New(cfg, p, st)
	if err != nil {
		t.Fatalf("n=%d %s seed=%d: %v", n, scheme, seed, err)
	}
	ls := &lockstep{ref: emu.New(p)}
	if extra != nil {
		m.SetProbe(probe.Multi(core.TracerProbe(ls), extra))
	} else {
		m.SetTracer(ls)
	}
	r, err := m.Run(0)
	if err != nil {
		t.Fatalf("n=%d %s seed=%d: %v", n, scheme, seed, err)
	}
	if ls.divergeA != "" {
		t.Fatalf("n=%d %s seed=%d: lock-step divergence: %s", n, scheme, seed, ls.divergeA)
	}
	if !ls.ref.Halted {
		// Drain the reference to HALT (the machine commits HALT too, so
		// the tracer should already have consumed the full stream).
		t.Fatalf("n=%d %s seed=%d: reference emulator not halted after run", n, scheme, seed)
	}
	if got, want := m.OracleRegisters(), ls.ref.Reg; got != want {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d %s seed=%d: architectural r%d differs: oracle %d, reference %d",
					n, scheme, seed, i, got[i], want[i])
			}
		}
	}
	return fmt.Sprintf("n=%d/%s/seed=%d cycles=%d instrs=%d copies=%d critcopies=%d steered=%v repl=%.6f mispred=%d branches=%d l1d=%.6f l1i=%.6f balsamples=%d balbuckets=%v regs=%s",
		n, scheme, seed, r.Cycles, r.Instructions, r.Copies, r.CriticalCopies,
		r.Steered, r.ReplicatedRegsAvg, r.Mispredicts, r.Branches,
		r.L1DMissRate, r.L1IMissRate, r.Balance.Samples, r.Balance.Buckets,
		regHash(m.OracleRegisters()))
}

const diffGoldenPath = "testdata/diff_golden.txt"

// readGoldenDigests loads the pinned digest lines; both the plain harness
// and the probed passivity variant compare against the same file.
func readGoldenDigests(t *testing.T) []string {
	t.Helper()
	f, err := os.Open(diffGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to capture a golden baseline)", err)
	}
	defer f.Close()
	var want []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if l := strings.TrimSpace(sc.Text()); l != "" {
			want = append(want, l)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestDifferentialHarness simulates every registered steering scheme on
// 2-, 4- and 8-cluster machines over rdg random programs, verifying three
// things per cell: (a) the commit stream matches a lock-step reference
// emulator instruction for instruction, (b) final architectural state is
// bit-identical to the reference, and (c) the full measurement record —
// committed state and steering statistics — is bit-identical to the golden
// digest captured from the pre-optimization cycle loop.
func TestDifferentialHarness(t *testing.T) {
	var lines []string
	for _, n := range []int{2, 4, 8} {
		for _, scheme := range steer.Names() {
			for _, seed := range diffSeeds {
				lines = append(lines, diffLine(t, n, scheme, seed))
			}
		}
	}

	if *update {
		f, err := os.Create(diffGoldenPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			fmt.Fprintln(f, l)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(lines), diffGoldenPath)
		return
	}

	want := readGoldenDigests(t)
	if len(want) != len(lines) {
		t.Fatalf("golden has %d digests, harness produced %d (matrix changed? rerun with -update)",
			len(want), len(lines))
	}
	for i := range lines {
		if lines[i] != want[i] {
			t.Errorf("digest diverged from pre-optimization golden\n got: %s\nwant: %s", lines[i], want[i])
		}
	}
}

// TestDifferentialDeterminism runs one representative cell twice and
// requires identical digests: the cycle loop must be a pure function of
// (config, program, scheme), with no map-iteration or allocator order
// leaking into results.
func TestDifferentialDeterminism(t *testing.T) {
	for _, n := range []int{2, 8} {
		a := diffLine(t, n, "general", diffSeeds[0])
		b := diffLine(t, n, "general", diffSeeds[0])
		if a != b {
			t.Fatalf("n=%d: nondeterministic run\nfirst:  %s\nsecond: %s", n, a, b)
		}
	}
}
