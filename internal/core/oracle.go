package core

import (
	"errors"

	"repro/internal/emu"
)

// Oracle is the functional front end the timing core fetches from: a
// stream of executed (committed-path) instructions. The canonical
// implementation is EmuOracle — a live functional emulator — but anything
// that can serve the same stream qualifies; internal/trace replays a
// recorded stream through this interface so the grid pays for the
// functional execution once (see ARCHITECTURE.md, "Trace layer").
//
// Contract: the stream must be exactly what a fresh emu.Machine over the
// same program would produce — same Seq numbering from zero, same
// branch outcomes, addresses and register values. The timing core is a
// pure consumer; bit-identity of its statistics across oracles follows
// from bit-identity of the stream (locked by FuzzTraceReplay and the
// golden grids).
type Oracle interface {
	// StepInto writes the next executed instruction into st and advances
	// the stream. An error means the stream cannot continue; the machine
	// surfaces it from the run (see ErrOracleExhausted).
	StepInto(st *emu.Step) error
	// PC returns the index of the next instruction to execute, or a
	// negative value when the stream has ended without the program
	// halting (a replayed trace ran out). A negative PC fails the run
	// loudly before any cache or predictor state is touched.
	PC() int
	// Halted reports whether the program has executed its HALT.
	Halted() bool
}

// CloneableOracle is implemented by oracles that can fork their state, so
// a warm-state checkpoint (Machine.Checkpoint) can snapshot the front end
// along with the rest of the machine. EmuOracle and the trace replayer
// are cloneable; a trace recorder deliberately is not — cloning a
// recording stream would interleave two consumers into one buffer — so
// checkpointing a recording machine fails gracefully instead.
type CloneableOracle interface {
	Oracle
	// CloneOracle returns an independent copy: stepping one must not
	// affect the other.
	CloneOracle() Oracle
}

// ErrOracleExhausted reports that the oracle stream ended before the run
// did: the program had not halted, yet the oracle had no next
// instruction. It is a sentinel (not constructed per occurrence) so the
// fetch stage can raise it without allocating; job.Traced retries the
// cell on a live oracle when it sees this error.
var ErrOracleExhausted = errors.New("core: oracle stream exhausted before the program halted")

// EmuOracle adapts a live functional emulator to the Oracle interface.
// The zero value is unusable; wrap a machine built by emu.New.
type EmuOracle struct {
	M *emu.Machine
}

// StepInto implements Oracle by executing one instruction.
//
//dca:hotpath
func (o EmuOracle) StepInto(st *emu.Step) error { return o.M.StepInto(st) }

// PC implements Oracle.
//
//dca:hotpath
func (o EmuOracle) PC() int { return o.M.PC }

// Halted implements Oracle.
//
//dca:hotpath
func (o EmuOracle) Halted() bool { return o.M.Halted }

// CloneOracle implements CloneableOracle by deep-copying the emulator's
// architectural state (the program is shared, it is immutable).
func (o EmuOracle) CloneOracle() Oracle { return EmuOracle{M: o.M.Clone()} }
