package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

func intClusterPool() *fuPool {
	return newFUPool(config.Clustered().Clusters[0], config.DefaultLatencies())
}

func fpClusterPool() *fuPool {
	return newFUPool(config.Clustered().Clusters[1], config.DefaultLatencies())
}

func TestFUSimpleIntThroughput(t *testing.T) {
	p := intClusterPool()
	for i := 0; i < 3; i++ {
		if lat, ok := p.TryIssue(isa.ADD, 0); !ok || lat != 1 {
			t.Fatalf("add %d: lat=%d ok=%v", i, lat, ok)
		}
	}
	if _, ok := p.TryIssue(isa.ADD, 0); ok {
		t.Fatal("4th add issued with 3 ALUs")
	}
	p.newCycle()
	if _, ok := p.TryIssue(isa.ADD, 0); !ok {
		t.Fatal("ALU not free after newCycle")
	}
}

func TestFULatencies(t *testing.T) {
	p := intClusterPool()
	cases := map[isa.Opcode]int{isa.ADD: 1, isa.LD: 1, isa.BEQ: 1, isa.MUL: 3, isa.DIV: 20}
	for op, want := range cases {
		p.newCycle()
		p = intClusterPool()
		if lat, ok := p.TryIssue(op, 0); !ok || lat != want {
			t.Errorf("%v: lat=%d ok=%v, want %d", op, lat, ok, want)
		}
	}
	fp := fpClusterPool()
	fpCases := map[isa.Opcode]int{isa.FADD: 2, isa.FMUL: 4, isa.FDIV: 12}
	for op, want := range fpCases {
		fp = fpClusterPool()
		if lat, ok := fp.TryIssue(op, 0); !ok || lat != want {
			t.Errorf("%v: lat=%d ok=%v, want %d", op, lat, ok, want)
		}
	}
}

func TestFUDivOccupiesUnit(t *testing.T) {
	p := intClusterPool() // 1 complex unit
	if _, ok := p.TryIssue(isa.DIV, 0); !ok {
		t.Fatal("div did not issue")
	}
	p.newCycle()
	if _, ok := p.TryIssue(isa.DIV, 5); ok {
		t.Fatal("second div issued while unit busy")
	}
	if _, ok := p.TryIssue(isa.MUL, 5); ok {
		t.Fatal("mul issued while divider busy")
	}
	if _, ok := p.TryIssue(isa.DIV, 20); !ok {
		t.Fatal("div did not issue after unit freed")
	}
}

func TestFUMulIsPipelined(t *testing.T) {
	p := intClusterPool()
	if _, ok := p.TryIssue(isa.MUL, 0); !ok {
		t.Fatal("mul 1 failed")
	}
	p.newCycle()
	if _, ok := p.TryIssue(isa.MUL, 1); !ok {
		t.Fatal("mul 2 not pipelined")
	}
}

func TestFUWrongClusterRejects(t *testing.T) {
	intp := intClusterPool()
	if _, ok := intp.TryIssue(isa.FADD, 0); ok {
		t.Fatal("FP op issued in int cluster")
	}
	if intp.CanEverIssue(isa.FADD) {
		t.Fatal("CanEverIssue wrong for FP in int cluster")
	}
	fpp := fpClusterPool()
	if _, ok := fpp.TryIssue(isa.DIV, 0); ok {
		t.Fatal("complex int issued in FP cluster")
	}
	if !fpp.CanEverIssue(isa.ADD) {
		t.Fatal("FP cluster must run simple int on clustered machine")
	}
}

func TestKindForClassification(t *testing.T) {
	cases := map[isa.Opcode]fuKind{
		isa.ADD: fuSimpleInt, isa.LD: fuSimpleInt, isa.ST: fuSimpleInt,
		isa.BEQ: fuSimpleInt, isa.J: fuSimpleInt,
		isa.MUL: fuComplexInt, isa.REM: fuComplexInt,
		isa.FADD: fuFPALU, isa.FCVTIF: fuFPALU, isa.FLE: fuFPALU,
		isa.FMUL: fuFPMulDiv, isa.FDIV: fuFPMulDiv,
	}
	for op, want := range cases {
		if got := kindFor(op); got != want {
			t.Errorf("kindFor(%v) = %v, want %v", op, got, want)
		}
	}
}
