// Package core implements the cycle-level timing simulator of the clustered
// dynamically-scheduled processor studied in "Dynamic Cluster Assignment
// Mechanisms" (Canal, Parcerisa, González — HPCA 2000), generalized from
// the paper's two clusters to an arbitrary cluster count (see
// ARCHITECTURE.md).
//
// The microarchitecture follows Section 2 of the paper: centralized fetch,
// decode and rename; a steering stage that assigns each instruction to one
// of N clusters; per-cluster issue queues, issue logic, physical register
// files and functional units; inter-cluster communication through explicit
// copy instructions that compete for issue slots and traverse a limited
// number of buses along a configurable topology (config.CopyDist); a
// centralized load/store disambiguation unit; and in-order commit from a
// shared reorder buffer.
//
// Execution is oracle-driven: the functional emulator (package emu)
// produces the committed-path instruction stream; the timing model imposes
// structural and data hazards on it. Branch mispredictions stall fetch
// until the branch resolves (wrong-path instructions are not simulated);
// see DESIGN.md for the fidelity argument.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/config"
	"repro/internal/isa"
)

// ClusterID names a cluster. On the paper's two-cluster machine, cluster 0
// is the integer cluster (C1 in the paper's Figure 1) and cluster 1 is the
// FP cluster (C2); N-cluster machines number their clusters 0..N−1.
type ClusterID int8

// Cluster identifiers and the sentinel for "no preference".
const (
	IntCluster ClusterID = 0
	FPCluster  ClusterID = 1
	// AnyCluster is returned by steering helpers when the instruction has
	// no placement constraint.
	AnyCluster ClusterID = -1
)

// String returns "int"/"fp" for the two paper clusters (their roles on the
// asymmetric machine), "cN" for higher-numbered clusters of an N-cluster
// machine, and "any" for the sentinel.
func (c ClusterID) String() string {
	switch {
	case c == IntCluster:
		return "int"
	case c == FPCluster:
		return "fp"
	case c > FPCluster:
		return fmt.Sprintf("c%d", int8(c))
	default:
		return "any"
	}
}

// Other returns the opposite cluster on a two-cluster machine. It is only
// meaningful there; N-cluster code paths select clusters by scanning or by
// the steering policy instead.
//
//dca:hotpath
func (c ClusterID) Other() ClusterID { return 1 - c }

// ClusterSet is a bitmask of clusters (bit c = cluster c); it reports where
// a logical register currently has valid mappings. config.MaxClusters ≤ 8
// keeps it in one byte.
type ClusterSet uint8

// Has reports whether cluster c is in the set.
//
//dca:hotpath
func (s ClusterSet) Has(c ClusterID) bool { return c >= 0 && s&(1<<uint(c)) != 0 }

// Add returns the set with cluster c included.
//
//dca:hotpath
func (s ClusterSet) Add(c ClusterID) ClusterSet { return s | 1<<uint(c) }

// Count returns the number of clusters in the set.
//
//dca:hotpath
func (s ClusterSet) Count() int { return bits.OnesCount8(uint8(s)) }

// Single returns the only cluster in the set, or AnyCluster when the set
// does not contain exactly one cluster.
//
//dca:hotpath
func (s ClusterSet) Single() ClusterID {
	if s.Count() != 1 {
		return AnyCluster
	}
	return ClusterID(bits.TrailingZeros8(uint8(s)))
}

// instState tracks a dynamic instruction through the pipeline.
type instState uint8

const (
	stateWaiting instState = iota // in an issue queue, sources pending
	stateIssued                   // executing on a functional unit or bus
	stateMemWait                  // load waiting in the LSQ for access
	stateDone                     // result produced, awaiting commit
	stateRetired                  // committed
)

// physReg names a physical register within one cluster's file.
type physReg int16

// noPhys marks an absent physical register operand (zero register,
// immediate, or no destination).
const noPhys physReg = -1

// noPrevMapping returns a per-cluster mapping record with every entry
// absent; newly created dynamic instructions start from it.
func noPrevMapping() (p [config.MaxClusters]physReg) {
	for i := range p {
		p[i] = noPhys
	}
	return p
}

// DynInst is one in-flight dynamic instruction (or inserted copy).
type DynInst struct {
	// Seq is the global dispatch order, copies included; it orders the
	// ROB and the issue-queue age priority.
	Seq uint64
	// ProgSeq is the committed-path dynamic instruction number from the
	// emulator; copies share their consumer's ProgSeq.
	ProgSeq uint64
	// PC is the static instruction index.
	PC int
	// Inst is the architectural instruction (zero-valued for copies).
	Inst isa.Inst
	// Cluster is the cluster the instruction was dispatched to.
	Cluster ClusterID

	// IsCopy marks inter-cluster copy instructions. For a copy, srcPhys[0]
	// is read in cluster SrcCluster and destPhys is written in Cluster.
	IsCopy     bool
	SrcCluster ClusterID

	// FetchID is the probe-scoped fetch id (see Probe.Fetch); copies get
	// their own id at insertion. Zero while no probe is attached — the id
	// counter only advances under the probe guard.
	FetchID uint64

	// Renamed operands.
	numSrcs  int
	srcPhys  [2]physReg
	srcReady [2]bool
	// srcViaCopy marks sources whose value an inserted inter-cluster copy
	// delivers. It feeds only the probe's stall taxonomy (copy-wait vs
	// operand-wait); the simulation itself never reads it.
	srcViaCopy [2]bool
	destPhys   physReg
	// destLogical is the architectural destination (NoReg if none).
	destLogical isa.Reg
	// prevMapping records the per-cluster physical registers that held
	// destLogical before this instruction, freed at commit. Only the first
	// NumClusters entries are meaningful; prevMask has a bit set for each
	// cluster holding one, so commit releases without scanning.
	prevMapping [config.MaxClusters]physReg
	prevMask    uint8

	// State machine.
	state instState
	// issueReady caches IssueReady while the instruction sits in an issue
	// queue: sources only become ready (never unready), so the flag is
	// computed at Add and raised by wakeReg, sparing the per-entry source
	// loop on every selection scan.
	issueReady bool
	readyCycle uint64 // earliest cycle the instruction may issue
	completeAt uint64 // cycle the result becomes available
	issuedAt   uint64
	// nextEvt links instructions completing on the same cycle into the
	// machine's timing wheel (intrusive list: scheduling an event never
	// allocates).
	nextEvt *DynInst

	// prevQ/nextQ link the instruction into its issue queue's age-ordered
	// window (intrusive doubly-linked list: Remove unlinks in O(1) instead
	// of shifting a slice). Nil outside the queue.
	prevQ, nextQ *DynInst

	// nextWaiter and waiterReg link the instruction into its issue queue's
	// per-physical-register waiter lists (one slot per distinct pending
	// source register): when the register becomes ready, the queue walks
	// the list instead of scanning every entry. waiterReg names the
	// register each slot is chained under, disambiguating which link to
	// follow during a walk.
	nextWaiter [2]*DynInst
	waiterReg  [2]physReg

	// Memory operation fields (from the oracle).
	isLoad, isStore bool
	memAddr         uint64
	memWidth        int
	// eaDone distinguishes the two completion events of a memory
	// instruction: effective-address computation, then (for loads) the
	// cache access.
	eaDone bool
	// lsqAddrKnown and lsqAccessed are the instruction's load/store queue
	// state (kept inline so the LSQ needs no per-entry allocation):
	// effective address computed, and — for loads — already sent to the
	// cache or forwarded, so it is not issued twice.
	lsqAddrKnown bool
	lsqAccessed  bool

	// Branch fields.
	isBranch     bool
	taken        bool
	nextPC       int
	mispredicted bool

	// waitingConsumer is set on copies when some instruction in the
	// destination cluster stalled waiting for this copy's value; such
	// communications are the paper's "critical" ones (Figure 5).
	waitingConsumer bool

	// fifo is the FIFO index the instruction occupies in IQFIFO mode.
	fifo int
}

// HasDest reports whether the instruction allocates a destination register.
//
//dca:hotpath
func (d *DynInst) HasDest() bool { return d.destPhys != noPhys }

// DestReg returns the architectural destination register (isa.NoReg when
// the instruction writes none); probes use it to label copies and
// dependences without reaching into rename state.
func (d *DynInst) DestReg() isa.Reg { return d.destLogical }

// IsLoad reports whether the instruction is a load.
func (d *DynInst) IsLoad() bool { return d.isLoad }

// IsStore reports whether the instruction is a store.
func (d *DynInst) IsStore() bool { return d.isStore }

// SrcsReady reports whether every source operand is available.
//
//dca:hotpath
func (d *DynInst) SrcsReady() bool {
	for i := 0; i < d.numSrcs; i++ {
		if !d.srcReady[i] {
			return false
		}
	}
	return true
}

// IssueReady reports whether the instruction may leave the issue queue.
// Stores issue on their address operand alone (source 0): the effective
// address is computed as soon as the base register is available, while the
// data operand is only needed at commit, when the store writes memory.
//
//dca:hotpath
func (d *DynInst) IssueReady() bool {
	if d.isStore {
		return d.numSrcs == 0 || d.srcReady[0]
	}
	return d.SrcsReady()
}
