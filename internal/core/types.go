// Package core implements the cycle-level timing simulator of the clustered
// dynamically-scheduled processor studied in "Dynamic Cluster Assignment
// Mechanisms" (Canal, Parcerisa, González — HPCA 2000).
//
// The microarchitecture follows Section 2 of the paper: centralized fetch,
// decode and rename; a steering stage that assigns each instruction to one
// of two clusters; per-cluster issue queues, issue logic, physical register
// files and functional units; inter-cluster communication through explicit
// copy instructions that compete for issue slots and traverse a limited
// number of 1-cycle buses; a centralized load/store disambiguation unit;
// and in-order commit from a shared reorder buffer.
//
// Execution is oracle-driven: the functional emulator (package emu)
// produces the committed-path instruction stream; the timing model imposes
// structural and data hazards on it. Branch mispredictions stall fetch
// until the branch resolves (wrong-path instructions are not simulated);
// see DESIGN.md for the fidelity argument.
package core

import (
	"repro/internal/isa"
)

// ClusterID names a cluster. On the two-cluster machine, cluster 0 is the
// integer cluster (C1 in the paper's Figure 1) and cluster 1 is the FP
// cluster (C2).
type ClusterID int8

// Cluster identifiers and the sentinel for "no preference".
const (
	IntCluster ClusterID = 0
	FPCluster  ClusterID = 1
	// AnyCluster is returned by steering helpers when the instruction has
	// no placement constraint.
	AnyCluster ClusterID = -1
)

// String returns "int"/"fp" for the two paper clusters.
func (c ClusterID) String() string {
	switch c {
	case IntCluster:
		return "int"
	case FPCluster:
		return "fp"
	default:
		return "any"
	}
}

// Other returns the opposite cluster on a two-cluster machine.
func (c ClusterID) Other() ClusterID { return 1 - c }

// instState tracks a dynamic instruction through the pipeline.
type instState uint8

const (
	stateWaiting instState = iota // in an issue queue, sources pending
	stateIssued                   // executing on a functional unit or bus
	stateMemWait                  // load waiting in the LSQ for access
	stateDone                     // result produced, awaiting commit
	stateRetired                  // committed
)

// physReg names a physical register within one cluster's file.
type physReg int16

// noPhys marks an absent physical register operand (zero register,
// immediate, or no destination).
const noPhys physReg = -1

// DynInst is one in-flight dynamic instruction (or inserted copy).
type DynInst struct {
	// Seq is the global dispatch order, copies included; it orders the
	// ROB and the issue-queue age priority.
	Seq uint64
	// ProgSeq is the committed-path dynamic instruction number from the
	// emulator; copies share their consumer's ProgSeq.
	ProgSeq uint64
	// PC is the static instruction index.
	PC int
	// Inst is the architectural instruction (zero-valued for copies).
	Inst isa.Inst
	// Cluster is the cluster the instruction was dispatched to.
	Cluster ClusterID

	// IsCopy marks inter-cluster copy instructions. For a copy, srcPhys[0]
	// is read in cluster SrcCluster and destPhys is written in Cluster.
	IsCopy     bool
	SrcCluster ClusterID

	// Renamed operands.
	numSrcs  int
	srcPhys  [2]physReg
	srcReady [2]bool
	destPhys physReg
	// destLogical is the architectural destination (NoReg if none).
	destLogical isa.Reg
	// prevMapping records the per-cluster physical registers that held
	// destLogical before this instruction, freed at commit.
	prevMapping [2]physReg

	// State machine.
	state      instState
	readyCycle uint64 // earliest cycle the instruction may issue
	completeAt uint64 // cycle the result becomes available
	issuedAt   uint64

	// Memory operation fields (from the oracle).
	isLoad, isStore bool
	memAddr         uint64
	memWidth        int
	lsqIdx          int
	// eaDone distinguishes the two completion events of a memory
	// instruction: effective-address computation, then (for loads) the
	// cache access.
	eaDone bool

	// Branch fields.
	isBranch     bool
	taken        bool
	nextPC       int
	mispredicted bool

	// waitingConsumer is set on copies when some instruction in the
	// destination cluster stalled waiting for this copy's value; such
	// communications are the paper's "critical" ones (Figure 5).
	waitingConsumer bool

	// fifo is the FIFO index the instruction occupies in IQFIFO mode.
	fifo int
}

// HasDest reports whether the instruction allocates a destination register.
func (d *DynInst) HasDest() bool { return d.destPhys != noPhys }

// SrcsReady reports whether every source operand is available.
func (d *DynInst) SrcsReady() bool {
	for i := 0; i < d.numSrcs; i++ {
		if !d.srcReady[i] {
			return false
		}
	}
	return true
}

// IssueReady reports whether the instruction may leave the issue queue.
// Stores issue on their address operand alone (source 0): the effective
// address is computed as soon as the base register is available, while the
// data operand is only needed at commit, when the store writes memory.
func (d *DynInst) IssueReady() bool {
	if d.isStore {
		return d.numSrcs == 0 || d.srcReady[0]
	}
	return d.SrcsReady()
}
