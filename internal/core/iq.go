package core

import "repro/internal/config"

// issueQueue is one cluster's instruction window. In out-of-order mode it
// is a single associative window from which any ready instruction may
// issue, oldest first. In FIFO mode (the Palacharla/Jouppi/Smith
// organization of Figure 16) it is a set of FIFOs and only the head of each
// FIFO may issue.
type issueQueue struct {
	mode     config.IQMode
	capacity int

	// entries is maintained in dispatch (age) order for OoO selection.
	entries []*DynInst

	// fifos holds the FIFO-mode organization; entries is still maintained
	// for occupancy accounting and ready counting.
	fifos     [][]*DynInst
	fifoDepth int
}

func newIssueQueue(cl config.Cluster, mode config.IQMode) *issueQueue {
	q := &issueQueue{mode: mode, capacity: cl.IQSize}
	if mode == config.IQFIFO {
		q.fifos = make([][]*DynInst, cl.FIFOs)
		q.fifoDepth = cl.FIFODepth
		q.capacity = cl.FIFOs * cl.FIFODepth
	}
	return q
}

// Len returns the current occupancy.
func (q *issueQueue) Len() int { return len(q.entries) }

// Free returns the remaining capacity.
func (q *issueQueue) Free() int { return q.capacity - len(q.entries) }

// Add inserts a dispatched instruction. In FIFO mode the caller must have
// chosen d.fifo via ChooseFIFO beforehand; copies bypass the FIFOs (they
// wait only for their source value and a bus, in the copy buffer at the
// cluster's bus interface).
func (q *issueQueue) Add(d *DynInst) {
	q.entries = append(q.entries, d)
	if q.mode == config.IQFIFO && !d.IsCopy {
		q.fifos[d.fifo] = append(q.fifos[d.fifo], d)
	}
}

// FIFOTail returns the newest instruction in FIFO f, or nil when empty.
func (q *issueQueue) FIFOTail(f int) *DynInst {
	fifo := q.fifos[f]
	if len(fifo) == 0 {
		return nil
	}
	return fifo[len(fifo)-1]
}

// ChooseFIFO implements the dependence-chain heuristic: prefer a FIFO whose
// tail produced one of d's source operands (so the chain stays in order),
// otherwise any empty FIFO. ok is false when neither exists (dispatch must
// stall, as in the original proposal).
func (q *issueQueue) ChooseFIFO(d *DynInst) (int, bool) {
	for f := range q.fifos {
		tail := q.FIFOTail(f)
		if tail == nil || tail.destPhys == noPhys || len(q.fifos[f]) >= q.fifoDepth {
			continue
		}
		for i := 0; i < d.numSrcs; i++ {
			if d.srcPhys[i] == tail.destPhys && !d.srcReady[i] {
				return f, true
			}
		}
	}
	for f := range q.fifos {
		if len(q.fifos[f]) == 0 {
			return f, true
		}
	}
	return 0, false
}

// HasFIFOSlot reports whether any FIFO can accept an instruction.
func (q *issueQueue) HasFIFOSlot(d *DynInst) bool {
	_, ok := q.ChooseFIFO(d)
	return ok
}

// ReadyCount returns the number of waiting instructions whose sources are
// all available — the paper's per-cluster workload measure.
func (q *issueQueue) ReadyCount() int {
	n := 0
	for _, d := range q.entries {
		if d.state == stateWaiting && d.IssueReady() {
			n++
		}
	}
	return n
}

// Issuable appends to buf the instructions eligible for issue selection
// this cycle, oldest first: ready waiting instructions, restricted to FIFO
// heads in FIFO mode.
func (q *issueQueue) Issuable(buf []*DynInst) []*DynInst {
	if q.mode == config.IQFIFO {
		for f := range q.fifos {
			if len(q.fifos[f]) == 0 {
				continue
			}
			head := q.fifos[f][0]
			if head.state == stateWaiting && head.IssueReady() {
				buf = append(buf, head)
			}
		}
		// Copies sit in the bus-interface buffer, not the FIFOs.
		for _, d := range q.entries {
			if d.IsCopy && d.state == stateWaiting && d.IssueReady() {
				buf = append(buf, d)
			}
		}
		// Keep age order for fair selection across FIFOs.
		sortBySeq(buf)
		return buf
	}
	for _, d := range q.entries {
		if d.state == stateWaiting && d.IssueReady() {
			buf = append(buf, d)
		}
	}
	return buf
}

// Remove deletes an issued instruction from the queue structures.
func (q *issueQueue) Remove(d *DynInst) {
	for i, e := range q.entries {
		if e == d {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			break
		}
	}
	if q.mode == config.IQFIFO && !d.IsCopy {
		fifo := q.fifos[d.fifo]
		for i, e := range fifo {
			if e == d {
				q.fifos[d.fifo] = append(fifo[:i], fifo[i+1:]...)
				break
			}
		}
	}
}

// WakeUp re-evaluates source readiness against the register file; called
// after completions mark registers ready.
func (q *issueQueue) WakeUp(rf *regFile) {
	for _, d := range q.entries {
		if d.state != stateWaiting {
			continue
		}
		for i := 0; i < d.numSrcs; i++ {
			if !d.srcReady[i] && rf.Ready(d.srcPhys[i]) {
				d.srcReady[i] = true
			}
		}
	}
}

func sortBySeq(ds []*DynInst) {
	// Insertion sort: the slice is tiny (≤ FIFO count).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Seq < ds[j-1].Seq; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
