package core

import "repro/internal/config"

// issueQueue is one cluster's instruction window. In out-of-order mode it
// is a single associative window from which any ready instruction may
// issue, oldest first. In FIFO mode (the Palacharla/Jouppi/Smith
// organization of Figure 16) it is a set of FIFOs and only the head of each
// FIFO may issue.
type issueQueue struct {
	mode     config.IQMode
	capacity int

	// qhead/qtail anchor the live window as an intrusive doubly-linked
	// list (DynInst.prevQ/nextQ) in dispatch (age) order for OoO
	// selection; count tracks occupancy. A list rather than a slice so
	// Remove unlinks in O(1) — removals are not always near the front, and
	// the slice shift was a measurable fraction of the cycle loop.
	qhead, qtail *DynInst
	count        int

	// fifos holds the FIFO-mode organization; the window list above is
	// still maintained for occupancy accounting and ready counting.
	fifos     [][]*DynInst
	fifoDepth int

	// readyCount caches the number of waiting entries whose sources are
	// all available (the paper's per-cluster workload measure, read every
	// cycle by sample). It is maintained incrementally at the only three
	// points readiness can change — Add, Remove and wakeReg — so ReadyCount
	// is O(1) instead of a queue scan.
	readyCount int

	// waiters holds, per physical register of this cluster's file, the
	// intrusive list (DynInst.nextWaiter) of waiting entries with that
	// register as a pending source. wakeReg walks exactly the consumers of
	// the completing register instead of re-scanning the queue.
	waiters []*DynInst

	// copies lists the in-queue copy instructions (FIFO mode keeps them in
	// the bus-interface buffer outside the FIFOs; this avoids scanning
	// every entry for them during issue selection).
	copies []*DynInst
}

func newIssueQueue(cl config.Cluster, mode config.IQMode) *issueQueue {
	q := &issueQueue{mode: mode, capacity: cl.IQSize}
	if mode == config.IQFIFO {
		q.fifos = make([][]*DynInst, cl.FIFOs)
		q.fifoDepth = cl.FIFODepth
		q.capacity = cl.FIFOs * cl.FIFODepth
		// One backing array per FIFO, sized to its depth: Add never grows
		// a FIFO past its preallocated capacity.
		for f := range q.fifos {
			q.fifos[f] = make([]*DynInst, 0, cl.FIFODepth)
		}
	}
	q.copies = make([]*DynInst, 0, q.capacity)
	q.waiters = make([]*DynInst, cl.PhysRegs)
	return q
}

// Len returns the current occupancy.
//
//dca:hotpath
func (q *issueQueue) Len() int { return q.count }

// Free returns the remaining capacity.
//
//dca:hotpath
func (q *issueQueue) Free() int { return q.capacity - q.count }

// Add inserts a dispatched instruction. In FIFO mode the caller must have
// chosen d.fifo via ChooseFIFO beforehand; copies bypass the FIFOs (they
// wait only for their source value and a bus, in the copy buffer at the
// cluster's bus interface).
//
//dca:hotpath
func (q *issueQueue) Add(d *DynInst) {
	d.prevQ, d.nextQ = q.qtail, nil
	if q.qtail != nil {
		q.qtail.nextQ = d
	} else {
		q.qhead = d
	}
	q.qtail = d
	q.count++
	d.issueReady = d.IssueReady()
	if d.state == stateWaiting && d.issueReady {
		q.readyCount++
	}
	// Chain the entry under each distinct pending source register so the
	// completion of that register wakes it without a queue scan.
	w := 0
	for i := 0; i < d.numSrcs; i++ {
		p := d.srcPhys[i]
		if p == noPhys || d.srcReady[i] {
			continue
		}
		if w == 1 && d.waiterReg[0] == p {
			continue // same register read twice: one chain suffices
		}
		d.waiterReg[w] = p
		d.nextWaiter[w] = q.waiters[p]
		q.waiters[p] = d
		w++
	}
	if d.IsCopy {
		q.copies = append(q.copies, d)
	}
	if q.mode == config.IQFIFO && !d.IsCopy {
		q.fifos[d.fifo] = append(q.fifos[d.fifo], d)
	}
}

// FIFOTail returns the newest instruction in FIFO f, or nil when empty.
//
//dca:hotpath
func (q *issueQueue) FIFOTail(f int) *DynInst {
	fifo := q.fifos[f]
	if len(fifo) == 0 {
		return nil
	}
	return fifo[len(fifo)-1]
}

// ChooseFIFO implements the dependence-chain heuristic: prefer a FIFO whose
// tail produced one of d's source operands (so the chain stays in order),
// otherwise any empty FIFO. ok is false when neither exists (dispatch must
// stall, as in the original proposal).
//
//dca:hotpath
func (q *issueQueue) ChooseFIFO(d *DynInst) (int, bool) {
	for f := range q.fifos {
		tail := q.FIFOTail(f)
		if tail == nil || tail.destPhys == noPhys || len(q.fifos[f]) >= q.fifoDepth {
			continue
		}
		for i := 0; i < d.numSrcs; i++ {
			if d.srcPhys[i] == tail.destPhys && !d.srcReady[i] {
				return f, true
			}
		}
	}
	for f := range q.fifos {
		if len(q.fifos[f]) == 0 {
			return f, true
		}
	}
	return 0, false
}

// HasFIFOSlot reports whether any FIFO can accept an instruction.
//
//dca:hotpath
func (q *issueQueue) HasFIFOSlot(d *DynInst) bool {
	_, ok := q.ChooseFIFO(d)
	return ok
}

// ReadyCount returns the number of waiting instructions whose sources are
// all available — the paper's per-cluster workload measure.
//
//dca:hotpath
func (q *issueQueue) ReadyCount() int { return q.readyCount }

// Issuable appends to buf the instructions eligible for issue selection
// this cycle, oldest first: ready waiting instructions, restricted to FIFO
// heads in FIFO mode.
//
//dca:hotpath
func (q *issueQueue) Issuable(buf []*DynInst) []*DynInst {
	if q.mode == config.IQFIFO {
		for f := range q.fifos {
			if len(q.fifos[f]) == 0 {
				continue
			}
			head := q.fifos[f][0]
			if head.state == stateWaiting && head.issueReady {
				buf = append(buf, head)
			}
		}
		// Copies sit in the bus-interface buffer, not the FIFOs.
		for _, d := range q.copies {
			if d.state == stateWaiting && d.issueReady {
				buf = append(buf, d)
			}
		}
		// Keep age order for fair selection across FIFOs.
		sortBySeq(buf)
		return buf
	}
	// readyCount counts exactly the entries this scan selects, so the walk
	// can stop once it has found them all — ready instructions cluster
	// near the front (oldest) of the window, making the early exit the
	// common case.
	want := q.readyCount
	for d := q.qhead; d != nil && want > 0; d = d.nextQ {
		if d.state == stateWaiting && d.issueReady {
			buf = append(buf, d)
			want--
		}
	}
	return buf
}

// Remove deletes an issued instruction from the queue structures.
//
//dca:hotpath
func (q *issueQueue) Remove(d *DynInst) {
	if d.prevQ != nil {
		d.prevQ.nextQ = d.nextQ
	} else {
		q.qhead = d.nextQ
	}
	if d.nextQ != nil {
		d.nextQ.prevQ = d.prevQ
	} else {
		q.qtail = d.prevQ
	}
	d.prevQ, d.nextQ = nil, nil
	q.count--
	if d.state == stateWaiting && d.issueReady {
		q.readyCount--
	}
	if d.IsCopy {
		for i, e := range q.copies {
			if e == d {
				q.copies = append(q.copies[:i], q.copies[i+1:]...)
				break
			}
		}
	}
	if q.mode == config.IQFIFO && !d.IsCopy {
		fifo := q.fifos[d.fifo]
		for i, e := range fifo {
			if e == d {
				q.fifos[d.fifo] = append(fifo[:i], fifo[i+1:]...)
				break
			}
		}
	}
}

// wakeReg marks the completing register ready in every waiting consumer,
// by walking its waiter list; called after a completion sets the register
// ready in the file. Entries that left the queue before their pending
// source completed (stores issue on the address operand alone) are still
// chained; the stateWaiting guard skips them — matching the old full-scan
// wakeup, which only updated in-queue entries — and commit cannot recycle
// such an instruction before this walk runs, because a store's commit
// waits for the same register readiness that triggers the walk.
//
//dca:hotpath
func (q *issueQueue) wakeReg(p physReg) {
	d := q.waiters[p]
	q.waiters[p] = nil
	for d != nil {
		var next *DynInst
		if d.waiterReg[0] == p {
			next = d.nextWaiter[0]
			d.nextWaiter[0] = nil
			d.waiterReg[0] = noPhys
		} else {
			next = d.nextWaiter[1]
			d.nextWaiter[1] = nil
			d.waiterReg[1] = noPhys
		}
		if d.state == stateWaiting {
			for i := 0; i < d.numSrcs; i++ {
				if d.srcPhys[i] == p {
					d.srcReady[i] = true
				}
			}
			if !d.issueReady && d.IssueReady() {
				d.issueReady = true
				q.readyCount++
			}
		}
		d = next
	}
}

//dca:hotpath
func sortBySeq(ds []*DynInst) {
	// Insertion sort: the slice is tiny (≤ FIFO count).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Seq < ds[j-1].Seq; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
