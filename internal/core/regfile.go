package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
)

// regFile is one cluster's physical register file: a ready bitset (one bit
// per register, packed 64 to a word so availability tests in the wakeup
// and select loops are single bit operations) and a free list. Values are
// not stored — the functional emulator is the value oracle — only
// availability timing.
type regFile struct {
	ready []uint64
	free  []physReg
	inUse int
}

func newRegFile(n int) *regFile {
	rf := &regFile{ready: make([]uint64, (n+63)/64), free: make([]physReg, 0, n)}
	// Stack the free list so low registers allocate first (deterministic).
	for i := n - 1; i >= 0; i-- {
		rf.free = append(rf.free, physReg(i))
	}
	return rf
}

// FreeCount returns the number of allocatable registers.
//
//dca:hotpath
func (rf *regFile) FreeCount() int { return len(rf.free) }

// Alloc takes a register from the free list, marked not-ready. ok is false
// when the file is exhausted (dispatch must stall).
//
//dca:hotpath
func (rf *regFile) Alloc() (physReg, bool) {
	if len(rf.free) == 0 {
		return noPhys, false
	}
	p := rf.free[len(rf.free)-1]
	rf.free = rf.free[:len(rf.free)-1]
	rf.ready[p>>6] &^= 1 << (uint(p) & 63)
	rf.inUse++
	return p, true
}

// Release returns a register to the free list.
//
//dca:hotpath
func (rf *regFile) Release(p physReg) {
	if p == noPhys {
		return
	}
	rf.free = append(rf.free, p)
	rf.inUse--
}

// SetReady marks a register's value as produced.
//
//dca:hotpath
func (rf *regFile) SetReady(p physReg) {
	if p != noPhys {
		rf.ready[p>>6] |= 1 << (uint(p) & 63)
	}
}

// Ready reports whether the register's value is available.
//
//dca:hotpath
func (rf *regFile) Ready(p physReg) bool {
	if p == noPhys {
		return true
	}
	return rf.ready[p>>6]&(1<<(uint(p)&63)) != 0
}

// mapEntry is one logical register's rename state: a physical register per
// cluster plus validity. A value may be mapped in several clusters at once
// (the paper's register replication, created by inter-cluster copies); only
// the first `clusters` entries are meaningful. nmapped caches the number
// of valid mappings so replication accounting needs no scan.
type mapEntry struct {
	phys    [config.MaxClusters]physReg
	valid   [config.MaxClusters]bool
	nmapped uint8
}

// renameTable is the single centralized register map table of Section 2,
// with one mapping field per cluster per logical register. replicated
// caches Figure 15's metric — how many integer logical registers are
// currently mapped in more than one cluster — maintained incrementally at
// the only two mutation points (setMapping, redefine) so the per-cycle
// sample is O(1) instead of a table scan.
type renameTable struct {
	entries    [isa.NumRegs]mapEntry
	clusters   int
	replicated int
}

func newRenameTable(clusters int) *renameTable {
	rt := &renameTable{clusters: clusters}
	for i := range rt.entries {
		rt.entries[i] = mapEntry{phys: noPrevMapping()}
	}
	return rt
}

// initArchState allocates a physical register for every architectural
// register in its home cluster so that initial values (e.g. the stack
// pointer) have producers: integer registers in the int cluster, FP
// registers in the FP cluster (or everything in cluster 0 on a
// single-cluster machine). The allocated registers are marked ready.
func (rt *renameTable) initArchState(files []regFile) error {
	for r := 0; r < isa.NumRegs; r++ {
		reg := isa.Reg(r)
		if reg.IsZero() {
			continue
		}
		home := IntCluster
		if reg.IsFP() && rt.clusters > 1 {
			home = FPCluster
		}
		p, ok := files[home].Alloc()
		if !ok {
			return fmt.Errorf("core: register file %d too small for architectural state", home)
		}
		files[home].SetReady(p)
		rt.entries[r].phys[home] = p
		rt.entries[r].valid[home] = true
		rt.entries[r].nmapped = 1
	}
	return nil
}

// lookup returns the mapping of logical register r in cluster c.
//
//dca:hotpath
func (rt *renameTable) lookup(r isa.Reg, c ClusterID) (physReg, bool) {
	e := &rt.entries[r]
	if !e.valid[c] {
		return noPhys, false
	}
	return e.phys[c], true
}

// home returns the set of clusters currently holding a valid mapping of r.
//
//dca:hotpath
func (rt *renameTable) home(r isa.Reg) ClusterSet {
	e := &rt.entries[r]
	var s ClusterSet
	for c := 0; c < rt.clusters; c++ {
		if e.valid[c] {
			s = s.Add(ClusterID(c))
		}
	}
	return s
}

// setMapping records that r's current value lives in physical register p of
// cluster c, in addition to any existing mapping (replication path used by
// copies).
//
//dca:hotpath
func (rt *renameTable) setMapping(r isa.Reg, c ClusterID, p physReg) {
	e := &rt.entries[r]
	if !e.valid[c] {
		e.valid[c] = true
		e.nmapped++
		if e.nmapped == 2 && int(r) < isa.NumIntRegs {
			rt.replicated++
		}
	}
	e.phys[c] = p
}

// redefine makes cluster c's physical register p the sole mapping of r,
// invalidating any mapping in every other cluster. It returns the previous
// physical registers per cluster (noPhys where none) together with a
// bitmask of the clusters that held one, which the writer frees at commit.
//
//dca:hotpath
func (rt *renameTable) redefine(r isa.Reg, c ClusterID, p physReg) (prev [config.MaxClusters]physReg, mask uint8) {
	prev = noPrevMapping()
	e := &rt.entries[r]
	for cl := 0; cl < rt.clusters; cl++ {
		if e.valid[cl] {
			prev[cl] = e.phys[cl]
			mask |= 1 << uint(cl)
		}
		e.valid[cl] = false
		e.phys[cl] = noPhys
	}
	if e.nmapped >= 2 && int(r) < isa.NumIntRegs {
		rt.replicated--
	}
	e.nmapped = 1
	e.phys[c] = p
	e.valid[c] = true
	return prev, mask
}

// replicatedCount returns how many integer logical registers are currently
// mapped in more than one cluster (Figure 15's metric; on the two-cluster
// machine this is exactly "mapped in both").
//
//dca:hotpath
func (rt *renameTable) replicatedCount() int {
	if rt.clusters < 2 {
		return 0
	}
	return rt.replicated
}
