package core

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestRegFileAllocRelease(t *testing.T) {
	rf := newRegFile(4)
	if rf.FreeCount() != 4 {
		t.Fatalf("FreeCount = %d", rf.FreeCount())
	}
	var regs []physReg
	for i := 0; i < 4; i++ {
		p, ok := rf.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if rf.Ready(p) {
			t.Error("fresh register must not be ready")
		}
		regs = append(regs, p)
	}
	if _, ok := rf.Alloc(); ok {
		t.Fatal("alloc succeeded on empty free list")
	}
	rf.Release(regs[0])
	if rf.FreeCount() != 1 {
		t.Fatalf("FreeCount after release = %d", rf.FreeCount())
	}
	p, ok := rf.Alloc()
	if !ok || p != regs[0] {
		t.Fatalf("re-alloc = %v,%v", p, ok)
	}
}

func TestRegFileReadyBit(t *testing.T) {
	rf := newRegFile(2)
	p, _ := rf.Alloc()
	rf.SetReady(p)
	if !rf.Ready(p) {
		t.Fatal("SetReady not visible")
	}
	if !rf.Ready(noPhys) {
		t.Fatal("noPhys must always read ready")
	}
	rf.Release(noPhys) // must not panic or change state
	if rf.FreeCount() != 1 {
		t.Fatal("Release(noPhys) changed the free list")
	}
}

// Property: alloc/release sequences never lose or duplicate registers.
func TestRegFileConservation(t *testing.T) {
	f := func(ops []bool) bool {
		rf := newRegFile(8)
		var held []physReg
		for _, alloc := range ops {
			if alloc {
				if p, ok := rf.Alloc(); ok {
					held = append(held, p)
				}
			} else if len(held) > 0 {
				rf.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		return rf.FreeCount()+len(held) == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRenameTableInitArchState(t *testing.T) {
	rt := newRenameTable(2)
	files := []regFile{*newRegFile(96), *newRegFile(96)}
	if err := rt.initArchState(files); err != nil {
		t.Fatal(err)
	}
	// r0 is never mapped; r1..r31 in the int cluster; f0..f31 in FP.
	if _, ok := rt.lookup(isa.R(0), IntCluster); ok {
		t.Error("zero register mapped")
	}
	for i := 1; i < isa.NumIntRegs; i++ {
		if _, ok := rt.lookup(isa.R(i), IntCluster); !ok {
			t.Errorf("r%d not mapped in int cluster", i)
		}
		if _, ok := rt.lookup(isa.R(i), FPCluster); ok {
			t.Errorf("r%d mapped in FP cluster at init", i)
		}
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		if _, ok := rt.lookup(isa.F(i), FPCluster); !ok {
			t.Errorf("f%d not mapped in FP cluster", i)
		}
	}
	// 31 int + 32 FP allocations.
	if files[0].FreeCount() != 96-31 {
		t.Errorf("int file free = %d", files[0].FreeCount())
	}
	if files[1].FreeCount() != 96-32 {
		t.Errorf("fp file free = %d", files[1].FreeCount())
	}
	if rt.replicatedCount() != 0 {
		t.Errorf("replicated at init = %d", rt.replicatedCount())
	}
}

func TestRenameRedefineInvalidatesOtherCluster(t *testing.T) {
	rt := newRenameTable(2)
	files := []regFile{*newRegFile(96), *newRegFile(96)}
	if err := rt.initArchState(files); err != nil {
		t.Fatal(err)
	}
	r := isa.R(5)
	orig, _ := rt.lookup(r, IntCluster)

	// Replicate r5 into the FP cluster (copy path).
	p2, _ := files[1].Alloc()
	rt.setMapping(r, FPCluster, p2)
	if rt.replicatedCount() != 1 {
		t.Fatalf("replicated = %d, want 1", rt.replicatedCount())
	}
	if home := rt.home(r); !home.Has(IntCluster) || !home.Has(FPCluster) {
		t.Fatal("home should report both clusters")
	}

	// A new writer in the int cluster invalidates both old mappings.
	p3, _ := files[0].Alloc()
	prev, mask := rt.redefine(r, IntCluster, p3)
	if prev[0] != orig || prev[1] != p2 {
		t.Fatalf("redefine prev = %v, want [%v %v]", prev, orig, p2)
	}
	if mask != 0b11 {
		t.Fatalf("redefine mask = %#b, want 0b11", mask)
	}
	if got, ok := rt.lookup(r, IntCluster); !ok || got != p3 {
		t.Fatalf("lookup after redefine = %v,%v", got, ok)
	}
	if _, ok := rt.lookup(r, FPCluster); ok {
		t.Fatal("FP mapping survived redefine")
	}
	if rt.replicatedCount() != 0 {
		t.Fatal("replication count wrong after redefine")
	}
}

func TestRenameSingleClusterNeverReplicates(t *testing.T) {
	rt := newRenameTable(1)
	files := []regFile{*newRegFile(192)}
	if err := rt.initArchState(files); err != nil {
		t.Fatal(err)
	}
	if rt.replicatedCount() != 0 {
		t.Fatal("single cluster reports replication")
	}
	if _, ok := rt.lookup(isa.F(3), IntCluster); !ok {
		t.Fatal("FP register not mapped in cluster 0 on single-cluster machine")
	}
}

func TestInitArchStateFailsOnTinyFile(t *testing.T) {
	rt := newRenameTable(2)
	files := []regFile{*newRegFile(8), *newRegFile(96)}
	if err := rt.initArchState(files); err == nil {
		t.Fatal("expected failure with 8-register file")
	}
}
