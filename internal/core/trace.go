package core

import (
	"fmt"
	"io"
)

// Event identifies a pipeline event for tracing.
type Event uint8

const (
	// EvDispatch is rename+steer placing an instruction in a cluster.
	EvDispatch Event = iota
	// EvCopyInserted is the creation of an inter-cluster copy.
	EvCopyInserted
	// EvIssue is an instruction leaving an issue queue.
	EvIssue
	// EvComplete is a result (or address) becoming available.
	EvComplete
	// EvCommit is in-order retirement.
	EvCommit
	// EvRedirect is fetch resuming after a resolved misprediction.
	EvRedirect
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EvDispatch:
		return "dispatch"
	case EvCopyInserted:
		return "copy"
	case EvIssue:
		return "issue"
	case EvComplete:
		return "complete"
	case EvCommit:
		return "commit"
	case EvRedirect:
		return "redirect"
	default:
		return fmt.Sprintf("Event(%d)", uint8(e))
	}
}

// Tracer receives pipeline events. Implementations must be fast; the
// machine calls them inline. Tracer predates the Probe seam and remains
// the convenient interface when only the event stream matters; it rides
// the seam via TracerProbe, so the core has exactly one observation
// mechanism.
type Tracer interface {
	Trace(cycle uint64, ev Event, d *DynInst)
}

// SetTracer installs (or, with nil, removes) a pipeline tracer. It is
// shorthand for SetProbe(TracerProbe(t)) and therefore displaces any
// probe installed earlier (and vice versa).
func (m *Machine) SetTracer(t Tracer) {
	if t == nil {
		m.SetProbe(nil)
		return
	}
	m.SetProbe(TracerProbe(t))
}

// TracerProbe adapts a legacy Tracer to the Probe seam: pipeline events
// forward to Trace; the probe-only hooks (fetch records, steering
// decisions, cycle samples) are dropped.
func TracerProbe(t Tracer) Probe { return tracerProbe{t} }

type tracerProbe struct{ t Tracer }

func (p tracerProbe) Fetch(uint64, *FetchInfo) {}
func (p tracerProbe) Steer(*SteerDecision)     {}
func (p tracerProbe) Cycle(*CycleSample)       {}
func (p tracerProbe) Event(cycle uint64, ev Event, d *DynInst) {
	p.t.Trace(cycle, ev, d)
}

// TextTracer writes one line per event within a cycle window, in the style
// of SimpleScalar's pipetrace output.
type TextTracer struct {
	// W receives the trace.
	W io.Writer
	// From and To bound the traced cycles (To = 0 means unbounded).
	From, To uint64
}

// Trace implements Tracer.
func (t *TextTracer) Trace(cycle uint64, ev Event, d *DynInst) {
	if cycle < t.From || (t.To > 0 && cycle > t.To) {
		return
	}
	what := "—"
	if d != nil {
		if d.IsCopy {
			what = fmt.Sprintf("copy %v->%v (r%d seq %d)", d.SrcCluster, d.Cluster, d.destLogical, d.Seq)
		} else {
			what = fmt.Sprintf("pc=%d %v [%v] seq %d", d.PC, d.Inst, d.Cluster, d.Seq)
		}
	}
	fmt.Fprintf(t.W, "%8d %-9s %s\n", cycle, ev, what)
}

// CountingTracer tallies events by type; tests and quick profiles use it.
type CountingTracer struct {
	// Counts is indexed by Event.
	Counts [6]uint64
}

// Trace implements Tracer.
func (t *CountingTracer) Trace(_ uint64, ev Event, _ *DynInst) {
	if int(ev) < len(t.Counts) {
		t.Counts[ev]++
	}
}
