package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/prog"
)

func TestCountingTracerSeesPipelineFlow(t *testing.T) {
	p := mustProg(t, `
.data
x: .word 7
.text
  li  r1, x
  ld  r2, 0(r1)
  add r3, r2, r2
  beq r3, r0, skip
  addi r4, r4, 1
skip:
  halt
`)
	m, err := New(config.Clustered(), p, NaiveSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	var ct CountingTracer
	m.SetTracer(&ct)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	n := p.Text // every instruction dispatches, issues, completes, commits
	if ct.Counts[EvDispatch] != uint64(len(n)) {
		t.Errorf("dispatch events = %d, want %d", ct.Counts[EvDispatch], len(n))
	}
	if ct.Counts[EvCommit] != uint64(len(n)) {
		t.Errorf("commit events = %d, want %d", ct.Counts[EvCommit], len(n))
	}
	if ct.Counts[EvIssue] < ct.Counts[EvDispatch] {
		t.Errorf("issue events (%d) below dispatch (%d)", ct.Counts[EvIssue], ct.Counts[EvDispatch])
	}
	// A load has two completions (EA + data): completes > dispatches.
	if ct.Counts[EvComplete] <= ct.Counts[EvDispatch] {
		t.Errorf("complete events = %d, want > %d", ct.Counts[EvComplete], ct.Counts[EvDispatch])
	}
}

func TestTextTracerOutput(t *testing.T) {
	p := mustProg(t, `
.text
  addi r1, r0, 1
  add  r2, r1, r1
  halt
`)
	m, err := New(config.Clustered(), p, NaiveSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.SetTracer(&TextTracer{W: &buf})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dispatch", "issue", "complete", "commit", "addi r1, r0, 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestTextTracerCycleWindow(t *testing.T) {
	p := mustProg(t, `
.text
loop:
  addi r1, r1, 1
  j loop
`)
	m, err := New(config.Clustered(), p, NaiveSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.SetTracer(&TextTracer{W: &buf, From: 100, To: 105})
	if _, err := m.Run(2000); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var cyc uint64
		if _, err := fmt.Sscan(line, &cyc); err != nil {
			t.Fatalf("unparseable trace line %q", line)
		}
		if cyc < 100 || cyc > 105 {
			t.Fatalf("trace line outside window: %q", line)
		}
	}
}

func TestCopyEventsTraced(t *testing.T) {
	b := prog.NewBuilder("chain")
	b.Addi(isa.R(1), isa.R(0), 1)
	for i := 0; i < 50; i++ {
		b.Addi(isa.R(1), isa.R(1), 1)
	}
	b.Halt()
	m, err := New(config.Clustered(), b.MustBuild(), &moduloSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	var ct CountingTracer
	m.SetTracer(&ct)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if ct.Counts[EvCopyInserted] == 0 {
		t.Error("no copy events on a modulo-steered chain")
	}
}

func TestEventString(t *testing.T) {
	names := map[Event]string{
		EvDispatch: "dispatch", EvCopyInserted: "copy", EvIssue: "issue",
		EvComplete: "complete", EvCommit: "commit", EvRedirect: "redirect",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("Event %d = %q, want %q", ev, ev.String(), want)
		}
	}
}
