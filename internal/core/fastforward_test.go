package core

// Fast-forward differential suite: a machine with event-driven
// fast-forward enabled is locked, cycle for cycle, against an identically
// configured machine stepping every cycle. The comparison is total — the
// full commit stream with cycle stamps, the final cycle count, the
// complete measurement record and the final architectural state — so any
// idle-window misjudgment in ffIdle or wake miscalculation in ffWake fails
// loudly rather than skewing statistics quietly.

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/rdg"
	"repro/internal/stats"
)

// ffCommit is one committed program instruction with its commit cycle; the
// two machines must produce identical sequences.
type ffCommit struct {
	cycle uint64
	seq   uint64
	pc    int
}

// ffWarmup exercises the warm/measure boundary under fast-forward: short
// programs halt during warm-up, longer ones cross into measurement.
const ffWarmup = 200

// ffRun simulates the seed's program on cfg with fast-forward set as
// given, recording the commit stream.
func ffRun(t *testing.T, cfg *config.Config, seed int64, ff bool) ([]ffCommit, *stats.Run, uint64) {
	t.Helper()
	p := rdg.RandomProgram(seed)
	m, err := New(cfg, p, steererFor(cfg, seed))
	if err != nil {
		t.Fatalf("seed %d/%s: %v", seed, cfg.Name, err)
	}
	m.SetFastForward(ff)
	var commits []ffCommit
	m.SetTracer(tracerFunc(func(cycle uint64, ev Event, d *DynInst) {
		if ev == EvCommit && !d.IsCopy {
			commits = append(commits, ffCommit{cycle: cycle, seq: d.ProgSeq, pc: d.PC})
		}
	}))
	r, err := m.RunWithWarmup(ffWarmup, 0)
	if err != nil {
		t.Fatalf("seed %d/%s ff=%v: %v (%s)", seed, cfg.Name, ff, err, m.dumpState())
	}
	return commits, r, m.Cycle()
}

// ffDifferential runs one (config, seed) cell both ways and requires
// bit-identity.
func ffDifferential(t *testing.T, cfg *config.Config, seed int64) {
	t.Helper()
	slowC, slowR, slowCycles := ffRun(t, cfg, seed, false)
	fastC, fastR, fastCycles := ffRun(t, cfg, seed, true)

	if fastCycles != slowCycles {
		t.Fatalf("seed %d/%s: fast-forward finished at cycle %d, per-cycle stepping at %d",
			seed, cfg.Name, fastCycles, slowCycles)
	}
	if len(fastC) != len(slowC) {
		t.Fatalf("seed %d/%s: fast-forward committed %d instructions, per-cycle %d",
			seed, cfg.Name, len(fastC), len(slowC))
	}
	for i := range slowC {
		if fastC[i] != slowC[i] {
			t.Fatalf("seed %d/%s: commit %d diverged: ff=%+v per-cycle=%+v",
				seed, cfg.Name, i, fastC[i], slowC[i])
		}
	}
	if !reflect.DeepEqual(*fastR, *slowR) {
		t.Fatalf("seed %d/%s: measurement records diverged\n  ff:        %+v\n  per-cycle: %+v",
			seed, cfg.Name, *fastR, *slowR)
	}
}

// TestFastForwardDifferential sweeps the differential over every machine
// configuration; plain `go test ./...` gates the fast-forward suite
// through it (the fuzz target extends the sweep under `make ci`).
func TestFastForwardDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 9, 13, 19} {
		for _, cfg := range fuzzConfigs() {
			ffDifferential(t, cfg, seed)
		}
	}
}

// FuzzFastForward is the native fuzz target over the same property,
// seeded from the FuzzCoSimulate corpus pairs (dense LSQ aliasing, FP
// cross-cluster chains, call/return pressure — the shapes most likely to
// open and close idle windows at awkward points).
func FuzzFastForward(f *testing.F) {
	for _, c := range []struct {
		seed   int64
		cfgIdx uint8
	}{
		{7, 0}, {7, 6}, {9, 3}, {9, 7}, {19, 0}, {19, 6}, {23, 5}, {31, 4}, {1, 1}, {13, 2},
	} {
		f.Add(c.seed, c.cfgIdx)
	}
	configs := fuzzConfigs()
	f.Fuzz(func(t *testing.T, seed int64, cfgIdx uint8) {
		ffDifferential(t, configs[int(cfgIdx)%len(configs)], seed)
	})
}
