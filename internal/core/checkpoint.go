package core

import (
	"fmt"

	"repro/internal/bpred"
	"repro/internal/stats"
)

// Warm-state checkpointing: a Checkpoint freezes a machine after its warm
// phase — architectural state (the emulator oracle), caches, predictors,
// steering tables, and every in-flight micro-architectural structure — so
// a grid can pay for the shared warm-up once and replay measurement runs
// from the snapshot. Restore produces a machine bit-identical to the one
// the snapshot was taken from: measuring a restored machine yields exactly
// the stats.Run an unbroken RunWithWarmup would have produced (the
// checkpoint round-trip test locks this). DESIGN.md ("Fast-forward
// invariant") documents the reuse key: warm state depends on everything in
// a job except the measurement budget, including the steering scheme —
// policies train their tables during warm-up — so snapshots are shareable
// only between runs that differ in Measure alone.

// Checkpoint is a frozen warm-state snapshot. It is immutable: Restore
// and Measure clone the frozen machine again, so one checkpoint serves any
// number of measurement runs.
type Checkpoint struct {
	m *Machine
}

// Checkpoint snapshots the machine's complete state, typically right after
// Warm. ok is false when a component cannot be snapshotted: the steering
// policy does not implement CloneableSteerer, the direction predictor is
// not a bpred.ClonableDir, or a live in-flight instruction was found
// chained outside the reorder buffer (an invariant violation). The machine
// itself is untouched either way and may keep running.
func (m *Machine) Checkpoint() (*Checkpoint, bool) {
	c, ok := m.clone()
	if !ok {
		return nil, false
	}
	return &Checkpoint{m: c}, true
}

// Restore returns a fresh machine continuing from the snapshot, leaving
// the checkpoint reusable. It returns nil only if the frozen machine has
// stopped being clonable, which cannot happen for snapshots built by
// Checkpoint (cloning is closed: every component clones to its own type).
func (c *Checkpoint) Restore() *Machine {
	m, ok := c.m.clone()
	if !ok {
		return nil
	}
	return m
}

// Measure restores the snapshot and measures the next measure instructions
// (0 = until HALT), exactly as Measure on the warmed machine would have.
func (c *Checkpoint) Measure(measure uint64) (*stats.Run, error) {
	m := c.Restore()
	if m == nil {
		return nil, fmt.Errorf("core: checkpoint no longer restorable")
	}
	return m.Measure(measure)
}

// clone deep-copies the machine. The configuration, program and the
// derived forcedByPC table are shared (immutable after construction); the
// probe is carried as-is (a probe observing both machines is the
// caller's choice). Everything else — including every live DynInst and the
// intrusive pointers between them — is duplicated so the two machines
// share no mutable state.
//
// The reorder buffer is the universe of live DynInsts: every instruction
// in the timing wheel, the issue queues, the waiter lists and the LSQ is
// in flight and therefore in the ROB (commit, which removes it, also
// removes it from the LSQ, and its waiter chains were cleared by the
// wakeReg walk of the completion that made it committable — wakeReg runs
// the cycle the register turns ready, and commit orders after complete
// within a cycle). The remap table is built from the ROB ring and every
// chained pointer is translated through it; finding a live pointer the
// table does not know falsifies that invariant and fails the clone.
func (m *Machine) clone() (*Machine, bool) {
	dir, okDir := m.bp.(bpred.ClonableDir)
	if !okDir {
		return nil, false
	}
	nbp := dir.CloneDir()
	if nbp == nil {
		return nil, false
	}
	cs, okSteer := m.steerer.(CloneableSteerer)
	if !okSteer {
		return nil, false
	}
	co, okOracle := m.oracle.(CloneableOracle)
	if !okOracle {
		// A recording oracle (internal/trace.Recorder) is deliberately not
		// cloneable: two machines appending to one trace buffer would
		// interleave. The caller falls back to an unsnapshotted run.
		return nil, false
	}

	c := new(Machine)
	*c = *m
	c.oracle = co.CloneOracle()
	c.steerer = cs.CloneSteerer()
	c.hier = m.hier.Clone()
	c.bp = nbp
	c.btb = m.btb.Clone()
	c.ras = m.ras.Clone()

	// Pass 1: duplicate every live DynInst, recording the translation.
	remap := make(map[*DynInst]*DynInst, m.robLen)
	for i := 0; i < m.robLen; i++ {
		old := m.robAt(i)
		nd := new(DynInst)
		*nd = *old
		remap[old] = nd
	}
	okAll := true
	look := func(d *DynInst) *DynInst {
		if d == nil {
			return nil
		}
		nd, known := remap[d]
		if !known {
			okAll = false
		}
		return nd
	}
	// Pass 2: translate the intrusive links (wheel chains, waiter chains).
	for i := 0; i < m.robLen; i++ {
		nd := remap[m.robAt(i)]
		nd.nextEvt = look(nd.nextEvt)
		nd.nextWaiter[0] = look(nd.nextWaiter[0])
		nd.nextWaiter[1] = look(nd.nextWaiter[1])
	}

	// Per-cluster structures. Capacities are preserved exactly so the
	// restored machine keeps the allocation-free steady state (the scratch
	// and pool sizing TestSteadyStateCycleAllocs depends on).
	c.files = make([]regFile, 0, cap(m.files))
	for i := range m.files {
		c.files = append(c.files, m.files[i].clone())
	}
	c.iqs = make([]issueQueue, len(m.iqs))
	for i := range m.iqs {
		m.iqs[i].cloneInto(&c.iqs[i], look)
	}
	c.fus = make([]fuPool, 0, cap(m.fus))
	for i := range m.fus {
		c.fus = append(c.fus, m.fus[i].clone())
	}
	nrt := *m.rt
	c.rt = &nrt
	nl := *m.ldst
	nl.ring = make([]*DynInst, len(m.ldst.ring))
	for i, d := range m.ldst.ring {
		nl.ring[i] = look(d)
	}
	c.ldst = &nl

	// Rings and the timing wheel (robPop nils vacated slots, so every
	// non-nil entry is live and in the remap table).
	c.rob = make([]*DynInst, len(m.rob))
	for i, d := range m.rob {
		c.rob[i] = look(d)
	}
	c.decodeQ = make([]fetched, len(m.decodeQ))
	copy(c.decodeQ, m.decodeQ)
	c.evtHead = make([]*DynInst, len(m.evtHead))
	c.evtTail = make([]*DynInst, len(m.evtTail))
	for i := range m.evtHead {
		c.evtHead[i] = look(m.evtHead[i])
		c.evtTail[i] = look(m.evtTail[i])
	}

	// The recycle pool's entries carry no live state (allocDyn overwrites
	// wholesale); refill with fresh ones to keep the pool size, which is
	// what makes the steady state allocation-free.
	c.dynPool = make([]*DynInst, len(m.dynPool), cap(m.dynPool))
	for i := range c.dynPool {
		c.dynPool[i] = new(DynInst)
	}

	// Per-cycle scratch (empty between cycles; keep the grown capacities).
	c.wakeBuf = make([]wakePair, 0, cap(m.wakeBuf))
	c.issueBuf = make([]*DynInst, 0, cap(m.issueBuf))
	c.loadBuf = make([]*DynInst, 0, cap(m.loadBuf))
	c.busUsed = make([]int, len(m.busUsed))
	copy(c.busUsed, m.busUsed)
	c.readySample = make([]int, len(m.readySample))
	copy(c.readySample, m.readySample)

	c.run.Steered = make([]uint64, len(m.run.Steered))
	copy(c.run.Steered, m.run.Steered)

	if !okAll {
		return nil, false
	}
	return c, true
}

// clone deep-copies a register file, preserving the free list's capacity.
func (rf *regFile) clone() regFile {
	nf := *rf
	nf.ready = make([]uint64, len(rf.ready))
	copy(nf.ready, rf.ready)
	nf.free = make([]physReg, len(rf.free), cap(rf.free))
	copy(nf.free, rf.free)
	return nf
}

// cloneInto deep-copies the issue queue into nq, translating every held
// DynInst pointer through look and preserving slice capacities.
func (q *issueQueue) cloneInto(nq *issueQueue, look func(*DynInst) *DynInst) {
	*nq = *q
	// Rebuild the age-ordered window list from translated nodes. The
	// copied DynInsts' own prevQ/nextQ still point into the source
	// machine's list; relinking every member here overwrites all of them
	// (non-members carry nil links — Remove clears them).
	nq.qhead, nq.qtail = nil, nil
	for d := q.qhead; d != nil; d = d.nextQ {
		nd := look(d)
		nd.prevQ, nd.nextQ = nq.qtail, nil
		if nq.qtail != nil {
			nq.qtail.nextQ = nd
		} else {
			nq.qhead = nd
		}
		nq.qtail = nd
	}
	nq.copies = make([]*DynInst, 0, cap(q.copies))
	for _, d := range q.copies {
		nq.copies = append(nq.copies, look(d))
	}
	nq.waiters = make([]*DynInst, len(q.waiters))
	for i, d := range q.waiters {
		nq.waiters[i] = look(d)
	}
	nq.fifos = make([][]*DynInst, len(q.fifos))
	for f := range q.fifos {
		nq.fifos[f] = make([]*DynInst, 0, cap(q.fifos[f]))
		for _, d := range q.fifos[f] {
			nq.fifos[f] = append(nq.fifos[f], look(d))
		}
	}
}

// clone deep-copies a functional-unit pool. Nil-ness of the per-kind
// busyUntil slices is preserved — TryIssue branches on it to pick the
// fully-pipelined path.
func (p *fuPool) clone() fuPool {
	np := *p
	for k := range np.busyUntil {
		if p.busyUntil[k] == nil {
			continue
		}
		nb := make([]uint64, len(p.busyUntil[k]))
		copy(nb, p.busyUntil[k])
		np.busyUntil[k] = nb
	}
	return np
}
