package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// fuKind enumerates functional-unit classes within a cluster.
type fuKind uint8

const (
	fuSimpleInt fuKind = iota
	fuComplexInt
	fuFPALU
	fuFPMulDiv
	numFUKinds
)

// fuPool models one cluster's functional units. Simple-int and FP-ALU units
// are fully pipelined (one new operation per unit per cycle). The complex
// integer unit and FP mul/div unit pipeline multiplies but are occupied for
// the full latency by divides, following SimpleScalar's resource model.
type fuPool struct {
	lat config.Latencies
	// counts per kind.
	count [numFUKinds]int
	// usedThisCycle per kind, reset by newCycle.
	used [numFUKinds]int
	// busyUntil holds per-unit occupancy deadlines for the unpipelined
	// divide paths (indexed [kind][unit]).
	busyUntil [numFUKinds][]uint64
}

func newFUPool(cl config.Cluster, lat config.Latencies) *fuPool {
	p := &fuPool{lat: lat}
	p.count[fuSimpleInt] = cl.SimpleIntALUs
	p.count[fuComplexInt] = cl.ComplexIntUnits
	p.count[fuFPALU] = cl.FPALUs
	p.count[fuFPMulDiv] = cl.FPMulDivUnits
	p.busyUntil[fuComplexInt] = make([]uint64, cl.ComplexIntUnits)
	p.busyUntil[fuFPMulDiv] = make([]uint64, cl.FPMulDivUnits)
	return p
}

// newCycle resets the per-cycle issue counters.
//
//dca:hotpath
func (p *fuPool) newCycle() {
	for k := range p.used {
		p.used[k] = 0
	}
}

// kindFor maps an opcode to the unit class it needs. Loads and stores use a
// simple ALU for their effective-address computation; branches compare on a
// simple ALU; copies need no unit (they use a bus) and are not routed here.
//
//dca:hotpath
func kindFor(op isa.Opcode) fuKind {
	switch op.Class() {
	case isa.ClassComplexInt:
		return fuComplexInt
	case isa.ClassFP:
		switch op {
		case isa.FMUL, isa.FDIV:
			return fuFPMulDiv
		default:
			return fuFPALU
		}
	default:
		return fuSimpleInt
	}
}

// latencyFor returns the execution latency of op.
//
//dca:hotpath
func (p *fuPool) latencyFor(op isa.Opcode) int {
	switch op.Class() {
	case isa.ClassComplexInt:
		if op == isa.MUL {
			return p.lat.IntMul
		}
		return p.lat.IntDiv
	case isa.ClassFP:
		switch op {
		case isa.FMUL:
			return p.lat.FPMul
		case isa.FDIV:
			return p.lat.FPDiv
		default:
			return p.lat.FPALU
		}
	default:
		return p.lat.SimpleInt
	}
}

// divOccupies reports whether op monopolizes its unit for the full latency.
//
//dca:hotpath
func divOccupies(op isa.Opcode) bool {
	switch op {
	case isa.DIV, isa.REM, isa.FDIV:
		return true
	}
	return false
}

// TryIssue reserves a unit for op at cycle now. It returns the operation
// latency and whether a unit was available.
//
//dca:hotpath
func (p *fuPool) TryIssue(op isa.Opcode, now uint64) (latency int, ok bool) {
	k := kindFor(op)
	if p.count[k] == 0 {
		return 0, false
	}
	lat := p.latencyFor(op)
	busy := p.busyUntil[k]
	if busy == nil {
		// Fully pipelined kind: limited only by per-cycle starts.
		if p.used[k] >= p.count[k] {
			return 0, false
		}
		p.used[k]++
		return lat, true
	}
	// Kinds with unpipelined members: find a unit that is neither past its
	// per-cycle start limit nor occupied by a divide.
	if p.used[k] >= p.count[k] {
		return 0, false
	}
	for u := range busy {
		if busy[u] <= now {
			p.used[k]++
			if divOccupies(op) {
				busy[u] = now + uint64(lat)
			} else {
				// A multiply occupies the unit's start slot this cycle
				// only; mark it busy for one cycle so a divide cannot
				// start on the same unit in the same cycle.
				if busy[u] < now+1 {
					busy[u] = now + 1
				}
			}
			return lat, true
		}
	}
	return 0, false
}

// CanEverIssue reports whether the pool has any unit of the kind op needs;
// dispatch uses it to validate steering decisions.
//
//dca:hotpath
func (p *fuPool) CanEverIssue(op isa.Opcode) bool {
	return p.count[kindFor(op)] > 0
}
