package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/stats"
)

// chainProg builds a loop whose body is one long dependent add chain.
func chainProg(n int) *prog.Program {
	b := prog.NewBuilder("chain")
	b.Label("top")
	for i := 0; i < n; i++ {
		b.Addi(isa.R(1), isa.R(1), 1)
	}
	b.Jmp("top")
	return b.MustBuild()
}

func measure(t *testing.T, cfg *config.Config, p *prog.Program, st Steerer) *stats.Run {
	t.Helper()
	m, err := New(cfg, p, st)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunWithWarmup(4_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// A dependent 1-cycle chain executes at IPC 1 locally; ping-ponged across
// clusters by modulo steering, every hop adds exactly the 1-cycle bypass
// latency plus the copy, halving throughput. This pins the copy-timing
// model quantitatively.
func TestInterClusterHopCostsOneCycle(t *testing.T) {
	p := chainProg(512)
	local := measure(t, config.Clustered(), p, NaiveSteerer{})
	pingpong := measure(t, config.Clustered(), p, &moduloSteerer{})

	if ipc := local.IPC(); ipc < 0.93 || ipc > 1.02 {
		t.Errorf("local chain IPC = %.3f, want ~1.0", ipc)
	}
	// Each instruction's input now arrives one cycle later (copy latency
	// 1): steady-state IPC ~0.5.
	if ipc := pingpong.IPC(); ipc < 0.42 || ipc > 0.58 {
		t.Errorf("ping-pong chain IPC = %.3f, want ~0.5", ipc)
	}
	// One copy per instruction (every value is consumed remotely).
	if cpi := pingpong.CommPerInstr(); cpi < 0.9 || cpi > 1.1 {
		t.Errorf("comm/instr = %.3f, want ~1.0", cpi)
	}
}

// With copy latency 2 the same ping-pong chain drops to ~1/3 IPC.
func TestCopyLatencyScalesChainThroughput(t *testing.T) {
	p := chainProg(512)
	cfg := config.Clustered()
	cfg.CopyLatency = 2
	pingpong := measure(t, cfg, p, &moduloSteerer{})
	if ipc := pingpong.IPC(); ipc < 0.28 || ipc > 0.40 {
		t.Errorf("latency-2 ping-pong IPC = %.3f, want ~1/3", ipc)
	}
}

// randomBranchProg branches on pre-generated pseudo-random bits: the
// pattern (period 8191) exceeds what the 16-bit-history gshare can learn,
// so nearly every branch mispredicts.
func randomBranchProg() *prog.Program {
	b := prog.NewBuilder("randbr")
	bits := make([]int64, 8191)
	x := xorshiftT(12345)
	for i := range bits {
		bits[i] = int64(x.next() & 1)
	}
	b.Word64("bits", bits...)
	b.La(isa.R(1), "bits")
	b.Li(isa.R(2), 0)
	b.Label("top")
	b.Slli(isa.R(3), isa.R(2), 3)
	b.Add(isa.R(3), isa.R(1), isa.R(3))
	b.Ld(isa.R(4), isa.R(3), 0)
	b.Beq(isa.R(4), isa.R(0), "zero")
	b.Addi(isa.R(5), isa.R(5), 1)
	b.Jmp("next")
	b.Label("zero")
	b.Addi(isa.R(6), isa.R(6), 1)
	b.Label("next")
	b.Addi(isa.R(2), isa.R(2), 1)
	b.Slti(isa.R(7), isa.R(2), 8191)
	b.Bne(isa.R(7), isa.R(0), "top")
	b.Li(isa.R(2), 0)
	b.Jmp("top")
	return b.MustBuild()
}

// predictableBranchProg is the same loop with an always-taken data branch.
func predictableBranchProg() *prog.Program {
	b := prog.NewBuilder("predbr")
	bits := make([]int64, 8191)
	for i := range bits {
		bits[i] = 1
	}
	b.Word64("bits", bits...)
	b.La(isa.R(1), "bits")
	b.Li(isa.R(2), 0)
	b.Label("top")
	b.Slli(isa.R(3), isa.R(2), 3)
	b.Add(isa.R(3), isa.R(1), isa.R(3))
	b.Ld(isa.R(4), isa.R(3), 0)
	b.Beq(isa.R(4), isa.R(0), "zero")
	b.Addi(isa.R(5), isa.R(5), 1)
	b.Jmp("next")
	b.Label("zero")
	b.Addi(isa.R(6), isa.R(6), 1)
	b.Label("next")
	b.Addi(isa.R(2), isa.R(2), 1)
	b.Slti(isa.R(7), isa.R(2), 8191)
	b.Bne(isa.R(7), isa.R(0), "top")
	b.Li(isa.R(2), 0)
	b.Jmp("top")
	return b.MustBuild()
}

// TestMispredictionPenalty compares identical loops differing only in
// branch predictability and bounds the implied penalty per misprediction.
func TestMispredictionPenalty(t *testing.T) {
	random := measure(t, config.Clustered(), randomBranchProg(), NaiveSteerer{})
	pred := measure(t, config.Clustered(), predictableBranchProg(), NaiveSteerer{})

	if rate := random.MispredictRate(); rate < 0.15 {
		t.Fatalf("random branches mispredicting at only %.2f", rate)
	}
	if rate := pred.MispredictRate(); rate > 0.02 {
		t.Fatalf("predictable branches mispredicting at %.2f", rate)
	}
	extraCycles := float64(random.Cycles) - float64(pred.Cycles)
	if random.Mispredicts == 0 || extraCycles <= 0 {
		t.Fatalf("no measurable penalty (extra=%.0f, mispredicts=%d)", extraCycles, random.Mispredicts)
	}
	penalty := extraCycles / float64(random.Mispredicts)
	// Resolve-at-execute plus front-end refill: mid-single-digits to low
	// teens on this machine.
	if penalty < 3 || penalty > 18 {
		t.Errorf("implied misprediction penalty %.1f cycles out of range", penalty)
	}
}

// xorshiftT is a local copy of the workload generator's RNG (kept separate
// so core tests do not depend on the workload package).
type xorshiftT uint64

func (x *xorshiftT) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}
