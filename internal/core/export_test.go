package core

import (
	"fmt"
	"testing"
)

// checkRegisterConservation verifies that after a program has fully
// drained, every physical register is either free or holds a committed
// architectural mapping — i.e. the rename/commit protocol leaks nothing.
func checkRegisterConservation(t *testing.T, m *Machine) {
	t.Helper()
	if len(m.rob) != 0 {
		t.Fatalf("ROB not drained: %d entries", len(m.rob))
	}
	for c := 0; c < m.cfg.NumClusters(); c++ {
		mapped := 0
		for r := range m.rt.entries {
			if m.rt.entries[r].valid[c] {
				mapped++
			}
		}
		total := m.cfg.Clusters[c].PhysRegs
		free := m.files[c].FreeCount()
		if free+mapped != total {
			t.Errorf("cluster %d: free %d + mapped %d != %d physical registers (leak of %d)",
				c, free, mapped, total, total-free-mapped)
		}
	}
	if m.ldst.Len() != 0 {
		t.Errorf("LSQ not drained: %d entries", m.ldst.Len())
	}
}

// inFlight exposes the window occupancy for tests.
func (m *Machine) inFlight() int { return len(m.rob) }

// dumpState prints a diagnostic snapshot (used when debugging failed
// invariant tests).
func (m *Machine) dumpState() string {
	s := fmt.Sprintf("cycle %d rob %d decodeQ %d", m.cycle, len(m.rob), len(m.decodeQ))
	for c := range m.iqs {
		s += fmt.Sprintf(" iq%d %d free-regs%d %d", c, m.iqs[c].Len(), c, m.files[c].FreeCount())
	}
	return s
}
