package core

import (
	"fmt"
	"testing"

	"repro/internal/isa"
)

// StepOneCycle advances the machine a single cycle. It exists for the
// per-cycle benchmark suite and the differential harness (package
// core_test), which need cycle-grained control that the public Run API
// deliberately does not expose.
func (m *Machine) StepOneCycle() error { return m.step() }

// OracleRegisters returns a copy of the embedded oracle's architectural
// register file; the differential harness compares it against an
// independently stepped reference emulator. It requires a live-emulator
// oracle (the default) — replayed traces carry no register file.
func (m *Machine) OracleRegisters() [isa.NumRegs]int64 { return m.oracle.(EmuOracle).M.Reg }

// HaltCommitted reports whether the machine has committed its HALT.
func (m *Machine) HaltCommitted() bool { return m.haltCommitted }

// BeginMeasurement turns on statistics collection, as a mid-run
// RunWithWarmup transition would; the benchmark suite uses it so measured
// cycles include the full stat-recording cost of a production run.
func (m *Machine) BeginMeasurement() {
	m.measuring = true
	m.beginMeasurement()
}

// checkRegisterConservation verifies that after a program has fully
// drained, every physical register is either free or holds a committed
// architectural mapping — i.e. the rename/commit protocol leaks nothing.
func checkRegisterConservation(t *testing.T, m *Machine) {
	t.Helper()
	if m.robLen != 0 {
		t.Fatalf("ROB not drained: %d entries", m.robLen)
	}
	for c := 0; c < m.cfg.NumClusters(); c++ {
		mapped := 0
		for r := range m.rt.entries {
			if m.rt.entries[r].valid[c] {
				mapped++
			}
		}
		total := m.cfg.Clusters[c].PhysRegs
		free := m.files[c].FreeCount()
		if free+mapped != total {
			t.Errorf("cluster %d: free %d + mapped %d != %d physical registers (leak of %d)",
				c, free, mapped, total, total-free-mapped)
		}
	}
	if m.ldst.Len() != 0 {
		t.Errorf("LSQ not drained: %d entries", m.ldst.Len())
	}
}

// inFlight exposes the window occupancy for tests.
func (m *Machine) inFlight() int { return m.robLen }

// dumpState prints a diagnostic snapshot (used when debugging failed
// invariant tests).
func (m *Machine) dumpState() string {
	s := fmt.Sprintf("cycle %d rob %d decodeQ %d", m.cycle, m.robLen, m.dqLen)
	for c := range m.iqs {
		s += fmt.Sprintf(" iq%d %d free-regs%d %d", c, m.iqs[c].Len(), c, m.files[c].FreeCount())
	}
	return s
}
