package core

import (
	"testing"

	"repro/internal/config"
)

func ooQueue() *issueQueue {
	return newIssueQueue(config.Clustered().Clusters[0], config.IQOutOfOrder)
}

func fifoQueue() *issueQueue {
	return newIssueQueue(config.Clustered().Clusters[0], config.IQFIFO)
}

// mkInst builds a minimal waiting instruction with the given sources.
func mkInst(seq uint64, dest physReg, srcs ...physReg) *DynInst {
	d := &DynInst{Seq: seq, destPhys: dest, state: stateWaiting}
	for i, s := range srcs {
		d.srcPhys[i] = s
		d.numSrcs++
		_ = i
	}
	return d
}

func TestIQCapacityAccounting(t *testing.T) {
	q := ooQueue()
	if q.Free() != 64 {
		t.Fatalf("fresh queue Free = %d", q.Free())
	}
	d := mkInst(1, noPhys)
	q.Add(d)
	if q.Len() != 1 || q.Free() != 63 {
		t.Fatalf("Len=%d Free=%d", q.Len(), q.Free())
	}
	q.Remove(d)
	if q.Len() != 0 || q.Free() != 64 {
		t.Fatalf("after remove Len=%d Free=%d", q.Len(), q.Free())
	}
}

func TestIQIssuableOldestFirstAndReadiness(t *testing.T) {
	q := ooQueue()
	ready := mkInst(2, noPhys)
	ready.srcReady = [2]bool{true, true}
	notReady := mkInst(1, noPhys, 5)
	q.Add(notReady)
	q.Add(ready)
	got := q.Issuable(nil)
	if len(got) != 1 || got[0] != ready {
		t.Fatalf("Issuable = %v", got)
	}
	if q.ReadyCount() != 1 {
		t.Fatalf("ReadyCount = %d", q.ReadyCount())
	}
}

func TestIQWakeUp(t *testing.T) {
	rf := newRegFile(8)
	p, _ := rf.Alloc()
	q := ooQueue()
	d := mkInst(1, noPhys, p)
	q.Add(d)
	if d.IssueReady() {
		t.Fatal("instruction ready before producer")
	}
	if q.ReadyCount() != 0 {
		t.Fatalf("ReadyCount = %d before wake", q.ReadyCount())
	}
	rf.SetReady(p)
	q.wakeReg(p)
	if !d.IssueReady() {
		t.Fatal("wakeReg did not mark source ready")
	}
	if q.ReadyCount() != 1 {
		t.Fatalf("ReadyCount = %d after wake", q.ReadyCount())
	}
}

// TestIQWakeRegTwoPendingSources chains one consumer under two producer
// registers and wakes them in both orders; the entry must become ready
// exactly when the second register arrives, counted once.
func TestIQWakeRegTwoPendingSources(t *testing.T) {
	for _, order := range [][2]int{{0, 1}, {1, 0}} {
		rf := newRegFile(8)
		p0, _ := rf.Alloc()
		p1, _ := rf.Alloc()
		ps := [2]physReg{p0, p1}
		q := ooQueue()
		d := mkInst(1, noPhys, p0, p1)
		q.Add(d)
		rf.SetReady(ps[order[0]])
		q.wakeReg(ps[order[0]])
		if d.IssueReady() || q.ReadyCount() != 0 {
			t.Fatalf("order %v: ready after one of two sources", order)
		}
		rf.SetReady(ps[order[1]])
		q.wakeReg(ps[order[1]])
		if !d.IssueReady() || q.ReadyCount() != 1 {
			t.Fatalf("order %v: not ready after both sources", order)
		}
	}
}

// TestIQWakeRegSameSourceTwice reads one register through both operands
// (e.g. ADD r1, r5, r5): a single wake must set both flags.
func TestIQWakeRegSameSourceTwice(t *testing.T) {
	rf := newRegFile(8)
	p, _ := rf.Alloc()
	q := ooQueue()
	d := mkInst(1, noPhys, p, p)
	q.Add(d)
	rf.SetReady(p)
	q.wakeReg(p)
	if !d.srcReady[0] || !d.srcReady[1] || !d.IssueReady() {
		t.Fatal("wakeReg did not mark a twice-read source in both operand slots")
	}
	if q.ReadyCount() != 1 {
		t.Fatalf("ReadyCount = %d", q.ReadyCount())
	}
}

func TestStoreIssueReadyOnAddressAlone(t *testing.T) {
	d := mkInst(1, noPhys, 3, 4)
	d.isStore = true
	d.srcReady[0] = true // base ready, data pending
	if !d.IssueReady() {
		t.Fatal("store not issue-ready on address operand alone")
	}
	if d.SrcsReady() {
		t.Fatal("SrcsReady must still report the pending data operand")
	}
	ld := mkInst(2, 0, 3, 4)
	ld.srcReady[0] = true
	if ld.IssueReady() {
		t.Fatal("non-store issue-ready with a pending source")
	}
}

func TestFIFOChooseByDependenceChain(t *testing.T) {
	q := fifoQueue()
	producer := mkInst(1, 7)
	f, ok := q.ChooseFIFO(producer)
	if !ok {
		t.Fatal("no FIFO for first instruction")
	}
	producer.fifo = f
	q.Add(producer)

	consumer := mkInst(2, 8, 7)
	cf, ok := q.ChooseFIFO(consumer)
	if !ok || cf != f {
		t.Fatalf("consumer chose FIFO %d,%v want producer's %d", cf, ok, f)
	}

	// A ready-source instruction prefers an empty FIFO.
	indep := mkInst(3, 9, 7)
	indep.srcReady[0] = true
	inf, ok := q.ChooseFIFO(indep)
	if !ok || inf == f {
		t.Fatalf("independent instruction chose the chain FIFO %d", inf)
	}
}

func TestFIFOOnlyHeadsIssue(t *testing.T) {
	q := fifoQueue()
	head := mkInst(1, 7)
	head.srcReady = [2]bool{true, true}
	f, _ := q.ChooseFIFO(head)
	head.fifo = f
	q.Add(head)
	second := mkInst(2, 8)
	second.srcReady = [2]bool{true, true}
	second.fifo = f
	q.Add(second)

	got := q.Issuable(nil)
	if len(got) != 1 || got[0] != head {
		t.Fatalf("Issuable in FIFO mode = %d entries (want just the head)", len(got))
	}
	q.Remove(head)
	got = q.Issuable(nil)
	if len(got) != 1 || got[0] != second {
		t.Fatal("second instruction not issuable after head removed")
	}
}

func TestFIFOCopiesBypassFIFOs(t *testing.T) {
	q := fifoQueue()
	cpy := &DynInst{Seq: 1, IsCopy: true, state: stateWaiting, numSrcs: 1, destPhys: 3}
	cpy.srcReady[0] = true
	q.Add(cpy)
	for f := range q.fifos {
		if len(q.fifos[f]) != 0 {
			t.Fatal("copy occupied a FIFO slot")
		}
	}
	got := q.Issuable(nil)
	if len(got) != 1 || got[0] != cpy {
		t.Fatal("copy not issuable from the bus buffer")
	}
	q.Remove(cpy)
	if q.Len() != 0 {
		t.Fatal("copy not removed")
	}
}

func TestFIFOStallsWhenFull(t *testing.T) {
	cl := config.Clustered().Clusters[0]
	cl.FIFOs, cl.FIFODepth = 2, 1
	q := newIssueQueue(cl, config.IQFIFO)
	for seq := uint64(1); seq <= 2; seq++ {
		d := mkInst(seq, physReg(seq))
		f, ok := q.ChooseFIFO(d)
		if !ok {
			t.Fatalf("no slot for instruction %d", seq)
		}
		d.fifo = f
		q.Add(d)
	}
	if _, ok := q.ChooseFIFO(mkInst(3, 9)); ok {
		t.Fatal("ChooseFIFO succeeded on full FIFOs")
	}
}

func TestSortBySeq(t *testing.T) {
	ds := []*DynInst{{Seq: 3}, {Seq: 1}, {Seq: 2}}
	sortBySeq(ds)
	for i, want := range []uint64{1, 2, 3} {
		if ds[i].Seq != want {
			t.Fatalf("sortBySeq order wrong: %v", []uint64{ds[0].Seq, ds[1].Seq, ds[2].Seq})
		}
	}
}
