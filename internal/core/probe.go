package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
)

// The probe seam: the timing core's single observation mechanism. A Probe
// attaches to a machine with SetProbe and receives every pipeline-boundary
// event (fetch, steering decision, dispatch, issue, copy, writeback,
// commit, redirect) plus one sample per simulated cycle. The seam is nil
// by default and every callsite sits behind an `m.probe != nil` guard
// inside a //dca:hotpath helper (the probeguard lint check enforces the
// guard), so a detached machine pays one pointer test per hook and the
// steady-state cycle loop stays allocation-free (TestSteadyStateCycleAllocs).
//
// Probes are passive by contract: they observe reused buffers, never
// mutate machine state, and nothing a probe produces can reach a
// stats.Run or a result digest. The differential harness and the golden
// grid run bit-identical with probes attached and detached
// (TestProbePassivityDifferential, TestGoldenProbeInvariants), which is
// the enforced form of that contract. internal/probe ships the built-in
// implementations (cycle attribution, steering forensics, per-cluster
// timelines, Konata export).

// Probe receives the timing core's introspection stream. Implementations
// must be fast — the machine calls them inline from the cycle loop — and
// must not retain the pointed-to buffers across calls: FetchInfo,
// SteerDecision and CycleSample are reused, and a *DynInst is recycled at
// commit.
type Probe interface {
	// Fetch is called once per instruction entering the decode queue.
	Fetch(cycle uint64, f *FetchInfo)
	// Event is called at the pipeline boundaries of trace.go's Event enum:
	// dispatch, copy insertion, issue, completion (writeback), commit and
	// fetch redirect.
	Event(cycle uint64, ev Event, d *DynInst)
	// Steer is called once per program instruction, at the single point
	// where the steering decision is made (the first dispatch attempt).
	Steer(dec *SteerDecision)
	// Cycle is called once per simulated cycle, after every stage has run.
	// A fast-forwarded idle window arrives as one call with N > 1: the
	// machine state (and therefore the sample) is provably constant across
	// the window, so one sample stands for all N cycles.
	Cycle(s *CycleSample)
}

// SetProbe installs (or, with nil, removes) the machine's probe.
func (m *Machine) SetProbe(p Probe) { m.probe = p }

// FetchInfo describes one instruction entering the decode queue.
type FetchInfo struct {
	// ID is the probe-scoped fetch id (1-based, assigned in fetch order).
	// DynInst.FetchID carries it through dispatch and beyond, so event
	// streams can be joined back to fetch records. Fetch ids exist only
	// while a probe is attached.
	ID uint64
	// Seq is the architectural (oracle) sequence number.
	Seq uint64
	// PC and Inst identify the static instruction.
	PC   int
	Inst isa.Inst
	// Mispredict reports that this is a control transfer the front end
	// mispredicted: fetch stalls after it until the branch resolves.
	Mispredict bool
}

// SteerReason classifies how a steering decision's final placement came
// about.
type SteerReason uint8

const (
	// ReasonPolicy: the policy's answer stood unmodified.
	ReasonPolicy SteerReason = iota
	// ReasonForced: a datapath constraint forced the cluster; the policy
	// was consulted (its tables train on every instruction) but overridden.
	ReasonForced
	// ReasonClamped: the policy answered an out-of-range cluster and the
	// machine clamped it to the integer cluster.
	ReasonClamped
	// ReasonCapability: the capability safety net moved the instruction to
	// a cluster whose functional units can execute it.
	ReasonCapability
	// ReasonFIFO: the Palacharla/Jouppi/Smith cluster+FIFO heuristic
	// overrode the choice (IQFIFO mode only).
	ReasonFIFO
	// NumSteerReasons bounds the enum for counting arrays.
	NumSteerReasons
)

// String names the reason.
func (r SteerReason) String() string {
	switch r {
	case ReasonPolicy:
		return "policy"
	case ReasonForced:
		return "forced"
	case ReasonClamped:
		return "clamped"
	case ReasonCapability:
		return "capability"
	case ReasonFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("SteerReason(%d)", uint8(r))
	}
}

// SteerDecision is one steering decision, captured at decision time (the
// first dispatch attempt of a program instruction). Only the first
// NumClusters entries of the per-cluster arrays are meaningful.
type SteerDecision struct {
	Cycle   uint64
	ProgSeq uint64
	PC      int
	Inst    isa.Inst
	// Forced is the datapath constraint (AnyCluster when the policy was
	// free to choose); Policy is the policy's raw answer; Final is the
	// placement dispatch will use if it dispatches this cycle (in IQFIFO
	// mode a structural stall re-runs the FIFO half of the heuristic on a
	// later attempt, so the eventual slot can differ).
	Forced ClusterID
	Policy ClusterID
	Final  ClusterID
	// Reason states which mechanism decided Final.
	Reason SteerReason
	// NumClusters sizes the arrays below.
	NumClusters int
	// Ready and IQLen are each cluster's ready count and issue-queue
	// occupancy at decision time; IQFree is the remaining queue capacity.
	Ready  [config.MaxClusters]int
	IQLen  [config.MaxClusters]int
	IQFree [config.MaxClusters]int
}

// StallClass attributes one simulated cycle to the reason the machine did
// (or did not) make forward progress, judged at the commit point: a cycle
// that retires is committing; otherwise the oldest in-flight instruction
// (or, with an empty window, the front end) is the critical resource. The
// taxonomy is total and exclusive — every cycle lands in exactly one
// class, and per-run class totals sum exactly to stats.Run.Cycles
// (TestGoldenProbeInvariants enforces both across the golden grid).
type StallClass uint8

const (
	// ClassCommitting: at least one instruction retired this cycle.
	ClassCommitting StallClass = iota
	// ClassExecute: the oldest instruction is mid-execution (functional
	// unit, cache access or address generation); raw execution latency.
	ClassExecute
	// ClassFetchStall: nothing in flight and the front end has not
	// delivered (I-cache miss stall or front-end pipeline fill).
	ClassFetchStall
	// ClassMispredictRecovery: nothing in flight and fetch is stalled on
	// an unresolved mispredicted branch, or the front end is refilling
	// directly after a redirect.
	ClassMispredictRecovery
	// ClassCopyWait: the oldest instruction is an inter-cluster copy, or
	// waits on an operand that an inserted copy must deliver — the paper's
	// communication penalty, seen from the commit point.
	ClassCopyWait
	// ClassOperandWait: the oldest instruction waits on a locally
	// produced operand.
	ClassOperandWait
	// ClassFUContention: the oldest instruction is ready but lost
	// structural arbitration — functional units, issue width, an
	// inter-cluster bus, or a D-cache port.
	ClassFUContention
	// ClassROBFull: the oldest instruction is executing and dispatch is
	// blocked on the in-flight window limit.
	ClassROBFull
	// ClassLSQBlock: the oldest load is blocked behind an earlier store
	// with a pending address or data, or dispatch is blocked on LSQ
	// capacity.
	ClassLSQBlock
	// ClassIdle: the machine is fully drained (program ended).
	ClassIdle
	// NumStallClasses bounds the enum for counting arrays.
	NumStallClasses
)

// String names the class (the strings are the wire/report vocabulary).
func (c StallClass) String() string {
	switch c {
	case ClassCommitting:
		return "committing"
	case ClassExecute:
		return "execute"
	case ClassFetchStall:
		return "fetch-stall"
	case ClassMispredictRecovery:
		return "mispredict-recovery"
	case ClassCopyWait:
		return "copy-wait"
	case ClassOperandWait:
		return "operand-wait"
	case ClassFUContention:
		return "fu-contention"
	case ClassROBFull:
		return "rob-full"
	case ClassLSQBlock:
		return "lsq-block"
	case ClassIdle:
		return "idle"
	default:
		return fmt.Sprintf("StallClass(%d)", uint8(c))
	}
}

// CycleSample is the per-cycle introspection record. Only the first
// NumClusters entries of the per-cluster arrays are meaningful. The
// buffer is reused; probes must copy what they keep.
type CycleSample struct {
	// Cycle is the sampled cycle; N is how many consecutive identical
	// cycles this sample stands for (N > 1 only for a fast-forwarded idle
	// window starting at Cycle, whose state is provably constant).
	Cycle uint64
	N     uint64
	// Class attributes the cycle (all N of them) to a stall taxonomy
	// bucket.
	Class StallClass
	// Measuring reports whether these cycles count toward stats.Run
	// (false during warm-up). Attribution that must reconcile with
	// Run.Cycles sums only measuring samples.
	Measuring bool
	// Retired is the number of instructions committed this cycle (always
	// 0 for fast-forwarded windows).
	Retired int
	// NumClusters sizes the arrays below.
	NumClusters int
	// Ready is each cluster's ready count — exactly the values the
	// machine's balance histogram recorded for these cycles, so a probe
	// can reproduce stats.Run.Balance bit-for-bit via BalanceDiff.
	Ready [config.MaxClusters]int
	// IQLen is each cluster's issue-queue occupancy.
	IQLen [config.MaxClusters]int
	// BusUsed is the number of inter-cluster copies that left each source
	// cluster this cycle (always 0 for fast-forwarded windows).
	BusUsed [config.MaxClusters]int
	// ReplicatedRegs is the number of architectural registers currently
	// mapped in more than one cluster.
	ReplicatedRegs int
	// RobLen and DqLen are the reorder-buffer and decode-queue depths.
	RobLen int
	DqLen  int
}

// BalanceDiff reduces per-cluster ready counts to the balance histogram's
// scalar: on one and two clusters the paper's signed difference
// (ready[1] − ready[0], with ready[1] = 0 on a single cluster); on more
// clusters the max−min spread. Exported so probes can reproduce
// stats.Run.Balance from CycleSample.Ready bit-for-bit; the machine's own
// sampling goes through it too, so the two cannot drift.
//
//dca:hotpath
func BalanceDiff(ready []int) int {
	switch len(ready) {
	case 1:
		return -ready[0]
	case 2:
		return ready[1] - ready[0]
	default:
		lo, hi := ready[0], ready[0]
		for _, r := range ready[1:] {
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		return hi - lo
	}
}

// --- Guarded dispatch helpers (the only probe callsites) ---

// probeEvent forwards a pipeline event to the attached probe.
//
//dca:hotpath
func (m *Machine) probeEvent(ev Event, d *DynInst) {
	if m.probe != nil {
		m.probe.Event(m.cycle, ev, d)
	}
}

// probeFetched assigns the fetch id and forwards the fetch record. A
// detached machine leaves FetchID zero everywhere.
//
//dca:hotpath
func (m *Machine) probeFetched(fi *fetched) {
	if m.probe != nil {
		m.probeFetchSeq++
		fi.probeID = m.probeFetchSeq
		f := &m.probeFetchBuf
		f.ID = fi.probeID
		f.Seq = fi.step.Seq
		f.PC = fi.step.PC
		f.Inst = fi.step.Inst
		f.Mispredict = fi.mispredict
		m.probe.Fetch(m.cycle, f)
	}
}

// probeSteered captures the steering decision the dispatch stage just
// made. Final and Reason mirror resolveTarget's pure placement pipeline
// (clamp, capability safety net, FIFO heuristic), re-run here step by
// step so the record can say which mechanism decided.
//
//dca:hotpath
func (m *Machine) probeSteered(fi *fetched, forced, policy ClusterID) {
	if m.probe != nil {
		dec := &m.probeSteerBuf
		dec.Cycle = m.cycle
		dec.ProgSeq = fi.step.Seq
		dec.PC = fi.step.PC
		dec.Inst = fi.step.Inst
		dec.Forced = forced
		dec.Policy = policy
		nc := m.cfg.NumClusters()
		dec.NumClusters = nc
		for c := 0; c < nc; c++ {
			dec.Ready[c] = m.readySample[c]
			dec.IQLen[c] = m.iqs[c].Len()
			dec.IQFree[c] = m.iqs[c].Free()
		}
		target := fi.target
		reason := ReasonPolicy
		if forced != AnyCluster {
			reason = ReasonForced
		}
		if target < 0 || int(target) >= nc {
			target = IntCluster
			reason = ReasonClamped
		}
		if !m.fus[target].CanEverIssue(fi.step.Inst.Op) && nc > 1 {
			if c := m.nearestIn(m.capableClusters(fi.step.Inst.Op), target); c != AnyCluster {
				target = c
				reason = ReasonCapability
			}
		}
		if m.cfg.Mode == config.IQFIFO {
			if f := m.fifoCluster(fi, m.forcedByPC[fi.step.PC], target); f != target {
				target = f
				reason = ReasonFIFO
			}
		}
		dec.Final = target
		dec.Reason = reason
		m.probe.Steer(dec)
	}
}

// probeCycle classifies and forwards the per-cycle sample; n > 1 batches
// a fast-forwarded idle window whose state is constant.
//
//dca:hotpath
func (m *Machine) probeCycle(n uint64, retired int) {
	if m.probe != nil {
		s := &m.probeSample
		s.Cycle = m.cycle
		s.N = n
		s.Class = m.classifyCycle(retired)
		s.Measuring = m.measuring
		s.Retired = retired
		nc := m.cfg.NumClusters()
		s.NumClusters = nc
		for c := 0; c < nc; c++ {
			s.Ready[c] = m.readySample[c]
			s.IQLen[c] = m.iqs[c].Len()
			if n == 1 {
				s.BusUsed[c] = m.busUsed[c]
			} else {
				s.BusUsed[c] = 0
			}
		}
		s.ReplicatedRegs = m.rt.replicatedCount()
		s.RobLen = m.robLen
		s.DqLen = m.dqLen
		m.probe.Cycle(s)
	}
}

// classifyCycle attributes the cycle that just finished to a StallClass.
// The chain is a priority order over end-of-cycle state, so the taxonomy
// is total and exclusive by construction. Every clause reads only state
// that is stable across a fast-forwarded idle window (nothing completes,
// issues, dispatches or commits inside one), so one classification stands
// for a whole window and a skipping run attributes exactly like a
// tick-every-cycle run (TestProbeFastForwardIdentity). Runs only under
// probeCycle's guard.
func (m *Machine) classifyCycle(retired int) StallClass {
	if retired > 0 {
		return ClassCommitting
	}
	if m.robLen == 0 {
		// Nothing in flight: the front end is the story. The refill after a
		// redirect is charged to the misprediction: the first post-redirect
		// fetch group is still in the front-end pipeline (availableAt within
		// FrontEndDepth+1 of the redirect), or fetch is serving the
		// redirect-imposed one-cycle stall.
		if m.waitingBranch {
			return ClassMispredictRecovery
		}
		if m.dqLen > 0 {
			if m.lastRedirect > 0 && m.dqFront().availableAt <= m.lastRedirect+uint64(m.cfg.FrontEndDepth)+1 {
				return ClassMispredictRecovery
			}
			return ClassFetchStall
		}
		if !m.fetchDone {
			if m.lastRedirect > 0 && m.fetchStallUntil == m.lastRedirect+1 {
				return ClassMispredictRecovery
			}
			return ClassFetchStall
		}
		return ClassIdle
	}
	d := m.robFront()
	if d.IsCopy {
		// Commit is blocked at an inter-cluster copy, whatever its state:
		// communication penalty.
		return ClassCopyWait
	}
	switch d.state {
	case stateWaiting:
		if d.issueReady {
			return ClassFUContention
		}
		for i := 0; i < d.numSrcs; i++ {
			if !d.srcReady[i] && d.srcViaCopy[i] {
				return ClassCopyWait
			}
		}
		return ClassOperandWait
	case stateMemWait:
		// A load parked in the LSQ: blocked by disambiguation, or eligible
		// but starved of a D-cache port this cycle.
		if m.ldst.classify(d, m.files) == loadBlocked {
			return ClassLSQBlock
		}
		return ClassFUContention
	case stateDone:
		if d.isStore {
			// Commit needs the store's data and a D-cache port.
			if d.numSrcs > 1 && !m.files[d.Cluster].Ready(d.srcPhys[1]) {
				if d.srcViaCopy[1] {
					return ClassCopyWait
				}
				return ClassOperandWait
			}
			return ClassFUContention
		}
		// The head completed after commit ran this cycle; it retires next
		// cycle. Charge it like an executing head.
		return m.classifyExecuting()
	default: // stateIssued
		return m.classifyExecuting()
	}
}

// classifyExecuting refines "the head is mid-execution": if dispatch is
// simultaneously blocked on a window resource (in-flight limit, LSQ
// capacity), the cycle is the classic window-full stall; otherwise it is
// raw execution latency.
func (m *Machine) classifyExecuting() StallClass {
	if m.dqLen > 0 {
		fi := m.dqFront()
		if fi.availableAt <= m.cycle && fi.steered {
			if m.progInFlight+1 > m.cfg.MaxInFlight {
				return ClassROBFull
			}
			if fi.step.Inst.Op.IsMem() && m.ldst.Free() < 1 {
				return ClassLSQBlock
			}
		}
	}
	return ClassExecute
}
