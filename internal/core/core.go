package core
