package core

// Event-driven fast-forward: when the cycle about to be simulated is
// provably a no-op for every pipeline stage, the machine advances directly
// to the next cycle at which any stage can act — the earliest pending
// completion event in the timing wheel, a fetch-stall expiry, or the
// decode-queue front's arrival from the front-end pipeline — instead of
// stepping cycle-by-cycle.
//
// The no-op predicate (ffIdle) is deliberately conservative: each per-unit
// check must hold not only for the current cycle but for every cycle of the
// skipped window, which follows from the checks only depending on state
// that changes through completion events, commits, issues or dispatches —
// none of which the window contains. The only per-cycle work an idle cycle
// performs is the workload-balance sample and the steering policy's OnCycle
// hook; the sample is batched (the ready counts cannot change across the
// window) and OnCycle is replayed per cycle because the balance-metric
// windows and the priority scheme's epochs are cycle-stateful. The mode is
// therefore bit-identity-preserving: the differential harness's 153 golden
// digests, the 19-scheme experiments grid and the FuzzFastForward lock-step
// fuzz target all run with it enabled. DESIGN.md ("Fast-forward invariant")
// states the exact predicate.

// SetFastForward toggles event-driven fast-forward. It is on by default
// and preserves results bit-for-bit; the knob exists for the differential
// fast-forward test suite (which locks a skipping machine against a
// tick-every-cycle one) and for debugging, not for correctness.
func (m *Machine) SetFastForward(on bool) { m.fastForward = on }

// FastForward reports whether event-driven fast-forward is enabled.
func (m *Machine) FastForward() bool { return m.fastForward }

// ffIdle reports whether the cycle about to be simulated is provably a
// no-op for every stage. Each clause must be stable across the whole
// skipped window, not just the current cycle; see the file comment.
//
//dca:hotpath
func (m *Machine) ffIdle() bool {
	// Fetch: finished, stalled on an unresolved branch, or stalled until a
	// future cycle (ffWake clamps the jump to the stall expiry).
	if !m.fetchDone && !m.waitingBranch && m.cycle >= m.fetchStallUntil {
		return false
	}
	// Completion: no wheel event due this cycle.
	if m.evtHead[m.cycle&uint64(len(m.evtHead)-1)] != nil {
		return false
	}
	// Commit: the ROB is empty, its head is still executing, or its head
	// is a store blocked on its data operand. Register readiness only
	// changes through wheel events, so the block is stable.
	if m.robLen > 0 {
		d := m.robFront()
		if d.state == stateDone &&
			!(d.isStore && d.numSrcs > 1 && !m.files[d.Cluster].Ready(d.srcPhys[1])) {
			return false
		}
	}
	// Issue: no cluster holds a ready waiting instruction. This is
	// stricter than "nothing can issue": a ready instruction blocked on an
	// occupied divide unit would become issuable mid-window purely by time
	// advancing, so any ready instruction forfeits the skip.
	for c := range m.iqs {
		if m.iqs[c].ReadyCount() > 0 {
			return false
		}
	}
	// Dispatch, cheap half: the decode queue is empty, its front is still
	// in the front-end pipeline (ffWake clamps to availableAt), or the
	// front is steered. An unsteered front must step normally — the first
	// dispatch attempt consults the policy and updates its tables. Checked
	// before the two expensive clauses below because an available unsteered
	// front is the most common reason dense code can't skip.
	dispatchable := false
	if m.dqLen > 0 {
		fi := m.dqFront()
		if fi.availableAt <= m.cycle {
			if !fi.steered {
				return false
			}
			dispatchable = true
		}
	}
	// Memory: every load eligible for an access is blocked behind an
	// earlier store whose address or data is pending — both only change
	// through wheel events.
	if !m.ldst.allBlocked(m.files) {
		return false
	}
	// Dispatch, structural half: an already-steered available front must
	// fail a structural resource check; a front that passes every pure
	// check would dispatch (or consume a sequence number on a FIFO-slot
	// stall after it), so it forfeits the skip.
	if dispatchable {
		fi := m.dqFront()
		target := m.resolveTarget(fi)
		plans, nPlans, err := m.planCopies(fi, target)
		if err != nil || (nPlans > 0 && m.cfg.InterClusterBuses == 0) {
			return false // step normally and let dispatch surface the error
		}
		if !m.dispatchBlocked(fi, target, &plans, nPlans) {
			return false
		}
	}
	return true
}

// ffWake returns the next cycle at which a stage can act again: the
// earliest pending wheel event (the wheel invariant — one distinct
// completion cycle per slot, always strictly future — makes the slot scan
// find it in order), the fetch-stall expiry, or the decode-queue front's
// pipeline arrival. The jump is clamped so that a window with no pending
// wake-up at all still trips the no-commit watchdog on exactly the cycle
// cycle-by-cycle stepping would report.
//
//dca:hotpath
func (m *Machine) ffWake() uint64 {
	wake := m.lastCommitAt + watchdogCycles
	mask := uint64(len(m.evtHead) - 1)
	for i := uint64(1); i < uint64(len(m.evtHead)); i++ {
		if d := m.evtHead[(m.cycle+i)&mask]; d != nil {
			if d.completeAt < wake {
				wake = d.completeAt
			}
			break
		}
	}
	if !m.fetchDone && !m.waitingBranch && m.fetchStallUntil > m.cycle && m.fetchStallUntil < wake {
		wake = m.fetchStallUntil
	}
	if m.dqLen > 0 {
		if a := m.dqFront().availableAt; a > m.cycle && a < wake {
			wake = a
		}
	}
	return wake
}

// tryFastForward advances the machine across a provably idle stretch in one
// jump. Per skipped cycle only the steering policy's OnCycle hook runs (the
// balance-metric windows and the priority scheme's epochs are
// cycle-stateful, so the replay is required for bit-identity); the
// workload-balance sample is batched through stats.BalanceHist.RecordN
// because the per-cluster ready counts and the replicated-register count
// cannot change while every queue is quiescent.
//
//dca:hotpath
func (m *Machine) tryFastForward() {
	if !m.ffIdle() {
		return
	}
	wake := m.ffWake()
	if wake <= m.cycle {
		return
	}
	n := wake - m.cycle
	for c := range m.readySample {
		m.readySample[c] = m.iqs[c].ReadyCount()
	}
	for cyc := m.cycle; cyc < wake; cyc++ {
		m.steerer.OnCycle(cyc, m.readySample)
	}
	if m.measuring {
		m.run.Balance.RecordN(BalanceDiff(m.readySample), n)
		m.replicatedSum += n * uint64(m.rt.replicatedCount())
		m.cyclesMeasured += n
	}
	// One batched introspection sample stands for the whole window: the
	// classification and every sampled quantity are constant across it
	// (the same argument that lets the balance sample batch), so a probed
	// skipping run attributes exactly like a probed tick-every-cycle run.
	m.probeCycle(n, 0)
	m.cycle = wake
}
