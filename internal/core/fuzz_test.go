package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// genProgram builds a random but structurally valid, halting program:
// straight-line blocks of random ALU/memory operations threaded through
// bounded counted loops. It exercises the renamer, LSQ, branch machinery
// and copy insertion with operand patterns no hand-written test covers.
func genProgram(r *rand.Rand) *prog.Program {
	b := prog.NewBuilder("fuzz")
	b.Space("mem", 4096)

	// r20 = memory base; r21..r23 loop counters; r1..r12 data registers.
	b.La(isa.R(20), "mem")
	for i := 1; i <= 12; i++ {
		b.Li(isa.R(i), int32(r.Intn(1000)-500))
	}
	dataReg := func() isa.Reg { return isa.R(1 + r.Intn(12)) }

	nBlocks := 2 + r.Intn(3)
	skipN := 0
	for blk := 0; blk < nBlocks; blk++ {
		loop := r.Intn(2) == 0
		label := ""
		if loop {
			label = "loop" + string(rune('a'+blk))
			b.Li(isa.R(21+blk%3), int32(2+r.Intn(20)))
			b.Label(label)
		}
		nInsts := 3 + r.Intn(15)
		for i := 0; i < nInsts; i++ {
			switch r.Intn(10) {
			case 0, 1, 2:
				ops := []isa.Opcode{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT}
				b.Op3(ops[r.Intn(len(ops))], dataReg(), dataReg(), dataReg())
			case 3:
				b.OpI(isa.ADDI, dataReg(), dataReg(), int32(r.Intn(64)-32))
			case 4:
				// Shift by a bounded immediate.
				b.OpI(isa.SRAI, dataReg(), dataReg(), int32(r.Intn(8)))
			case 5:
				if r.Intn(2) == 0 {
					b.Mul(dataReg(), dataReg(), dataReg())
				} else {
					b.Div(dataReg(), dataReg(), dataReg())
				}
			case 6, 7:
				// Bounded memory access within the scratch buffer.
				off := int32(r.Intn(500) * 8)
				if r.Intn(2) == 0 {
					b.Ld(dataReg(), isa.R(20), off)
				} else {
					b.St(dataReg(), isa.R(20), off)
				}
			case 8:
				// Forward skip over one instruction.
				skip := fmt.Sprintf("skip%d", skipN)
				skipN++
				b.Beq(dataReg(), dataReg(), skip) // may or may not be taken
				b.OpI(isa.ADDI, dataReg(), dataReg(), 1)
				b.Label(skip)
			case 9:
				b.Xor(dataReg(), dataReg(), dataReg())
			}
		}
		if loop {
			ctr := isa.R(21 + blk%3)
			b.Addi(ctr, ctr, -1)
			b.Bne(ctr, isa.R(0), label)
		}
	}
	b.Halt()
	return b.MustBuild()
}

// fuzzSteerer makes adversarial steering decisions (random cluster per
// instruction) to stress copy insertion harder than any real policy.
type fuzzSteerer struct {
	NopSteerer
	r *rand.Rand
}

func (s *fuzzSteerer) Name() string { return "fuzz" }

func (s *fuzzSteerer) Steer(info *SteerInfo) ClusterID {
	if info.Forced != AnyCluster {
		return info.Forced
	}
	return ClusterID(s.r.Intn(2))
}

// TestFuzzRandomProgramsCoSimulate generates random programs and checks,
// for every machine configuration, that (a) the timing simulator commits
// exactly the instructions the functional emulator executes, (b) no
// resources leak, and (c) nothing deadlocks.
func TestFuzzRandomProgramsCoSimulate(t *testing.T) {
	const seeds = 30
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)

		ref := emu.New(p)
		wantInsts, err := ref.Run(5_000_000)
		if err != nil {
			t.Fatalf("seed %d: emulator: %v", seed, err)
		}
		if !ref.Halted {
			t.Fatalf("seed %d: generated program did not halt", seed)
		}

		configs := []*config.Config{config.Clustered(), config.Base(), config.UpperBound(), config.FIFOClustered(), config.Symmetric()}
		for _, cfg := range configs {
			var st Steerer = &fuzzSteerer{r: rand.New(rand.NewSource(seed))}
			if cfg.Name == "base" || cfg.Name == "upper-bound" {
				st = NaiveSteerer{}
			}
			m, err := New(cfg, p, st)
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, cfg.Name, err)
			}
			run, err := m.Run(0)
			if err != nil {
				t.Fatalf("seed %d/%s: %v (%s)", seed, cfg.Name, err, m.dumpState())
			}
			if run.Instructions != wantInsts {
				t.Fatalf("seed %d/%s: committed %d, emulator executed %d",
					seed, cfg.Name, run.Instructions, wantInsts)
			}
			checkRegisterConservation(t, m)
			if run.IPC() <= 0 || run.IPC() > 16 {
				t.Errorf("seed %d/%s: IPC %.2f out of range", seed, cfg.Name, run.IPC())
			}
		}
	}
}

// TestFuzzArchitecturalResults cross-checks final architectural register
// values: the emulator run standalone and the emulator embedded as the
// core's oracle must agree (guards against the timing model stepping its
// oracle incorrectly, e.g. double-stepping on I-cache misses).
func TestFuzzArchitecturalResults(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := genProgram(r)

		ref := emu.New(p)
		if _, err := ref.Run(5_000_000); err != nil {
			t.Fatal(err)
		}

		m, err := New(config.Clustered(), p, &fuzzSteerer{r: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < isa.NumIntRegs; i++ {
			if m.oracle.Reg[i] != ref.Reg[i] {
				t.Fatalf("seed %d: r%d differs: oracle %d, reference %d",
					seed, i, m.oracle.Reg[i], ref.Reg[i])
			}
		}
	}
}
