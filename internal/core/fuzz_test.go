package core

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/rdg"
)

// fuzzSteerer makes adversarial steering decisions (random cluster per
// instruction) to stress copy insertion harder than any real policy.
type fuzzSteerer struct {
	NopSteerer
	r *rand.Rand
}

func (s *fuzzSteerer) Name() string { return "fuzz" }

func (s *fuzzSteerer) Steer(info *SteerInfo) ClusterID {
	if info.Forced != AnyCluster {
		return info.Forced
	}
	return ClusterID(s.r.Intn(info.Clusters()))
}

// fuzzConfigs is the machine matrix the co-simulation checks sweep: the
// paper's four two-cluster machines, the symmetric control, and N-cluster
// crossbar/ring fabrics whose non-uniform copy latencies exercise the
// nearest-cluster sourcing paths.
func fuzzConfigs() []*config.Config {
	return []*config.Config{
		config.Clustered(),
		config.Base(),
		config.UpperBound(),
		config.FIFOClustered(),
		config.Symmetric(),
		config.ClusteredN(4),
		config.ClusteredNRing(4),
		config.ClusteredN(8),
	}
}

// steererFor picks the co-simulation steering policy: the machines without
// steering freedom get the conventional split, everything else the
// adversarial random steerer.
func steererFor(cfg *config.Config, seed int64) Steerer {
	if cfg.Name == "base" || cfg.Name == "upper-bound" {
		return NaiveSteerer{}
	}
	return &fuzzSteerer{r: rand.New(rand.NewSource(seed))}
}

// coSimulate runs the program on the machine and cross-checks it against
// the functional reference: same committed instruction count, same final
// architectural state, no resource leaks, no deadlock.
func coSimulate(t *testing.T, cfg *config.Config, seed int64) {
	t.Helper()
	p := rdg.RandomProgram(seed)

	ref := emu.New(p)
	wantInsts, err := ref.Run(5_000_000)
	if err != nil {
		t.Fatalf("seed %d: emulator: %v", seed, err)
	}
	if !ref.Halted {
		t.Fatalf("seed %d: generated program did not halt", seed)
	}

	m, err := New(cfg, p, steererFor(cfg, seed))
	if err != nil {
		t.Fatalf("seed %d/%s: %v", seed, cfg.Name, err)
	}
	run, err := m.Run(0)
	if err != nil {
		t.Fatalf("seed %d/%s: %v (%s)", seed, cfg.Name, err, m.dumpState())
	}
	if run.Instructions != wantInsts {
		t.Fatalf("seed %d/%s: committed %d, emulator executed %d",
			seed, cfg.Name, run.Instructions, wantInsts)
	}
	oracleReg := m.OracleRegisters()
	for i := 0; i < isa.NumRegs; i++ {
		if oracleReg[i] != ref.Reg[i] {
			t.Fatalf("seed %d/%s: r%d differs: oracle %d, reference %d",
				seed, cfg.Name, i, oracleReg[i], ref.Reg[i])
		}
	}
	checkRegisterConservation(t, m)
	if run.IPC() <= 0 || run.IPC() > 16 {
		t.Errorf("seed %d/%s: IPC %.2f out of range", seed, cfg.Name, run.IPC())
	}
}

// TestFuzzRandomProgramsCoSimulate sweeps rdg random programs over every
// machine configuration, checking that the timing simulator commits
// exactly the instructions the functional emulator executes, leaks no
// resources, and never deadlocks.
func TestFuzzRandomProgramsCoSimulate(t *testing.T) {
	const seeds = 30
	for seed := int64(0); seed < seeds; seed++ {
		for _, cfg := range fuzzConfigs() {
			coSimulate(t, cfg, seed)
		}
	}
}

// FuzzCoSimulate is the native fuzz target over the same property: the
// input selects an rdg program seed and a machine configuration. The
// checked-in corpus (testdata/fuzz/FuzzCoSimulate) pins seeds whose
// programs previously exercised the LSQ edge cases (store-to-load
// forwarding, partial overlap, address-unknown blocking) and the
// copy-latency paths (FP/int cross-cluster chains, ring fabrics with
// non-uniform hop counts); CI runs a fixed-budget smoke
// (`go test -fuzz FuzzCoSimulate -fuzztime 20s`).
func FuzzCoSimulate(f *testing.F) {
	// Seeds chosen by inspecting generated programs: 7 and 9 have dense
	// store/load aliasing over the hot offsets, 19 and 23 mix FP chains
	// with integer consumers (maximum copy pressure under adversarial
	// steering), 31 exercises call/return. Each is paired with both a
	// two-cluster and a ring configuration.
	for _, c := range []struct {
		seed   int64
		cfgIdx uint8
	}{
		{7, 0}, {7, 6}, {9, 3}, {9, 7}, {19, 0}, {19, 6}, {23, 5}, {31, 4}, {1, 1}, {13, 2},
	} {
		f.Add(c.seed, c.cfgIdx)
	}
	configs := fuzzConfigs()
	f.Fuzz(func(t *testing.T, seed int64, cfgIdx uint8) {
		cfg := configs[int(cfgIdx)%len(configs)]
		coSimulate(t, cfg, seed)
	})
}
