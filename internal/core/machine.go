package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/stats"
)

// textBase is where the text segment lives in the simulated address space
// for instruction-cache purposes; it is disjoint from the data segment so
// code and data contend in the shared L2 without aliasing.
const textBase uint64 = 0x4000_0000

// watchdogCycles bounds the number of cycles without a commit before the
// simulator reports a deadlock instead of spinning forever.
const watchdogCycles = 100_000

// initialWheelSize is the starting span of the completion timing wheel in
// cycles. It comfortably exceeds the worst event horizon of the default
// memory hierarchy (an L1+L2 miss to DRAM is ~30 cycles); schedule grows
// the wheel if a configuration ever schedules further ahead.
const initialWheelSize = 128

// Machine is the cycle-level timing simulator.
//
// The steady-state cycle loop is allocation-free: all per-cycle and
// per-instruction bookkeeping lives in preallocated, pooled or intrusive
// structures (the DynInst pool, the decode and reorder rings, the
// completion timing wheel, the reused SteerInfo). TestSteadyStateCycleAllocs
// enforces the invariant; ARCHITECTURE.md documents it.
type Machine struct {
	cfg     *config.Config
	prog    *prog.Program
	oracle  Oracle
	steerer Steerer

	// oracleErr latches a fetch-stage oracle failure (a replayed trace
	// exhausting mid-run); runUntil surfaces it instead of finishing on a
	// stream that diverged from what live fetch would have seen.
	oracleErr error

	hier *mem.Hierarchy
	bp   bpred.DirPredictor
	btb  *bpred.BTB
	ras  *bpred.RAS

	cycle uint64
	seq   uint64

	// Per-cluster state is flattened into value slices: one contiguous
	// block per kind instead of a pointer chase per cluster per access.
	files []regFile
	iqs   []issueQueue
	fus   []fuPool
	rt    *renameTable
	ldst  *lsq

	// rob is the reorder buffer as a ring: robHead indexes the oldest
	// in-flight instruction, robLen counts occupancy. The backing array is
	// a power of two and grows only if a configuration exceeds it.
	rob     []*DynInst
	robHead int
	robLen  int

	// decodeQ is the fetched-instruction ring (values, not pointers: a
	// fetch never allocates). dqHead indexes the oldest undispatched entry.
	decodeQ []fetched
	dqHead  int
	dqLen   int

	// fetchStallUntil delays fetch (I-cache misses, post-redirect).
	fetchStallUntil uint64
	// l1iLineShift is log2 of the L1I line size when it is a power of two
	// (the universal case), -1 otherwise; fetch's per-instruction line
	// computation uses a shift instead of a 64-bit divide.
	l1iLineShift int8
	// waitBranchSeq is the ProgSeq of an unresolved mispredicted branch
	// fetch is stalled on; waitingBranch gates it.
	waitBranchSeq uint64
	waitingBranch bool
	fetchDone     bool

	// evtHead/evtTail form the completion timing wheel: slot c&mask holds
	// the intrusive list (DynInst.nextEvt) of instructions completing at
	// cycle c, in schedule order. len(evtHead) is a power of two strictly
	// greater than the furthest-ahead completion ever scheduled.
	evtHead []*DynInst
	evtTail []*DynInst

	// dynPool recycles DynInsts at commit; dispatch draws from it before
	// touching the heap.
	dynPool []*DynInst

	// steerBuf is the SteerInfo handed to the policy, reused across calls
	// (policies must not retain it; see Steerer).
	steerBuf SteerInfo

	// wakeBuf collects the registers made ready by this cycle's
	// completions; the waiter-list walks run after the whole completion
	// batch (matching the old end-of-batch queue scan, which the
	// criticality test in noteCopyArrival depends on).
	wakeBuf []wakePair

	// Per-cycle resource counters.
	dcachePortsUsed int
	busUsed         []int

	// readySample holds this cycle's per-cluster ready counts for
	// steering decisions (index = cluster).
	readySample []int

	// forcedByPC caches forcedCluster per static instruction: the datapath
	// constraint is a pure function of the instruction and the machine
	// configuration, so dispatch reads a table instead of re-deriving it.
	forcedByPC []ClusterID

	// Measurement state.
	measuring      bool
	run            stats.Run
	replicatedSum  uint64
	cyclesMeasured uint64
	committedProg  uint64
	lastCommitAt   uint64

	haltCommitted bool
	progInFlight  int
	issueBuf      []*DynInst
	loadBuf       []*DynInst

	// probe is the introspection seam (see probe.go); nil by default, and
	// every callsite is guarded so a detached machine pays one pointer
	// test per hook. The buffers below are reused across calls so probing
	// never allocates on the cycle loop.
	probe         Probe
	probeFetchSeq uint64
	probeFetchBuf FetchInfo
	probeSteerBuf SteerDecision
	probeSample   CycleSample
	// lastRedirect is the cycle of the most recent post-misprediction
	// fetch redirect (0 = never). It feeds only the probe's stall
	// taxonomy — an unconditional store keeps the hot path branch-free.
	lastRedirect uint64

	// warmed is the committed-instruction budget the last Warm call was
	// asked for; Measure adds its own budget on top so the two-phase run
	// targets the same absolute commit count as a single-loop run.
	warmed uint64

	// fastForward enables event-driven skipping of provably idle cycles
	// (on by default; see fastforward.go for the no-op predicate).
	fastForward bool
}

// nextPow2 returns the smallest power of two >= n (and >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a machine running p under cfg with the given steering policy,
// fetching from a fresh functional emulator over p.
func New(cfg *config.Config, p *prog.Program, st Steerer) (*Machine, error) {
	return NewWithOracle(cfg, p, st, nil)
}

// NewWithOracle builds a machine fetching from the supplied oracle (nil
// means a fresh EmuOracle over p). The oracle's stream must have been
// produced by p — the fetch stage indexes p's text by the stream's PCs —
// and must start at the beginning of the program; see Oracle.
func NewWithOracle(cfg *config.Config, p *prog.Program, st Steerer, o Oracle) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	btb, err := bpred.NewBTB(cfg.BTBSets, cfg.BTBAssoc)
	if err != nil {
		return nil, err
	}
	if o == nil {
		o = EmuOracle{M: emu.New(p)}
	}
	m := &Machine{
		cfg:         cfg,
		prog:        p,
		oracle:      o,
		steerer:     st,
		hier:        hier,
		bp:          bpred.NewPaperPredictor(),
		btb:         btb,
		ras:         bpred.NewRAS(cfg.RASEntries),
		rt:          newRenameTable(cfg.NumClusters()),
		ldst:        newLSQ(cfg.MaxInFlight),
		rob:         make([]*DynInst, nextPow2(4*cfg.MaxInFlight)),
		decodeQ:     make([]fetched, nextPow2(4*cfg.FetchWidth)),
		evtHead:     make([]*DynInst, initialWheelSize),
		evtTail:     make([]*DynInst, initialWheelSize),
		busUsed:     make([]int, cfg.NumClusters()),
		readySample: make([]int, cfg.NumClusters()),
		fastForward: true,
	}
	m.files = make([]regFile, 0, cfg.NumClusters())
	m.iqs = make([]issueQueue, 0, cfg.NumClusters())
	m.fus = make([]fuPool, 0, cfg.NumClusters())
	for _, cl := range cfg.Clusters {
		m.files = append(m.files, *newRegFile(cl.PhysRegs))
		m.iqs = append(m.iqs, *newIssueQueue(cl, cfg.Mode))
		m.fus = append(m.fus, *newFUPool(cl, cfg.Lat))
	}
	if err := m.rt.initArchState(m.files); err != nil {
		return nil, err
	}
	// IssueWidth is per-cluster configuration, constant for the machine's
	// lifetime: fill the reused SteerInfo once instead of per instruction.
	for c := 0; c < cfg.NumClusters(); c++ {
		m.steerBuf.IssueWidth[c] = cfg.Clusters[c].IssueWidth
	}
	m.l1iLineShift = -1
	if lb := cfg.Mem.L1I.LineBytes; lb > 0 && lb&(lb-1) == 0 {
		m.l1iLineShift = int8(bits.TrailingZeros(uint(lb)))
	}
	m.forcedByPC = make([]ClusterID, len(p.Text))
	for pc, in := range p.Text {
		m.forcedByPC[pc] = m.forcedCluster(in)
	}
	m.run.Scheme = st.Name()
	m.run.Benchmark = p.Name
	m.run.Steered = make([]uint64, cfg.NumClusters())
	return m, nil
}

// fetched is a decoded instruction waiting for dispatch.
type fetched struct {
	step        emu.Step
	availableAt uint64
	mispredict  bool
	// steered caches the policy's decision: steering happens once at
	// decode, so dispatch retries after a structural stall must not
	// consult the policy (and update its tables) again.
	steered bool
	target  ClusterID
	// probeID is the probe-scoped fetch id (see Probe.Fetch); zero while
	// no probe is attached.
	probeID uint64
}

// Cycle returns the current cycle number.
func (m *Machine) Cycle() uint64 { return m.cycle }

// CommittedInstructions returns committed program instructions (copies
// excluded).
func (m *Machine) CommittedInstructions() uint64 { return m.committedProg }

// --- Allocation-free plumbing: pools, rings, and the timing wheel ---

// allocDyn takes a DynInst from the recycle pool, or the heap when the
// pool is dry (only before the in-flight population reaches steady state).
//
//dca:hotpath
func (m *Machine) allocDyn() *DynInst {
	if n := len(m.dynPool); n > 0 {
		d := m.dynPool[n-1]
		m.dynPool = m.dynPool[:n-1]
		return d
	}
	//dca:allow(noalloc: pool-dry fallback — runs only while the in-flight population is still growing toward steady state, which TestSteadyStateCycleAllocs pins)
	return new(DynInst)
}

// freeDyn recycles a committed DynInst. The pointer must not be used after
// this call (tracers are invoked before commit recycles; see Tracer).
//
//dca:hotpath
func (m *Machine) freeDyn(d *DynInst) {
	m.dynPool = append(m.dynPool, d)
}

// robPush appends to the reorder buffer ring.
//
//dca:hotpath
func (m *Machine) robPush(d *DynInst) {
	if m.robLen == len(m.rob) {
		m.robGrow()
	}
	m.rob[(m.robHead+m.robLen)&(len(m.rob)-1)] = d
	m.robLen++
}

// robFront returns the oldest in-flight instruction.
//
//dca:hotpath
func (m *Machine) robFront() *DynInst { return m.rob[m.robHead] }

// robPop removes the oldest in-flight instruction.
//
//dca:hotpath
func (m *Machine) robPop() {
	m.rob[m.robHead] = nil
	m.robHead = (m.robHead + 1) & (len(m.rob) - 1)
	m.robLen--
}

// robAt returns the i-th oldest in-flight instruction (0 = oldest).
//
//dca:hotpath
func (m *Machine) robAt(i int) *DynInst {
	return m.rob[(m.robHead+i)&(len(m.rob)-1)]
}

func (m *Machine) robGrow() {
	grown := make([]*DynInst, len(m.rob)*2)
	for i := 0; i < m.robLen; i++ {
		grown[i] = m.robAt(i)
	}
	m.rob = grown
	m.robHead = 0
}

// dqPush returns the slot for a newly fetched instruction.
//
//dca:hotpath
func (m *Machine) dqPush() *fetched {
	if m.dqLen == len(m.decodeQ) {
		m.dqGrow()
	}
	fi := &m.decodeQ[(m.dqHead+m.dqLen)&(len(m.decodeQ)-1)]
	m.dqLen++
	return fi
}

// dqGrow doubles the decode-queue ring (amortized, cold).
func (m *Machine) dqGrow() {
	grown := make([]fetched, len(m.decodeQ)*2)
	for i := 0; i < m.dqLen; i++ {
		grown[i] = m.decodeQ[(m.dqHead+i)&(len(m.decodeQ)-1)]
	}
	m.decodeQ = grown
	m.dqHead = 0
}

// dqFront returns the oldest undispatched fetched instruction.
//
//dca:hotpath
func (m *Machine) dqFront() *fetched { return &m.decodeQ[m.dqHead] }

// dqPop consumes the front of the decode queue.
//
//dca:hotpath
func (m *Machine) dqPop() {
	m.dqHead = (m.dqHead + 1) & (len(m.decodeQ) - 1)
	m.dqLen--
}

// schedule inserts d into the completion wheel at d.completeAt. Events are
// always strictly in the future, and the wheel is kept wider than the
// furthest horizon, so slot collisions between different cycles cannot
// occur; within a cycle, insertion order is preserved (tail append).
//
//dca:hotpath
func (m *Machine) schedule(d *DynInst) {
	for d.completeAt-m.cycle >= uint64(len(m.evtHead)) {
		m.growWheel()
	}
	slot := d.completeAt & uint64(len(m.evtHead)-1)
	d.nextEvt = nil
	if tail := m.evtTail[slot]; tail != nil {
		tail.nextEvt = d
	} else {
		m.evtHead[slot] = d
	}
	m.evtTail[slot] = d
}

// growWheel doubles the timing wheel. Pending events occupy one distinct
// completion cycle per slot (the wheel invariant), so re-slotting each
// old chain wholesale preserves per-cycle insertion order.
func (m *Machine) growWheel() {
	oldHead := m.evtHead
	m.evtHead = make([]*DynInst, len(oldHead)*2)
	m.evtTail = make([]*DynInst, len(oldHead)*2)
	for _, d := range oldHead {
		if d == nil {
			continue
		}
		slot := d.completeAt & uint64(len(m.evtHead)-1)
		m.evtHead[slot] = d
		for ; d != nil; d = d.nextEvt {
			m.evtTail[slot] = d
		}
	}
}

// Run simulates until max committed program instructions (0 = until HALT)
// and returns the measurement record.
func (m *Machine) Run(max uint64) (*stats.Run, error) {
	return m.RunWithWarmup(0, max)
}

// RunWithWarmup simulates warmup committed instructions without measuring
// (caches and predictors stay warm), resets the statistics, then measures
// the next measure instructions (0 = until HALT). It is Warm followed by
// Measure; warm-state checkpointing (see Checkpoint) splits the two so a
// grid can pay for the warm phase once per reusable key.
func (m *Machine) RunWithWarmup(warmup, measure uint64) (*stats.Run, error) {
	if err := m.Warm(warmup); err != nil {
		return nil, err
	}
	return m.Measure(measure)
}

// Warm simulates until warmup program instructions have committed (or HALT),
// without measuring: caches, predictors and steering state warm up exactly
// as they would under RunWithWarmup. A commit batch is never split, so the
// machine may overshoot warmup by up to the retire width minus one; the
// requested budget is recorded so Measure targets the same absolute commit
// count an unbroken run would.
func (m *Machine) Warm(warmup uint64) error {
	m.warmed = warmup
	if warmup == 0 {
		return nil
	}
	m.measuring = false
	return m.runUntil(warmup)
}

// Measure measures the next measure instructions (0 = until HALT) after a
// Warm call (or from reset on a fresh machine) and finishes the record.
func (m *Machine) Measure(measure uint64) (*stats.Run, error) {
	target := uint64(0)
	if measure > 0 {
		target = m.warmed + measure
	}
	return m.measureTo(target)
}

// measureTo turns on measurement and simulates until target committed
// program instructions (0 = until HALT), finishing the record. The target
// is absolute — Measure passes warmed+measure — so a warm phase that
// overshot its budget measures to the same cycle an unbroken run would.
// A machine that halted during warm-up never begins measuring, matching
// the single-loop behaviour this decomposition replaced.
func (m *Machine) measureTo(target uint64) (*stats.Run, error) {
	if !m.haltCommitted {
		m.measuring = true
		m.beginMeasurement()
	}
	if err := m.runUntil(target); err != nil {
		return nil, err
	}
	m.finishMeasurement()
	return &m.run, nil
}

// runUntil is the simulation loop shared by the warm and measure phases:
// step — fast-forwarding across provably idle stretches — until target
// committed program instructions (0 = until HALT), with the no-commit
// watchdog.
func (m *Machine) runUntil(target uint64) error {
	for !m.haltCommitted && (target == 0 || m.committedProg < target) {
		if m.fastForward {
			m.tryFastForward()
		}
		if err := m.step(); err != nil {
			return err
		}
		// An oracle failure ends the run even when this same cycle reached
		// the commit target: live fetch would still have run this cycle,
		// updating I-cache and predictor statistics, so a result produced
		// past the failure point cannot be trusted to be bit-identical.
		if m.oracleErr != nil {
			return m.oracleErr
		}
		if m.cycle-m.lastCommitAt > watchdogCycles {
			return fmt.Errorf("core: no commit for %d cycles at cycle %d (deadlock?)", watchdogCycles, m.cycle)
		}
	}
	return nil
}

func (m *Machine) beginMeasurement() {
	m.run.Cycles = 0
	m.run.Instructions = 0
	m.run.Copies = 0
	m.run.CriticalCopies = 0
	m.run.Balance = stats.BalanceHist{}
	for c := range m.run.Steered {
		m.run.Steered[c] = 0
	}
	m.run.Mispredicts = 0
	m.run.Branches = 0
	m.replicatedSum = 0
	m.cyclesMeasured = 0
	m.hier.L1D.Stat = mem.Stats{}
	m.hier.L1I.Stat = mem.Stats{}
}

func (m *Machine) finishMeasurement() {
	m.run.Cycles = m.cyclesMeasured
	if m.cyclesMeasured > 0 {
		m.run.ReplicatedRegsAvg = float64(m.replicatedSum) / float64(m.cyclesMeasured)
	}
	m.run.L1DMissRate = m.hier.L1D.Stat.MissRate()
	m.run.L1IMissRate = m.hier.L1I.Stat.MissRate()
}

// step simulates one cycle.
//
//dca:hotpath
func (m *Machine) step() error {
	// 1. Reset per-cycle resources.
	m.dcachePortsUsed = 0
	for i := range m.busUsed {
		m.busUsed[i] = 0
	}
	for c := range m.fus {
		m.fus[c].newCycle()
	}

	// 2. Commit (uses D-cache ports for stores).
	retired := m.commit()

	// 3. Completions and wakeup.
	m.complete()

	// 4. Sample workload balance and inform the steering policy.
	m.sample()

	// 5. Start eligible memory accesses.
	m.memStep()

	// 6. Issue per cluster (copies consume issue slots and buses).
	m.issue()

	// 7. Dispatch: steer, rename, insert copies.
	if err := m.dispatch(); err != nil {
		return err
	}

	// 8. Fetch from the oracle stream.
	m.fetch()

	// 9. Per-cycle introspection sample (no-op with no probe attached).
	m.probeCycle(1, retired)

	if m.measuring {
		m.cyclesMeasured++
	}
	m.cycle++
	return nil
}

// --- Fetch ---

//dca:hotpath
func lineOf(pc int, lineBytes int) uint64 {
	return (textBase + uint64(pc)*isa.Word) / uint64(lineBytes)
}

//dca:hotpath
func (m *Machine) fetch() {
	if m.fetchDone || m.waitingBranch || m.cycle < m.fetchStallUntil {
		return
	}
	lineBytes := m.cfg.Mem.L1I.LineBytes
	lineShift := m.l1iLineShift
	curLine := uint64(0)
	haveLine := false
	for n := 0; n < m.cfg.FetchWidth; n++ {
		if m.oracle.Halted() {
			m.fetchDone = true
			return
		}
		pc := m.oracle.PC()
		if pc < 0 {
			// The stream ended without a HALT (a replayed trace ran out).
			// Fail before touching the I-cache: continuing with a garbage
			// PC would perturb measured miss rates, and ending quietly
			// would yield a silently short run.
			m.fetchDone = true
			m.oracleErr = ErrOracleExhausted
			return
		}
		var line uint64
		if lineShift >= 0 {
			line = (textBase + uint64(pc)*isa.Word) >> uint(lineShift)
		} else {
			line = lineOf(pc, lineBytes)
		}
		if !haveLine || line != curLine {
			lat := m.hier.L1I.Access(textBase+uint64(pc)*isa.Word, false)
			if lat > m.cfg.Mem.L1I.HitLatency {
				// Miss: the line arrives after the miss latency; retry
				// then (the refill makes the next access hit).
				m.fetchStallUntil = m.cycle + uint64(lat-1)
				return
			}
			curLine, haveLine = line, true
		}
		// The oracle writes straight into the ring slot (no Step copies);
		// on error the slot is released again. A live emulator only
		// errors on malformed programs (a runaway indirect jump); a
		// replayer also errors on a truncated stream. Either way the
		// stream cannot continue: latch the error so the run fails loudly
		// instead of finishing on a quietly shortened stream.
		fi := m.dqPush()
		fi.mispredict = false
		fi.steered = false
		fi.availableAt = m.cycle + uint64(m.cfg.FrontEndDepth)
		if err := m.oracle.StepInto(&fi.step); err != nil {
			m.dqLen--
			m.fetchDone = true
			m.oracleErr = err
			return
		}
		st := &fi.step
		op := st.Inst.Op
		if op == isa.HALT {
			m.fetchDone = true
		}
		if op.IsBranch() {
			fi.mispredict = m.predictBranch(st)
			if m.measuring {
				m.run.Branches++
				if fi.mispredict {
					m.run.Mispredicts++
				}
			}
		}
		m.probeFetched(fi)
		if fi.mispredict {
			// Fetch stalls until the branch resolves; wrong-path
			// instructions are not simulated (see package comment).
			m.waitingBranch = true
			m.waitBranchSeq = st.Seq
			return
		}
		if op.IsBranch() && st.Taken {
			// At most one taken branch per fetch group.
			return
		}
	}
}

// predictBranch runs the predictors for a fetched control transfer and
// reports whether it mispredicts.
//
//dca:hotpath
func (m *Machine) predictBranch(st *emu.Step) bool {
	op := st.Inst.Op
	pc := st.PC
	switch {
	case op.IsCondBranch():
		pred := m.bp.Predict(pc)
		m.bp.Update(pc, st.Taken)
		return pred != st.Taken
	case op == isa.J:
		return false // direct target, known at decode
	case op == isa.JAL:
		m.ras.Push(pc + 1)
		return false
	case op == isa.JALR:
		m.ras.Push(pc + 1)
		target, ok := m.btb.Lookup(pc)
		m.btb.Update(pc, st.NextPC)
		return !ok || target != st.NextPC
	default: // JR: return prediction via RAS when it targets r31
		if st.Inst.Rs1 == isa.R(31) {
			target, ok := m.ras.Pop()
			return !ok || target != st.NextPC
		}
		target, ok := m.btb.Lookup(pc)
		m.btb.Update(pc, st.NextPC)
		return !ok || target != st.NextPC
	}
}

// --- Dispatch ---

// forcedCluster returns the datapath constraint for an instruction,
// derived from the machine's actual functional-unit placement: when
// exactly one cluster can execute the operation's unit class (on the
// paper's asymmetric machine, complex-integer ops must run in the integer
// cluster and anything touching an FP register in the FP cluster), the
// placement is forced there; on the base machine steerable integer code is
// also integer-cluster-only; on symmetric machines (config.Symmetric,
// config.ClusteredN) nothing is forced. AnyCluster means the steering
// policy chooses.
//
//dca:hotpath
func (m *Machine) forcedCluster(in isa.Inst) ClusterID {
	if m.cfg.NumClusters() == 1 {
		return IntCluster
	}
	if in.Op.Class() == isa.ClassComplexInt {
		if c := m.capableClusters(in.Op).Single(); c != AnyCluster {
			return c
		}
	}
	touchesFP := false
	if d, ok := in.Dst(); ok && d.IsFP() {
		touchesFP = true
	} else {
		var srcsBuf [2]isa.Reg
		for _, r := range in.Srcs(srcsBuf[:0]) {
			if r.IsFP() {
				touchesFP = true
				break
			}
		}
	}
	if touchesFP {
		var fp ClusterSet
		for c := 0; c < m.cfg.NumClusters(); c++ {
			if m.cfg.Clusters[c].FPALUs > 0 {
				fp = fp.Add(ClusterID(c))
			}
		}
		if c := fp.Single(); c != AnyCluster {
			return c
		}
	}
	if !m.cfg.FPClusterSimpleInt && !touchesFP && in.Op.Class() != isa.ClassComplexInt {
		return IntCluster
	}
	return AnyCluster
}

// nearestIn returns the cluster in set s closest to `to` by copy latency
// (ties to the lowest cluster index), excluding `to` itself; AnyCluster
// when the set holds no other cluster.
//
//dca:hotpath
func (m *Machine) nearestIn(s ClusterSet, to ClusterID) ClusterID {
	best, bestDist := AnyCluster, 0
	for c := 0; c < m.cfg.NumClusters(); c++ {
		id := ClusterID(c)
		if id == to || !s.Has(id) {
			continue
		}
		d := m.cfg.CopyLatencyBetween(c, int(to))
		if best == AnyCluster || d < bestDist {
			best, bestDist = id, d
		}
	}
	return best
}

// capableClusters returns the set of clusters whose functional units can
// execute op.
//
//dca:hotpath
func (m *Machine) capableClusters(op isa.Opcode) ClusterSet {
	var s ClusterSet
	for c := 0; c < m.cfg.NumClusters(); c++ {
		if m.fus[c].CanEverIssue(op) {
			s = s.Add(ClusterID(c))
		}
	}
	return s
}

// fifoCluster implements the joint cluster+FIFO half of the
// Palacharla/Jouppi/Smith heuristic: prefer a cluster holding a FIFO whose
// tail is the producer of one of the instruction's pending sources (the
// dependence chain continues in order there); otherwise take the allowed
// cluster with the most empty FIFOs, falling back to the policy's choice.
//
//dca:hotpath
func (m *Machine) fifoCluster(fi *fetched, forced, fallback ClusterID) ClusterID {
	var allowed [config.MaxClusters]ClusterID
	n := 0
	if forced != AnyCluster {
		allowed[0], n = forced, 1
	} else {
		for c := 0; c < m.cfg.NumClusters(); c++ {
			allowed[n] = ClusterID(c)
			n++
		}
	}
	var srcsBuf [2]isa.Reg
	srcs := fi.step.Inst.Srcs(srcsBuf[:0])
	for i := 0; i < n; i++ {
		c := allowed[i]
		q := &m.iqs[c]
		for f := range q.fifos {
			tail := q.FIFOTail(f)
			if tail == nil || tail.destPhys == noPhys || len(q.fifos[f]) >= q.fifoDepth {
				continue
			}
			for _, r := range srcs {
				if p, ok := m.rt.lookup(r, c); ok && p == tail.destPhys && !m.files[c].Ready(p) {
					return c
				}
			}
		}
	}
	best, bestEmpty := fallback, -1
	for i := 0; i < n; i++ {
		c := allowed[i]
		empties := 0
		for f := range m.iqs[c].fifos {
			if len(m.iqs[c].fifos[f]) == 0 {
				empties++
			}
		}
		if empties > bestEmpty {
			bestEmpty, best = empties, c
		}
	}
	return best
}

// copyPlan describes one inter-cluster copy to insert for a source operand.
type copyPlan struct {
	srcIdx  int // which source of the consumer
	logical isa.Reg
	from    ClusterID
	fromReg physReg
}

// resolveTarget maps an already-steered front instruction to its final
// placement: out-of-range policy answers clamp to the integer cluster, the
// capability safety net moves operations to a cluster that can execute them
// (a policy on a partially symmetric machine could otherwise deadlock an FP
// multiply in a cluster with only FP adders; the nearest capable cluster,
// by copy distance with ties to the lowest index, takes over), and in FIFO
// mode the joint cluster+FIFO heuristic of Palacharla/Jouppi/Smith runs
// with the policy's choice as tie-break. It is pure: fast-forward's
// idleness predicate shares it with dispatch.
//
//dca:hotpath
func (m *Machine) resolveTarget(fi *fetched) ClusterID {
	in := fi.step.Inst
	target := fi.target
	if target < 0 || int(target) >= m.cfg.NumClusters() {
		target = IntCluster
	}
	if !m.fus[target].CanEverIssue(in.Op) && m.cfg.NumClusters() > 1 {
		if c := m.nearestIn(m.capableClusters(in.Op), target); c != AnyCluster {
			target = c
		}
	}
	if m.cfg.Mode == config.IQFIFO {
		target = m.fifoCluster(fi, m.forcedByPC[fi.step.PC], target)
	}
	return target
}

// planCopies computes the inter-cluster copies that placing fi on target
// requires: one per source operand without a valid mapping in the target
// cluster, sourced from the nearest cluster holding the value (by copy
// latency, ties to the lowest index; on the two-cluster machine simply the
// other cluster). An instruction reading the same remote register twice
// needs only one copy. It is pure — reads of the map table only — and the
// error cases are dispatch-time invariant violations.
//
//dca:hotpath
func (m *Machine) planCopies(fi *fetched, target ClusterID) (plans [2]copyPlan, nPlans int, err error) {
	var srcs [2]isa.Reg
	nsrc := len(fi.step.Inst.Srcs(srcs[:0]))
planSrcs:
	for i := 0; i < nsrc; i++ {
		if _, ok := m.rt.lookup(srcs[i], target); ok {
			continue
		}
		for j := 0; j < nPlans; j++ {
			if plans[j].logical == srcs[i] {
				continue planSrcs
			}
		}
		from := m.nearestIn(m.rt.home(srcs[i]), target)
		if from == AnyCluster {
			return plans, 0, fmt.Errorf("core: register %v mapped nowhere at PC %d", srcs[i], fi.step.PC)
		}
		p, ok := m.rt.lookup(srcs[i], from)
		if !ok {
			return plans, 0, fmt.Errorf("core: register %v mapped nowhere at PC %d", srcs[i], fi.step.PC)
		}
		plans[nPlans] = copyPlan{srcIdx: i, logical: srcs[i], from: from, fromReg: p}
		nPlans++
	}
	return plans, nPlans, nil
}

// dispatchBlocked is the structural resource check: in-flight window for
// the program instruction (copies ride along in the ROB for ordering and
// register reclamation but, as in the paper, compete only for issue slots,
// queue entries and registers — not window capacity), destination
// registers (the copies' dests plus the instruction's own), IQ slots per
// cluster, and an LSQ slot for memory operations. It is pure and consumes
// no sequence number; fast-forward's idleness predicate shares it with
// dispatch, which keeps the two in lock-step.
//
//dca:hotpath
func (m *Machine) dispatchBlocked(fi *fetched, target ClusterID, plans *[2]copyPlan, nPlans int) bool {
	if m.progInFlight+1 > m.cfg.MaxInFlight {
		return true
	}
	if m.files[target].FreeCount() < nPlans+1 {
		return true
	}
	var iqNeed [config.MaxClusters]int
	iqNeed[target]++
	for j := 0; j < nPlans; j++ {
		iqNeed[plans[j].from]++
	}
	for c := 0; c < m.cfg.NumClusters(); c++ {
		if need := iqNeed[c]; need > 0 && m.iqs[c].Free() < need {
			return true
		}
	}
	if fi.step.Inst.Op.IsMem() && m.ldst.Free() < 1 {
		return true
	}
	return false
}

//dca:hotpath
func (m *Machine) dispatch() error {
	width := m.cfg.DecodeWidth
	for width > 0 && m.dqLen > 0 {
		fi := m.dqFront()
		if fi.availableAt > m.cycle {
			return nil
		}
		in := fi.step.Inst
		forced := m.forcedByPC[fi.step.PC]

		// Build the steering view and consult the policy for every
		// program instruction (it maintains its tables in decode order).
		if !fi.steered {
			info := m.steerInfo(fi, forced)
			policy := m.steerer.Steer(info)
			target := policy
			if forced != AnyCluster {
				target = forced
			}
			fi.steered = true
			fi.target = target
			m.probeSteered(fi, forced, policy)
		}
		target := m.resolveTarget(fi)

		// Plan the copies this placement requires.
		plans, nPlans, err := m.planCopies(fi, target)
		if err != nil {
			return err
		}
		if nPlans > 0 && m.cfg.InterClusterBuses == 0 {
			return fmt.Errorf("core: copy required but no inter-cluster buses (PC %d, %v)", fi.step.PC, in)
		}

		if m.dispatchBlocked(fi, target, &plans, nPlans) {
			return nil
		}

		// Dispatch the copies first (they are older in dependence order).
		// If dispatch stalls partway (e.g. no FIFO slot), the copies
		// already inserted stay valid: the next attempt finds the
		// replicated mappings present and plans no duplicates.
		d := m.newDynInst(fi)
		d.Cluster = target
		for j := 0; j < nPlans; j++ {
			// srcViaCopy feeds only the probe's stall taxonomy (copy-wait
			// vs operand-wait); the write is unconditional to keep the hot
			// path branch-free, and nothing the simulation computes reads it.
			d.srcViaCopy[plans[j].srcIdx] = true
			if _, ok := m.insertCopy(d, plans[j], target); !ok {
				// FIFO-slot exhaustion: stall this cycle. The abandoned
				// skeleton was never enqueued anywhere, so recycle it (its
				// consumed sequence number stays consumed, as it always
				// has).
				m.freeDyn(d)
				return nil
			}
		}
		// Rename sources in the target cluster.
		var srcs [2]isa.Reg
		nsrc := len(in.Srcs(srcs[:0]))
		for i := 0; i < nsrc; i++ {
			p, ok := m.rt.lookup(srcs[i], target)
			if !ok {
				return fmt.Errorf("core: source %v unmapped after copy insertion", srcs[i])
			}
			d.srcPhys[i] = p
			d.srcReady[i] = m.files[target].Ready(p)
		}
		d.numSrcs = nsrc
		// FIFO placement is decided before the destination rename so a
		// stall here leaves the map table untouched.
		if m.cfg.Mode == config.IQFIFO {
			f, ok := m.iqs[target].ChooseFIFO(d)
			if !ok {
				m.freeDyn(d)
				return nil
			}
			d.fifo = f
		}
		// Rename destination.
		if dst, ok := in.Dst(); ok {
			p, okAlloc := m.files[target].Alloc()
			if !okAlloc {
				return fmt.Errorf("core: register file %v exhausted after reservation check", target)
			}
			d.destPhys = p
			d.destLogical = dst
			d.prevMapping, d.prevMask = m.rt.redefine(dst, target, p)
		}
		if in.Op.IsMem() {
			m.ldst.Add(d)
		}
		m.robPush(d)
		m.progInFlight++
		m.iqs[target].Add(d)
		m.probeEvent(EvDispatch, d)
		if m.measuring {
			m.run.Steered[target]++
		}
		m.dqPop()
		width--
	}
	return nil
}

// newDynInst builds the DynInst skeleton for a fetched program instruction.
//
//dca:hotpath
func (m *Machine) newDynInst(fi *fetched) *DynInst {
	st := fi.step
	in := st.Inst
	d := m.allocDyn()
	// Zero-then-assign rather than a struct literal: the literal builds a
	// temporary DynInst and copies it, twice the memory traffic of a clear
	// plus direct field stores on this per-instruction path.
	*d = DynInst{}
	d.Seq = m.seq
	d.ProgSeq = st.Seq
	d.PC = st.PC
	d.Inst = in
	d.destPhys = noPhys
	d.prevMapping = noPrevMapping()
	d.isLoad = in.Op.IsLoad()
	d.isStore = in.Op.IsStore()
	d.memAddr = st.MemAddr
	d.memWidth = in.Op.MemWidth()
	d.isBranch = in.Op.IsBranch()
	d.taken = st.Taken
	d.nextPC = st.NextPC
	d.mispredicted = fi.mispredict
	d.state = stateWaiting
	d.readyCycle = m.cycle
	d.FetchID = fi.probeID
	m.seq++
	return d
}

// insertCopy creates and dispatches the copy instruction moving cp.logical
// from cp.from into target, updating the map table (replication).
//
//dca:hotpath
func (m *Machine) insertCopy(consumer *DynInst, cp copyPlan, target ClusterID) (*DynInst, bool) {
	p, ok := m.files[target].Alloc()
	if !ok {
		return nil, false
	}
	cpy := m.allocDyn()
	*cpy = DynInst{}
	cpy.Seq = m.seq
	cpy.ProgSeq = consumer.ProgSeq
	cpy.PC = consumer.PC
	cpy.IsCopy = true
	cpy.SrcCluster = cp.from
	cpy.Cluster = target
	cpy.numSrcs = 1
	cpy.destPhys = p
	cpy.destLogical = cp.logical
	cpy.prevMapping = noPrevMapping()
	cpy.state = stateWaiting
	cpy.readyCycle = m.cycle
	m.seq++
	cpy.srcPhys[0] = cp.fromReg
	cpy.srcReady[0] = m.files[cp.from].Ready(cp.fromReg)
	// In FIFO mode copies bypass the FIFOs (issueQueue.Add places them in
	// the bus-interface buffer), so no FIFO slot is chosen here.
	// The copied value now also lives in the target cluster: record the
	// replicated mapping so later consumers there reuse it.
	m.rt.setMapping(cp.logical, target, p)
	m.robPush(cpy)
	m.iqs[cp.from].Add(cpy)
	if m.probe != nil {
		// Copies never pass through fetch; give them their own fetch id so
		// pipeline-trace exports can render them as distinct rows.
		m.probeFetchSeq++
		cpy.FetchID = m.probeFetchSeq
	}
	m.probeEvent(EvCopyInserted, cpy)
	if m.measuring {
		m.run.Copies++
	}
	return cpy, true
}

// steerInfo assembles the policy's decode-time view in the machine's
// reused buffer (policies must not retain it across calls).
//
//dca:hotpath
func (m *Machine) steerInfo(fi *fetched, forced ClusterID) *SteerInfo {
	in := fi.step.Inst
	info := &m.steerBuf
	// Field-wise reset, not a struct literal: zeroing the full per-cluster
	// arrays every instruction is measurable, and only the first
	// NumClusters (resp. NumSrcs) entries are meaningful by contract.
	info.Cycle = m.cycle
	info.PC = fi.step.PC
	info.Inst = in
	info.Forced = forced
	info.NumClusters = m.cfg.NumClusters()
	info.NumSrcs = 0
	var srcsBuf [2]isa.Reg
	for _, r := range in.Srcs(srcsBuf[:0]) {
		if info.NumSrcs >= 2 {
			break
		}
		i := info.NumSrcs
		info.SrcReg[i] = r
		info.SrcIn[i] = m.rt.home(r)
		info.NumSrcs++
	}
	for c := 0; c < m.cfg.NumClusters(); c++ {
		info.Ready[c] = m.readySample[c]
		info.IQFree[c] = m.iqs[c].Free()
	}
	return info
}

// --- Issue ---

//dca:hotpath
func (m *Machine) issue() {
	for c := 0; c < m.cfg.NumClusters(); c++ {
		if m.iqs[c].ReadyCount() == 0 {
			// Issuable only returns waiting-and-ready entries, so an empty
			// ready count means an empty scan.
			continue
		}
		budget := m.cfg.Clusters[c].IssueWidth
		m.issueBuf = m.issueBuf[:0]
		m.issueBuf = m.iqs[c].Issuable(m.issueBuf)
		for _, d := range m.issueBuf {
			if budget == 0 {
				break
			}
			if d.IsCopy {
				// A copy consumes an issue slot in its source cluster and
				// one bus toward its destination cluster.
				if m.busUsed[c] >= m.cfg.InterClusterBuses {
					continue
				}
				m.busUsed[c]++
				budget--
				m.iqs[c].Remove(d)
				d.state = stateIssued
				d.issuedAt = m.cycle
				d.completeAt = m.cycle + uint64(m.cfg.CopyLatencyBetween(int(d.SrcCluster), int(d.Cluster)))
				m.schedule(d)
				m.probeEvent(EvIssue, d)
				continue
			}
			lat, ok := m.fus[c].TryIssue(d.Inst.Op, m.cycle)
			if !ok {
				continue
			}
			budget--
			m.iqs[c].Remove(d)
			d.state = stateIssued
			d.issuedAt = m.cycle
			if d.isLoad || d.isStore {
				// The issued operation is the EA computation; the memory
				// access is handled by the LSQ afterwards.
				d.completeAt = m.cycle + uint64(m.cfg.Lat.SimpleInt)
			} else {
				d.completeAt = m.cycle + uint64(lat)
			}
			m.schedule(d)
			m.probeEvent(EvIssue, d)
		}
	}
}

// --- Completion ---

//dca:hotpath
func (m *Machine) complete() {
	slot := m.cycle & uint64(len(m.evtHead)-1)
	d := m.evtHead[slot]
	if d == nil {
		return
	}
	m.evtHead[slot], m.evtTail[slot] = nil, nil
	m.wakeBuf = m.wakeBuf[:0]
	for next := d; d != nil; d = next {
		next = d.nextEvt
		d.nextEvt = nil
		m.probeEvent(EvComplete, d)
		switch {
		case d.IsCopy:
			m.noteReady(d.Cluster, d.destPhys)
			d.state = stateDone
			m.noteCopyArrival(d)
		case d.isLoad && !d.eaDone:
			d.eaDone = true
			d.state = stateMemWait
			m.ldst.MarkAddrKnown(d)
		case d.isLoad: // data returned
			m.noteReady(d.Cluster, d.destPhys)
			d.state = stateDone
		case d.isStore:
			d.eaDone = true
			m.ldst.MarkAddrKnown(d)
			d.state = stateDone
		default:
			m.noteReady(d.Cluster, d.destPhys)
			d.state = stateDone
			if d.isBranch {
				m.resolveBranch(d)
			}
		}
	}
	// Wake the consumers only after the whole batch: srcReady flags must
	// stay pre-update while noteCopyArrival inspects them (the paper's
	// criticality test reads the state the waiting instructions were in
	// when the copy arrived).
	for _, wp := range m.wakeBuf {
		m.iqs[wp.c].wakeReg(wp.p)
	}
}

// wakePair records one register made ready by a completion, pending its
// waiter-list walk at the end of the batch.
type wakePair struct {
	c ClusterID
	p physReg
}

// noteReady marks the register ready in its file and queues the wakeup.
//
//dca:hotpath
func (m *Machine) noteReady(c ClusterID, p physReg) {
	if p == noPhys {
		return
	}
	m.files[c].SetReady(p)
	m.wakeBuf = append(m.wakeBuf, wakePair{c: c, p: p})
}

// noteCopyArrival implements the paper's criticality test: a communication
// is critical when an instruction in the destination cluster was already
// waiting for the value when it arrived. The scan's only output is the
// CriticalCopies stat, so warm-up cycles (measuring off) skip it.
//
//dca:hotpath
func (m *Machine) noteCopyArrival(cpy *DynInst) {
	if !m.measuring {
		return
	}
	for d := m.iqs[cpy.Cluster].qhead; d != nil; d = d.nextQ {
		if d.state != stateWaiting || d.readyCycle >= m.cycle {
			continue
		}
		for i := 0; i < d.numSrcs; i++ {
			if d.srcPhys[i] == cpy.destPhys && !d.srcReady[i] {
				othersReady := true
				for j := 0; j < d.numSrcs; j++ {
					if j != i && !d.srcReady[j] {
						othersReady = false
					}
				}
				if othersReady {
					cpy.waitingConsumer = true
					if m.measuring {
						m.run.CriticalCopies++
					}
					return
				}
			}
		}
	}
}

//dca:hotpath
func (m *Machine) resolveBranch(d *DynInst) {
	m.steerer.OnBranchResolved(d.PC, d.mispredicted)
	if d.mispredicted && m.waitingBranch && d.ProgSeq == m.waitBranchSeq {
		m.waitingBranch = false
		if m.fetchStallUntil < m.cycle+1 {
			m.fetchStallUntil = m.cycle + 1
		}
		m.lastRedirect = m.cycle
		m.probeEvent(EvRedirect, d)
	}
}

// --- Memory step ---

//dca:hotpath
func (m *Machine) memStep() {
	m.loadBuf = m.loadBuf[:0]
	m.loadBuf = m.ldst.ReadyLoads(m.loadBuf)
	hit := m.cfg.Mem.L1D.HitLatency
	for _, d := range m.loadBuf {
		switch m.ldst.classify(d, m.files) {
		case loadBlocked:
			continue
		case loadForward:
			d.lsqAccessed = true
			d.completeAt = m.cycle + uint64(hit)
			m.schedule(d)
			m.steerer.OnLoadResolved(d.PC, false)
		case loadAccess:
			if m.dcachePortsUsed >= m.cfg.DCachePorts {
				return // ports exhausted this cycle; retry next cycle
			}
			m.dcachePortsUsed++
			lat := m.hier.L1D.Access(d.memAddr, false)
			d.lsqAccessed = true
			d.completeAt = m.cycle + uint64(lat)
			m.schedule(d)
			m.steerer.OnLoadResolved(d.PC, lat > hit)
		}
	}
}

// --- Commit ---

// commit retires finished instructions in order and reports how many it
// retired this cycle (the probe's cycle sample attributes on it).
//
//dca:hotpath
func (m *Machine) commit() int {
	retired := 0
	for retired < m.cfg.RetireWidth && m.robLen > 0 {
		d := m.robFront()
		if d.state != stateDone {
			return retired
		}
		if d.isStore {
			// The store needs its data and a cache port to write.
			if d.numSrcs > 1 && !m.files[d.Cluster].Ready(d.srcPhys[1]) {
				return retired
			}
			if m.dcachePortsUsed >= m.cfg.DCachePorts {
				return retired
			}
			m.dcachePortsUsed++
			m.hier.L1D.Access(d.memAddr, true)
			m.ldst.Remove(d)
		}
		if d.isLoad {
			m.ldst.Remove(d)
		}
		for mask := d.prevMask; mask != 0; mask &= mask - 1 {
			c := bits.TrailingZeros8(mask)
			m.files[c].Release(d.prevMapping[c])
		}
		d.state = stateRetired
		m.robPop()
		m.lastCommitAt = m.cycle
		retired++
		m.probeEvent(EvCommit, d)
		if !d.IsCopy {
			m.progInFlight--
			m.committedProg++
			if m.measuring {
				m.run.Instructions++
			}
			if d.Inst.Op == isa.HALT {
				m.haltCommitted = true
				return retired
			}
		}
		m.freeDyn(d)
	}
	return retired
}

// --- Sampling ---

//dca:hotpath
func (m *Machine) sample() {
	for c := range m.readySample {
		m.readySample[c] = m.iqs[c].ReadyCount()
	}
	m.steerer.OnCycle(m.cycle, m.readySample)
	if m.measuring {
		m.run.Balance.Record(BalanceDiff(m.readySample))
		m.replicatedSum += uint64(m.rt.replicatedCount())
	}
}
