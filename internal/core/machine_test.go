package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/stats"
)

// moduloSteerer alternates clusters for steerable instructions (the paper's
// modulo scheme, reimplemented minimally for core tests).
type moduloSteerer struct {
	NopSteerer
	next ClusterID
}

func (s *moduloSteerer) Name() string { return "test-modulo" }

func (s *moduloSteerer) Steer(info *SteerInfo) ClusterID {
	if info.Forced != AnyCluster {
		return info.Forced
	}
	c := s.next
	s.next = (s.next + 1) % ClusterID(info.Clusters())
	return c
}

func mustProg(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runCore(t *testing.T, cfg *config.Config, p *prog.Program, st Steerer, max uint64) *stats.Run {
	t.Helper()
	m, err := New(cfg, p, st)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(max)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

const straightLine = `
.text
  addi r1, r0, 1
  addi r2, r0, 2
  addi r3, r0, 3
  addi r4, r0, 4
  addi r5, r0, 5
  addi r6, r0, 6
  addi r7, r0, 7
  addi r8, r0, 8
  halt
`

func TestCommitCountMatchesOracle(t *testing.T) {
	p := mustProg(t, straightLine)
	// Functional reference.
	ref := emu.New(p)
	n, err := ref.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	if r.Instructions != n {
		t.Fatalf("timing committed %d, oracle executed %d", r.Instructions, n)
	}
}

// wideLoop builds an endless loop of independent addis (no register
// sources, so no communications under any steering).
func wideLoop() *prog.Program {
	b := prog.NewBuilder("wide")
	b.Label("top")
	for i := 0; i < 800; i++ {
		b.Addi(isa.R(1+i%8), isa.R(0), int32(i))
	}
	b.Jmp("top")
	return b.MustBuild()
}

func runWarm(t *testing.T, cfg *config.Config, p *prog.Program, st Steerer) *stats.Run {
	t.Helper()
	m, err := New(cfg, p, st)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunWithWarmup(4000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIndependentAddsReachHighIPC(t *testing.T) {
	p := wideLoop()
	naive := runWarm(t, config.Clustered(), p, NaiveSteerer{})
	modulo := runWarm(t, config.Clustered(), p, &moduloSteerer{})

	// Naive puts everything on cluster 0 (3 ALUs): IPC near 3.
	if ipc := naive.IPC(); ipc < 2.2 || ipc > 3.2 {
		t.Errorf("naive IPC = %.2f, want ~3", ipc)
	}
	// Modulo uses both clusters (6 ALUs): clearly faster. These addis have
	// no register sources, so no copies are needed.
	if ipc := modulo.IPC(); ipc < 4.0 {
		t.Errorf("modulo IPC = %.2f, want > 4", ipc)
	}
	if modulo.Copies != 0 {
		t.Errorf("independent addis generated %d copies", modulo.Copies)
	}
	if naive.Steered[1] != 0 {
		t.Errorf("naive steered %d instructions to the FP cluster", naive.Steered[1])
	}
	if modulo.Steered[0] == 0 || modulo.Steered[1] == 0 {
		t.Error("modulo did not use both clusters")
	}
}

func TestDependentChainSerializes(t *testing.T) {
	b := prog.NewBuilder("chain")
	b.Addi(rreg(1), rreg(0), 1)
	for i := 0; i < 400; i++ {
		b.Addi(rreg(1), rreg(1), 1)
	}
	b.Halt()
	p := b.MustBuild()
	r := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	// A dependent chain of 1-cycle ops commits about 1 per cycle.
	if ipc := r.IPC(); ipc > 1.2 {
		t.Errorf("dependent chain IPC = %.2f, want ~1", ipc)
	}
}

func TestModuloChainPaysCommunication(t *testing.T) {
	// A dependent chain under modulo steering ping-pongs between clusters,
	// inserting a copy per hop: it must be slower than naive and must
	// report communications.
	b := prog.NewBuilder("chain")
	b.Addi(rreg(1), rreg(0), 1)
	for i := 0; i < 400; i++ {
		b.Addi(rreg(1), rreg(1), 1)
	}
	b.Halt()
	p := b.MustBuild()
	naive := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	modulo := runCore(t, config.Clustered(), p, &moduloSteerer{}, 0)
	if modulo.Copies == 0 {
		t.Fatal("modulo chain generated no copies")
	}
	if modulo.Cycles <= naive.Cycles {
		t.Errorf("modulo (%d cycles) not slower than naive (%d) on a chain",
			modulo.Cycles, naive.Cycles)
	}
	if modulo.CriticalCopies == 0 {
		t.Error("chain copies should be critical (consumer waiting)")
	}
	if modulo.CriticalCopies > modulo.Copies {
		t.Error("critical copies exceed total copies")
	}
}

func TestLoadStoreProgram(t *testing.T) {
	src := `
.data
arr: .space 800
.text
  li   r1, arr
  li   r2, 0
  li   r3, 100
loop:
  st   r2, 0(r1)
  ld   r4, 0(r1)
  add  r5, r5, r4
  addi r1, r1, 8
  addi r2, r2, 1
  bne  r2, r3, loop
  halt
`
	p := mustProg(t, src)
	ref := emu.New(p)
	n, err := ref.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	if r.Instructions != n {
		t.Fatalf("committed %d, oracle %d", r.Instructions, n)
	}
	if r.IPC() <= 0.5 {
		t.Errorf("load/store loop IPC = %.2f suspiciously low", r.IPC())
	}
}

func TestBranchyLoopCountsBranches(t *testing.T) {
	src := `
.text
  li   r1, 0
  li   r2, 2000
  li   r5, 1
loop:
  and  r3, r1, r5
  beq  r3, r0, even
  addi r4, r4, 3
  j    next
even:
  addi r4, r4, 1
next:
  addi r1, r1, 1
  bne  r1, r2, loop
  halt
`
	p := mustProg(t, src)
	r := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	if r.Branches == 0 {
		t.Fatal("no branches recorded")
	}
	// The alternating pattern is learnable: misprediction rate must be low
	// after gshare warms up.
	if rate := r.MispredictRate(); rate > 0.2 {
		t.Errorf("mispredict rate %.2f on a learnable pattern", rate)
	}
}

func TestFunctionCallsViaRAS(t *testing.T) {
	src := `
.text
  li   r10, 0
  li   r11, 500
loop:
  jal  r31, leaf
  addi r10, r10, 1
  bne  r10, r11, loop
  halt
leaf:
  addi r12, r12, 1
  jr   r31
`
	p := mustProg(t, src)
	r := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	// Returns predicted by the RAS: near-zero mispredictions.
	if rate := r.MispredictRate(); rate > 0.05 {
		t.Errorf("RAS-predicted returns mispredicting at %.2f", rate)
	}
	if r.Instructions == 0 {
		t.Fatal("nothing committed")
	}
}

func TestFPProgramOnClusteredMachine(t *testing.T) {
	src := `
.data
v: .double 1.0, 2.0, 3.0, 4.0
.text
  li   r1, v
  li   r2, 4
  li   r3, 0
loop:
  fld  f1, 0(r1)
  fadd f2, f2, f1
  fmul f3, f2, f1
  addi r1, r1, 8
  addi r3, r3, 1
  bne  r3, r2, loop
  fcvtfi r4, f2
  halt
`
	p := mustProg(t, src)
	r := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	if r.Steered[1] == 0 {
		t.Error("FP instructions did not reach the FP cluster")
	}
	// FLD needs its integer base register in the FP cluster: copies occur.
	if r.Copies == 0 {
		t.Error("expected copies for FP loads' base addresses")
	}
}

func TestBaseMachineRunsIntCodeOnOneCluster(t *testing.T) {
	p := mustProg(t, straightLine)
	r := runCore(t, config.Base(), p, NaiveSteerer{}, 0)
	if r.Steered[1] != 0 {
		t.Errorf("base machine steered %d int instructions to FP cluster", r.Steered[1])
	}
	if r.Copies != 0 {
		t.Errorf("base machine generated %d copies for int code", r.Copies)
	}
}

func TestUpperBoundSingleCluster(t *testing.T) {
	p := wideLoop()
	r := runWarm(t, config.UpperBound(), p, NaiveSteerer{})
	if r.Copies != 0 {
		t.Error("upper bound generated copies")
	}
	// 6 simple ALUs, issue 16: independent addis should exceed 5 IPC.
	if ipc := r.IPC(); ipc < 5.0 {
		t.Errorf("upper-bound IPC = %.2f, want > 5", ipc)
	}
}

func TestFIFOModeRuns(t *testing.T) {
	src := `
.data
arr: .space 400
.text
  li   r1, arr
  li   r2, 0
  li   r3, 50
loop:
  ld   r4, 0(r1)
  add  r4, r4, r2
  st   r4, 0(r1)
  addi r1, r1, 8
  addi r2, r2, 1
  bne  r2, r3, loop
  halt
`
	p := mustProg(t, src)
	ref := emu.New(p)
	n, _ := ref.Run(0)
	r := runCore(t, config.FIFOClustered(), p, &moduloSteerer{}, 0)
	if r.Instructions != n {
		t.Fatalf("FIFO mode committed %d, oracle %d", r.Instructions, n)
	}
}

func TestRunWithMaxStops(t *testing.T) {
	src := `
.text
loop:
  addi r1, r1, 1
  j    loop
`
	p := mustProg(t, src)
	m, err := New(config.Clustered(), p, NaiveSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < 5000 || r.Instructions > 5100 {
		t.Fatalf("committed %d, want ~5000", r.Instructions)
	}
}

func TestWarmupResetsStats(t *testing.T) {
	src := `
.text
loop:
  addi r1, r1, 1
  addi r2, r2, 1
  j    loop
`
	p := mustProg(t, src)
	m, err := New(config.Clustered(), p, NaiveSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunWithWarmup(3000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < 3000 || r.Instructions > 3100 {
		t.Fatalf("measured %d instructions, want ~3000", r.Instructions)
	}
	if r.Cycles == 0 || r.Balance.Samples != r.Cycles {
		t.Fatalf("balance samples %d != cycles %d", r.Balance.Samples, r.Cycles)
	}
}

func TestBalanceSampledEveryCycle(t *testing.T) {
	p := mustProg(t, straightLine)
	r := runCore(t, config.Clustered(), p, NaiveSteerer{}, 0)
	if r.Balance.Samples != r.Cycles {
		t.Fatalf("balance samples %d != cycles %d", r.Balance.Samples, r.Cycles)
	}
}

func TestStatsInvariants(t *testing.T) {
	src := `
.data
arr: .space 1600
.text
  li   r1, arr
  li   r2, 0
  li   r3, 200
loop:
  ld   r4, 0(r1)
  add  r5, r5, r4
  mul  r6, r5, r4
  st   r6, 0(r1)
  addi r1, r1, 8
  addi r2, r2, 1
  bne  r2, r3, loop
  halt
`
	p := mustProg(t, src)
	r := runCore(t, config.Clustered(), p, &moduloSteerer{}, 0)
	if r.CriticalCopies > r.Copies {
		t.Error("critical copies exceed total")
	}
	if r.Steered[0]+r.Steered[1] != r.Instructions {
		t.Errorf("steered %d+%d != committed %d", r.Steered[0], r.Steered[1], r.Instructions)
	}
	if r.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
	if r.ReplicatedRegsAvg < 0 || r.ReplicatedRegsAvg > 32 {
		t.Errorf("replicated regs avg = %f out of range", r.ReplicatedRegsAvg)
	}
}

// rreg abbreviates isa.R in builder-based tests.
func rreg(i int) isa.Reg { return isa.R(i) }
