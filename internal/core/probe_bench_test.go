// Probe-seam cost benchmarks. BENCH_probe.json records a reference run
// (regenerate with `make bench`): the detached sub-benchmark must sit
// within noise of BenchmarkMachineCycle's matching case — the seam is a
// nil check on the hot path and nothing more — while the attached
// sub-benchmarks price what -attrib and -konata actually cost.
package core_test

import (
	"io"
	"testing"

	"repro/internal/config"
	"repro/internal/probe"
)

// BenchmarkProbeCycle measures the steady-state per-cycle cost of the
// n2/general case with the probe seam in its three interesting states:
// detached (every production run without -attrib), cycle attribution
// attached, and a full Konata export streaming to a discarded writer.
func BenchmarkProbeCycle(b *testing.B) {
	bc := benchCase{"n2/general", config.Clustered(), "general"}
	b.Run("detached", func(b *testing.B) {
		m := newBenchMachine(b, bc)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.StepOneCycle(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("attrib", func(b *testing.B) {
		m := newBenchMachine(b, bc)
		m.SetProbe(probe.NewAttribution())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.StepOneCycle(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("konata", func(b *testing.B) {
		m := newBenchMachine(b, bc)
		k := probe.NewKonata(io.Discard)
		m.SetProbe(k)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.StepOneCycle(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := k.Close(); err != nil {
			b.Fatal(err)
		}
	})
}
