// Per-cycle benchmark suite for the simulator core, plus the steady-state
// allocation gate. BENCH_core.json records a reference run; regenerate it
// with `make bench`.
package core_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/steer"
	"repro/internal/trace"
)

// benchProgram builds the benchmark workload: a long counted loop whose
// body mixes the instruction classes in roughly SPECint proportions
// (simple ALU, loads and stores over a handful of hot addresses, forward
// branches, a multiply, and a short FP chain so asymmetric machines
// steer inter-cluster traffic). The outer count is large enough that the
// program never halts within any realistic b.N.
func benchProgram() *prog.Program {
	b := prog.NewBuilder("bench-loop")
	b.Space("mem", 8192)
	b.La(isa.R(20), "mem")
	for i := 1; i <= 12; i++ {
		b.Li(isa.R(i), int32(i*37))
	}
	for i := 0; i < 4; i++ {
		b.Fcvtif(isa.F(i), isa.R(1+i))
	}
	b.Li(isa.R(13), 12345) // LCG state for the unpredictable branch
	b.Li(isa.R(21), 1<<30)
	b.Label("outer")

	// ~40-instruction body. Hot addresses alias across iterations so the
	// LSQ sees forwarding and the D-cache stays warm.
	b.Add(isa.R(1), isa.R(2), isa.R(3))
	b.Sub(isa.R(4), isa.R(1), isa.R(5))
	b.And(isa.R(6), isa.R(4), isa.R(7))
	b.Or(isa.R(8), isa.R(6), isa.R(9))
	b.Xor(isa.R(10), isa.R(8), isa.R(11))
	b.Ld(isa.R(2), isa.R(20), 0)
	b.Addi(isa.R(2), isa.R(2), 1)
	b.St(isa.R(2), isa.R(20), 0)
	b.Ld(isa.R(3), isa.R(20), 64)
	b.Add(isa.R(5), isa.R(3), isa.R(2))
	b.Slt(isa.R(12), isa.R(5), isa.R(1))
	b.Beq(isa.R(12), isa.R(0), "skip1")
	b.Addi(isa.R(7), isa.R(7), 2)
	b.Label("skip1")
	b.Mul(isa.R(9), isa.R(7), isa.R(4))
	b.Srai(isa.R(9), isa.R(9), 3)
	b.Ld(isa.R(6), isa.R(20), 128)
	b.Xor(isa.R(6), isa.R(6), isa.R(9))
	b.St(isa.R(6), isa.R(20), 128)
	b.Lw(isa.R(11), isa.R(20), 256)
	b.Addi(isa.R(11), isa.R(11), 5)
	b.Sw(isa.R(11), isa.R(20), 256)
	b.Fadd(isa.F(0), isa.F(1), isa.F(2))
	b.Fmul(isa.F(3), isa.F(0), isa.F(1))
	b.Fsub(isa.F(2), isa.F(3), isa.F(0))
	b.Add(isa.R(1), isa.R(1), isa.R(10))
	b.Sub(isa.R(3), isa.R(3), isa.R(12))
	b.And(isa.R(5), isa.R(5), isa.R(8))
	b.Bne(isa.R(5), isa.R(6), "skip2")
	b.Addi(isa.R(8), isa.R(8), 3)
	b.Label("skip2")
	b.Ld(isa.R(4), isa.R(20), 512)
	b.Add(isa.R(4), isa.R(4), isa.R(1))
	b.St(isa.R(4), isa.R(20), 512)
	b.Or(isa.R(2), isa.R(2), isa.R(3))
	b.Xor(isa.R(7), isa.R(7), isa.R(2))
	// Data-dependent branch on an LCG bit: effectively unpredictable, so
	// fetch periodically blocks on a misprediction the way it does on real
	// workloads (without this, the perfectly predicted loop lets the
	// oracle-driven front end run arbitrarily far ahead of dispatch).
	b.Li(isa.R(15), 1103515245)
	b.Mul(isa.R(13), isa.R(13), isa.R(15))
	b.Addi(isa.R(13), isa.R(13), 12345)
	b.Srai(isa.R(14), isa.R(13), 16)
	b.Andi(isa.R(14), isa.R(14), 1)
	b.Beq(isa.R(14), isa.R(0), "skip3")
	b.Addi(isa.R(6), isa.R(6), 7)
	b.Label("skip3")

	b.Addi(isa.R(21), isa.R(21), -1)
	b.Bne(isa.R(21), isa.R(0), "outer")
	b.Halt()
	return b.MustBuild()
}

// benchCase names one (config, scheme) point of the per-cycle suite.
type benchCase struct {
	name   string
	cfg    *config.Config
	scheme string
}

func benchCases() []benchCase {
	return []benchCase{
		{"base/naive", config.Base(), "naive"},
		{"n2/general", config.Clustered(), "general"},
		{"n2/ldst-slicebal", config.Clustered(), "ldst-slicebal"},
		{"n2-fifo/fifo", config.FIFOClustered(), "fifo"},
		{"n4/general", config.ClusteredN(4), "general"},
		{"n8/general", config.ClusteredN(8), "general"},
	}
}

// newBenchMachine builds and warms a machine for the case: 20k cycles is
// enough for every static PC to have been steered (policy tables built),
// all hot cache lines resident and the allocator-visible data structures
// (ROB, queues, event wheel) at steady-state size.
func newBenchMachine(tb testing.TB, bc benchCase) *core.Machine {
	tb.Helper()
	return newBenchMachineWithOracle(tb, bc, nil)
}

// newBenchMachineWithOracle is newBenchMachine with an explicit oracle
// (nil = the live emulator), so the suite covers the replay front end
// under the same steady-state conditions as the live one.
func newBenchMachineWithOracle(tb testing.TB, bc benchCase, o core.Oracle) *core.Machine {
	tb.Helper()
	p := benchProgram()
	params := steer.DefaultParams()
	params.Clusters = bc.cfg.NumClusters()
	st, err := steer.NewWithParams(bc.scheme, p, params)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := core.NewWithOracle(bc.cfg, p, st, o)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if err := m.StepOneCycle(); err != nil {
			tb.Fatal(err)
		}
	}
	// Measure with statistics collection on: that is what every production
	// run (dcabench, the experiment grid) pays per cycle.
	m.BeginMeasurement()
	return m
}

// newReplayBenchMachine records the benchmark program's oracle stream
// (internal/trace) and returns a warmed machine fetching from the
// replayed recording instead of the live emulator — the configuration
// whose per-cycle cost the record-once/replay-many layer banks on.
func newReplayBenchMachine(tb testing.TB, bc benchCase) *core.Machine {
	tb.Helper()
	p := benchProgram()
	rec := trace.NewRecorder(p)
	// The stream is architectural: how far it must extend depends only on
	// how many instructions the consumer fetches. 300k instructions cover
	// the 20k warm-up cycles plus the measured cycles at any fetch rate
	// the machine can sustain; a shortfall fails loudly (ErrOracleExhausted).
	if err := rec.Extend(300_000); err != nil {
		tb.Fatal(err)
	}
	rep, err := trace.NewReplayer(rec.Finalize(0), p)
	if err != nil {
		tb.Fatal(err)
	}
	return newBenchMachineWithOracle(tb, bc, rep)
}

// BenchmarkMachineCycle measures the steady-state cost of one simulated
// cycle (ns/op = ns per cycle) for each representative (config, scheme)
// point. The acceptance bar for the allocation-free rewrite is >=2x
// cycles/sec over the pre-optimization baseline with 0 allocs/op; see
// BENCH_core.json for the recorded before/after.
func BenchmarkMachineCycle(b *testing.B) {
	for _, bc := range benchCases() {
		b.Run(bc.name, func(b *testing.B) {
			m := newBenchMachine(b, bc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.StepOneCycle(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if m.HaltCommitted() {
				b.Fatal("benchmark program halted; enlarge its loop count")
			}
		})
	}
}

// TestSteadyStateCycleAllocs is the allocation-free invariant, enforced:
// after warm-up, stepping the machine must not allocate at all, on every
// configuration the benchmark suite covers. A regression here is a
// performance bug even when all behavioural tests pass; ARCHITECTURE.md
// documents the invariant and the structures that uphold it.
func TestSteadyStateCycleAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full warm-up")
	}
	for _, bc := range benchCases() {
		t.Run(bc.name, func(t *testing.T) {
			m := newBenchMachine(t, bc)
			var stepErr error
			avg := testing.AllocsPerRun(2000, func() {
				if err := m.StepOneCycle(); err != nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if avg != 0 {
				t.Fatalf("steady-state cycle allocates: %.3f allocs/cycle (want 0)", avg)
			}
		})
	}
	// The replay front end (internal/trace) must hold the same invariant:
	// a machine fetching from a recorded trace steps allocation-free too.
	// One narrow and one wide machine cover both fetch-runahead profiles.
	for _, bc := range []benchCase{
		{"base/naive", config.Base(), "naive"},
		{"n2/general", config.Clustered(), "general"},
		{"n8/general", config.ClusteredN(8), "general"},
	} {
		t.Run(bc.name+"/replay", func(t *testing.T) {
			m := newReplayBenchMachine(t, bc)
			var stepErr error
			avg := testing.AllocsPerRun(2000, func() {
				if err := m.StepOneCycle(); err != nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if avg != 0 {
				t.Fatalf("replaying steady-state cycle allocates: %.3f allocs/cycle (want 0)", avg)
			}
		})
	}
}

// BenchmarkMachineRun measures end-to-end simulation throughput including
// machine construction amortized away: instructions committed per second
// on the benchmark loop (the number EXPERIMENTS.md's window-length
// sensitivity section is based on).
func BenchmarkMachineRun(b *testing.B) {
	bc := benchCase{"n2/general", config.Clustered(), "general"}
	m := newBenchMachine(b, bc)
	start := m.CommittedInstructions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StepOneCycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	committed := m.CommittedInstructions() - start
	if b.N > 0 {
		b.ReportMetric(float64(committed)/float64(b.N), "instrs/cycle")
	}
}
