package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/prog"
)

// invariantPrograms builds a set of halting programs stressing different
// rename paths: plain chains, wide independent groups, memory traffic,
// branches, FP mixes and cross-cluster ping-pong.
func invariantPrograms() map[string]*prog.Program {
	out := map[string]*prog.Program{}

	chain := prog.NewBuilder("chain")
	chain.Addi(isa.R(1), isa.R(0), 1)
	for i := 0; i < 300; i++ {
		chain.Addi(isa.R(1), isa.R(1), 1)
	}
	chain.Halt()
	out["chain"] = chain.MustBuild()

	wide := prog.NewBuilder("wide")
	for i := 0; i < 300; i++ {
		wide.Addi(isa.R(1+i%20), isa.R(0), int32(i))
	}
	wide.Halt()
	out["wide"] = wide.MustBuild()

	memory := prog.NewBuilder("memory")
	memory.Space("buf", 4096)
	memory.La(isa.R(1), "buf")
	memory.Li(isa.R(2), 0)
	memory.Li(isa.R(3), 100)
	memory.Label("loop")
	memory.St(isa.R(2), isa.R(1), 0)
	memory.Ld(isa.R(4), isa.R(1), 0)
	memory.Add(isa.R(5), isa.R(5), isa.R(4))
	memory.Addi(isa.R(1), isa.R(1), 8)
	memory.Addi(isa.R(2), isa.R(2), 1)
	memory.Bne(isa.R(2), isa.R(3), "loop")
	memory.Halt()
	out["memory"] = memory.MustBuild()

	fpmix := prog.NewBuilder("fpmix")
	fpmix.Float64s("vals", 1.5, 2.5, 3.5, 4.5)
	fpmix.La(isa.R(1), "vals")
	fpmix.Li(isa.R(2), 0)
	fpmix.Li(isa.R(3), 50)
	fpmix.Label("loop")
	fpmix.Fld(isa.F(1), isa.R(1), 0)
	fpmix.Fadd(isa.F(2), isa.F(2), isa.F(1))
	fpmix.Fmul(isa.F(3), isa.F(2), isa.F(1))
	fpmix.Mul(isa.R(4), isa.R(2), isa.R(2))
	fpmix.Addi(isa.R(2), isa.R(2), 1)
	fpmix.Bne(isa.R(2), isa.R(3), "loop")
	fpmix.Fcvtfi(isa.R(5), isa.F(2))
	fpmix.Halt()
	out["fpmix"] = fpmix.MustBuild()

	return out
}

// TestRegisterConservationAcrossConfigs runs every stress program to
// completion on every machine/steering combination and checks that no
// physical register or LSQ entry leaks.
func TestRegisterConservationAcrossConfigs(t *testing.T) {
	type combo struct {
		name string
		cfg  *config.Config
		st   func() Steerer
	}
	combos := []combo{
		{"clustered-naive", config.Clustered(), func() Steerer { return NaiveSteerer{} }},
		{"clustered-modulo", config.Clustered(), func() Steerer { return &moduloSteerer{} }},
		{"base-naive", config.Base(), func() Steerer { return NaiveSteerer{} }},
		{"ub-naive", config.UpperBound(), func() Steerer { return NaiveSteerer{} }},
		{"fifo-modulo", config.FIFOClustered(), func() Steerer { return &moduloSteerer{} }},
		{"symmetric-modulo", config.Symmetric(), func() Steerer { return &moduloSteerer{} }},
		{"clustered4-modulo", config.ClusteredN(4), func() Steerer { return &moduloSteerer{} }},
		{"clustered8-modulo", config.ClusteredN(8), func() Steerer { return &moduloSteerer{} }},
		{"clustered4-ring-modulo", config.ClusteredNRing(4), func() Steerer { return &moduloSteerer{} }},
	}
	for name, p := range invariantPrograms() {
		for _, c := range combos {
			m, err := New(c.cfg, p, c.st())
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c.name, err)
			}
			if _, err := m.Run(0); err != nil {
				t.Fatalf("%s/%s: %v (%s)", name, c.name, err, m.dumpState())
			}
			checkRegisterConservation(t, m)
		}
	}
}

// TestInFlightNeverExceedsWindow samples the window occupancy every cycle.
func TestInFlightNeverExceedsWindow(t *testing.T) {
	p := invariantPrograms()["memory"]
	cfg := config.Clustered()
	m, err := New(cfg, p, &moduloSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	for !m.haltCommitted {
		if err := m.step(); err != nil {
			t.Fatal(err)
		}
		// Copies ride in the ROB beyond MaxInFlight; program instructions
		// alone must respect the window.
		prog := 0
		for i := 0; i < m.robLen; i++ {
			if !m.robAt(i).IsCopy {
				prog++
			}
		}
		if prog > cfg.MaxInFlight {
			t.Fatalf("window occupancy %d > %d at cycle %d", prog, cfg.MaxInFlight, m.cycle)
		}
		if m.cycle > 1_000_000 {
			t.Fatal("program did not halt")
		}
	}
}

// TestIssueWidthRespected verifies per-cluster issue bandwidth using the
// counting tracer.
func TestIssueWidthRespected(t *testing.T) {
	p := invariantPrograms()["wide"]
	m, err := New(config.Clustered(), p, &moduloSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	perCycle := map[uint64][2]int{}
	m.SetTracer(tracerFunc(func(cycle uint64, ev Event, d *DynInst) {
		if ev != EvIssue || d == nil {
			return
		}
		// Copies issue from their source cluster's slots.
		c := d.Cluster
		if d.IsCopy {
			c = d.SrcCluster
		}
		counts := perCycle[cycle]
		counts[c]++
		perCycle[cycle] = counts
	}))
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for cycle, counts := range perCycle {
		for c, n := range counts {
			if n > 4 {
				t.Fatalf("cycle %d: cluster %d issued %d > width 4", cycle, c, n)
			}
		}
	}
}

// tracerFunc adapts a function to the Tracer interface.
type tracerFunc func(uint64, Event, *DynInst)

func (f tracerFunc) Trace(cycle uint64, ev Event, d *DynInst) { f(cycle, ev, d) }
