package core

import (
	"repro/internal/config"
	"repro/internal/isa"
)

// SteerInfo is the decode-time information the steering logic sees for one
// instruction, mirroring the hardware of Section 3: the instruction, its
// operands' current cluster locations (from the replicated map table), and
// the per-cluster workload measures used by the balance heuristics. The
// per-cluster arrays are sized for config.MaxClusters; only the first
// NumClusters entries are meaningful.
type SteerInfo struct {
	// Cycle is the current cycle.
	Cycle uint64
	// PC identifies the static instruction (the slice tables index on it).
	PC int
	// Inst is the decoded instruction.
	Inst isa.Inst
	// Forced is the placement constraint from the datapath (on the paper's
	// asymmetric machine: complex integer ops must run in the int cluster,
	// FP ops in the FP cluster); AnyCluster when the policy is free to
	// choose.
	Forced ClusterID
	// NumClusters is the machine's cluster count.
	NumClusters int

	// NumSrcs and SrcReg list the architectural register sources.
	NumSrcs int
	SrcReg  [2]isa.Reg
	// SrcIn reports, per source, the set of clusters currently holding a
	// valid mapping of the operand (more than one bit set = replicated
	// value).
	SrcIn [2]ClusterSet

	// Ready is the per-cluster count of ready waiting instructions this
	// cycle (metric I2's raw input).
	Ready [config.MaxClusters]int
	// IssueWidth is each cluster's issue bandwidth.
	IssueWidth [config.MaxClusters]int
	// IQFree is each cluster's remaining queue capacity.
	IQFree [config.MaxClusters]int
}

// OperandsIn counts how many sources currently reside in cluster c
// (replicated operands count for every cluster holding them).
//
//dca:hotpath
func (si *SteerInfo) OperandsIn(c ClusterID) int {
	n := 0
	for i := 0; i < si.NumSrcs; i++ {
		if si.SrcIn[i].Has(c) {
			n++
		}
	}
	return n
}

// Clusters returns the machine's cluster count, defaulting to the paper's
// two when the field was left unset (hand-built SteerInfos in tests).
//
//dca:hotpath
func (si *SteerInfo) Clusters() int {
	if si.NumClusters < 1 {
		return 2
	}
	return si.NumClusters
}

// Steerer is a dynamic cluster-assignment policy. The core calls Steer for
// every program instruction in decode order (copies excluded), even when
// the placement is forced, so policies can maintain their slice and parent
// tables; the returned cluster is overridden by Forced constraints.
type Steerer interface {
	// Name identifies the policy in reports.
	Name() string
	// Steer chooses a cluster for the instruction described by info. The
	// SteerInfo is reused across calls (the hot loop allocates nothing
	// per instruction); implementations must not retain it.
	Steer(info *SteerInfo) ClusterID
	// OnCycle is called once per simulated cycle with the per-cluster
	// ready counts (index = cluster), before any Steer call of that cycle
	// (input to the balance metrics). The slice is reused across cycles;
	// implementations must not retain it.
	OnCycle(cycle uint64, ready []int)
	// OnBranchResolved reports a resolved control transfer and whether it
	// mispredicted (input to the priority scheme's criticality counters).
	OnBranchResolved(pc int, mispredicted bool)
	// OnLoadResolved reports a load's cache outcome (true = L1 miss).
	OnLoadResolved(pc int, l1Miss bool)
}

// CloneableSteerer is a Steerer that can snapshot its mutable state.
// Machine.Checkpoint requires it: a warm-state checkpoint must own a
// private copy of the steering tables and balance counters so replaying a
// measurement run cannot disturb the frozen warm state. A policy that
// does not implement it is simply not checkpointable (the runner falls
// back to simulating the warm-up each time).
//
// NopSteerer deliberately does not implement the interface: a promoted
// no-op CloneSteerer on a stateful policy would silently share state.
type CloneableSteerer interface {
	Steerer
	// CloneSteerer returns a deep copy sharing no mutable state with the
	// receiver. Immutable policies may return the receiver itself.
	CloneSteerer() Steerer
}

// NopSteerer provides no-op hook implementations for policies that do not
// need them; embed it and override Steer.
type NopSteerer struct{}

// OnCycle implements Steerer.
func (NopSteerer) OnCycle(uint64, []int) {}

// OnBranchResolved implements Steerer.
func (NopSteerer) OnBranchResolved(int, bool) {}

// OnLoadResolved implements Steerer.
func (NopSteerer) OnLoadResolved(int, bool) {}

// NaiveSteerer is the conventional partitioning the base machine uses:
// every steerable instruction goes to the integer cluster; only
// FP-constrained instructions end up in the FP cluster.
type NaiveSteerer struct{ NopSteerer }

// Name implements Steerer.
func (NaiveSteerer) Name() string { return "naive" }

// Steer implements Steerer.
//
//dca:hotpath
func (NaiveSteerer) Steer(info *SteerInfo) ClusterID {
	if info.Forced != AnyCluster {
		return info.Forced
	}
	return IntCluster
}

// CloneSteerer implements CloneableSteerer (NaiveSteerer is stateless).
func (s NaiveSteerer) CloneSteerer() Steerer { return s }
