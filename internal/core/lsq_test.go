package core

import "testing"

// mkMem builds a DynInst standing in for a memory operation in the LSQ.
func mkMem(seq uint64, store bool, addr uint64, width int) *DynInst {
	d := &DynInst{
		Seq:      seq,
		isLoad:   !store,
		isStore:  store,
		memAddr:  addr,
		memWidth: width,
		destPhys: noPhys,
		state:    stateMemWait,
	}
	if store {
		// Stores carry base (src 0) and data (src 1) operands.
		d.numSrcs = 2
		d.srcPhys = [2]physReg{0, 1}
	}
	return d
}

// storeFiles returns register files where the store-data register (phys 1)
// has the given readiness.
func storeFiles(dataReady bool) []regFile {
	rf := newRegFile(4)
	a, _ := rf.Alloc() // phys 3 (stack order) — irrelevant
	_ = a
	if dataReady {
		rf.SetReady(physReg(1))
	}
	return []regFile{*rf, *newRegFile(4)}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a1   uint64
		w1   int
		a2   uint64
		w2   int
		want bool
	}{
		{0, 8, 0, 8, true},
		{0, 8, 8, 8, false},
		{0, 8, 7, 1, true},
		{4, 4, 0, 4, false},
		{0, 1, 0, 8, true},
		{100, 8, 96, 8, true},
	}
	for _, c := range cases {
		if got := overlap(c.a1, c.w1, c.a2, c.w2); got != c.want {
			t.Errorf("overlap(%d,%d,%d,%d) = %v, want %v", c.a1, c.w1, c.a2, c.w2, got, c.want)
		}
	}
}

func TestLoadBlockedByUnknownStoreAddress(t *testing.T) {
	q := newLSQ(8)
	st := mkMem(1, true, 0x100, 8)
	ld := mkMem(2, false, 0x200, 8)
	q.Add(st)
	q.Add(ld)
	q.MarkAddrKnown(ld)
	files := storeFiles(true)
	if got := q.classify(ld, files); got != loadBlocked {
		t.Fatalf("load with unknown earlier store address classified %v, want blocked", got)
	}
	q.MarkAddrKnown(st)
	if got := q.classify(ld, files); got != loadAccess {
		t.Fatalf("disjoint load classified %v, want access", got)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	q := newLSQ(8)
	st := mkMem(1, true, 0x100, 8)
	ld := mkMem(2, false, 0x100, 8)
	q.Add(st)
	q.Add(ld)
	q.MarkAddrKnown(st)
	q.MarkAddrKnown(ld)
	if got := q.classify(ld, storeFiles(true)); got != loadForward {
		t.Fatalf("matching store with ready data classified %v, want forward", got)
	}
	if got := q.classify(ld, storeFiles(false)); got != loadBlocked {
		t.Fatalf("matching store with pending data classified %v, want blocked", got)
	}
}

func TestYoungestMatchingStoreWins(t *testing.T) {
	q := newLSQ(8)
	st1 := mkMem(1, true, 0x100, 8)
	st2 := mkMem(2, true, 0x100, 8)
	ld := mkMem(3, false, 0x100, 8)
	q.Add(st1)
	q.Add(st2)
	q.Add(ld)
	for _, d := range []*DynInst{st1, st2, ld} {
		q.MarkAddrKnown(d)
	}
	// st2 (youngest earlier) has pending data: the load must block even
	// though st1's data is ready.
	files := storeFiles(false)
	if got := q.classify(ld, files); got != loadBlocked {
		t.Fatalf("classified %v, want blocked on youngest store", got)
	}
}

func TestLaterStoresDoNotAffectLoad(t *testing.T) {
	q := newLSQ(8)
	ld := mkMem(1, false, 0x100, 8)
	st := mkMem(2, true, 0x100, 8) // younger than the load
	q.Add(ld)
	q.Add(st)
	q.MarkAddrKnown(ld)
	if got := q.classify(ld, storeFiles(false)); got != loadAccess {
		t.Fatalf("younger store blocked an older load: %v", got)
	}
}

func TestPartialOverlapForwards(t *testing.T) {
	q := newLSQ(8)
	st := mkMem(1, true, 0x100, 1) // byte store
	ld := mkMem(2, false, 0x100, 8)
	q.Add(st)
	q.Add(ld)
	q.MarkAddrKnown(st)
	q.MarkAddrKnown(ld)
	if got := q.classify(ld, storeFiles(true)); got != loadForward {
		t.Fatalf("byte-store overlap classified %v, want forward", got)
	}
}

func TestReadyLoadsOrderAndFiltering(t *testing.T) {
	q := newLSQ(8)
	ld1 := mkMem(1, false, 0x10, 8)
	ld2 := mkMem(2, false, 0x20, 8)
	ld3 := mkMem(3, false, 0x30, 8)
	q.Add(ld1)
	q.Add(ld2)
	q.Add(ld3)
	q.MarkAddrKnown(ld1)
	q.MarkAddrKnown(ld3)
	ready := q.ReadyLoads(nil)
	if len(ready) != 2 || ready[0] != ld1 || ready[1] != ld3 {
		t.Fatalf("ReadyLoads returned %d entries in wrong order", len(ready))
	}
	ready[0].lsqAccessed = true
	if got := q.ReadyLoads(nil); len(got) != 1 || got[0] != ld3 {
		t.Fatal("accessed load not filtered out")
	}
}

func TestLSQRemoveAndCapacity(t *testing.T) {
	q := newLSQ(2)
	a := mkMem(1, false, 0, 8)
	b := mkMem(2, true, 8, 8)
	q.Add(a)
	q.Add(b)
	if q.Free() != 0 || q.Len() != 2 {
		t.Fatalf("Free=%d Len=%d", q.Free(), q.Len())
	}
	q.Remove(a)
	if q.Free() != 1 || q.Len() != 1 {
		t.Fatalf("after remove: Free=%d Len=%d", q.Free(), q.Len())
	}
	q.Remove(a) // double remove is a no-op
	if q.Len() != 1 {
		t.Fatal("double remove changed the queue")
	}
}

// TestLSQRemoveMidQueue exercises the general shift path: removing a
// non-head entry must preserve the program order of the survivors, across
// a wrapped ring.
func TestLSQRemoveMidQueue(t *testing.T) {
	q := newLSQ(4)
	// Wrap the ring: fill, drain two from the head, refill.
	pre1, pre2 := mkMem(1, false, 0, 8), mkMem(2, false, 8, 8)
	q.Add(pre1)
	q.Add(pre2)
	q.Remove(pre1)
	q.Remove(pre2)
	a := mkMem(3, false, 0x10, 8)
	b := mkMem(4, true, 0x20, 8)
	c := mkMem(5, false, 0x30, 8)
	d := mkMem(6, true, 0x40, 8)
	for _, e := range []*DynInst{a, b, c, d} {
		q.Add(e)
	}
	q.Remove(c) // mid-queue, past the wrap point
	if q.Len() != 3 || q.Free() != 1 {
		t.Fatalf("Len=%d Free=%d after mid-queue remove", q.Len(), q.Free())
	}
	for i, want := range []*DynInst{a, b, d} {
		if q.at(i) != want {
			t.Fatalf("entry %d is Seq %d, want Seq %d", i, q.at(i).Seq, want.Seq)
		}
	}
	q.Remove(d) // tail entry via the shift path
	if q.Len() != 2 || q.at(0) != a || q.at(1) != b {
		t.Fatal("tail remove corrupted order")
	}
	q.Remove(mkMem(99, false, 0x99, 8)) // absent entry is a no-op
	if q.Len() != 2 {
		t.Fatal("absent remove changed the queue")
	}
}
