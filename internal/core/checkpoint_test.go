// Checkpoint round-trip suite: restoring a warm-state snapshot and
// measuring must be byte-identical (JSON-encoded stats.Run) to measuring
// the unbroken machine, for every registered steering scheme across
// cluster counts, and the restored machine must keep the allocation-free
// steady state.
package core_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rdg"
	"repro/internal/stats"
	"repro/internal/steer"
)

// cpWarmup leaves plenty of in-flight state at the snapshot point (decode
// queue, issue queues, LSQ, pending wheel events) without exhausting the
// rdg programs, which run for a few thousand dynamic instructions.
const cpWarmup = 300

func runJSON(t *testing.T, r *stats.Run, err error, label string) []byte {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return b
}

// checkpointRoundTrip locks cp-based measurement against the unbroken run
// for one machine-building function.
func checkpointRoundTrip(t *testing.T, label string, newMachine func() *core.Machine) {
	t.Helper()
	// Unbroken reference run.
	ref, err := newMachine().RunWithWarmup(cpWarmup, 0)
	want := runJSON(t, ref, err, label+" unbroken")

	// Warm once, snapshot, measure twice from the same snapshot (the
	// checkpoint must be reusable), then measure the warmed machine itself
	// (the snapshot must not have disturbed it).
	m := newMachine()
	if err := m.Warm(cpWarmup); err != nil {
		t.Fatalf("%s: warm: %v", label, err)
	}
	cp, ok := m.Checkpoint()
	if !ok {
		t.Fatalf("%s: machine not checkpointable", label)
	}
	for pass := 1; pass <= 2; pass++ {
		r, err := cp.Measure(0)
		got := runJSON(t, r, err, label+" restored")
		if !bytes.Equal(got, want) {
			t.Errorf("%s: restored measurement pass %d diverged\n got: %s\nwant: %s", label, pass, got, want)
		}
	}
	r, err := m.Measure(0)
	got := runJSON(t, r, err, label+" original")
	if !bytes.Equal(got, want) {
		t.Errorf("%s: snapshotted machine's own measurement diverged\n got: %s\nwant: %s", label, got, want)
	}
}

// TestCheckpointRoundTrip covers every registered steering scheme on 2-,
// 4- and 8-cluster machines.
func TestCheckpointRoundTrip(t *testing.T) {
	p := rdg.RandomProgram(7)
	for _, n := range []int{2, 4, 8} {
		for _, scheme := range steer.Names() {
			cfg := diffConfigFor(scheme, n)
			newMachine := func() *core.Machine {
				params := steer.DefaultParams()
				params.Clusters = cfg.NumClusters()
				st, err := steer.NewWithParams(scheme, p, params)
				if err != nil {
					t.Fatalf("%s: %v", scheme, err)
				}
				m, err := core.New(cfg, p, st)
				if err != nil {
					t.Fatalf("%s/n=%d: %v", scheme, n, err)
				}
				return m
			}
			checkpointRoundTrip(t, scheme+"/n="+string(rune('0'+n)), newMachine)
		}
	}
}

// TestCheckpointRoundTripBaseMachines covers the two reference machines,
// which run the naive conventional split.
func TestCheckpointRoundTripBaseMachines(t *testing.T) {
	p := rdg.RandomProgram(9)
	for _, cfg := range []*config.Config{config.Base(), config.UpperBound()} {
		cfg := cfg
		newMachine := func() *core.Machine {
			m, err := core.New(cfg, p, core.NaiveSteerer{})
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name, err)
			}
			return m
		}
		checkpointRoundTrip(t, cfg.Name, newMachine)
	}
}

// plainSteerer implements core.Steerer without CloneSteerer.
type plainSteerer struct{ core.NopSteerer }

func (plainSteerer) Name() string                         { return "plain" }
func (plainSteerer) Steer(*core.SteerInfo) core.ClusterID { return core.IntCluster }

// TestCheckpointRequiresCloneableSteerer pins the refusal path: a policy
// that cannot snapshot its state makes the machine non-checkpointable
// (rather than silently sharing steering tables between runs).
func TestCheckpointRequiresCloneableSteerer(t *testing.T) {
	m, err := core.New(config.Clustered(), rdg.RandomProgram(1), plainSteerer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Checkpoint(); ok {
		t.Fatal("machine with a non-cloneable steerer reported checkpointable")
	}
}

// TestCheckpointRestoredMachineAllocFree runs the steady-state allocation
// gate on a restored machine: every capacity (pools, rings, scratch
// buffers, free lists) must survive the snapshot/restore round trip, or
// the first cycles after restore re-grow structures the clone shrank.
func TestCheckpointRestoredMachineAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs full warm-up")
	}
	for _, bc := range benchCases() {
		t.Run(bc.name, func(t *testing.T) {
			cp, ok := newBenchMachine(t, bc).Checkpoint()
			if !ok {
				t.Fatal("bench machine not checkpointable")
			}
			m := cp.Restore()
			if m == nil {
				t.Fatal("restore failed")
			}
			var stepErr error
			avg := testing.AllocsPerRun(2000, func() {
				if err := m.StepOneCycle(); err != nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if avg != 0 {
				t.Fatalf("restored machine allocates: %.3f allocs/cycle (want 0)", avg)
			}
		})
	}
}
