// Package prog defines the executable program image shared by the
// assembler, the workload builders, the functional emulator and the timing
// simulator: a text segment of decoded instructions plus an initialized
// data segment.
package prog

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// DefaultDataBase is where the data segment is placed unless a program says
// otherwise. It leaves the low addresses free so that null-pointer-style
// bugs in workloads fault loudly.
const DefaultDataBase = 0x10000

// DefaultStackBase is the conventional initial stack pointer for workloads
// that use a stack; the stack grows down from here.
const DefaultStackBase = 0x7F_0000

// Program is a loadable executable: instructions, initialized data and the
// symbol/label metadata needed for diagnostics and for the static
// partitioner.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Text is the instruction sequence; instruction i has PC i.
	Text []isa.Inst
	// Data is the initialized data image, loaded at DataBase.
	Data []byte
	// DataBase is the load address of Data.
	DataBase uint64
	// Entry is the instruction index where execution starts.
	Entry int
	// Labels maps text labels to instruction indices.
	Labels map[string]int
	// Symbols maps data symbols to absolute addresses.
	Symbols map[string]uint64
}

// Validate checks structural invariants: branch targets in range, register
// fields well formed, entry point in range. Workload builders call this so
// malformed programs fail at construction, not mid-simulation.
func (p *Program) Validate() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("prog %q: empty text segment", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Text) {
		return fmt.Errorf("prog %q: entry %d out of range [0,%d)", p.Name, p.Entry, len(p.Text))
	}
	for i, in := range p.Text {
		if int(in.Op) >= isa.NumOpcodes {
			return fmt.Errorf("prog %q: instruction %d: undefined opcode %d", p.Name, i, in.Op)
		}
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU, isa.J, isa.JAL:
			if in.Imm < 0 || int(in.Imm) >= len(p.Text) {
				return fmt.Errorf("prog %q: instruction %d (%v): target %d out of range", p.Name, i, in, in.Imm)
			}
		}
		for _, r := range []isa.Reg{in.Rd, in.Rs1, in.Rs2} {
			if r != isa.NoReg && !r.Valid() {
				return fmt.Errorf("prog %q: instruction %d (%v): invalid register %d", p.Name, i, in, r)
			}
		}
	}
	return nil
}

// LabelAt returns the label attached to instruction index pc, if any.
// When several labels share the address, the lexicographically first one
// wins, so disassembly output is reproducible.
func (p *Program) LabelAt(pc int) (string, bool) {
	for _, name := range sortedLabelNames(p.Labels) {
		if p.Labels[name] == pc {
			return name, true
		}
	}
	return "", false
}

// Builder constructs a Program incrementally. It offers mnemonic emit
// helpers, forward-referencing labels (patched by Build) and a data-segment
// allocator. Builders are how the workload analogs are written — they play
// the role the Alpha C compiler played in the original study.
type Builder struct {
	name     string
	text     []isa.Inst
	data     []byte
	dataBase uint64
	labels   map[string]int
	symbols  map[string]uint64
	// fixups record instructions whose Imm must be patched to a label's
	// final index.
	fixups []fixup
	errs   []error
}

type fixup struct {
	instIdx int
	label   string
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:     name,
		dataBase: DefaultDataBase,
		labels:   make(map[string]int),
		symbols:  make(map[string]uint64),
	}
}

// errf records a construction error; Build reports the first one.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("prog %q: %s", b.name, fmt.Sprintf(format, args...)))
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.text) }

// Label defines a text label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errf("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.text)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	b.text = append(b.text, in)
	return b
}

// emitTo appends an instruction whose Imm is a label reference.
func (b *Builder) emitTo(in isa.Inst, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instIdx: len(b.text), label: label})
	b.text = append(b.text, in)
	return b
}

// --- Integer ALU helpers ---

// Op3 emits a three-register ALU operation rd = rs1 op rs2.
func (b *Builder) Op3(op isa.Opcode, rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits an immediate ALU operation rd = rs1 op imm.
func (b *Builder) OpI(op isa.Opcode, rd, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.ADD, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.SUB, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.AND, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) *Builder         { return b.Op3(isa.OR, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.XOR, rd, rs1, rs2) }
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.SLL, rd, rs1, rs2) }
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.SRL, rd, rs1, rs2) }
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.SLT, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.MUL, rd, rs1, rs2) }
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.DIV, rd, rs1, rs2) }
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) *Builder        { return b.Op3(isa.REM, rd, rs1, rs2) }
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.ADDI, rd, rs1, imm) }
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.ANDI, rd, rs1, imm) }
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int32) *Builder  { return b.OpI(isa.ORI, rd, rs1, imm) }
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.XORI, rd, rs1, imm) }
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.SLLI, rd, rs1, imm) }
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.SRLI, rd, rs1, imm) }
func (b *Builder) Srai(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.SRAI, rd, rs1, imm) }
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.SLTI, rd, rs1, imm) }

// Li loads a 32-bit constant into rd (one or two instructions).
func (b *Builder) Li(rd isa.Reg, v int32) *Builder {
	if v >= -32768 && v < 32768 {
		return b.Addi(rd, isa.R(0), v)
	}
	b.Emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: v >> 16})
	if low := v & 0xFFFF; low != 0 {
		b.Ori(rd, rd, low)
	}
	return b
}

// La loads the absolute address of a data symbol into rd. The symbol must
// already be defined (allocate data before emitting code that refers to it).
func (b *Builder) La(rd isa.Reg, sym string) *Builder {
	addr, ok := b.symbols[sym]
	if !ok {
		b.errf("La: undefined data symbol %q", sym)
		return b
	}
	return b.Li(rd, int32(addr))
}

// Mov copies rs1 into rd.
func (b *Builder) Mov(rd, rs1 isa.Reg) *Builder { return b.Addi(rd, rs1, 0) }

// LiLabel loads the instruction index of a text label into rd (resolved at
// Build time). Programs use it to construct jump tables for indirect
// control flow (jr through a table), as interpreters do.
func (b *Builder) LiLabel(rd isa.Reg, label string) *Builder {
	return b.emitTo(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: isa.R(0)}, label)
}

// --- Memory helpers ---

func (b *Builder) Ld(rd, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: base, Imm: off})
}
func (b *Builder) Lw(rd, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.LW, Rd: rd, Rs1: base, Imm: off})
}
func (b *Builder) Lb(rd, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.LB, Rd: rd, Rs1: base, Imm: off})
}
func (b *Builder) St(val, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.ST, Rs2: val, Rs1: base, Imm: off})
}
func (b *Builder) Sw(val, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.SW, Rs2: val, Rs1: base, Imm: off})
}
func (b *Builder) Sb(val, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.SB, Rs2: val, Rs1: base, Imm: off})
}
func (b *Builder) Fld(fd, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.FLD, Rd: fd, Rs1: base, Imm: off})
}
func (b *Builder) Fst(fs, base isa.Reg, off int32) *Builder {
	return b.Emit(isa.Inst{Op: isa.FST, Rs2: fs, Rs1: base, Imm: off})
}

// --- Control-flow helpers (label-based) ---

func (b *Builder) branch(op isa.Opcode, rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitTo(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.BEQ, rs1, rs2, label)
}
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.BNE, rs1, rs2, label)
}
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.BLT, rs1, rs2, label)
}
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.BGE, rs1, rs2, label)
}
func (b *Builder) Bltu(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.BLTU, rs1, rs2, label)
}
func (b *Builder) Bgeu(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.BGEU, rs1, rs2, label)
}
func (b *Builder) Jmp(label string) *Builder {
	return b.emitTo(isa.Inst{Op: isa.J}, label)
}
func (b *Builder) Jal(rd isa.Reg, label string) *Builder {
	return b.emitTo(isa.Inst{Op: isa.JAL, Rd: rd}, label)
}
func (b *Builder) Jr(rs1 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.JR, Rs1: rs1})
}
func (b *Builder) Jalr(rd, rs1 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs1})
}

// --- FP helpers ---

func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.FADD, fd, fs1, fs2) }
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.FSUB, fd, fs1, fs2) }
func (b *Builder) Fmul(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.FMUL, fd, fs1, fs2) }
func (b *Builder) Fdiv(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.FDIV, fd, fs1, fs2) }
func (b *Builder) Fneg(fd, fs isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FNEG, Rd: fd, Rs1: fs})
}
func (b *Builder) Fabs(fd, fs isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FABS, Rd: fd, Rs1: fs})
}
func (b *Builder) Fmov(fd, fs isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FMOV, Rd: fd, Rs1: fs})
}
func (b *Builder) Fcvtif(fd, rs isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FCVTIF, Rd: fd, Rs1: rs})
}
func (b *Builder) Fcvtfi(rd, fs isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.FCVTFI, Rd: rd, Rs1: fs})
}

// --- Misc ---

func (b *Builder) Nop() *Builder  { return b.Emit(isa.Nop) }
func (b *Builder) Halt() *Builder { return b.Emit(isa.Inst{Op: isa.HALT}) }

// --- Data segment ---

// align pads the data segment to a multiple of n bytes.
func (b *Builder) align(n int) {
	for len(b.data)%n != 0 {
		b.data = append(b.data, 0)
	}
}

// Word64 allocates 8-byte words initialized to the given values under the
// symbol name and returns the symbol's address.
func (b *Builder) Word64(sym string, vals ...int64) uint64 {
	b.align(8)
	addr := b.dataBase + uint64(len(b.data))
	b.defineSym(sym, addr)
	for _, v := range vals {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], uint64(v))
		b.data = append(b.data, w[:]...)
	}
	return addr
}

// Float64s allocates 8-byte IEEE754 doubles under the symbol name.
func (b *Builder) Float64s(sym string, vals ...float64) uint64 {
	b.align(8)
	addr := b.dataBase + uint64(len(b.data))
	b.defineSym(sym, addr)
	for _, v := range vals {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		b.data = append(b.data, w[:]...)
	}
	return addr
}

// Bytes allocates raw bytes under the symbol name.
func (b *Builder) Bytes(sym string, raw []byte) uint64 {
	addr := b.dataBase + uint64(len(b.data))
	b.defineSym(sym, addr)
	b.data = append(b.data, raw...)
	return addr
}

// Space reserves n zeroed bytes (8-byte aligned) under the symbol name.
func (b *Builder) Space(sym string, n int) uint64 {
	b.align(8)
	addr := b.dataBase + uint64(len(b.data))
	b.defineSym(sym, addr)
	b.data = append(b.data, make([]byte, n)...)
	return addr
}

func (b *Builder) defineSym(sym string, addr uint64) {
	if sym == "" {
		return
	}
	if _, dup := b.symbols[sym]; dup {
		b.errf("duplicate data symbol %q", sym)
		return
	}
	b.symbols[sym] = addr
}

// Sym returns the address of a previously defined data symbol.
func (b *Builder) Sym(sym string) (uint64, bool) {
	a, ok := b.symbols[sym]
	return a, ok
}

// Build resolves labels and returns the finished, validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("prog %q: undefined label %q", b.name, f.label)
		}
		b.text[f.instIdx].Imm = int32(target)
	}
	p := &Program{
		Name:     b.name,
		Text:     b.text,
		Data:     b.data,
		DataBase: b.dataBase,
		Labels:   b.labels,
		Symbols:  b.symbols,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for statically known-good programs; it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
