package prog

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderSimpleLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.Li(isa.R(1), 0).
		Li(isa.R(2), 10).
		Label("top").
		Addi(isa.R(1), isa.R(1), 1).
		Bne(isa.R(1), isa.R(2), "top").
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 5 {
		t.Fatalf("text length = %d, want 5", len(p.Text))
	}
	br := p.Text[3]
	if br.Op != isa.BNE || br.Imm != 2 {
		t.Fatalf("branch not patched to label: %v", br)
	}
	if lbl, ok := p.LabelAt(2); !ok || lbl != "top" {
		t.Fatalf("LabelAt(2) = %q,%v", lbl, ok)
	}
	if _, ok := p.LabelAt(0); ok {
		t.Fatal("LabelAt(0) should be empty")
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder("fwd")
	b.Beq(isa.R(1), isa.R(2), "done").
		Addi(isa.R(1), isa.R(1), 1).
		Label("done").
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Imm != 2 {
		t.Fatalf("forward branch patched to %d, want 2", p.Text[0].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("expected duplicate-label error, got %v", err)
	}
}

func TestBuilderDataSymbols(t *testing.T) {
	b := NewBuilder("data")
	a1 := b.Word64("arr", 1, 2, 3)
	a2 := b.Space("buf", 64)
	a3 := b.Float64s("pi", 3.14)
	if a1 != DefaultDataBase {
		t.Fatalf("first symbol at %#x, want %#x", a1, DefaultDataBase)
	}
	if a2 != a1+24 {
		t.Fatalf("buf at %#x, want %#x", a2, a1+24)
	}
	if a3 != a2+64 {
		t.Fatalf("pi at %#x, want %#x", a3, a2+64)
	}
	b.La(isa.R(1), "arr").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := p.Symbols["buf"]; !ok || got != a2 {
		t.Fatalf("Symbols[buf] = %#x,%v", got, ok)
	}
	if len(p.Data) != 24+64+8 {
		t.Fatalf("data length = %d", len(p.Data))
	}
}

func TestBuilderAlignment(t *testing.T) {
	b := NewBuilder("align")
	b.Bytes("b", []byte{1, 2, 3}) // 3 bytes, unaligned
	addr := b.Word64("w", 7)
	if addr%8 != 0 {
		t.Fatalf("Word64 not 8-byte aligned: %#x", addr)
	}
}

func TestBuilderDuplicateSymbol(t *testing.T) {
	b := NewBuilder("dupsym")
	b.Word64("x", 1)
	b.Word64("x", 2)
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate data symbol") {
		t.Fatalf("expected duplicate-symbol error, got %v", err)
	}
}

func TestBuilderLaUndefined(t *testing.T) {
	b := NewBuilder("laund")
	b.La(isa.R(1), "missing").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("expected undefined-symbol error, got %v", err)
	}
}

func TestLiWideConstants(t *testing.T) {
	cases := []int32{0, 1, -1, 32767, -32768, 32768, 0x12340000, 0x12345678, -40000}
	for _, v := range cases {
		b := NewBuilder("li")
		b.Li(isa.R(1), v).Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatalf("Li(%d): %v", v, err)
		}
		// Emulate the one-or-two-instruction sequence by hand.
		var r1 int64
		for _, in := range p.Text {
			switch in.Op {
			case isa.ADDI:
				r1 = int64(in.Imm)
			case isa.LUI:
				r1 = int64(in.Imm) << 16
			case isa.ORI:
				r1 |= int64(in.Imm)
			}
		}
		if int32(r1) != v {
			t.Errorf("Li(%d) materialized %d", v, int32(r1))
		}
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	p := &Program{
		Name: "bad",
		Text: []isa.Inst{{Op: isa.J, Imm: 99}, {Op: isa.HALT}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range jump target")
	}
}

func TestValidateCatchesEmptyAndBadEntry(t *testing.T) {
	if err := (&Program{Name: "e"}).Validate(); err == nil {
		t.Fatal("Validate accepted empty text")
	}
	p := &Program{Name: "e2", Text: []isa.Inst{{Op: isa.HALT}}, Entry: 5}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted bad entry")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	b := NewBuilder("panics")
	b.Jmp("nowhere")
	b.MustBuild()
}
