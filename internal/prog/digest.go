package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/isa"
)

// Digest returns the hex SHA-256 of the program's execution-relevant
// identity: name, entry point, encoded text segment, data base and data
// image. Two programs with equal digests produce identical oracle streams
// for any instruction budget, which is what makes the digest usable as a
// content address for recorded traces (internal/trace stores it in every
// trace header and refuses to replay against a different program).
//
// Labels and symbols are deliberately excluded: they are diagnostic
// metadata and cannot affect execution.
func (p *Program) Digest() string {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(p.Name)))
	h.Write(n[:])
	h.Write([]byte(p.Name))
	binary.LittleEndian.PutUint64(n[:], uint64(p.Entry))
	h.Write(n[:])
	binary.LittleEndian.PutUint64(n[:], uint64(len(p.Text)))
	h.Write(n[:])
	h.Write(isa.EncodeText(p.Text))
	binary.LittleEndian.PutUint64(n[:], p.DataBase)
	h.Write(n[:])
	binary.LittleEndian.PutUint64(n[:], uint64(len(p.Data)))
	h.Write(n[:])
	h.Write(p.Data)
	return hex.EncodeToString(h.Sum(nil))
}
