package prog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// imageMagic identifies a serialized program image ("DCA1").
var imageMagic = [4]byte{'D', 'C', 'A', '1'}

// WriteImage serializes the program — text, data, entry point, labels and
// symbols — in a stable binary format, so assembled workloads can be
// shipped and reloaded without the assembler.
//
// Layout (all integers little-endian):
//
//	magic "DCA1"
//	u32 nameLen, name bytes
//	u32 entry
//	u32 textCount, textCount × 8-byte encoded instructions
//	u64 dataBase, u32 dataLen, data bytes
//	u32 labelCount, { u32 nameLen, name, u32 pc }...
//	u32 symbolCount, { u32 nameLen, name, u64 addr }...
func (p *Program) WriteImage(w io.Writer) error {
	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	writeString := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		buf.Write(n[:])
		buf.WriteString(s)
	}
	writeU32 := func(v uint32) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], v)
		buf.Write(n[:])
	}
	writeU64 := func(v uint64) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], v)
		buf.Write(n[:])
	}

	writeString(p.Name)
	writeU32(uint32(p.Entry))
	writeU32(uint32(len(p.Text)))
	buf.Write(isa.EncodeText(p.Text))
	writeU64(p.DataBase)
	writeU32(uint32(len(p.Data)))
	buf.Write(p.Data)

	writeU32(uint32(len(p.Labels)))
	for _, name := range sortedLabelNames(p.Labels) {
		writeString(name)
		writeU32(uint32(p.Labels[name]))
	}
	writeU32(uint32(len(p.Symbols)))
	for _, name := range sortedSymbolNames(p.Symbols) {
		writeString(name)
		writeU64(p.Symbols[name])
	}

	_, err := w.Write(buf.Bytes())
	return err
}

// ReadImage deserializes a program written by WriteImage and validates it.
func ReadImage(r io.Reader) (*Program, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("prog: reading image: %w", err)
	}
	b := &imageReader{raw: raw}
	var magic [4]byte
	b.read(magic[:])
	if magic != imageMagic {
		return nil, fmt.Errorf("prog: bad image magic %q", magic)
	}
	p := &Program{
		Labels:  map[string]int{},
		Symbols: map[string]uint64{},
	}
	p.Name = b.readString()
	p.Entry = int(b.readU32())
	textCount := int(b.readU32())
	textRaw := make([]byte, textCount*isa.Word)
	b.read(textRaw)
	if b.err == nil {
		p.Text, b.err = isa.DecodeText(textRaw)
	}
	p.DataBase = b.readU64()
	p.Data = make([]byte, int(b.readU32()))
	b.read(p.Data)
	for i, n := 0, int(b.readU32()); i < n && b.err == nil; i++ {
		name := b.readString()
		p.Labels[name] = int(b.readU32())
	}
	for i, n := 0, int(b.readU32()); i < n && b.err == nil; i++ {
		name := b.readString()
		p.Symbols[name] = b.readU64()
	}
	if b.err != nil {
		return nil, fmt.Errorf("prog: malformed image: %w", b.err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// imageReader is a bounds-checked cursor over the raw image.
type imageReader struct {
	raw []byte
	off int
	err error
}

func (b *imageReader) read(dst []byte) {
	if b.err != nil {
		return
	}
	if b.off+len(dst) > len(b.raw) {
		b.err = fmt.Errorf("truncated at offset %d (need %d bytes)", b.off, len(dst))
		return
	}
	copy(dst, b.raw[b.off:])
	b.off += len(dst)
}

func (b *imageReader) readU32() uint32 {
	var v [4]byte
	b.read(v[:])
	return binary.LittleEndian.Uint32(v[:])
}

func (b *imageReader) readU64() uint64 {
	var v [8]byte
	b.read(v[:])
	return binary.LittleEndian.Uint64(v[:])
}

func (b *imageReader) readString() string {
	n := int(b.readU32())
	if b.err != nil {
		return ""
	}
	if n > len(b.raw)-b.off {
		b.err = fmt.Errorf("string length %d exceeds image", n)
		return ""
	}
	s := make([]byte, n)
	b.read(s)
	return string(s)
}

func sortedLabelNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedSymbolNames(m map[string]uint64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
