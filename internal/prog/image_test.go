package prog

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

func buildImageProg(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("image-test")
	b.Word64("data", 1, 2, 3)
	b.Space("buf", 64)
	b.La(isa.R(1), "data")
	b.Label("top")
	b.Ld(isa.R(2), isa.R(1), 0)
	b.Addi(isa.R(1), isa.R(1), 8)
	b.Bne(isa.R(2), isa.R(0), "top")
	b.Halt()
	return b.MustBuild()
}

func TestImageRoundTrip(t *testing.T) {
	p := buildImageProg(t)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || q.DataBase != p.DataBase {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text length %d vs %d", len(q.Text), len(p.Text))
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Fatalf("instruction %d: %v vs %v", i, q.Text[i], p.Text[i])
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Fatal("data mismatch")
	}
	if len(q.Labels) != len(p.Labels) || q.Labels["top"] != p.Labels["top"] {
		t.Fatalf("labels mismatch: %v vs %v", q.Labels, p.Labels)
	}
	if len(q.Symbols) != len(p.Symbols) || q.Symbols["buf"] != p.Symbols["buf"] {
		t.Fatalf("symbols mismatch: %v vs %v", q.Symbols, p.Symbols)
	}
}

func TestImageDeterministic(t *testing.T) {
	p := buildImageProg(t)
	var a, b bytes.Buffer
	if err := p.WriteImage(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteImage(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("image serialization not deterministic")
	}
}

func TestImageRejectsBadMagic(t *testing.T) {
	if _, err := ReadImage(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestImageRejectsTruncation(t *testing.T) {
	p := buildImageProg(t)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Every prefix must be rejected, not crash.
	for _, n := range []int{0, 3, 4, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadImage(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncated image of %d bytes accepted", n)
		}
	}
}

func TestImageRejectsCorruptText(t *testing.T) {
	p := buildImageProg(t)
	var buf bytes.Buffer
	if err := p.WriteImage(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Find the first instruction's opcode byte and corrupt it. Header:
	// magic(4) + nameLen(4) + name + entry(4) + textCount(4).
	off := 4 + 4 + len(p.Name) + 4 + 4
	raw[off] = 0xEE // undefined opcode
	if _, err := ReadImage(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt opcode accepted")
	}
}
