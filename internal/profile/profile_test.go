package profile

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/workload"
)

func TestProfileSimpleLoop(t *testing.T) {
	src := `
.data
arr: .space 80
.text
  li r1, arr
  li r2, 10
loop:
  ld  r3, 0(r1)
  add r4, r4, r3
  st  r4, 0(r1)
  addi r1, r1, 8
  addi r2, r2, -1
  bne r2, r0, loop
  halt
`
	p, err := asm.Assemble("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Profile(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Window != 62 { // 2 li + 10*6 = 62 (halt not stepped... includes halt)
		// 2 setup + 60 loop + halt = 63; allow either accounting.
		if rep.Window != 63 {
			t.Fatalf("window = %d", rep.Window)
		}
	}
	// Mix: per iteration 1 load, 1 store, 1 branch of 6 instructions.
	if rep.Loads < 0.12 || rep.Loads > 0.20 {
		t.Errorf("load fraction = %.2f", rep.Loads)
	}
	if rep.Stores < 0.12 || rep.Stores > 0.20 {
		t.Errorf("store fraction = %.2f", rep.Stores)
	}
	if rep.Branches < 0.12 || rep.Branches > 0.20 {
		t.Errorf("branch fraction = %.2f", rep.Branches)
	}
	if rep.FP != 0 || rep.ComplexInt != 0 {
		t.Error("unexpected FP/complex instructions")
	}
	// The loop branch is taken 9 of 10 times.
	if rep.TakenRate < 0.85 || rep.TakenRate > 0.95 {
		t.Errorf("taken rate = %.2f", rep.TakenRate)
	}
	// 10 different 8-byte slots over 80 bytes = 3 cache lines.
	if rep.UniqueLines != 3 {
		t.Errorf("unique lines = %d, want 3", rep.UniqueLines)
	}
	if rep.UniquePCs != 9 {
		t.Errorf("unique PCs = %d, want 9", rep.UniquePCs)
	}
	if rep.LdStSlicePCs == 0 || rep.BrSlicePCs == 0 {
		t.Error("slice coverage empty")
	}
	var deps uint64
	for _, v := range rep.DepBuckets {
		deps += v
	}
	if deps == 0 {
		t.Error("no dependence distances recorded")
	}
}

func TestProfileString(t *testing.T) {
	p, err := workload.Load("compress")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Profile(p, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"compress", "mix:", "branches:", "footprint:", "slices:", "dependence"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareAllWorkloads(t *testing.T) {
	var reports []*Report
	for _, name := range workload.Names() {
		p, err := workload.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Profile(p, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	out := Compare(reports)
	for _, name := range workload.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("comparison missing %s", name)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 8 benchmarks
		t.Errorf("comparison has %d lines", len(lines))
	}
}

func TestPerlIndirectSignature(t *testing.T) {
	p, err := workload.Load("perl")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Profile(p, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IndirectFraction < 0.02 {
		t.Errorf("perl indirect fraction %.3f — dispatch signature missing", rep.IndirectFraction)
	}
}

func TestDepBucketBoundaries(t *testing.T) {
	cases := map[uint64]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3, 16: 4, 63: 4, 64: 5, 1000: 5}
	for d, want := range cases {
		if got := depBucket(d); got != want {
			t.Errorf("depBucket(%d) = %d, want %d", d, got, want)
		}
	}
}
