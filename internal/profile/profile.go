// Package profile characterizes workloads the way architecture papers
// table them: dynamic instruction mix, branch behaviour, memory working
// set, register dependence distances and slice coverage. The experiment
// write-ups use it to argue each SpecInt95 analog matches its original's
// signature (see workload.Info.Character), and cmd/dcaprofile prints it.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/rdg"
)

// Report is a workload characterization over an execution window.
type Report struct {
	// Name is the program name; Window the dynamic instructions profiled.
	Name   string
	Window uint64

	// Mix fractions by class (of all instructions).
	SimpleInt  float64
	ComplexInt float64
	FP         float64
	Loads      float64
	Stores     float64
	Branches   float64

	// CondBranchFraction is conditional branches / all control transfers;
	// TakenRate their taken fraction; IndirectFraction the JR/JALR share.
	CondBranchFraction float64
	TakenRate          float64
	IndirectFraction   float64

	// UniquePCs is the static footprint touched; UniqueLines the distinct
	// 32-byte data cache lines touched (working set, in lines).
	UniquePCs   int
	UniqueLines int

	// DepDistance histogram: for each consumed register, the number of
	// dynamic instructions since its producer. Buckets: 1, 2-3, 4-7, 8-15,
	// 16-63, 64+.
	DepBuckets [6]uint64

	// LdStSlicePCs and BrSlicePCs are the static slice coverages (of
	// UniquePCs) computed over the window's dynamic RDG.
	LdStSlicePCs int
	BrSlicePCs   int
}

// depBucket maps a dependence distance to its histogram bucket.
func depBucket(d uint64) int {
	switch {
	case d <= 1:
		return 0
	case d <= 3:
		return 1
	case d <= 7:
		return 2
	case d <= 15:
		return 3
	case d <= 63:
		return 4
	default:
		return 5
	}
}

// DepBucketLabels names the histogram buckets.
var DepBucketLabels = [6]string{"1", "2-3", "4-7", "8-15", "16-63", "64+"}

// Profile runs p functionally for window instructions (0 = a 200K default)
// and characterizes it.
func Profile(p *prog.Program, window uint64) (*Report, error) {
	if window == 0 {
		window = 200_000
	}
	rep := &Report{Name: p.Name}
	m := emu.New(p)

	var counts struct {
		simple, complex, fp, loads, stores, branches uint64
		cond, taken, indirect                        uint64
	}
	pcs := map[int]bool{}
	lines := map[uint64]bool{}
	lastWriter := map[isa.Reg]uint64{}

	var i uint64
	for i = 0; i < window && !m.Halted; i++ {
		st, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		in := st.Inst
		pcs[st.PC] = true
		switch in.Op.Class() {
		case isa.ClassSimpleInt:
			counts.simple++
		case isa.ClassComplexInt:
			counts.complex++
		case isa.ClassFP:
			counts.fp++
		case isa.ClassLoad:
			counts.loads++
			lines[st.MemAddr/32] = true
		case isa.ClassStore:
			counts.stores++
			lines[st.MemAddr/32] = true
		case isa.ClassBranch:
			counts.branches++
			if in.Op.IsCondBranch() {
				counts.cond++
				if st.Taken {
					counts.taken++
				}
			}
			if in.Op == isa.JR || in.Op == isa.JALR {
				counts.indirect++
			}
		}
		for _, r := range in.Srcs(nil) {
			if w, ok := lastWriter[r]; ok {
				rep.DepBuckets[depBucket(i-w)]++
			}
		}
		if d, ok := in.Dst(); ok {
			lastWriter[d] = i
		}
	}
	rep.Window = i
	if i == 0 {
		return rep, nil
	}
	n := float64(i)
	rep.SimpleInt = float64(counts.simple) / n
	rep.ComplexInt = float64(counts.complex) / n
	rep.FP = float64(counts.fp) / n
	rep.Loads = float64(counts.loads) / n
	rep.Stores = float64(counts.stores) / n
	rep.Branches = float64(counts.branches) / n
	if counts.branches > 0 {
		rep.CondBranchFraction = float64(counts.cond) / float64(counts.branches)
		rep.IndirectFraction = float64(counts.indirect) / float64(counts.branches)
	}
	if counts.cond > 0 {
		rep.TakenRate = float64(counts.taken) / float64(counts.cond)
	}
	rep.UniquePCs = len(pcs)
	rep.UniqueLines = len(lines)

	g, err := rdg.BuildDynamic(p, window)
	if err != nil {
		return nil, err
	}
	for pc := range g.LdStSlice() {
		if pcs[pc] {
			rep.LdStSlicePCs++
		}
	}
	for pc := range g.BrSlice() {
		if pcs[pc] {
			rep.BrSlicePCs++
		}
	}
	return rep, nil
}

// String renders the report as an aligned text block.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %d dynamic instructions\n", r.Name, r.Window)
	fmt.Fprintf(&sb, "  mix: %.1f%% simple-int, %.1f%% complex-int, %.1f%% FP, %.1f%% loads, %.1f%% stores, %.1f%% branches\n",
		100*r.SimpleInt, 100*r.ComplexInt, 100*r.FP, 100*r.Loads, 100*r.Stores, 100*r.Branches)
	fmt.Fprintf(&sb, "  branches: %.0f%% conditional (%.0f%% taken), %.0f%% indirect\n",
		100*r.CondBranchFraction, 100*r.TakenRate, 100*r.IndirectFraction)
	fmt.Fprintf(&sb, "  footprint: %d static instructions, %d data lines (~%dKB)\n",
		r.UniquePCs, r.UniqueLines, r.UniqueLines*32/1024)
	fmt.Fprintf(&sb, "  slices: LdSt %d/%d PCs, Br %d/%d PCs\n",
		r.LdStSlicePCs, r.UniquePCs, r.BrSlicePCs, r.UniquePCs)
	var total uint64
	for _, v := range r.DepBuckets {
		total += v
	}
	if total > 0 {
		sb.WriteString("  dependence distances: ")
		parts := make([]string, 0, len(r.DepBuckets))
		for i, v := range r.DepBuckets {
			parts = append(parts, fmt.Sprintf("%s:%.0f%%", DepBucketLabels[i], 100*float64(v)/float64(total)))
		}
		sb.WriteString(strings.Join(parts, " ") + "\n")
	}
	return sb.String()
}

// Compare renders several reports side by side (one row per metric),
// sorted by name, for the Table 1 companion in experiment write-ups.
func Compare(reports []*Report) string {
	sorted := append([]*Report(nil), reports...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %7s %7s %7s %7s %7s %9s %9s\n",
		"name", "branch", "load", "store", "taken", "indir", "staticPC", "WS(KB)")
	for _, r := range sorted {
		fmt.Fprintf(&sb, "%-10s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %9d %9d\n",
			r.Name, 100*r.Branches, 100*r.Loads, 100*r.Stores,
			100*r.TakenRate, 100*r.IndirectFraction, r.UniquePCs, r.UniqueLines*32/1024)
	}
	return sb.String()
}
