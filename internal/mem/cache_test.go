package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCfg() Config {
	return Config{Name: "T", SizeBytes: 1024, LineBytes: 32, Assoc: 2, HitLatency: 1}
}

func TestConfigValidate(t *testing.T) {
	good := testCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "z", SizeBytes: 0, LineBytes: 32, Assoc: 2},
		{Name: "l", SizeBytes: 1024, LineBytes: 33, Assoc: 2, HitLatency: 1},
		{Name: "d", SizeBytes: 1000, LineBytes: 32, Assoc: 2, HitLatency: 1},
		{Name: "s", SizeBytes: 32 * 2 * 3, LineBytes: 32, Assoc: 2, HitLatency: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted bad config %+v", c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustCache(testCfg(), nil)
	if lat := c.Access(0x100, false); lat != 1 {
		t.Errorf("first access latency %d", lat)
	}
	if c.Stat.Misses != 1 {
		t.Errorf("misses = %d, want 1", c.Stat.Misses)
	}
	c.Access(0x100, false)
	c.Access(0x11F, false) // same 32-byte line
	if c.Stat.Hits != 2 {
		t.Errorf("hits = %d, want 2", c.Stat.Hits)
	}
	if c.Stat.Accesses != 3 {
		t.Errorf("accesses = %d", c.Stat.Accesses)
	}
}

func TestMissLatencyIncludesNextLevel(t *testing.T) {
	l2 := MustCache(Config{Name: "L2", SizeBytes: 4096, LineBytes: 64, Assoc: 4, HitLatency: 6}, nil)
	l1 := MustCache(testCfg(), l2)
	if lat := l1.Access(0x40, false); lat != 7 { // 1 + 6
		t.Errorf("L1 miss latency = %d, want 7", lat)
	}
	if lat := l1.Access(0x40, false); lat != 1 {
		t.Errorf("L1 hit latency = %d, want 1", lat)
	}
	// Different L1 line, same L2 line: L1 miss, L2 hit.
	if lat := l1.Access(0x60, false); lat != 7 {
		t.Errorf("L1 miss L2 hit latency = %d, want 7", lat)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 16 sets of 32B lines: addresses with the same set index
	// differ by 512 bytes.
	c := MustCache(testCfg(), nil)
	const stride = 512
	c.Access(0*stride, false) // way 0
	c.Access(1*stride, false) // way 1
	c.Access(0*stride, false) // touch way 0: way 1 is now LRU
	c.Access(2*stride, false) // evicts way 1 (addr stride)
	if !c.Contains(0) || !c.Contains(2*stride) || c.Contains(1*stride) {
		t.Fatalf("LRU eviction wrong: contains(0)=%v contains(2s)=%v contains(1s)=%v",
			c.Contains(0), c.Contains(2*stride), c.Contains(1*stride))
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	next := MustCache(Config{Name: "L2", SizeBytes: 4096, LineBytes: 64, Assoc: 4, HitLatency: 6}, nil)
	c := MustCache(testCfg(), next)
	const stride = 512
	c.Access(0, true)         // dirty line in way 0
	c.Access(1*stride, false) // way 1
	c.Access(2*stride, false) // evicts dirty line 0 -> writeback
	if c.Stat.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stat.Writebacks)
	}
	// Clean eviction must not write back.
	c.Access(3*stride, false)
	if c.Stat.Writebacks != 1 {
		t.Errorf("clean eviction wrote back: %d", c.Stat.Writebacks)
	}
}

func TestDRAMLatency(t *testing.T) {
	d := NewDRAM()
	// 64-byte line over a 16-byte bus: 16 + 3*2 = 22 cycles.
	if lat := d.Access(0, false); lat != 22 {
		t.Errorf("DRAM latency = %d, want 22", lat)
	}
}

func TestHierarchyEndToEnd(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss (1) + L2 miss (6) + DRAM (22) = 29.
	if lat := h.L1D.Access(0x1000, false); lat != 29 {
		t.Errorf("cold access latency = %d, want 29", lat)
	}
	if lat := h.L1D.Access(0x1000, false); lat != 1 {
		t.Errorf("warm access latency = %d, want 1", lat)
	}
	// Neighboring L1 line but same L2 line: 1 + 6 = 7.
	if lat := h.L1D.Access(0x1020, false); lat != 7 {
		t.Errorf("L2-hit latency = %d, want 7", lat)
	}
	if h.L2.Stat.Accesses != 2 {
		t.Errorf("L2 accesses = %d, want 2", h.L2.Stat.Accesses)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate should be 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("miss rate = %g", got)
	}
}

func TestFlush(t *testing.T) {
	c := MustCache(testCfg(), nil)
	c.Access(0x40, false)
	if !c.Contains(0x40) {
		t.Fatal("line not resident after access")
	}
	c.Flush()
	if c.Contains(0x40) {
		t.Fatal("line resident after flush")
	}
}

// Property: a second access to any address immediately after the first is
// always a hit with hit latency (temporal locality invariant).
func TestAccessThenHitProperty(t *testing.T) {
	c := MustCache(Config{Name: "P", SizeBytes: 8192, LineBytes: 32, Assoc: 4, HitLatency: 1}, nil)
	f := func(addr uint64) bool {
		c.Access(addr, false)
		return c.Access(addr, false) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the cache never holds more distinct lines than its capacity.
func TestCapacityInvariant(t *testing.T) {
	cfg := Config{Name: "C", SizeBytes: 512, LineBytes: 32, Assoc: 2, HitLatency: 1}
	c := MustCache(cfg, nil)
	r := rand.New(rand.NewSource(3))
	addrs := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		a := uint64(r.Intn(1 << 20))
		c.Access(a, r.Intn(2) == 0)
		addrs[a&^31] = true
	}
	resident := 0
	for a := range addrs {
		if c.Contains(a) {
			resident++
		}
	}
	maxLines := cfg.SizeBytes / cfg.LineBytes
	if resident > maxLines {
		t.Fatalf("%d lines resident, capacity %d", resident, maxLines)
	}
}

// Property: hits + misses == accesses always.
func TestStatsConservation(t *testing.T) {
	c := MustCache(testCfg(), nil)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		c.Access(uint64(r.Intn(1<<16)), r.Intn(2) == 0)
	}
	if c.Stat.Hits+c.Stat.Misses != c.Stat.Accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", c.Stat.Hits, c.Stat.Misses, c.Stat.Accesses)
	}
}
