// Package mem models the memory hierarchy of the simulated processor: a
// generic set-associative cache with LRU replacement, composable into the
// paper's configuration (separate 64KB L1 instruction and data caches, a
// unified 256KB L2, and a DRAM latency model).
//
// The model is a latency oracle: an access returns the number of cycles
// until the data is available, updating tag state along the way. Bandwidth
// at the L1 data cache (3 read/write ports in the paper's Table 2) is
// arbitrated by the core, which limits how many accesses start per cycle.
package mem

import "fmt"

// Level is anything that can service a memory access and report its
// latency in cycles.
type Level interface {
	// Access performs a read (write=false) or write (write=true) of the
	// line containing addr and returns the total latency in cycles until
	// the data is available at this level's consumer.
	Access(addr uint64, write bool) int
	// Name identifies the level in statistics output.
	Name() string
}

// Config describes one cache level.
type Config struct {
	// Name identifies the cache in statistics ("L1I", "L1D", "L2").
	Name string `json:"Name"`
	// SizeBytes is the total capacity.
	SizeBytes int `json:"SizeBytes"`
	// LineBytes is the line (block) size.
	LineBytes int `json:"LineBytes"`
	// Assoc is the set associativity.
	Assoc int `json:"Assoc"`
	// HitLatency is the access time in cycles on a hit.
	HitLatency int `json:"HitLatency"`
}

// Validate checks that the geometry is well formed (power-of-two line and
// set counts, size divisible by line×assoc).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("mem %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("mem %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse implements LRU: higher is more recent.
	lastUse uint64
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement.
type Cache struct {
	cfg      Config
	next     Level
	sets     [][]cacheLine
	setMask  uint64
	lineBits uint
	clock    uint64
	// Stat is the activity counter set; read it directly for reports.
	Stat Stats
}

// NewCache builds a cache over the given next level (which may be nil for
// tests, making every miss cost only the hit latency).
func NewCache(cfg Config, next Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([][]cacheLine, nsets)
	backing := make([]cacheLine, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	return &Cache{
		cfg:      cfg,
		next:     next,
		sets:     sets,
		setMask:  uint64(nsets - 1),
		lineBits: lineBits,
	}, nil
}

// MustCache is NewCache for statically known-good configurations.
func MustCache(cfg Config, next Level) *Cache {
	c, err := NewCache(cfg, next)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Access implements Level: it looks up the line containing addr, fetching
// it from the next level on a miss, and returns the total latency.
func (c *Cache) Access(addr uint64, write bool) int {
	c.clock++
	c.Stat.Accesses++
	setIdx := (addr >> c.lineBits) & c.setMask
	tag := addr >> c.lineBits
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stat.Hits++
			set[i].lastUse = c.clock
			if write {
				set[i].dirty = true
			}
			return c.cfg.HitLatency
		}
	}

	// Miss: choose LRU victim, write back if dirty, fill from next level.
	c.Stat.Misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.Stat.Writebacks++
		// Writebacks go down the hierarchy off the critical path; tag
		// state below is updated but their latency is not charged to this
		// access (standard write-buffer assumption).
		if c.next != nil {
			c.next.Access(set[victim].tag<<c.lineBits, true)
		}
	}
	latency := c.cfg.HitLatency
	if c.next != nil {
		latency += c.next.Access(addr, false)
	}
	set[victim] = cacheLine{tag: tag, valid: true, dirty: write, lastUse: c.clock}
	return latency
}

// Contains reports whether the line holding addr is currently resident
// (without touching LRU or statistics); used by tests and by the priority
// steering scheme's miss-profiling hooks.
func (c *Cache) Contains(addr uint64) bool {
	setIdx := (addr >> c.lineBits) & c.setMask
	tag := addr >> c.lineBits
	for _, ln := range c.sets[setIdx] {
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines (statistics are preserved).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
}

// DRAM is the fixed-latency main-memory model: a first-chunk latency plus
// an inter-chunk latency for each additional bus-width transfer of a line.
type DRAM struct {
	// FirstChunk is the latency of the first BusBytes transfer.
	FirstChunk int
	// InterChunk is the latency of each subsequent transfer.
	InterChunk int
	// BusBytes is the memory bus width.
	BusBytes int
	// LineBytes is the transfer (line) size requests arrive in.
	LineBytes int
	// Stat counts accesses (hits/misses are meaningless here).
	Stat Stats
}

// NewDRAM returns the paper's main-memory model: 16-byte bus, 16-cycle
// first chunk, 2-cycle inter-chunk, filling 64-byte L2 lines.
func NewDRAM() *DRAM {
	return &DRAM{FirstChunk: 16, InterChunk: 2, BusBytes: 16, LineBytes: 64}
}

// Name implements Level.
func (d *DRAM) Name() string { return "DRAM" }

// Access implements Level.
func (d *DRAM) Access(addr uint64, write bool) int {
	d.Stat.Accesses++
	chunks := d.LineBytes / d.BusBytes
	if chunks < 1 {
		chunks = 1
	}
	return d.FirstChunk + (chunks-1)*d.InterChunk
}

// Hierarchy bundles the paper's full memory system.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	Main *DRAM
}

// HierarchyConfig carries the tunable parameters of the paper's Table 2
// memory system.
type HierarchyConfig struct {
	L1I Config `json:"L1I"`
	L1D Config `json:"L1D"`
	L2  Config `json:"L2"`
}

// DefaultHierarchyConfig returns Table 2's memory parameters: 64KB 2-way
// 32B-line L1s with 1-cycle hits and 6-cycle miss penalty (the L2 hit
// time), and a 256KB 4-way 64B-line unified L2.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{Name: "L1I", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitLatency: 1},
		L1D: Config{Name: "L1D", SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, HitLatency: 1},
		L2:  Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Assoc: 4, HitLatency: 6},
	}
}

// NewHierarchy builds the two-level hierarchy over DRAM.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	main := NewDRAM()
	l2, err := NewCache(cfg.L2, main)
	if err != nil {
		return nil, err
	}
	l1i, err := NewCache(cfg.L1I, l2)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, Main: main}, nil
}
