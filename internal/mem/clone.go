package mem

// Clone returns a deep copy of the cache over the given next level: tag
// state, LRU clock and statistics are duplicated, so accesses through
// either cache never alias. The set slices are re-sliced from one backing
// array exactly as NewCache lays them out. Warm-state checkpointing
// (internal/core's Checkpoint) snapshots hierarchies with it at the
// warm-up boundary.
func (c *Cache) Clone(next Level) *Cache {
	nc := *c
	nc.next = next
	nsets := len(c.sets)
	sets := make([][]cacheLine, nsets)
	backing := make([]cacheLine, nsets*c.cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:c.cfg.Assoc], backing[c.cfg.Assoc:]
		copy(sets[i], c.sets[i])
	}
	nc.sets = sets
	return &nc
}

// Clone returns a copy of the DRAM model (its state is only counters).
func (d *DRAM) Clone() *DRAM {
	nd := *d
	return &nd
}

// Clone returns a deep copy of the hierarchy with the level links rebuilt
// to mirror NewHierarchy: both L1s miss into the copied L2, which misses
// into the copied DRAM.
func (h *Hierarchy) Clone() *Hierarchy {
	main := h.Main.Clone()
	l2 := h.L2.Clone(main)
	return &Hierarchy{
		L1I:  h.L1I.Clone(l2),
		L1D:  h.L1D.Clone(l2),
		L2:   l2,
		Main: main,
	}
}
