package steer

import (
	"fmt"

	"repro/internal/core"
)

// NonSliceBalance implements Section 3.5's non-slice balance steering:
// slice instructions steer to the integer cluster as in the plain slice
// schemes, while non-slice instructions are used to repair workload
// balance — they go to the least loaded cluster when the imbalance
// counters signal a strong imbalance, and to the cluster holding their
// operands otherwise. On N > 2 clusters (Params.Clusters) "least loaded"
// is the argmin over the per-cluster workload counters.
type NonSliceBalance struct {
	core.NopSteerer
	slice *Slice
	im    *imbalance
}

// NewNonSliceBalance returns the scheme over the given slice kind with the
// paper's balance constants.
func NewNonSliceBalance(kind SliceKind, p Params) *NonSliceBalance {
	return &NonSliceBalance{slice: NewSlice(kind), im: newImbalance(p)}
}

// Name implements core.Steerer.
func (s *NonSliceBalance) Name() string {
	return fmt.Sprintf("%s-nonslice", s.slice.kind)
}

// OnCycle implements core.Steerer.
//
//dca:hotpath
func (s *NonSliceBalance) OnCycle(cycle uint64, ready []int) {
	s.im.onCycle(ready)
}

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *NonSliceBalance) Steer(info *core.SteerInfo) core.ClusterID {
	inSlice := s.slice.observe(info)
	c := s.choose(info, inSlice)
	s.im.onSteer(c)
	return c
}

//dca:hotpath
func (s *NonSliceBalance) choose(info *core.SteerInfo, inSlice bool) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	if inSlice {
		return core.IntCluster
	}
	return steerByOperandsAndBalance(info, s.im)
}

// steerByOperandsAndBalance is the shared non-slice placement rule: under
// strong imbalance go to the least loaded cluster; otherwise follow the
// operands (the cluster holding most of them), breaking ties among the
// operand-richest clusters toward the least loaded one.
//
//dca:hotpath
func steerByOperandsAndBalance(info *core.SteerInfo, im *imbalance) core.ClusterID {
	ready := info.Ready[:min(im.n, len(info.Ready))]
	if im.strong() {
		return im.leastLoaded(ready)
	}
	// Clusters holding the operand majority; with no operands (or a full
	// tie) every cluster is a candidate and load decides, as in the
	// paper's two-cluster rule.
	best, cands := 0, core.ClusterSet(0)
	for c := 0; c < im.n; c++ {
		id := core.ClusterID(c)
		switch n := info.OperandsIn(id); {
		case n > best:
			best, cands = n, core.ClusterSet(0).Add(id)
		case n == best:
			cands = cands.Add(id)
		}
	}
	if c := cands.Single(); c != core.AnyCluster {
		return c
	}
	return im.leastLoadedOf(cands, ready)
}
