package steer

import (
	"fmt"

	"repro/internal/core"
)

// NonSliceBalance implements Section 3.5: slice instructions steer to the
// integer cluster as in the plain slice schemes, while non-slice
// instructions are used to repair workload balance — they go to the least
// loaded cluster when the imbalance counter signals a strong imbalance,
// and to the cluster holding their operands otherwise.
type NonSliceBalance struct {
	core.NopSteerer
	slice *Slice
	im    *imbalance
}

// NewNonSliceBalance returns the scheme over the given slice kind with the
// paper's balance constants.
func NewNonSliceBalance(kind SliceKind, p Params) *NonSliceBalance {
	return &NonSliceBalance{slice: NewSlice(kind), im: newImbalance(p)}
}

// Name implements core.Steerer.
func (s *NonSliceBalance) Name() string {
	return fmt.Sprintf("%s-nonslice", s.slice.kind)
}

// OnCycle implements core.Steerer.
func (s *NonSliceBalance) OnCycle(cycle uint64, readyInt, readyFP int) {
	s.im.onCycle(readyInt, readyFP)
}

// Steer implements core.Steerer.
func (s *NonSliceBalance) Steer(info *core.SteerInfo) core.ClusterID {
	inSlice := s.slice.observe(info)
	c := s.choose(info, inSlice)
	s.im.onSteer(c)
	return c
}

func (s *NonSliceBalance) choose(info *core.SteerInfo, inSlice bool) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	if inSlice {
		return core.IntCluster
	}
	return steerByOperandsAndBalance(info, s.im)
}

// steerByOperandsAndBalance is the shared non-slice placement rule: under
// strong imbalance go to the least loaded cluster; otherwise follow the
// operands (majority cluster), breaking ties toward the least loaded side.
func steerByOperandsAndBalance(info *core.SteerInfo, im *imbalance) core.ClusterID {
	if im.strong() {
		return im.leastLoaded(info.Ready[0], info.Ready[1])
	}
	inInt := info.OperandsIn(core.IntCluster)
	inFP := info.OperandsIn(core.FPCluster)
	switch {
	case inInt > inFP:
		return core.IntCluster
	case inFP > inInt:
		return core.FPCluster
	default:
		return im.leastLoaded(info.Ready[0], info.Ready[1])
	}
}
