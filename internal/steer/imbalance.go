// Package steer implements the dynamic cluster-assignment policies of
// Canal, Parcerisa and González (HPCA 2000), Section 3: slice steering,
// non-slice balance steering, slice balance steering, priority slice
// balance steering, general balance steering, modulo steering, the
// FIFO-based scheme of Palacharla/Jouppi/Smith, and a profile-based
// re-creation of Sastry/Palacharla/Smith's static partitioning.
//
// Policies implement the core.Steerer interface: the pipeline calls Steer
// for every program instruction in decode order, plus per-cycle and
// resolution hooks that feed the balance and criticality machinery.
//
// The balance machinery is generalized from the paper's two clusters to N
// (Params.Clusters): each cluster keeps its own workload counter, and the
// paper's signed imbalance counter is recovered as the pairwise difference
// of counters — on a two-cluster machine every decision is bit-identical
// to the original signed-delta formulation.
package steer

import "repro/internal/core"

// Params carries the tunable constants of the balance machinery. The
// paper's empirically chosen values are the defaults.
type Params struct {
	// Threshold is the strong-imbalance cutoff on the combined counter
	// (paper: 8).
	Threshold int `json:"Threshold"`
	// Window is the number of cycles the instantaneous imbalance metric
	// I2 is averaged over (paper: N=16).
	Window int `json:"Window"`
	// Epoch is the criticality-threshold adjustment period in cycles for
	// the priority scheme (paper: 8192).
	Epoch uint64 `json:"Epoch"`
	// CriticalFraction is the target fraction of instructions in critical
	// slices (paper: 0.5).
	CriticalFraction float64 `json:"CriticalFraction"`
	// IssueWidth is the per-cluster issue width the I2 metric compares
	// ready counts against (Table 2: 4).
	IssueWidth int `json:"IssueWidth"`
	// Clusters is the cluster count of the machine the policy will steer
	// for; 0 means the paper's two. It must match the config.Config the
	// core.Machine runs (experiments.RunOne and the CLIs keep them in
	// sync).
	Clusters int `json:"Clusters"`
	// UseI1 and UseI2 optionally disable one component of the combined
	// imbalance metric for the ablation study (nil or true = enabled).
	UseI1 *bool `json:"UseI1"`
	UseI2 *bool `json:"UseI2"`
}

// DefaultParams returns the paper's constants (on the paper's two-cluster
// machine).
func DefaultParams() Params {
	return Params{Threshold: 8, Window: 16, Epoch: 8192, CriticalFraction: 0.5, IssueWidth: 4, Clusters: 2}
}

// clusterCount normalizes Params.Clusters (0 → the paper's 2).
//
//dca:hotpath
func (p Params) clusterCount() int {
	if p.Clusters < 1 {
		return 2
	}
	return p.Clusters
}

// imbalance implements Section 3.5's workload-imbalance estimation,
// generalized to N clusters. Each cluster c carries two counters:
//
//   - I2: its ready-instruction count, recorded only on cycles when some
//     cluster has more ready instructions than its issue width while
//     another has fewer (otherwise every cluster issues at full rate and
//     the workload is considered balanced), averaged over the last Window
//     cycles;
//   - I1: the number of instructions steered to the cluster, incremented
//     as each instruction is steered — so every instruction decoded in the
//     same cycle sees a different balance value and massed same-cluster
//     steerings are avoided (Section 3.5's wording). Because it is
//     cumulative, policies that react to it alternate clusters in
//     hysteresis-band-sized chunks.
//
// Decisions read the counters only through pairwise differences
// (delta(c, o) = avg(I2[c]) − avg(I2[o]) + I1[c] − I1[o], with the window
// average taken over the difference so integer truncation matches the
// original), which on a two-cluster machine reduces exactly to the
// paper's single signed counter: delta(FP, Int) is the combined counter,
// positive when the FP cluster is the more loaded one.
type imbalance struct {
	p      Params
	n      int
	window [][]int // per cluster: Window gated ready-count samples
	sum    []int   // per cluster: running window sum
	idx    int
	filled int
	i1     []int
	useI1  bool
	useI2  bool
}

func newImbalance(p Params) *imbalance {
	n := p.clusterCount()
	im := &imbalance{p: p, n: n, sum: make([]int, n), i1: make([]int, n), useI1: true, useI2: true}
	im.window = make([][]int, n)
	for c := range im.window {
		im.window[c] = make([]int, p.Window)
	}
	if p.UseI1 != nil {
		im.useI1 = *p.UseI1
	}
	if p.UseI2 != nil {
		im.useI2 = *p.UseI2
	}
	return im
}

// onCycle records the cycle's instantaneous I2 samples. Ready counts are
// recorded only when at least one cluster is above its issue width and at
// least one below (the paper's gate: otherwise all clusters issue at full
// rate); ungated cycles record zeros, decaying the window average.
//
//dca:hotpath
func (im *imbalance) onCycle(ready []int) {
	width := im.p.IssueWidth
	gated := false
	if im.useI2 {
		over, under := false, false
		for c := 0; c < im.n; c++ {
			r := 0
			if c < len(ready) {
				r = ready[c]
			}
			if r > width {
				over = true
			}
			if r < width {
				under = true
			}
		}
		gated = over && under
	}
	for c := 0; c < im.n; c++ {
		sample := 0
		if gated && c < len(ready) {
			sample = ready[c]
		}
		im.sum[c] -= im.window[c][im.idx]
		im.window[c][im.idx] = sample
		im.sum[c] += sample
	}
	im.idx = (im.idx + 1) % im.p.Window
	if im.filled < im.p.Window {
		im.filled++
	}
}

// onSteer adjusts the steered-count counter for one steered instruction.
// The counters are saturating hardware counters: a cluster's count may
// exceed the least-loaded cluster's by at most 4×threshold, so a long
// one-sided phase (e.g. a large slice pinned to one cluster) cannot wind
// the difference up beyond what a few balancing cycles can work off. The
// counters are renormalized so their minimum stays at zero (differences,
// the only thing decisions read, are unaffected).
//
//dca:hotpath
func (im *imbalance) onSteer(c core.ClusterID) {
	if !im.useI1 || c < 0 || int(c) >= im.n {
		return
	}
	limit := 4 * im.p.Threshold
	min := im.i1[0]
	for _, v := range im.i1[1:] {
		if v < min {
			min = v
		}
	}
	if im.i1[c]-min < limit {
		im.i1[c]++
	}
	// Renormalize so the minimum counter sits at zero; differences — the
	// only thing decisions read — are unaffected, and the counters stay
	// bounded by the clamp.
	min = im.i1[0]
	for _, v := range im.i1[1:] {
		if v < min {
			min = v
		}
	}
	if min != 0 {
		for i := range im.i1 {
			im.i1[i] -= min
		}
	}
}

// delta returns the combined imbalance counter read pairwise: positive
// when cluster c is more loaded than cluster o. The window average is
// computed on the difference of sums, reproducing the truncated integer
// division of the paper's single-counter hardware.
//
//dca:hotpath
func (im *imbalance) delta(c, o core.ClusterID) int {
	avg := 0
	if im.filled > 0 {
		avg = (im.sum[c] - im.sum[o]) / im.filled
	}
	return avg + im.i1[c] - im.i1[o]
}

// deltaGE reports delta(c, o) >= a without the integer division (the
// division dominated the steering cost on wide machines: the hot
// comparisons run once per cluster pair per steered instruction). It
// reproduces delta's truncated-toward-zero semantics exactly:
// with q = trunc(ds/f), q >= b reduces to ds >= b*f when ds >= 0 (floor)
// and to ds > (b-1)*f when ds < 0 (ceiling). TestDeltaComparisons pins the
// equivalence against the division form.
//
//dca:hotpath
func (im *imbalance) deltaGE(c, o core.ClusterID, a int) bool {
	di := im.i1[c] - im.i1[o]
	if im.filled == 0 {
		return di >= a
	}
	ds := im.sum[c] - im.sum[o]
	b := a - di
	if ds >= 0 {
		return ds >= b*im.filled
	}
	return ds > (b-1)*im.filled
}

// deltaSign returns the sign of delta(c, o) using only deltaGE.
//
//dca:hotpath
func (im *imbalance) deltaSign(c, o core.ClusterID) int {
	if im.deltaGE(c, o, 1) {
		return 1
	}
	if !im.deltaGE(c, o, 0) {
		return -1
	}
	return 0
}

// value returns the two-cluster reading of the counter — delta(FP, Int),
// the paper's combined imbalance counter (positive = FP cluster more
// loaded). It is only meaningful on two clusters; N-cluster decisions use
// delta/leastLoaded directly.
//
//dca:hotpath
func (im *imbalance) value() int {
	return im.delta(core.FPCluster, core.IntCluster)
}

// strong reports whether any pair of clusters differs by at least the
// threshold (on two clusters: |combined counter| ≥ threshold).
//
//dca:hotpath
func (im *imbalance) strong() bool {
	for c := 0; c < im.n; c++ {
		for o := c + 1; o < im.n; o++ {
			cc, oo := core.ClusterID(c), core.ClusterID(o)
			// |delta| >= T, checked both ways (delta is antisymmetric).
			if im.deltaGE(cc, oo, im.p.Threshold) || im.deltaGE(oo, cc, im.p.Threshold) {
				return true
			}
		}
	}
	return false
}

// allClusters returns the candidate set holding every cluster of the
// machine.
//
//dca:hotpath
func (im *imbalance) allClusters() core.ClusterSet {
	return core.ClusterSet(1<<uint(im.n)) - 1
}

// overloaded reports whether cluster c is currently on the loaded side of
// the counters: strictly more loaded than the least-loaded cluster.
//
//dca:hotpath
func (im *imbalance) overloaded(c core.ClusterID) bool {
	if c < 0 || int(c) >= im.n {
		return false
	}
	return im.deltaGE(c, im.leastLoadedIn(im.allClusters(), nil), 1)
}

// leastLoaded returns the cluster the counters say has the most spare
// capacity, falling back to the raw ready counts on ties (and to the
// lowest cluster index after that).
//
//dca:hotpath
func (im *imbalance) leastLoaded(ready []int) core.ClusterID {
	return im.leastLoadedIn(im.allClusters(), ready)
}

// leastLoadedOf restricts leastLoaded to the candidate set.
//
//dca:hotpath
func (im *imbalance) leastLoadedOf(cands core.ClusterSet, ready []int) core.ClusterID {
	return im.leastLoadedIn(cands, ready)
}

// readyAt reads the ready count for cluster c, treating a short or nil
// slice as zero.
//
//dca:hotpath
func readyAt(ready []int, c core.ClusterID) int {
	if int(c) < len(ready) {
		return ready[c]
	}
	return 0
}

// leastLoadedIn scans the clusters in the candidate set and keeps the
// least loaded: a candidate replaces the incumbent when its pairwise
// counter says it is strictly less loaded, or on a counter tie when it has
// strictly fewer raw ready instructions. It runs once per steered
// instruction, so it stays closure- and allocation-free.
//
//dca:hotpath
func (im *imbalance) leastLoadedIn(cands core.ClusterSet, ready []int) core.ClusterID {
	best := core.AnyCluster
	for i := 0; i < im.n; i++ {
		c := core.ClusterID(i)
		if !cands.Has(c) {
			continue
		}
		if best == core.AnyCluster {
			best = c
			continue
		}
		switch im.deltaSign(c, best) {
		case -1:
			best = c
		case 0:
			if readyAt(ready, c) < readyAt(ready, best) {
				best = c
			}
		}
	}
	return best
}
