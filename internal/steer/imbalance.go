// Package steer implements the dynamic cluster-assignment policies of
// Canal, Parcerisa and González (HPCA 2000), Section 3: slice steering,
// non-slice balance steering, slice balance steering, priority slice
// balance steering, general balance steering, modulo steering, the
// FIFO-based scheme of Palacharla/Jouppi/Smith, and a profile-based
// re-creation of Sastry/Palacharla/Smith's static partitioning.
//
// Policies implement the core.Steerer interface: the pipeline calls Steer
// for every program instruction in decode order, plus per-cycle and
// resolution hooks that feed the balance and criticality machinery.
package steer

import "repro/internal/core"

// Params carries the tunable constants of the balance machinery. The
// paper's empirically chosen values are the defaults.
type Params struct {
	// Threshold is the strong-imbalance cutoff on the combined counter
	// (paper: 8).
	Threshold int
	// Window is the number of cycles the instantaneous imbalance metric
	// I2 is averaged over (paper: N=16).
	Window int
	// Epoch is the criticality-threshold adjustment period in cycles for
	// the priority scheme (paper: 8192).
	Epoch uint64
	// CriticalFraction is the target fraction of instructions in critical
	// slices (paper: 0.5).
	CriticalFraction float64
	// IssueWidth is the per-cluster issue width the I2 metric compares
	// ready counts against (Table 2: 4).
	IssueWidth int
	// UseI1 and UseI2 optionally disable one component of the combined
	// imbalance metric for the ablation study (nil or true = enabled).
	UseI1 *bool
	UseI2 *bool
}

// DefaultParams returns the paper's constants.
func DefaultParams() Params {
	return Params{Threshold: 8, Window: 16, Epoch: 8192, CriticalFraction: 0.5, IssueWidth: 4}
}

// imbalance implements Section 3.5's workload-imbalance estimation. It
// combines two metrics:
//
//   - I2: the instantaneous difference in ready instructions between the
//     clusters, counted only when one cluster has more ready instructions
//     than its issue width while the other has fewer (otherwise both issue
//     at full rate and the workload is considered balanced). I2 is
//     averaged over the last Window cycles.
//   - I1: the running difference in the number of instructions steered to
//     each cluster, incremented or decremented as each instruction is
//     steered — so every instruction decoded in the same cycle sees a
//     different balance value and massed same-cluster steerings are
//     avoided (Section 3.5's wording). Because it is cumulative, policies
//     that react to it alternate clusters in hysteresis-band-sized chunks.
//
// The combined counter is avg(I2) + I1. Positive values mean the FP
// cluster is the more loaded one.
type imbalance struct {
	p      Params
	window []int
	idx    int
	sum    int
	filled int
	i1     int
	useI1  bool
	useI2  bool
}

func newImbalance(p Params) *imbalance {
	im := &imbalance{p: p, window: make([]int, p.Window), useI1: true, useI2: true}
	if p.UseI1 != nil {
		im.useI1 = *p.UseI1
	}
	if p.UseI2 != nil {
		im.useI2 = *p.UseI2
	}
	return im
}

// onCycle records the cycle's instantaneous I2 and restarts the
// per-instruction adjustment.
func (im *imbalance) onCycle(readyInt, readyFP int) {
	widthInt, widthFP := im.p.IssueWidth, im.p.IssueWidth
	i2 := 0
	if im.useI2 {
		switch {
		case readyFP > widthFP && readyInt < widthInt:
			i2 = readyFP - readyInt
		case readyInt > widthInt && readyFP < widthFP:
			i2 = readyFP - readyInt // negative
		}
	}
	im.sum -= im.window[im.idx]
	im.window[im.idx] = i2
	im.sum += i2
	im.idx = (im.idx + 1) % len(im.window)
	if im.filled < len(im.window) {
		im.filled++
	}
}

// onSteer adjusts the counter for one steered instruction. The counter is
// a saturating hardware counter: it clamps at ±4×threshold so a long
// one-sided phase (e.g. a large slice pinned to one cluster) cannot wind
// it up beyond what a few balancing cycles can work off.
func (im *imbalance) onSteer(c core.ClusterID) {
	if !im.useI1 {
		return
	}
	limit := 4 * im.p.Threshold
	if c == core.FPCluster {
		if im.i1 < limit {
			im.i1++
		}
	} else if im.i1 > -limit {
		im.i1--
	}
}

// value returns the combined imbalance counter.
func (im *imbalance) value() int {
	avg := 0
	if im.filled > 0 {
		avg = im.sum / im.filled
	}
	return avg + im.i1
}

// strong reports whether the imbalance exceeds the threshold.
func (im *imbalance) strong() bool {
	v := im.value()
	if v < 0 {
		v = -v
	}
	return v >= im.p.Threshold
}

// overloaded reports whether cluster c is currently on the loaded side of
// the counter.
func (im *imbalance) overloaded(c core.ClusterID) bool {
	v := im.value()
	return (c == core.FPCluster && v > 0) || (c == core.IntCluster && v < 0)
}

// leastLoaded returns the cluster the counter says has spare capacity,
// falling back to the raw ready counts on a tie.
func (im *imbalance) leastLoaded(readyInt, readyFP int) core.ClusterID {
	switch v := im.value(); {
	case v > 0:
		return core.IntCluster
	case v < 0:
		return core.FPCluster
	default:
		if readyInt <= readyFP {
			return core.IntCluster
		}
		return core.FPCluster
	}
}
