package steer

import (
	"testing"

	"repro/internal/core"
)

func TestOperandBaseline(t *testing.T) {
	s := NewOperand()
	fpInfo := &core.SteerInfo{Forced: core.AnyCluster, NumSrcs: 2}
	fpInfo.SrcIn = [2]core.ClusterSet{inFP, inFP}
	if s.Steer(fpInfo) != core.FPCluster {
		t.Error("operands in FP, steered elsewhere")
	}
	intInfo := &core.SteerInfo{Forced: core.AnyCluster, NumSrcs: 1}
	intInfo.SrcIn[0] = inInt
	if s.Steer(intInfo) != core.IntCluster {
		t.Error("operand in int, steered elsewhere")
	}
	// Tie (and no-operand) goes to the integer cluster — deterministic.
	if s.Steer(&core.SteerInfo{Forced: core.AnyCluster}) != core.IntCluster {
		t.Error("tie not resolved to the integer cluster")
	}
	forced := &core.SteerInfo{Forced: core.FPCluster}
	if s.Steer(forced) != core.FPCluster {
		t.Error("Forced ignored")
	}
}

func TestRandomBaselineDeterministicAndBalanced(t *testing.T) {
	a, b := NewRandom(7), NewRandom(7)
	info := &core.SteerInfo{Forced: core.AnyCluster}
	counts := [2]int{}
	for i := 0; i < 10_000; i++ {
		ca, cb := a.Steer(info), b.Steer(info)
		if ca != cb {
			t.Fatal("same seed diverged")
		}
		counts[ca]++
	}
	// Roughly balanced in the long run.
	if counts[0] < 4_000 || counts[0] > 6_000 {
		t.Errorf("random split %v far from uniform", counts)
	}
	forced := &core.SteerInfo{Forced: core.IntCluster}
	if a.Steer(forced) != core.IntCluster {
		t.Error("Forced ignored")
	}
}
