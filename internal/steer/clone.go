package steer

import "repro/internal/core"

// This file implements core.CloneableSteerer for every registered scheme,
// so warm-state checkpointing (core's Machine.Checkpoint) can snapshot
// steering tables and balance counters at the warm-up boundary. Warm
// state is scheme-dependent — the slice tables, imbalance windows and
// criticality counters a policy trained during warm-up are part of the
// checkpoint — so each clone must share no mutable state with its source.
// Stateless or frozen-immutable policies return the receiver itself.

// clone deep-copies the imbalance counters: the per-cluster I2 windows,
// their running sums and the I1 steered counts.
func (im *imbalance) clone() *imbalance {
	ni := *im
	ni.sum = append([]int(nil), im.sum...)
	ni.i1 = append([]int(nil), im.i1...)
	ni.window = make([][]int, len(im.window))
	for c := range im.window {
		ni.window[c] = append([]int(nil), im.window[c]...)
	}
	return &ni
}

// clone deep-copies the slice and parent tables. The srcBuf scratch is
// dropped — observe repopulates it per decode.
func (t *sliceBitTable) clone() *sliceBitTable {
	bits := make(map[int]bool, len(t.bits))
	for pc, b := range t.bits {
		bits[pc] = b
	}
	return &sliceBitTable{bits: bits}
}

func (t *sliceIDTable) clone() *sliceIDTable {
	ids := make(map[int]int, len(t.ids))
	for pc, id := range t.ids {
		ids[pc] = id
	}
	return &sliceIDTable{ids: ids}
}

// CloneSteerer implements core.CloneableSteerer (Operand is stateless).
func (s *Operand) CloneSteerer() core.Steerer { return s }

// CloneSteerer implements core.CloneableSteerer.
func (s *Random) CloneSteerer() core.Steerer {
	ns := *s
	return &ns
}

// CloneSteerer implements core.CloneableSteerer.
func (s *Modulo) CloneSteerer() core.Steerer {
	ns := *s
	return &ns
}

// CloneSteerer implements core.CloneableSteerer.
func (s *FIFOBased) CloneSteerer() core.Steerer {
	ns := *s
	return &ns
}

// CloneSteerer implements core.CloneableSteerer.
func (s *General) CloneSteerer() core.Steerer {
	return &General{im: s.im.clone()}
}

// clone deep-copies the slice steering state (also used by the embedding
// NonSliceBalance).
func (s *Slice) clone() *Slice {
	ns := *s
	ns.bits = s.bits.clone()
	ns.srcBuf = nil
	return &ns
}

// CloneSteerer implements core.CloneableSteerer.
func (s *Slice) CloneSteerer() core.Steerer { return s.clone() }

// CloneSteerer implements core.CloneableSteerer.
func (s *NonSliceBalance) CloneSteerer() core.Steerer {
	return &NonSliceBalance{slice: s.slice.clone(), im: s.im.clone()}
}

// clone deep-copies the slice-balance state (also used by the embedding
// Priority, whose promoted CloneSteerer this keeps correct by overriding).
func (s *SliceBalance) clone() *SliceBalance {
	ns := *s
	ns.ids = s.ids.clone()
	ns.im = s.im.clone()
	ns.srcBuf = nil
	table := make(map[int]*sliceState, len(s.table))
	for sid, st := range s.table {
		table[sid] = cloneSliceState(st)
	}
	ns.table = table
	return &ns
}

func cloneSliceState(st *sliceState) *sliceState {
	c := *st
	return &c
}

// CloneSteerer implements core.CloneableSteerer.
func (s *SliceBalance) CloneSteerer() core.Steerer { return s.clone() }

// CloneSteerer implements core.CloneableSteerer. It must override the
// implementation promoted from the embedded *SliceBalance, which would
// otherwise drop the epoch and criticality counters.
func (s *Priority) CloneSteerer() core.Steerer {
	ns := *s
	ns.SliceBalance = s.SliceBalance.clone()
	return &ns
}

// CloneSteerer implements core.CloneableSteerer. The per-PC assignment is
// frozen at construction and never mutated, so the receiver is its own
// snapshot.
func (s *Static) CloneSteerer() core.Steerer { return s }
