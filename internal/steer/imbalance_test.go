package steer

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestDeltaComparisons pins the division-free comparison helpers to the
// reference formulation: for every (sum, i1, filled) state, deltaGE and
// deltaSign must agree exactly with the truncated-division delta they
// replace, including negative differences (where Go's division truncates
// toward zero, i.e. takes the ceiling).
func TestDeltaComparisons(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	im := &imbalance{n: 2, sum: make([]int, 2), i1: make([]int, 2)}
	for iter := 0; iter < 200_000; iter++ {
		im.sum[0] = r.Intn(400) - 200
		im.sum[1] = r.Intn(400) - 200
		im.i1[0] = r.Intn(80)
		im.i1[1] = r.Intn(80)
		im.filled = r.Intn(17) // 0 = window not yet filled
		a := r.Intn(41) - 20
		c, o := core.ClusterID(0), core.ClusterID(1)
		if r.Intn(2) == 0 {
			c, o = o, c
		}

		want := im.delta(c, o) >= a
		if got := im.deltaGE(c, o, a); got != want {
			t.Fatalf("deltaGE(%v,%v,%d) = %v, want %v (sum=%v i1=%v filled=%d delta=%d)",
				c, o, a, got, want, im.sum, im.i1, im.filled, im.delta(c, o))
		}

		wantSign := 0
		switch d := im.delta(c, o); {
		case d > 0:
			wantSign = 1
		case d < 0:
			wantSign = -1
		}
		if got := im.deltaSign(c, o); got != wantSign {
			t.Fatalf("deltaSign(%v,%v) = %d, want %d (sum=%v i1=%v filled=%d)",
				c, o, got, wantSign, im.sum, im.i1, im.filled)
		}
	}
}
