package steer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Static reproduces the compile-time partitioning of Sastry, Palacharla
// and Smith that Figure 3 (§3.3) compares against. Steering rule: each
// static instruction is assigned a fixed cluster — the integer cluster for
// the LdSt slice, the FP cluster for the rest — and every dynamic instance
// obeys that assignment. Like the plain slice schemes it is an inherently
// two-way partitioner and uses only clusters 0 and 1 on larger machines.
//
// The original derives the slice from compiler analysis; lacking the Alpha
// compiler, we derive it from a profiling pre-pass: the program runs
// functionally for a profiling window while the same incremental
// slice-marking algorithm as the dynamic schemes records membership, which
// is then frozen (see DESIGN.md's substitution table). This matches the
// defining property Figure 3 tests — all instances of one static
// instruction execute in one fixed cluster.
type Static struct {
	core.NopSteerer
	assign map[int]core.ClusterID
	name   string
}

// ProfileWindow is the default number of dynamic instructions the static
// partitioner profiles.
const ProfileWindow = 200_000

// NewStatic profiles p for window dynamic instructions (0 uses
// ProfileWindow) and fixes the per-PC assignment.
func NewStatic(p *prog.Program, kind SliceKind, window uint64) (*Static, error) {
	if window == 0 {
		window = ProfileWindow
	}
	bits := newSliceBitTable()
	var parents parentTable
	var srcBuf []isa.Reg

	m := emu.New(p)
	for i := uint64(0); i < window && !m.Halted; i++ {
		st, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("steer: static profiling: %w", err)
		}
		in := st.Inst
		if kind.defines(in.Op) {
			bits.set(st.PC)
		}
		if bits.get(st.PC) {
			srcBuf = sliceSources(kind, in, srcBuf[:0])
			for _, r := range srcBuf {
				if ppc, ok := parents.lookup(r); ok {
					bits.set(ppc)
				}
			}
		}
		if d, ok := in.Dst(); ok {
			parents.record(d, st.PC)
		}
	}

	assign := make(map[int]core.ClusterID, len(p.Text))
	for pc := range p.Text {
		if bits.get(pc) {
			assign[pc] = core.IntCluster
		} else {
			assign[pc] = core.FPCluster
		}
	}
	return &Static{assign: assign, name: fmt.Sprintf("static-%s", kind)}, nil
}

// NewStaticConservative derives the slice purely at compile time, the way
// a compiler without path profiles must: flow-insensitive reaching
// definitions over the static RDG (every instruction writing register r is
// a potential parent of every instruction reading r). This over-marks the
// slice — any register reused across program contexts drags extra
// instructions into the integer cluster — which is the conservatism that
// handicaps static partitioning in the paper's Figure 3.
func NewStaticConservative(p *prog.Program, kind SliceKind) *Static {
	writers := make(map[isa.Reg][]int)
	for pc, in := range p.Text {
		if d, ok := in.Dst(); ok {
			writers[d] = append(writers[d], pc)
		}
	}
	inSlice := make(map[int]bool)
	var work []int
	for pc, in := range p.Text {
		if kind.defines(in.Op) {
			inSlice[pc] = true
			work = append(work, pc)
		}
	}
	var srcBuf []isa.Reg
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		srcBuf = sliceSources(kind, p.Text[pc], srcBuf[:0])
		for _, r := range srcBuf {
			for _, w := range writers[r] {
				if !inSlice[w] {
					inSlice[w] = true
					work = append(work, w)
				}
			}
		}
	}
	assign := make(map[int]core.ClusterID, len(p.Text))
	for pc := range p.Text {
		if inSlice[pc] {
			assign[pc] = core.IntCluster
		} else {
			assign[pc] = core.FPCluster
		}
	}
	return &Static{assign: assign, name: fmt.Sprintf("static-%s-cons", kind)}
}

// Name implements core.Steerer.
func (s *Static) Name() string { return s.name }

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *Static) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	if c, ok := s.assign[info.PC]; ok {
		return c
	}
	return core.IntCluster
}

// Assignment exposes the frozen per-PC map (for tests).
//
//dca:hotpath
func (s *Static) Assignment(pc int) (core.ClusterID, bool) {
	c, ok := s.assign[pc]
	return c, ok
}
