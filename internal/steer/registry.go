package steer

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/prog"
)

// Names lists every registered scheme identifier, sorted. The identifiers
// match the paper's terminology:
//
//	naive           conventional int/FP split (the base machine's rule)
//	modulo          alternate clusters (§3.6's balance control)
//	ldst-slice      LdSt slice steering (§3.3)
//	br-slice        Br slice steering (§3.4)
//	ldst-nonslice   non-slice balance steering over the LdSt slice (§3.5)
//	br-nonslice     non-slice balance steering over the Br slice (§3.5)
//	ldst-slicebal   slice balance steering, LdSt slices (§3.6)
//	br-slicebal     slice balance steering, Br slices (§3.6)
//	ldst-priority   priority slice balance steering, LdSt slices (§3.7)
//	br-priority     priority slice balance steering, Br slices (§3.7)
//	general         general balance steering (§3.8)
//	fifo            FIFO-based steering of [15] (§3.9; use config.FIFOClustered)
//	static-ldst     Sastry et al.'s static partitioning, profile-derived (§3.3)
//	static-br       the same over branch slices
//	static-ldst-cons  compile-time (flow-insensitive) static partitioning
//	operand         decomposition baseline: operand-following only, no balance
//	random          decomposition baseline: uniform random placement
//
// The balance-based schemes (modulo, nonslice, slicebal, priority, general,
// fifo, operand, random) generalize to N-cluster machines via
// Params.Clusters; the slice and static schemes are inherently two-way
// partitioners (slice ↔ integer cluster, rest ↔ cluster 1) and keep that
// behaviour on larger machines.
func Names() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var factories = map[string]func(p *prog.Program, params Params) (core.Steerer, error){
	"naive": func(*prog.Program, Params) (core.Steerer, error) {
		return core.NaiveSteerer{}, nil
	},
	"modulo": func(*prog.Program, Params) (core.Steerer, error) {
		return NewModulo(), nil
	},
	"ldst-slice": func(*prog.Program, Params) (core.Steerer, error) {
		return NewSlice(LdStSlice), nil
	},
	"br-slice": func(*prog.Program, Params) (core.Steerer, error) {
		return NewSlice(BrSlice), nil
	},
	"ldst-nonslice": func(_ *prog.Program, p Params) (core.Steerer, error) {
		return NewNonSliceBalance(LdStSlice, p), nil
	},
	"br-nonslice": func(_ *prog.Program, p Params) (core.Steerer, error) {
		return NewNonSliceBalance(BrSlice, p), nil
	},
	"ldst-slicebal": func(_ *prog.Program, p Params) (core.Steerer, error) {
		return NewSliceBalance(LdStSlice, p), nil
	},
	"br-slicebal": func(_ *prog.Program, p Params) (core.Steerer, error) {
		return NewSliceBalance(BrSlice, p), nil
	},
	"ldst-priority": func(_ *prog.Program, p Params) (core.Steerer, error) {
		return NewPriority(LdStSlice, p), nil
	},
	"br-priority": func(_ *prog.Program, p Params) (core.Steerer, error) {
		return NewPriority(BrSlice, p), nil
	},
	"general": func(_ *prog.Program, p Params) (core.Steerer, error) {
		return NewGeneral(p), nil
	},
	"fifo": func(*prog.Program, Params) (core.Steerer, error) {
		return NewFIFOBased(), nil
	},
	"static-ldst": func(pr *prog.Program, _ Params) (core.Steerer, error) {
		return NewStatic(pr, LdStSlice, 0)
	},
	"static-br": func(pr *prog.Program, _ Params) (core.Steerer, error) {
		return NewStatic(pr, BrSlice, 0)
	},
	"static-ldst-cons": func(pr *prog.Program, _ Params) (core.Steerer, error) {
		return NewStaticConservative(pr, LdStSlice), nil
	},
	"operand": func(*prog.Program, Params) (core.Steerer, error) {
		return NewOperand(), nil
	},
	"random": func(*prog.Program, Params) (core.Steerer, error) {
		return NewRandom(0x5EED), nil
	},
}

// Known reports whether name is a registered scheme identifier.
func Known(name string) bool {
	_, ok := factories[name]
	return ok
}

// New builds the named scheme with the paper's default parameters. Schemes
// that need the program (the static partitioner's profiling pass) receive
// p; the rest ignore it.
func New(name string, p *prog.Program) (core.Steerer, error) {
	return NewWithParams(name, p, DefaultParams())
}

// NewWithParams builds the named scheme with explicit balance parameters.
func NewWithParams(name string, p *prog.Program, params Params) (core.Steerer, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("steer: unknown scheme %q (known: %v)", name, Names())
	}
	return f(p, params)
}
