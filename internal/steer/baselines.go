package steer

import "repro/internal/core"

// Operand is a decomposition baseline, not a paper scheme: pure
// operand-following with no balance machinery. Steering rule: an
// instruction goes to the cluster where most of its operands live, ties to
// the lowest-numbered cluster. Comparing it with General (§3.8) isolates
// how much of the general-balance gain comes from communication avoidance
// alone versus the imbalance counters.
type Operand struct {
	core.NopSteerer
}

// NewOperand returns the operand-following baseline.
func NewOperand() *Operand { return &Operand{} }

// Name implements core.Steerer.
func (*Operand) Name() string { return "operand" }

// Steer implements core.Steerer.
//
//dca:hotpath
func (*Operand) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	best, bestCount := core.IntCluster, info.OperandsIn(core.IntCluster)
	for c := 1; c < info.Clusters(); c++ {
		id := core.ClusterID(c)
		if n := info.OperandsIn(id); n > bestCount {
			best, bestCount = id, n
		}
	}
	return best
}

// Random is the second decomposition baseline, not a paper scheme.
// Steering rule: steerable instructions pick a cluster uniformly at random
// (deterministic xorshift): like modulo (§3.6) it ignores dependences, but
// without modulo's perfect short-term balance. It bounds how much of
// modulo's behaviour is the alternation itself.
type Random struct {
	core.NopSteerer
	state uint64
}

// NewRandom returns the deterministic random baseline.
func NewRandom(seed uint64) *Random { return &Random{state: seed | 1} }

// Name implements core.Steerer.
func (*Random) Name() string { return "random" }

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *Random) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return core.ClusterID(s.state % uint64(info.Clusters()))
}
