package steer

import "repro/internal/core"

// Operand is a decomposition baseline, not a paper scheme: pure
// operand-following with no balance machinery — an instruction goes where
// most of its operands live, ties to the integer cluster. Comparing it
// with General isolates how much of the general-balance gain comes from
// communication avoidance alone versus the imbalance counter.
type Operand struct {
	core.NopSteerer
}

// NewOperand returns the operand-following baseline.
func NewOperand() *Operand { return &Operand{} }

// Name implements core.Steerer.
func (*Operand) Name() string { return "operand" }

// Steer implements core.Steerer.
func (*Operand) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	inInt := info.OperandsIn(core.IntCluster)
	inFP := info.OperandsIn(core.FPCluster)
	if inFP > inInt {
		return core.FPCluster
	}
	return core.IntCluster
}

// Random steers uniformly at random (deterministic xorshift), the second
// decomposition baseline: like modulo it ignores dependences, but without
// modulo's perfect short-term balance. It bounds how much of modulo's
// behaviour is the alternation itself.
type Random struct {
	core.NopSteerer
	state uint64
}

// NewRandom returns the deterministic random baseline.
func NewRandom(seed uint64) *Random { return &Random{state: seed | 1} }

// Name implements core.Steerer.
func (*Random) Name() string { return "random" }

// Steer implements core.Steerer.
func (s *Random) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	if s.state&1 == 0 {
		return core.IntCluster
	}
	return core.FPCluster
}
