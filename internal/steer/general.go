package steer

import "repro/internal/core"

// General implements Section 3.8's general balance steering — the paper's
// best scheme (+36% average on SpecInt95). It is the limiting case of the
// priority scheme with the criticality threshold at infinity: no slices are
// tracked at all. Every steerable instruction goes to the least loaded
// cluster when there is a strong imbalance or its operands are tied
// between the clusters, and to the cluster holding most of its operands
// otherwise. No slice/parent/cluster tables are needed.
type General struct {
	core.NopSteerer
	im *imbalance
}

// NewGeneral returns the general balance steering scheme.
func NewGeneral(p Params) *General {
	return &General{im: newImbalance(p)}
}

// Name implements core.Steerer.
func (s *General) Name() string { return "general" }

// OnCycle implements core.Steerer.
func (s *General) OnCycle(cycle uint64, readyInt, readyFP int) {
	s.im.onCycle(readyInt, readyFP)
}

// Steer implements core.Steerer.
func (s *General) Steer(info *core.SteerInfo) core.ClusterID {
	var c core.ClusterID
	if info.Forced != core.AnyCluster {
		c = info.Forced
	} else {
		c = steerByOperandsAndBalance(info, s.im)
	}
	s.im.onSteer(c)
	return c
}

// Modulo implements the control scheme of Section 3.6/Figure 12: steerable
// instructions alternate clusters. It achieves near-perfect balance and
// pathological communication volume, bounding the balance axis of the
// trade-off.
type Modulo struct {
	core.NopSteerer
	next core.ClusterID
}

// NewModulo returns modulo steering.
func NewModulo() *Modulo { return &Modulo{} }

// Name implements core.Steerer.
func (s *Modulo) Name() string { return "modulo" }

// Steer implements core.Steerer.
func (s *Modulo) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	c := s.next
	s.next = s.next.Other()
	return c
}

// FIFOBased is the cluster-choice half of the Palacharla/Jouppi/Smith
// steering of Section 3.9; the FIFO placement within the chosen cluster is
// performed by the core's FIFO-mode issue queues (config.IQFIFO). An
// instruction follows its not-yet-ready source operand so the dependence
// chain stays in one FIFO; with no pending operand to chase it takes the
// emptier cluster.
type FIFOBased struct {
	core.NopSteerer
	next core.ClusterID
}

// NewFIFOBased returns the FIFO-based steering scheme. Use it with
// config.FIFOClustered.
func NewFIFOBased() *FIFOBased { return &FIFOBased{} }

// Name implements core.Steerer.
func (s *FIFOBased) Name() string { return "fifo" }

// Steer implements core.Steerer.
func (s *FIFOBased) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	// Chase the first operand that lives in exactly one cluster.
	for i := 0; i < info.NumSrcs; i++ {
		inInt, inFP := info.SrcInInt[i], info.SrcInFP[i]
		if inInt && !inFP {
			return core.IntCluster
		}
		if inFP && !inInt {
			return core.FPCluster
		}
	}
	// No chain to follow: alternate to spread load (the original proposal
	// fills FIFOs round-robin).
	c := s.next
	s.next = s.next.Other()
	return c
}
