package steer

import "repro/internal/core"

// General implements Section 3.8's general balance steering — the paper's
// best scheme (+36% average on SpecInt95). It is the limiting case of the
// priority scheme with the criticality threshold at infinity: no slices are
// tracked at all. Steering rule: every steerable instruction goes to the
// least loaded cluster when there is a strong imbalance or its operands are
// tied between clusters, and to the cluster holding most of its operands
// otherwise. No slice/parent/cluster tables are needed. On N > 2 clusters
// (Params.Clusters) "least loaded" is the argmin over the per-cluster
// workload counters.
type General struct {
	core.NopSteerer
	im *imbalance
}

// NewGeneral returns the general balance steering scheme.
func NewGeneral(p Params) *General {
	return &General{im: newImbalance(p)}
}

// Name implements core.Steerer.
func (s *General) Name() string { return "general" }

// OnCycle implements core.Steerer.
//
//dca:hotpath
func (s *General) OnCycle(cycle uint64, ready []int) {
	s.im.onCycle(ready)
}

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *General) Steer(info *core.SteerInfo) core.ClusterID {
	var c core.ClusterID
	if info.Forced != core.AnyCluster {
		c = info.Forced
	} else {
		c = steerByOperandsAndBalance(info, s.im)
	}
	s.im.onSteer(c)
	return c
}

// Modulo implements the control scheme of Section 3.6/Figure 12. Steering
// rule: steerable instructions visit the clusters round-robin, ignoring
// dependences entirely. It achieves near-perfect balance and pathological
// communication volume, bounding the balance axis of the trade-off.
type Modulo struct {
	core.NopSteerer
	next core.ClusterID
}

// NewModulo returns modulo steering; the cluster count is read from each
// SteerInfo, so one instance works on any machine.
func NewModulo() *Modulo { return &Modulo{} }

// Name implements core.Steerer.
func (s *Modulo) Name() string { return "modulo" }

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *Modulo) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	c := s.next
	s.next = (s.next + 1) % core.ClusterID(info.Clusters())
	return c
}

// FIFOBased is the cluster-choice half of the Palacharla/Jouppi/Smith
// steering of Section 3.9; the FIFO placement within the chosen cluster is
// performed by the core's FIFO-mode issue queues (config.IQFIFO). Steering
// rule: an instruction follows its source operand that lives in exactly
// one cluster so the dependence chain stays in one FIFO; with no pending
// operand to chase it takes the clusters round-robin.
type FIFOBased struct {
	core.NopSteerer
	next core.ClusterID
}

// NewFIFOBased returns the FIFO-based steering scheme. Use it with
// config.FIFOClustered (or an N-cluster config in IQFIFO mode).
func NewFIFOBased() *FIFOBased { return &FIFOBased{} }

// Name implements core.Steerer.
func (s *FIFOBased) Name() string { return "fifo" }

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *FIFOBased) Steer(info *core.SteerInfo) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	// Chase the first operand that lives in exactly one cluster.
	for i := 0; i < info.NumSrcs; i++ {
		if c := info.SrcIn[i].Single(); c != core.AnyCluster {
			return c
		}
	}
	// No chain to follow: rotate to spread load (the original proposal
	// fills FIFOs round-robin).
	c := s.next
	s.next = (s.next + 1) % core.ClusterID(info.Clusters())
	return c
}
