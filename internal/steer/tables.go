package steer

import "repro/internal/isa"

// SliceKind selects which backward slices a policy tracks: those of memory
// instructions' address computations (the LdSt slice) or those of branches
// (the Br slice).
type SliceKind uint8

const (
	// LdStSlice marks the backward slices of address calculations.
	LdStSlice SliceKind = iota
	// BrSlice marks the backward slices of branches.
	BrSlice
)

// String returns "ldst" or "br".
func (k SliceKind) String() string {
	if k == BrSlice {
		return "br"
	}
	return "ldst"
}

// defines reports whether op starts a slice of this kind.
//
//dca:hotpath
func (k SliceKind) defines(op isa.Opcode) bool {
	if k == BrSlice {
		return op.IsBranch()
	}
	return op.IsMem()
}

// parentTable is the hardware of Section 3.3: for each logical register,
// the PC of the last decoded instruction that wrote it. Slice membership
// propagates backwards through it one producer level per decode.
type parentTable struct {
	pc    [isa.NumRegs]int
	valid [isa.NumRegs]bool
}

// lookup returns the last writer's PC for register r.
//
//dca:hotpath
func (t *parentTable) lookup(r isa.Reg) (int, bool) {
	if !r.Valid() || r.IsZero() {
		return 0, false
	}
	return t.pc[r], t.valid[r]
}

// record notes that the instruction at pc wrote register r.
//
//dca:hotpath
func (t *parentTable) record(r isa.Reg, pc int) {
	if !r.Valid() || r.IsZero() {
		return
	}
	t.pc[r] = pc
	t.valid[r] = true
}

// sliceSources returns the registers through which slice membership
// propagates backwards from an in-slice instruction at decode. The paper's
// RDG splits each memory instruction into two *disconnected* nodes — the
// effective-address calculation and the access — so propagation through a
// memory instruction depends on the slice kind:
//
//   - in the LdSt slice (backward slices of address calculations), a memory
//     instruction propagates only through its address operand: store data
//     and the loaded value's own history are not part of the slice;
//   - in the Br slice, a load reached through its value is the access node,
//     which has no RDG parents — propagation stops there (Figure 2: LD RCi
//     is in the Br slice, its EA is not);
//   - every other instruction propagates through all register sources.
//
//dca:hotpath
func sliceSources(kind SliceKind, in isa.Inst, buf []isa.Reg) []isa.Reg {
	if in.Op.IsMem() {
		if kind == BrSlice {
			return buf
		}
		if in.Rs1 != isa.NoReg && in.Rs1.Valid() && !in.Rs1.IsZero() {
			buf = append(buf, in.Rs1)
		}
		return buf
	}
	return in.Srcs(buf)
}

// sliceBitTable is the one-bit-per-PC table of the plain slice-steering
// schemes (Section 3.3): a set bit means the static instruction belongs to
// the tracked slice. The hardware proposal indexes it by PC; we model it as
// an exact per-PC table.
type sliceBitTable struct {
	bits map[int]bool
}

func newSliceBitTable() *sliceBitTable {
	return &sliceBitTable{bits: make(map[int]bool)}
}

//dca:hotpath
func (t *sliceBitTable) set(pc int) { t.bits[pc] = true }

//dca:hotpath
func (t *sliceBitTable) get(pc int) bool { return t.bits[pc] }

// sliceIDTable maps each static instruction to the slice it belongs to,
// identified by the PC of the slice's defining load/store/branch (Section
// 3.6's slice table). The zero value of an entry means "no slice".
type sliceIDTable struct {
	ids map[int]int // pc -> defining pc + 1 (0 = none)
}

func newSliceIDTable() *sliceIDTable {
	return &sliceIDTable{ids: make(map[int]int)}
}

//dca:hotpath
func (t *sliceIDTable) set(pc, slice int) { t.ids[pc] = slice + 1 }

//dca:hotpath
func (t *sliceIDTable) get(pc int) (int, bool) {
	v, ok := t.ids[pc]
	if !ok {
		return 0, false
	}
	return v - 1, true
}
