package steer

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// feed runs the program functionally and presents each committed
// instruction to the policy in decode order, mimicking the core's calls.
// It returns per-PC steering decisions of the final iteration.
func feed(t *testing.T, p *prog.Program, s core.Steerer, max uint64) map[int]core.ClusterID {
	t.Helper()
	m := emu.New(p)
	decisions := make(map[int]core.ClusterID)
	for i := uint64(0); i < max && !m.Halted; i++ {
		if i%8 == 0 {
			s.OnCycle(i/8, []int{3, 3})
		}
		st, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		info := &core.SteerInfo{
			Cycle:  i / 8,
			PC:     st.PC,
			Inst:   st.Inst,
			Forced: forcedFor(st.Inst),
		}
		for _, r := range st.Inst.Srcs(nil) {
			if info.NumSrcs >= 2 {
				break
			}
			info.SrcReg[info.NumSrcs] = r
			info.SrcIn[info.NumSrcs] = core.ClusterSet(0).Add(core.IntCluster)
			info.NumSrcs++
		}
		c := s.Steer(info)
		if info.Forced != core.AnyCluster {
			c = info.Forced
		}
		decisions[st.PC] = c
	}
	return decisions
}

func forcedFor(in isa.Inst) core.ClusterID {
	if in.Op.Class() == isa.ClassComplexInt {
		return core.IntCluster
	}
	if d, ok := in.Dst(); ok && d.IsFP() {
		return core.FPCluster
	}
	for _, r := range in.Srcs(nil) {
		if r.IsFP() {
			return core.FPCluster
		}
	}
	return core.AnyCluster
}

// figure2Src is the paper's running example (Figure 2), written so each
// significant instruction is easy to locate by label.
const figure2Src = `
.data
A: .word 0, 0, 0, 0
B: .word 8, 12, 20, 36
C: .word 2, 1, 5, 6
.text
     addi r9, r0, 32    ; 0: N*8
     addi r1, r0, 0     ; 1: i*8
for: lui  r2, 1         ; 2: B base (0x10020)
     ori  r2, r2, 32    ; 3
     add  r2, r2, r1    ; 4: &B[i]
     ld   r3, 0(r2)     ; 5: B[i]
     lui  r4, 1         ; 6: C base (0x10040)
     ori  r4, r4, 64    ; 7
     add  r4, r4, r1    ; 8: &C[i]
     ld   r5, 0(r4)     ; 9: C[i]
     beq  r5, r0, l1    ; 10
     div  r7, r3, r5    ; 11
     j    l2            ; 12
l1:  addi r7, r0, 0     ; 13
l2:  lui  r8, 1         ; 14: A base (0x10000)
     add  r8, r8, r1    ; 15: &A[i]
     st   r7, 0(r8)     ; 16: A[i] =
     addi r1, r1, 8     ; 17
     bne  r1, r9, for   ; 18
     halt               ; 19
`

func mustFig2(t *testing.T) *prog.Program {
	t.Helper()
	p, err := asm.Assemble("fig2", figure2Src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLdStSliceMembershipOnFigure2(t *testing.T) {
	p := mustFig2(t)
	s := NewSlice(LdStSlice)
	feed(t, p, s, 10_000)

	// Address chains must be in the LdSt slice. (PC 1, the one-time loop
	// initialization of r1, executes before the slice learning converges
	// and is never re-decoded, so the incremental hardware algorithm never
	// flags it — a faithful property of the paper's mechanism.)
	inSlice := []int{2, 3, 4, 5, 6, 7, 8, 9, 14, 15, 16, 17}
	for _, pc := range inSlice {
		if !s.InSlice(pc) {
			t.Errorf("PC %d (%v) should be in the LdSt slice", pc, p.Text[pc])
		}
	}
	// Branch chain (r9), the div (store *data*), and branches themselves
	// must not be.
	notInSlice := []int{0, 10, 11, 12, 13, 18}
	for _, pc := range notInSlice {
		if s.InSlice(pc) {
			t.Errorf("PC %d (%v) should NOT be in the LdSt slice", pc, p.Text[pc])
		}
	}
}

func TestBrSliceMembershipOnFigure2(t *testing.T) {
	p := mustFig2(t)
	s := NewSlice(BrSlice)
	feed(t, p, s, 10_000)

	// The loop-control chain (r9 init, r1 increment) and the compare input
	// load C[i] belong to the Br slice; the EA chain of that load does not
	// (the RDG splits memory instructions into disconnected nodes). PC 1
	// executes once before learning converges, so it is never flagged.
	inSlice := []int{0, 9, 10, 17, 18}
	for _, pc := range inSlice {
		if !s.InSlice(pc) {
			t.Errorf("PC %d (%v) should be in the Br slice", pc, p.Text[pc])
		}
	}
	notInSlice := []int{2, 3, 4, 6, 7, 8, 11, 14, 15, 16}
	for _, pc := range notInSlice {
		if s.InSlice(pc) {
			t.Errorf("PC %d (%v) should NOT be in the Br slice", pc, p.Text[pc])
		}
	}
}

func TestSliceSteeringDecisions(t *testing.T) {
	p := mustFig2(t)
	s := NewSlice(LdStSlice)
	dec := feed(t, p, s, 10_000)
	// Once learned, slice members steer to the integer cluster, the rest
	// to the FP cluster (div is forced integer).
	if dec[5] != core.IntCluster || dec[16] != core.IntCluster {
		t.Error("memory instructions not steered to the integer cluster")
	}
	if dec[11] != core.IntCluster {
		t.Error("div must be forced to the integer cluster")
	}
	if dec[12] != core.FPCluster { // j l2: not in LdSt slice
		t.Errorf("non-slice jump steered to %v, want fp", dec[12])
	}
}

// inInt and inFP are ClusterSet shorthands for the two-cluster tests.
var (
	inInt = core.ClusterSet(0).Add(core.IntCluster)
	inFP  = core.ClusterSet(0).Add(core.FPCluster)
)

func TestImbalanceCounter(t *testing.T) {
	im := newImbalance(DefaultParams())
	// Strong FP overload: readyFP > width, readyInt < width.
	for i := 0; i < 20; i++ {
		im.onCycle([]int{0, 12})
	}
	if !im.strong() {
		t.Fatalf("counter %d not strong under sustained overload", im.value())
	}
	if im.leastLoaded([]int{0, 12}) != core.IntCluster {
		t.Fatal("least loaded should be the integer cluster")
	}
	if !im.overloaded(core.FPCluster) || im.overloaded(core.IntCluster) {
		t.Fatal("overloaded cluster misidentified")
	}
	// Balanced epochs decay the window average.
	for i := 0; i < 20; i++ {
		im.onCycle([]int{3, 3})
	}
	if im.strong() {
		t.Fatalf("counter %d still strong after balanced cycles", im.value())
	}
}

func TestImbalanceIgnoresBalancedOverload(t *testing.T) {
	im := newImbalance(DefaultParams())
	// Both clusters above issue width: both issue at full rate, I2 = 0.
	for i := 0; i < 20; i++ {
		im.onCycle([]int{10, 20})
	}
	if im.value() != 0 {
		t.Fatalf("I2 counted while both clusters saturated: %d", im.value())
	}
}

func TestImbalanceI1Cumulative(t *testing.T) {
	im := newImbalance(DefaultParams())
	im.onCycle([]int{0, 0})
	for i := 0; i < 8; i++ {
		im.onSteer(core.FPCluster)
	}
	if im.value() != 8 {
		t.Fatalf("I1 after 8 FP steers = %d, want 8", im.value())
	}
	if !im.strong() {
		t.Fatal("8 same-cluster steers must trip the threshold")
	}
	// I1 is the cumulative steered-count difference: it persists across
	// cycles and is worked off by steering the other way.
	im.onCycle([]int{0, 0})
	if im.value() != 8 {
		t.Fatalf("I1 did not persist: %d", im.value())
	}
	for i := 0; i < 8; i++ {
		im.onSteer(core.IntCluster)
	}
	if im.value() != 0 {
		t.Fatalf("I1 not worked off by opposite steers: %d", im.value())
	}
}

func TestImbalanceNWayArgmin(t *testing.T) {
	p := DefaultParams()
	p.Clusters = 4
	im := newImbalance(p)
	// Cluster 2 far above width, clusters 0/3 far below, cluster 1 busy:
	// the gate opens and the per-cluster counters separate.
	for i := 0; i < 20; i++ {
		im.onCycle([]int{0, 6, 12, 1})
	}
	if !im.strong() {
		t.Fatal("4-way overload not detected as strong")
	}
	if !im.overloaded(core.ClusterID(2)) {
		t.Error("cluster 2 should be overloaded")
	}
	if im.overloaded(core.ClusterID(0)) {
		t.Error("cluster 0 should not be overloaded")
	}
	if got := im.leastLoaded([]int{0, 6, 12, 1}); got != core.ClusterID(0) {
		t.Errorf("least loaded = %v, want cluster 0", got)
	}
	// Restricting the candidates must respect the restriction.
	cands := core.ClusterSet(0).Add(core.ClusterID(1)).Add(core.ClusterID(2))
	if got := im.leastLoadedOf(cands, []int{0, 6, 12, 1}); got != core.ClusterID(1) {
		t.Errorf("least loaded of {1,2} = %v, want cluster 1", got)
	}
}

func TestImbalanceTwoClusterDeltaMatchesSignedCounter(t *testing.T) {
	// The N-way counters must reproduce the paper's single signed counter
	// exactly on two clusters: replay a mixed history on the generalized
	// machinery and on a hand-coded signed reference.
	im := newImbalance(DefaultParams())
	signed := struct {
		window []int
		idx    int
		sum    int
		filled int
		i1     int
	}{window: make([]int, DefaultParams().Window)}
	width := DefaultParams().IssueWidth
	limit := 4 * DefaultParams().Threshold

	step := func(readyInt, readyFP int, steers []core.ClusterID) {
		im.onCycle([]int{readyInt, readyFP})
		i2 := 0
		switch {
		case readyFP > width && readyInt < width:
			i2 = readyFP - readyInt
		case readyInt > width && readyFP < width:
			i2 = readyFP - readyInt
		}
		signed.sum -= signed.window[signed.idx]
		signed.window[signed.idx] = i2
		signed.sum += i2
		signed.idx = (signed.idx + 1) % len(signed.window)
		if signed.filled < len(signed.window) {
			signed.filled++
		}
		for _, c := range steers {
			im.onSteer(c)
			if c == core.FPCluster {
				if signed.i1 < limit {
					signed.i1++
				}
			} else if signed.i1 > -limit {
				signed.i1--
			}
		}
		want := signed.i1
		if signed.filled > 0 {
			want = signed.sum/signed.filled + signed.i1
		}
		if got := im.value(); got != want {
			t.Fatalf("generalized counter %d != signed reference %d", got, want)
		}
	}

	histories := [][3]int{ // readyInt, readyFP, net FP steers (neg = int)
		{0, 12, 3}, {12, 0, -2}, {3, 3, 1}, {9, 1, -4}, {1, 9, 6},
		{5, 5, -1}, {0, 0, 40}, {2, 11, -40}, {6, 2, 2}, {4, 4, 0},
	}
	for _, h := range histories {
		var steers []core.ClusterID
		n := h[2]
		c := core.FPCluster
		if n < 0 {
			n, c = -n, core.IntCluster
		}
		for i := 0; i < n; i++ {
			steers = append(steers, c)
		}
		step(h[0], h[1], steers)
	}
}

func TestGeneralFollowsOperands(t *testing.T) {
	s := NewGeneral(DefaultParams())
	info := &core.SteerInfo{Forced: core.AnyCluster, NumSrcs: 2}
	info.SrcIn = [2]core.ClusterSet{inFP, inFP}
	if c := s.Steer(info); c != core.FPCluster {
		t.Errorf("both operands FP, steered to %v", c)
	}
	info2 := &core.SteerInfo{Forced: core.AnyCluster, NumSrcs: 2}
	info2.SrcIn = [2]core.ClusterSet{inInt, inInt}
	if c := s.Steer(info2); c != core.IntCluster {
		t.Errorf("both operands int, steered to %v", c)
	}
}

func TestGeneralBreaksTieTowardLeastLoaded(t *testing.T) {
	s := NewGeneral(DefaultParams())
	info := &core.SteerInfo{Forced: core.AnyCluster, NumSrcs: 2}
	info.SrcIn = [2]core.ClusterSet{inInt, inFP}
	info.Ready[0] = 9
	if c := s.Steer(info); c != core.FPCluster {
		t.Errorf("tie with loaded int cluster steered to %v", c)
	}
}

func TestGeneralRespectsStrongImbalance(t *testing.T) {
	s := NewGeneral(DefaultParams())
	for i := 0; i < 20; i++ {
		s.OnCycle(uint64(i), []int{12, 0}) // int cluster overloaded
	}
	info := &core.SteerInfo{Forced: core.AnyCluster, NumSrcs: 1}
	info.SrcIn[0] = inInt // operand home says int...
	if c := s.Steer(info); c != core.FPCluster {
		t.Errorf("strong imbalance ignored: steered to %v", c)
	}
}

func TestModuloAlternates(t *testing.T) {
	s := NewModulo()
	info := &core.SteerInfo{Forced: core.AnyCluster}
	a := s.Steer(info)
	b := s.Steer(info)
	c := s.Steer(info)
	if a == b || b == c || a != c {
		t.Fatalf("modulo sequence %v %v %v", a, b, c)
	}
	forced := &core.SteerInfo{Forced: core.FPCluster}
	if s.Steer(forced) != core.FPCluster {
		t.Fatal("modulo ignored Forced")
	}
}

func TestSliceBalanceAssignsAndRemaps(t *testing.T) {
	s := NewSliceBalance(LdStSlice, DefaultParams())
	p := mustFig2(t)
	feed(t, p, s, 10_000)
	if len(s.table) == 0 {
		t.Fatal("no slices recorded")
	}
	// Pick any assigned slice, force a strong overload toward its cluster,
	// and re-steer a member: the whole slice must re-map away.
	sid := -1
	var home core.ClusterID
	for id, st := range s.table {
		if st.assigned {
			sid, home = id, st.cluster
			break
		}
	}
	if sid < 0 {
		t.Fatal("no assigned slices after feeding figure 2")
	}
	for i := range s.im.i1 { // neutralize the steering history from feed
		s.im.i1[i] = 0
	}
	for i := 0; i < 20; i++ {
		if home == core.IntCluster {
			s.OnCycle(uint64(1000+i), []int{12, 0})
		} else {
			s.OnCycle(uint64(1000+i), []int{0, 12})
		}
	}
	before := s.Remaps
	info := &core.SteerInfo{Forced: core.AnyCluster, PC: sid, Inst: p.Text[sid]}
	s.Steer(info)
	if s.Remaps == before {
		t.Error("overloaded slice did not re-map")
	}
	if s.table[sid].cluster != home.Other() {
		t.Error("slice cluster unchanged after remap")
	}
}

func TestPriorityThresholdAdapts(t *testing.T) {
	params := DefaultParams()
	params.Epoch = 10
	s := NewPriority(BrSlice, params)
	// Mark one slice as highly critical and feed many instructions from it.
	for i := 0; i < 50; i++ {
		s.OnBranchResolved(7, true)
	}
	s.ids.set(7, 7)
	info := &core.SteerInfo{Forced: core.AnyCluster, PC: 7, Inst: isa.Inst{Op: isa.BNE}}
	start := s.Threshold()
	for cyc := uint64(0); cyc < 100; cyc++ {
		s.OnCycle(cyc, []int{2, 2})
		for k := 0; k < 4; k++ {
			s.Steer(info)
		}
	}
	// All instructions are in critical slices (fraction 1.0 > 0.5): the
	// threshold must rise.
	if s.Threshold() <= start {
		t.Errorf("threshold did not adapt upward: %d -> %d", start, s.Threshold())
	}
}

func TestPriorityCountsOnlyMatchingKind(t *testing.T) {
	br := NewPriority(BrSlice, DefaultParams())
	br.OnLoadResolved(3, true) // wrong kind: ignored
	if br.state(3).missCount != 0 {
		t.Error("Br priority counted a cache miss")
	}
	br.OnBranchResolved(3, true)
	if br.state(3).missCount != 1 {
		t.Error("Br priority missed a misprediction")
	}
	ld := NewPriority(LdStSlice, DefaultParams())
	ld.OnBranchResolved(3, true) // ignored
	if ld.state(3).missCount != 0 {
		t.Error("LdSt priority counted a misprediction")
	}
	ld.OnLoadResolved(3, true)
	if ld.state(3).missCount != 1 {
		t.Error("LdSt priority missed a cache miss")
	}
}

func TestFIFOBasedChasesOperands(t *testing.T) {
	s := NewFIFOBased()
	info := &core.SteerInfo{Forced: core.AnyCluster, NumSrcs: 1}
	info.SrcIn[0] = inFP
	if c := s.Steer(info); c != core.FPCluster {
		t.Errorf("operand in FP, steered %v", c)
	}
	// No operands: alternates.
	e1 := s.Steer(&core.SteerInfo{Forced: core.AnyCluster})
	e2 := s.Steer(&core.SteerInfo{Forced: core.AnyCluster})
	if e1 == e2 {
		t.Error("empty-operand instructions did not alternate")
	}
}

func TestStaticPartitionerFreezesAssignment(t *testing.T) {
	p := mustFig2(t)
	s, err := NewStatic(p, LdStSlice, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	// Address-chain instructions must be fixed to the integer cluster.
	for _, pc := range []int{4, 5, 8, 9, 15, 16, 17} {
		if c, ok := s.Assignment(pc); !ok || c != core.IntCluster {
			t.Errorf("PC %d assigned %v,%v want int", pc, c, ok)
		}
	}
	// The div's slice-free data computation goes to the FP cluster in the
	// static table (the datapath constraint overrides at dispatch).
	if c, _ := s.Assignment(11); c != core.FPCluster {
		t.Errorf("PC 11 assigned %v, want fp (pre-constraint)", c)
	}
	// Decisions are stable: same PC always steers the same way.
	info := &core.SteerInfo{Forced: core.AnyCluster, PC: 4}
	first := s.Steer(info)
	for i := 0; i < 10; i++ {
		if s.Steer(info) != first {
			t.Fatal("static assignment varied across instances")
		}
	}
}

func TestRegistryBuildsEverything(t *testing.T) {
	p := mustFig2(t)
	for _, name := range Names() {
		s, err := New(name, p)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%q: empty Name()", name)
		}
		if !strings.Contains(name, "static") && s.Name() != name && name != "naive" {
			// naive maps to core.NaiveSteerer with Name "naive" too.
			t.Errorf("Name() = %q, registry key %q", s.Name(), name)
		}
	}
	if _, err := New("bogus", p); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSliceKindString(t *testing.T) {
	if LdStSlice.String() != "ldst" || BrSlice.String() != "br" {
		t.Fatal("SliceKind names wrong")
	}
}
