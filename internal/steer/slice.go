package steer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// Slice implements the plain slice-steering schemes of Sections 3.3–3.4.
// Steering rule: every instruction in the tracked slice (LdSt or Br) is
// dispatched to the integer cluster and everything else to the FP cluster
// (complex integer instructions excepted — the datapath forces those to
// the integer cluster). The scheme is an inherently two-way partitioner;
// on an N-cluster machine it still uses only clusters 0 and 1.
//
// Slice membership is learned at run time: memory instructions (resp.
// branches) set their own slice bit; an instruction whose bit is set marks
// its parents' bits via the parent table, so membership creeps up the
// dependence graph one level per execution of the consumer — exactly the
// incremental hardware algorithm of Section 3.3.
type Slice struct {
	core.NopSteerer
	kind    SliceKind
	bits    *sliceBitTable
	parents parentTable
	srcBuf  []isa.Reg
}

// NewSlice returns LdSt- or Br-slice steering.
func NewSlice(kind SliceKind) *Slice {
	return &Slice{kind: kind, bits: newSliceBitTable()}
}

// Name implements core.Steerer.
func (s *Slice) Name() string { return fmt.Sprintf("%s-slice", s.kind) }

// observe updates the slice and parent tables for a decoded instruction
// and reports whether it belongs to the tracked slice.
//
//dca:hotpath
func (s *Slice) observe(info *core.SteerInfo) bool {
	in := info.Inst
	pc := info.PC
	if s.kind.defines(in.Op) {
		s.bits.set(pc)
	}
	inSlice := s.bits.get(pc)
	if inSlice {
		s.srcBuf = sliceSources(s.kind, in, s.srcBuf[:0])
		for _, r := range s.srcBuf {
			if ppc, ok := s.parents.lookup(r); ok {
				s.bits.set(ppc)
			}
		}
	}
	if d, ok := in.Dst(); ok {
		s.parents.record(d, pc)
	}
	return inSlice
}

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *Slice) Steer(info *core.SteerInfo) core.ClusterID {
	inSlice := s.observe(info)
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	if inSlice {
		return core.IntCluster
	}
	return core.FPCluster
}

// InSlice reports whether the static instruction at pc has been learned as
// a slice member (exported for tests and the static partitioner).
//
//dca:hotpath
func (s *Slice) InSlice(pc int) bool { return s.bits.get(pc) }
