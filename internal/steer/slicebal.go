package steer

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
)

// sliceState is one slice's entry in the cluster table of Figure 10 (and
// its Section 3.7 extension): the cluster the slice is mapped to, plus the
// criticality bookkeeping used by the priority scheme.
type sliceState struct {
	cluster  core.ClusterID
	assigned bool
	// missCount counts cache misses (LdSt slices) or mispredictions (Br
	// slices) of the slice's defining instruction.
	missCount uint64
}

// SliceBalance implements Section 3.6's slice balance steering:
// instructions are classified into individual backward slices at run time
// (slice table + parent table), each slice is mapped to a cluster (cluster
// table), and a whole slice re-maps to the least loaded cluster when its
// current cluster is strongly overloaded (on two clusters: to the other
// cluster, as in the paper). Non-slice instructions follow the non-slice
// balance rule.
type SliceBalance struct {
	core.NopSteerer
	kind    SliceKind
	ids     *sliceIDTable
	parents parentTable
	im      *imbalance
	table   map[int]*sliceState // slice id (defining pc) -> state
	srcBuf  []isa.Reg
	// Remaps counts whole-slice reassignments (reported by the ablation
	// benches; the priority scheme exists to reduce these).
	Remaps uint64
}

// NewSliceBalance returns the scheme over the given slice kind.
func NewSliceBalance(kind SliceKind, p Params) *SliceBalance {
	return &SliceBalance{
		kind:  kind,
		ids:   newSliceIDTable(),
		im:    newImbalance(p),
		table: make(map[int]*sliceState),
	}
}

// Name implements core.Steerer.
func (s *SliceBalance) Name() string { return fmt.Sprintf("%s-slicebal", s.kind) }

// OnCycle implements core.Steerer.
//
//dca:hotpath
func (s *SliceBalance) OnCycle(cycle uint64, ready []int) {
	s.im.onCycle(ready)
}

// observe updates slice membership for the decoded instruction and returns
// its slice id, if any.
//
//dca:hotpath
func (s *SliceBalance) observe(info *core.SteerInfo) (int, bool) {
	in := info.Inst
	pc := info.PC
	if s.kind.defines(in.Op) {
		s.ids.set(pc, pc) // the defining instruction anchors its own slice
	}
	sid, inSlice := s.ids.get(pc)
	if inSlice {
		s.srcBuf = sliceSources(s.kind, in, s.srcBuf[:0])
		for _, r := range s.srcBuf {
			if ppc, ok := s.parents.lookup(r); ok {
				s.ids.set(ppc, sid)
			}
		}
	}
	if d, ok := in.Dst(); ok {
		s.parents.record(d, pc)
	}
	return sid, inSlice
}

// state returns (creating if needed) the cluster-table entry for sid. New
// slices start on the integer cluster: their defining instructions are
// loads/stores/branches whose chains favor the memory datapath, and the
// balance machinery migrates them as pressure builds.
//
//dca:hotpath
func (s *SliceBalance) state(sid int) *sliceState {
	st, ok := s.table[sid]
	if !ok {
		st = &sliceState{}
		s.table[sid] = st
	}
	return st
}

// steerSlice places an instruction that belongs to slice sid: to the
// slice's cluster, re-mapping the whole slice to the least loaded cluster
// first when its current cluster is strongly overloaded (on two clusters
// that is exactly the paper's "the other cluster").
//
//dca:hotpath
func (s *SliceBalance) steerSlice(sid int, info *core.SteerInfo) core.ClusterID {
	ready := info.Ready[:min(s.im.n, len(info.Ready))]
	st := s.state(sid)
	if !st.assigned {
		st.cluster = s.im.leastLoaded(ready)
		st.assigned = true
	} else if s.im.strong() && s.im.overloaded(st.cluster) {
		st.cluster = s.im.leastLoaded(ready)
		s.Remaps++
	}
	return st.cluster
}

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *SliceBalance) Steer(info *core.SteerInfo) core.ClusterID {
	sid, inSlice := s.observe(info)
	c := s.choose(info, sid, inSlice)
	s.im.onSteer(c)
	return c
}

//dca:hotpath
func (s *SliceBalance) choose(info *core.SteerInfo, sid int, inSlice bool) core.ClusterID {
	if info.Forced != core.AnyCluster {
		return info.Forced
	}
	if inSlice {
		return s.steerSlice(sid, info)
	}
	return steerByOperandsAndBalance(info, s.im)
}

// Priority implements Section 3.7: only slices whose defining instruction
// misses in the cache (LdSt) or mispredicts (Br) often enough are kept
// together; everything else steers individually under the non-slice rule.
// The criticality threshold self-tunes every Epoch cycles toward having
// about half of the instructions in critical slices.
type Priority struct {
	*SliceBalance
	epochStart    uint64
	threshold     uint64
	criticalCount uint64
	totalCount    uint64
}

// NewPriority returns the priority slice balance scheme.
func NewPriority(kind SliceKind, p Params) *Priority {
	return &Priority{SliceBalance: NewSliceBalance(kind, p), threshold: 1}
}

// Name implements core.Steerer.
func (s *Priority) Name() string { return fmt.Sprintf("%s-priority", s.kind) }

// OnCycle implements core.Steerer: besides the balance update, it runs the
// 8192-cycle threshold adaptation loop of Section 3.7.
//
//dca:hotpath
func (s *Priority) OnCycle(cycle uint64, ready []int) {
	s.SliceBalance.OnCycle(cycle, ready)
	if cycle-s.epochStart < s.im.p.Epoch {
		return
	}
	s.epochStart = cycle
	if s.totalCount == 0 {
		return
	}
	frac := float64(s.criticalCount) / float64(s.totalCount)
	if frac > s.im.p.CriticalFraction {
		s.threshold++
	} else if s.threshold > 1 {
		s.threshold--
	}
	s.criticalCount, s.totalCount = 0, 0
}

// OnBranchResolved implements core.Steerer: mispredictions raise the
// criticality of Br slices.
//
//dca:hotpath
func (s *Priority) OnBranchResolved(pc int, mispredicted bool) {
	if s.kind == BrSlice && mispredicted {
		s.state(pc).missCount++
	}
}

// OnLoadResolved implements core.Steerer: L1 misses raise the criticality
// of LdSt slices.
//
//dca:hotpath
func (s *Priority) OnLoadResolved(pc int, l1Miss bool) {
	if s.kind == LdStSlice && l1Miss {
		s.state(pc).missCount++
	}
}

// critical reports whether slice sid has crossed the adaptive threshold.
//
//dca:hotpath
func (s *Priority) critical(sid int) bool {
	return s.state(sid).missCount >= s.threshold
}

// Steer implements core.Steerer.
//
//dca:hotpath
func (s *Priority) Steer(info *core.SteerInfo) core.ClusterID {
	sid, inSlice := s.observe(info)
	s.totalCount++
	crit := inSlice && s.critical(sid)
	if crit {
		s.criticalCount++
	}
	var c core.ClusterID
	switch {
	case info.Forced != core.AnyCluster:
		c = info.Forced
	case crit:
		c = s.steerSlice(sid, info)
	default:
		c = steerByOperandsAndBalance(info, s.im)
	}
	s.im.onSteer(c)
	return c
}

// Threshold exposes the current adaptive criticality threshold (for tests
// and diagnostics).
func (s *Priority) Threshold() uint64 { return s.threshold }
