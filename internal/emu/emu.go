// Package emu is the functional (architectural) emulator for the
// repository's ISA. It defines the reference semantics of every opcode and
// is used in three roles:
//
//   - as the oracle front end of the timing simulator (the committed-path
//     instruction stream, branch outcomes and memory addresses);
//   - as the co-simulation reference that the timing core's commit stream is
//     checked against in tests;
//   - as a standalone interpreter for running workloads functionally.
package emu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Step describes one executed (committed) dynamic instruction.
type Step struct {
	// Seq is the dynamic instruction number, starting at 0.
	Seq uint64
	// PC is the instruction index that executed.
	PC int
	// Inst is the executed instruction.
	Inst isa.Inst
	// NextPC is the index of the next instruction to execute.
	NextPC int
	// Taken reports the branch outcome for control transfers.
	Taken bool
	// MemAddr is the effective address for loads and stores.
	MemAddr uint64
	// WroteReg and Value describe the register result, if any.
	WroteReg bool
	Value    int64
}

// Machine is architectural state plus the loaded program.
type Machine struct {
	// Prog is the loaded program.
	Prog *prog.Program
	// Mem is the data memory (text is held separately in Prog).
	Mem *Memory
	// Reg holds the 64 architectural registers; FP values are stored as
	// IEEE754 bit patterns. Reg[0] is hardwired to zero.
	Reg [isa.NumRegs]int64
	// PC is the index of the next instruction to execute.
	PC int
	// Halted is set once HALT executes.
	Halted bool
	// Count is the number of instructions executed so far.
	Count uint64
}

// New loads p into a fresh machine: data segment copied to memory, PC at the
// entry point, stack pointer (r30) initialized to the conventional stack
// base.
func New(p *prog.Program) *Machine {
	m := &Machine{Prog: p, Mem: NewMemory(), PC: p.Entry}
	m.Mem.LoadImage(p.DataBase, p.Data)
	m.Reg[isa.R(30)] = prog.DefaultStackBase
	return m
}

// f64 interprets a register value as a float64.
func f64(bits int64) float64 { return math.Float64frombits(uint64(bits)) }

// bits64 stores a float64 as register bits.
func bits64(v float64) int64 { return int64(math.Float64bits(v)) }

// setReg writes a register, honoring the hardwired zero register.
func (m *Machine) setReg(r isa.Reg, v int64) {
	if r == isa.NoReg || r.IsZero() || !r.Valid() {
		return
	}
	m.Reg[r] = v
}

// regVal reads a register; invalid or absent operands read as zero. A
// method rather than a closure inside Step so the compiler inlines it —
// Step is the per-fetched-instruction oracle call of the timing core's
// hot loop.
func (m *Machine) regVal(reg isa.Reg) int64 {
	if reg == isa.NoReg || !reg.Valid() {
		return 0
	}
	return m.Reg[reg]
}

// Step executes one instruction and reports what happened. Calling Step on
// a halted machine returns an error.
func (m *Machine) Step() (Step, error) {
	var st Step
	err := m.StepInto(&st)
	return st, err
}

// StepInto executes one instruction, writing the report into st. It is the
// copy-free form of Step for callers that own a Step slot (the timing
// core's fetch stage writes straight into its decode-queue ring).
func (m *Machine) StepInto(st *Step) error {
	if m.Halted {
		return fmt.Errorf("emu: machine is halted")
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Text) {
		return fmt.Errorf("emu: PC %d out of range [0,%d)", m.PC, len(m.Prog.Text))
	}
	in := m.Prog.Text[m.PC]
	*st = Step{}
	st.Seq = m.Count
	st.PC = m.PC
	st.Inst = in
	st.NextPC = m.PC + 1

	write := func(reg isa.Reg, v int64) {
		m.setReg(reg, v)
		if reg != isa.NoReg && !reg.IsZero() && reg.Valid() {
			st.WroteReg, st.Value = true, v
		}
	}

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		m.Halted = true
		st.NextPC = m.PC

	// Integer ALU.
	case isa.ADD:
		write(in.Rd, m.regVal(in.Rs1)+m.regVal(in.Rs2))
	case isa.SUB:
		write(in.Rd, m.regVal(in.Rs1)-m.regVal(in.Rs2))
	case isa.AND:
		write(in.Rd, m.regVal(in.Rs1)&m.regVal(in.Rs2))
	case isa.OR:
		write(in.Rd, m.regVal(in.Rs1)|m.regVal(in.Rs2))
	case isa.XOR:
		write(in.Rd, m.regVal(in.Rs1)^m.regVal(in.Rs2))
	case isa.NOR:
		write(in.Rd, ^(m.regVal(in.Rs1) | m.regVal(in.Rs2)))
	case isa.SLL:
		write(in.Rd, m.regVal(in.Rs1)<<(uint64(m.regVal(in.Rs2))&63))
	case isa.SRL:
		write(in.Rd, int64(uint64(m.regVal(in.Rs1))>>(uint64(m.regVal(in.Rs2))&63)))
	case isa.SRA:
		write(in.Rd, m.regVal(in.Rs1)>>(uint64(m.regVal(in.Rs2))&63))
	case isa.SLT:
		write(in.Rd, boolTo64(m.regVal(in.Rs1) < m.regVal(in.Rs2)))
	case isa.SLTU:
		write(in.Rd, boolTo64(uint64(m.regVal(in.Rs1)) < uint64(m.regVal(in.Rs2))))
	case isa.ADDI:
		write(in.Rd, m.regVal(in.Rs1)+int64(in.Imm))
	case isa.ANDI:
		write(in.Rd, m.regVal(in.Rs1)&int64(in.Imm))
	case isa.ORI:
		write(in.Rd, m.regVal(in.Rs1)|int64(in.Imm))
	case isa.XORI:
		write(in.Rd, m.regVal(in.Rs1)^int64(in.Imm))
	case isa.SLLI:
		write(in.Rd, m.regVal(in.Rs1)<<(uint32(in.Imm)&63))
	case isa.SRLI:
		write(in.Rd, int64(uint64(m.regVal(in.Rs1))>>(uint32(in.Imm)&63)))
	case isa.SRAI:
		write(in.Rd, m.regVal(in.Rs1)>>(uint32(in.Imm)&63))
	case isa.SLTI:
		write(in.Rd, boolTo64(m.regVal(in.Rs1) < int64(in.Imm)))
	case isa.LUI:
		write(in.Rd, int64(in.Imm)<<16)

	// Complex integer. Division by zero is defined to produce zero so that
	// buggy workloads fail loudly in their own logic rather than crash the
	// simulator.
	case isa.MUL:
		write(in.Rd, m.regVal(in.Rs1)*m.regVal(in.Rs2))
	case isa.DIV:
		if d := m.regVal(in.Rs2); d != 0 {
			write(in.Rd, m.regVal(in.Rs1)/d)
		} else {
			write(in.Rd, 0)
		}
	case isa.REM:
		if d := m.regVal(in.Rs2); d != 0 {
			write(in.Rd, m.regVal(in.Rs1)%d)
		} else {
			write(in.Rd, 0)
		}

	// Memory.
	case isa.LD, isa.LW, isa.LB, isa.FLD:
		addr := uint64(m.regVal(in.Rs1) + int64(in.Imm))
		st.MemAddr = addr
		raw := m.Mem.Read(addr, in.Op.MemWidth())
		var v int64
		switch in.Op {
		case isa.LW:
			v = int64(int32(uint32(raw))) // sign-extend
		case isa.LB:
			v = int64(int8(uint8(raw)))
		default:
			v = int64(raw)
		}
		write(in.Rd, v)
	case isa.ST, isa.SW, isa.SB, isa.FST:
		addr := uint64(m.regVal(in.Rs1) + int64(in.Imm))
		st.MemAddr = addr
		m.Mem.Write(addr, in.Op.MemWidth(), uint64(m.regVal(in.Rs2)))

	// Control transfers.
	case isa.BEQ:
		st.Taken = m.regVal(in.Rs1) == m.regVal(in.Rs2)
	case isa.BNE:
		st.Taken = m.regVal(in.Rs1) != m.regVal(in.Rs2)
	case isa.BLT:
		st.Taken = m.regVal(in.Rs1) < m.regVal(in.Rs2)
	case isa.BGE:
		st.Taken = m.regVal(in.Rs1) >= m.regVal(in.Rs2)
	case isa.BLTU:
		st.Taken = uint64(m.regVal(in.Rs1)) < uint64(m.regVal(in.Rs2))
	case isa.BGEU:
		st.Taken = uint64(m.regVal(in.Rs1)) >= uint64(m.regVal(in.Rs2))
	case isa.J:
		st.Taken = true
		st.NextPC = int(in.Imm)
	case isa.JAL:
		st.Taken = true
		write(in.Rd, int64(m.PC+1))
		st.NextPC = int(in.Imm)
	case isa.JR:
		st.Taken = true
		st.NextPC = int(m.regVal(in.Rs1))
	case isa.JALR:
		st.Taken = true
		target := int(m.regVal(in.Rs1))
		write(in.Rd, int64(m.PC+1))
		st.NextPC = target

	// Floating point.
	case isa.FADD:
		write(in.Rd, bits64(f64(m.regVal(in.Rs1))+f64(m.regVal(in.Rs2))))
	case isa.FSUB:
		write(in.Rd, bits64(f64(m.regVal(in.Rs1))-f64(m.regVal(in.Rs2))))
	case isa.FMUL:
		write(in.Rd, bits64(f64(m.regVal(in.Rs1))*f64(m.regVal(in.Rs2))))
	case isa.FDIV:
		write(in.Rd, bits64(f64(m.regVal(in.Rs1))/f64(m.regVal(in.Rs2))))
	case isa.FNEG:
		write(in.Rd, bits64(-f64(m.regVal(in.Rs1))))
	case isa.FABS:
		write(in.Rd, bits64(math.Abs(f64(m.regVal(in.Rs1)))))
	case isa.FMOV:
		write(in.Rd, m.regVal(in.Rs1))
	case isa.FCVTIF:
		write(in.Rd, bits64(float64(m.regVal(in.Rs1))))
	case isa.FCVTFI:
		write(in.Rd, int64(f64(m.regVal(in.Rs1))))
	case isa.FEQ:
		write(in.Rd, boolTo64(f64(m.regVal(in.Rs1)) == f64(m.regVal(in.Rs2))))
	case isa.FLT:
		write(in.Rd, boolTo64(f64(m.regVal(in.Rs1)) < f64(m.regVal(in.Rs2))))
	case isa.FLE:
		write(in.Rd, boolTo64(f64(m.regVal(in.Rs1)) <= f64(m.regVal(in.Rs2))))

	default:
		return fmt.Errorf("emu: unimplemented opcode %v at PC %d", in.Op, m.PC)
	}

	if in.Op.IsCondBranch() && st.Taken {
		st.NextPC = int(in.Imm)
	}
	if !m.Halted {
		if st.NextPC < 0 || st.NextPC >= len(m.Prog.Text) {
			return fmt.Errorf("emu: jump to out-of-range PC %d from %d (%v)", st.NextPC, m.PC, in)
		}
		m.PC = st.NextPC
	}
	m.Count++
	return nil
}

// Run executes until HALT or until max instructions have run (0 = no
// limit). It returns the number of instructions executed.
func (m *Machine) Run(max uint64) (uint64, error) {
	start := m.Count
	for !m.Halted {
		if max > 0 && m.Count-start >= max {
			break
		}
		if _, err := m.Step(); err != nil {
			return m.Count - start, err
		}
	}
	return m.Count - start, nil
}

// IntReg returns the value of integer register i.
func (m *Machine) IntReg(i int) int64 { return m.Reg[isa.R(i)] }

// FPReg returns the value of FP register i as a float64.
func (m *Machine) FPReg(i int) float64 { return f64(m.Reg[isa.F(i)]) }

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
