package emu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAsm(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(t.Name(), src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, src string, max uint64) *Machine {
	t.Helper()
	m := New(mustAsm(t, src))
	if _, err := m.Run(max); err != nil {
		t.Fatal(err)
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
.text
  li   r1, 7
  li   r2, 3
  add  r3, r1, r2    ; 10
  sub  r4, r1, r2    ; 4
  mul  r5, r1, r2    ; 21
  div  r6, r1, r2    ; 2
  rem  r7, r1, r2    ; 1
  and  r8, r1, r2    ; 3
  or   r9, r1, r2    ; 7
  xor  r10, r1, r2   ; 4
  nor  r11, r1, r2   ; ^7
  slt  r12, r2, r1   ; 1
  sltu r13, r1, r2   ; 0
  halt
`, 100)
	want := map[int]int64{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4, 11: ^int64(7), 12: 1, 13: 0}
	for reg, v := range want {
		if got := m.IntReg(reg); got != v {
			t.Errorf("r%d = %d, want %d", reg, got, v)
		}
	}
}

func TestShiftsAndImmediates(t *testing.T) {
	m := run(t, `
.text
  li   r1, -8
  slli r2, r1, 2     ; -32
  srai r3, r1, 1     ; -4
  srli r4, r1, 60    ; high bits of two's complement
  li   r5, 5
  sll  r6, r5, r5    ; 5<<5 = 160
  slti r7, r1, 0     ; 1
  andi r8, r5, 4     ; 4
  ori  r9, r5, 2     ; 7
  xori r10, r5, 1    ; 4
  lui  r11, 2        ; 131072
  halt
`, 100)
	checks := map[int]int64{
		2: -32, 3: -4, 4: int64(^uint64(7) >> 60), 6: 160,
		7: 1, 8: 4, 9: 7, 10: 4, 11: 131072,
	}
	for reg, v := range checks {
		if got := m.IntReg(reg); got != v {
			t.Errorf("r%d = %d, want %d", reg, got, v)
		}
	}
}

func TestDivByZeroDefined(t *testing.T) {
	m := run(t, `
.text
  li  r1, 42
  div r2, r1, r0
  rem r3, r1, r0
  halt
`, 10)
	if m.IntReg(2) != 0 || m.IntReg(3) != 0 {
		t.Errorf("div/rem by zero = %d,%d want 0,0", m.IntReg(2), m.IntReg(3))
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	m := run(t, `
.text
  addi r0, r0, 99
  add  r1, r0, r0
  halt
`, 10)
	if m.IntReg(0) != 0 || m.IntReg(1) != 0 {
		t.Errorf("r0 = %d r1 = %d, want 0, 0", m.IntReg(0), m.IntReg(1))
	}
}

func TestMemoryWidthsAndSignExtension(t *testing.T) {
	m := run(t, `
.data
buf: .space 32
.text
  li  r1, buf
  li  r2, -1
  sb  r2, 0(r1)
  lb  r3, 0(r1)      ; -1 sign extended
  li  r4, 0x7FFF
  sw  r4, 8(r1)
  lw  r5, 8(r1)      ; 32767
  li  r6, -100000
  sw  r6, 12(r1)
  lw  r7, 12(r1)     ; -100000 sign extended from 32 bits
  st  r6, 16(r1)
  ld  r8, 16(r1)
  halt
`, 100)
	if m.IntReg(3) != -1 {
		t.Errorf("lb = %d, want -1", m.IntReg(3))
	}
	if m.IntReg(5) != 0x7FFF {
		t.Errorf("lw = %d, want 32767", m.IntReg(5))
	}
	if m.IntReg(7) != -100000 {
		t.Errorf("lw signed = %d, want -100000", m.IntReg(7))
	}
	if m.IntReg(8) != -100000 {
		t.Errorf("ld = %d, want -100000", m.IntReg(8))
	}
}

func TestLoadsSeeStores(t *testing.T) {
	// Store-to-load through the same address with different bases.
	m := run(t, `
.data
a: .word 5
.text
  li r1, a
  li r2, 123
  st r2, 0(r1)
  ld r3, 0(r1)
  halt
`, 20)
	if m.IntReg(3) != 123 {
		t.Errorf("ld after st = %d, want 123", m.IntReg(3))
	}
}

func TestBranchesAndLoop(t *testing.T) {
	m := run(t, `
.text
  li r1, 0
  li r2, 10
  li r3, 0
loop:
  add r3, r3, r1
  addi r1, r1, 1
  blt r1, r2, loop
  halt
`, 1000)
	if m.IntReg(3) != 45 {
		t.Errorf("sum 0..9 = %d, want 45", m.IntReg(3))
	}
}

func TestAllBranchConditions(t *testing.T) {
	m := run(t, `
.text
  li r1, -1
  li r2, 1
  li r10, 0
  beq r1, r1, a
  halt
a: li r10, 1
  bne r1, r2, b
  halt
b: li r10, 2
  blt r1, r2, c      ; signed: -1 < 1
  halt
c: li r10, 3
  bge r2, r1, d
  halt
d: li r10, 4
  bltu r2, r1, e     ; unsigned: 1 < 0xFFFF... true
  halt
e: li r10, 5
  bgeu r1, r2, f
  halt
f: li r10, 6
  halt
`, 100)
	if m.IntReg(10) != 6 {
		t.Errorf("reached stage %d, want 6", m.IntReg(10))
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
.text
  li  r4, 5
  jal r31, double
  mov r6, r5
  jal r31, double2
  halt
double:
  add r5, r4, r4
  jr  r31
double2:
  add r5, r6, r6
  jalr r0, r31
`, 100)
	if m.IntReg(5) != 20 {
		t.Errorf("nested call result = %d, want 20", m.IntReg(5))
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
.data
vals: .double 1.5, 2.5
.text
  li     r1, vals
  fld    f1, 0(r1)
  fld    f2, 8(r1)
  fadd   f3, f1, f2    ; 4.0
  fsub   f4, f2, f1    ; 1.0
  fmul   f5, f1, f2    ; 3.75
  fdiv   f6, f2, f1    ; 1.666..
  fneg   f7, f1        ; -1.5
  fabs   f8, f7        ; 1.5
  fcvtfi r2, f3        ; 4
  fcvtif f9, r2        ; 4.0
  flt    r3, f1, f2    ; 1
  fle    r4, f2, f1    ; 0
  feq    r5, f1, f1    ; 1
  fst    f3, 16(r1)
  fld    f10, 16(r1)
  halt
`, 100)
	fpChecks := map[int]float64{3: 4.0, 4: 1.0, 5: 3.75, 7: -1.5, 8: 1.5, 9: 4.0, 10: 4.0}
	for reg, v := range fpChecks {
		if got := m.FPReg(reg); got != v {
			t.Errorf("f%d = %g, want %g", reg, got, v)
		}
	}
	if m.IntReg(2) != 4 || m.IntReg(3) != 1 || m.IntReg(4) != 0 || m.IntReg(5) != 1 {
		t.Errorf("fp compares/convert wrong: r2=%d r3=%d r4=%d r5=%d",
			m.IntReg(2), m.IntReg(3), m.IntReg(4), m.IntReg(5))
	}
}

func TestStepReportsBranchOutcomes(t *testing.T) {
	p := mustAsm(t, `
.text
  li  r1, 1
  beq r1, r0, skip   ; not taken
  bne r1, r0, skip   ; taken
  halt
skip:
  halt
`)
	m := New(p)
	steps := []struct {
		taken  bool
		branch bool
	}{{false, false}, {false, true}, {true, true}}
	for i, want := range steps {
		st, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.Inst.Op.IsBranch() != want.branch || st.Taken != want.taken {
			t.Errorf("step %d: branch=%v taken=%v, want %+v (inst %v)",
				i, st.Inst.Op.IsBranch(), st.Taken, want, st.Inst)
		}
	}
}

func TestStepReportsMemAddr(t *testing.T) {
	p := mustAsm(t, `
.data
x: .word 9
.text
  li r1, x
  ld r2, 8(r1)
  halt
`)
	m := New(p)
	var last Step
	for !m.Halted {
		st, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if st.Inst.Op.IsMem() {
			last = st
		}
	}
	wantAddr := p.Symbols["x"] + 8
	if last.MemAddr != wantAddr {
		t.Errorf("MemAddr = %#x, want %#x", last.MemAddr, wantAddr)
	}
}

func TestHaltedMachineRefusesStep(t *testing.T) {
	m := run(t, ".text\n halt\n", 10)
	if _, err := m.Step(); err == nil {
		t.Fatal("Step on halted machine did not error")
	}
}

func TestRunWithMaxStopsEarly(t *testing.T) {
	p := mustAsm(t, `
.text
loop: j loop
`)
	m := New(p)
	n, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || m.Halted {
		t.Errorf("ran %d halted=%v, want 100, false", n, m.Halted)
	}
}

func TestJumpOutOfRangeErrors(t *testing.T) {
	p := &prog.Program{
		Name: "bad",
		Text: []isa.Inst{
			{Op: isa.ADDI, Rd: isa.R(1), Imm: 999},
			{Op: isa.JR, Rs1: isa.R(1)},
			{Op: isa.HALT},
		},
	}
	m := New(p)
	_, err := m.Run(10)
	if err == nil {
		t.Fatal("expected out-of-range jump error")
	}
}

// Property: memory read-after-write returns the written value for any
// address/width combination.
func TestMemoryReadAfterWrite(t *testing.T) {
	widths := []int{1, 4, 8}
	f := func(addrSeed uint32, val uint64, wIdx uint8) bool {
		m := NewMemory()
		addr := uint64(addrSeed)
		w := widths[int(wIdx)%len(widths)]
		m.Write(addr, w, val)
		got := m.Read(addr, w)
		var mask uint64 = ^uint64(0)
		if w < 8 {
			mask = (1 << (8 * uint(w))) - 1
		}
		return got == val&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: writes to one region never disturb another disjoint region,
// including across page boundaries.
func TestMemoryDisjointWrites(t *testing.T) {
	m := NewMemory()
	r := rand.New(rand.NewSource(7))
	ref := map[uint64]byte{}
	for i := 0; i < 5000; i++ {
		// Cluster addresses near page boundaries to stress straddling.
		addr := uint64(r.Intn(8))*pageSize + uint64(r.Intn(16)) + pageSize - 8
		val := uint64(r.Int63())
		m.Write(addr, 8, val)
		for j := 0; j < 8; j++ {
			ref[addr+uint64(j)] = byte(val >> (8 * uint(j)))
		}
	}
	for addr, want := range ref {
		if got := m.ByteAt(addr); got != want {
			t.Fatalf("mem[%#x] = %#x, want %#x", addr, got, want)
		}
	}
}

func TestUntouchedMemoryReadsZero(t *testing.T) {
	m := NewMemory()
	if m.Read(0xDEAD_BEEF, 8) != 0 {
		t.Fatal("untouched memory not zero")
	}
	if m.Pages() != 0 {
		t.Fatal("read allocated a page")
	}
}

// The paper's Figure 2 loop must produce A[i] = B[i]/C[i] with C[i]==0
// handled. This doubles as an end-to-end emulator check on div, branches,
// and memory.
func TestFigure2Semantics(t *testing.T) {
	m := run(t, `
.data
A: .word 0, 0, 0, 0
B: .word 8, 12, 20, 36
C: .word 2, 0, 5, 6
.text
     li   r9,  32      ; N*8
     li   r1,  0       ; i*8
for: li   r2, B
     add  r2, r2, r1
     ld   r3, 0(r2)
     li   r4, C
     add  r4, r4, r1
     ld   r5, 0(r4)
     beq  r5, r0, l1
     div  r7, r3, r5
     j    l2
l1:  li   r7, 0
l2:  li   r8, A
     add  r8, r8, r1
     st   r7, 0(r8)
     addi r1, r1, 8
     bne  r1, r9, for
     halt
`, 10000)
	base := m.Prog.Symbols["A"]
	want := []int64{4, 0, 4, 6}
	for i, w := range want {
		if got := int64(m.Mem.Read(base+uint64(i*8), 8)); got != w {
			t.Errorf("A[%d] = %d, want %d", i, got, w)
		}
	}
}
