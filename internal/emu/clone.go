package emu

// Clone returns a deep copy of the architectural state: registers, PC,
// halt flag, instruction count and every touched memory page. The loaded
// program is shared — it is immutable after assembly. Warm-state
// checkpointing (internal/core's Checkpoint) uses it to snapshot the
// oracle at the warm-up boundary.
func (m *Machine) Clone() *Machine {
	c := *m
	c.Mem = m.Mem.Clone()
	return &c
}

// Clone returns a deep copy of the memory: every touched page is
// duplicated, so writes through either machine never alias. The one-entry
// page cache is deliberately left empty — a carried-over pointer would
// alias a page of the source memory.
func (m *Memory) Clone() *Memory {
	pages := make(map[uint64]*page, len(m.pages))
	for pn, p := range m.pages {
		pages[pn] = clonePage(p)
	}
	return &Memory{pages: pages}
}

func clonePage(p *page) *page {
	q := *p
	return &q
}
