package emu

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse, byte-addressable 64-bit memory. Pages are allocated
// on first touch; reads of untouched memory return zero, matching a
// zero-initialized address space. A one-entry page cache short-circuits
// the page-table lookup for the common case of consecutive accesses to
// the same page (the timing simulator's oracle steps exhibit strong
// locality); it is pure memoization and never observable in results.
type Memory struct {
	pages    map[uint64]*page
	lastPN   uint64
	lastPage *page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> pageShift
	if p := m.lastPage; p != nil && pn == m.lastPN {
		return p
	}
	p := m.pages[pn]
	if p == nil && create {
		p = new(page)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.pageFor(addr, true)[addr&pageMask] = b
}

// Read returns width bytes starting at addr as a little-endian unsigned
// integer. width must be 1, 4 or 8. Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, width int) uint64 {
	if off := addr & pageMask; off+uint64(width) <= pageSize {
		// Fast path: the access is contained in one page (one table
		// lookup instead of one per byte).
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		switch width {
		case 1:
			return uint64(p[off])
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		default:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var buf [8]byte
	for i := 0; i < width; i++ {
		buf[i] = m.ByteAt(addr + uint64(i))
	}
	switch width {
	case 1:
		return uint64(buf[0])
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:4]))
	default:
		return binary.LittleEndian.Uint64(buf[:])
	}
}

// Write stores the low width bytes of val at addr, little-endian.
func (m *Memory) Write(addr uint64, width int, val uint64) {
	if off := addr & pageMask; off+uint64(width) <= pageSize {
		p := m.pageFor(addr, true)
		switch width {
		case 1:
			p[off] = byte(val)
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
		default:
			binary.LittleEndian.PutUint64(p[off:], val)
		}
		return
	}
	for i := 0; i < width; i++ {
		m.SetByte(addr+uint64(i), byte(val>>(8*uint(i))))
	}
}

// LoadImage copies data into memory starting at base.
func (m *Memory) LoadImage(base uint64, data []byte) {
	for i, b := range data {
		m.SetByte(base+uint64(i), b)
	}
}

// Pages reports how many pages have been touched (for tests and memory
// footprint diagnostics).
func (m *Memory) Pages() int { return len(m.pages) }
