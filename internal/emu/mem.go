package emu

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// Memory is a sparse, byte-addressable 64-bit memory. Pages are allocated
// on first touch; reads of untouched memory return zero, matching a
// zero-initialized address space.
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new(page)
		m.pages[pn] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.pageFor(addr, true)[addr&pageMask] = b
}

// Read returns width bytes starting at addr as a little-endian unsigned
// integer. width must be 1, 4 or 8. Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, width int) uint64 {
	var buf [8]byte
	for i := 0; i < width; i++ {
		buf[i] = m.ByteAt(addr + uint64(i))
	}
	switch width {
	case 1:
		return uint64(buf[0])
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:4]))
	default:
		return binary.LittleEndian.Uint64(buf[:])
	}
}

// Write stores the low width bytes of val at addr, little-endian.
func (m *Memory) Write(addr uint64, width int, val uint64) {
	for i := 0; i < width; i++ {
		m.SetByte(addr+uint64(i), byte(val>>(8*uint(i))))
	}
}

// LoadImage copies data into memory starting at base.
func (m *Memory) LoadImage(base uint64, data []byte) {
	for i, b := range data {
		m.SetByte(base+uint64(i), b)
	}
}

// Pages reports how many pages have been touched (for tests and memory
// footprint diagnostics).
func (m *Memory) Pages() int { return len(m.pages) }
