package emu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/prog"
)

// runOp executes a single instruction with the given register inputs and
// returns the destination value.
func runOp(t *testing.T, op isa.Opcode, a, b int64, imm int32) int64 {
	t.Helper()
	p := &prog.Program{
		Name: "op",
		Text: []isa.Inst{
			{Op: op, Rd: isa.R(3), Rs1: isa.R(1), Rs2: isa.R(2), Imm: imm},
			{Op: isa.HALT},
		},
	}
	m := New(p)
	m.Reg[isa.R(1)] = a
	m.Reg[isa.R(2)] = b
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	return m.IntReg(3)
}

// Property: every integer ALU opcode matches its Go reference semantics on
// random operands.
func TestALUSemanticsMatchGo(t *testing.T) {
	refs := map[isa.Opcode]func(a, b int64) int64{
		isa.ADD:  func(a, b int64) int64 { return a + b },
		isa.SUB:  func(a, b int64) int64 { return a - b },
		isa.AND:  func(a, b int64) int64 { return a & b },
		isa.OR:   func(a, b int64) int64 { return a | b },
		isa.XOR:  func(a, b int64) int64 { return a ^ b },
		isa.NOR:  func(a, b int64) int64 { return ^(a | b) },
		isa.SLL:  func(a, b int64) int64 { return a << (uint64(b) & 63) },
		isa.SRL:  func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) },
		isa.SRA:  func(a, b int64) int64 { return a >> (uint64(b) & 63) },
		isa.SLT:  func(a, b int64) int64 { return b2i(a < b) },
		isa.SLTU: func(a, b int64) int64 { return b2i(uint64(a) < uint64(b)) },
		isa.MUL:  func(a, b int64) int64 { return a * b },
		isa.DIV: func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a / b
		},
		isa.REM: func(a, b int64) int64 {
			if b == 0 {
				return 0
			}
			return a % b
		},
	}
	r := rand.New(rand.NewSource(1))
	for op, ref := range refs {
		for trial := 0; trial < 50; trial++ {
			a, b := r.Int63()-r.Int63(), r.Int63()-r.Int63()
			if trial == 0 {
				b = 0 // always cover the divide-by-zero path
			}
			got, want := runOp(t, op, a, b, 0), ref(a, b)
			if got != want {
				t.Fatalf("%v(%d, %d) = %d, want %d", op, a, b, got, want)
			}
		}
	}
}

// Property: immediate forms agree with their register forms.
func TestImmediateFormsAgree(t *testing.T) {
	pairs := map[isa.Opcode]isa.Opcode{
		isa.ADDI: isa.ADD, isa.ANDI: isa.AND, isa.ORI: isa.OR, isa.XORI: isa.XOR,
	}
	f := func(a int64, imm int16) bool {
		for immOp, regOp := range pairs {
			p1 := runOpQuick(immOp, a, 0, int32(imm))
			p2 := runOpQuick(regOp, a, int64(imm), 0)
			if p1 != p2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func runOpQuick(op isa.Opcode, a, b int64, imm int32) int64 {
	p := &prog.Program{
		Name: "op",
		Text: []isa.Inst{
			{Op: op, Rd: isa.R(3), Rs1: isa.R(1), Rs2: isa.R(2), Imm: imm},
			{Op: isa.HALT},
		},
	}
	m := New(p)
	m.Reg[isa.R(1)] = a
	m.Reg[isa.R(2)] = b
	if _, err := m.Run(0); err != nil {
		return 0
	}
	return m.IntReg(3)
}

// Property: FP arithmetic matches float64 semantics bit-for-bit.
func TestFPSemanticsMatchGo(t *testing.T) {
	type fpCase struct {
		op  isa.Opcode
		ref func(a, b float64) float64
	}
	cases := []fpCase{
		{isa.FADD, func(a, b float64) float64 { return a + b }},
		{isa.FSUB, func(a, b float64) float64 { return a - b }},
		{isa.FMUL, func(a, b float64) float64 { return a * b }},
		{isa.FDIV, func(a, b float64) float64 { return a / b }},
	}
	r := rand.New(rand.NewSource(2))
	for _, c := range cases {
		for trial := 0; trial < 100; trial++ {
			a := (r.Float64() - 0.5) * 1e6
			b := (r.Float64() - 0.5) * 1e6
			p := &prog.Program{
				Name: "fp",
				Text: []isa.Inst{
					{Op: c.op, Rd: isa.F(3), Rs1: isa.F(1), Rs2: isa.F(2)},
					{Op: isa.HALT},
				},
			}
			m := New(p)
			m.Reg[isa.F(1)] = int64(math.Float64bits(a))
			m.Reg[isa.F(2)] = int64(math.Float64bits(b))
			if _, err := m.Run(0); err != nil {
				t.Fatal(err)
			}
			got := m.FPReg(3)
			want := c.ref(a, b)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v(%g, %g) = %g, want %g", c.op, a, b, got, want)
			}
		}
	}
}

// Property: branch outcomes match Go comparison semantics.
func TestBranchSemanticsMatchGo(t *testing.T) {
	refs := map[isa.Opcode]func(a, b int64) bool{
		isa.BEQ:  func(a, b int64) bool { return a == b },
		isa.BNE:  func(a, b int64) bool { return a != b },
		isa.BLT:  func(a, b int64) bool { return a < b },
		isa.BGE:  func(a, b int64) bool { return a >= b },
		isa.BLTU: func(a, b int64) bool { return uint64(a) < uint64(b) },
		isa.BGEU: func(a, b int64) bool { return uint64(a) >= uint64(b) },
	}
	r := rand.New(rand.NewSource(3))
	for op, ref := range refs {
		for trial := 0; trial < 100; trial++ {
			a, b := r.Int63()-r.Int63(), r.Int63()-r.Int63()
			if trial%5 == 0 {
				b = a // cover the equality boundary
			}
			p := &prog.Program{
				Name: "br",
				Text: []isa.Inst{
					{Op: op, Rs1: isa.R(1), Rs2: isa.R(2), Imm: 2},
					{Op: isa.HALT},
					{Op: isa.HALT},
				},
			}
			m := New(p)
			m.Reg[isa.R(1)] = a
			m.Reg[isa.R(2)] = b
			st, err := m.Step()
			if err != nil {
				t.Fatal(err)
			}
			if st.Taken != ref(a, b) {
				t.Fatalf("%v(%d, %d): taken=%v, want %v", op, a, b, st.Taken, ref(a, b))
			}
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
