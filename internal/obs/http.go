package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments endpoints with the three signals a dashboard
// needs: request counts by status code, latency histograms, and in-flight
// gauges — all labeled by the endpoint's route pattern, so one family
// covers the whole API.
type HTTPMetrics struct {
	requests *CounterVec   // endpoint, code
	seconds  *HistogramVec // endpoint
	inflight *GaugeVec     // endpoint
}

// NewHTTPMetrics registers the http_* families on reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by endpoint pattern and status code.", "endpoint", "code"),
		seconds: reg.HistogramVec("http_request_seconds",
			"HTTP request latency in seconds, by endpoint pattern.", nil, "endpoint"),
		inflight: reg.GaugeVec("http_inflight_requests",
			"Requests currently being served, by endpoint pattern.", "endpoint"),
	}
}

// Handler wraps next so its requests are counted, timed and tracked under
// the endpoint label. Wrap each route at registration — the label is the
// route pattern, known statically there, which keeps the cardinality equal
// to the API surface no matter what clients request.
func (m *HTTPMetrics) Handler(endpoint string, next http.Handler) http.Handler {
	inflight := m.inflight.With(endpoint)
	seconds := m.seconds.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		inflight.Add(1)
		defer inflight.Add(-1)
		rec := &responseRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		seconds.Observe(time.Since(started).Seconds())
		m.requests.With(endpoint, strconv.Itoa(rec.Status())).Inc()
	})
}

// requestLog is one access-log line: everything needed to reconstruct who
// asked for what, what they got, and how long it took — as JSON so log
// pipelines need no bespoke parser.
type requestLog struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Pattern  string  `json:"pattern,omitempty"`
	Status   int     `json:"status"`
	Bytes    int64   `json:"bytes"`
	DurMS    float64 `json:"dur_ms"`
	Client   string  `json:"client"`
	ClientID string  `json:"client_id,omitempty"`
}

// AccessLog wraps a handler (typically the whole mux) so every request —
// matched or 404 — emits one structured JSON line through logf. Pattern is
// read after serving: ServeMux fills Request.Pattern on match, so the
// outermost middleware still sees the route that handled the request.
func AccessLog(next http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		rec := &responseRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		line := requestLog{
			Time:     started.UTC().Format(time.RFC3339Nano),
			Method:   r.Method,
			Path:     r.URL.Path,
			Pattern:  r.Pattern,
			Status:   rec.Status(),
			Bytes:    rec.bytes,
			DurMS:    float64(time.Since(started).Microseconds()) / 1e3,
			Client:   r.RemoteAddr,
			ClientID: r.Header.Get("X-Client-ID"),
		}
		raw, err := json.Marshal(line)
		if err != nil {
			return // a flat struct of scalars cannot fail to marshal
		}
		logf("%s", raw)
	})
}

// responseRecorder captures the status code and body size while forwarding
// everything — including Flush, which the NDJSON streaming endpoints
// depend on — to the underlying ResponseWriter.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// Status returns the response code, defaulting to 200 when the handler
// never called WriteHeader explicitly.
func (r *responseRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// WriteHeader implements http.ResponseWriter.
func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write implements http.ResponseWriter.
func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher when the underlying writer does.
func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
