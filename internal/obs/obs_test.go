package obs

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// render returns the registry's exposition text.
func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestCounterGaugeRender checks the basic sample lines, HELP/TYPE headers,
// and deterministic family ordering.
func TestCounterGaugeRender(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zz_total", "the last family")
	g := reg.Gauge("aa_depth", "the first family")
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)

	out := render(t, reg)
	for _, want := range []string{
		"# HELP aa_depth the first family\n# TYPE aa_depth gauge\naa_depth 5\n",
		"# HELP zz_total the last family\n# TYPE zz_total counter\nzz_total 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, "aa_depth") > strings.Index(out, "zz_total") {
		t.Error("families not sorted by name")
	}
	// A counter cannot run backwards.
	c.Add(-10)
	if c.Value() != 4 {
		t.Errorf("counter accepted a negative delta: %v", c.Value())
	}
}

// TestLabeledSeries checks label rendering, escaping, and sorted series.
func TestLabeledSeries(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("req_total", "requests", "endpoint", "code")
	v.With("POST /v1/jobs", "200").Add(2)
	v.With("GET /healthz", "200").Inc()
	v.With(`quo"te`, "500").Inc()

	out := render(t, reg)
	for _, want := range []string{
		`req_total{endpoint="GET /healthz",code="200"} 1`,
		`req_total{endpoint="POST /v1/jobs",code="200"} 2`,
		`req_total{endpoint="quo\"te",code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, "GET /healthz") > strings.Index(out, "POST /v1/jobs") {
		t.Error("series not sorted by label values")
	}
}

// TestHistogramRender checks cumulative buckets, +Inf, _sum and _count.
func TestHistogramRender(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, reg)
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestFuncMetricsAndCollect checks func-backed families and the OnCollect
// hook ordering (hooks run before values render).
func TestFuncMetricsAndCollect(t *testing.T) {
	reg := NewRegistry()
	depth := 0
	reg.GaugeFunc("queue_depth", "from fn", func() float64 { return float64(depth) })
	hits := reg.Counter("hits_total", "mirrored")
	reg.OnCollect(func() { hits.Add(10) })
	depth = 42

	out := render(t, reg)
	if !strings.Contains(out, "queue_depth 42\n") {
		t.Errorf("func gauge stale:\n%s", out)
	}
	if !strings.Contains(out, "hits_total 10\n") {
		t.Errorf("OnCollect hook did not run before render:\n%s", out)
	}
}

// TestRegistrationPanics checks the programmer-error guards.
func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("ok_total", "")
	mustPanic("duplicate", func() { reg.Counter("ok_total", "") })
	mustPanic("bad name", func() { reg.Counter("1bad", "") })
	mustPanic("bad label", func() { reg.CounterVec("v_total", "", "bad-label") })
	mustPanic("arity", func() { reg.CounterVec("w_total", "", "a").With("x", "y") })
	mustPanic("buckets", func() { reg.Histogram("h_seconds", "", []float64{1, 1}) })
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines (run under -race) and checks the totals.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 {
		t.Errorf("counter %v gauge %v, want 8000 each", c.Value(), g.Value())
	}
	if !strings.Contains(render(t, reg), `h_seconds_bucket{le="+Inf"} 8000`) {
		t.Error("histogram lost observations")
	}
}

// sampleLine matches one exposition sample (name, optional labels, value).
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+\-]+|\+Inf|NaN)$`)

// TestExpositionWellFormed validates every rendered line against the text
// format grammar — the contract a real Prometheus scraper relies on.
func TestExpositionWellFormed(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "with\nnewline").Inc()
	reg.GaugeVec("b", "", "x").With("v").Set(1.5)
	reg.HistogramVec("c_seconds", "", nil, "endpoint").With("GET /z").Observe(0.01)
	reg.GaugeFunc("d", "", func() float64 { return 3 })

	sc := bufio.NewScanner(strings.NewReader(render(t, reg)))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			if strings.Contains(line[7:], "\n") {
				t.Errorf("unescaped newline in %q", line)
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestHTTPMetricsMiddleware drives an instrumented mux and checks the
// per-endpoint counters, histogram counts and in-flight gauge round-trip.
func TestHTTPMetricsMiddleware(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	mux := http.NewServeMux()
	mux.Handle("GET /ok", m.Handler("GET /ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "hi")
	})))
	mux.Handle("GET /fail", m.Handler("GET /fail", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	})))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/fail")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := render(t, reg)
	for _, want := range []string{
		`http_requests_total{endpoint="GET /ok",code="200"} 3`,
		`http_requests_total{endpoint="GET /fail",code="418"} 1`,
		`http_request_seconds_count{endpoint="GET /ok"} 3`,
		`http_inflight_requests{endpoint="GET /ok"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestAccessLog checks one JSON line per request with the route pattern
// visible to the outermost middleware, and that Flush still reaches the
// underlying writer through the recorder.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	mux := http.NewServeMux()
	flushed := false
	mux.HandleFunc("GET /stream", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "data")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
			flushed = true
		}
		w.WriteHeader(http.StatusOK) // late, must not clobber recorded status
	})
	ts := httptest.NewServer(AccessLog(mux, logf))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stream", nil)
	req.Header.Set("X-Client-ID", "tester")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := http.Get(ts.URL + "/missing"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2: %q", len(lines), lines)
	}
	stream, missing := lines[0], lines[1]
	if !strings.Contains(stream, `"path":"/stream"`) {
		stream, missing = missing, stream
	}
	for _, want := range []string{`"path":"/stream"`, `"pattern":"GET /stream"`, `"status":200`, `"bytes":4`, `"client_id":"tester"`} {
		if !strings.Contains(stream, want) {
			t.Errorf("stream log line missing %s: %s", want, stream)
		}
	}
	if !strings.Contains(missing, `"status":404`) {
		t.Errorf("unmatched request not logged as 404: %s", missing)
	}
	if !flushed {
		t.Error("recorder did not expose Flush")
	}
}
