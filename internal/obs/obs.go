// Package obs is the service's observability layer: a dependency-free
// metrics registry — counters, gauges and histograms, optionally labeled —
// rendered in the Prometheus text exposition format, plus net/http
// middleware that instruments every endpoint (request counts by status,
// latency histograms, in-flight gauges) and emits one structured JSON log
// line per request. cmd/dcaserve mounts a Registry at GET /metrics and
// wires it to the counters the run layer already keeps (store hit rates,
// queue depth and lease churn); cmd/dcaload reads the same endpoint to
// correlate client-side load numbers with server-side truth.
//
// The registry is deliberately small: metric values are float64, label
// sets are fixed at registration, and rendering is deterministic (families
// and series sorted by name), so scrapes diff cleanly in tests. It is not
// a Prometheus client library — there is no push, no exemplars, no
// sharding — but the exposition output is valid scrape input for one.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds, spanning
// sub-millisecond cache hits to multi-second saturated simulations.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// metricKind is the TYPE line a family renders.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry holds metric families and renders them. All methods are safe
// for concurrent use; registration methods panic on invalid or duplicate
// names (programmer errors, caught by any test that builds the registry).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	collect  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and its live series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64      // histograms only
	fn      func() float64 // func-backed families (no labels, no series)

	mu     sync.Mutex
	series map[string]*series // joined label values -> series
}

// series is one (metric, label values) time series.
type series struct {
	values []string
	bits   atomic.Uint64 // float64 bits: counters and gauges

	// Histogram state, guarded by hmu: Observe is a few adds, so a plain
	// mutex is cheap next to the HTTP request it measures.
	hmu    sync.Mutex
	counts []uint64
	sum    float64
	count  uint64
}

// register validates and installs a family.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, fn: fn,
		series: make(map[string]*series)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.families[name] = f
	return f
}

// OnCollect registers a callback invoked at the start of every render —
// the seam for mirroring externally-kept counters (a queue's stats
// snapshot) into registered metrics exactly once per scrape instead of
// once per metric.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

// Counter registers an unlabeled monotonically-increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, nil)
	return &Counter{s: f.get(nil)}
}

// CounterVec registers a counter family with the given label schema.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil, nil)}
}

// CounterFunc registers a counter whose value is read from fn at render
// time (for counters another subsystem already maintains).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil, fn)
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// GaugeVec registers a gauge family with the given label schema.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil, nil)}
}

// GaugeFunc registers a gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// Histogram registers an unlabeled histogram over buckets (ascending upper
// bounds; +Inf is implicit). Nil buckets means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, histBuckets(buckets), nil)
	return &Histogram{s: f.get(nil), buckets: f.buckets}
}

// HistogramVec registers a histogram family with the given label schema.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, histBuckets(buckets), nil)}
}

func histBuckets(b []float64) []float64 {
	if b == nil {
		b = DefBuckets
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly ascending at %v", b[i]))
		}
	}
	return b
}

// get returns (creating on first use) the series for the label values.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{values: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			s.counts = make([]uint64, len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically-increasing metric.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0; negative deltas are silently dropped so a
// buggy caller cannot make a counter run backwards).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// Value returns the current value (for tests and health handlers).
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{s: v.f.get(values)} }

// Gauge is a metric that can go up and down.
type Gauge struct{ s *series }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) { addFloat(&g.s.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{s: v.f.get(values)} }

// Histogram observes a distribution into fixed buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	s := h.s
	s.hmu.Lock()
	for i, ub := range h.buckets {
		if v <= ub {
			s.counts[i]++
			break
		}
	}
	s.sum += v
	s.count++
	s.hmu.Unlock()
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values, creating it on first
// use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{s: v.f.get(values), buckets: v.f.buckets}
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// values, histograms as cumulative _bucket/_sum/_count. OnCollect hooks
// run first. The one write error worth returning is the caller's
// ResponseWriter failing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.collect...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		all := make([]*series, len(keys))
		for i, k := range keys {
			all[i] = f.series[k]
		}
		f.mu.Unlock()
		for _, s := range all {
			f.renderSeries(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderSeries writes one series' sample lines.
func (f *family) renderSeries(b *strings.Builder, s *series) {
	switch f.kind {
	case kindHistogram:
		s.hmu.Lock()
		counts := append([]uint64(nil), s.counts...)
		sum, count := s.sum, s.count
		s.hmu.Unlock()
		var cum uint64
		for i, ub := range f.buckets {
			cum += counts[i]
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.values, "le", formatFloat(ub))
			fmt.Fprintf(b, " %d\n", cum)
		}
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, s.values, "le", "+Inf")
		fmt.Fprintf(b, " %d\n", count)
		b.WriteString(f.name)
		b.WriteString("_sum")
		writeLabels(b, f.labels, s.values, "", "")
		fmt.Fprintf(b, " %s\n", formatFloat(sum))
		b.WriteString(f.name)
		b.WriteString("_count")
		writeLabels(b, f.labels, s.values, "", "")
		fmt.Fprintf(b, " %d\n", count)
	default:
		b.WriteString(f.name)
		writeLabels(b, f.labels, s.values, "", "")
		fmt.Fprintf(b, " %s\n", formatFloat(math.Float64frombits(s.bits.Load())))
	}
}

// writeLabels renders {k="v",...}, appending one extra pair (the histogram
// "le" bound) when extraK is non-empty. No braces are written for an empty
// label set.
func writeLabels(b *strings.Builder, names, values []string, extraK, extraV string) {
	if len(names) == 0 && extraK == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a sample value: integers without an exponent, +Inf
// in Prometheus spelling.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
