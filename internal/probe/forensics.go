package probe

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
)

// DefaultMaxRecords bounds the detailed steering records a Forensics
// probe retains; the compact per-decision choice stream is unbounded
// (one byte per program instruction).
const DefaultMaxRecords = 1 << 16

// SteerRecord is one retained steering decision (a copy of the seam's
// reused SteerDecision, minus the full instruction encoding).
type SteerRecord struct {
	Cycle   uint64
	ProgSeq uint64
	PC      int
	// Policy, Final and Reason say what the policy answered, where the
	// instruction actually went, and which mechanism decided.
	Policy core.ClusterID
	Final  core.ClusterID
	Reason core.SteerReason
	// Ready and IQLen are the per-cluster decision-time state (first
	// NumClusters entries meaningful).
	NumClusters int
	Ready       [config.MaxClusters]int
	IQLen       [config.MaxClusters]int
}

// Forensics records steering decisions: a bounded window of detailed
// records, per-reason totals, and the compact per-decision choice stream
// that the scheme×scheme disagreement matrix compares. Decisions arrive
// in program (decode) order, so two runs of the same oracle trace under
// different schemes produce index-aligned choice streams.
type Forensics struct {
	// MaxRecords caps Records (0 = DefaultMaxRecords, negative =
	// unlimited).
	MaxRecords int
	// Records holds the first MaxRecords decisions in full detail.
	Records []SteerRecord

	reasons [core.NumSteerReasons]uint64
	choices []uint8
}

// Fetch implements core.Probe (unused).
func (f *Forensics) Fetch(uint64, *core.FetchInfo) {}

// Event implements core.Probe (unused).
func (f *Forensics) Event(uint64, core.Event, *core.DynInst) {}

// Cycle implements core.Probe (unused).
func (f *Forensics) Cycle(*core.CycleSample) {}

// Steer implements core.Probe.
func (f *Forensics) Steer(dec *core.SteerDecision) {
	f.reasons[dec.Reason]++
	f.choices = append(f.choices, uint8(dec.Final))
	limit := f.MaxRecords
	if limit == 0 {
		limit = DefaultMaxRecords
	}
	if limit < 0 || len(f.Records) < limit {
		r := SteerRecord{
			Cycle:       dec.Cycle,
			ProgSeq:     dec.ProgSeq,
			PC:          dec.PC,
			Policy:      dec.Policy,
			Final:       dec.Final,
			Reason:      dec.Reason,
			NumClusters: dec.NumClusters,
		}
		for c := 0; c < dec.NumClusters; c++ {
			r.Ready[c] = dec.Ready[c]
			r.IQLen[c] = dec.IQLen[c]
		}
		f.Records = append(f.Records, r)
	}
}

// Decisions returns the number of steering decisions observed.
func (f *Forensics) Decisions() uint64 { return uint64(len(f.choices)) }

// Reason returns how many decisions the given mechanism settled.
func (f *Forensics) Reason(r core.SteerReason) uint64 { return f.reasons[r] }

// Choices returns the per-decision chosen clusters in decode order. The
// slice is the probe's own storage; callers must not mutate it.
func (f *Forensics) Choices() []uint8 { return f.choices }

// ReasonTable renders the per-reason totals as an aligned text table,
// zero rows skipped.
func (f *Forensics) ReasonTable() string {
	total := f.Decisions()
	var sb strings.Builder
	for r := core.SteerReason(0); r < core.NumSteerReasons; r++ {
		n := f.reasons[r]
		if n == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-12s %7.3f%%  %12d\n", r, pct, n)
	}
	return sb.String()
}

// Disagreement is the scheme×scheme steering-disagreement matrix: entry
// [i][j] compares the choice streams of schemes i and j, decision by
// decision, over one shared oracle trace. It is a wire type.
type Disagreement struct {
	// Schemes indexes the matrix.
	Schemes []string `json:"schemes"`
	// Compared[i][j] is the number of decisions compared (the shorter of
	// the two streams: runs stop on a commit budget, so the in-flight
	// tails can differ in length).
	Compared [][]uint64 `json:"compared"`
	// Differ[i][j] counts compared decisions that chose different
	// clusters; Frac[i][j] is Differ/Compared (0 when nothing compared).
	Differ [][]uint64  `json:"differ"`
	Frac   [][]float64 `json:"frac"`
}

// ComputeDisagreement builds the matrix from per-scheme choice streams
// (choices[i] belongs to schemes[i]; the two slices must be the same
// length, replays of one shared oracle trace so indexes align).
func ComputeDisagreement(schemes []string, choices [][]uint8) (*Disagreement, error) {
	if len(schemes) != len(choices) {
		return nil, fmt.Errorf("probe: %d schemes but %d choice streams", len(schemes), len(choices))
	}
	n := len(schemes)
	d := &Disagreement{
		Schemes:  append([]string(nil), schemes...),
		Compared: make([][]uint64, n),
		Differ:   make([][]uint64, n),
		Frac:     make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		d.Compared[i] = make([]uint64, n)
		d.Differ[i] = make([]uint64, n)
		d.Frac[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m := len(choices[i])
			if len(choices[j]) < m {
				m = len(choices[j])
			}
			var diff uint64
			for k := 0; k < m; k++ {
				if choices[i][k] != choices[j][k] {
					diff++
				}
			}
			d.Compared[i][j] = uint64(m)
			d.Differ[i][j] = diff
			if m > 0 {
				d.Frac[i][j] = float64(diff) / float64(m)
			}
		}
	}
	return d, nil
}

// Table renders the disagreement fractions as an aligned matrix (percent
// of decisions where the row and column schemes chose different
// clusters).
func (d *Disagreement) Table() string {
	var sb strings.Builder
	w := 0
	for _, s := range d.Schemes {
		if len(s) > w {
			w = len(s)
		}
	}
	fmt.Fprintf(&sb, "  %-*s", w, "")
	for _, s := range d.Schemes {
		fmt.Fprintf(&sb, " %*s", w, s)
	}
	sb.WriteByte('\n')
	for i, s := range d.Schemes {
		fmt.Fprintf(&sb, "  %-*s", w, s)
		for j := range d.Schemes {
			fmt.Fprintf(&sb, " %*.1f", w, 100*d.Frac[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
