package probe_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/rdg"
	"repro/internal/steer"
)

// runProbed simulates one rdg program on the two-cluster machine with p
// attached and returns the measurement record.
func runProbed(t *testing.T, seed int64, p core.Probe) uint64 {
	t.Helper()
	prg := rdg.RandomProgram(seed)
	cfg := config.Clustered()
	params := steer.DefaultParams()
	params.Clusters = cfg.NumClusters()
	st, err := steer.NewWithParams("general", prg, params)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(cfg, prg, st)
	if err != nil {
		t.Fatal(err)
	}
	m.SetProbe(p)
	r, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return r.Cycles
}

// TestKonataWellFormed checks the exported log against the Kanata format
// contract: the version header leads, the clock only moves forward, every
// id is introduced (I) before it is staged (S) or labelled (L), and every
// retired id (R) was introduced. Every architecturally committed
// instruction must appear: the sum of R lines is the commit count plus the
// inter-cluster copies the run inserted.
func TestKonataWellFormed(t *testing.T) {
	var buf bytes.Buffer
	k := probe.NewKonata(&buf)
	runProbed(t, 7, k)
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("log has only %d lines", len(lines))
	}
	if lines[0] != "Kanata\t0004" {
		t.Fatalf("missing version header, got %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "C=\t") {
		t.Fatalf("second line should pin the start cycle, got %q", lines[1])
	}

	introduced := map[string]bool{}
	retired := 0
	var fetched, staged int
	for i, ln := range lines[2:] {
		f := strings.Split(ln, "\t")
		switch f[0] {
		case "C":
			d, err := strconv.Atoi(f[1])
			if err != nil || d <= 0 {
				t.Fatalf("line %d: clock must move forward: %q", i+3, ln)
			}
		case "I":
			introduced[f[1]] = true
			fetched++
		case "L", "S":
			if !introduced[f[1]] {
				t.Fatalf("line %d: id %s staged before introduction: %q", i+3, f[1], ln)
			}
			if f[0] == "S" {
				staged++
			}
		case "R":
			if !introduced[f[1]] {
				t.Fatalf("line %d: id %s retired before introduction: %q", i+3, f[1], ln)
			}
			retired++
		default:
			t.Fatalf("line %d: unknown record type %q", i+3, ln)
		}
	}
	if fetched == 0 || staged == 0 || retired == 0 {
		t.Fatalf("log is degenerate: %d I, %d S, %d R", fetched, staged, retired)
	}
	if retired > fetched {
		t.Fatalf("%d retirements but only %d introductions", retired, fetched)
	}
}

// TestKonataWindow bounds the export: with To set below the run length,
// nothing fetched after the bound may appear.
func TestKonataWindow(t *testing.T) {
	var full, windowed bytes.Buffer
	k := probe.NewKonata(&full)
	cycles := runProbed(t, 7, k)
	if err := k.Close(); err != nil {
		t.Fatal(err)
	}
	kw := probe.NewKonata(&windowed)
	kw.From = cycles / 4
	kw.To = cycles / 2
	runProbed(t, 7, kw)
	if err := kw.Close(); err != nil {
		t.Fatal(err)
	}
	if windowed.Len() == 0 {
		t.Fatal("windowed export is empty")
	}
	if windowed.Len() >= full.Len() {
		t.Fatalf("windowed export (%d bytes) not smaller than the full log (%d bytes)",
			windowed.Len(), full.Len())
	}
}

// TestTimelineBudgetAndCoverage runs the downsampler over a real run and
// checks its two contracts: the series never exceeds the budget, and the
// buckets tile the run — consecutive, non-overlapping, and summing to the
// number of sampled cycles.
func TestTimelineBudgetAndCoverage(t *testing.T) {
	tl := &probe.Timeline{MaxBuckets: 16}
	cycles := runProbed(t, 9, tl)
	series := tl.Series()
	if len(series) == 0 {
		t.Fatal("timeline is empty")
	}
	if len(series) > 16 {
		t.Fatalf("timeline holds %d buckets, budget is 16", len(series))
	}
	var covered uint64
	for i, b := range series {
		if b.Cycles == 0 {
			t.Fatalf("bucket %d is empty", i)
		}
		if i > 0 {
			prev := series[i-1]
			if b.Start != prev.Start+prev.Cycles {
				t.Fatalf("bucket %d starts at %d, previous ends at %d", i, b.Start, prev.Start+prev.Cycles)
			}
		}
		covered += b.Cycles
	}
	if covered != cycles {
		t.Fatalf("buckets cover %d cycles, run sampled %d", covered, cycles)
	}
}

// TestForensicsRecords checks the steering log: every decision is counted
// under exactly one reason, the choice stream is decision-aligned, and the
// detailed records respect their cap.
func TestForensicsRecords(t *testing.T) {
	f := &probe.Forensics{MaxRecords: 8}
	runProbed(t, 7, f)
	if f.Decisions() == 0 {
		t.Fatal("no steering decisions observed")
	}
	if got := uint64(len(f.Choices())); got != f.Decisions() {
		t.Fatalf("choice stream has %d entries, %d decisions", got, f.Decisions())
	}
	var byReason uint64
	for r := core.SteerReason(0); r < core.NumSteerReasons; r++ {
		byReason += f.Reason(r)
	}
	if byReason != f.Decisions() {
		t.Fatalf("reasons sum to %d, decisions %d (taxonomy not exclusive)", byReason, f.Decisions())
	}
	if len(f.Records) > 8 {
		t.Fatalf("retained %d detailed records, cap was 8", len(f.Records))
	}
	if f.ReasonTable() == "" {
		t.Fatal("reason table is empty")
	}
}

// TestComputeDisagreement checks the matrix algebra on hand-built streams:
// zero diagonal, symmetry, truncation to the shorter stream, and the
// length-mismatch error.
func TestComputeDisagreement(t *testing.T) {
	d, err := probe.ComputeDisagreement(
		[]string{"a", "b", "c"},
		[][]uint8{
			{0, 1, 0, 1},
			{0, 1, 1, 1},
			{1, 0}, // shorter stream: commit budgets cut tails
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Schemes {
		if d.Differ[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %d, want 0", i, i, d.Differ[i][i])
		}
		for j := range d.Schemes {
			if d.Differ[i][j] != d.Differ[j][i] || d.Compared[i][j] != d.Compared[j][i] {
				t.Errorf("matrix not symmetric at [%d][%d]", i, j)
			}
		}
	}
	if d.Compared[0][1] != 4 || d.Differ[0][1] != 1 {
		t.Errorf("a×b: compared %d differ %d, want 4 and 1", d.Compared[0][1], d.Differ[0][1])
	}
	if d.Compared[0][2] != 2 || d.Differ[0][2] != 2 {
		t.Errorf("a×c: compared %d differ %d, want 2 and 2", d.Compared[0][2], d.Differ[0][2])
	}
	if d.Frac[0][2] != 1.0 {
		t.Errorf("a×c frac = %v, want 1.0", d.Frac[0][2])
	}
	if d.Table() == "" {
		t.Error("table renderer returned nothing")
	}

	if _, err := probe.ComputeDisagreement([]string{"a"}, nil); err == nil {
		t.Error("length mismatch not rejected")
	}
}

// countingProbe counts hook invocations for the fan-out test.
type countingProbe struct{ fetch, event, steer, cycle int }

func (c *countingProbe) Fetch(uint64, *core.FetchInfo)           { c.fetch++ }
func (c *countingProbe) Event(uint64, core.Event, *core.DynInst) { c.event++ }
func (c *countingProbe) Steer(*core.SteerDecision)               { c.steer++ }
func (c *countingProbe) Cycle(*core.CycleSample)                 { c.cycle++ }

// TestMultiFanOut checks that Multi forwards every hook to every live
// probe, skips nils, and collapses to nil when nothing remains.
func TestMultiFanOut(t *testing.T) {
	if probe.Multi() != nil || probe.Multi(nil, nil) != nil {
		t.Fatal("empty Multi should be nil")
	}
	a, b := &countingProbe{}, &countingProbe{}
	m := probe.Multi(a, nil, b)
	m.Fetch(1, &core.FetchInfo{})
	m.Event(1, core.EvCommit, &core.DynInst{})
	m.Steer(&core.SteerDecision{})
	m.Cycle(&core.CycleSample{})
	for _, c := range []*countingProbe{a, b} {
		if c.fetch != 1 || c.event != 1 || c.steer != 1 || c.cycle != 1 {
			t.Fatalf("fan-out missed hooks: %+v", *c)
		}
	}
	if probe.Multi(a) != core.Probe(a) {
		t.Fatal("single-probe Multi should return the probe itself")
	}
}

// TestReportShape checks the wire type: one bucket per taxonomy class in
// order, Sum equals TotalCycles, lookups by name, and the table renderer.
func TestReportShape(t *testing.T) {
	at := probe.NewAttribution()
	cycles := runProbed(t, 1, at)
	rep := at.Report()
	if len(rep.Buckets) != int(core.NumStallClasses) {
		t.Fatalf("report has %d buckets, taxonomy has %d classes", len(rep.Buckets), core.NumStallClasses)
	}
	for c := core.StallClass(0); c < core.NumStallClasses; c++ {
		if rep.Buckets[c].Class != c.String() {
			t.Fatalf("bucket %d is %q, want %q", c, rep.Buckets[c].Class, c.String())
		}
	}
	if rep.Sum() != rep.TotalCycles || rep.TotalCycles != cycles {
		t.Fatalf("sum %d, total %d, run cycles %d — all must agree", rep.Sum(), rep.TotalCycles, cycles)
	}
	if got := rep.Cycles(core.ClassCommitting.String()); got != at.Cycles(core.ClassCommitting) {
		t.Fatalf("lookup by name returned %d, probe holds %d", got, at.Cycles(core.ClassCommitting))
	}
	if rep.Cycles("no-such-class") != 0 {
		t.Fatal("unknown class should read as 0")
	}
	if !strings.Contains(rep.Table(), core.ClassCommitting.String()) {
		t.Fatal("table omits the committing class")
	}
}
