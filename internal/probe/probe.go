// Package probe implements the built-in probes for the timing core's
// introspection seam (core.Probe): cycle attribution against a stall
// taxonomy, steering forensics with a scheme×scheme disagreement matrix,
// per-cluster timelines under a fixed bucket budget, and Konata
// pipeline-trace export.
//
// Every probe here is passive: it copies what it keeps out of the seam's
// reused buffers and never feeds anything back into the simulation. The
// differential harness and the golden grid run bit-identical with these
// probes attached and detached; probe output is observability, never part
// of a result digest.
package probe

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Multi fans the probe stream out to several probes in order; nil entries
// are skipped. It returns nil when no live probe remains, so the result
// can be handed to Machine.SetProbe unconditionally.
func Multi(ps ...core.Probe) core.Probe {
	live := make([]core.Probe, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []core.Probe

func (m multi) Fetch(cycle uint64, f *core.FetchInfo) {
	for _, p := range m {
		p.Fetch(cycle, f)
	}
}

func (m multi) Event(cycle uint64, ev core.Event, d *core.DynInst) {
	for _, p := range m {
		p.Event(cycle, ev, d)
	}
}

func (m multi) Steer(dec *core.SteerDecision) {
	for _, p := range m {
		p.Steer(dec)
	}
}

func (m multi) Cycle(s *core.CycleSample) {
	for _, p := range m {
		p.Cycle(s)
	}
}

// Attribution accumulates the per-cycle stall taxonomy over the measured
// phase of a run. The taxonomy is total and exclusive, so the class
// totals sum exactly to stats.Run.Cycles; the probe also reconstructs the
// workload-balance histogram from the same samples, which must equal
// stats.Run.Balance bit-for-bit (both are enforced by
// TestGoldenProbeInvariants).
type Attribution struct {
	counts  [core.NumStallClasses]uint64
	total   uint64
	balance stats.BalanceHist
}

// NewAttribution returns an empty attribution probe.
func NewAttribution() *Attribution { return &Attribution{} }

// Fetch implements core.Probe (unused).
func (a *Attribution) Fetch(uint64, *core.FetchInfo) {}

// Event implements core.Probe (unused).
func (a *Attribution) Event(uint64, core.Event, *core.DynInst) {}

// Steer implements core.Probe (unused).
func (a *Attribution) Steer(*core.SteerDecision) {}

// Cycle implements core.Probe: warm-up samples are dropped so the totals
// reconcile with the measurement record.
func (a *Attribution) Cycle(s *core.CycleSample) {
	if !s.Measuring {
		return
	}
	a.counts[s.Class] += s.N
	a.total += s.N
	a.balance.RecordN(core.BalanceDiff(s.Ready[:s.NumClusters]), s.N)
}

// Total returns the measured cycles attributed so far.
func (a *Attribution) Total() uint64 { return a.total }

// Cycles returns the cycles attributed to one class so far.
func (a *Attribution) Cycles(c core.StallClass) uint64 { return a.counts[c] }

// Balance returns the balance histogram rebuilt from the cycle samples;
// after a measured run it must equal the run's stats.Run.Balance
// bit-for-bit.
func (a *Attribution) Balance() *stats.BalanceHist { return &a.balance }

// Report snapshots the attribution as a wire-encodable record, classes in
// taxonomy order (zero-count classes included, so the shape is stable).
func (a *Attribution) Report() *Report {
	r := &Report{TotalCycles: a.total}
	r.Buckets = make([]Bucket, 0, int(core.NumStallClasses))
	for c := core.StallClass(0); c < core.NumStallClasses; c++ {
		b := Bucket{Class: c.String(), Cycles: a.counts[c]}
		if a.total > 0 {
			b.Percent = 100 * float64(a.counts[c]) / float64(a.total)
		}
		r.Buckets = append(r.Buckets, b)
	}
	return r
}

// Report is the cycle-attribution summary of one run: where every
// measured cycle went, by stall class. It is a wire type (dcabench -json
// export, dcaserve probed job responses).
type Report struct {
	// TotalCycles is the number of measured cycles attributed; it equals
	// stats.Run.Cycles for the run the probe observed.
	TotalCycles uint64 `json:"total_cycles"`
	// Buckets holds one entry per taxonomy class, in taxonomy order.
	Buckets []Bucket `json:"buckets"`
}

// Bucket is one stall-taxonomy class total.
type Bucket struct {
	Class   string  `json:"class"`
	Cycles  uint64  `json:"cycles"`
	Percent float64 `json:"percent"`
}

// Sum returns the bucket total, which must equal TotalCycles (the
// taxonomy is total and exclusive).
func (r *Report) Sum() uint64 {
	var s uint64
	for _, b := range r.Buckets {
		s += b.Cycles
	}
	return s
}

// Cycles returns the total for a class name (0 for unknown classes).
func (r *Report) Cycles(class string) uint64 {
	for _, b := range r.Buckets {
		if b.Class == class {
			return b.Cycles
		}
	}
	return 0
}

// Table renders the report as an aligned text table, classes in taxonomy
// order, zero-count classes skipped.
func (r *Report) Table() string {
	var sb strings.Builder
	for _, b := range r.Buckets {
		if b.Cycles == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-20s %7.3f%%  %12d\n", b.Class, b.Percent, b.Cycles)
	}
	return sb.String()
}
