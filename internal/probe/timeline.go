package probe

import (
	"repro/internal/config"
	"repro/internal/core"
)

// DefaultTimelineBuckets is the default bucket budget of a Timeline.
const DefaultTimelineBuckets = 512

// TimeBucket aggregates a span of consecutive cycles. The per-cluster
// entries are cycle-weighted sums over the span; divide by Cycles for the
// span average. Copies counts inter-cluster copies that left each source
// cluster during the span (a sum, not an average).
type TimeBucket struct {
	// Start is the first cycle of the span; Cycles its length.
	Start  uint64 `json:"start"`
	Cycles uint64 `json:"cycles"`
	// NumClusters sizes the arrays (first entries meaningful).
	NumClusters int                        `json:"num_clusters"`
	Ready       [config.MaxClusters]uint64 `json:"ready"`
	IQLen       [config.MaxClusters]uint64 `json:"iqlen"`
	Copies      [config.MaxClusters]uint64 `json:"copies"`
}

// Timeline downsamples the per-cycle sample stream into a bounded number
// of buckets: it accumulates fixed-width spans, and whenever the budget
// fills it halves the resolution by collapsing adjacent pairs — so an
// arbitrarily long run always fits in at most MaxBuckets buckets of equal
// width (the final partial bucket aside) without ever re-reading the run.
type Timeline struct {
	// MaxBuckets is the bucket budget (0 = DefaultTimelineBuckets;
	// values below 2 clamp to 2). The retained resolution is the smallest
	// power-of-two width that fits the run in the budget.
	MaxBuckets int

	width   uint64
	buckets []TimeBucket
	cur     TimeBucket
	open    bool
}

// Fetch implements core.Probe (unused).
func (t *Timeline) Fetch(uint64, *core.FetchInfo) {}

// Event implements core.Probe (unused).
func (t *Timeline) Event(uint64, core.Event, *core.DynInst) {}

// Steer implements core.Probe (unused).
func (t *Timeline) Steer(*core.SteerDecision) {}

// Cycle implements core.Probe. A fast-forwarded window (N > 1) lands in
// the bucket containing its first cycle — windows can therefore stretch a
// bucket past its nominal width, which the bucket's own Cycles field
// records.
func (t *Timeline) Cycle(s *core.CycleSample) {
	if !t.open {
		t.width = 1
		t.cur = TimeBucket{Start: s.Cycle, NumClusters: s.NumClusters}
		t.open = true
	}
	t.cur.Cycles += s.N
	for c := 0; c < s.NumClusters; c++ {
		t.cur.Ready[c] += uint64(s.Ready[c]) * s.N
		t.cur.IQLen[c] += uint64(s.IQLen[c]) * s.N
		t.cur.Copies[c] += uint64(s.BusUsed[c])
	}
	if t.cur.Cycles >= t.width {
		t.flush(s.Cycle + s.N)
	}
}

// flush appends the open bucket and, when the budget fills, collapses
// adjacent pairs to halve the resolution.
func (t *Timeline) flush(nextStart uint64) {
	t.buckets = append(t.buckets, t.cur)
	t.cur = TimeBucket{Start: nextStart, NumClusters: t.cur.NumClusters}
	budget := t.MaxBuckets
	if budget == 0 {
		budget = DefaultTimelineBuckets
	}
	if budget < 2 {
		budget = 2
	}
	if len(t.buckets) < budget {
		return
	}
	half := len(t.buckets) / 2
	for i := 0; i < half; i++ {
		a, b := t.buckets[2*i], t.buckets[2*i+1]
		a.Cycles += b.Cycles
		for c := 0; c < a.NumClusters; c++ {
			a.Ready[c] += b.Ready[c]
			a.IQLen[c] += b.IQLen[c]
			a.Copies[c] += b.Copies[c]
		}
		t.buckets[i] = a
	}
	if len(t.buckets)%2 == 1 {
		// An odd tail keeps its own (half-width) bucket; the next flushes
		// merge into it naturally via the series order.
		t.buckets[half] = t.buckets[len(t.buckets)-1]
		half++
	}
	t.buckets = t.buckets[:half]
	t.width *= 2
}

// Width returns the current nominal bucket width in cycles.
func (t *Timeline) Width() uint64 { return t.width }

// Series returns the downsampled buckets in cycle order, including the
// open partial bucket. The result is a fresh slice.
func (t *Timeline) Series() []TimeBucket {
	out := append([]TimeBucket(nil), t.buckets...)
	if t.open && t.cur.Cycles > 0 {
		out = append(out, t.cur)
	}
	return out
}
