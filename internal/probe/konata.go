package probe

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
)

// Konata streams a run as a Kanata pipeline-trace log (the format of the
// Konata visualizer, github.com/shioyadan/Konata — also emitted by
// Onikiri and gem5's Kanata trace support), so any simulated cell can be
// inspected stage by stage in a standard viewer.
//
// Lane 0 stages: F (fetch) → Iq (issue-queue wait, from dispatch) → Ex
// (execution) → Mem (a load waiting in the LSQ after address generation)
// → Wb (result produced) → retire. Inter-cluster copies appear as their
// own rows labelled "copy", starting at insertion. Wrong-path
// instructions are never simulated (fetch stalls on a mispredict), so
// the log contains no flushed rows.
type Konata struct {
	// From and To bound the exported cycles (To = 0 means unbounded): an
	// instruction is included iff it was fetched inside the window.
	From, To uint64

	w       *bufio.Writer
	err     error
	started bool
	cur     uint64
	retires uint64
	// memPhase marks load ids whose address-generation completion was
	// already seen, so the second completion maps to Wb; emitted is the
	// set of ids the log contains (events for other ids are dropped, which
	// implements the From/To window).
	memPhase map[uint64]bool
	emitted  map[uint64]bool
}

// NewKonata builds a Konata exporter writing to w; call Close when the
// run finishes to flush it.
func NewKonata(w io.Writer) *Konata {
	return &Konata{
		w:        bufio.NewWriter(w),
		memPhase: make(map[uint64]bool),
		emitted:  make(map[uint64]bool),
	}
}

// Close flushes buffered output and reports the first write error.
func (k *Konata) Close() error {
	if err := k.w.Flush(); k.err == nil {
		k.err = err
	}
	return k.err
}

// advance emits the header on first use and the cycle-delta line when the
// clock moved.
func (k *Konata) advance(cycle uint64) {
	if !k.started {
		k.printf("Kanata\t0004\n")
		k.printf("C=\t%d\n", cycle)
		k.cur = cycle
		k.started = true
		return
	}
	if cycle > k.cur {
		k.printf("C\t%d\n", cycle-k.cur)
		k.cur = cycle
	}
}

func (k *Konata) printf(format string, args ...any) {
	if k.err != nil {
		return
	}
	if _, err := fmt.Fprintf(k.w, format, args...); err != nil {
		k.err = err
	}
}

// inWindow reports whether a cycle falls in the export window.
func (k *Konata) inWindow(cycle uint64) bool {
	return cycle >= k.From && (k.To == 0 || cycle <= k.To)
}

// Fetch implements core.Probe: a new row enters the F stage.
func (k *Konata) Fetch(cycle uint64, f *core.FetchInfo) {
	if !k.inWindow(cycle) {
		return
	}
	k.advance(cycle)
	k.emitted[f.ID] = true
	k.printf("I\t%d\t%d\t0\n", f.ID, f.Seq)
	k.printf("L\t%d\t0\t%d: %v\n", f.ID, f.PC, f.Inst)
	if f.Mispredict {
		k.printf("L\t%d\t1\tmispredicted — fetch stalls until resolution\n", f.ID)
	}
	k.printf("S\t%d\t0\tF\n", f.ID)
}

// Event implements core.Probe: pipeline boundaries become stage
// transitions.
func (k *Konata) Event(cycle uint64, ev core.Event, d *core.DynInst) {
	if d == nil || d.FetchID == 0 {
		return
	}
	id := d.FetchID
	if ev == core.EvCopyInserted {
		// Copies never pass through fetch: open their row here.
		if !k.inWindow(cycle) {
			return
		}
		k.advance(cycle)
		k.emitted[id] = true
		k.printf("I\t%d\t%d\t0\n", id, d.ProgSeq)
		k.printf("L\t%d\t0\tcopy %v %v->%v\n", id, d.DestReg(), d.SrcCluster, d.Cluster)
		k.printf("S\t%d\t0\tIq\n", id)
		return
	}
	if !k.emitted[id] {
		return
	}
	k.advance(cycle)
	switch ev {
	case core.EvDispatch:
		k.printf("L\t%d\t1\tsteered to %v\n", id, d.Cluster)
		k.printf("S\t%d\t0\tIq\n", id)
	case core.EvIssue:
		k.printf("S\t%d\t0\tEx\n", id)
	case core.EvComplete:
		if d.IsLoad() && !k.memPhase[id] {
			// First completion: the address is known; the load waits in
			// the LSQ for disambiguation and a cache port.
			k.memPhase[id] = true
			k.printf("S\t%d\t0\tMem\n", id)
			return
		}
		k.printf("S\t%d\t0\tWb\n", id)
	case core.EvCommit:
		k.printf("R\t%d\t%d\t0\n", id, k.retires)
		k.retires++
		delete(k.memPhase, id)
		delete(k.emitted, id)
	}
}

// Steer implements core.Probe (unused).
func (k *Konata) Steer(*core.SteerDecision) {}

// Cycle implements core.Probe (unused — the clock advances lazily with
// each emitted line).
func (k *Konata) Cycle(*core.CycleSample) {}
