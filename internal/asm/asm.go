// Package asm implements a two-pass text assembler for the repository's
// ISA. It exists so workloads and test programs can be written in a compact
// assembly dialect instead of raw [isa.Inst] literals; the HPCA 2000 paper's
// RDG example (Figure 2) ships as an assembly file in the examples.
//
// Syntax overview:
//
//	; comment (also #)
//	.data
//	arr:    .word 1, 2, 3        ; 64-bit words
//	pi:     .double 3.1415       ; 64-bit IEEE754
//	buf:    .space 64            ; zeroed bytes, 8-byte aligned
//	.text
//	start:
//	        li   r1, arr         ; li accepts symbols or integers
//	loop:   ld   r2, 0(r1)
//	        addi r1, r1, 8
//	        bne  r2, r0, loop
//	        halt
//
// Branch/jump operands are label names; loads and stores use off(base)
// addressing. Register names are r0–r31 and f0–f31.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble parses source and produces a program named name.
func Assemble(name, source string) (*prog.Program, error) {
	a := &assembler{
		b:      prog.NewBuilder(name),
		labels: map[string]int{},
	}
	if err := a.run(source); err != nil {
		return nil, err
	}
	return a.finish()
}

type pendingInst struct {
	line  int
	inst  isa.Inst
	label string // non-empty when Imm must be patched to a text label
}

type assembler struct {
	b       *prog.Builder
	section string // "text" or "data"
	labels  map[string]int
	insts   []pendingInst
	// pendingDataLabel holds a label seen in .data awaiting its directive.
	pendingDataLabel string
}

func (a *assembler) run(source string) error {
	a.section = "text"
	for i, raw := range strings.Split(source, "\n") {
		line := i + 1
		if err := a.line(line, raw); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) line(line int, raw string) error {
	// Strip comments.
	if i := strings.IndexAny(raw, ";#"); i >= 0 {
		raw = raw[:i]
	}
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil
	}
	// Leading labels ("name:").
	for {
		i := strings.Index(raw, ":")
		if i < 0 || strings.ContainsAny(raw[:i], " \t.,()") {
			break
		}
		label := raw[:i]
		if a.section == "text" {
			if _, dup := a.labels[label]; dup {
				return a.errf(line, "duplicate label %q", label)
			}
			a.labels[label] = len(a.insts)
		} else {
			a.pendingDataLabel = label
		}
		raw = strings.TrimSpace(raw[i+1:])
		if raw == "" {
			return nil
		}
	}
	if strings.HasPrefix(raw, ".") {
		return a.directive(line, raw)
	}
	if a.section != "text" {
		return a.errf(line, "instruction outside .text section: %q", raw)
	}
	return a.instruction(line, raw)
}

func (a *assembler) directive(line int, raw string) error {
	fields := strings.Fields(raw)
	dir := fields[0]
	rest := strings.TrimSpace(strings.TrimPrefix(raw, dir))
	switch dir {
	case ".text":
		a.section = "text"
	case ".data":
		a.section = "data"
	case ".word":
		vals, err := splitInts(rest)
		if err != nil {
			return a.errf(line, ".word: %v", err)
		}
		a.b.Word64(a.takeDataLabel(), vals...)
	case ".double":
		parts := splitList(rest)
		vals := make([]float64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return a.errf(line, ".double: %v", err)
			}
			vals = append(vals, v)
		}
		a.b.Float64s(a.takeDataLabel(), vals...)
	case ".space":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n < 0 {
			return a.errf(line, ".space: bad size %q", rest)
		}
		a.b.Space(a.takeDataLabel(), n)
	case ".byte":
		vals, err := splitInts(rest)
		if err != nil {
			return a.errf(line, ".byte: %v", err)
		}
		bytesVal := make([]byte, len(vals))
		for i, v := range vals {
			bytesVal[i] = byte(v)
		}
		a.b.Bytes(a.takeDataLabel(), bytesVal)
	default:
		return a.errf(line, "unknown directive %q", dir)
	}
	return nil
}

func (a *assembler) takeDataLabel() string {
	l := a.pendingDataLabel
	a.pendingDataLabel = ""
	return l
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int64, error) {
	parts := splitList(s)
	vals := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(p, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		return isa.R(n), nil
	case 'f':
		return isa.F(n), nil
	}
	return isa.NoReg, fmt.Errorf("bad register %q", s)
}

// parseMem parses "off(base)".
func parseMem(s string) (off int32, base isa.Reg, err error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, isa.NoReg, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	o, err := strconv.ParseInt(offStr, 0, 32)
	if err != nil {
		return 0, isa.NoReg, fmt.Errorf("bad offset in %q", s)
	}
	base, err = parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, isa.NoReg, err
	}
	return int32(o), base, nil
}

func (a *assembler) instruction(line int, raw string) error {
	mnemonic := raw
	rest := ""
	if i := strings.IndexAny(raw, " \t"); i >= 0 {
		mnemonic, rest = raw[:i], strings.TrimSpace(raw[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)
	ops := splitList(rest)

	// Pseudo-instructions first.
	switch mnemonic {
	case "li": // li rd, imm-or-symbol
		if len(ops) != 2 {
			return a.errf(line, "li needs 2 operands")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return a.errf(line, "%v", err)
		}
		if v, err := strconv.ParseInt(ops[1], 0, 32); err == nil {
			a.emitLi(line, rd, int32(v))
			return nil
		}
		if addr, ok := a.b.Sym(ops[1]); ok {
			a.emitLi(line, rd, int32(addr))
			return nil
		}
		return a.errf(line, "li: bad immediate or unknown symbol %q", ops[1])
	case "mov": // mov rd, rs
		if len(ops) != 2 {
			return a.errf(line, "mov needs 2 operands")
		}
		rd, err1 := parseReg(ops[0])
		rs, err2 := parseReg(ops[1])
		if err1 != nil || err2 != nil {
			return a.errf(line, "mov: bad register")
		}
		a.emit(line, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs}, "")
		return nil
	}

	op, ok := isa.OpcodeByName(mnemonic)
	if !ok {
		return a.errf(line, "unknown mnemonic %q", mnemonic)
	}

	need := func(n int) error {
		if len(ops) != n {
			return a.errf(line, "%s needs %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}
	regOp := func(i int) (isa.Reg, error) {
		r, err := parseReg(ops[i])
		if err != nil {
			return isa.NoReg, a.errf(line, "%s: %v", mnemonic, err)
		}
		return r, nil
	}
	immOp := func(i int) (int32, error) {
		v, err := strconv.ParseInt(ops[i], 0, 32)
		if err != nil {
			return 0, a.errf(line, "%s: bad immediate %q", mnemonic, ops[i])
		}
		return int32(v), nil
	}

	switch {
	case op == isa.NOP || op == isa.HALT:
		if err := need(0); err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op}, "")

	case op == isa.LUI:
		if err := need(2); err != nil {
			return err
		}
		rd, err := regOp(0)
		if err != nil {
			return err
		}
		imm, err := immOp(1)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rd: rd, Imm: imm}, "")

	case op == isa.J:
		if err := need(1); err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op}, ops[0])

	case op == isa.JAL:
		if err := need(2); err != nil {
			return err
		}
		rd, err := regOp(0)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rd: rd}, ops[1])

	case op == isa.JR:
		if err := need(1); err != nil {
			return err
		}
		rs, err := regOp(0)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rs1: rs}, "")

	case op == isa.JALR:
		if err := need(2); err != nil {
			return err
		}
		rd, err := regOp(0)
		if err != nil {
			return err
		}
		rs, err := regOp(1)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rd: rd, Rs1: rs}, "")

	case op.IsCondBranch():
		if err := need(3); err != nil {
			return err
		}
		rs1, err := regOp(0)
		if err != nil {
			return err
		}
		rs2, err := regOp(1)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, ops[2])

	case op.IsLoad():
		if err := need(2); err != nil {
			return err
		}
		rd, err := regOp(0)
		if err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return a.errf(line, "%s: %v", mnemonic, err)
		}
		a.emit(line, isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off}, "")

	case op.IsStore():
		if err := need(2); err != nil {
			return err
		}
		val, err := regOp(0)
		if err != nil {
			return err
		}
		off, base, err := parseMem(ops[1])
		if err != nil {
			return a.errf(line, "%s: %v", mnemonic, err)
		}
		a.emit(line, isa.Inst{Op: op, Rs2: val, Rs1: base, Imm: off}, "")

	case op == isa.FNEG || op == isa.FABS || op == isa.FMOV ||
		op == isa.FCVTIF || op == isa.FCVTFI:
		if err := need(2); err != nil {
			return err
		}
		rd, err := regOp(0)
		if err != nil {
			return err
		}
		rs, err := regOp(1)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rd: rd, Rs1: rs}, "")

	case op.HasImm(): // ALU immediate forms
		if err := need(3); err != nil {
			return err
		}
		rd, err := regOp(0)
		if err != nil {
			return err
		}
		rs1, err := regOp(1)
		if err != nil {
			return err
		}
		imm, err := immOp(2)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}, "")

	default: // three-register forms
		if err := need(3); err != nil {
			return err
		}
		rd, err := regOp(0)
		if err != nil {
			return err
		}
		rs1, err := regOp(1)
		if err != nil {
			return err
		}
		rs2, err := regOp(2)
		if err != nil {
			return err
		}
		a.emit(line, isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, "")
	}
	return nil
}

func (a *assembler) emit(line int, in isa.Inst, label string) {
	a.insts = append(a.insts, pendingInst{line: line, inst: in, label: label})
}

// emitLi expands the li pseudo-instruction, keeping label bookkeeping in
// sync with the expansion length.
func (a *assembler) emitLi(line int, rd isa.Reg, v int32) {
	if v >= -32768 && v < 32768 {
		a.emit(line, isa.Inst{Op: isa.ADDI, Rd: rd, Imm: v}, "")
		return
	}
	a.emit(line, isa.Inst{Op: isa.LUI, Rd: rd, Imm: v >> 16}, "")
	if low := v & 0xFFFF; low != 0 {
		a.emit(line, isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: low}, "")
	}
}

func (a *assembler) finish() (*prog.Program, error) {
	// Propagate text labels into the builder so the finished program
	// carries them (the static partitioner and disassembler use them).
	byIndex := make(map[int][]string, len(a.labels))
	for name, idx := range a.labels {
		byIndex[idx] = append(byIndex[idx], name)
	}
	defineAt := func(idx int) {
		for _, name := range byIndex[idx] {
			a.b.Label(name)
		}
	}
	for i, pi := range a.insts {
		defineAt(i)
		in := pi.inst
		if pi.label != "" {
			target, ok := a.labels[pi.label]
			if !ok {
				return nil, a.errf(pi.line, "undefined label %q", pi.label)
			}
			in.Imm = int32(target)
		}
		a.b.Emit(in)
	}
	defineAt(len(a.insts))
	return a.b.Build()
}
