package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; sum an array
.data
arr:    .word 1, 2, 3, 4
n:      .word 4
.text
start:  li   r1, arr
        li   r2, 0      ; sum
        li   r3, 4      ; count
loop:   ld   r4, 0(r1)
        add  r2, r2, r4
        addi r1, r1, 8
        addi r3, r3, -1
        bne  r3, r0, loop
        halt
`
	p, err := Assemble("sum", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sum" {
		t.Errorf("name = %q", p.Name)
	}
	// li r1, arr expands to lui+ori (arr = 0x10000) so expect:
	// lui, addi(r2), addi(r3), ld, add, addi, addi, bne, halt
	if p.Text[len(p.Text)-1].Op != isa.HALT {
		t.Fatal("missing halt")
	}
	var bne isa.Inst
	for _, in := range p.Text {
		if in.Op == isa.BNE {
			bne = in
		}
	}
	if bne.Op != isa.BNE {
		t.Fatal("missing bne")
	}
	loopIdx := p.Labels["loop"]
	if int(bne.Imm) != loopIdx {
		t.Fatalf("bne target = %d, want label loop at %d", bne.Imm, loopIdx)
	}
	if got := p.Symbols["arr"]; got != 0x10000 {
		t.Fatalf("arr symbol = %#x", got)
	}
	if got := p.Symbols["n"]; got != 0x10000+32 {
		t.Fatalf("n symbol = %#x", got)
	}
	if len(p.Data) != 40 {
		t.Fatalf("data length = %d, want 40", len(p.Data))
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p, err := Assemble("m", `
.text
  ld  r1, -16(r2)
  st  r3, 8(r4)
  fld f1, 0(r5)
  fst f2, (r6)
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Inst{
		{Op: isa.LD, Rd: isa.R(1), Rs1: isa.R(2), Imm: -16},
		{Op: isa.ST, Rs2: isa.R(3), Rs1: isa.R(4), Imm: 8},
		{Op: isa.FLD, Rd: isa.F(1), Rs1: isa.R(5), Imm: 0},
		{Op: isa.FST, Rs2: isa.F(2), Rs1: isa.R(6), Imm: 0},
		{Op: isa.HALT},
	}
	for i, w := range want {
		if p.Text[i] != w {
			t.Errorf("inst %d = %v, want %v", i, p.Text[i], w)
		}
	}
}

func TestAssembleJumpsAndPseudo(t *testing.T) {
	p, err := Assemble("j", `
.text
main:  jal r31, sub
       mov r5, r1
       j   end
sub:   addi r1, r0, 7
       jr  r31
end:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Op != isa.JAL || int(p.Text[0].Imm) != p.Labels["sub"] {
		t.Errorf("jal wrong: %v", p.Text[0])
	}
	if p.Text[1].Op != isa.ADDI || p.Text[1].Rd != isa.R(5) || p.Text[1].Rs1 != isa.R(1) {
		t.Errorf("mov expansion wrong: %v", p.Text[1])
	}
	if p.Text[2].Op != isa.J || int(p.Text[2].Imm) != p.Labels["end"] {
		t.Errorf("j wrong: %v", p.Text[2])
	}
	if p.Text[4].Op != isa.JR || p.Text[4].Rs1 != isa.R(31) {
		t.Errorf("jr wrong: %v", p.Text[4])
	}
}

func TestAssembleFP(t *testing.T) {
	p, err := Assemble("fp", `
.data
x: .double 1.5, 2.5
.text
  li     r1, x
  fld    f1, 0(r1)
  fld    f2, 8(r1)
  fadd   f3, f1, f2
  fcvtfi r2, f3
  fcvtif f4, r2
  fmov   f5, f4
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	var ops []isa.Opcode
	for _, in := range p.Text {
		ops = append(ops, in.Op)
	}
	joined := ""
	for _, o := range ops {
		joined += o.String() + " "
	}
	for _, want := range []string{"fadd", "fcvtfi", "fcvtif", "fmov"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in %s", want, joined)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown mnemonic", ".text\n frob r1, r2, r3\n", "unknown mnemonic"},
		{"undefined label", ".text\n j nowhere\n", "undefined label"},
		{"duplicate label", ".text\nx: nop\nx: halt\n", "duplicate label"},
		{"bad register", ".text\n add r1, r99, r2\n", "bad register"},
		{"bad operand count", ".text\n add r1, r2\n", "needs 3 operands"},
		{"bad mem operand", ".text\n ld r1, r2\n", "bad memory operand"},
		{"data inst", ".data\n add r1, r2, r3\n", "outside .text"},
		{"bad directive", ".frob 3\n", "unknown directive"},
		{"bad word", ".data\nx: .word zork\n", "bad integer"},
		{"li bad sym", ".text\n li r1, nosuch\n", "unknown symbol"},
	}
	for _, c := range cases {
		_, err := Assemble(c.name, c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Assemble("line", ".text\n nop\n frob\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}

func TestPaperFigure2Example(t *testing.T) {
	// The running example from Figure 2 of the paper, transcribed into our
	// dialect: for (i=0;i<N;i++) { if (C[i]!=0) A[i]=B[i]/C[i]; else A[i]=0; }
	src := `
.data
A: .word 0, 0, 0, 0
B: .word 8, 12, 20, 36
C: .word 2, 0, 5, 6
.text
     li   r9,  4       ; N
     li   r1,  0       ; i*8
     li   r10, 0
     slli r9, r9, 3    ; N*8
for: li   r2, B
     add  r2, r2, r1
     ld   r3, 0(r2)    ; B[i]
     li   r4, C
     add  r4, r4, r1
     ld   r5, 0(r4)    ; C[i]
     beq  r5, r0, l1
     div  r7, r3, r5
     j    l2
l1:  mov  r7, r10
l2:  li   r8, A
     add  r8, r8, r1
     st   r7, 0(r8)    ; A[i]
     addi r1, r1, 8
     bne  r1, r9, for
     halt
`
	p, err := Assemble("fig2", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	var haveDiv, haveStore bool
	for _, in := range p.Text {
		if in.Op == isa.DIV {
			haveDiv = true
		}
		if in.Op == isa.ST {
			haveStore = true
		}
	}
	if !haveDiv || !haveStore {
		t.Fatal("figure 2 program missing expected instructions")
	}
}
