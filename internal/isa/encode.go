package isa

import (
	"encoding/binary"
	"fmt"
)

// Word is the fixed binary size of one encoded instruction in bytes.
const Word = 8

// Encode packs the instruction into its fixed 64-bit binary form:
//
//	byte 0: opcode
//	byte 1: rd
//	byte 2: rs1
//	byte 3: rs2
//	bytes 4-7: imm (little-endian two's-complement)
func (in Inst) Encode() [Word]byte {
	var b [Word]byte
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rs1)
	b[3] = byte(in.Rs2)
	binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
	return b
}

// Decode unpacks a 64-bit encoded instruction. It returns an error for
// undefined opcodes or malformed register fields so corrupted images are
// detected at load time rather than mid-simulation.
func Decode(b [Word]byte) (Inst, error) {
	in := Inst{
		Op:  Opcode(b[0]),
		Rd:  Reg(b[1]),
		Rs1: Reg(b[2]),
		Rs2: Reg(b[3]),
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
	if int(in.Op) >= NumOpcodes {
		return Inst{}, fmt.Errorf("isa: undefined opcode %d", b[0])
	}
	for _, r := range []Reg{in.Rd, in.Rs1, in.Rs2} {
		if r != NoReg && !r.Valid() {
			return Inst{}, fmt.Errorf("isa: invalid register %d in %v", uint8(r), in.Op)
		}
	}
	return in, nil
}

// EncodeText serializes a whole instruction sequence.
func EncodeText(text []Inst) []byte {
	out := make([]byte, 0, len(text)*Word)
	for _, in := range text {
		b := in.Encode()
		out = append(out, b[:]...)
	}
	return out
}

// DecodeText parses a serialized instruction sequence produced by
// [EncodeText].
func DecodeText(raw []byte) ([]Inst, error) {
	if len(raw)%Word != 0 {
		return nil, fmt.Errorf("isa: text length %d not a multiple of %d", len(raw), Word)
	}
	text := make([]Inst, 0, len(raw)/Word)
	for i := 0; i < len(raw); i += Word {
		var b [Word]byte
		copy(b[:], raw[i:i+Word])
		in, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i/Word, err)
		}
		text = append(text, in)
	}
	return text, nil
}
