// Package isa defines the instruction set architecture simulated by this
// repository: a small 64-bit load/store RISC machine with 32 integer and 32
// floating-point registers.
//
// The ISA deliberately mirrors the operand classes that the clustered
// microarchitecture of Canal, Parcerisa and González (HPCA 2000)
// distinguishes:
//
//   - simple integer and logic operations, executable in either cluster;
//   - complex integer operations (multiply/divide), integer cluster only;
//   - floating-point operations, FP cluster only;
//   - memory operations, split by the core into an effective-address
//     computation (a simple integer add, steerable) and a memory access
//     (handled by a centralized disambiguation unit);
//   - control transfers.
//
// Instructions are represented as decoded structs ([Inst]); a fixed-width
// 64-bit binary encoding is provided by [Inst.Encode] and [Decode] for
// round-trip storage and testing.
package isa

import "fmt"

// Reg names an architectural register. Values 0–31 are the integer
// registers R0–R31 (R0 reads as zero and ignores writes); values 32–63 are
// the floating-point registers F0–F31. The dedicated value [NoReg] means
// "no register".
type Reg uint8

// NumIntRegs and NumFPRegs give the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumRegs is the total number of architectural registers across both
	// files; valid Reg values are in [0, NumRegs).
	NumRegs = NumIntRegs + NumFPRegs
	// NoReg marks an absent register operand.
	NoReg Reg = 0xFF
)

// R returns the i'th integer register. It panics if i is out of range.
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// F returns the i'th floating-point register. It panics if i is out of range.
func F(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: FP register index %d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r != NoReg && r >= NumIntRegs }

// IsZero reports whether r is the hardwired integer zero register R0.
func (r Reg) IsZero() bool { return r == 0 }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String returns the assembler name of the register ("r7", "f3", or "-").
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", int(r)-NumIntRegs)
	default:
		return fmt.Sprintf("r%d", int(r))
	}
}

// Opcode identifies an operation.
type Opcode uint8

// Integer ALU operations (register-register unless suffixed I).
const (
	NOP Opcode = iota
	ADD
	SUB
	AND
	OR
	XOR
	NOR
	SLL
	SRL
	SRA
	SLT  // set rd = 1 if rs1 < rs2 (signed) else 0
	SLTU // unsigned compare
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	LUI // rd = imm << 16

	// Complex integer operations: only the integer cluster has the
	// multiplier/divider.
	MUL
	DIV
	REM

	// Memory operations. Loads/stores transfer 64-bit words (LD/ST), 32-bit
	// words (LW/SW) or bytes (LB/SB); FLD/FST move 64-bit FP values.
	LD
	LW
	LB
	ST
	SW
	SB
	FLD
	FST

	// Control transfers. Conditional branches compare two integer
	// registers; targets are absolute instruction indices resolved by the
	// assembler/builder into Imm.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	J    // unconditional jump to Imm
	JAL  // rd = return index; jump to Imm
	JR   // jump to rs1
	JALR // rd = return index; jump to rs1

	// Floating-point operations (double precision).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FABS
	FMOV
	FCVTIF // rd(fp) = float64(rs1 int)
	FCVTFI // rd(int) = int64(rs1 fp)
	FEQ    // rd(int) = 1 if fs1 == fs2
	FLT
	FLE

	// HALT stops the machine.
	HALT

	numOpcodes
)

// NumOpcodes is the number of defined opcodes; valid opcodes are in
// [0, NumOpcodes).
const NumOpcodes = int(numOpcodes)

// Class groups opcodes by the functional-unit type they require, which is
// what the steering logic and cluster datapaths care about.
type Class uint8

const (
	// ClassSimpleInt operations execute on the simple integer ALUs present
	// in every cluster.
	ClassSimpleInt Class = iota
	// ClassComplexInt operations (MUL/DIV/REM) execute only on the integer
	// cluster's multiplier/divider.
	ClassComplexInt
	// ClassFP operations execute only on the FP cluster's FP units.
	ClassFP
	// ClassLoad and ClassStore are memory operations; their
	// effective-address computation is a simple integer operation steerable
	// to either cluster, while the access itself goes through the
	// centralized load/store unit.
	ClassLoad
	ClassStore
	// ClassBranch covers all control transfers (conditional branches and
	// jumps).
	ClassBranch
	// ClassMisc covers NOP and HALT.
	ClassMisc
)

// String returns a short human-readable class name.
func (c Class) String() string {
	switch c {
	case ClassSimpleInt:
		return "simple-int"
	case ClassComplexInt:
		return "complex-int"
	case ClassFP:
		return "fp"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassMisc:
		return "misc"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

var opClasses = [NumOpcodes]Class{
	NOP:  ClassMisc,
	HALT: ClassMisc,

	ADD: ClassSimpleInt, SUB: ClassSimpleInt, AND: ClassSimpleInt,
	OR: ClassSimpleInt, XOR: ClassSimpleInt, NOR: ClassSimpleInt,
	SLL: ClassSimpleInt, SRL: ClassSimpleInt, SRA: ClassSimpleInt,
	SLT: ClassSimpleInt, SLTU: ClassSimpleInt,
	ADDI: ClassSimpleInt, ANDI: ClassSimpleInt, ORI: ClassSimpleInt,
	XORI: ClassSimpleInt, SLLI: ClassSimpleInt, SRLI: ClassSimpleInt,
	SRAI: ClassSimpleInt, SLTI: ClassSimpleInt, LUI: ClassSimpleInt,

	MUL: ClassComplexInt, DIV: ClassComplexInt, REM: ClassComplexInt,

	LD: ClassLoad, LW: ClassLoad, LB: ClassLoad, FLD: ClassLoad,
	ST: ClassStore, SW: ClassStore, SB: ClassStore, FST: ClassStore,

	BEQ: ClassBranch, BNE: ClassBranch, BLT: ClassBranch, BGE: ClassBranch,
	BLTU: ClassBranch, BGEU: ClassBranch,
	J: ClassBranch, JAL: ClassBranch, JR: ClassBranch, JALR: ClassBranch,

	FADD: ClassFP, FSUB: ClassFP, FMUL: ClassFP, FDIV: ClassFP,
	FNEG: ClassFP, FABS: ClassFP, FMOV: ClassFP,
	FCVTIF: ClassFP, FCVTFI: ClassFP,
	FEQ: ClassFP, FLT: ClassFP, FLE: ClassFP,
}

// ClassOf returns the functional class of op.
func (op Opcode) Class() Class {
	if int(op) >= NumOpcodes {
		return ClassMisc
	}
	return opClasses[op]
}

// IsBranch reports whether op is any control transfer.
func (op Opcode) IsBranch() bool { return op.Class() == ClassBranch }

// IsCondBranch reports whether op is a conditional branch.
func (op Opcode) IsCondBranch() bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return true
	}
	return false
}

// IsMem reports whether op accesses memory.
func (op Opcode) IsMem() bool {
	c := op.Class()
	return c == ClassLoad || c == ClassStore
}

// IsLoad reports whether op reads memory.
func (op Opcode) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op writes memory.
func (op Opcode) IsStore() bool { return op.Class() == ClassStore }

// HasImm reports whether op uses its immediate field.
func (op Opcode) HasImm() bool {
	switch op {
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LUI,
		LD, LW, LB, ST, SW, SB, FLD, FST,
		BEQ, BNE, BLT, BGE, BLTU, BGEU, J, JAL:
		return true
	}
	return false
}

// MemWidth returns the access width in bytes for memory opcodes and 0 for
// everything else.
func (op Opcode) MemWidth() int {
	switch op {
	case LD, ST, FLD, FST:
		return 8
	case LW, SW:
		return 4
	case LB, SB:
		return 1
	}
	return 0
}

// Inst is one decoded instruction. The interpretation of the fields depends
// on the opcode:
//
//   - ALU reg-reg: Rd = Rs1 op Rs2
//   - ALU reg-imm: Rd = Rs1 op Imm
//   - loads:  Rd = mem[Rs1 + Imm]
//   - stores: mem[Rs1 + Imm] = Rs2
//   - conditional branches: if Rs1 cmp Rs2 then PC = Imm
//   - J/JAL: PC = Imm (JAL also writes the return index to Rd)
//   - JR/JALR: PC = Rs1
//
// Branch and jump targets (Imm) are absolute instruction indices within the
// program text, as produced by the assembler or program builder.
type Inst struct {
	Op  Opcode
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// Nop is the canonical no-operation instruction.
var Nop = Inst{Op: NOP, Rd: NoReg, Rs1: NoReg, Rs2: NoReg}

// Dst returns the destination register and whether the instruction writes
// one.
func (in Inst) Dst() (Reg, bool) {
	switch in.Op.Class() {
	case ClassSimpleInt, ClassComplexInt, ClassFP, ClassLoad:
		if in.Rd == NoReg || in.Rd.IsZero() {
			return NoReg, false
		}
		return in.Rd, true
	case ClassBranch:
		if (in.Op == JAL || in.Op == JALR) && in.Rd != NoReg && !in.Rd.IsZero() {
			return in.Rd, true
		}
	}
	return NoReg, false
}

// Srcs appends the source registers of the instruction to dst and returns
// the extended slice. The zero register is never reported as a source.
func (in Inst) Srcs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != NoReg && r.Valid() && !r.IsZero() {
			dst = append(dst, r)
		}
	}
	switch in.Op {
	case NOP, HALT, J, JAL, LUI:
		// no register sources
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
		LD, LW, LB, FLD, JR, JALR,
		FNEG, FABS, FMOV, FCVTIF, FCVTFI:
		add(in.Rs1)
	default:
		add(in.Rs1)
		add(in.Rs2)
	}
	return dst
}

// String disassembles the instruction.
func (in Inst) String() string {
	op := in.Op
	name := op.String()
	switch {
	case op == NOP || op == HALT:
		return name
	case op == LUI:
		return fmt.Sprintf("%s %s, %d", name, in.Rd, in.Imm)
	case op == J:
		return fmt.Sprintf("%s %d", name, in.Imm)
	case op == JAL:
		return fmt.Sprintf("%s %s, %d", name, in.Rd, in.Imm)
	case op == JR:
		return fmt.Sprintf("%s %s", name, in.Rs1)
	case op == JALR:
		return fmt.Sprintf("%s %s, %s", name, in.Rd, in.Rs1)
	case op.IsCondBranch():
		return fmt.Sprintf("%s %s, %s, %d", name, in.Rs1, in.Rs2, in.Imm)
	case op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", name, in.Rd, in.Imm, in.Rs1)
	case op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", name, in.Rs2, in.Imm, in.Rs1)
	case op == FNEG || op == FABS || op == FMOV || op == FCVTIF || op == FCVTFI:
		return fmt.Sprintf("%s %s, %s", name, in.Rd, in.Rs1)
	case op.HasImm():
		return fmt.Sprintf("%s %s, %s, %d", name, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", name, in.Rd, in.Rs1, in.Rs2)
	}
}

var opNames = [NumOpcodes]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	NOR: "nor", SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLLI: "slli",
	SRLI: "srli", SRAI: "srai", SLTI: "slti", LUI: "lui",
	MUL: "mul", DIV: "div", REM: "rem",
	LD: "ld", LW: "lw", LB: "lb", ST: "st", SW: "sw", SB: "sb",
	FLD: "fld", FST: "fst",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	J: "j", JAL: "jal", JR: "jr", JALR: "jalr",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
	FABS: "fabs", FMOV: "fmov", FCVTIF: "fcvtif", FCVTFI: "fcvtfi",
	FEQ: "feq", FLT: "flt", FLE: "fle",
	HALT: "halt",
}

// String returns the assembler mnemonic for op.
func (op Opcode) String() string {
	if int(op) < NumOpcodes && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(op))
}

// OpcodeByName returns the opcode for an assembler mnemonic (lower case) and
// whether it exists.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()
