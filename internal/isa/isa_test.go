package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	if R(0) != 0 || R(31) != 31 {
		t.Fatalf("R mapping wrong: R(0)=%d R(31)=%d", R(0), R(31))
	}
	if F(0) != 32 || F(31) != 63 {
		t.Fatalf("F mapping wrong: F(0)=%d F(31)=%d", F(0), F(31))
	}
	if !F(3).IsFP() || R(3).IsFP() {
		t.Fatal("IsFP misclassifies")
	}
	if !R(0).IsZero() || R(1).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
	if NoReg.Valid() {
		t.Fatal("NoReg must not be Valid")
	}
}

func TestRegConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { R(-1) }, func() { R(32) },
		func() { F(-1) }, func() { F(32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register index")
				}
			}()
			f()
		}()
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{R(0): "r0", R(17): "r17", F(0): "f0", F(5): "f5", NoReg: "-"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(r), got, want)
		}
	}
}

func TestEveryOpcodeHasNameAndClass(t *testing.T) {
	seen := map[string]Opcode{}
	for op := Opcode(0); int(op) < NumOpcodes; op++ {
		name := op.String()
		if name == "" || name[0] == 'O' { // "Opcode(n)" fallback
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q reused by opcodes %d and %d", name, prev, op)
		}
		seen[name] = op
		back, ok := OpcodeByName(name)
		if !ok || back != op {
			t.Errorf("OpcodeByName(%q) = %v,%v want %v", name, back, ok, op)
		}
	}
	if _, ok := OpcodeByName("not-an-op"); ok {
		t.Error("OpcodeByName accepted junk")
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		op   Opcode
		want Class
	}{
		{ADD, ClassSimpleInt}, {ADDI, ClassSimpleInt}, {LUI, ClassSimpleInt},
		{SLTU, ClassSimpleInt},
		{MUL, ClassComplexInt}, {DIV, ClassComplexInt}, {REM, ClassComplexInt},
		{LD, ClassLoad}, {LB, ClassLoad}, {FLD, ClassLoad},
		{ST, ClassStore}, {SB, ClassStore}, {FST, ClassStore},
		{BEQ, ClassBranch}, {J, ClassBranch}, {JALR, ClassBranch},
		{FADD, ClassFP}, {FCVTFI, ClassFP}, {FLE, ClassFP},
		{NOP, ClassMisc}, {HALT, ClassMisc},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !BEQ.IsBranch() || !J.IsBranch() || ADD.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !BNE.IsCondBranch() || J.IsCondBranch() || JR.IsCondBranch() {
		t.Error("IsCondBranch wrong")
	}
	if !LD.IsMem() || !ST.IsMem() || ADD.IsMem() {
		t.Error("IsMem wrong")
	}
	if !LD.IsLoad() || ST.IsLoad() || !FST.IsStore() || FLD.IsStore() {
		t.Error("IsLoad/IsStore wrong")
	}
	if LD.MemWidth() != 8 || LW.MemWidth() != 4 || SB.MemWidth() != 1 || ADD.MemWidth() != 0 {
		t.Error("MemWidth wrong")
	}
}

func TestDstAndSrcs(t *testing.T) {
	cases := []struct {
		in       Inst
		wantDst  Reg
		hasDst   bool
		wantSrcs []Reg
	}{
		{Inst{Op: ADD, Rd: R(1), Rs1: R(2), Rs2: R(3)}, R(1), true, []Reg{R(2), R(3)}},
		{Inst{Op: ADD, Rd: R(0), Rs1: R(2), Rs2: R(3)}, NoReg, false, []Reg{R(2), R(3)}},
		{Inst{Op: ADDI, Rd: R(1), Rs1: R(0), Imm: 5}, R(1), true, nil},
		{Inst{Op: LD, Rd: R(4), Rs1: R(5), Imm: 8}, R(4), true, []Reg{R(5)}},
		{Inst{Op: ST, Rs1: R(5), Rs2: R(6), Imm: 8}, NoReg, false, []Reg{R(5), R(6)}},
		{Inst{Op: BEQ, Rs1: R(1), Rs2: R(2), Imm: 9}, NoReg, false, []Reg{R(1), R(2)}},
		{Inst{Op: J, Imm: 3}, NoReg, false, nil},
		{Inst{Op: JAL, Rd: R(31), Imm: 3}, R(31), true, nil},
		{Inst{Op: JR, Rs1: R(31)}, NoReg, false, []Reg{R(31)}},
		{Inst{Op: JALR, Rd: R(31), Rs1: R(7)}, R(31), true, []Reg{R(7)}},
		{Inst{Op: FADD, Rd: F(1), Rs1: F(2), Rs2: F(3)}, F(1), true, []Reg{F(2), F(3)}},
		{Inst{Op: FCVTIF, Rd: F(1), Rs1: R(2)}, F(1), true, []Reg{R(2)}},
		{Inst{Op: FCVTFI, Rd: R(1), Rs1: F(2)}, R(1), true, []Reg{F(2)}},
		{Inst{Op: FMOV, Rd: F(1), Rs1: F(2)}, F(1), true, []Reg{F(2)}},
		{Inst{Op: LUI, Rd: R(9), Imm: 1}, R(9), true, nil},
		{Nop, NoReg, false, nil},
		{Inst{Op: HALT}, NoReg, false, nil},
	}
	for _, c := range cases {
		d, ok := c.in.Dst()
		if d != c.wantDst || ok != c.hasDst {
			t.Errorf("%v.Dst() = %v,%v want %v,%v", c.in, d, ok, c.wantDst, c.hasDst)
		}
		srcs := c.in.Srcs(nil)
		if len(srcs) != len(c.wantSrcs) {
			t.Errorf("%v.Srcs() = %v want %v", c.in, srcs, c.wantSrcs)
			continue
		}
		for i := range srcs {
			if srcs[i] != c.wantSrcs[i] {
				t.Errorf("%v.Srcs()[%d] = %v want %v", c.in, i, srcs[i], c.wantSrcs[i])
			}
		}
	}
}

func TestZeroRegNeverASource(t *testing.T) {
	in := Inst{Op: ADD, Rd: R(1), Rs1: R(0), Rs2: R(0)}
	if srcs := in.Srcs(nil); len(srcs) != 0 {
		t.Errorf("zero register reported as source: %v", srcs)
	}
}

func TestInstString(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":  {Op: ADD, Rd: R(1), Rs1: R(2), Rs2: R(3)},
		"addi r1, r2, -4": {Op: ADDI, Rd: R(1), Rs1: R(2), Imm: -4},
		"ld r4, 16(r5)":   {Op: LD, Rd: R(4), Rs1: R(5), Imm: 16},
		"st r6, 0(r5)":    {Op: ST, Rs1: R(5), Rs2: R(6), Imm: 0},
		"beq r1, r2, 12":  {Op: BEQ, Rs1: R(1), Rs2: R(2), Imm: 12},
		"j 7":             {Op: J, Imm: 7},
		"jr r31":          {Op: JR, Rs1: R(31)},
		"fadd f1, f2, f3": {Op: FADD, Rd: F(1), Rs1: F(2), Rs2: F(3)},
		"fmov f1, f2":     {Op: FMOV, Rd: F(1), Rs1: F(2)},
		"lui r9, 4":       {Op: LUI, Rd: R(9), Imm: 4},
		"nop":             Nop,
		"halt":            {Op: HALT},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// randInst builds a structurally valid random instruction for property tests.
func randInst(r *rand.Rand) Inst {
	op := Opcode(r.Intn(NumOpcodes))
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	return Inst{Op: op, Rd: reg(), Rs1: reg(), Rs2: reg(), Imm: int32(r.Uint32())}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	var b [Word]byte
	b[0] = byte(NumOpcodes)
	if _, err := Decode(b); err == nil {
		t.Error("Decode accepted undefined opcode")
	}
}

func TestDecodeRejectsBadRegister(t *testing.T) {
	in := Inst{Op: ADD, Rd: R(1), Rs1: R(2), Rs2: R(3)}
	b := in.Encode()
	b[2] = 100 // invalid, not NoReg
	if _, err := Decode(b); err == nil {
		t.Error("Decode accepted invalid register")
	}
	b[2] = byte(NoReg) // explicitly allowed
	if _, err := Decode(b); err != nil {
		t.Errorf("Decode rejected NoReg: %v", err)
	}
}

func TestEncodeDecodeText(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	text := make([]Inst, 100)
	for i := range text {
		text[i] = randInst(r)
	}
	raw := EncodeText(text)
	if len(raw) != len(text)*Word {
		t.Fatalf("EncodeText length = %d, want %d", len(raw), len(text)*Word)
	}
	back, err := DecodeText(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range text {
		if back[i] != text[i] {
			t.Fatalf("instruction %d: round trip %v != %v", i, back[i], text[i])
		}
	}
	if _, err := DecodeText(raw[:len(raw)-1]); err == nil {
		t.Error("DecodeText accepted truncated image")
	}
}
