// Tests for the trace layer: bit-exact round trips against the live
// functional emulator, byte-stable re-encoding, loud failure on every
// kind of trace corruption, and — the property the whole layer exists
// for — a replaying timing machine producing statistics identical to a
// live one.
package trace_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/prog"
	"repro/internal/rdg"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/trace"
)

// stepBudget bounds every to-halt loop in this file; rdg programs halt
// well under it, so hitting the bound is a test bug.
const stepBudget = 5_000_000

// liveSteps runs p on a fresh functional emulator to HALT and returns
// the full step stream — the reference every trace is compared against.
func liveSteps(t *testing.T, p *prog.Program) []emu.Step {
	t.Helper()
	m := emu.New(p)
	var steps []emu.Step
	for i := 0; i < stepBudget && !m.Halted; i++ {
		var st emu.Step
		if err := m.StepInto(&st); err != nil {
			t.Fatalf("emulator step %d: %v", i, err)
		}
		steps = append(steps, st)
	}
	if !m.Halted {
		t.Fatalf("program %q did not halt within %d steps", p.Name, stepBudget)
	}
	return steps
}

// recordToHalt drives a Recorder to HALT and freezes the trace.
func recordToHalt(t *testing.T, p *prog.Program) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder(p)
	var st emu.Step
	for i := 0; i < stepBudget && !rec.Halted(); i++ {
		if err := rec.StepInto(&st); err != nil {
			t.Fatalf("recorder step %d: %v", i, err)
		}
	}
	if !rec.Halted() {
		t.Fatalf("program %q did not halt within %d steps", p.Name, stepBudget)
	}
	return rec.Finalize(0)
}

// runDigest is the stats identity used across this file: the JSON
// encoding of the full run record (the same canonicalization
// job.ResultDigest hashes).
func runDigest(t *testing.T, r *stats.Run) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRoundTripMatchesLiveEmulator(t *testing.T) {
	for _, seed := range []int64{1, 7, 9, 23} {
		p := rdg.RandomProgram(seed)
		want := liveSteps(t, p)
		tr := recordToHalt(t, p)
		if tr.Steps != uint64(len(want)) {
			t.Fatalf("seed %d: recorded %d steps, live emulator executed %d", seed, tr.Steps, len(want))
		}
		if !tr.Halted {
			t.Fatalf("seed %d: trace not marked halted", seed)
		}
		got, err := tr.DecodeSteps(p)
		if err != nil {
			t.Fatalf("seed %d: decode steps: %v", seed, err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("seed %d: step %d differs:\n replay: %+v\n   live: %+v", seed, i, got[i], want[i])
			}
		}
		if err := tr.Validate(p); err != nil {
			t.Fatalf("seed %d: validate: %v", seed, err)
		}
	}
}

func TestEncodeDecodeEncodeByteStable(t *testing.T) {
	p := rdg.RandomProgram(7)
	tr := recordToHalt(t, p)
	enc := tr.Encode()
	tr2, err := trace.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	enc2 := tr2.Encode()
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("encode→decode→encode not byte-stable: %d vs %d bytes", len(enc), len(enc2))
	}
	if tr.Digest() != tr2.Digest() {
		t.Fatalf("digest drifted across a decode round trip")
	}
	m := tr2.Meta()
	if m.FormatVersion != trace.FormatVersion || m.Steps != tr.Steps ||
		m.ProgramDigest != p.Digest() || m.Digest != tr.Digest() {
		t.Fatalf("meta disagrees with trace: %+v", m)
	}
	// An independent recording of the same program encodes to the same
	// bytes — the property that makes Digest a content address.
	if d := recordToHalt(t, p).Digest(); d != tr.Digest() {
		t.Fatalf("two recordings of one program digest differently")
	}
}

func TestCompactEncoding(t *testing.T) {
	p := rdg.RandomProgram(9)
	tr := recordToHalt(t, p)
	raw := tr.Encode()
	perStep := float64(len(raw)) / float64(tr.Steps)
	// A Step is >64 bytes in memory; the format's reason to exist is
	// storing only the non-derivable remainder. ~4 bytes/step covers
	// value deltas; beyond 12 the delta coding is broken.
	if perStep > 12 {
		t.Fatalf("encoding is not compact: %.1f bytes/step over %d steps", perStep, tr.Steps)
	}
}

func TestKeyIsStableAndDiscriminates(t *testing.T) {
	p1, p2 := rdg.RandomProgram(1), rdg.RandomProgram(2)
	k := trace.Key(p1.Digest(), 25_000)
	if k != trace.Key(p1.Digest(), 25_000) {
		t.Fatal("Key is not deterministic")
	}
	if len(k) != 64 || strings.ContainsAny(k, "/\\.") {
		t.Fatalf("Key %q is not a plain hex store key", k)
	}
	if k == trace.Key(p1.Digest(), 60_000) {
		t.Fatal("Key ignores the window")
	}
	if k == trace.Key(p2.Digest(), 25_000) {
		t.Fatal("Key ignores the program digest")
	}
}

// TestReplayMachineBitIdentity is the end-to-end contract: a timing
// machine fetching from a Replayer produces run statistics identical to
// one fetching from the live emulator — and the recording machine in
// the middle is itself transparent.
func TestReplayMachineBitIdentity(t *testing.T) {
	p := rdg.RandomProgram(19)
	for _, cfg := range []*config.Config{
		config.Clustered(), config.Base(), config.UpperBound(), config.ClusteredN(4),
	} {
		newSteerer := func() core.Steerer {
			if cfg.Name == "base" || cfg.Name == "upper-bound" {
				return core.NaiveSteerer{}
			}
			params := steer.DefaultParams()
			params.Clusters = cfg.NumClusters()
			st, err := steer.NewWithParams("general", p, params)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}

		live, err := core.New(cfg, p, newSteerer())
		if err != nil {
			t.Fatal(err)
		}
		wantRun, err := live.Run(0)
		if err != nil {
			t.Fatalf("%s: live run: %v", cfg.Name, err)
		}
		want := runDigest(t, wantRun)

		rec := trace.NewRecorder(p)
		recording, err := core.NewWithOracle(cfg, p, newSteerer(), rec)
		if err != nil {
			t.Fatal(err)
		}
		recRun, err := recording.Run(0)
		if err != nil {
			t.Fatalf("%s: recording run: %v", cfg.Name, err)
		}
		if got := runDigest(t, recRun); got != want {
			t.Fatalf("%s: recording machine diverged from live machine", cfg.Name)
		}
		tr := rec.Finalize(0)

		rep, err := trace.NewReplayer(tr, p)
		if err != nil {
			t.Fatal(err)
		}
		replaying, err := core.NewWithOracle(cfg, p, newSteerer(), rep)
		if err != nil {
			t.Fatal(err)
		}
		repRun, err := replaying.Run(0)
		if err != nil {
			t.Fatalf("%s: replay run: %v", cfg.Name, err)
		}
		if got := runDigest(t, repRun); got != want {
			t.Fatalf("%s: replaying machine diverged from live machine", cfg.Name)
		}
	}
}

// TestReplayExhaustionFailsRun locks the no-silent-short-run rule: a
// machine that outruns its trace must fail with ErrOracleExhausted, not
// report a truncated measurement.
func TestReplayExhaustionFailsRun(t *testing.T) {
	p := rdg.RandomProgram(7)
	n := len(liveSteps(t, p))

	rec := trace.NewRecorder(p)
	var st emu.Step
	for i := 0; i < n/2; i++ {
		if err := rec.StepInto(&st); err != nil {
			t.Fatal(err)
		}
	}
	tr := rec.Finalize(0)
	if tr.Halted {
		t.Fatal("half the program should not have halted")
	}

	rep, err := trace.NewReplayer(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewWithOracle(config.Clustered(), p, core.NaiveSteerer{}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); !errors.Is(err, core.ErrOracleExhausted) {
		t.Fatalf("run on a truncated trace: got %v, want ErrOracleExhausted", err)
	}
}

// TestRecorderExtend: Extend records past the consumer's demand and
// stops at HALT, so the slack margin can be requested unconditionally.
func TestRecorderExtend(t *testing.T) {
	p := rdg.RandomProgram(7)
	n := uint64(len(liveSteps(t, p)))

	rec := trace.NewRecorder(p)
	var st emu.Step
	for i := uint64(0); i < n/4; i++ {
		if err := rec.StepInto(&st); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Extend(16); err != nil {
		t.Fatal(err)
	}
	if got := rec.Steps(); got != n/4+16 {
		t.Fatalf("after Extend(16): %d steps, want %d", got, n/4+16)
	}
	if err := rec.Extend(stepBudget); err != nil {
		t.Fatal(err)
	}
	if got := rec.Steps(); got != n {
		t.Fatalf("Extend past HALT recorded %d steps, live stream has %d", got, n)
	}
	if !rec.Halted() {
		t.Fatal("recorder not halted after extending to HALT")
	}
	if tr := rec.Finalize(123); tr.Window != 123 || !tr.Halted || tr.Steps != n {
		t.Fatalf("finalized trace header wrong: %+v", tr.Meta())
	}
}

func TestReplayerRejectsWrongProgram(t *testing.T) {
	tr := recordToHalt(t, rdg.RandomProgram(1))
	if _, err := trace.NewReplayer(tr, rdg.RandomProgram(2)); err == nil {
		t.Fatal("replayer accepted a different program")
	}
}

func TestReplayerCloneIndependence(t *testing.T) {
	p := rdg.RandomProgram(9)
	want := liveSteps(t, p)
	tr := recordToHalt(t, p)
	rep, err := trace.NewReplayer(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	var st emu.Step
	const split = 10
	for i := 0; i < split; i++ {
		if err := rep.StepInto(&st); err != nil {
			t.Fatal(err)
		}
	}
	cl, ok := core.Oracle(rep).(core.CloneableOracle)
	if !ok {
		t.Fatal("Replayer must be cloneable (checkpointing depends on it)")
	}
	fork := cl.CloneOracle()
	// Drain the fork first, then the original: identical remainders.
	for _, r := range []core.Oracle{fork, rep} {
		for i := split; i < len(want); i++ {
			if err := r.StepInto(&st); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if !reflect.DeepEqual(st, want[i]) {
				t.Fatalf("step %d differs after clone:\n got: %+v\nwant: %+v", i, st, want[i])
			}
		}
		if !r.Halted() {
			t.Fatal("cursor not halted at end of stream")
		}
	}
}

// TestRecorderIsNotCloneable: cloning a recording oracle would let two
// machines append to one buffer; the type must opt out so checkpointing
// fails gracefully instead.
func TestRecorderIsNotCloneable(t *testing.T) {
	var o core.Oracle = trace.NewRecorder(rdg.RandomProgram(1))
	if _, ok := o.(core.CloneableOracle); ok {
		t.Fatal("Recorder must not implement CloneableOracle")
	}
}

// TestDecodeRejectsEveryBitFlip drives the loud-failure rule to its
// strongest form: flipping any single byte of an encoded trace must make
// Decode fail. Nothing in the file is outside the checksum.
func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	enc := recordToHalt(t, rdg.RandomProgram(1)).Encode()
	if _, err := trace.Decode(enc); err != nil {
		t.Fatalf("pristine trace failed decode: %v", err)
	}
	mut := make([]byte, len(enc))
	for i := range enc {
		copy(mut, enc)
		mut[i] ^= 0x41
		if _, err := trace.Decode(mut); err == nil {
			t.Fatalf("byte flip at offset %d of %d decoded silently", i, len(enc))
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := recordToHalt(t, rdg.RandomProgram(1)).Encode()
	for _, n := range []int{0, 3, 5, 6, 20, 40, len(enc) / 2, len(enc) - 1} {
		if _, err := trace.Decode(enc[:n]); err == nil {
			t.Fatalf("trace truncated to %d of %d bytes decoded silently", n, len(enc))
		}
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	enc := recordToHalt(t, rdg.RandomProgram(1)).Encode()
	mut := make([]byte, len(enc))
	copy(mut, enc)
	mut[5] = trace.FormatVersion + 1 // version byte follows the 5-byte magic
	_, err := trace.Decode(mut)
	if err == nil {
		t.Fatal("future-version trace decoded silently")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew reported as %q, want an explicit version error", err)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	enc := recordToHalt(t, rdg.RandomProgram(1)).Encode()
	mut := make([]byte, len(enc))
	copy(mut, enc)
	copy(mut, "NOTTR")
	if _, err := trace.Decode(mut); err == nil {
		t.Fatal("non-trace bytes decoded silently")
	}
}

// reencode rebuilds a valid encoding from tampered header fields with a
// correct checksum — corruption the checksum cannot catch, which the
// stream walk (Validate / replay) must.
func reencode(t *testing.T, tr *trace.Trace, steps uint64, halted bool, payload []byte) []byte {
	t.Helper()
	pd, err := hex.DecodeString(tr.ProgramDigest)
	if err != nil {
		t.Fatal(err)
	}
	out := []byte("DCATR")
	out = append(out, trace.FormatVersion)
	out = append(out, pd...)
	out = binary.AppendUvarint(out, uint64(tr.Entry))
	out = binary.AppendUvarint(out, tr.Window)
	out = binary.AppendUvarint(out, steps)
	if halted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.AppendUvarint(out, uint64(len(payload)))
	h := sha256.New()
	h.Write(out)
	h.Write(payload)
	out = h.Sum(out)
	return append(out, payload...)
}

// TestValidateCatchesInconsistentStreams covers the well-formedness
// checks beyond byte integrity: a checksummed file whose header
// disagrees with its stream must still fail validation.
func TestValidateCatchesInconsistentStreams(t *testing.T) {
	p := rdg.RandomProgram(1)
	tr := recordToHalt(t, p)
	enc := tr.Encode()
	payload := enc[len(enc)-tr.Meta().PayloadBytes:]

	cases := []struct {
		name    string
		steps   uint64
		halted  bool
		payload []byte
	}{
		{"trailing payload byte", tr.Steps, tr.Halted, append(append([]byte(nil), payload...), 0)},
		{"steps beyond stream", tr.Steps + 1, tr.Halted, payload},
		{"understated steps", tr.Steps - 1, tr.Halted, payload},
		{"halted flag lies", tr.Steps, false, payload},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := trace.Decode(reencode(t, tr, c.steps, c.halted, c.payload))
			if err != nil {
				t.Fatalf("decode should pass (bytes are checksummed): %v", err)
			}
			if err := got.Validate(p); err == nil {
				t.Fatal("inconsistent stream validated silently")
			}
		})
	}
}

// TestEncodeStepsRejectsForeignStream: the encoder cross-checks every
// derivable field, so a stream the program cannot have produced is
// rejected at encode time (the convert path's safety).
func TestEncodeStepsRejectsForeignStream(t *testing.T) {
	p := rdg.RandomProgram(7)
	steps := liveSteps(t, p)

	if _, err := trace.EncodeSteps(p, 0, steps); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
	tamper := func(name string, f func([]emu.Step)) {
		t.Run(name, func(t *testing.T) {
			mut := append([]emu.Step(nil), steps...)
			f(mut)
			if _, err := trace.EncodeSteps(p, 0, mut); err == nil {
				t.Fatal("tampered stream encoded silently")
			}
		})
	}
	tamper("wrong seq", func(s []emu.Step) { s[3].Seq++ })
	tamper("wrong pc", func(s []emu.Step) { s[3].PC = s[4].PC })
	tamper("wrong inst", func(s []emu.Step) { s[3].Inst.Imm++ })
	tamper("broken pc chain", func(s []emu.Step) { s[3].NextPC = s[3].PC })
	tamper("dropped writeback", func(s []emu.Step) {
		for i := range s {
			if s[i].WroteReg {
				s[i].WroteReg = false
				return
			}
		}
	})
	tamper("stream against wrong program", func(s []emu.Step) {
		other := liveSteps(t, rdg.RandomProgram(8))
		copy(s, other)
	})
}
