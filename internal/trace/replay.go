package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Sentinel errors of the replay hot path. They are package-level values —
// never constructed per occurrence — so StepInto stays allocation-free
// (the //dca:hotpath noalloc contract).
var (
	// errReplayAfterHalt reports a StepInto call after the stream's HALT
	// was served; a correct consumer checks Halted first, as the fetch
	// stage does.
	errReplayAfterHalt = errors.New("trace: replay stepped past HALT")
	// errTruncatedPayload reports a payload that ended mid-step. Decode's
	// checksum makes this unreachable for traces this package encoded;
	// it guards hand-converted streams.
	errTruncatedPayload = errors.New("trace: payload truncated mid-step")
	// errBadNextPC reports a decoded jump target outside the program.
	errBadNextPC = errors.New("trace: replayed jump target outside program text")
)

// Replayer serves a recorded stream through the core.Oracle interface.
// It decodes the payload incrementally — a few varint reads per step,
// no allocation — reconstructing every Step field the encoder elided
// from the program text: the replay path runs inside the timing core's
// 0-alloc cycle loop (TestSteadyStateCycleAllocs covers a replaying
// machine).
//
// A Replayer is single-consumer; CloneOracle forks an independent cursor
// over the shared immutable payload, which is what lets a warm-state
// checkpoint (core.Checkpoint) snapshot a replaying machine.
type Replayer struct {
	prog    *prog.Program
	payload []byte
	pos     int
	idx     uint64 // steps served
	n       uint64 // total steps in the stream
	pc      int
	halted  bool
	// Delta-decoder state, mirroring the encoder's.
	prevAddr uint64
	prevVal  int64
}

// NewReplayer returns an oracle serving t's stream. The program must be
// the one the trace was recorded from — identity is checked by digest,
// not trusted from the caller.
func NewReplayer(t *Trace, p *prog.Program) (*Replayer, error) {
	if d := p.Digest(); d != t.ProgramDigest {
		return nil, fmt.Errorf("trace: recorded for program %.12s…, cannot replay against %q (%.12s…)",
			t.ProgramDigest, p.Name, d)
	}
	if t.Entry != p.Entry {
		return nil, fmt.Errorf("trace: entry %d disagrees with program entry %d", t.Entry, p.Entry)
	}
	if t.Entry < 0 || t.Entry >= len(p.Text) {
		return nil, fmt.Errorf("trace: entry %d outside program text [0,%d)", t.Entry, len(p.Text))
	}
	return &Replayer{prog: p, payload: t.payload, pc: t.Entry, n: t.Steps}, nil
}

// uvarint reads one varint field, reporting failure instead of
// allocating an error (the caller maps it to errTruncatedPayload).
//
//dca:hotpath
func (r *Replayer) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.payload[r.pos:])
	if n <= 0 {
		return 0, false
	}
	r.pos += n
	return v, true
}

// StepInto implements core.Oracle: reconstruct the next recorded step.
// The Step it produces is bit-identical to what the live emulator
// reported at recording time (FuzzTraceReplay and the golden grids lock
// this end to end).
//
//dca:hotpath
func (r *Replayer) StepInto(st *emu.Step) error {
	if r.halted {
		return errReplayAfterHalt
	}
	if r.idx >= r.n {
		return core.ErrOracleExhausted
	}
	pc := r.pc
	in := r.prog.Text[pc]
	*st = emu.Step{}
	st.Seq = r.idx
	st.PC = pc
	st.Inst = in
	next := pc + 1
	op := in.Op
	switch {
	case op == isa.HALT:
		r.halted = true
		next = pc
	case op.IsCondBranch():
		if r.pos >= len(r.payload) {
			return errTruncatedPayload
		}
		taken := r.payload[r.pos]
		r.pos++
		if taken != 0 {
			st.Taken = true
			next = int(in.Imm)
		}
	case op == isa.J:
		st.Taken = true
		next = int(in.Imm)
	case op == isa.JAL:
		st.Taken = true
		next = int(in.Imm)
		if writesReg(in.Rd) {
			st.WroteReg, st.Value = true, int64(pc+1)
		}
	case op == isa.JR || op == isa.JALR:
		st.Taken = true
		d, ok := r.uvarint()
		if !ok {
			return errTruncatedPayload
		}
		next = pc + 1 + int(unzigzag(d))
		if op == isa.JALR && writesReg(in.Rd) {
			st.WroteReg, st.Value = true, int64(pc+1)
		}
	case op.IsLoad():
		d, ok := r.uvarint()
		if !ok {
			return errTruncatedPayload
		}
		r.prevAddr += uint64(unzigzag(d))
		st.MemAddr = r.prevAddr
		if writesReg(in.Rd) {
			v, ok := r.uvarint()
			if !ok {
				return errTruncatedPayload
			}
			r.prevVal += unzigzag(v)
			st.WroteReg, st.Value = true, r.prevVal
		}
	case op.IsStore():
		d, ok := r.uvarint()
		if !ok {
			return errTruncatedPayload
		}
		r.prevAddr += uint64(unzigzag(d))
		st.MemAddr = r.prevAddr
	case op != isa.NOP:
		// Value-producing ALU / FP operation.
		if writesReg(in.Rd) {
			v, ok := r.uvarint()
			if !ok {
				return errTruncatedPayload
			}
			r.prevVal += unzigzag(v)
			st.WroteReg, st.Value = true, r.prevVal
		}
	}
	st.NextPC = next
	if !r.halted {
		if next < 0 || next >= len(r.prog.Text) {
			return errBadNextPC
		}
		r.pc = next
	}
	r.idx++
	return nil
}

// PC implements core.Oracle. A negative value means the stream is
// exhausted without a HALT — the fetch stage fails the run loudly on it
// before touching any cache state.
//
//dca:hotpath
func (r *Replayer) PC() int {
	if !r.halted && r.idx >= r.n {
		return -1
	}
	return r.pc
}

// Halted implements core.Oracle.
//
//dca:hotpath
func (r *Replayer) Halted() bool { return r.halted }

// Steps returns the number of steps served so far.
func (r *Replayer) Steps() uint64 { return r.idx }

// CloneOracle implements core.CloneableOracle: an independent cursor
// over the shared, immutable payload.
func (r *Replayer) CloneOracle() core.Oracle {
	c := *r
	return &c
}

// Validate walks t's entire stream against p, verifying that every step
// decodes, every jump target lands in the program, the payload has no
// trailing bytes and the halted flag matches the stream. Decode already
// guarantees byte integrity (checksums); Validate additionally proves
// the bytes are a well-formed stream — cmd/dcatrace runs it on ingest so
// converted traces fail at the door, not mid-grid.
func (t *Trace) Validate(p *prog.Program) error {
	r, err := NewReplayer(t, p)
	if err != nil {
		return err
	}
	var st emu.Step
	for i := uint64(0); i < t.Steps; i++ {
		if err := r.StepInto(&st); err != nil {
			return fmt.Errorf("trace: step %d of %d: %w", i, t.Steps, err)
		}
	}
	if r.pos != len(t.payload) {
		return fmt.Errorf("trace: %d trailing payload bytes after final step", len(t.payload)-r.pos)
	}
	if r.halted != t.Halted {
		return fmt.Errorf("trace: header halted=%v but stream halted=%v", t.Halted, r.halted)
	}
	return nil
}

// DecodeSteps decodes the full stream into Steps (cmd/dcatrace dump and
// convert round-trips; grids replay incrementally instead).
func (t *Trace) DecodeSteps(p *prog.Program) ([]emu.Step, error) {
	r, err := NewReplayer(t, p)
	if err != nil {
		return nil, err
	}
	out := make([]emu.Step, t.Steps)
	for i := range out {
		if err := r.StepInto(&out[i]); err != nil {
			return nil, fmt.Errorf("trace: step %d of %d: %w", i, t.Steps, err)
		}
	}
	if r.pos != len(t.payload) {
		return nil, fmt.Errorf("trace: %d trailing payload bytes after final step", len(t.payload)-r.pos)
	}
	return out, nil
}
