// Package trace is the record-once / replay-many layer for the timing
// core's oracle stream. The stream the core fetches (internal/emu Steps)
// is purely architectural — it depends only on the program and the
// instruction budget, never on the steering scheme or cluster
// configuration — so one recording serves every cell of an evaluation
// grid. The package defines:
//
//   - a compact, versioned, content-addressed binary format for Step
//     streams (Trace, Encode, Decode). Nearly every Step field is
//     derivable from the program text — PC chains through NextPC, Seq
//     counts from zero, taken-branch targets sit in the instruction —
//     so the payload stores only the irreducible remainder,
//     opcode-conditionally: one byte per conditional branch outcome, a
//     zigzag-varint delta per indirect-jump target, memory address and
//     register writeback value. Dense integer workloads encode in a few
//     bytes per instruction instead of sizeof(Step).
//   - a Recorder that wraps a live functional emulator and captures the
//     stream it serves, and a Replayer that serves a recorded stream
//     back. Both satisfy the core.Oracle interface; the replay path is
//     allocation-free (//dca:hotpath) so it stays inside the cycle
//     loop's 0-alloc budget.
//
// Integrity rules (DESIGN.md, "Trace format"): the header carries the
// program digest (prog.Program.Digest), the recording window, the format
// version and a SHA-256 over the whole file. Decode verifies all of them —
// a truncated, corrupted or version-skewed trace fails loudly at decode
// time, and a trace that ends before its consumer is done fails the run
// (core.ErrOracleExhausted) rather than producing a silently short
// measurement.
package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/prog"
)

// FormatVersion is the current trace format version. Bump it on any
// change to the header layout or the per-step encoding; Decode rejects
// every other version (replaying bytes under the wrong decoder would be
// a silent-corruption engine, exactly what the digest rules forbid).
const FormatVersion = 1

// magic identifies a trace file.
var magic = [5]byte{'D', 'C', 'A', 'T', 'R'}

// Trace is a decoded-in-memory recorded oracle stream: the identity
// fields of the header plus the still-encoded payload (steps are decoded
// lazily, by a Replayer). Meta is the JSON face of the same header for
// tooling (cmd/dcatrace).
type Trace struct {
	// ProgramDigest is the hex SHA-256 identity of the recorded program
	// (prog.Program.Digest); a Replayer refuses any other program.
	ProgramDigest string
	// Entry is the program's entry instruction index (the first PC).
	Entry int
	// Window is the committed-instruction budget the recording was made
	// for (0 = recorded to HALT). Steps may exceed it: recordings carry
	// slack because the fetch stage runs ahead of commit.
	Window uint64
	// Steps is the number of instructions in the stream.
	Steps uint64
	// Halted reports whether the stream ends with the program's HALT.
	Halted bool

	payload []byte
}

// Meta is the trace header rendered as plain data, for the JSON output
// of cmd/dcatrace (info, dump, convert).
type Meta struct {
	FormatVersion int    `json:"format_version"`
	Digest        string `json:"digest"`
	ProgramDigest string `json:"program_digest"`
	Entry         int    `json:"entry"`
	Window        uint64 `json:"window"`
	Steps         uint64 `json:"steps"`
	Halted        bool   `json:"halted"`
	PayloadBytes  int    `json:"payload_bytes"`
}

// Meta returns the trace's header as plain data.
func (t *Trace) Meta() Meta {
	return Meta{
		FormatVersion: FormatVersion,
		Digest:        t.Digest(),
		ProgramDigest: t.ProgramDigest,
		Entry:         t.Entry,
		Window:        t.Window,
		Steps:         t.Steps,
		Halted:        t.Halted,
		PayloadBytes:  len(t.payload),
	}
}

// Encode renders the trace in the versioned binary format.
func (t *Trace) Encode() []byte {
	pd, err := hex.DecodeString(t.ProgramDigest)
	if err != nil || len(pd) != sha256.Size {
		// A Trace is only built by this package from a prog.Digest; a
		// malformed digest means memory corruption, not bad input.
		panic(fmt.Sprintf("trace: malformed program digest %q", t.ProgramDigest))
	}
	out := make([]byte, 0, len(magic)+1+2*sha256.Size+len(t.payload)+5*binary.MaxVarintLen64)
	out = append(out, magic[:]...)
	out = append(out, FormatVersion)
	out = append(out, pd...)
	out = binary.AppendUvarint(out, uint64(t.Entry))
	out = binary.AppendUvarint(out, t.Window)
	out = binary.AppendUvarint(out, t.Steps)
	if t.Halted {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.AppendUvarint(out, uint64(len(t.payload)))
	// The checksum covers everything but itself — header fields included,
	// so a bit flip anywhere in the file fails Decode, not just one in
	// the payload.
	h := sha256.New()
	h.Write(out)
	h.Write(t.payload)
	out = h.Sum(out)
	out = append(out, t.payload...)
	return out
}

// Digest returns the hex SHA-256 of the encoded trace — the content
// address cmd/dcatrace names files by and the identity the smoke tests
// compare. Traces of the same program and window encode identically, so
// the digest doubles as an equality check for the whole stream.
func (t *Trace) Digest() string {
	sum := sha256.Sum256(t.Encode())
	return hex.EncodeToString(sum[:])
}

// Key returns the content address a recording for (program, window) is
// stored under before it exists: the hex SHA-256 of the program digest,
// the window and the format version. job.Traced looks encoded traces up
// by this key; the format version is included so a format bump can never
// resurrect stale bytes.
func Key(programDigest string, window uint64) string {
	h := sha256.New()
	h.Write([]byte("dcatrace\x00"))
	h.Write([]byte(programDigest))
	var n [9]byte
	n[0] = FormatVersion
	binary.LittleEndian.PutUint64(n[1:], window)
	h.Write(n[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Decode parses and verifies an encoded trace: magic, format version,
// header shape, payload length and the whole-file checksum. Every failure
// is loud — a truncated or bit-flipped file, anywhere, can never decode
// into a shortened or altered stream.
func Decode(raw []byte) (*Trace, error) {
	if len(raw) < len(magic)+1 {
		return nil, fmt.Errorf("trace: truncated header: %d bytes", len(raw))
	}
	if !bytes.Equal(raw[:len(magic)], magic[:]) {
		return nil, errors.New("trace: bad magic (not a dcatrace file)")
	}
	if v := raw[len(magic)]; v != FormatVersion {
		return nil, fmt.Errorf("trace: format version %d, this build reads only %d", v, FormatVersion)
	}
	rest := raw[len(magic)+1:]
	if len(rest) < sha256.Size {
		return nil, errors.New("trace: truncated program digest")
	}
	t := &Trace{ProgramDigest: hex.EncodeToString(rest[:sha256.Size])}
	rest = rest[sha256.Size:]

	next := func(field string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated header field %s", field)
		}
		rest = rest[n:]
		return v, nil
	}
	entry, err := next("entry")
	if err != nil {
		return nil, err
	}
	t.Entry = int(entry)
	if t.Window, err = next("window"); err != nil {
		return nil, err
	}
	if t.Steps, err = next("steps"); err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, errors.New("trace: truncated halted flag")
	}
	switch rest[0] {
	case 0:
		t.Halted = false
	case 1:
		t.Halted = true
	default:
		return nil, fmt.Errorf("trace: malformed halted flag %d", rest[0])
	}
	rest = rest[1:]
	plen, err := next("payload length")
	if err != nil {
		return nil, err
	}
	headerEnd := len(raw) - len(rest)
	if len(rest) < sha256.Size {
		return nil, errors.New("trace: truncated checksum")
	}
	var wantSum [sha256.Size]byte
	copy(wantSum[:], rest[:sha256.Size])
	rest = rest[sha256.Size:]
	if uint64(len(rest)) != plen {
		return nil, fmt.Errorf("trace: payload is %d bytes, header says %d", len(rest), plen)
	}
	h := sha256.New()
	h.Write(raw[:headerEnd])
	h.Write(rest)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	if sum != wantSum {
		return nil, errors.New("trace: checksum mismatch (corrupted trace)")
	}
	t.payload = rest
	return t, nil
}

// zigzag maps a signed delta onto an unsigned varint-friendly value
// (small magnitudes of either sign encode in few bytes).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// writesReg mirrors the functional emulator's write helper: a
// value-producing instruction records a register result exactly when its
// destination is a real, writable register.
func writesReg(rd isa.Reg) bool {
	return rd != isa.NoReg && !rd.IsZero() && rd.Valid()
}

// encoder appends Steps to a payload, tracking the decoder's state so
// only non-derivable fields are stored. add verifies every derivable
// field against the program — a stream that disagrees with the program
// (a mismatched convert input, a buggy producer) is rejected instead of
// encoded into a trace that would replay something else.
type encoder struct {
	p        *prog.Program
	buf      []byte
	steps    uint64
	pc       int // expected PC of the next step
	halted   bool
	prevAddr uint64
	prevVal  int64
}

func newEncoder(p *prog.Program) *encoder {
	return &encoder{p: p, pc: p.Entry}
}

// add appends one step.
func (e *encoder) add(st *emu.Step) error {
	if e.halted {
		return errors.New("trace: step after HALT")
	}
	if st.PC != e.pc {
		return fmt.Errorf("trace: step %d at PC %d, stream context requires %d", st.Seq, st.PC, e.pc)
	}
	if st.Seq != e.steps {
		return fmt.Errorf("trace: step at PC %d carries Seq %d, stream position is %d", st.PC, st.Seq, e.steps)
	}
	if st.PC < 0 || st.PC >= len(e.p.Text) {
		return fmt.Errorf("trace: step PC %d outside program text [0,%d)", st.PC, len(e.p.Text))
	}
	in := e.p.Text[st.PC]
	if st.Inst != in {
		return fmt.Errorf("trace: step %d at PC %d carries %v, program text has %v", st.Seq, st.PC, st.Inst, in)
	}

	op := in.Op
	wantNext := st.PC + 1
	switch {
	case op == isa.HALT:
		e.halted = true
		wantNext = st.PC
	case op.IsCondBranch():
		if st.Taken {
			e.buf = append(e.buf, 1)
			wantNext = int(in.Imm)
		} else {
			e.buf = append(e.buf, 0)
		}
	case op == isa.J || op == isa.JAL:
		wantNext = int(in.Imm)
	case op == isa.JR || op == isa.JALR:
		e.buf = binary.AppendUvarint(e.buf, zigzag(int64(st.NextPC)-int64(st.PC+1)))
		wantNext = st.NextPC
	case op.IsLoad():
		e.buf = binary.AppendUvarint(e.buf, zigzag(int64(st.MemAddr-e.prevAddr)))
		e.prevAddr = st.MemAddr
		if writesReg(in.Rd) {
			e.buf = binary.AppendUvarint(e.buf, zigzag(st.Value-e.prevVal))
			e.prevVal = st.Value
		}
	case op.IsStore():
		e.buf = binary.AppendUvarint(e.buf, zigzag(int64(st.MemAddr-e.prevAddr)))
		e.prevAddr = st.MemAddr
	case op != isa.NOP:
		// Value-producing ALU / FP operation.
		if writesReg(in.Rd) {
			e.buf = binary.AppendUvarint(e.buf, zigzag(st.Value-e.prevVal))
			e.prevVal = st.Value
		}
	}
	if st.NextPC != wantNext {
		return fmt.Errorf("trace: step %d (%v at PC %d) reports NextPC %d, semantics require %d",
			st.Seq, op, st.PC, st.NextPC, wantNext)
	}
	// Cross-check the derivable writeback fields so convert inputs that
	// disagree with the program are rejected rather than re-derived.
	wantWrote := false
	var wantVal int64
	switch {
	case op == isa.JAL || op == isa.JALR:
		wantWrote = writesReg(in.Rd)
		wantVal = int64(st.PC + 1)
	case op.IsLoad() || (!op.IsBranch() && !op.IsStore() && op != isa.NOP && op != isa.HALT):
		wantWrote = writesReg(in.Rd)
		wantVal = st.Value
	}
	if st.WroteReg != wantWrote || (wantWrote && st.Value != wantVal) {
		return fmt.Errorf("trace: step %d (%v at PC %d) writeback (%v,%d) disagrees with program semantics (%v,%d)",
			st.Seq, op, st.PC, st.WroteReg, st.Value, wantWrote, wantVal)
	}

	e.steps++
	e.pc = wantNext
	return nil
}

// finish freezes the accumulated stream into a Trace for the given
// recording window.
func (e *encoder) finish(window uint64) *Trace {
	return &Trace{
		ProgramDigest: e.p.Digest(),
		Entry:         e.p.Entry,
		Window:        window,
		Steps:         e.steps,
		Halted:        e.halted,
		payload:       e.buf,
	}
}

// EncodeSteps builds a trace from an externally captured step stream
// (cmd/dcatrace convert). Every step is verified against p's semantics;
// a stream the program cannot have produced is rejected.
func EncodeSteps(p *prog.Program, window uint64, steps []emu.Step) (*Trace, error) {
	e := newEncoder(p)
	for i := range steps {
		if err := e.add(&steps[i]); err != nil {
			return nil, err
		}
	}
	return e.finish(window), nil
}
