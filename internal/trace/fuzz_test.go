package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rdg"
	"repro/internal/steer"
	"repro/internal/trace"
)

// fuzzConfigs mirrors the core co-simulation matrix: the paper's
// two-cluster machines plus N-cluster crossbar/ring fabrics, so the
// replay path is exercised under every fetch-runahead profile (the
// stream a machine consumes depends on how far its front end runs
// ahead, which depends on the configuration).
func fuzzConfigs() []*config.Config {
	return []*config.Config{
		config.Clustered(),
		config.Base(),
		config.UpperBound(),
		config.FIFOClustered(),
		config.Symmetric(),
		config.ClusteredN(4),
		config.ClusteredNRing(4),
		config.ClusteredN(8),
	}
}

// FuzzTraceReplay is the native fuzz target over the trace layer's two
// load-bearing properties:
//
//  1. record-then-replay transparency — a timing machine fetching from a
//     Replayer produces the same full-run statistics as one fetching the
//     live functional emulator, for random programs, machine
//     configurations and measurement windows;
//  2. byte stability — encode→decode→encode is the identity on the
//     trace's bytes, so Trace.Digest is a well-defined content address.
//
// The checked-in corpus (testdata/fuzz/FuzzTraceReplay) pins program
// seeds with dense load/store aliasing and FP chains (the step shapes
// with the most non-derivable payload) across two-cluster, ring and
// 8-cluster machines, with windows that both cover the program and cut
// it short. CI runs a fixed-budget smoke (`go test -fuzz FuzzTraceReplay`).
func FuzzTraceReplay(f *testing.F) {
	for _, c := range []struct {
		seed    int64
		cfgIdx  uint8
		measure uint16
	}{
		{7, 0, 0}, {7, 6, 500}, {9, 3, 0}, {9, 7, 200},
		{19, 0, 1000}, {23, 5, 0}, {31, 4, 100}, {1, 1, 0}, {13, 2, 50},
	} {
		f.Add(c.seed, c.cfgIdx, c.measure)
	}
	configs := fuzzConfigs()
	f.Fuzz(func(t *testing.T, seed int64, cfgIdx uint8, measure uint16) {
		cfg := configs[int(cfgIdx)%len(configs)]
		p := rdg.RandomProgram(seed)
		newSteerer := func() core.Steerer {
			// The machines without steering freedom take the conventional
			// split; the rest the general policy at the machine's width.
			if cfg.Name == "base" || cfg.Name == "upper-bound" {
				return core.NaiveSteerer{}
			}
			params := steer.DefaultParams()
			params.Clusters = cfg.NumClusters()
			st, err := steer.NewWithParams("general", p, params)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		// A measurement window below the program's length exercises the
		// slack margin: the recording machine stops mid-program and Extend
		// must cover any same-window consumer's fetch runahead.
		warmup := uint64(measure) / 4
		run := func(o core.Oracle) string {
			var m *core.Machine
			var err error
			if o == nil {
				m, err = core.New(cfg, p, newSteerer())
			} else {
				m, err = core.NewWithOracle(cfg, p, newSteerer(), o)
			}
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, cfg.Name, err)
			}
			r, err := m.RunWithWarmup(warmup, uint64(measure))
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, cfg.Name, err)
			}
			return runDigest(t, r)
		}

		want := run(nil)

		rec := trace.NewRecorder(p)
		if got := run(rec); got != want {
			t.Fatalf("seed %d/%s: recording machine diverged from live", seed, cfg.Name)
		}
		if err := rec.Extend(4096); err != nil {
			t.Fatalf("seed %d/%s: extend: %v", seed, cfg.Name, err)
		}
		tr := rec.Finalize(uint64(measure))

		enc := tr.Encode()
		tr2, err := trace.Decode(enc)
		if err != nil {
			t.Fatalf("seed %d/%s: decode: %v", seed, cfg.Name, err)
		}
		if !bytes.Equal(enc, tr2.Encode()) {
			t.Fatalf("seed %d/%s: encode→decode→encode not byte-stable", seed, cfg.Name)
		}
		if err := tr2.Validate(p); err != nil {
			t.Fatalf("seed %d/%s: validate: %v", seed, cfg.Name, err)
		}

		rep, err := trace.NewReplayer(tr2, p)
		if err != nil {
			t.Fatalf("seed %d/%s: replayer: %v", seed, cfg.Name, err)
		}
		if got := run(rep); got != want {
			t.Fatalf("seed %d/%s: replaying machine diverged from live", seed, cfg.Name)
		}
	})
}
