package trace

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/prog"
)

// Recorder is a recording oracle: a live functional emulator whose
// served stream is simultaneously captured in the trace format. Wire it
// into a timing machine (core.NewWithOracle) and every instruction the
// fetch stage consumes lands in the recording; Extend then appends slack
// past what that machine happened to consume, and Finalize freezes the
// Trace.
//
// A Recorder deliberately does not implement core.CloneableOracle:
// cloning would leave two machines appending to one buffer. A machine
// fetching from a Recorder therefore cannot be checkpointed —
// core.Machine.Checkpoint reports ok=false and callers fall back to an
// unsnapshotted run (see job.Traced).
type Recorder struct {
	m   *emu.Machine
	enc *encoder
	// scratch receives steps during Extend, which records past the
	// consumer's demand and so has no caller-owned Step slot to fill.
	scratch emu.Step
}

// NewRecorder returns a recording oracle over a fresh emulator for p.
// The recording always starts at the program's entry: a trace is a
// from-reset stream (Seq 0, PC at entry), which is what makes it
// shareable across consumers.
func NewRecorder(p *prog.Program) *Recorder {
	return &Recorder{m: emu.New(p), enc: newEncoder(p)}
}

// StepInto implements core.Oracle: execute one instruction, report it,
// and append it to the recording.
func (r *Recorder) StepInto(st *emu.Step) error {
	if err := r.m.StepInto(st); err != nil {
		return err
	}
	// A live emulator cannot produce a stream the encoder rejects — the
	// checks compare the step against the same program semantics the
	// emulator just executed — so an error here is memory corruption.
	if err := r.enc.add(st); err != nil {
		return fmt.Errorf("trace: recorder invariant violated: %w", err)
	}
	return nil
}

// PC implements core.Oracle.
func (r *Recorder) PC() int { return r.m.PC }

// Halted implements core.Oracle.
func (r *Recorder) Halted() bool { return r.m.Halted }

// Steps returns the number of instructions recorded so far.
func (r *Recorder) Steps() uint64 { return r.enc.steps }

// Extend records up to n further instructions (stopping at HALT). The
// timing machine the recording was driven by consumed some
// scheme-dependent number of fetch-ahead instructions; other consumers
// of the trace may run slightly further. Recording a slack margin past
// the leader's demand makes the trace serve any same-window consumer
// (job.Traced sizes the margin; a consumer that still outruns the trace
// fails loudly with core.ErrOracleExhausted and is re-run live).
func (r *Recorder) Extend(n uint64) error {
	for i := uint64(0); i < n && !r.m.Halted; i++ {
		if err := r.StepInto(&r.scratch); err != nil {
			return err
		}
	}
	return nil
}

// Finalize freezes the recording into a Trace for the given window (the
// committed-instruction budget the recording covers; 0 = recorded to
// HALT). The Recorder must not be stepped afterwards.
func (r *Recorder) Finalize(window uint64) *Trace {
	return r.enc.finish(window)
}
