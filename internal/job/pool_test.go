package job

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/stats"
)

// stubRunner returns a synthetic result derived from the job so tests can
// verify positional mapping without simulating.
type stubRunner struct {
	mu    sync.Mutex
	calls int
	fail  map[string]error
}

func (s *stubRunner) Run(_ context.Context, j Job) (*stats.Run, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if err := s.fail[j.Benchmark]; err != nil {
		return nil, err
	}
	return &stats.Run{Scheme: j.Scheme, Benchmark: j.Benchmark, Cycles: j.Measure, Instructions: 1}, nil
}

func testJobs(t *testing.T, benches ...string) []Job {
	t.Helper()
	jobs, err := GridSpec{Schemes: []string{"general"}, Benchmarks: benches, Warmup: 1, Measure: 1}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestRunAllPositional checks runs[i] belongs to jobs[i] at every pool
// size.
func TestRunAllPositional(t *testing.T) {
	jobs := testJobs(t, "go", "gcc", "compress", "li", "perl")
	for _, par := range []int{1, 2, 8} {
		runs, err := RunAll(context.Background(), jobs, PoolOptions{Parallelism: par, Runner: &stubRunner{}})
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range jobs {
			if runs[i] == nil || runs[i].Benchmark != j.Benchmark {
				t.Errorf("par=%d: runs[%d] = %+v, want benchmark %s", par, i, runs[i], j.Benchmark)
			}
		}
	}
}

// TestRunAllFirstError checks the first failure is returned and cancels
// the batch.
func TestRunAllFirstError(t *testing.T) {
	boom := errors.New("boom")
	jobs := testJobs(t, "go", "gcc", "compress", "li", "perl")
	st := &stubRunner{fail: map[string]error{"gcc": boom}}
	if _, err := RunAll(context.Background(), jobs, PoolOptions{Parallelism: 1, Runner: st}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st.calls >= len(jobs) {
		t.Errorf("all %d jobs ran despite the failure", st.calls)
	}
}

// TestRunAllETAGuard checks the first completed job reports no ETA and
// later ones do (when work remains).
func TestRunAllETAGuard(t *testing.T) {
	jobs := testJobs(t, "go", "gcc", "compress", "li")
	var mu sync.Mutex
	var got []Progress
	_, err := RunAll(context.Background(), jobs, PoolOptions{
		Parallelism: 1,
		Runner:      &stubRunner{},
		Progress: func(p Progress) {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("progress called %d times, want %d", len(got), len(jobs))
	}
	if got[0].Remaining != 0 {
		t.Errorf("first Remaining = %v, want 0 (single sample extrapolates garbage)", got[0].Remaining)
	}
	if last := got[len(got)-1]; last.Remaining != 0 {
		t.Errorf("final Remaining = %v, want 0", last.Remaining)
	}
}

// TestWorkers pins the pool-size rule.
func TestWorkers(t *testing.T) {
	for _, tc := range []struct{ par, n, want int }{
		{par: 4, n: 10, want: 4},
		{par: 4, n: 2, want: 2},
		{par: 0, n: 1, want: 1},
	} {
		if got := Workers(tc.par, tc.n); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.par, tc.n, got, tc.want)
		}
	}
	if got := Workers(0, 1<<30); got <= 0 {
		t.Errorf("Workers defaulted to %d", got)
	}
}

// TestDirectContextCancelled checks Direct refuses to start cancelled
// work.
func TestDirectContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j, err := Spec{Scheme: "general", Benchmark: "go", Measure: 1}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Direct{}).Run(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDirectMatchesSpec smoke-checks the executor end to end on a tiny
// job and that distinct windows produce distinct digests.
func TestDirectMatchesSpec(t *testing.T) {
	a, err := Spec{Scheme: "modulo", Benchmark: "go", Warmup: 100, Measure: 1_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Measure = 2_000
	if a.Key() == b.Key() {
		t.Error("different windows share a digest")
	}
	r, err := Direct{}.Run(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != "modulo" || r.Benchmark != "go" || r.Instructions == 0 {
		t.Errorf("unexpected result %+v", r)
	}
}
