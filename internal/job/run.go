package job

import (
	"context"
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Runner executes Jobs. The canonical implementation is Direct (simulate
// in-process); store.Cached wraps any Runner with a content-addressed
// cache and request coalescing, and the experiments engine dispatches
// whole grids through one via RunAll.
type Runner interface {
	Run(ctx context.Context, j Job) (*stats.Run, error)
}

// Direct simulates the job in-process on a fresh core.Machine. Jobs are
// fully independent — each run owns its machine — so Direct is safe for
// concurrent use. The context is checked before the simulation starts;
// a running cell is not interruptible (cells are short: bound them with
// the Measure window, not the context).
type Direct struct{}

// Run executes the job and returns its measurement record.
func (Direct) Run(ctx context.Context, j Job) (*stats.Run, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := workload.Load(j.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	m, err := newMachine(ctx, j, p)
	if err != nil {
		return nil, err
	}
	r, err := m.RunWithWarmup(j.Warmup, j.Measure)
	if err != nil {
		return nil, fmt.Errorf("job: %s/%s: %w", j.Scheme, j.Benchmark, err)
	}
	r.Scheme = j.Scheme
	return r, nil
}
