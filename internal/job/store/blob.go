package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// BlobStore is the byte-blob face of the cache: opaque encoded artifacts
// (recorded oracle traces, internal/trace) keyed by content address, next
// to the JSON results the Store interface serves. Blobs are stored and
// returned verbatim — integrity is the artifact format's job (a trace
// carries its own checksum and fails loudly at decode), the store's job
// is only atomicity and eviction. Implementations must be safe for
// concurrent use.
type BlobStore interface {
	// GetBlob returns the cached bytes for key; the caller owns the
	// returned slice. The bool reports presence; errors are backend
	// failures, never plain misses.
	GetBlob(key string) ([]byte, bool, error)
	// PutBlob caches raw under key, overwriting any previous entry.
	PutBlob(key string, raw []byte) error
}

// blobKey namespaces blob entries inside Memory's LRU so a blob and a
// result under the same content address never collide. Keys are hex
// digests, so ':' cannot occur in a result key.
func blobKey(key string) string { return "blob:" + key }

// GetBlob implements BlobStore. Blobs share the LRU with results: a hot
// trace keeps itself resident exactly like a hot cell.
func (m *Memory) GetBlob(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[blobKey(key)]
	if !ok {
		return nil, false, nil
	}
	m.order.MoveToFront(el)
	raw := el.Value.(*memEntry).raw
	out := make([]byte, len(raw))
	copy(out, raw)
	return out, true, nil
}

// PutBlob implements BlobStore.
func (m *Memory) PutBlob(key string, raw []byte) error {
	cp := make([]byte, len(raw))
	copy(cp, raw)
	m.mu.Lock()
	defer m.mu.Unlock()
	k := blobKey(key)
	if el, ok := m.entries[k]; ok {
		el.Value.(*memEntry).raw = cp
		m.order.MoveToFront(el)
		return nil
	}
	m.entries[k] = m.order.PushFront(&memEntry{key: k, raw: cp})
	if m.max > 0 && m.order.Len() > m.max {
		last := m.order.Back()
		m.order.Remove(last)
		delete(m.entries, last.Value.(*memEntry).key)
	}
	return nil
}

// blobPath maps a key to its file: <key>.trace, so blobs live alongside
// the .json results without ever colliding with them (and Len's *.json
// count stays a result count).
func (d *Disk) blobPath(key string) (string, error) {
	p, err := d.path(key)
	if err != nil {
		return "", err
	}
	return p[:len(p)-len(".json")] + ".trace", nil
}

// GetBlob implements BlobStore.
func (d *Disk) GetBlob(key string) ([]byte, bool, error) {
	p, err := d.blobPath(key)
	if err != nil {
		return nil, false, err
	}
	raw, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return raw, true, nil
}

// PutBlob implements BlobStore with the same atomic temp-file + rename
// protocol as Put: no reader ever observes a truncated blob.
func (d *Disk) PutBlob(key string, raw []byte) error {
	p, err := d.blobPath(key)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// BlobLen reports the number of blobs on disk.
func (d *Disk) BlobLen() int {
	matches, err := filepath.Glob(filepath.Join(d.dir, "*.trace"))
	if err != nil {
		return 0
	}
	return len(matches)
}

// GetBlob implements BlobStore over the tiers: Fast first with promotion
// of Slow hits, exactly like result reads. A tier that does not support
// blobs is skipped (reads fall through, writes go to the tiers that do).
func (t Tiered) GetBlob(key string) ([]byte, bool, error) {
	fast, fastOK := t.Fast.(BlobStore)
	if fastOK {
		if raw, ok, err := fast.GetBlob(key); ok || err != nil {
			return raw, ok, err
		}
	}
	slow, ok := t.Slow.(BlobStore)
	if !ok {
		return nil, false, nil
	}
	raw, found, err := slow.GetBlob(key)
	if !found || err != nil {
		return nil, false, err
	}
	if fastOK {
		_ = fast.PutBlob(key, raw)
	}
	return raw, true, nil
}

// PutBlob implements BlobStore, writing through to every blob-capable
// tier (durable tier first, mirroring Put).
func (t Tiered) PutBlob(key string, raw []byte) error {
	if slow, ok := t.Slow.(BlobStore); ok {
		if err := slow.PutBlob(key, raw); err != nil {
			return err
		}
	}
	if fast, ok := t.Fast.(BlobStore); ok {
		return fast.PutBlob(key, raw)
	}
	return nil
}
