package store

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

func tinyJob(t *testing.T, scheme, bench string) job.Job {
	t.Helper()
	j, err := job.Spec{Scheme: scheme, Benchmark: bench, Warmup: 100, Measure: 1_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func encodeT(t *testing.T, r *stats.Run) string {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// backends returns every Store implementation under test.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewDisk(filepath.Join(t.TempDir(), "slow"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"memory": NewMemory(64),
		"disk":   disk,
		"tiered": Tiered{Fast: NewMemory(64), Slow: slow},
	}
}

// TestStoreHitIsByteIdentical is the cache contract on every backend: a
// cold simulation stored and re-read must decode to a run whose JSON
// encoding — and therefore result digest — is byte-identical to the cold
// run's.
func TestStoreHitIsByteIdentical(t *testing.T) {
	j := tinyJob(t, "general", "compress")
	cold, err := job.Direct{}.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := s.Get(j.Key()); ok || err != nil {
				t.Fatalf("empty store Get = (%v, %v)", ok, err)
			}
			if err := s.Put(j.Key(), cold); err != nil {
				t.Fatal(err)
			}
			hit, ok, err := s.Get(j.Key())
			if err != nil || !ok {
				t.Fatalf("Get after Put = (%v, %v)", ok, err)
			}
			if hit == cold {
				t.Fatal("store returned the cached pointer itself, not a fresh copy")
			}
			if !reflect.DeepEqual(hit, cold) {
				t.Errorf("cache hit differs from cold run:\n hit  %+v\n cold %+v", hit, cold)
			}
			if encodeT(t, hit) != encodeT(t, cold) {
				t.Error("cache hit encoding is not byte-identical to the cold run")
			}
			if job.ResultDigest(hit) != job.ResultDigest(cold) {
				t.Error("cache hit result digest differs from the cold run")
			}
			if s.Len() != 1 {
				t.Errorf("Len = %d, want 1", s.Len())
			}
		})
	}
}

// TestMemoryLRUEviction checks the bound: the least recently used entry
// leaves first.
func TestMemoryLRUEviction(t *testing.T) {
	m := NewMemory(2)
	r := &stats.Run{Cycles: 1}
	for _, k := range []string{"aa", "bb", "cc"} {
		if err := m.Put(k, r); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := m.Get("aa"); ok {
		t.Error("oldest entry survived past the bound")
	}
	if _, ok, _ := m.Get("cc"); !ok {
		t.Error("newest entry evicted")
	}
	// Touch bb, insert dd: cc is now the LRU victim.
	if _, ok, _ := m.Get("bb"); !ok {
		t.Fatal("bb missing")
	}
	if err := m.Put("dd", r); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("bb"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok, _ := m.Get("cc"); ok {
		t.Error("LRU entry survived")
	}
}

// TestDiskRejectsHostileKeys checks a key cannot escape the directory.
func TestDiskRejectsHostileKeys(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "../escape", "a/b", `a\b`, "x.json"} {
		if err := d.Put(k, &stats.Run{}); err == nil {
			t.Errorf("hostile key %q accepted", k)
		}
	}
}

// TestTieredPromotion checks a slow-tier hit is promoted into the fast
// tier.
func TestTieredPromotion(t *testing.T) {
	slow, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fast := NewMemory(4)
	tiered := Tiered{Fast: fast, Slow: slow}
	key := "deadbeef"
	if err := slow.Put(key, &stats.Run{Cycles: 7}); err != nil {
		t.Fatal(err)
	}
	if r, ok, err := tiered.Get(key); !ok || err != nil || r.Cycles != 7 {
		t.Fatalf("tiered Get = (%+v, %v, %v), want the slow-tier entry", r, ok, err)
	}
	if r, ok, _ := fast.Get(key); !ok || r.Cycles != 7 {
		t.Error("slow-tier hit was not promoted intact into the fast tier")
	}

	// The promotion must actually serve future reads: with the slow tier
	// wiped, the tiered Get still hits (straight from the fast tier).
	if err := os.Remove(filepath.Join(slow.dir, key+".json")); err != nil {
		t.Fatal(err)
	}
	if r, ok, err := tiered.Get(key); !ok || err != nil || r.Cycles != 7 {
		t.Errorf("promoted entry not served from the fast tier: (%+v, %v, %v)", r, ok, err)
	}
}

// TestTieredFastMissDecodesFresh checks a Fast-miss/Slow-hit Get returns
// a decoded copy the caller owns: mutating it must not poison either
// tier's stored bytes.
func TestTieredFastMissDecodesFresh(t *testing.T) {
	slow, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := Tiered{Fast: NewMemory(4), Slow: slow}
	key := "cafe01"
	if err := slow.Put(key, &stats.Run{Cycles: 7, Instructions: 3}); err != nil {
		t.Fatal(err)
	}
	first, ok, err := tiered.Get(key) // fast miss, slow hit, promote
	if !ok || err != nil {
		t.Fatalf("Get = (%v, %v)", ok, err)
	}
	first.Cycles = 999 // a rude caller scribbles on its copy
	second, ok, err := tiered.Get(key)
	if !ok || err != nil {
		t.Fatalf("second Get = (%v, %v)", ok, err)
	}
	if second.Cycles != 7 {
		t.Errorf("promoted entry was aliased: second read sees Cycles=%d, want 7", second.Cycles)
	}
}

// TestDiskConcurrentSameKeyWriters is the atomic-write race: N goroutines
// Put the same key at once (exactly what racing dcaserve processes
// sharing a -store directory, or a worker's late upload racing a fresh
// completion, do). Every write must land whole — the final file decodes
// to one of the written values, never a torn or truncated entry — and no
// temp files may leak.
func TestDiskConcurrentSameKeyWriters(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		rounds  = 25
	)
	key := "abc123"
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// In production racing writers carry identical bytes
				// (content-addressed keys, deterministic results); the
				// test writes distinct values to make tearing visible.
				r := &stats.Run{Cycles: uint64(w*rounds + i + 1), Instructions: 1}
				if err := d.Put(key, r); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				// Interleave reads: a Get concurrent with the renames
				// must always see a whole entry.
				if got, ok, err := d.Get(key); err != nil || (ok && got.Instructions != 1) {
					t.Errorf("read during race: (%+v, %v, %v)", got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	got, ok, err := d.Get(key)
	if err != nil || !ok {
		t.Fatalf("final Get = (%v, %v)", ok, err)
	}
	if got.Cycles == 0 || got.Cycles > writers*rounds || got.Instructions != 1 {
		t.Errorf("final entry is not one of the written values: %+v", got)
	}
	if n := d.Len(); n != 1 {
		t.Errorf("store holds %d entries, want 1", n)
	}
	// Atomic writes clean up after themselves: no put-* temp files left.
	leftovers, err := filepath.Glob(filepath.Join(dir, "put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files leaked: %v", leftovers)
	}
}

// TestCachedRunner checks hit/miss accounting and that a warm run never
// re-simulates.
func TestCachedRunner(t *testing.T) {
	var calls int
	counting := runnerFunc(func(ctx context.Context, j job.Job) (*stats.Run, error) {
		calls++
		return job.Direct{}.Run(ctx, j)
	})
	c := NewCached(NewMemory(0), counting)
	j := tinyJob(t, "modulo", "go")

	cold, err := c.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("%d simulations for two identical runs, want 1", calls)
	}
	if encodeT(t, warm) != encodeT(t, cold) {
		t.Error("warm run is not byte-identical to the cold run")
	}
	if m := c.Metrics(); m.Hits != 1 || m.Misses != 1 || m.Coalesced != 0 {
		t.Errorf("metrics = %+v, want 1 hit / 1 miss", m)
	}
}

// runnerFunc adapts a function to job.Runner.
type runnerFunc func(ctx context.Context, j job.Job) (*stats.Run, error)

func (f runnerFunc) Run(ctx context.Context, j job.Job) (*stats.Run, error) { return f(ctx, j) }

// TestCachedCoalescing fires many concurrent submissions of the same job
// and requires exactly one simulation: the rest either coalesce onto the
// in-flight leader or hit the store.
func TestCachedCoalescing(t *testing.T) {
	const parallel = 16
	var mu sync.Mutex
	sims := 0
	slow := runnerFunc(func(ctx context.Context, j job.Job) (*stats.Run, error) {
		mu.Lock()
		sims++
		mu.Unlock()
		return job.Direct{}.Run(ctx, j)
	})
	c := NewCached(NewMemory(0), slow)
	j := tinyJob(t, "general", "go")

	results := make([]*stats.Run, parallel)
	errs := make([]error, parallel)
	var wg sync.WaitGroup
	wg.Add(parallel)
	for i := 0; i < parallel; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Run(context.Background(), j)
		}(i)
	}
	wg.Wait()

	if sims != 1 {
		t.Errorf("%d simulations for %d concurrent identical submissions, want 1", sims, parallel)
	}
	want := encodeT(t, results[0])
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if encodeT(t, results[i]) != want {
			t.Errorf("caller %d got a different result", i)
		}
	}
	m := c.Metrics()
	if m.Misses != 1 {
		t.Errorf("misses = %d, want 1", m.Misses)
	}
	if m.Hits+m.Coalesced != parallel-1 {
		t.Errorf("hits+coalesced = %d, want %d", m.Hits+m.Coalesced, parallel-1)
	}
}

// TestCachedSelfHealsCorruptEntry checks a damaged store entry degrades
// to a miss: the cell re-simulates and the rewrite repairs the cache
// instead of failing that key forever.
func TestCachedSelfHealsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	disk, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCached(disk, nil)
	j := tinyJob(t, "modulo", "go")
	cold, err := c.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, j.Key()+".json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	healed, err := c.Run(context.Background(), j)
	if err != nil {
		t.Fatalf("corrupt entry poisoned the key: %v", err)
	}
	if encodeT(t, healed) != encodeT(t, cold) {
		t.Error("healed result differs from the original")
	}
	if m := c.Metrics(); m.Misses != 2 {
		t.Errorf("misses = %d, want 2 (corrupt entry must re-simulate)", m.Misses)
	}
	// The rewrite repaired the entry: the next run is a clean hit.
	if _, outcome, err := c.RunWithOutcome(context.Background(), j); err != nil || outcome != OutcomeHit {
		t.Errorf("after healing: outcome = %v, err = %v, want a hit", outcome, err)
	}
}

// TestCachedErrorNotCached checks failures are not stored: the next
// submission retries.
func TestCachedErrorNotCached(t *testing.T) {
	boom := errors.New("boom")
	fails := 1
	flaky := runnerFunc(func(ctx context.Context, j job.Job) (*stats.Run, error) {
		if fails > 0 {
			fails--
			return nil, boom
		}
		return job.Direct{}.Run(ctx, j)
	})
	c := NewCached(NewMemory(0), flaky)
	j := tinyJob(t, "modulo", "compress")
	if _, err := c.Run(context.Background(), j); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := c.Run(context.Background(), j); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if m := c.Metrics(); m.Misses != 2 {
		t.Errorf("misses = %d, want 2 (failure must not be cached)", m.Misses)
	}
}
