package store

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/job"
	"repro/internal/stats"
)

// Metrics is a point-in-time snapshot of a Cached runner's traffic.
type Metrics struct {
	// Hits counts runs served from the store; Misses counts runs that
	// reached the underlying Runner (i.e. actual simulations).
	Hits   uint64
	Misses uint64
	// Coalesced counts runs that neither hit the store nor simulated:
	// they arrived while an identical job was in flight and shared its
	// result.
	Coalesced uint64
}

// Cached wraps a job.Runner with a content-addressed Store and request
// coalescing: a Run first consults the store under the job's digest, and
// N concurrent submissions of the same key trigger exactly one
// simulation — the rest wait for the leader and share its result. This is
// the engine behind cmd/dcaserve and any grid run that injects a store.
type Cached struct {
	store  Store
	next   job.Runner
	hits   atomic.Uint64
	misses atomic.Uint64
	coal   atomic.Uint64

	mu       sync.Mutex
	inflight map[string]*call
}

// call is one in-flight simulation; followers wait on done.
type call struct {
	done chan struct{}
	r    *stats.Run
	err  error
}

// NewCached returns a Cached runner over s; next nil means job.Direct{}.
func NewCached(s Store, next job.Runner) *Cached {
	if next == nil {
		next = job.Direct{}
	}
	return &Cached{store: s, next: next, inflight: make(map[string]*call)}
}

// Metrics returns the traffic counters so far.
func (c *Cached) Metrics() Metrics {
	return Metrics{Hits: c.hits.Load(), Misses: c.misses.Load(), Coalesced: c.coal.Load()}
}

// Outcome reports how a RunWithOutcome submission was satisfied. It is
// meaningful only when the returned error is nil.
type Outcome int

const (
	// OutcomeHit means the result was served from the store.
	OutcomeHit Outcome = iota
	// OutcomeSimulated means this call ran the simulation.
	OutcomeSimulated
	// OutcomeCoalesced means an identical submission was already in
	// flight and this call shared its result.
	OutcomeCoalesced
)

// Run implements job.Runner. Results handed to coalesced followers are
// shared — treat them as read-only, as with any cached value.
func (c *Cached) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	r, _, err := c.RunWithOutcome(ctx, j)
	return r, err
}

// RunWithOutcome is Run plus how the submission was satisfied (cmd/dcaserve
// reports it to clients). The mutex guards only the in-flight map — store
// I/O happens outside it, so concurrent submissions never queue behind a
// disk read.
func (c *Cached) RunWithOutcome(ctx context.Context, j job.Job) (*stats.Run, Outcome, error) {
	key := j.Key()
	// A store read error (e.g. a corrupt disk entry) is treated as a
	// miss, not a failure: re-simulating is always possible, and the Put
	// below overwrites the bad entry — the cache self-heals instead of
	// permanently poisoning the key.
	if r, ok, err := c.store.Get(key); err == nil && ok {
		c.hits.Add(1)
		return r, OutcomeHit, nil
	}

	c.mu.Lock()
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-cl.done:
			if cl.err != nil {
				return nil, OutcomeCoalesced, cl.err
			}
			c.coal.Add(1)
			return cl.r, OutcomeCoalesced, nil
		case <-ctx.Done():
			return nil, OutcomeCoalesced, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	finish := func(r *stats.Run, err error) {
		cl.r, cl.err = r, err
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(cl.done)
	}

	// Now that we lead, re-check the store: a previous leader may have
	// finished (Put + deregistered) between our miss above and our
	// registration, and simulating here would redo a cached cell. Any
	// followers attached meanwhile share whatever this finds; read errors
	// again degrade to a miss.
	if r, ok, err := c.store.Get(key); err == nil && ok {
		c.hits.Add(1)
		finish(r, nil)
		return r, OutcomeHit, nil
	}

	// The leader simulates detached from its own caller's context: its
	// result is shared with coalesced followers (and the store), so one
	// caller hanging up must not poison everyone else with its
	// cancellation. Followers still honor their own contexts while
	// waiting, and batch runners gate on the context before dispatching.
	c.misses.Add(1)
	r, err := c.next.Run(context.WithoutCancel(ctx), j)
	if err == nil {
		// Caching is best-effort, like the read path: a full disk or
		// broken backend must not discard a successfully computed result
		// (it only costs the reuse).
		_ = c.store.Put(key, r)
	}
	finish(r, err)
	return r, OutcomeSimulated, err
}
