package store

import "repro/internal/stats"

// Notify wraps a Store so every successful Put also invokes a hook with
// the completed key. It is how the serving layer observes completions
// without owning every write path: the in-process Cached runner and the
// queue's Complete both write the same server store, so a single wrapper
// at the store seam sees synchronous jobs, grid cells and worker uploads
// alike. The hook runs after the entry is readable — a Get issued from
// inside the hook observes the new result.
type Notify struct {
	Store
	// OnPut is called after each successful Put with the stored key.
	// It must be safe for concurrent use and should not block: Put
	// callers (handlers, the queue's Complete) wait for it to return.
	OnPut func(key string)
}

// NewNotify wraps next so onPut fires after every successful Put. A nil
// hook makes the wrapper transparent.
func NewNotify(next Store, onPut func(key string)) *Notify {
	return &Notify{Store: next, OnPut: onPut}
}

// Put implements Store, invoking the hook only when the underlying write
// succeeded — watchers must never be told about a result that is not
// actually readable.
func (n *Notify) Put(key string, r *stats.Run) error {
	if err := n.Store.Put(key, r); err != nil {
		return err
	}
	if n.OnPut != nil {
		n.OnPut(key)
	}
	return nil
}
