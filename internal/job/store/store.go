// Package store is the content-addressed result cache of the run layer:
// simulation results (stats.Run) keyed by job digest (job.Job.Key). Two
// backends — a bounded in-memory LRU and an on-disk JSON directory — are
// composable into a tiered cache, and Cached wraps any job.Runner with a
// store plus request coalescing, so repeated cells across invocations,
// examples and figures are simulated exactly once.
//
// Every backend stores the encoded JSON bytes and decodes a fresh copy on
// Get: a cache hit travels the same encode/decode path as a disk round
// trip, which is what makes the bit-identity guarantee (hit == cold run,
// proven by the experiments golden grid) literal rather than aspirational.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/stats"
)

// Store is a content-addressed result cache. Implementations must be safe
// for concurrent use.
type Store interface {
	// Get returns the cached result for key, decoding a fresh copy the
	// caller owns. The bool reports presence; the error is reserved for
	// backend failures (a corrupt disk entry), never for plain misses.
	// Cached treats read errors as misses and overwrites the entry, so a
	// damaged cache self-heals instead of failing its keys forever.
	Get(key string) (*stats.Run, bool, error)
	// Put caches the result under key, overwriting any previous entry.
	Put(key string, r *stats.Run) error
	// Len returns the number of cached entries.
	Len() int
}

// encode and decode fix the wire format every backend shares.
func encode(r *stats.Run) ([]byte, error) {
	raw, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return raw, nil
}

func decode(raw []byte) (*stats.Run, error) {
	r := new(stats.Run)
	if err := json.Unmarshal(raw, r); err != nil {
		return nil, fmt.Errorf("store: decode: %w", err)
	}
	return r, nil
}

// Memory is a bounded in-memory LRU store.
type Memory struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *memEntry
	entries map[string]*list.Element
}

type memEntry struct {
	key string
	raw []byte
}

// NewMemory returns an LRU store holding at most max entries; max <= 0
// means unbounded.
func NewMemory(max int) *Memory {
	return &Memory{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get implements Store, marking the entry most recently used.
func (m *Memory) Get(key string) (*stats.Run, bool, error) {
	m.mu.Lock()
	el, ok := m.entries[key]
	var raw []byte
	if ok {
		m.order.MoveToFront(el)
		raw = el.Value.(*memEntry).raw
	}
	m.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	r, err := decode(raw)
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

// Put implements Store, evicting the least recently used entry when full.
func (m *Memory) Put(key string, r *stats.Run) error {
	raw, err := encode(r)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		el.Value.(*memEntry).raw = raw
		m.order.MoveToFront(el)
		return nil
	}
	m.entries[key] = m.order.PushFront(&memEntry{key: key, raw: raw})
	if m.max > 0 && m.order.Len() > m.max {
		last := m.order.Back()
		m.order.Remove(last)
		delete(m.entries, last.Value.(*memEntry).key)
	}
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Tiered layers a fast store over a slow one: Get tries Fast first and
// promotes Slow hits into it; Put writes through to both. The standard
// composition is NewMemory(n) over NewDisk(dir) — an LRU of hot cells in
// front of the durable archive.
type Tiered struct {
	Fast Store
	Slow Store
}

// Get implements Store. Promotion is best-effort: a result already read
// correctly from the slow tier is served even when the fast tier cannot
// absorb it.
func (t Tiered) Get(key string) (*stats.Run, bool, error) {
	if r, ok, err := t.Fast.Get(key); ok || err != nil {
		return r, ok, err
	}
	r, ok, err := t.Slow.Get(key)
	if !ok || err != nil {
		return nil, false, err
	}
	_ = t.Fast.Put(key, r)
	return r, true, nil
}

// Put implements Store.
func (t Tiered) Put(key string, r *stats.Run) error {
	if err := t.Slow.Put(key, r); err != nil {
		return err
	}
	return t.Fast.Put(key, r)
}

// Len implements Store, reporting the durable tier's count.
func (t Tiered) Len() int { return t.Slow.Len() }
