package store

import (
	"fmt"
	"testing"

	"repro/internal/stats"
)

// failPut is a Store whose writes always fail — the hook-suppression case.
type failPut struct{ Store }

func (f failPut) Put(string, *stats.Run) error { return fmt.Errorf("disk full") }

// TestNotifyFiresAfterReadable pins the wrapper's ordering contract: the
// hook sees the key only after a Get for it succeeds, and Gets pass
// through untouched.
func TestNotifyFiresAfterReadable(t *testing.T) {
	var fired []string
	var n *Notify
	n = NewNotify(NewMemory(0), func(key string) {
		if _, ok, err := n.Get(key); err != nil || !ok {
			t.Errorf("hook for %s fired before the entry was readable (ok=%v err=%v)", key, ok, err)
		}
		fired = append(fired, key)
	})
	r := &stats.Run{Scheme: "modulo", Benchmark: "go"}
	if err := n.Put("k1", r); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("k2", r); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "k1" || fired[1] != "k2" {
		t.Fatalf("hook calls = %v, want [k1 k2]", fired)
	}
	if got, ok, err := n.Get("k1"); err != nil || !ok || got.Scheme != "modulo" {
		t.Fatalf("Get through wrapper = (%v, %v, %v)", got, ok, err)
	}
}

// TestNotifySuppressedOnFailedPut: a write that never landed must not be
// announced — watchers act on the hook by reading the store.
func TestNotifySuppressedOnFailedPut(t *testing.T) {
	n := NewNotify(failPut{NewMemory(0)}, func(key string) {
		t.Errorf("hook fired for failed Put of %s", key)
	})
	if err := n.Put("k", &stats.Run{}); err == nil {
		t.Fatal("failed Put reported success")
	}
}

// TestNotifyNilHookTransparent: a nil hook must not panic.
func TestNotifyNilHookTransparent(t *testing.T) {
	n := NewNotify(NewMemory(0), nil)
	if err := n.Put("k", &stats.Run{}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := n.Get("k"); !ok {
		t.Fatal("entry not stored through nil-hook wrapper")
	}
}
