package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

func TestMemoryBlobRoundTrip(t *testing.T) {
	m := NewMemory(0)
	if _, ok, err := m.GetBlob("aa"); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	want := []byte{0xde, 0xad, 0xbe, 0xef}
	if err := m.PutBlob("aa", want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := m.GetBlob("aa")
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %x want %x", got, want)
	}
	// The caller owns the returned slice.
	got[0] = 0
	if again, _, _ := m.GetBlob("aa"); !bytes.Equal(again, want) {
		t.Fatal("mutating a returned blob corrupted the store")
	}
}

// TestMemoryBlobKeyspaceSeparation: a blob and a result under the same
// content address must not collide.
func TestMemoryBlobKeyspaceSeparation(t *testing.T) {
	m := NewMemory(0)
	if err := m.Put("aa", &stats.Run{Cycles: 7}); err != nil {
		t.Fatal(err)
	}
	if err := m.PutBlob("aa", []byte("raw")); err != nil {
		t.Fatal(err)
	}
	r, ok, err := m.Get("aa")
	if !ok || err != nil || r.Cycles != 7 {
		t.Fatalf("result clobbered by blob: ok=%v err=%v r=%+v", ok, err, r)
	}
	raw, ok, _ := m.GetBlob("aa")
	if !ok || string(raw) != "raw" {
		t.Fatalf("blob clobbered by result: %q", raw)
	}
	if m.Len() != 2 {
		t.Fatalf("Len=%d, want 2 (one result + one blob)", m.Len())
	}
}

// TestMemoryBlobEviction: blobs participate in the shared LRU.
func TestMemoryBlobEviction(t *testing.T) {
	m := NewMemory(2)
	if err := m.PutBlob("aa", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := m.PutBlob("bb", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.GetBlob("aa"); err != nil { // touch: bb becomes LRU
		t.Fatal(err)
	}
	if err := m.PutBlob("cc", []byte("c")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.GetBlob("bb"); ok {
		t.Fatal("least recently used blob survived eviction")
	}
	if _, ok, _ := m.GetBlob("aa"); !ok {
		t.Fatal("recently used blob evicted")
	}
}

func TestDiskBlobRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.GetBlob("aa"); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	want := []byte("DCATR\x01 pretend trace bytes")
	if err := d.PutBlob("aa", want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.GetBlob("aa")
	if !ok || err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ok=%v err=%v got=%q", ok, err, got)
	}
	if err := d.Put("aa", &stats.Run{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	// Results and blobs live side by side; Len counts results only.
	if d.Len() != 1 || d.BlobLen() != 1 {
		t.Fatalf("Len=%d BlobLen=%d, want 1/1", d.Len(), d.BlobLen())
	}
	if _, err := d.blobPath("../escape"); err == nil {
		t.Fatal("hostile blob key accepted")
	}
}

func TestDiskBlobLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutBlob("aa", []byte("x")); err != nil {
		t.Fatal(err)
	}
	tmp, err := filepath.Glob(filepath.Join(dir, "put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "aa.trace" {
		t.Fatalf("unexpected directory contents: %v", entries)
	}
}

// plainStore is a Store without blob support, for the graceful-skip path.
type plainStore struct{ Store }

func TestTieredBlobPromotionAndWriteThrough(t *testing.T) {
	fast := NewMemory(8)
	slowDisk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := Tiered{Fast: fast, Slow: slowDisk}
	want := []byte("blob")
	if err := tiered.PutBlob("aa", want); err != nil {
		t.Fatal(err)
	}
	// Write-through: both tiers hold it.
	if _, ok, _ := fast.GetBlob("aa"); !ok {
		t.Fatal("fast tier missed after write-through")
	}
	if _, ok, _ := slowDisk.GetBlob("aa"); !ok {
		t.Fatal("slow tier missed after write-through")
	}
	// Promotion: a slow-only entry lands in fast after a read.
	if err := slowDisk.PutBlob("bb", want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := tiered.GetBlob("bb")
	if !ok || err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ok=%v err=%v got=%q", ok, err, got)
	}
	if _, ok, _ := fast.GetBlob("bb"); !ok {
		t.Fatal("slow hit not promoted")
	}
	// A blob-incapable tier is skipped, not fatal.
	noBlobs := Tiered{Fast: plainStore{NewMemory(8)}, Slow: slowDisk}
	if err := noBlobs.PutBlob("cc", want); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := noBlobs.GetBlob("cc"); !ok || !bytes.Equal(got, want) {
		t.Fatal("blob lost behind a blob-incapable fast tier")
	}
}
