package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/stats"
)

// Disk is an on-disk JSON store: one <key>.json file per result under a
// directory. Writes are atomic (temp file + rename), so a crashed or
// concurrent writer can never leave a truncated entry behind; concurrent
// writers of the same key race benignly — both write identical bytes,
// because keys are content digests of the job and results are
// deterministic.
type Disk struct {
	dir string
}

// NewDisk returns a disk store rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// path maps a key to its file. Keys are hex digests (validated here so a
// hostile key cannot escape the directory).
func (d *Disk) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("store: malformed key %q", key)
	}
	return filepath.Join(d.dir, key+".json"), nil
}

// Get implements Store.
func (d *Disk) Get(key string) (*stats.Run, bool, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, false, err
	}
	raw, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	r, err := decode(raw)
	if err != nil {
		return nil, false, fmt.Errorf("store: %s: %w", p, err)
	}
	return r, true, nil
}

// Put implements Store.
func (d *Disk) Put(key string, r *stats.Run) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	raw, err := encode(r)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len implements Store, counting the entries on disk.
func (d *Disk) Len() int {
	matches, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(matches)
}
