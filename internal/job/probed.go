package job

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/probe"
	"repro/internal/stats"
)

// The probe seam of the job layer, mirroring the oracle-source seam: a
// probe source travels through the context from a wrapping caller to
// whichever machine-building runner sits below (Direct, Checkpointed's
// warm phase), so probed runs travel exactly the code path unprobed runs
// do. Probes are observability only — they never feed the result or its
// digest — so a probed run's stats.Run is bit-identical to an unprobed
// one's.

// probeSource builds the probe for one machine. Runners that construct
// machines call it once per machine they build; a run that retries (a
// traced run extending an exhausted recording builds a fresh machine)
// therefore gets a fresh probe each time, and only the machine that
// produced the returned result keeps the last one. Sources must return a
// new probe per call — reusing one across machines double-counts.
type probeSource func() core.Probe

// probeSourceKey carries the source through the context.
type probeSourceKey struct{}

// WithProbe returns ctx with src as the probe source for every machine a
// runner below builds. See probeSource for the fresh-probe contract;
// note that Checkpointed's restored machines inherit the warm machine's
// probe (the clone carries the pointer), so per-measure probing there
// needs a fresh warm phase.
func WithProbe(ctx context.Context, src func() core.Probe) context.Context {
	return context.WithValue(ctx, probeSourceKey{}, probeSource(src))
}

// probeFrom extracts the probe source, nil when the context carries none.
func probeFrom(ctx context.Context) probeSource {
	src, _ := ctx.Value(probeSourceKey{}).(probeSource)
	return src
}

// RunProbed runs the job on a fresh machine with p attached. The result
// is bit-identical to an unprobed Direct run of the same job; p is left
// holding whatever it accumulated.
func RunProbed(ctx context.Context, j Job, p core.Probe) (*stats.Run, error) {
	return Direct{}.Run(WithProbe(ctx, func() core.Probe { return p }), j)
}

// RunWithAttribution runs the job with a cycle-attribution probe attached
// and returns the measurement record alongside its stall-taxonomy report.
// The report rides next to the result, never inside it: the run and its
// digest are bit-identical to an unprobed run's.
func RunWithAttribution(ctx context.Context, j Job) (*stats.Run, *probe.Report, error) {
	var a *probe.Attribution
	ctx = WithProbe(ctx, func() core.Probe {
		a = probe.NewAttribution()
		return a
	})
	r, err := Direct{}.Run(ctx, j)
	if err != nil {
		return nil, nil, err
	}
	return r, a.Report(), nil
}

// Attributed decorates a Runner with cycle attribution: every job that
// actually simulates (as opposed to hitting a cache below Next) gets an
// attribution probe, and the reports are kept by job key for retrieval
// after the grid completes. Safe for concurrent use, like the runners it
// wraps.
type Attributed struct {
	// Next is the wrapped runner; nil means Direct{}.
	Next Runner

	mu      sync.Mutex
	reports map[string]*probe.Report
}

// Run implements Runner.
func (a *Attributed) Run(ctx context.Context, j Job) (*stats.Run, error) {
	var at *probe.Attribution
	next := a.Next
	if next == nil {
		next = Direct{}
	}
	r, err := next.Run(WithProbe(ctx, func() core.Probe {
		at = probe.NewAttribution()
		return at
	}), j)
	if err != nil {
		return nil, err
	}
	if at != nil && at.Total() > 0 {
		a.mu.Lock()
		if a.reports == nil {
			a.reports = make(map[string]*probe.Report)
		}
		a.reports[j.Key()] = at.Report()
		a.mu.Unlock()
	}
	return r, nil
}

// Report returns the attribution recorded for a job key, nil when the
// job never simulated under this runner (e.g. it was served from a cache
// below Next, whose machines this wrapper never saw).
func (a *Attributed) Report(key string) *probe.Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reports[key]
}

// Disagreement replays one oracle trace through every scheme of the spec
// (on the spec's single benchmark) with a steering-forensics probe
// attached and builds the scheme×scheme disagreement matrix: because all
// runs consume the same recorded stream, steering decision k is the same
// program instruction everywhere, and the matrix compares placements
// decision by decision. The recording is made once by the Traced runner
// and shared across schemes.
func Disagreement(ctx context.Context, g GridSpec) (*probe.Disagreement, error) {
	benches := g.EffectiveBenchmarks()
	if len(benches) != 1 {
		return nil, fmt.Errorf("job: disagreement wants exactly one benchmark, got %d", len(benches))
	}
	if len(g.Schemes) == 0 {
		return nil, fmt.Errorf("job: disagreement wants at least one scheme")
	}
	tr := &Traced{}
	choices := make([][]uint8, 0, len(g.Schemes))
	for _, scheme := range g.Schemes {
		j, err := Spec{
			Scheme:    scheme,
			Benchmark: benches[0],
			Clusters:  g.Clusters,
			Warmup:    g.Warmup,
			Measure:   g.Measure,
			Params:    g.Params,
		}.Plan()
		if err != nil {
			return nil, err
		}
		var f *probe.Forensics
		pctx := WithProbe(ctx, func() core.Probe {
			f = &probe.Forensics{}
			return f
		})
		if _, err := tr.Run(pctx, j); err != nil {
			return nil, err
		}
		choices = append(choices, f.Choices())
	}
	return probe.ComputeDisagreement(g.Schemes, choices)
}
