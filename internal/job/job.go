// Package job is the run layer of the simulator: a Job is a canonical,
// serializable description of one simulation cell — machine configuration,
// steering scheme, balance parameters, workload and measurement window —
// with a stable content digest (Job.Key). Everything above the cycle-level
// core (the experiments grid, the CLIs, cmd/dcaserve) plans work as []Job
// and dispatches it through a Runner, so results can be cached, batched
// and served by content address (see internal/job/store).
//
// Digest canonicalization: a Job's digest is the SHA-256 of its JSON
// encoding. Jobs built through Spec.Plan/GridSpec.Plan are canonical by
// construction — the machine configuration comes from the config presets,
// Params.Clusters is synchronized to the machine, and the pseudo-schemes
// (base, ub) carry zeroed Params since steering parameters cannot affect
// them. Hand-built Jobs with equivalent but differently-spelled configs
// hash differently; plan through a Spec when cache sharing matters.
// DESIGN.md's "Digest canonicalization" section records the full rules.
package job

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/steer"
)

// BaseScheme and UBScheme are the pseudo-scheme names for the two
// reference machines: the conventional base (speed-up denominator) and the
// 16-way upper bound of the paper's Figure 14. They are valid Job schemes
// but not steer registry entries — the executor runs them with the
// machine's naive steering rule.
const (
	BaseScheme = "base"
	UBScheme   = "ub"
)

// Job is the canonical description of one simulation cell. It is plain
// data: JSON round-trips reproduce it exactly (decode(encode(j)) == j),
// and its digest is stable across round-trips.
type Job struct {
	// Config is the full machine description.
	Config *config.Config `json:"config"`
	// Scheme is the steering scheme name (steer registry) or a
	// pseudo-scheme (BaseScheme, UBScheme).
	Scheme string `json:"scheme"`
	// Params are the balance-machinery constants; Params.Clusters matches
	// Config on planned jobs (zeroed for the pseudo-schemes, which ignore
	// them).
	Params steer.Params `json:"params"`
	// Benchmark is the workload name (workload registry).
	Benchmark string `json:"benchmark"`
	// Warmup and Measure are the committed-instruction budgets: Warmup
	// instructions are simulated unmeasured, then Measure are measured.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
}

// Key returns the job's content digest: the hex SHA-256 of its canonical
// JSON encoding. Identical jobs — same machine, scheme, parameters,
// workload and window — have identical keys everywhere (across processes,
// on disk, over the wire), which is what makes results content-addressable.
func (j Job) Key() string {
	raw, err := json.Marshal(j)
	if err != nil {
		// A Job is plain data (no channels, funcs or cycles); Marshal
		// cannot fail on one.
		panic(fmt.Sprintf("job: marshal: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// ResultDigest returns the hex SHA-256 of a result's JSON encoding — the
// value cache-hit bit-identity is checked against. encoding/json renders
// float64 with the shortest representation that round-trips exactly, so
// equal digests mean equal measurements bit for bit.
func ResultDigest(r *stats.Run) string {
	raw, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("job: marshal result: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}
