package job

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// memBlobs is the minimal in-process BlobStore for these tests (the store
// backends are exercised by their own package; here only the protocol
// matters).
type memBlobs struct {
	mu    sync.Mutex
	blobs map[string][]byte
	puts  int
}

func (m *memBlobs) GetBlob(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	raw, ok := m.blobs[key]
	return raw, ok, nil
}

func (m *memBlobs) PutBlob(key string, raw []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.blobs == nil {
		m.blobs = make(map[string][]byte)
	}
	m.blobs[key] = raw
	m.puts++
	return nil
}

// TestTracedMatchesDirect is the runner-level bit-identity lock for the
// trace layer: every cell run from a replayed recording must digest
// identically to a live Direct run, across both pseudo-schemes, trained
// balance schemes, the FIFO machine and a 4-cluster fabric.
func TestTracedMatchesDirect(t *testing.T) {
	c := &Traced{}
	for _, j := range cpJobs(t) {
		want := directDigest(t, j)
		for pass := 1; pass <= 2; pass++ {
			r, err := c.Run(context.Background(), j)
			if err != nil {
				t.Fatalf("%s/%s pass %d: %v", j.Scheme, j.Benchmark, pass, err)
			}
			if got := ResultDigest(r); got != want {
				t.Errorf("%s/%s pass %d: digest %s, direct %s", j.Scheme, j.Benchmark, pass, got, want)
			}
		}
	}
	m := c.Metrics()
	if m.LiveFallbacks != 0 {
		t.Errorf("%d live fallbacks on the standard grid, want 0 (slack margin too small)", m.LiveFallbacks)
	}
}

// TestTracedRecordsOncePerProgramWindow is the amortization contract: a
// grid of cells over one (program, window) pair triggers exactly one
// recording no matter how many schemes and cluster counts consume it,
// and a new window records again.
func TestTracedRecordsOncePerProgramWindow(t *testing.T) {
	c := &Traced{}
	var jobs []Job
	for _, scheme := range []string{BaseScheme, UBScheme, "fifo", "general", "modulo"} {
		for _, clusters := range []int{2, 4} {
			if (scheme == BaseScheme || scheme == UBScheme) && clusters != 2 {
				continue
			}
			j, err := Spec{Scheme: scheme, Benchmark: "compress", Clusters: clusters,
				Warmup: 2_000, Measure: 5_000}.Plan()
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	for _, j := range jobs {
		if _, err := c.Run(context.Background(), j); err != nil {
			t.Fatalf("%s/%d: %v", j.Scheme, j.Config.NumClusters(), err)
		}
	}
	m := c.Metrics()
	if m.Recordings != 1 {
		t.Fatalf("%d recordings for %d cells of one (program, window), want exactly 1", m.Recordings, len(jobs))
	}
	if m.Replays != uint64(len(jobs)) {
		t.Fatalf("%d replays for %d cells, want one each", m.Replays, len(jobs))
	}

	// A different measurement window is a different trace key.
	j := jobs[0]
	j.Measure += 1_000
	if _, err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.Recordings != 2 {
		t.Fatalf("%d recordings after a second window, want 2", m.Recordings)
	}
}

// TestTracedConcurrentCoalesces hammers one trace key from many
// goroutines: the recording must coalesce onto a single leader.
func TestTracedConcurrentCoalesces(t *testing.T) {
	j, err := Spec{Scheme: "general", Benchmark: "go", Warmup: 2_000, Measure: 4_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := directDigest(t, j)
	c := &Traced{}
	const workers = 8
	errs := make([]error, workers)
	digests := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r, err := c.Run(context.Background(), j)
			if err != nil {
				errs[w] = err
				return
			}
			digests[w] = ResultDigest(r)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if digests[w] != want {
			t.Errorf("worker %d: digest %s, direct %s", w, digests[w], want)
		}
	}
	if m := c.Metrics(); m.Recordings != 1 {
		t.Errorf("%d recordings after coalesced runs, want 1", m.Recordings)
	}
}

// TestTracedBlobStoreWarm: a second process (modelled by a fresh Traced
// over the same blob store) serves its recording from the store instead
// of re-recording, with identical results.
func TestTracedBlobStoreWarm(t *testing.T) {
	j, err := Spec{Scheme: "general", Benchmark: "compress", Warmup: 2_000, Measure: 5_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := directDigest(t, j)
	blobs := &memBlobs{}

	cold := &Traced{Blobs: blobs}
	r, err := cold.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if got := ResultDigest(r); got != want {
		t.Errorf("cold: digest %s, direct %s", got, want)
	}
	if m := cold.Metrics(); m.Recordings != 1 || m.BlobHits != 0 {
		t.Fatalf("cold metrics %+v, want 1 recording and 0 blob hits", m)
	}
	if blobs.puts != 1 {
		t.Fatalf("%d blobs persisted, want 1", blobs.puts)
	}

	warm := &Traced{Blobs: blobs}
	r, err = warm.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if got := ResultDigest(r); got != want {
		t.Errorf("store-warm: digest %s, direct %s", got, want)
	}
	if m := warm.Metrics(); m.Recordings != 0 || m.BlobHits != 1 {
		t.Fatalf("store-warm metrics %+v, want 0 recordings and 1 blob hit", m)
	}
}

// TestTracedCorruptBlobSelfHeals: a damaged cached trace is re-recorded,
// not trusted and not fatal — mirroring the store's read-errors-as-misses
// rule.
func TestTracedCorruptBlobSelfHeals(t *testing.T) {
	j, err := Spec{Scheme: "general", Benchmark: "compress", Warmup: 2_000, Measure: 5_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Load(j.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	key := trace.Key(p.Digest(), j.Warmup+j.Measure)
	blobs := &memBlobs{blobs: map[string][]byte{key: []byte("not a trace")}}

	c := &Traced{Blobs: blobs}
	r, err := c.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ResultDigest(r), directDigest(t, j); got != want {
		t.Errorf("digest %s, direct %s", got, want)
	}
	if m := c.Metrics(); m.Recordings != 1 || m.BlobHits != 0 {
		t.Fatalf("metrics %+v, want the corrupt blob re-recorded", m)
	}
	blobs.mu.Lock()
	healed := string(blobs.blobs[key]) != "not a trace"
	blobs.mu.Unlock()
	if !healed {
		t.Error("corrupt blob left in place")
	}
}

// TestTracedExhaustionExtendsRecording seeds the blob store with a
// deliberately short recording under the correct key: replay must fail
// loudly mid-run and Traced must re-record with a doubled budget and
// redo the cell from the longer trace, bit-identical to Direct — never
// return a silently short measurement.
func TestTracedExhaustionExtendsRecording(t *testing.T) {
	j, err := Spec{Scheme: "general", Benchmark: "compress", Warmup: 2_000, Measure: 5_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Load(j.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	window := j.Warmup + j.Measure
	rec := trace.NewRecorder(p)
	if err := rec.Extend(window / 4); err != nil {
		t.Fatal(err)
	}
	short := rec.Finalize(window)
	if short.Halted {
		t.Fatal("short recording unexpectedly reached HALT")
	}
	key := trace.Key(p.Digest(), window)
	blobs := &memBlobs{blobs: map[string][]byte{key: short.Encode()}}

	c := &Traced{Blobs: blobs}
	r, err := c.Run(context.Background(), j)
	if err != nil {
		t.Fatalf("exhausted replay should extend the recording, got %v", err)
	}
	if got, want := ResultDigest(r), directDigest(t, j); got != want {
		t.Errorf("extended-replay digest %s, direct %s", got, want)
	}
	m := c.Metrics()
	if m.BlobHits != 1 || m.Extensions == 0 || m.Recordings == 0 || m.LiveFallbacks != 0 {
		t.Fatalf("metrics %+v, want the short blob accepted once, then extended by a fresh recording with no live fallback", m)
	}

	// The longer recording must have replaced the short blob (the cache
	// self-upgrades), and a later cell must replay it with no further
	// recording work.
	long, err := trace.Decode(blobs.blobs[key])
	if err != nil {
		t.Fatal(err)
	}
	if long.Steps <= short.Steps {
		t.Fatalf("blob still holds %d steps, want more than the short recording's %d", long.Steps, short.Steps)
	}
	before := c.Metrics()
	if _, err := c.Run(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	after := c.Metrics()
	if after.Recordings != before.Recordings || after.Extensions != before.Extensions {
		t.Fatalf("second run re-recorded: before %+v after %+v", before, after)
	}
}

// TestTracedComposesWithCheckpointed runs the trace layer over the warm
// snapshot layer: replay cursors are cloneable, so the composition warms
// once per warm key and still digests identically to Direct.
func TestTracedComposesWithCheckpointed(t *testing.T) {
	cp := &Checkpointed{}
	c := &Traced{Next: cp}
	for _, j := range cpJobs(t) {
		want := directDigest(t, j)
		for pass := 1; pass <= 2; pass++ {
			r, err := c.Run(context.Background(), j)
			if err != nil {
				t.Fatalf("%s/%s pass %d: %v", j.Scheme, j.Benchmark, pass, err)
			}
			if got := ResultDigest(r); got != want {
				t.Errorf("%s/%s pass %d: digest %s, direct %s", j.Scheme, j.Benchmark, pass, got, want)
			}
		}
	}
	for key, e := range cp.entries {
		if e.cp == nil && e.err == nil {
			t.Errorf("warm key %s: replayed machine was not snapshottable", key)
		}
	}
}

// TestTracedErrors pins the edges: unknown benchmarks fail, cancelled
// contexts are refused, and a zero-window job runs live (nothing bounded
// to record).
func TestTracedErrors(t *testing.T) {
	c := &Traced{}
	if _, err := c.Run(context.Background(), Job{Scheme: "general", Benchmark: "nope", Measure: 100}); err == nil {
		t.Fatal("unknown benchmark succeeded")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(ctx, cpJobs(t)[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v", err)
	}
}
