// Package worker is the pull side of the distributed run layer: a fleet
// of loops that drain a dcaserve job queue over HTTP. Each loop leases a
// batch (long-polling the server), simulates every job through a
// job.Runner, uploads each verified result under its lease, and
// heartbeat-extends leases that outlive their TTL. An empty queue backs
// the loop off with jittered sleeps; a cancelled context drains cleanly —
// in-flight jobs finish and upload before Run returns. cmd/dcaworker is
// the thin flag-and-signal wrapper around this package.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/stats"
)

// Options configures a worker fleet.
type Options struct {
	// Server is the dcaserve base URL, e.g. "http://host:8080". Required.
	Server string
	// Loops is the number of concurrent pull loops; 0 means GOMAXPROCS.
	// Each loop holds at most MaxJobs leases at a time, so Loops bounds
	// the worker's simulation parallelism.
	Loops int
	// MaxJobs is the lease batch size per poll; 0 means 1. Batches above 1
	// amortize polling on tiny jobs but hold leases longer — the loop
	// heartbeats them while it works through the batch.
	MaxJobs int
	// Wait is the server-side long-poll budget per lease request; 0 means
	// 10s.
	Wait time.Duration
	// Runner executes leased jobs; nil means job.Direct{}. Tests inject
	// failing or slow runners here.
	Runner job.Runner
	// Client is the HTTP client; nil means a client with a timeout
	// comfortably above Wait.
	Client *http.Client
	// MaxBackoff caps the jittered sleep after an empty poll or a server
	// error; 0 means 5s. The first backoff is ~100ms and doubles per
	// consecutive empty round, so a busy queue is polled eagerly and an
	// idle one gently.
	MaxBackoff time.Duration
	// Logf, when non-nil, receives one line per notable event (lease
	// errors, nacks, lost leases). nil discards them.
	Logf func(format string, args ...any)
	// ClientID, when non-empty, is sent as the X-Client-ID header on every
	// request, so the server's access logs and per-client rate limits
	// attribute this worker's traffic by name rather than by address.
	ClientID string
}

// Metrics counts a fleet's work across all loops.
type Metrics struct {
	// Completed counts successful uploads; Failed counts jobs whose
	// simulation errored (reported to the server as nacks); Lost counts
	// uploads or heartbeats the server refused because the lease had
	// expired (the job requeued; another worker owns it now).
	Completed uint64
	Failed    uint64
	Lost      uint64
	// Leases counts lease-request rounds that returned at least one job;
	// EmptyPolls counts rounds that returned none.
	Leases     uint64
	EmptyPolls uint64
}

// Fleet runs Options.Loops pull loops against one server.
type Fleet struct {
	opts Options

	completed  atomic.Uint64
	failed     atomic.Uint64
	lost       atomic.Uint64
	leases     atomic.Uint64
	emptyPolls atomic.Uint64
}

// New validates opts and returns a fleet ready to Run.
func New(opts Options) (*Fleet, error) {
	if opts.Server == "" {
		return nil, fmt.Errorf("worker: Options.Server is required")
	}
	if opts.Loops <= 0 {
		opts.Loops = runtime.GOMAXPROCS(0)
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 1
	}
	if opts.Wait <= 0 {
		opts.Wait = 10 * time.Second
	}
	if opts.Runner == nil {
		opts.Runner = job.Direct{}
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: opts.Wait + 30*time.Second}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Fleet{opts: opts}, nil
}

// Metrics returns the fleet's counters so far.
func (f *Fleet) Metrics() Metrics {
	return Metrics{
		Completed:  f.completed.Load(),
		Failed:     f.failed.Load(),
		Lost:       f.lost.Load(),
		Leases:     f.leases.Load(),
		EmptyPolls: f.emptyPolls.Load(),
	}
}

// Run drives the pull loops until ctx is cancelled, then drains: no new
// leases are requested, in-flight jobs finish simulating, and their
// results upload (uploads use a fresh short-deadline context, so a
// SIGTERM never strands completed work). Run returns nil on a clean
// drain.
func (f *Fleet) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	wg.Add(f.opts.Loops)
	for i := 0; i < f.opts.Loops; i++ {
		go func(loop int) {
			defer wg.Done()
			f.runLoop(ctx, loop)
		}(i)
	}
	wg.Wait()
	return nil
}

// runLoop is one pull loop: lease, work the batch, back off when idle.
func (f *Fleet) runLoop(ctx context.Context, loop int) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano() + int64(loop)))
	backoff := 100 * time.Millisecond
	for ctx.Err() == nil {
		leases, ttlMS, err := f.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			f.opts.Logf("worker[%d]: lease: %v", loop, err)
			if !f.sleep(ctx, jitter(rng, backoff)) {
				return
			}
			backoff = min(backoff*2, f.opts.MaxBackoff)
			continue
		}
		if len(leases) == 0 {
			f.emptyPolls.Add(1)
			// The server already long-polled for Wait; the extra jittered
			// sleep keeps an idle fleet from polling in lockstep.
			if !f.sleep(ctx, jitter(rng, backoff)) {
				return
			}
			backoff = min(backoff*2, f.opts.MaxBackoff)
			continue
		}
		backoff = 100 * time.Millisecond
		f.leases.Add(1)
		// Heartbeat EVERY lease in the batch from the moment it arrives:
		// jobs queued behind the one currently simulating would otherwise
		// sit un-extended and lapse (requeuing work we still intend to
		// do). Each heartbeat stops as its job settles; they keep running
		// through a drain, since the leases are still ours. Beats fire at
		// a third of the TTL — the server-reported duration, NOT
		// time-until-Deadline, whose absolute value is garbage when the
		// worker's clock is skewed from the server's — so two can be
		// lost before a lease lapses.
		interval := time.Duration(ttlMS) * time.Millisecond / 3
		cancels := make([]context.CancelFunc, len(leases))
		for i, l := range leases {
			iv := interval
			if iv <= 0 {
				// Server predating lease_ttl_ms: fall back to the
				// deadline, best-effort under clock skew.
				iv = time.Until(l.Deadline) / 3
			}
			hbCtx, cancel := context.WithCancel(context.Background())
			cancels[i] = cancel
			go f.heartbeat(hbCtx, l, iv)
		}
		for i, l := range leases {
			// Finish the whole batch even when ctx is cancelled: these
			// leases are held, and draining means completing them.
			f.work(ctx, loop, l)
			cancels[i]()
		}
	}
}

// work simulates one leased job and settles its lease (the caller keeps
// the lease heartbeating until work returns).
func (f *Fleet) work(ctx context.Context, loop int, l queue.Lease) {
	// The simulation itself is not interruptible (and a drain must finish
	// it anyway), so it runs detached from ctx.
	r, err := f.opts.Runner.Run(context.WithoutCancel(ctx), l.Job)
	if err != nil {
		f.failed.Add(1)
		f.opts.Logf("worker[%d]: %s/%s: %v", loop, l.Job.Scheme, l.Job.Benchmark, err)
		f.nack(l, err.Error())
		return
	}
	if err := f.complete(l, r); err != nil {
		f.lost.Add(1)
		f.opts.Logf("worker[%d]: complete %s: %v", loop, l.Key, err)
		return
	}
	f.completed.Add(1)
}

// heartbeat extends l every interval until stopped. A single failed beat
// is tolerated (the TTL/3 cadence leaves two spares) — transient network
// errors and server stalls must not strand a long simulation; only
// consecutive failures, by which point the lease is almost certainly
// reclaimed, end the loop.
func (f *Fleet) heartbeat(ctx context.Context, l queue.Lease, interval time.Duration) {
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := f.extend(l); err != nil {
				failures++
				f.opts.Logf("worker: heartbeat %s (failure %d): %v", l.ID, failures, err)
				if failures >= 2 {
					return
				}
				continue
			}
			failures = 0
		}
	}
}

// sleep waits d or until ctx is done; false means cancelled.
func (f *Fleet) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// jitter spreads d to [d/2, d): decorrelates loops that went idle
// together.
func jitter(rng *rand.Rand, d time.Duration) time.Duration {
	return d/2 + time.Duration(rng.Int63n(int64(d/2)))
}

// The wire types are queue.LeaseRequest/LeaseResponse/CompleteRequest,
// shared with the queue package so the contract cannot drift.

// lease long-polls the server for a batch, also returning the server's
// lease TTL in milliseconds (the heartbeat budget).
func (f *Fleet) lease(ctx context.Context) ([]queue.Lease, int64, error) {
	var resp queue.LeaseResponse
	err := f.post(ctx, "/v1/leases",
		queue.LeaseRequest{MaxJobs: f.opts.MaxJobs, WaitMS: f.opts.Wait.Milliseconds()}, &resp)
	if err != nil {
		return nil, 0, err
	}
	return resp.Leases, resp.LeaseTTLMS, nil
}

// complete uploads a result under its lease. Settling a held lease must
// survive a drain, so it runs on its own deadline, not the loop context.
func (f *Fleet) complete(l queue.Lease, r *stats.Run) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return f.post(ctx, "/v1/leases/"+l.ID+"/complete",
		queue.CompleteRequest{Key: l.Key, Result: r, ResultDigest: job.ResultDigest(r)}, nil)
}

// nack reports a failed attempt so the server can requeue promptly.
func (f *Fleet) nack(l queue.Lease, reason string) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.post(ctx, "/v1/leases/"+l.ID+"/complete",
		queue.CompleteRequest{Key: l.Key, Error: reason}, nil); err != nil {
		f.opts.Logf("worker: nack %s: %v", l.ID, err)
	}
}

// extend heartbeats a lease.
func (f *Fleet) extend(l queue.Lease) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return f.post(ctx, "/v1/leases/"+l.ID+"/extend", struct{}{}, nil)
}

// post is the one HTTP call site: JSON request in, JSON response out,
// non-2xx mapped to an error carrying the server's error text.
func (f *Fleet) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("worker: encode %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.opts.Server+path, bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if f.opts.ClientID != "" {
		req.Header.Set("X-Client-ID", f.opts.ClientID)
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("worker: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var er struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er)
		if er.Error == "" {
			er.Error = resp.Status
		}
		return fmt.Errorf("worker: %s: %s", path, er.Error)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("worker: decode %s: %w", path, err)
	}
	return nil
}
