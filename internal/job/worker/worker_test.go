package worker

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/job/queue"
	"repro/internal/stats"
)

// stubServer is a minimal in-test dcaserve: it hands out scripted leases
// and records every extend, complete and nack. (The real-server
// integration lives in cmd/dcaserve's end-to-end tests; this stub pins
// the worker's own protocol behavior — heartbeats, drain, nacks —
// without a simulator in the loop.)
type stubServer struct {
	mu        sync.Mutex
	leases    []queue.Lease // handed out one per poll
	extends   map[string]int
	completes map[string]*stats.Run
	nacks     map[string]string
	polls     int
}

func newStubServer() *stubServer {
	return &stubServer{
		extends:   map[string]int{},
		completes: map[string]*stats.Run{},
		nacks:     map[string]string{},
	}
}

func (s *stubServer) addLease(t *testing.T, id string, ttl time.Duration) job.Job {
	t.Helper()
	j, err := job.Spec{Scheme: "modulo", Benchmark: "go", Warmup: 10, Measure: 100}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.leases = append(s.leases, queue.Lease{
		ID: id, Key: j.Key(), Job: j, Deadline: time.Now().Add(ttl), Attempt: 1,
	})
	s.mu.Unlock()
	return j
}

func (s *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/leases", func(w http.ResponseWriter, r *http.Request) {
		var req queue.LeaseRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.MaxJobs <= 0 {
			req.MaxJobs = 1
		}
		s.mu.Lock()
		s.polls++
		var out []queue.Lease
		if n := min(req.MaxJobs, len(s.leases)); n > 0 {
			out, s.leases = s.leases[:n], s.leases[n:]
		}
		s.mu.Unlock()
		json.NewEncoder(w).Encode(queue.LeaseResponse{Leases: out, LeaseTTLMS: 300})
	})
	mux.HandleFunc("POST /v1/leases/{id}/extend", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.extends[r.PathValue("id")]++
		s.mu.Unlock()
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("POST /v1/leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		var req queue.CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		id := r.PathValue("id")
		if req.Error != "" {
			s.nacks[id] = req.Error
			w.Write([]byte("{}"))
			return
		}
		if got := job.ResultDigest(req.Result); got != req.ResultDigest {
			http.Error(w, `{"error":"digest mismatch"}`, http.StatusBadRequest)
			return
		}
		s.completes[id] = req.Result
		w.Write([]byte("{}"))
	})
	return mux
}

// slowRunner stretches each simulation so heartbeats have time to fire.
type slowRunner struct{ d time.Duration }

func (s slowRunner) Run(ctx context.Context, j job.Job) (*stats.Run, error) {
	time.Sleep(s.d)
	return job.Direct{}.Run(ctx, j)
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerCompletesAndHeartbeats checks the happy path: a leased job
// whose simulation outlives a short TTL is heartbeat-extended and its
// verified result uploaded.
func TestWorkerCompletesAndHeartbeats(t *testing.T) {
	stub := newStubServer()
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	stub.addLease(t, "lease-1", 300*time.Millisecond)

	f, err := New(Options{
		Server: ts.URL,
		Loops:  1,
		Wait:   50 * time.Millisecond,
		Runner: slowRunner{d: 400 * time.Millisecond},
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)

	waitFor(t, 5*time.Second, func() bool {
		stub.mu.Lock()
		defer stub.mu.Unlock()
		return len(stub.completes) == 1
	}, "completion upload")
	cancel()

	stub.mu.Lock()
	defer stub.mu.Unlock()
	if stub.extends["lease-1"] == 0 {
		t.Error("no heartbeat for a simulation longer than the lease TTL")
	}
	if stub.completes["lease-1"] == nil {
		t.Error("no result uploaded under the lease")
	}
	if m := f.Metrics(); m.Completed != 1 {
		t.Errorf("metrics = %+v, want 1 completed", m)
	}
}

// TestWorkerHeartbeatsWholeBatch checks every lease in a batch is
// extended from the moment it arrives: a job queued behind the one
// currently simulating must not lapse while it waits its turn.
func TestWorkerHeartbeatsWholeBatch(t *testing.T) {
	stub := newStubServer()
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	stub.addLease(t, "lease-1", 300*time.Millisecond)
	stub.addLease(t, "lease-2", 300*time.Millisecond)

	f, err := New(Options{
		Server:  ts.URL,
		Loops:   1,
		MaxJobs: 2,
		Wait:    50 * time.Millisecond,
		Runner:  slowRunner{d: 400 * time.Millisecond},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)

	waitFor(t, 10*time.Second, func() bool {
		stub.mu.Lock()
		defer stub.mu.Unlock()
		return len(stub.completes) == 2
	}, "both completions")
	cancel()

	stub.mu.Lock()
	defer stub.mu.Unlock()
	// Job 2 waited ~400ms behind job 1 on a 300ms lease: only a
	// heartbeat started at batch arrival keeps it alive that long.
	if stub.extends["lease-2"] == 0 {
		t.Error("the queued-behind lease was never heartbeated while waiting its turn")
	}
	if stub.extends["lease-1"] == 0 {
		t.Error("the active lease was never heartbeated")
	}
}

// TestWorkerNacksFailures checks a simulation error is reported as a nack
// under the lease, not silently dropped.
func TestWorkerNacksFailures(t *testing.T) {
	stub := newStubServer()
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	stub.addLease(t, "lease-1", time.Minute)

	f, err := New(Options{
		Server: ts.URL,
		Loops:  1,
		Wait:   50 * time.Millisecond,
		Runner: runnerFunc(func(ctx context.Context, j job.Job) (*stats.Run, error) {
			return nil, fmt.Errorf("injected failure")
		}),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)

	waitFor(t, 5*time.Second, func() bool {
		stub.mu.Lock()
		defer stub.mu.Unlock()
		return len(stub.nacks) == 1
	}, "nack")
	cancel()

	stub.mu.Lock()
	defer stub.mu.Unlock()
	if stub.nacks["lease-1"] != "injected failure" {
		t.Errorf("nack reason = %q", stub.nacks["lease-1"])
	}
	if m := f.Metrics(); m.Failed != 1 || m.Completed != 0 {
		t.Errorf("metrics = %+v, want 1 failed", m)
	}
}

// TestWorkerDrainFinishesInflight checks cancellation mid-simulation
// still uploads the result: a drain never strands a held lease.
func TestWorkerDrainFinishesInflight(t *testing.T) {
	stub := newStubServer()
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	stub.addLease(t, "lease-1", time.Minute)

	started := make(chan struct{})
	f, err := New(Options{
		Server: ts.URL,
		Loops:  1,
		Wait:   50 * time.Millisecond,
		Runner: runnerFunc(func(ctx context.Context, j job.Job) (*stats.Run, error) {
			close(started)
			time.Sleep(200 * time.Millisecond)
			return job.Direct{}.Run(ctx, j)
		}),
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	<-started
	cancel() // drain while the job is mid-simulation
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if stub.completes["lease-1"] == nil {
		t.Error("drain dropped an in-flight job instead of uploading it")
	}
}

// TestWorkerBacksOffWhenIdle checks an empty queue is polled with
// jittered backoff rather than hammered.
func TestWorkerBacksOffWhenIdle(t *testing.T) {
	stub := newStubServer()
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	f, err := New(Options{
		Server:     ts.URL,
		Loops:      1,
		Wait:       time.Millisecond,
		MaxBackoff: 300 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	f.Run(ctx)

	stub.mu.Lock()
	polls := stub.polls
	stub.mu.Unlock()
	// 500ms of idling with ~doubling backoff from 100ms: a handful of
	// polls. No backoff would mean hundreds.
	if polls > 10 {
		t.Errorf("%d polls in 500ms of empty queue — backoff is not working", polls)
	}
	if m := f.Metrics(); m.EmptyPolls == 0 {
		t.Error("no empty polls recorded")
	}
}

// runnerFunc adapts a function to job.Runner.
type runnerFunc func(ctx context.Context, j job.Job) (*stats.Run, error)

func (f runnerFunc) Run(ctx context.Context, j job.Job) (*stats.Run, error) { return f(ctx, j) }

// TestWorkerSendsClientID: every request — lease, complete, extend —
// carries the configured X-Client-ID so the server can attribute and
// rate-limit the worker by name.
func TestWorkerSendsClientID(t *testing.T) {
	var mu sync.Mutex
	ids := map[string]string{} // path -> header seen
	stub := newStubServer()
	stub.addLease(t, "lease-1", time.Minute)
	inner := stub.handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids[r.URL.Path] = r.Header.Get("X-Client-ID")
		mu.Unlock()
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	f, err := New(Options{Server: ts.URL, Loops: 1, ClientID: "worker-7", Wait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { f.Run(ctx); close(done) }()
	waitFor(t, 5*time.Second, func() bool { return f.Metrics().Completed == 1 }, "completion")
	cancel()
	<-done

	mu.Lock()
	defer mu.Unlock()
	for path, id := range ids {
		if id != "worker-7" {
			t.Errorf("%s: X-Client-ID = %q, want worker-7", path, id)
		}
	}
	if _, ok := ids["/v1/leases"]; !ok {
		t.Error("no lease request observed")
	}
}
