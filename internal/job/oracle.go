package job

import (
	"context"

	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/steer"
)

// oracleSource builds the fetch oracle for one machine. Runners that
// construct machines (Direct, Checkpointed's warm phase) call it once per
// machine, so a source backed by a recorded trace hands out a fresh
// replay cursor to every consumer. A nil source in the context means the
// live functional emulator, which is what every run used before the
// trace layer existed.
type oracleSource func() (core.Oracle, error)

// oracleSourceKey carries the source through the context from the
// wrapping runner (Traced) to whichever machine-building runner sits
// below it; the indirection is what lets Traced compose under
// Checkpointed without either knowing the other's concrete type.
type oracleSourceKey struct{}

// withOracleSource returns ctx with src as the machine fetch oracle.
func withOracleSource(ctx context.Context, src oracleSource) context.Context {
	return context.WithValue(ctx, oracleSourceKey{}, src)
}

// oracleSourceFrom extracts the source, nil when the context carries none.
func oracleSourceFrom(ctx context.Context) oracleSource {
	src, _ := ctx.Value(oracleSourceKey{}).(oracleSource)
	return src
}

// steererFor builds the job's steering policy: the paper's conventional
// split for the base and upper-bound machines, the registered scheme
// with the job's parameters otherwise.
func steererFor(j Job, p *prog.Program) (core.Steerer, error) {
	if j.Scheme == BaseScheme || j.Scheme == UBScheme {
		return core.NaiveSteerer{}, nil
	}
	return steer.NewWithParams(j.Scheme, p, j.Params)
}

// newMachine builds the job's machine over p, fetching from the
// context's oracle source when one is set and from the live emulator
// otherwise. Direct and Checkpointed both construct machines through
// this seam, so a trace-replaying run travels exactly the code path a
// live run does — the bit-identity arguments stay one argument.
func newMachine(ctx context.Context, j Job, p *prog.Program) (*core.Machine, error) {
	st, err := steererFor(j, p)
	if err != nil {
		return nil, err
	}
	var m *core.Machine
	if src := oracleSourceFrom(ctx); src != nil {
		o, err := src()
		if err != nil {
			return nil, err
		}
		m, err = core.NewWithOracle(j.Config, p, st, o)
		if err != nil {
			return nil, err
		}
	} else {
		m, err = core.New(j.Config, p, st)
		if err != nil {
			return nil, err
		}
	}
	// Attach the context's probe, if any (see probed.go). Probes observe
	// and never steer, so this cannot change the result.
	if ps := probeFrom(ctx); ps != nil {
		m.SetProbe(ps())
	}
	return m, nil
}
