package job

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
)

// Progress reports one completed job to PoolOptions.Progress. Completed
// counts finished jobs (including the reporting one); Remaining estimates
// the wall-clock time left for the rest of the batch from the throughput
// so far.
type Progress struct {
	// Job is the completed job; Index is its position in the batch.
	Job   Job
	Index int
	// Completed and Total count batch jobs; Completed includes this one.
	Completed int
	Total     int
	// Elapsed is this job's own simulation time.
	Elapsed time.Duration
	// Remaining is the ETA for the unfinished jobs, extrapolated from the
	// batch's wall-clock throughput so far. It is zero for the first
	// completed job — a single sample taken while the pool is still
	// filling extrapolates garbage — and zero again when nothing remains.
	Remaining time.Duration
	// Err is non-nil when the job failed (the batch is being cancelled).
	Err error
}

// PoolOptions controls a RunAll batch.
type PoolOptions struct {
	// Parallelism bounds the number of jobs simulated concurrently; 0 or
	// negative means runtime.GOMAXPROCS(0). Results are identical at every
	// setting — each job owns its machine.
	Parallelism int
	// Runner executes each job; nil means Direct{}. Inject a store.Cached
	// to reuse results across batches, or a failing stub in tests.
	Runner Runner
	// Progress, when non-nil, is invoked once per completed job. The pool
	// serializes the calls, but they arrive from worker goroutines — keep
	// the callback fast.
	Progress func(Progress)
}

// Workers returns the effective worker-pool size for a batch of n jobs:
// parallelism, defaulted to runtime.GOMAXPROCS(0) when unset, clamped to
// the batch size.
func Workers(parallelism, n int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	return parallelism
}

// RunAll executes the batch on a bounded worker pool (see Workers); the
// first job error cancels the remaining work and is returned. Results are
// positionally indexed — runs[i] is jobs[i]'s — so worker scheduling
// cannot leak into the output.
func RunAll(ctx context.Context, jobs []Job, opts PoolOptions) ([]*stats.Run, error) {
	runner := opts.Runner
	if runner == nil {
		runner = Direct{}
	}
	workers := Workers(opts.Parallelism, len(jobs))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		runs      = make([]*stats.Run, len(jobs))
		next      = make(chan int)
		wg        sync.WaitGroup
		mu        sync.Mutex // guards firstErr, completed, Progress calls
		firstErr  error
		completed int
		started   = time.Now() //dca:allow(determinism: feeds the progress ETA only, never a result or digest)
	)

	// Feed job indices until the batch is exhausted or cancelled.
	go func() {
		defer close(next)
		for i := range jobs {
			if ctx.Err() != nil {
				return
			}
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	report := func(i int, elapsed time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
			cancel()
		}
		completed++
		if opts.Progress == nil {
			return
		}
		var remaining time.Duration
		// ETA guard: with one completed job the only timing sample was
		// taken while the pool was still filling, so extrapolating from it
		// overestimates by up to the worker count — report no ETA until a
		// second job lands.
		if left := len(jobs) - completed; left > 0 && completed > 1 {
			//dca:allow(determinism: feeds the progress ETA only, never a result or digest)
			remaining = time.Duration(int64(time.Since(started)) / int64(completed) * int64(left))
		}
		opts.Progress(Progress{
			Job:       jobs[i],
			Index:     i,
			Completed: completed,
			Total:     len(jobs),
			Elapsed:   elapsed,
			Remaining: remaining,
			Err:       err,
		})
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain: the batch is being cancelled
				}
				jobStart := time.Now() //dca:allow(determinism: feeds the progress ETA only, never a result or digest)
				r, err := runner.Run(ctx, jobs[i])
				if err == nil {
					runs[i] = r
				}
				//dca:allow(determinism: feeds the progress ETA only, never a result or digest)
				report(i, time.Since(jobStart), err)
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return runs, nil
}
