package job

import (
	"repro/internal/config"
	"repro/internal/steer"
	"repro/internal/workload"
)

// ConfigFor maps a scheme name and cluster count to the machine it runs
// on: the base and upper-bound pseudo-schemes use their dedicated
// machines, the FIFO scheme uses the FIFO-queue organization, and
// everything else runs on the steered machine — the paper's asymmetric
// two-cluster processor when clusters is 0 or 2, config.ClusteredN
// otherwise.
func ConfigFor(scheme string, clusters int) *config.Config {
	switch scheme {
	case BaseScheme:
		return config.Base()
	case UBScheme:
		return config.UpperBound()
	}
	if clusters == 0 || clusters == 2 {
		if scheme == "fifo" {
			return config.FIFOClustered()
		}
		return config.Clustered()
	}
	if scheme == "fifo" {
		return config.ClusteredNFIFO(clusters)
	}
	return config.ClusteredN(clusters)
}

// Spec describes one cell in user terms — the flags a CLI or an HTTP
// request carries. Plan expands it into the canonical Job: the machine
// preset is resolved from (scheme, clusters), Params.Clusters is
// synchronized to the machine, and pseudo-scheme jobs get zeroed Params
// (steering parameters cannot affect the base or upper-bound machines, so
// canonicalizing them away keeps their digests stable across callers).
type Spec struct {
	Scheme    string `json:"scheme"`
	Benchmark string `json:"benchmark"`
	// Clusters selects the steered machine: 0 or 2 is the paper's
	// asymmetric two-cluster processor, anything else config.ClusteredN.
	Clusters int `json:"clusters,omitempty"`
	// Warmup and Measure are the committed-instruction budgets.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// Params are the balance-machinery constants; nil means
	// steer.DefaultParams().
	Params *steer.Params `json:"params,omitempty"`
}

// Plan validates the spec and builds its canonical Job.
func (s Spec) Plan() (Job, error) {
	if err := ValidateMeasure(s.Measure); err != nil {
		return Job{}, err
	}
	if err := ValidateClusters(s.Clusters); err != nil {
		return Job{}, err
	}
	if err := ValidateScheme(s.Scheme); err != nil {
		return Job{}, err
	}
	if err := ValidateBenchmark(s.Benchmark); err != nil {
		return Job{}, err
	}
	cfg := ConfigFor(s.Scheme, s.Clusters)
	var params steer.Params
	if s.Scheme != BaseScheme && s.Scheme != UBScheme {
		if s.Params != nil {
			params = *s.Params
		} else {
			params = steer.DefaultParams()
		}
		params.Clusters = cfg.NumClusters()
	}
	return Job{
		Config:    cfg,
		Scheme:    s.Scheme,
		Params:    params,
		Benchmark: s.Benchmark,
		Warmup:    s.Warmup,
		Measure:   s.Measure,
	}, nil
}

// GridSpec describes a whole evaluation grid: schemes × benchmarks at one
// machine size and window. It is the serializable form of what
// experiments.Options and dcaserve's /v1/grids accept.
type GridSpec struct {
	// Schemes lists the steering schemes (plus pseudo-schemes) to run, in
	// the order the grid should iterate them; duplicates are dropped.
	Schemes []string `json:"schemes"`
	// Benchmarks selects the workloads. Nil or empty plans the full
	// SpecInt95 analog set lazily — workload.Names() is consulted at plan
	// time, not stored.
	Benchmarks []string      `json:"benchmarks,omitempty"`
	Clusters   int           `json:"clusters,omitempty"`
	Warmup     uint64        `json:"warmup"`
	Measure    uint64        `json:"measure"`
	Params     *steer.Params `json:"params,omitempty"`
}

// EffectiveBenchmarks returns the benchmark list the grid will run: the
// explicit selection, or the full default set when none was given.
func (g GridSpec) EffectiveBenchmarks() []string {
	if len(g.Benchmarks) == 0 {
		return workload.Names()
	}
	return g.Benchmarks
}

// Plan validates the grid and expands it into the canonical job list in
// deterministic order: schemes in input order with duplicates dropped,
// each crossed with the benchmarks in input order.
func (g GridSpec) Plan() ([]Job, error) {
	if err := ValidateMeasure(g.Measure); err != nil {
		return nil, err
	}
	benches := g.EffectiveBenchmarks()
	if err := ValidateInputs(g.Schemes, benches, g.Clusters); err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(g.Schemes))
	jobs := make([]Job, 0, len(g.Schemes)*len(benches))
	for _, scheme := range g.Schemes {
		if seen[scheme] {
			continue
		}
		seen[scheme] = true
		for _, bench := range benches {
			j, err := Spec{
				Scheme:    scheme,
				Benchmark: bench,
				Clusters:  g.Clusters,
				Warmup:    g.Warmup,
				Measure:   g.Measure,
				Params:    g.Params,
			}.Plan()
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	return jobs, nil
}
