package job

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BlobStore is the byte-blob cache Traced persists encoded recordings
// through. It is structurally satisfied by the store backends
// (store.Memory, store.Disk, store.Tiered); the interface is declared
// here rather than imported because package store already depends on job
// (store.Cached wraps a Runner), so this dependency must point the other
// way — the same convention as store.BlobStore, which documents the
// implementation contract.
type BlobStore interface {
	GetBlob(key string) ([]byte, bool, error)
	PutBlob(key string, raw []byte) error
}

// defaultTraceLimit bounds the decoded traces retained in memory. A trace
// is a few bytes per instruction of its window — far smaller than a warm
// snapshot — so the default matches Checkpointed's.
const defaultTraceLimit = 128

// traceSlackInstructions is the recording margin past the nominal window.
// A cell commits Warmup+Measure instructions but its front end fetches
// ahead by a scheme- and configuration-dependent amount (in-flight
// window, decode queue growth), so the recording covers twice the window
// plus a fixed floor. The margin is a performance knob, not a correctness
// one: a consumer that still outruns the trace fails loudly
// (core.ErrOracleExhausted) and Traced re-records a longer trace — see
// maxExtendAttempts.
const traceSlackInstructions = 4096

// maxExtendAttempts bounds the re-record-with-doubled-budget loop a cell
// runs when its front end outruns the recording (some workloads fetch
// several windows ahead of commit; vortex needs ~3x). Each attempt doubles
// the recorded steps, so the cap allows a 2^maxExtendAttempts-fold margin
// before the cell gives up and re-runs against the live emulator.
const maxExtendAttempts = 6

// Traced is a Runner that amortizes the functional front end across the
// grid: the oracle stream for a (program, window) pair is recorded at
// most once — functionally, without a timing machine — and every cell's
// machine then fetches from a replay cursor over the shared recording
// instead of re-executing the emulator. The stream is architectural
// (scheme- and cluster-independent), so one recording serves every
// scheme, cluster count and steering policy in the grid; results are
// bit-identical to live runs (the golden grids and FuzzTraceReplay lock
// this).
//
// Encoded recordings are cached through Blobs when set (the same tiered
// store the results live in), so later processes skip even the one
// recording. The zero value is ready to use and safe for concurrent use;
// concurrent requests for one trace key coalesce onto a single recording,
// mirroring Checkpointed's warm coalescing.
//
// Traced composes with the other runners: it delegates execution to Next
// (default Direct) with the replay source threaded through the context,
// so Traced{Next: &Checkpointed{}} replays the warm phase once per warm
// key and snapshots it — the replay cursor is cloneable state.
type Traced struct {
	// Next runs the job once the oracle source is prepared; nil means
	// Direct{}. Set before the first Run.
	Next Runner
	// Blobs persists encoded recordings across processes; nil records
	// in-process only. Set before the first Run.
	Blobs BlobStore
	// Limit caps retained decoded traces (oldest evicted first); 0 means
	// defaultTraceLimit. Set before the first Run.
	Limit int

	mu      sync.Mutex
	entries map[string]*traceEntry
	order   []string
	metrics TracedMetrics
}

// traceEntry is one trace key's slot: ready closes when the recording
// (or the blob fetch) finished.
type traceEntry struct {
	ready chan struct{}
	tr    *trace.Trace
	err   error
}

// TracedMetrics counts the runner's traffic since creation.
type TracedMetrics struct {
	// Recordings is the number of functional recordings performed.
	Recordings uint64
	// BlobHits is the number of recordings served from the blob store.
	BlobHits uint64
	// Replays is the number of cells run from a replay cursor.
	Replays uint64
	// Extensions counts recordings redone with a doubled budget after a
	// cell's front end outran the trace.
	Extensions uint64
	// LiveFallbacks counts cells re-run live after outrunning the trace
	// even at the maximum extension budget.
	LiveFallbacks uint64
}

// Metrics returns a snapshot of the runner's counters.
func (c *Traced) Metrics() TracedMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

func (c *Traced) next() Runner {
	if c.Next != nil {
		return c.Next
	}
	return Direct{}
}

// Run executes the job from the shared recording, recording it first if
// this is the key's leader.
func (c *Traced) Run(ctx context.Context, j Job) (*stats.Run, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	window := j.Warmup + j.Measure
	if window == 0 {
		// A run-to-halt job has no instruction bound to record against;
		// run it live.
		return c.next().Run(ctx, j)
	}
	p, err := workload.Load(j.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	key := trace.Key(p.Digest(), window)

	tr, err := c.traceFor(p, window, key, 0)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	c.metrics.Replays++
	c.mu.Unlock()

	src := func() (core.Oracle, error) { return trace.NewReplayer(tr, p) }
	r, err := c.next().Run(withOracleSource(ctx, src), j)
	for attempt := 0; errors.Is(err, core.ErrOracleExhausted) && !tr.Halted && attempt < maxExtendAttempts; attempt++ {
		// The cell's front end fetched past the recording. Correctness is
		// preserved by construction — the replayed prefix was bit-exact —
		// so re-record with a doubled budget and redo the run from the
		// longer trace. The retry bypasses Next: warm state Next may have
		// snapshotted is keyed to the exhausted cursor and must not be
		// reused. The longer recording replaces the cached (and blob-
		// stored) one, so later cells replay it directly.
		c.mu.Lock()
		c.metrics.Extensions++
		c.mu.Unlock()
		tr, err = c.traceFor(p, window, key, 2*tr.Steps)
		if err != nil {
			return nil, err
		}
		longSrc := func() (core.Oracle, error) { return trace.NewReplayer(tr, p) }
		r, err = Direct{}.Run(withOracleSource(ctx, longSrc), j)
	}
	if errors.Is(err, core.ErrOracleExhausted) {
		// Even the maximum extension budget was outrun (or the program
		// halts mid-fetch in a way replay cannot serve): redo the run
		// against the live emulator.
		c.mu.Lock()
		c.metrics.LiveFallbacks++
		c.mu.Unlock()
		return Direct{}.Run(ctx, j)
	}
	return r, err
}

// traceFor returns the cached trace for key, recording it (or fetching it
// from the blob store) if absent — coalescing concurrent requests onto one
// leader. A cached or blob-stored trace shorter than minSteps is treated
// as absent and replaced by a longer recording, unless it already runs to
// HALT (a halted trace is the whole program; no extension can lengthen
// it).
func (c *Traced) traceFor(p *prog.Program, window uint64, key string, minSteps uint64) (*trace.Trace, error) {
	for {
		c.mu.Lock()
		if c.entries == nil {
			c.entries = make(map[string]*traceEntry)
		}
		e, ok := c.entries[key]
		if ok {
			c.mu.Unlock()
			<-e.ready
			if e.err != nil {
				return nil, e.err
			}
			if e.tr.Halted || e.tr.Steps >= minSteps {
				return e.tr, nil
			}
			// Too short for this caller: retire the entry (one winner) and
			// loop; the next pass installs a longer recording.
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			continue
		}
		e = &traceEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.rememberLocked(key)
		c.mu.Unlock()

		e.tr, e.err = c.record(p, window, key, minSteps)
		close(e.ready)
		if e.err != nil {
			return nil, e.err
		}
		return e.tr, nil
	}
}

// rememberLocked appends key to the eviction order (once) and evicts the
// oldest entry past the limit. Caller holds c.mu.
func (c *Traced) rememberLocked(key string) {
	for _, k := range c.order {
		if k == key {
			return
		}
	}
	c.order = append(c.order, key)
	limit := c.Limit
	if limit <= 0 {
		limit = defaultTraceLimit
	}
	if len(c.order) > limit {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// record produces the trace for (p, window): from the blob store when a
// previous process already recorded a sufficient one, by running the
// functional emulator otherwise. Recording needs no timing machine — the
// stream depends only on the program — so the leader's cost is one
// emulator sweep over the window plus slack (or minSteps, when an
// exhausted replay is asking for a longer recording). A blob that fails
// to decode, belongs to another program, or is shorter than minSteps is
// treated as a miss and re-recorded, so a damaged or outgrown cache
// self-heals the way store.Cached's result reads do.
func (c *Traced) record(p *prog.Program, window uint64, key string, minSteps uint64) (*trace.Trace, error) {
	if c.Blobs != nil {
		if raw, ok, _ := c.Blobs.GetBlob(key); ok {
			if tr, err := trace.Decode(raw); err == nil && tr.ProgramDigest == p.Digest() &&
				(tr.Halted || tr.Steps >= minSteps) {
				c.mu.Lock()
				c.metrics.BlobHits++
				c.mu.Unlock()
				return tr, nil
			}
		}
	}
	budget := 2*window + traceSlackInstructions
	if minSteps > budget {
		budget = minSteps
	}
	rec := trace.NewRecorder(p)
	if err := rec.Extend(budget); err != nil {
		return nil, fmt.Errorf("job: recording %s over %d instructions: %w", p.Name, window, err)
	}
	tr := rec.Finalize(window)
	c.mu.Lock()
	c.metrics.Recordings++
	c.mu.Unlock()
	if c.Blobs != nil {
		// Best-effort: a full or read-only store costs persistence, not
		// correctness.
		_ = c.Blobs.PutBlob(key, tr.Encode())
	}
	return tr, nil
}
