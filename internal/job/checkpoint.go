package job

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// defaultWarmLimit bounds the retained warm snapshots. A snapshot holds a
// full machine (paged memory image, cache tags, predictor tables); the
// default comfortably covers a scheme × benchmark × cluster grid while
// keeping the working set in the tens of megabytes.
const defaultWarmLimit = 128

// Checkpointed is a Runner that simulates each job's warm phase at most
// once per warm key and replays measurement runs from the frozen snapshot
// (core's warm-state checkpointing). The warm key is the job with the
// measurement budget zeroed: warm state depends on everything else —
// including the steering scheme, whose tables train during warm-up — so
// only runs differing in Measure alone share a snapshot. Results are
// bit-identical to Direct (the checkpoint round-trip and golden-grid tests
// lock this); the savings materialize when the same grid runs repeatedly
// (benchmark iterations, measurement-window sweeps).
//
// The zero value is ready to use and safe for concurrent use; concurrent
// requests for the same warm key coalesce onto one warm simulation.
type Checkpointed struct {
	// Limit caps retained snapshots (oldest evicted first); 0 means
	// defaultWarmLimit. Set before the first Run.
	Limit int

	mu      sync.Mutex
	entries map[string]*warmEntry
	order   []string
}

// warmEntry is one warm key's slot: ready closes when the warm phase
// finished. cp is nil with a nil err when the job's policy cannot be
// snapshotted — followers fall back to a full Direct run.
type warmEntry struct {
	ready chan struct{}
	cp    *core.Checkpoint
	err   error
}

// warmKey identifies a job's warm phase: every field except the
// measurement budget.
func warmKey(j Job) string {
	j.Measure = 0
	return j.Key()
}

// Run executes the job, reusing the warm snapshot when one exists.
func (c *Checkpointed) Run(ctx context.Context, j Job) (*stats.Run, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := warmKey(j)
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[string]*warmEntry)
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.ready
		switch {
		case e.err != nil:
			return nil, e.err
		case e.cp == nil:
			return Direct{}.Run(ctx, j)
		}
		r, err := e.cp.Measure(j.Measure)
		if err != nil {
			return nil, fmt.Errorf("job: %s/%s: %w", j.Scheme, j.Benchmark, err)
		}
		r.Scheme = j.Scheme
		return r, nil
	}
	e := &warmEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	limit := c.Limit
	if limit <= 0 {
		limit = defaultWarmLimit
	}
	if len(c.order) > limit {
		// Evict the oldest key. Followers already waiting on its entry
		// hold the pointer and complete normally; later requests re-warm.
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.mu.Unlock()

	m, err := c.warm(ctx, j, e)
	close(e.ready)
	if err != nil {
		return nil, err
	}
	// The leader measures its own machine directly — the snapshot is for
	// the followers.
	r, err := m.Measure(j.Measure)
	if err != nil {
		return nil, fmt.Errorf("job: %s/%s: %w", j.Scheme, j.Benchmark, err)
	}
	r.Scheme = j.Scheme
	return r, nil
}

// warm builds the job's machine exactly as Direct does, runs the warm
// phase, and fills the entry with the snapshot (or the error; both are
// deterministic, so sharing them with followers preserves bit-identity).
func (c *Checkpointed) warm(ctx context.Context, j Job, e *warmEntry) (*core.Machine, error) {
	p, err := workload.Load(j.Benchmark)
	if err != nil {
		e.err = fmt.Errorf("job: %w", err)
		return nil, e.err
	}
	m, err := newMachine(ctx, j, p)
	if err != nil {
		e.err = err
		return nil, err
	}
	if err := m.Warm(j.Warmup); err != nil {
		e.err = fmt.Errorf("job: %s/%s: %w", j.Scheme, j.Benchmark, err)
		return nil, e.err
	}
	if cp, ok := m.Checkpoint(); ok {
		e.cp = cp
	}
	return m, nil
}
