// Package queue is the distributed half of the run layer: a durable-enough
// in-memory queue of planned jobs with lease/ack/nack semantics. Producers
// enqueue canonical jobs (deduplicated by content digest against both the
// queue and the result store), workers lease batches under a deadline,
// simulate them anywhere, and upload results that are verified and written
// into the shared store — so a worker completing key K satisfies every
// queued and future request for K, exactly like an in-process simulation
// would. Expired leases requeue with a bounded retry budget; completions
// that arrive after their lease expired are still accepted (results are
// deterministic, so late work is never wasted) but never double-counted.
//
// The queue is "durable enough" in the sense the service needs: it
// survives every client, worker and lease failure, but not a server
// restart — results, the expensive part, live in the content-addressed
// store, so a restarted server re-enqueues cheaply and re-simulates only
// what never completed.
package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/job"
	"repro/internal/job/store"
	"repro/internal/stats"
)

// Default tuning: leases are short enough that a crashed worker's jobs
// come back quickly, and three attempts distinguish a flaky worker from a
// job that genuinely cannot run.
const (
	DefaultLeaseTTL    = 30 * time.Second
	DefaultMaxAttempts = 3
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrUnknownLease reports a lease ID the queue is not holding: never
	// issued, already completed, or expired and the job completed by
	// another worker since.
	ErrUnknownLease = errors.New("queue: unknown lease")
	// ErrDigestMismatch reports an upload whose recomputed result digest
	// does not match the digest the worker claimed — a corrupt or
	// mis-encoded result that must not enter the store.
	ErrDigestMismatch = errors.New("queue: result digest mismatch")
	// ErrUnknownJob reports a completion for a key the queue has never
	// seen and the store does not hold — there is no evidence anyone asked
	// for this result, so it is refused rather than cached.
	ErrUnknownJob = errors.New("queue: unknown job")
)

// Options configures a Queue.
type Options struct {
	// LeaseTTL is how long a worker holds a leased job before the queue
	// reclaims it; Extend resets the clock. 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// MaxAttempts bounds how many times a job is handed out (initial lease
	// included) before it is marked failed instead of requeued. 0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Results is the shared result store: Enqueue deduplicates against it
	// and Complete writes verified uploads into it. Required.
	Results store.Store
	// OnFailed, when set, is called with the key and last error of every
	// job that exhausts its attempt budget and parks as failed — the
	// terminal outcome a result-store hook can never observe. It runs on
	// its own goroutine (failure parking happens inside the queue's
	// critical sections), so it may block without stalling the queue,
	// and it must be safe for concurrent use.
	OnFailed func(key, reason string)
	// now is the clock seam for expiry tests; nil means time.Now.
	now func() time.Time
}

// EnqueueStatus reports how Enqueue disposed of a job.
type EnqueueStatus string

const (
	// StatusQueued means the job entered the queue and will be leased.
	StatusQueued EnqueueStatus = "queued"
	// StatusDuplicate means an identical job is already queued or leased;
	// the in-flight copy will satisfy this submission too.
	StatusDuplicate EnqueueStatus = "duplicate"
	// StatusCached means the result store already holds this key; nothing
	// was enqueued.
	StatusCached EnqueueStatus = "cached"
)

// Enqueued is one job's enqueue outcome: the content digest clients poll
// GET /v1/results/{key} with, and how the queue disposed of it.
type Enqueued struct {
	Key    string        `json:"key"`
	Status EnqueueStatus `json:"status"`
}

// Lease is one leased job: the worker simulates Job and must Complete (or
// Nack, or let the deadline lapse) under ID before Deadline.
type Lease struct {
	ID       string    `json:"id"`
	Key      string    `json:"key"`
	Job      job.Job   `json:"job"`
	Deadline time.Time `json:"deadline"`
	// Attempt counts hand-outs of this job including this one (1 = first
	// try); workers can log it to distinguish fresh work from retries.
	Attempt int `json:"attempt"`
}

// The lease protocol's wire types live here, shared by cmd/dcaserve's
// handlers and internal/job/worker's client, so the two sides cannot
// drift: a field added for one is compiled into the other.

// LeaseRequest is the body of POST /v1/leases.
type LeaseRequest struct {
	// MaxJobs bounds the batch. The server rejects non-positive values
	// with 400 (a zero batch would long-poll 30s to return nothing by
	// construction) and caps the batch at its own maximum.
	MaxJobs int `json:"max_jobs"`
	// WaitMS long-polls an empty queue up to this long (the server caps
	// it); 0 returns immediately.
	WaitMS int64 `json:"wait_ms"`
}

// LeaseResponse carries the leased batch; empty means the poll timed out
// with no work (not an error — back off and poll again).
type LeaseResponse struct {
	Leases []Lease `json:"leases"`
	// LeaseTTLMS is the server's lease duration. Workers derive their
	// heartbeat interval from it rather than from Deadline, whose
	// absolute time is only meaningful on a clock synced to the server's.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
}

// CompleteRequest is the body of POST /v1/leases/{id}/complete: a result
// upload (Result + ResultDigest), or a failure report (Error set) that
// nacks the lease so the job requeues promptly.
type CompleteRequest struct {
	Key          string     `json:"key"`
	Result       *stats.Run `json:"result,omitempty"`
	ResultDigest string     `json:"result_digest,omitempty"`
	Error        string     `json:"error,omitempty"`
}

// Stats is a point-in-time snapshot of the queue.
type Stats struct {
	// Depth and Inflight are the current pending and leased job counts;
	// Failed counts jobs that exhausted their attempts and are parked
	// until re-enqueued.
	Depth    int `json:"depth"`
	Inflight int `json:"inflight"`
	Failed   int `json:"failed"`
	// Enqueued counts jobs accepted into the queue; DedupedQueue and
	// DedupedStore count submissions satisfied without enqueueing (an
	// identical queued/leased job, or a stored result).
	Enqueued     uint64 `json:"enqueued"`
	DedupedQueue uint64 `json:"deduped_queue"`
	DedupedStore uint64 `json:"deduped_store"`
	// Leased counts hand-outs (retries included). Completed counts jobs
	// finished by a live lease; LateCompleted counts uploads accepted
	// after their lease expired (the job is done either way — the split
	// exists so completions are never double-counted).
	Leased        uint64 `json:"leased"`
	Completed     uint64 `json:"completed"`
	LateCompleted uint64 `json:"late_completed"`
	// Expired counts lease deadlines that lapsed; Nacked counts explicit
	// failure reports; Retried counts requeues from either cause;
	// Exhausted counts jobs that hit MaxAttempts and parked as failed.
	Expired   uint64 `json:"expired"`
	Nacked    uint64 `json:"nacked"`
	Retried   uint64 `json:"retried"`
	Exhausted uint64 `json:"exhausted"`
}

// entryState is a queued job's lifecycle position.
type entryState int

const (
	statePending entryState = iota
	stateLeased
	stateFailed
)

// entry is one job's queue record.
type entry struct {
	job      job.Job
	key      string
	state    entryState
	attempts int
	leaseID  string
	deadline time.Time
	lastErr  string
}

// Queue is the lease-based job queue. All methods are safe for concurrent
// use; Lease long-polls without holding the lock.
type Queue struct {
	opts Options

	mu      sync.Mutex
	byKey   map[string]*entry // every live entry (pending, leased, failed)
	byLease map[string]*entry // leased entries by lease ID
	// pending is the hand-out order: fresh enqueues and requeues append,
	// leaseLocked pops from the front — O(batch) per lease instead of a
	// full-map scan under the lock. Entries that left the pending state
	// by another door (settled by a stale upload, resurrected) are
	// skipped lazily at pop time.
	pending []*entry
	wake    chan struct{} // closed+replaced when work becomes leasable
	closed  bool          // Close called: Lease stops long-polling
	seq     uint64        // lease ID counter
	stats   Stats
}

// New returns a queue over opts.Results.
func New(opts Options) *Queue {
	if opts.Results == nil {
		panic("queue: Options.Results is required")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	return &Queue{
		opts:    opts,
		byKey:   make(map[string]*entry),
		byLease: make(map[string]*entry),
		wake:    make(chan struct{}),
	}
}

// LeaseTTL returns the queue's effective lease duration (workers size
// their heartbeat interval from it).
func (q *Queue) LeaseTTL() time.Duration { return q.opts.LeaseTTL }

// Close puts the queue in draining mode: every blocked Lease wakes and
// returns immediately (with whatever is leasable, usually nothing), and
// future Lease calls stop long-polling. A shutting-down server calls this
// before http.Server.Shutdown so idle workers' long-polls cannot hold the
// drain open for their full wait. Enqueue/Complete/Extend still work —
// close only affects waiting.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.wakeLocked()
	q.mu.Unlock()
}

// wakeLocked signals every long-polling Lease that leasable work may
// exist. Callers hold q.mu.
func (q *Queue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// Enqueue submits planned jobs, deduplicating each by content digest:
// against the store first (the result may already exist), then against the
// queue (an identical job may be pending or leased). Failed jobs re-enter
// the queue with a fresh attempt budget — re-enqueueing is the retry
// escape hatch. The outcome slice is positional: out[i] is jobs[i]'s.
func (q *Queue) Enqueue(jobs []job.Job) []Enqueued {
	out := make([]Enqueued, len(jobs))
	for i, j := range jobs {
		key := j.Key()
		out[i] = Enqueued{Key: key, Status: q.enqueueOne(j, key)}
	}
	return out
}

func (q *Queue) enqueueOne(j job.Job, key string) EnqueueStatus {
	// Cheap store probe outside the lock first (disk-backed stores do
	// I/O here); the miss path re-checks under the lock below.
	if _, ok, err := q.opts.Results.Get(key); err == nil && ok {
		q.mu.Lock()
		q.stats.DedupedStore++
		q.mu.Unlock()
		return StatusCached
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.byKey[key]; !ok {
		// Double-check the store under the lock: Complete writes the
		// result before it removes the queue entry, so a key absent from
		// both here is genuinely unsimulated — without this re-check, an
		// enqueue racing a completion could slip between the Put and the
		// outside probe and simulate the job a second time.
		//dca:allow(lockdiscipline: deliberate store read in the dedup critical section — the race it closes is documented above, and enqueue is not on the lease hot path)
		if _, ok, err := q.opts.Results.Get(key); err == nil && ok {
			q.stats.DedupedStore++
			return StatusCached
		}
	}
	if e, ok := q.byKey[key]; ok {
		if e.state != stateFailed {
			q.stats.DedupedQueue++
			return StatusDuplicate
		}
		// A parked failure gets a fresh budget.
		e.state = statePending
		e.attempts = 0
		e.lastErr = ""
		q.pending = append(q.pending, e)
		q.stats.Enqueued++
		q.wakeLocked()
		return StatusQueued
	}
	e := &entry{job: j, key: key, state: statePending}
	q.byKey[key] = e
	q.pending = append(q.pending, e)
	q.stats.Enqueued++
	q.wakeLocked()
	return StatusQueued
}

// expireLocked reclaims every lease whose deadline passed: the job
// requeues (retry) or parks as failed (attempt budget exhausted). Callers
// hold q.mu. Returns true if any job became leasable.
func (q *Queue) expireLocked(now time.Time) bool {
	woke := false
	for id, e := range q.byLease {
		if now.Before(e.deadline) {
			continue
		}
		delete(q.byLease, id)
		e.leaseID = ""
		q.stats.Expired++
		if e.attempts >= q.opts.MaxAttempts {
			e.state = stateFailed
			e.lastErr = fmt.Sprintf("lease expired after %d attempts", e.attempts)
			q.stats.Exhausted++
			q.notifyFailedLocked(e.key, e.lastErr)
			continue
		}
		// Requeue at the back: a job that already burned a lease should
		// not head-of-line-block the fresh work in front of it.
		e.state = statePending
		q.pending = append(q.pending, e)
		q.stats.Retried++
		woke = true
	}
	return woke
}

// nextDeadlineLocked returns the earliest live lease deadline and whether
// one exists. Callers hold q.mu.
func (q *Queue) nextDeadlineLocked() (time.Time, bool) {
	var min time.Time
	for _, e := range q.byLease {
		if min.IsZero() || e.deadline.Before(min) {
			min = e.deadline
		}
	}
	return min, !min.IsZero()
}

// leaseLocked hands out up to max pending jobs in FIFO order (requeues
// ride at the back). Callers hold q.mu.
func (q *Queue) leaseLocked(max int, now time.Time) []Lease {
	var leases []Lease
	for len(q.pending) > 0 && len(leases) < max {
		e := q.pending[0]
		q.pending[0] = nil // let the popped entry go
		q.pending = q.pending[1:]
		// Skip entries that left the pending state by another door while
		// queued: settled by a stale upload (gone from byKey) or
		// resurrected from failure into a fresh pending slot (this slice
		// position is the stale one if states disagree).
		if q.byKey[e.key] != e || e.state != statePending {
			continue
		}
		q.seq++
		e.state = stateLeased
		e.attempts++
		e.leaseID = fmt.Sprintf("lease-%d", q.seq)
		e.deadline = now.Add(q.opts.LeaseTTL)
		q.byLease[e.leaseID] = e
		q.stats.Leased++
		leases = append(leases, Lease{
			ID:       e.leaseID,
			Key:      e.key,
			Job:      e.job,
			Deadline: e.deadline,
			Attempt:  e.attempts,
		})
	}
	return leases
}

// Lease hands out up to max pending jobs, long-polling up to wait for work
// when the queue is empty: the call returns as soon as at least one job is
// leasable, when wait lapses (empty result, nil error), or when ctx is
// done (its error). Expired leases are reclaimed on every pass, so a
// blocked Lease also plays the reaper.
func (q *Queue) Lease(ctx context.Context, max int, wait time.Duration) ([]Lease, error) {
	if max <= 0 {
		max = 1
	}
	pollDeadline := q.opts.now().Add(wait)
	for {
		now := q.opts.now()
		q.mu.Lock()
		q.expireLocked(now)
		leases := q.leaseLocked(max, now)
		wake := q.wake
		closed := q.closed
		nextExpiry, hasLeases := q.nextDeadlineLocked()
		q.mu.Unlock()
		if len(leases) > 0 {
			return leases, nil
		}
		if closed {
			return nil, nil
		}
		sleep := pollDeadline.Sub(now)
		if sleep <= 0 {
			return nil, nil
		}
		// Wake early if a lease will expire (its job requeues) before the
		// poll deadline.
		if hasLeases {
			if until := nextExpiry.Sub(now); until < sleep {
				sleep = until
			}
		}
		if sleep < time.Millisecond {
			sleep = time.Millisecond
		}
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-wake:
			timer.Stop()
		case <-timer.C:
		}
	}
}

// Complete uploads a finished job's result. The digest the worker claims
// is verified against a recomputation over the uploaded run — a mismatch
// is rejected before the store sees it. A live lease completes normally; a
// stale one (expired, or superseded after requeue) is still accepted when
// the job is live — simulation is deterministic, so late work is as good
// as fresh — but recorded as LateCompleted, never double-counted. Uploads
// for keys the queue has never seen are refused unless the store already
// holds the key (an idempotent replay).
func (q *Queue) Complete(leaseID, key string, r *stats.Run, claimedDigest string) error {
	if got := job.ResultDigest(r); got != claimedDigest {
		return fmt.Errorf("%w: recomputed %s, claimed %s", ErrDigestMismatch, got, claimedDigest)
	}

	q.mu.Lock()
	if q.expireLocked(q.opts.now()) {
		q.wakeLocked()
	}
	e, live := q.byLease[leaseID]
	if live && e.key != key {
		q.mu.Unlock()
		return fmt.Errorf("%w: lease %s holds key %s, not %s", ErrUnknownLease, leaseID, e.key, key)
	}
	if !live {
		// Stale lease: accept iff the key is still live in the queue (a
		// requeued copy another worker may also be running) or already
		// stored (idempotent replay of identical bytes).
		if _, ok := q.byKey[key]; !ok {
			q.mu.Unlock()
			if _, stored, err := q.opts.Results.Get(key); err == nil && stored {
				return nil
			}
			return fmt.Errorf("%w: key %s (lease %s)", ErrUnknownJob, key, leaseID)
		}
	}
	q.mu.Unlock()

	// Store before settling: enqueue dedup consults the store, then the
	// queue — publishing the result first means no enqueue can observe
	// "in neither" mid-completion and simulate the job a second time. The
	// write is best-effort like Cached's (a full disk only costs reuse).
	_ = q.opts.Results.Put(key, r)

	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.byKey[key]
	if !ok {
		// A racing completion settled the entry while we wrote: identical
		// bytes, already counted once — an idempotent replay.
		return nil
	}
	if e.leaseID != "" {
		delete(q.byLease, e.leaseID)
	}
	delete(q.byKey, key)
	if live && e.leaseID == leaseID {
		q.stats.Completed++
	} else {
		q.stats.LateCompleted++
	}
	return nil
}

// Nack reports a failed attempt: the job requeues for another worker, or
// parks as failed once its attempt budget is exhausted. Unknown leases
// (expired and reclaimed, or completed elsewhere) are reported as such —
// by then the queue has already made its own decision about the job.
func (q *Queue) Nack(leaseID, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.expireLocked(q.opts.now()) {
		q.wakeLocked()
	}
	e, ok := q.byLease[leaseID]
	if !ok {
		return fmt.Errorf("%w: lease %s", ErrUnknownLease, leaseID)
	}
	delete(q.byLease, leaseID)
	e.leaseID = ""
	e.lastErr = reason
	q.stats.Nacked++
	if e.attempts >= q.opts.MaxAttempts {
		e.state = stateFailed
		q.stats.Exhausted++
		q.notifyFailedLocked(e.key, e.lastErr)
		return nil
	}
	e.state = statePending
	q.pending = append(q.pending, e)
	q.stats.Retried++
	q.wakeLocked()
	return nil
}

// Extend heartbeats a lease, resetting its deadline to a full TTL from
// now. Workers holding jobs longer than the TTL call this periodically;
// an unknown lease means the queue reclaimed the job (the worker should
// abandon it — a requeued copy is someone else's now).
func (q *Queue) Extend(leaseID string) (time.Time, error) {
	now := q.opts.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(now)
	e, ok := q.byLease[leaseID]
	if !ok {
		return time.Time{}, fmt.Errorf("%w: lease %s", ErrUnknownLease, leaseID)
	}
	e.deadline = now.Add(q.opts.LeaseTTL)
	return e.deadline, nil
}

// notifyFailedLocked dispatches the OnFailed hook for a job that just
// parked as failed. Callers hold q.mu; the hook itself runs on a fresh
// goroutine so a slow or re-entrant subscriber cannot deadlock the queue.
func (q *Queue) notifyFailedLocked(key, reason string) {
	if q.opts.OnFailed == nil {
		return
	}
	go q.opts.OnFailed(key, reason)
}

// Failed reports whether key is currently parked as failed, and the last
// error recorded for it. Watchers consult this to settle subscriptions to
// jobs that died before they subscribed (the OnFailed hook only covers
// failures that happen while they are listening).
func (q *Queue) Failed(key string) (reason string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, present := q.byKey[key]
	if !present || e.state != stateFailed {
		return "", false
	}
	return e.lastErr, true
}

// Stats returns a snapshot of the queue's counters, reclaiming expired
// leases first so Depth/Inflight reflect reality rather than dead leases.
func (q *Queue) Stats() Stats {
	now := q.opts.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.expireLocked(now) {
		q.wakeLocked()
	}
	s := q.stats
	for _, e := range q.byKey {
		switch e.state {
		case statePending:
			s.Depth++
		case stateLeased:
			s.Inflight++
		case stateFailed:
			s.Failed++
		}
	}
	return s
}
