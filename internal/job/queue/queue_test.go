package queue

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/job/store"
	"repro/internal/stats"
)

// fakeClock is the expiry test seam: a manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func planJob(t *testing.T, scheme, bench string) job.Job {
	t.Helper()
	j, err := job.Spec{Scheme: scheme, Benchmark: bench, Warmup: 10, Measure: 100}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func newTestQueue(t *testing.T, clock *fakeClock) (*Queue, store.Store) {
	t.Helper()
	st := store.NewMemory(0)
	opts := Options{LeaseTTL: time.Minute, MaxAttempts: 3, Results: st}
	if clock != nil {
		opts.now = clock.Now
	}
	return New(opts), st
}

// mustLease leases up to max jobs without waiting and fails the test on
// error.
func mustLease(t *testing.T, q *Queue, max int) []Lease {
	t.Helper()
	ls, err := q.Lease(context.Background(), max, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// completeLease simulates a leased job for real and uploads it.
func completeLease(t *testing.T, q *Queue, l Lease) *stats.Run {
	t.Helper()
	r, err := job.Direct{}.Run(context.Background(), l.Job)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(l.ID, l.Key, r, job.ResultDigest(r)); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestEnqueueDedup is the dedup contract: identical jobs collapse onto
// one queue entry, and jobs whose results are already stored never enter
// the queue at all.
func TestEnqueueDedup(t *testing.T) {
	q, st := newTestQueue(t, nil)
	j := planJob(t, "modulo", "go")
	other := planJob(t, "modulo", "compress")

	out := q.Enqueue([]job.Job{j, j, other})
	if out[0].Status != StatusQueued || out[1].Status != StatusDuplicate || out[2].Status != StatusQueued {
		t.Fatalf("statuses = %v %v %v, want queued duplicate queued", out[0].Status, out[1].Status, out[2].Status)
	}
	if out[0].Key != out[1].Key || out[0].Key == out[2].Key {
		t.Fatalf("keys: %s %s %s", out[0].Key, out[1].Key, out[2].Key)
	}

	// Leased (not just pending) entries still dedup.
	ls := mustLease(t, q, 1)
	if len(ls) != 1 {
		t.Fatalf("leased %d jobs, want 1", len(ls))
	}
	if got := q.Enqueue([]job.Job{ls[0].Job}); got[0].Status != StatusDuplicate {
		t.Errorf("re-enqueue of a leased job = %s, want duplicate", got[0].Status)
	}

	// A stored result short-circuits enqueue entirely.
	stored := planJob(t, "random", "go")
	r, err := job.Direct{}.Run(context.Background(), stored)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(stored.Key(), r); err != nil {
		t.Fatal(err)
	}
	if got := q.Enqueue([]job.Job{stored}); got[0].Status != StatusCached {
		t.Errorf("enqueue of a stored job = %s, want cached", got[0].Status)
	}

	s := q.Stats()
	if s.Enqueued != 2 || s.DedupedQueue != 2 || s.DedupedStore != 1 {
		t.Errorf("stats = %+v, want 2 enqueued / 2 queue-dedups / 1 store-dedup", s)
	}
}

// TestLeaseFIFOAndComplete checks hand-out order, the happy completion
// path, and that completing writes the verified result into the store.
func TestLeaseFIFOAndComplete(t *testing.T) {
	q, st := newTestQueue(t, nil)
	first := planJob(t, "modulo", "go")
	second := planJob(t, "modulo", "compress")
	q.Enqueue([]job.Job{first, second})

	ls := mustLease(t, q, 10)
	if len(ls) != 2 {
		t.Fatalf("leased %d jobs, want 2", len(ls))
	}
	if ls[0].Key != first.Key() || ls[1].Key != second.Key() {
		t.Errorf("lease order is not FIFO: got %s then %s", ls[0].Key, ls[1].Key)
	}
	if ls[0].Attempt != 1 {
		t.Errorf("first lease Attempt = %d, want 1", ls[0].Attempt)
	}

	r := completeLease(t, q, ls[0])
	got, ok, err := st.Get(ls[0].Key)
	if err != nil || !ok {
		t.Fatalf("store.Get after complete = (%v, %v)", ok, err)
	}
	if job.ResultDigest(got) != job.ResultDigest(r) {
		t.Error("stored result digest differs from the uploaded one")
	}

	s := q.Stats()
	if s.Completed != 1 || s.Inflight != 1 || s.Depth != 0 {
		t.Errorf("stats = %+v, want 1 completed / 1 inflight", s)
	}
}

// TestCompleteVerifiesDigest checks corrupt uploads are refused before
// they can reach the store.
func TestCompleteVerifiesDigest(t *testing.T) {
	q, st := newTestQueue(t, nil)
	q.Enqueue([]job.Job{planJob(t, "modulo", "go")})
	l := mustLease(t, q, 1)[0]

	r, err := job.Direct{}.Run(context.Background(), l.Job)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(l.ID, l.Key, r, "0000"); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("bad digest: err = %v, want ErrDigestMismatch", err)
	}
	if st.Len() != 0 {
		t.Error("rejected upload reached the store")
	}
	// The lease is still live: a correct retry succeeds.
	if err := q.Complete(l.ID, l.Key, r, job.ResultDigest(r)); err != nil {
		t.Fatalf("correct retry after mismatch: %v", err)
	}
}

// TestLongPollWakesOnEnqueue checks a blocked Lease returns as soon as
// work arrives instead of sleeping out its budget.
func TestLongPollWakesOnEnqueue(t *testing.T) {
	q, _ := newTestQueue(t, nil)
	type leased struct {
		ls  []Lease
		err error
	}
	done := make(chan leased, 1)
	go func() {
		ls, err := q.Lease(context.Background(), 1, 30*time.Second)
		done <- leased{ls, err}
	}()
	// Give the poller a moment to block, then feed it.
	time.Sleep(20 * time.Millisecond)
	q.Enqueue([]job.Job{planJob(t, "modulo", "go")})
	select {
	case got := <-done:
		if got.err != nil || len(got.ls) != 1 {
			t.Fatalf("Lease = (%d leases, %v), want 1 lease", len(got.ls), got.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not wake on enqueue")
	}
}

// TestLeaseRespectsContext checks a cancelled context unblocks the poll
// with its error.
func TestLeaseRespectsContext(t *testing.T) {
	q, _ := newTestQueue(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.Lease(ctx, 1, 30*time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Lease did not honor cancellation")
	}
}

// TestCloseUnblocksLease checks draining mode: Close wakes a blocked
// long-poll immediately (empty, no error) and later polls return without
// waiting, while enqueue and completion keep working.
func TestCloseUnblocksLease(t *testing.T) {
	q, _ := newTestQueue(t, nil)
	done := make(chan error, 1)
	go func() {
		ls, err := q.Lease(context.Background(), 1, 30*time.Second)
		if len(ls) != 0 {
			t.Errorf("leased %d jobs from an empty closed queue", len(ls))
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Lease after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the long-poll")
	}

	// Closed ≠ dead: work still flows, polls just don't block.
	q.Enqueue([]job.Job{planJob(t, "modulo", "go")})
	start := time.Now()
	ls, err := q.Lease(context.Background(), 1, 30*time.Second)
	if err != nil || len(ls) != 1 {
		t.Fatalf("Lease on closed queue = (%d, %v), want the enqueued job", len(ls), err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Lease blocked on a closed queue")
	}
	completeLease(t, q, ls[0])
}

// TestExpiryRequeuesAndBoundsRetries is the lease lifecycle under a
// crashing worker: an expired lease requeues the job with its attempt
// counted, and MaxAttempts expirations park it as failed.
func TestExpiryRequeuesAndBoundsRetries(t *testing.T) {
	clock := newFakeClock()
	q, _ := newTestQueue(t, clock)
	q.Enqueue([]job.Job{planJob(t, "modulo", "go")})

	for attempt := 1; attempt <= 3; attempt++ {
		ls := mustLease(t, q, 1)
		if len(ls) != 1 {
			t.Fatalf("attempt %d: leased %d jobs, want 1", attempt, len(ls))
		}
		if ls[0].Attempt != attempt {
			t.Errorf("lease Attempt = %d, want %d", ls[0].Attempt, attempt)
		}
		clock.Advance(2 * time.Minute) // past the 1-minute TTL
	}
	// Third expiry exhausted the budget: nothing leasable, one failure.
	if ls := mustLease(t, q, 1); len(ls) != 0 {
		t.Fatalf("leased %d jobs after exhaustion, want 0", len(ls))
	}
	s := q.Stats()
	if s.Failed != 1 || s.Expired != 3 || s.Retried != 2 || s.Exhausted != 1 {
		t.Errorf("stats = %+v, want 1 failed / 3 expired / 2 retried / 1 exhausted", s)
	}

	// Re-enqueueing a failed job grants a fresh budget.
	if got := q.Enqueue([]job.Job{planJob(t, "modulo", "go")}); got[0].Status != StatusQueued {
		t.Fatalf("re-enqueue of failed job = %s, want queued", got[0].Status)
	}
	if ls := mustLease(t, q, 1); len(ls) != 1 || ls[0].Attempt != 1 {
		t.Fatalf("resurrected job lease = %+v, want attempt 1", ls)
	}
}

// TestExtendKeepsLeaseAlive checks heartbeats push the deadline out.
func TestExtendKeepsLeaseAlive(t *testing.T) {
	clock := newFakeClock()
	q, _ := newTestQueue(t, clock)
	q.Enqueue([]job.Job{planJob(t, "modulo", "go")})
	l := mustLease(t, q, 1)[0]

	// Heartbeat every 40s against a 60s TTL: without Extend the second
	// advance would expire the lease.
	for i := 0; i < 3; i++ {
		clock.Advance(40 * time.Second)
		if _, err := q.Extend(l.ID); err != nil {
			t.Fatalf("extend %d: %v", i, err)
		}
	}
	if s := q.Stats(); s.Expired != 0 || s.Inflight != 1 {
		t.Errorf("stats = %+v, want 0 expired / 1 inflight", s)
	}
	// Stop heartbeating: the lease lapses and Extend starts failing.
	clock.Advance(2 * time.Minute)
	if _, err := q.Extend(l.ID); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("extend after expiry: err = %v, want ErrUnknownLease", err)
	}
}

// TestLateCompletionNotDoubleCounted is the expired-worker upload path: a
// worker whose lease lapsed uploads anyway; the result is accepted (it is
// deterministic) but counted as late, and the requeued copy disappears so
// no one simulates it again.
func TestLateCompletionNotDoubleCounted(t *testing.T) {
	clock := newFakeClock()
	q, st := newTestQueue(t, clock)
	q.Enqueue([]job.Job{planJob(t, "modulo", "go")})
	l := mustLease(t, q, 1)[0]

	r, err := job.Direct{}.Run(context.Background(), l.Job)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute) // the lease expires; the job requeues
	if err := q.Complete(l.ID, l.Key, r, job.ResultDigest(r)); err != nil {
		t.Fatalf("late completion refused: %v", err)
	}
	if _, ok, _ := st.Get(l.Key); !ok {
		t.Fatal("late result not stored")
	}
	if ls := mustLease(t, q, 1); len(ls) != 0 {
		t.Fatal("job still leasable after a late completion")
	}
	s := q.Stats()
	if s.Completed != 0 || s.LateCompleted != 1 {
		t.Errorf("stats = %+v, want 0 completed / 1 late", s)
	}

	// A second replay of the same upload (the other common race) is a
	// stored-key no-op, not an error and not another count.
	if err := q.Complete(l.ID, l.Key, r, job.ResultDigest(r)); err != nil {
		t.Fatalf("idempotent replay: %v", err)
	}
	if s := q.Stats(); s.LateCompleted != 1 {
		t.Errorf("replay double-counted: %+v", s)
	}
}

// TestCompleteUnknownJobRefused checks an upload for a key nobody asked
// for (and the store does not hold) is refused.
func TestCompleteUnknownJobRefused(t *testing.T) {
	q, st := newTestQueue(t, nil)
	j := planJob(t, "modulo", "go")
	r, err := job.Direct{}.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	err = q.Complete("lease-999", j.Key(), r, job.ResultDigest(r))
	if !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
	if st.Len() != 0 {
		t.Error("refused upload reached the store")
	}
}

// TestNackRequeues checks explicit failure reports requeue promptly and
// still respect the attempt budget.
func TestNackRequeues(t *testing.T) {
	q, _ := newTestQueue(t, nil)
	q.Enqueue([]job.Job{planJob(t, "modulo", "go")})

	for attempt := 1; attempt <= 3; attempt++ {
		ls := mustLease(t, q, 1)
		if len(ls) != 1 || ls[0].Attempt != attempt {
			t.Fatalf("attempt %d: leases = %+v", attempt, ls)
		}
		if err := q.Nack(ls[0].ID, "injected"); err != nil {
			t.Fatal(err)
		}
	}
	if ls := mustLease(t, q, 1); len(ls) != 0 {
		t.Fatal("job leasable after exhausting its budget via nacks")
	}
	s := q.Stats()
	if s.Nacked != 3 || s.Retried != 2 || s.Exhausted != 1 || s.Failed != 1 {
		t.Errorf("stats = %+v, want 3 nacked / 2 retried / 1 exhausted / 1 failed", s)
	}
	if err := q.Nack("lease-999", "x"); !errors.Is(err, ErrUnknownLease) {
		t.Errorf("nack of unknown lease: err = %v, want ErrUnknownLease", err)
	}
}

// TestConcurrentEnqueueLease hammers the queue from both sides and checks
// conservation: every enqueued job is completed exactly once.
func TestConcurrentEnqueueLease(t *testing.T) {
	q, _ := newTestQueue(t, nil)
	benches := []string{"go", "compress", "gcc", "li"}
	schemes := []string{"modulo", "random", "general"}
	var jobs []job.Job
	for _, s := range schemes {
		for _, b := range benches {
			jobs = append(jobs, planJob(t, s, b))
		}
	}

	// Producers: every job enqueued from 4 goroutines at once — dedup
	// must collapse them to one entry each.
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Enqueue(jobs)
		}()
	}

	// Consumers: drain without simulating (a canned run per key keeps the
	// test fast); stop once every job completed.
	var mu sync.Mutex
	completions := map[string]int{}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				done := len(completions) == len(jobs)
				mu.Unlock()
				if done || ctx.Err() != nil {
					return
				}
				ls, err := q.Lease(ctx, 2, 50*time.Millisecond)
				if err != nil {
					return
				}
				for _, l := range ls {
					r := &stats.Run{Scheme: l.Job.Scheme, Instructions: 1}
					if err := q.Complete(l.ID, l.Key, r, job.ResultDigest(r)); err != nil {
						t.Errorf("complete %s: %v", l.Key, err)
					}
					mu.Lock()
					completions[l.Key]++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if len(completions) != len(jobs) {
		t.Fatalf("completed %d distinct jobs, want %d", len(completions), len(jobs))
	}
	for key, n := range completions {
		if n != 1 {
			t.Errorf("key %s completed %d times", key, n)
		}
	}
	s := q.Stats()
	if s.Completed != uint64(len(jobs)) || s.Enqueued != uint64(len(jobs)) {
		t.Errorf("stats = %+v, want %d completed and enqueued", s, len(jobs))
	}
	if s.DedupedQueue+s.DedupedStore != uint64(3*len(jobs)) {
		t.Errorf("dedups = %d queue + %d store, want %d total",
			s.DedupedQueue, s.DedupedStore, 3*len(jobs))
	}
}

// TestOnFailedHookAndFailedLookup pins the terminal-failure signal: a job
// that exhausts its attempt budget — by explicit nack or by lease expiry —
// fires Options.OnFailed with its key and last error, and Failed reports
// it until a re-enqueue resurrects the entry.
func TestOnFailedHookAndFailedLookup(t *testing.T) {
	clock := newFakeClock()
	st := store.NewMemory(0)
	type failure struct{ key, reason string }
	failures := make(chan failure, 4)
	q := New(Options{
		LeaseTTL:    time.Minute,
		MaxAttempts: 1,
		Results:     st,
		now:         clock.Now,
		OnFailed:    func(key, reason string) { failures <- failure{key, reason} },
	})

	// Nack path: one attempt allowed, so the first nack parks the job.
	j := planJob(t, "modulo", "go")
	q.Enqueue([]job.Job{j})
	l := mustLease(t, q, 1)[0]
	if err := q.Nack(l.ID, "simulator exploded"); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-failures:
		if f.key != j.Key() || f.reason != "simulator exploded" {
			t.Fatalf("OnFailed(%q, %q), want key %s reason %q", f.key, f.reason, j.Key(), "simulator exploded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnFailed never fired for the nacked job")
	}
	if reason, ok := q.Failed(j.Key()); !ok || reason != "simulator exploded" {
		t.Fatalf("Failed(%s) = (%q, %v), want the parked reason", j.Key(), reason, ok)
	}

	// Expiry path: the deadline lapsing must fire the hook too.
	j2 := planJob(t, "fifo", "go")
	q.Enqueue([]job.Job{j2})
	mustLease(t, q, 1)
	clock.Advance(2 * time.Minute)
	q.Stats() // reaps the expired lease
	select {
	case f := <-failures:
		if f.key != j2.Key() {
			t.Fatalf("OnFailed fired for %s, want %s", f.key, j2.Key())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnFailed never fired for the expired job")
	}

	// A healthy key reports no failure; a resurrected one stops reporting.
	if _, ok := q.Failed("no-such-key"); ok {
		t.Fatal("Failed reported an unknown key as failed")
	}
	q.Enqueue([]job.Job{j})
	if _, ok := q.Failed(j.Key()); ok {
		t.Fatal("Failed still reports a re-enqueued (pending) job")
	}
}
