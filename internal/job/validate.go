package job

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/steer"
	"repro/internal/workload"
)

// This file is the single home of run-layer input validation. cmd/dcasim,
// cmd/dcabench and internal/experiments all reject unknown schemes,
// benchmarks and cluster counts through these functions, so a typo fails
// in microseconds — before any simulation starts — with the same error
// text everywhere.

// ValidateClusters rejects cluster counts no machine preset supports: 0
// (the paper's asymmetric two-cluster processor) and 1..config.MaxClusters
// (config.ClusteredN) are valid.
func ValidateClusters(clusters int) error {
	if clusters < 0 || clusters > config.MaxClusters {
		return fmt.Errorf("job: %d clusters unsupported (want 0 for the paper's machine, or 1..%d)",
			clusters, config.MaxClusters)
	}
	return nil
}

// ValidateMeasure rejects empty measurement windows: a zero-measure job
// would still plan, digest and cache, poisoning the store with a record
// of nothing.
func ValidateMeasure(measure uint64) error {
	if measure == 0 {
		return fmt.Errorf("job: measure must be positive")
	}
	return nil
}

// ValidateScheme rejects scheme names that are neither registered steering
// schemes nor the base/ub pseudo-schemes.
func ValidateScheme(scheme string) error {
	if scheme == BaseScheme || scheme == UBScheme || steer.Known(scheme) {
		return nil
	}
	return fmt.Errorf("job: unknown scheme %q (known: %s; plus the pseudo-schemes %q and %q)",
		scheme, strings.Join(steer.Names(), ", "), BaseScheme, UBScheme)
}

// ValidateBenchmark rejects workload names the registry does not know.
func ValidateBenchmark(bench string) error {
	if _, err := workload.Get(bench); err != nil {
		return fmt.Errorf("job: %w", err)
	}
	return nil
}

// ValidateInputs checks a full grid request: every scheme, every
// benchmark, and the cluster count.
func ValidateInputs(schemes, benches []string, clusters int) error {
	if err := ValidateClusters(clusters); err != nil {
		return err
	}
	for _, s := range schemes {
		if err := ValidateScheme(s); err != nil {
			return err
		}
	}
	for _, b := range benches {
		if err := ValidateBenchmark(b); err != nil {
			return err
		}
	}
	return nil
}
