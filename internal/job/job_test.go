package job

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/workload"
)

// planned builds a representative spread of canonical jobs: pseudo-schemes,
// FIFO, balance schemes, default and tweaked params, several machine sizes.
func planned(t *testing.T) []Job {
	t.Helper()
	tweaked := steer.DefaultParams()
	tweaked.Threshold = 4
	tweaked.Window = 32
	off := false
	tweaked.UseI2 = &off
	specs := []Spec{
		{Scheme: BaseScheme, Benchmark: "go", Warmup: 100, Measure: 1000},
		{Scheme: UBScheme, Benchmark: "compress", Warmup: 100, Measure: 1000},
		{Scheme: "fifo", Benchmark: "gcc", Warmup: 50, Measure: 500},
		{Scheme: "general", Benchmark: "li", Warmup: 0, Measure: 2000},
		{Scheme: "general", Benchmark: "li", Clusters: 4, Warmup: 0, Measure: 2000},
		{Scheme: "fifo", Benchmark: "perl", Clusters: 8, Warmup: 10, Measure: 100},
		{Scheme: "modulo", Benchmark: "vortex", Warmup: 1, Measure: 1, Params: &tweaked},
	}
	jobs := make([]Job, 0, len(specs))
	for _, s := range specs {
		j, err := s.Plan()
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// TestJobRoundTrip is the serialization property the store depends on:
// decode(encode(j)) == j exactly, and the content digest is stable across
// any number of round trips.
func TestJobRoundTrip(t *testing.T) {
	for _, j := range planned(t) {
		key := j.Key()
		raw, err := json.Marshal(j)
		if err != nil {
			t.Fatal(err)
		}
		var back Job
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(j, back) {
			t.Errorf("%s/%s: round trip diverged:\n  in  %+v\n  out %+v", j.Scheme, j.Benchmark, j, back)
		}
		if back.Key() != key {
			t.Errorf("%s/%s: digest changed across round trip: %s != %s", j.Scheme, j.Benchmark, back.Key(), key)
		}
		raw2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(raw2) {
			t.Errorf("%s/%s: re-encoding is not byte-identical", j.Scheme, j.Benchmark)
		}
	}
}

// TestKeyDiscriminates checks the digest separates every planned job and
// is insensitive to how the identical job was arrived at.
func TestKeyDiscriminates(t *testing.T) {
	jobs := planned(t)
	keys := make(map[string]string, len(jobs))
	for _, j := range jobs {
		k := j.Key()
		if len(k) != 64 {
			t.Errorf("key %q is not a hex sha256", k)
		}
		if prev, dup := keys[k]; dup {
			t.Errorf("digest collision between %s/%s and %s", j.Scheme, j.Benchmark, prev)
		}
		keys[k] = j.Scheme + "/" + j.Benchmark
	}

	// Same cell planned twice — including once from a JSON-decoded spec —
	// must hash identically.
	a, err := Spec{Scheme: "general", Benchmark: "go", Warmup: 10, Measure: 100}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var spec Spec
	if err := json.Unmarshal([]byte(`{"scheme":"general","benchmark":"go","warmup":10,"measure":100}`), &spec); err != nil {
		t.Fatal(err)
	}
	b, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("identical cells hash differently: %s != %s", a.Key(), b.Key())
	}
}

// TestPseudoSchemeParamsCanonicalized checks the canonicalization rule:
// steering parameters cannot affect the base/ub machines, so planned
// pseudo-scheme jobs zero them — different callers' params defaults must
// not split the cache.
func TestPseudoSchemeParamsCanonicalized(t *testing.T) {
	tweaked := steer.DefaultParams()
	tweaked.Threshold = 99
	a, err := Spec{Scheme: BaseScheme, Benchmark: "go", Warmup: 10, Measure: 100}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Spec{Scheme: BaseScheme, Benchmark: "go", Warmup: 10, Measure: 100, Params: &tweaked}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("base jobs with different (ignored) params hash differently")
	}
	if !reflect.DeepEqual(a.Params, steer.Params{}) {
		t.Errorf("base job params = %+v, want zeroed", a.Params)
	}
}

// TestRunRoundTrip runs one real (tiny) simulation and checks the result
// JSON round-trips bit-identically — the property that makes cache hits
// equal to cold runs.
func TestRunRoundTrip(t *testing.T) {
	j, err := Spec{Scheme: "general", Benchmark: "compress", Warmup: 200, Measure: 2_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Direct{}.Run(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	digest := ResultDigest(r)
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back := new(stats.Run)
	if err := json.Unmarshal(raw, back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("stats.Run round trip diverged:\n  in  %+v\n  out %+v", r, back)
	}
	if ResultDigest(back) != digest {
		t.Errorf("result digest changed across round trip")
	}
}

// TestValidateMessages pins the shared error text every entry point emits.
func TestValidateMessages(t *testing.T) {
	if err := ValidateScheme("nope"); err == nil ||
		!strings.Contains(err.Error(), `unknown scheme "nope"`) ||
		!strings.Contains(err.Error(), "general") {
		t.Errorf("ValidateScheme: %v", err)
	}
	if err := ValidateScheme(BaseScheme); err != nil {
		t.Errorf("pseudo-scheme rejected: %v", err)
	}
	if err := ValidateClusters(-1); err == nil || !strings.Contains(err.Error(), "clusters unsupported") {
		t.Errorf("ValidateClusters: %v", err)
	}
	if err := ValidateClusters(0); err != nil {
		t.Errorf("clusters=0 rejected: %v", err)
	}
	if err := ValidateBenchmark("nope"); err == nil || !strings.Contains(err.Error(), `unknown benchmark "nope"`) {
		t.Errorf("ValidateBenchmark: %v", err)
	}
}

// TestGridSpecPlan checks deterministic expansion, dedup and the lazy
// benchmark default.
func TestGridSpecPlan(t *testing.T) {
	jobs, err := GridSpec{
		Schemes:    []string{BaseScheme, "general", BaseScheme, "modulo"},
		Benchmarks: []string{"go", "gcc"},
		Warmup:     10,
		Measure:    100,
	}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, j := range jobs {
		got = append(got, j.Scheme+"/"+j.Benchmark)
	}
	want := []string{"base/go", "base/gcc", "general/go", "general/gcc", "modulo/go", "modulo/gcc"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grid = %v, want %v", got, want)
	}

	lazy, err := GridSpec{Schemes: []string{"general"}, Warmup: 1, Measure: 1}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(lazy) != len(workload.Names()) {
		t.Errorf("lazy grid has %d jobs, want %d", len(lazy), len(workload.Names()))
	}

	if _, err := (GridSpec{Schemes: []string{"nope"}}).Plan(); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := (GridSpec{Schemes: []string{"general"}, Clusters: 99}).Plan(); err == nil {
		t.Error("bad cluster count accepted")
	}
}
