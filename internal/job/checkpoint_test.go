package job

import (
	"context"
	"sync"
	"testing"
)

// cpJobs builds a small spread of cells that exercises the warm-cache
// paths: both pseudo-schemes (naive steering, dedicated machines), the
// FIFO organization, balance schemes with trained tables, and a 4-cluster
// machine.
func cpJobs(t *testing.T) []Job {
	t.Helper()
	specs := []Spec{
		{Scheme: BaseScheme, Benchmark: "compress", Warmup: 2_000, Measure: 5_000},
		{Scheme: UBScheme, Benchmark: "go", Warmup: 2_000, Measure: 5_000},
		{Scheme: "fifo", Benchmark: "compress", Warmup: 2_000, Measure: 5_000},
		{Scheme: "general", Benchmark: "go", Warmup: 2_000, Measure: 5_000},
		{Scheme: "modulo", Benchmark: "li", Clusters: 4, Warmup: 2_000, Measure: 5_000},
	}
	jobs := make([]Job, 0, len(specs))
	for _, s := range specs {
		j, err := s.Plan()
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// directDigest runs the job through the reference runner and digests the
// result.
func directDigest(t *testing.T, j Job) string {
	t.Helper()
	r, err := Direct{}.Run(context.Background(), j)
	if err != nil {
		t.Fatalf("%s/%s: direct: %v", j.Scheme, j.Benchmark, err)
	}
	return ResultDigest(r)
}

// TestCheckpointedMatchesDirect is the runner-level bit-identity lock:
// results produced from a warm snapshot (and from the leader's own warm
// machine) must digest identically to Direct's. Each job runs twice
// through one shared Checkpointed — the first pass is the leader (warm +
// snapshot + own measure), the second replays measurement from the
// snapshot.
func TestCheckpointedMatchesDirect(t *testing.T) {
	c := &Checkpointed{}
	for _, j := range cpJobs(t) {
		want := directDigest(t, j)
		for pass := 1; pass <= 2; pass++ {
			r, err := c.Run(context.Background(), j)
			if err != nil {
				t.Fatalf("%s/%s pass %d: %v", j.Scheme, j.Benchmark, pass, err)
			}
			if got := ResultDigest(r); got != want {
				t.Errorf("%s/%s pass %d: digest %s, direct %s", j.Scheme, j.Benchmark, pass, got, want)
			}
		}
	}
}

// TestCheckpointedWarmReuse is the point of the runner: jobs that differ
// only in the measurement budget share one warm key, so a measurement
// sweep warms once and every window still matches Direct bit for bit.
func TestCheckpointedWarmReuse(t *testing.T) {
	base, err := Spec{Scheme: "general", Benchmark: "compress", Warmup: 2_000, Measure: 3_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	c := &Checkpointed{}
	key := warmKey(base)
	for _, measure := range []uint64{3_000, 6_000, 1_000} {
		j := base
		j.Measure = measure
		if warmKey(j) != key {
			t.Fatalf("measure=%d: warm key split the sweep", measure)
		}
		want := directDigest(t, j)
		r, err := c.Run(context.Background(), j)
		if err != nil {
			t.Fatalf("measure=%d: %v", measure, err)
		}
		if got := ResultDigest(r); got != want {
			t.Errorf("measure=%d: digest %s, direct %s", measure, got, want)
		}
	}
	if len(c.entries) != 1 {
		t.Errorf("sweep retained %d warm entries, want 1", len(c.entries))
	}
}

// TestCheckpointedEviction runs a working set larger than Limit so every
// job's snapshot is evicted before its rerun; correctness (bit-identity)
// must survive the re-warms.
func TestCheckpointedEviction(t *testing.T) {
	c := &Checkpointed{Limit: 1}
	jobs := cpJobs(t)[:3]
	want := make([]string, len(jobs))
	for i, j := range jobs {
		want[i] = directDigest(t, j)
	}
	for pass := 1; pass <= 2; pass++ {
		for i, j := range jobs {
			r, err := c.Run(context.Background(), j)
			if err != nil {
				t.Fatalf("%s/%s pass %d: %v", j.Scheme, j.Benchmark, pass, err)
			}
			if got := ResultDigest(r); got != want[i] {
				t.Errorf("%s/%s pass %d: digest %s, direct %s", j.Scheme, j.Benchmark, pass, got, want[i])
			}
		}
	}
	if len(c.entries) != 1 || len(c.order) != 1 {
		t.Errorf("retained %d entries / %d order slots, want 1/1", len(c.entries), len(c.order))
	}
}

// TestCheckpointedConcurrent hammers one warm key from many goroutines:
// the warm simulation must coalesce onto a single leader and every caller
// must still get the Direct-identical result.
func TestCheckpointedConcurrent(t *testing.T) {
	j, err := Spec{Scheme: "general", Benchmark: "go", Warmup: 2_000, Measure: 4_000}.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := directDigest(t, j)
	c := &Checkpointed{}
	const workers = 8
	digests := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r, err := c.Run(context.Background(), j)
			if err != nil {
				errs[w] = err
				return
			}
			digests[w] = ResultDigest(r)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if digests[w] != want {
			t.Errorf("worker %d: digest %s, direct %s", w, digests[w], want)
		}
	}
	if len(c.entries) != 1 {
		t.Errorf("%d warm entries after coalesced runs, want 1", len(c.entries))
	}
}

// TestCheckpointedError pins error behaviour: an unknown benchmark fails
// every caller of the key (the error is deterministic, so sharing it
// preserves run-to-run equivalence with Direct).
func TestCheckpointedError(t *testing.T) {
	c := &Checkpointed{}
	j := Job{Scheme: "general", Benchmark: "nope", Measure: 100}
	for pass := 1; pass <= 2; pass++ {
		if _, err := c.Run(context.Background(), j); err == nil {
			t.Fatalf("pass %d: unknown benchmark succeeded", pass)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Checkpointed{}).Run(ctx, cpJobs(t)[0]); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
