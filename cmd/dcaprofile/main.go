// Command dcaprofile characterizes workloads: dynamic instruction mix,
// branch behaviour, working set, dependence distances and slice coverage —
// the numbers that justify each SpecInt95 analog's fidelity claim.
//
// Usage:
//
//	dcaprofile                    # side-by-side table of all workloads
//	dcaprofile -bench compress    # full report for one workload
//	dcaprofile -program prog.s    # profile an assembly file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/asm"
	"repro/internal/profile"
	"repro/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "workload to profile in detail")
		file   = flag.String("program", "", "assembly file to profile")
		window = flag.Uint64("window", 200_000, "dynamic instruction window")
	)
	flag.Parse()

	switch {
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		p, err := asm.Assemble(filepath.Base(*file), string(src))
		if err != nil {
			fatal(err)
		}
		rep, err := profile.Profile(p, *window)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
	case *bench != "":
		p, err := workload.Load(*bench)
		if err != nil {
			fatal(err)
		}
		rep, err := profile.Profile(p, *window)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
	default:
		var reports []*profile.Report
		for _, name := range workload.Names() {
			p, err := workload.Load(name)
			if err != nil {
				fatal(err)
			}
			rep, err := profile.Profile(p, *window)
			if err != nil {
				fatal(err)
			}
			reports = append(reports, rep)
		}
		fmt.Print(profile.Compare(reports))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcaprofile:", err)
	os.Exit(1)
}
