// Command dcaasm assembles a program in the repository's assembly dialect
// and either disassembles it back (default), emits the binary image, or
// executes it on the functional emulator.
//
// Usage:
//
//	dcaasm prog.s                # assemble + disassemble listing
//	dcaasm -run prog.s           # assemble and execute functionally
//	dcaasm -o prog.bin prog.s    # emit the encoded text segment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
)

func main() {
	var (
		run = flag.Bool("run", false, "execute the program on the functional emulator")
		max = flag.Uint64("max", 10_000_000, "instruction limit for -run")
		out = flag.String("o", "", "write the encoded text segment to this file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dcaasm [-run] [-o out.bin] prog.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	p, err := asm.Assemble(filepath.Base(path), string(src))
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := os.WriteFile(*out, isa.EncodeText(p.Text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d instructions (%d bytes) to %s\n",
			len(p.Text), len(p.Text)*isa.Word, *out)
		return
	}

	if *run {
		m := emu.New(p)
		n, err := m.Run(*max)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("executed %d instructions (halted: %v)\n", n, m.Halted)
		for i := 0; i < 8; i++ {
			fmt.Printf("r%-2d = %-12d", i, m.IntReg(i))
			if i%4 == 3 {
				fmt.Println()
			}
		}
		return
	}

	for pc, in := range p.Text {
		if lbl, ok := p.LabelAt(pc); ok {
			fmt.Printf("%s:\n", lbl)
		}
		fmt.Printf("%4d  %s\n", pc, in)
	}
	if len(p.Data) > 0 {
		fmt.Printf("; data: %d bytes at %#x\n", len(p.Data), p.DataBase)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcaasm:", err)
	os.Exit(1)
}
