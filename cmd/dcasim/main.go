// Command dcasim runs one benchmark under one steering scheme on the
// clustered timing simulator and prints the full measurement record.
//
// Named-benchmark runs go through the job layer (internal/job): the cell
// is planned into a canonical job whose content digest is printed with the
// results — the same key cmd/dcaserve would cache and serve it under.
// Assembly-file runs, pipeline traces, and machine overrides drive the
// core directly.
//
// Usage:
//
//	dcasim -bench compress -scheme general
//	dcasim -bench go -scheme fifo            # FIFO queues implied
//	dcasim -bench li -machine base           # the conventional baseline
//	dcasim -bench go -clusters 4             # a 4-cluster symmetric machine
//	dcasim -program prog.s -scheme general   # assemble and run a file
//	dcasim -bench go -pipetrace 5000         # pipeline trace from cycle 5000
//	dcasim -bench go -replay go.trace        # fetch from a dcatrace recording
//	dcasim -bench go -attrib                 # stall taxonomy: where cycles went
//	dcasim -bench go -konata go.kanata       # pipeline trace for the Konata viewer
//	dcasim -bench go -disagree               # scheme×scheme steering disagreement
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/probe"
	"repro/internal/prog"
	"repro/internal/stats"
	"repro/internal/steer"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench       = flag.String("bench", "compress", "workload name (see -list)")
		file        = flag.String("program", "", "assembly file to run instead of a named workload")
		scheme      = flag.String("scheme", "general", "steering scheme (see -list)")
		machine     = flag.String("machine", "", "machine override: base | clustered | fifo | ub")
		clusters    = flag.Int("clusters", 2, "cluster count (2 = the paper's asymmetric machine, else config.ClusteredN)")
		warmup      = flag.Uint64("warmup", 100_000, "warm-up instructions")
		measure     = flag.Uint64("measure", 1_000_000, "measured instructions (0 = run to halt)")
		list        = flag.Bool("list", false, "list workloads and schemes, then exit")
		pipetrace   = flag.Uint64("pipetrace", 0, "print a pipeline trace for 30 cycles starting at this cycle")
		legacyTrace = flag.Uint64("trace", 0, "deprecated alias for -pipetrace (kept for old scripts)")
		replay      = flag.String("replay", "", "fetch the oracle stream from this dcatrace recording instead of the live emulator")
		attrib      = flag.Bool("attrib", false, "attribute every measured cycle to a stall class and print the breakdown")
		konata      = flag.String("konata", "", "write a Konata (Kanata) pipeline trace of the run to this file")
		konataFrom  = flag.Uint64("konata-from", 0, "first cycle of the Konata export window")
		konataTo    = flag.Uint64("konata-to", 0, "last cycle of the Konata export window (0 = to the end)")
		disagree    = flag.Bool("disagree", false, "replay one recorded oracle stream through every scheme and print the steering disagreement matrix")
	)
	flag.Parse()
	traceAt := *pipetrace
	if *legacyTrace != 0 {
		fmt.Fprintln(os.Stderr, "dcasim: -trace is deprecated (it names the oracle trace layer now); use -pipetrace")
		if traceAt == 0 {
			traceAt = *legacyTrace
		}
	}

	if *list {
		fmt.Println("workloads:", workload.Names())
		fmt.Println("schemes:  ", steer.Names())
		return
	}
	if err := job.ValidateClusters(*clusters); err != nil {
		fatal(err)
	}
	if err := job.ValidateScheme(*scheme); err != nil {
		fatal(err)
	}
	if *disagree {
		if err := runDisagree(*bench, *clusters, *warmup, *measure); err != nil {
			fatal(err)
		}
		return
	}

	// Assemble the requested probe stack. Probes are passive — the printed
	// measurements and the result digest are bit-identical with and without
	// them — so they attach to either execution path uniformly.
	var (
		at     *probe.Attribution
		fore   *probe.Forensics
		kon    *probe.Konata
		kfile  *os.File
		probes []core.Probe
	)
	if *attrib {
		at = probe.NewAttribution()
		fore = &probe.Forensics{}
		probes = append(probes, at, fore)
	}
	if *konata != "" {
		f, err := os.Create(*konata)
		if err != nil {
			fatal(err)
		}
		kfile = f
		kon = probe.NewKonata(f)
		kon.From, kon.To = *konataFrom, *konataTo
		probes = append(probes, kon)
	}
	stack := probe.Multi(probes...)

	var (
		r   *stats.Run
		cfg *config.Config
		key string
		err error
	)
	if *file == "" && *machine == "" && traceAt == 0 && *replay == "" {
		// The standard case is one cell of the evaluation grid: plan it as
		// a canonical job and execute through the run layer.
		var j job.Job
		j, err = job.Spec{
			Scheme:    *scheme,
			Benchmark: *bench,
			Clusters:  *clusters,
			Warmup:    *warmup,
			Measure:   *measure,
		}.Plan()
		if err != nil {
			fatal(err)
		}
		cfg, key = j.Config, j.Key()
		if stack != nil {
			r, err = job.RunProbed(context.Background(), j, stack)
		} else {
			r, err = job.Direct{}.Run(context.Background(), j)
		}
	} else {
		r, cfg, err = runDirect(*file, *bench, *scheme, *machine, *clusters, *warmup, *measure, traceAt, *replay, stack)
	}
	if err != nil {
		fatal(err)
	}

	name := r.Benchmark
	t := stats.NewTable(fmt.Sprintf("%s on %s (%s machine)", *scheme, name, cfg.Name),
		"metric", "value")
	if key != "" {
		t.AddRow("job key", key[:16]+"…")
	}
	// The full-result digest: what the trace smoke compares between live
	// and replayed runs (bit-identity, not just matching headline numbers).
	t.AddRow("result digest", job.ResultDigest(r))
	t.AddRow("cycles", fmt.Sprintf("%d", r.Cycles))
	t.AddRow("instructions", fmt.Sprintf("%d", r.Instructions))
	t.AddRow("IPC", fmt.Sprintf("%.3f", r.IPC()))
	t.AddRow("communications/instr", fmt.Sprintf("%.4f", r.CommPerInstr()))
	t.AddRow("critical comm/instr", fmt.Sprintf("%.4f", r.CriticalCommPerInstr()))
	if len(r.Steered) > 2 {
		split := ""
		for c, n := range r.Steered {
			if c > 0 {
				split += " / "
			}
			split += fmt.Sprintf("%d", n)
		}
		t.AddRow("steered per cluster", split)
	} else {
		t.AddRow("steered int/fp", fmt.Sprintf("%d / %d", r.SteeredAt(0), r.SteeredAt(1)))
	}
	t.AddRow("replicated regs/cycle", fmt.Sprintf("%.2f", r.ReplicatedRegsAvg))
	t.AddRow("branch mispredict rate", fmt.Sprintf("%.4f", r.MispredictRate()))
	t.AddRow("L1D / L1I miss rate", fmt.Sprintf("%.4f / %.4f", r.L1DMissRate, r.L1IMissRate))
	fmt.Print(t.String())

	label := "readyFP - readyINT"
	if cfg.NumClusters() > 2 {
		label = "max-min ready spread"
	}
	fmt.Printf("\nworkload balance (%s, %% of cycles):\n", label)
	for d := -stats.BalanceRange; d <= stats.BalanceRange; d++ {
		bar := ""
		for i := 0; i < int(r.Balance.Percent(d)); i++ {
			bar += "#"
		}
		fmt.Printf("%+4d %5.1f%% %s\n", d, r.Balance.Percent(d), bar)
	}

	if at != nil {
		fmt.Printf("\ncycle attribution (%d measured cycles, total and exclusive):\n%s",
			at.Total(), at.Report().Table())
		fmt.Printf("\nsteering decisions (%d, by deciding mechanism):\n%s",
			fore.Decisions(), fore.ReasonTable())
	}
	if kon != nil {
		if err := kon.Close(); err != nil {
			fatal(err)
		}
		if err := kfile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nKonata pipeline trace written to %s (open with the Konata viewer)\n", *konata)
	}
}

// runDisagree replays one oracle recording of the benchmark through every
// registered steering scheme and prints how often each pair placed the
// same instruction differently.
func runDisagree(bench string, clusters int, warmup, measure uint64) error {
	schemes := steer.Names()
	sort.Strings(schemes)
	d, err := job.Disagreement(context.Background(), job.GridSpec{
		Schemes:    schemes,
		Benchmarks: []string{bench},
		Clusters:   clusters,
		Warmup:     warmup,
		Measure:    measure,
	})
	if err != nil {
		return err
	}
	fmt.Printf("steering disagreement on %s (%% of decisions placed on different clusters;\none oracle recording replayed through every scheme, decisions index-aligned):\n\n%s",
		bench, d.Table())
	return nil
}

// runDirect is the power-user path — assembly files, pipeline traces,
// machine overrides, trace replay — driving the core directly instead of
// the job layer. The extra probe stack (attribution, Konata) composes with
// the text pipeline tracer through the same seam.
func runDirect(file, bench, scheme, machine string, clusters int, warmup, measure, traceAt uint64, replay string, extra core.Probe) (*stats.Run, *config.Config, error) {
	var p *prog.Program
	var err error
	if file != "" {
		src, rerr := os.ReadFile(file)
		if rerr != nil {
			return nil, nil, rerr
		}
		p, err = asm.Assemble(filepath.Base(file), string(src))
	} else {
		p, err = workload.Load(bench)
	}
	if err != nil {
		return nil, nil, err
	}

	var cfg *config.Config
	switch machine {
	case "":
		cfg = job.ConfigFor(scheme, clusters)
	case "base":
		cfg = config.Base()
	case "clustered":
		cfg = config.Clustered()
	case "fifo":
		cfg = config.FIFOClustered()
	case "ub":
		cfg = config.UpperBound()
	default:
		return nil, nil, fmt.Errorf("unknown machine %q", machine)
	}
	if clusters != 2 && machine != "" {
		if machine != "clustered" && machine != "fifo" {
			return nil, nil, fmt.Errorf("-clusters only applies to the clustered machines, not %q", machine)
		}
		if machine == "fifo" {
			cfg = config.ClusteredNFIFO(clusters)
		} else {
			cfg = config.ClusteredN(clusters)
		}
	}

	// Pseudo-schemes run the machine's naive rule, mirroring job.Direct.
	var st core.Steerer
	if scheme == job.BaseScheme || scheme == job.UBScheme {
		st = core.NaiveSteerer{}
	} else {
		params := steer.DefaultParams()
		params.Clusters = cfg.NumClusters()
		st, err = steer.NewWithParams(scheme, p, params)
		if err != nil {
			return nil, nil, err
		}
	}
	var m *core.Machine
	if replay != "" {
		raw, rerr := os.ReadFile(replay)
		if rerr != nil {
			return nil, nil, rerr
		}
		tr, derr := trace.Decode(raw)
		if derr != nil {
			return nil, nil, derr
		}
		rep, rerr := trace.NewReplayer(tr, p)
		if rerr != nil {
			return nil, nil, rerr
		}
		m, err = core.NewWithOracle(cfg, p, st, rep)
	} else {
		m, err = core.New(cfg, p, st)
	}
	if err != nil {
		return nil, nil, err
	}
	// The text pipeline tracer rides the probe seam like every other
	// observer (core.TracerProbe adapts the legacy Tracer interface), so
	// -pipetrace composes with -attrib and -konata on one machine.
	if traceAt > 0 {
		extra = probe.Multi(extra,
			core.TracerProbe(&core.TextTracer{W: os.Stdout, From: traceAt, To: traceAt + 30}))
	}
	if extra != nil {
		m.SetProbe(extra)
	}
	r, err := m.RunWithWarmup(warmup, measure)
	if err != nil {
		return nil, nil, err
	}
	r.Scheme = scheme
	return r, cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dcasim:", err)
	os.Exit(1)
}
