// Command dcalint runs the repository's static-analysis pass (see
// internal/lint): stdlib-only analyzers that prove the determinism,
// hot-path-allocation, lock-discipline and wire-contract invariants at the
// source level. It prints one file:line:col diagnostic per finding and
// exits non-zero when any survive the //dca:allow filter, so it can gate
// CI.
//
// Usage:
//
//	dcalint [-root dir] [packages]
//
// With no package arguments it lints the whole module (./...). Patterns
// are import-path suffixes or "/..." prefixes ("internal/core",
// "repro/internal/job/...").
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root (directory containing go.mod)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dcalint [-root dir] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	pkgs, err := lint.Load(*root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcalint:", err)
		os.Exit(2)
	}
	diags := lint.Lint(pkgs, lint.DefaultAnalyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dcalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
