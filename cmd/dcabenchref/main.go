// Command dcabenchref regenerates the repository's reference benchmark
// records (BENCH_core.json, BENCH_clusters.json, BENCH_serve.json,
// BENCH_trace.json, BENCH_probe.json) by running the relevant `go test
// -bench` targets and rewriting each file's environment, date and results
// — so the checked-in numbers can never silently drift from the code.
// Curated fields (description, reading, baseline) are preserved.
//
// Usage:
//
//	dcabenchref            # regenerate every file (run from the repo root)
//	dcabenchref -core      # only BENCH_core.json
//	dcabenchref -clusters  # only BENCH_clusters.json
//	dcabenchref -serve     # only BENCH_serve.json (dcaserve jobs/sec)
//	dcabenchref -trace     # only BENCH_trace.json (direct vs replayed grid)
//	dcabenchref -probe     # only BENCH_probe.json (cycle loop with probes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"b_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// benchLine matches `BenchmarkX/sub-8   300000   645.6 ns/op   0 B/op   0 allocs/op`
// (the -8 GOMAXPROCS suffix and the B/op / allocs/op columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// runBench executes one go test bench invocation and parses its output.
func runBench(pkg, bench, benchtime string) (env map[string]any, results []result, err error) {
	cmd := exec.Command("go", "test", pkg, "-run", "xxx", "-bench", bench,
		"-benchtime", benchtime, "-count", "1")
	// Parse stdout only: benchmarks that start servers (dcaserve) log to
	// stderr, and an access-log line flushed between a benchmark's name and
	// its result column would corrupt the combined stream.
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go test -bench %s: %v\n%s%s", bench, err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	env = map[string]any{
		"goos":    runtime.GOOS,
		"goarch":  runtime.GOARCH,
		"cpu":     "unknown",
		"num_cpu": runtime.NumCPU(),
	}
	prefix := bench + "/"
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			env["cpu"] = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := result{Name: strings.TrimPrefix(m[1], prefix), Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &v
		}
		results = append(results, r)
	}
	if len(results) == 0 {
		return nil, nil, fmt.Errorf("no %s results parsed from go test output:\n%s", bench, out)
	}
	return env, results, nil
}

// rewrite updates path in place: environment/date/results are replaced,
// every other field (description, reading, baseline, …) is preserved.
func rewrite(path, pkg, bench, benchtime string) error {
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	env, results, err := runBench(pkg, bench, benchtime)
	if err != nil {
		return err
	}
	if note, ok := doc["environment"].(map[string]any); ok {
		if n, ok := note["note"]; ok {
			env["note"] = n
		}
	}
	doc["benchmark"] = bench
	doc["environment"] = env
	doc["date"] = time.Now().Format("2006-01-02")
	doc["results"] = results
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results)\n", path, len(results))
	return nil
}

func main() {
	var (
		coreOnly     = flag.Bool("core", false, "only regenerate BENCH_core.json")
		clustersOnly = flag.Bool("clusters", false, "only regenerate BENCH_clusters.json")
		serveOnly    = flag.Bool("serve", false, "only regenerate BENCH_serve.json")
		traceOnly    = flag.Bool("trace", false, "only regenerate BENCH_trace.json")
		probeOnly    = flag.Bool("probe", false, "only regenerate BENCH_probe.json")
	)
	flag.Parse()
	all := !*coreOnly && !*clustersOnly && !*serveOnly && !*traceOnly && !*probeOnly
	if *coreOnly || all {
		if err := rewrite("BENCH_core.json", "./internal/core", "BenchmarkMachineCycle", "300000x"); err != nil {
			fmt.Fprintln(os.Stderr, "dcabenchref:", err)
			os.Exit(1)
		}
	}
	if *clustersOnly || all {
		if err := rewrite("BENCH_clusters.json", ".", "BenchmarkGridParallelism", "1x"); err != nil {
			fmt.Fprintln(os.Stderr, "dcabenchref:", err)
			os.Exit(1)
		}
	}
	if *serveOnly || all {
		if err := rewrite("BENCH_serve.json", "./cmd/dcaserve", "BenchmarkServeThroughput", "300x"); err != nil {
			fmt.Fprintln(os.Stderr, "dcabenchref:", err)
			os.Exit(1)
		}
	}
	if *traceOnly || all {
		// 5 iterations: enough for the one-time recording sweep to amortize
		// so the traced number reflects replay steady state.
		if err := rewrite("BENCH_trace.json", ".", "BenchmarkTraceReplay", "5x"); err != nil {
			fmt.Fprintln(os.Stderr, "dcabenchref:", err)
			os.Exit(1)
		}
	}
	if *probeOnly || all {
		// Same iteration budget as BENCH_core.json so the detached number
		// is directly comparable to BenchmarkMachineCycle's n2/general row.
		if err := rewrite("BENCH_probe.json", "./internal/core", "BenchmarkProbeCycle", "300000x"); err != nil {
			fmt.Fprintln(os.Stderr, "dcabenchref:", err)
			os.Exit(1)
		}
	}
}
